// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5).  Each benchmark drives the experiments suite and
// reports the artefact's headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints a machine-readable rendition of the whole evaluation.  The
// expensive simulations run once and are cached in a shared suite;
// iterations beyond the first measure artefact regeneration from the
// cached runs.
package repro

import (
	"sync"
	"testing"

	"repro/internal/experiments"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite returns the shared, lazily primed suite.
func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.NewSuite(1, 0.5) })
	return suite
}

func BenchmarkTable2TrampolinePKI(b *testing.B) {
	s := benchSuite()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PKI, r.Workload+"_trampPKI")
	}
}

func BenchmarkTable3DistinctTrampolines(b *testing.B) {
	s := benchSuite()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Distinct), r.Workload+"_distinct")
	}
}

func BenchmarkFigure4TrampolineFrequency(b *testing.B) {
	s := benchSuite()
	var series []experiments.Figure4Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range series {
		if len(sr.Counts) > 0 {
			b.ReportMetric(float64(sr.Counts[0]), sr.Workload+"_rank1_calls")
		}
	}
}

func BenchmarkTable4PerfCounters(b *testing.B) {
	s := benchSuite()
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Base.L1IMisses, r.Workload+"_L1I_base")
		b.ReportMetric(r.Enhanced.L1IMisses, r.Workload+"_L1I_enh")
		b.ReportMetric(r.Base.Mispredicts, r.Workload+"_mispred_base")
		b.ReportMetric(r.Enhanced.Mispredicts, r.Workload+"_mispred_enh")
	}
}

func BenchmarkFigure5ABTBSizeSweep(b *testing.B) {
	s := benchSuite()
	var series []experiments.Figure5Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range series {
		for i, n := range sr.Sizes {
			if n == 16 || n == 256 {
				b.ReportMetric(sr.SkipPct[i], sr.Workload+"_skip@"+itoa(n))
			}
		}
	}
}

func BenchmarkFigure6ApacheCDF(b *testing.B) {
	s := benchSuite()
	var pairs []experiments.CDFPair
	for i := 0; i < b.N; i++ {
		var err error
		pairs, err = s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pairs {
		b.ReportMetric((p.BaseMeanUS-p.EnhMeanUS)/p.BaseMeanUS*100, p.Class+"_improve_pct")
	}
}

func BenchmarkTable5FirefoxScores(b *testing.B) {
	s := benchSuite()
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ImprovePct, r.Category+"_improve_pct")
	}
}

func BenchmarkFigure7MemcachedHistogram(b *testing.B) {
	s := benchSuite()
	var hists []experiments.Figure7Histogram
	for i := 0; i < b.N; i++ {
		var err error
		hists, err = s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, h := range hists {
		b.ReportMetric(h.BasePeakUS, h.Class+"_peak_base_us")
		b.ReportMetric(h.EnhPeakUS, h.Class+"_peak_enh_us")
	}
}

func BenchmarkFigure8MySQLCDF(b *testing.B) {
	s := benchSuite()
	var pairs []experiments.CDFPair
	for i := 0; i < b.N; i++ {
		var err error
		pairs, err = s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pairs {
		b.ReportMetric((p.BaseMeanUS-p.EnhMeanUS)/p.BaseMeanUS*100, p.Class+"_improve_pct")
	}
}

func BenchmarkTable6MySQLPercentiles(b *testing.B) {
	s := benchSuite()
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Percentile == 95 {
			b.ReportMetric(r.NewOrderBase, "neworder_p95_base_ms")
			b.ReportMetric(r.NewOrderEnh, "neworder_p95_enh_ms")
		}
	}
}

func BenchmarkMemorySavings(b *testing.B) {
	s := benchSuite()
	var m *experiments.MemorySavings
	for i := 0; i < b.N; i++ {
		var err error
		m, err = s.MemorySavingsExperiment(450)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.TotalWastedMB, "software_waste_MB")
	b.ReportMetric(float64(m.PatchedPages), "pages_per_process")
}

func BenchmarkAblationBloomSize(b *testing.B) {
	s := benchSuite()
	var points []experiments.BloomPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.AblationBloomSize()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(points[0].FlushingStores), "flushes@"+itoa(points[0].Bits)+"bit")
	last := points[len(points)-1]
	b.ReportMetric(float64(last.FlushingStores), "flushes@"+itoa(last.Bits)+"bit")
}

func BenchmarkAblationBindingModes(b *testing.B) {
	s := benchSuite()
	var points []experiments.BindingPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.AblationBindingModes()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.MeanUS, p.Label+"_mean_us")
	}
}

func BenchmarkAblationExplicitInvalidate(b *testing.B) {
	s := benchSuite()
	var points []experiments.InvalidatePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.AblationExplicitInvalidate()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.SkipPct, p.Label+"_skip_pct")
	}
}

func BenchmarkAblationContextSwitch(b *testing.B) {
	s := benchSuite()
	var points []experiments.ContextSwitchPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.AblationContextSwitch()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.SwitchEvery == 1 {
			b.ReportMetric(p.SkipPct, p.Label+"_skip_pct@switch1")
		}
	}
}

func BenchmarkAblationABTBGeometry(b *testing.B) {
	s := benchSuite()
	var points []experiments.ABTBGeometryPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.AblationABTBGeometry()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.SkipPct, "live_skip@"+itoa(p.Entries))
	}
}

func BenchmarkAblationPLTStyle(b *testing.B) {
	s := benchSuite()
	var points []experiments.PLTStylePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.AblationPLTStyle()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Enhanced {
			b.ReportMetric(p.ImprovePct, p.Style+"_improve_pct")
		} else {
			b.ReportMetric(p.TrampPKI, p.Style+"_trampPKI")
		}
	}
}

func BenchmarkAblationSMP(b *testing.B) {
	s := benchSuite()
	var points []experiments.SMPPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = s.AblationSMP()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Enhanced {
			b.ReportMetric(p.ImprovePct, "improve_pct@"+itoa(p.Cores)+"cores")
		}
	}
}

// itoa avoids strconv in metric-name building.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
