package bloom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 4)
	rng := rand.New(rand.NewPCG(7, 7))
	var added []uint64
	for i := 0; i < 100; i++ {
		a := rng.Uint64()
		f.Add(a)
		added = append(added, a)
	}
	for _, a := range added {
		if !f.Test(a) {
			t.Fatalf("false negative for %#x", a)
		}
	}
}

// The no-false-negative guarantee is the property the paper's
// correctness argument rests on (§3.1): if a GOT store is missed, the
// ABTB could redirect to a stale target.
func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		bf := New(256, 3)
		for _, k := range keys {
			bf.Add(k)
		}
		for _, k := range keys {
			if !bf.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New(512, 4)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 1000; i++ {
		if f.Test(rng.Uint64()) {
			t.Fatal("empty filter reported a hit")
		}
	}
}

func TestClear(t *testing.T) {
	f := New(512, 4)
	f.Add(0xdeadbeef)
	if !f.Test(0xdeadbeef) {
		t.Fatal("added key not found")
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
	f.Clear()
	if f.Test(0xdeadbeef) {
		t.Fatal("key survived Clear")
	}
	if f.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", f.Len())
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// 64 GOT entries in a 1024-bit filter with k=4 should have a low
	// false-positive rate (theory: ~(1-e^{-kn/m})^k ~= 0.24% at these
	// parameters; allow generous slack).
	f := New(1024, 4)
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 64; i++ {
		f.Add(rng.Uint64())
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.Test(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.02 {
		t.Errorf("false-positive rate = %v, want < 2%%", rate)
	}
}

func TestIndexInRange(t *testing.T) {
	f := func(key uint64) bool {
		bf := New(100, 5) // deliberately non-power-of-two bit request
		for i := 0; i < bf.K(); i++ {
			if bf.index(key, i) >= uint64(bf.Bits()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizingAndCounters(t *testing.T) {
	f := New(100, 2)
	if f.Bits() != 128 { // rounded up to a multiple of 64
		t.Errorf("Bits = %d, want 128", f.Bits())
	}
	if f.SizeBytes() != 16 {
		t.Errorf("SizeBytes = %d, want 16", f.SizeBytes())
	}
	if f.K() != 2 {
		t.Errorf("K = %d, want 2", f.K())
	}
	f.Add(5)
	f.Test(5)
	f.Test(6)
	if f.Lookups() != 2 {
		t.Errorf("Lookups = %d, want 2", f.Lookups())
	}
	if f.Hits() < 1 {
		t.Errorf("Hits = %d, want >= 1", f.Hits())
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, tt := range []struct{ bits, k int }{{0, 1}, {1, 0}, {-64, 4}, {64, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tt.bits, tt.k)
				}
			}()
			New(tt.bits, tt.k)
		}()
	}
}
