// Package bloom implements the Bloom filter used by the ABTB to track
// GOT-entry addresses (paper §3.1).
//
// The filter stores the data addresses from which trampoline indirect
// branches loaded their targets.  A retired store (or an incoming
// coherence invalidation) whose address hits the filter may have
// modified a GOT entry backing an ABTB mapping, so the ABTB must be
// flushed.  Bloom filters admit false positives (harmless: a spurious
// flush only costs re-population) but never false negatives, which is
// what makes the ABTB architecturally safe.
//
// Hashing follows the standard double-hashing construction
// (Kirsch & Mitzenmacher): k indices are derived as h1 + i*h2 from two
// independent 32-bit halves of a 64-bit mix of the key.
package bloom

import "fmt"

// Filter is a Bloom filter over 64-bit addresses.  The zero value is
// not usable; construct with New.
type Filter struct {
	bits    []uint64
	nbits   uint64
	k       int
	n       int // elements added since last clear
	lookups uint64
	hits    uint64
}

// New returns a filter with the given number of bits (rounded up to a
// multiple of 64) and k hash functions.  It panics on non-positive
// arguments, which indicate a misconfigured hardware model.
func New(bits, k int) *Filter {
	if bits <= 0 || k <= 0 {
		panic(fmt.Sprintf("bloom: invalid parameters bits=%d k=%d", bits, k))
	}
	words := (bits + 63) / 64
	return &Filter{
		bits:  make([]uint64, words),
		nbits: uint64(words) * 64,
		k:     k,
	}
}

// mix64 is SplitMix64's finalizer, a strong 64-bit mixing function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (f *Filter) index(key uint64, i int) uint64 {
	m := mix64(key)
	h1 := m & 0xffffffff
	h2 := m >> 32
	// Force h2 odd so the stride cycles all positions for power-of-two
	// sizes.
	return (h1 + uint64(i)*(h2|1)) % f.nbits
}

// Add inserts an address into the filter.
func (f *Filter) Add(addr uint64) {
	for i := 0; i < f.k; i++ {
		b := f.index(addr, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
	f.n++
}

// Test reports whether the address may have been added.  A false
// result is definitive: the address was never added since the last
// Clear.
func (f *Filter) Test(addr uint64) bool {
	f.lookups++
	for i := 0; i < f.k; i++ {
		b := f.index(addr, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	f.hits++
	return true
}

// Clear resets the filter to empty.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Len returns the number of additions since the last Clear.
func (f *Filter) Len() int { return f.n }

// Bits returns the filter capacity in bits.
func (f *Filter) Bits() int { return int(f.nbits) }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Lookups returns the number of Test calls performed.
func (f *Filter) Lookups() uint64 { return f.lookups }

// Hits returns the number of Test calls that returned true.
func (f *Filter) Hits() uint64 { return f.hits }

// SizeBytes returns the storage cost of the filter in bytes, used for
// the hardware-budget accounting in §5.3.
func (f *Filter) SizeBytes() int { return int(f.nbits) / 8 }
