package bloom

import "testing"

func BenchmarkTest(b *testing.B) {
	f := New(32768, 4)
	for i := uint64(0); i < 400; i++ {
		f.Add(i * 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Test(uint64(i) * 13)
	}
}
