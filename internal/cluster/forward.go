package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Headers threaded across hops.
const (
	// ForwardedByHeader marks a request as already forwarded once.  A
	// node receiving it serves locally no matter who owns the ID —
	// forwarding is at most one hop, so failover can never loop.
	ForwardedByHeader = "X-DLSim-Forwarded-By"

	// NodeHeader names the member that actually served the response.
	NodeHeader = "X-DLSim-Node"

	// FailoverHeader is set ("1") on any response produced after at
	// least one failover attempt — the chaos suite's proof that no
	// 5xx escapes without the cluster having tried a replica.  It is
	// also set on forwarded *requests* aimed at a non-owner (failover
	// and hedge hops), telling the serving peer that the ID's owner
	// was bypassed: a local lookup miss there must answer retryable
	// (503 + MissHeader) rather than 404, because the owner may still
	// hold the result.
	FailoverHeader = "X-DLSim-Failover"

	// MissHeader is set ("1") on a peer's retryable local-miss
	// response to a failed-over or hedged read.  The forwarding node
	// classifies such a response as "this replica does not hold the
	// ID" — not a peer fault, not a relayable answer — and keeps
	// walking the ring (or keeps waiting for the owner).
	MissHeader = "X-DLSim-Miss"

	// RequestIDHeader is the correlation ID threaded across nodes.
	RequestIDHeader = "X-Request-ID"
)

// errPeerMiss marks a forwarded read that a healthy non-owner replica
// answered with "I don't hold this ID": the transport and the peer
// are fine (the breaker records a success), but the response must not
// be relayed — the owner may still hold the result.
var errPeerMiss = errors.New("cluster: replica does not hold the ID")

// RetryPolicy governs per-peer retransmission of transiently failed
// forwards, mirroring internal/runner's RetryPolicy shape (the
// classification differs: every transport error, timeout and 5xx is
// transient by construction here, because content-derived IDs make
// re-sends idempotent).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per peer including
	// the first (0 = default 2; negative or 1 disables retries).
	MaxAttempts int

	// BaseDelay is the backoff before the first retry, doubling per
	// retry (0 = default 10ms).
	BaseDelay time.Duration

	// MaxDelay caps the exponential growth (0 = default 200ms).
	MaxDelay time.Duration

	// Jitter is the fraction of each backoff randomised uniformly in
	// [1-Jitter, 1+Jitter] (0 = default 0.2; negative disables).
	Jitter float64
}

// normalized resolves zero fields to the defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 2
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 200 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// backoff returns the delay before retry number `retry` (1-based):
// BaseDelay·2^(retry-1) with ±Jitter, hard-capped at MaxDelay (jitter
// before clamp, like runner's fixed policy).
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*rand.Float64()))
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Request describes one routable API call.
type Request struct {
	// ID is the content-derived job or batch ID routing the request.
	ID string

	// Method and Path form the forwarded call; Body is the forwarded
	// request body (nil for GETs).
	Method string
	Path   string
	Body   []byte

	// Hedge allows a hedged read: when the cluster's HedgeDelay is
	// armed and the owner stalls, the same GET races the next replica.
	// Only meaningful for idempotent reads.
	Hedge bool
}

// Outcome reports what Route did.
type Outcome struct {
	// Handled means a peer's response was relayed to the client;
	// the caller must not write anything further.
	Handled bool

	// FailedOver means at least one replica ahead of the resolution
	// point was down, broken open, or failed — the caller served a
	// locally resolved request only because the ring walk fell
	// through to self.  GET handlers use it to answer 503 (owner
	// unreachable, result may exist there) instead of 404 on a local
	// miss.
	FailedOver bool

	// Peer is the member that served, when Handled.
	Peer string
}

// peerResp is a fully buffered peer response, safe to relay after the
// hop's context is gone.
type peerResp struct {
	status int
	header http.Header
	body   []byte
}

// maxRelayBody bounds how much of a peer response is buffered for
// relay (results are small JSON; a batch status tops out well below
// this).
const maxRelayBody = 8 << 20

// Route resolves one request against the ring.  If self owns the ID
// it returns immediately (serve locally).  Otherwise it walks the
// failover sequence: skips peers that are down by probe or breaker,
// forwards to the first available one (with per-peer retries, and a
// hedged second read when armed), and relays the peer's response.
// When every remote candidate ahead of self is unavailable, the walk
// falls through to self and the caller serves locally — idempotent by
// construction, so a re-routed submission recomputes bit-identical
// results.  Route never writes a 5xx of its own; the relayed response
// carries FailoverHeader whenever a replica was bypassed.
func (c *Cluster) Route(w http.ResponseWriter, r *http.Request, req Request) Outcome {
	var out Outcome
	reqID := r.Header.Get(RequestIDHeader)
	if reqID == "" {
		reqID = w.Header().Get(RequestIDHeader)
	}
	var sp *telemetry.Span
	if c.tracer != nil {
		sp = c.tracer.Start("fwd-" + reqID).Root()
		sp.SetAttr("id", req.ID)
		sp.SetAttr("owner", c.ring.owner(req.ID))
	}

	cands := c.candidates(req.ID)
	for i := 0; i < len(cands); i++ {
		p := cands[i]
		if p.self {
			// Owner, or failover landed here: serve locally.
			if out.FailedOver {
				w.Header().Set(FailoverHeader, "1")
				c.spanNote(sp, "local-failover", c.self, 0)
			}
			return out
		}
		if !p.healthy() || !p.br.allow() {
			out.FailedOver = true
			c.failovers.Inc()
			c.spanNote(sp, "skip", p.name, 0)
			continue
		}

		var resp *peerResp
		var err error
		if req.Hedge && c.hedgeDelay > 0 {
			var winner *peer
			var failedOver bool
			resp, winner, failedOver, err = c.hedgedTry(r.Context(), p, c.nextAvailable(cands, i+1), req, reqID, sp, out.FailedOver)
			if failedOver {
				out.FailedOver = true
			}
			if err == nil && winner != nil {
				p = winner
			}
		} else {
			resp, err = c.tryPeer(r.Context(), p, req, reqID, sp, out.FailedOver)
		}
		if err != nil {
			out.FailedOver = true
			if !errors.Is(err, errPeerMiss) {
				c.failovers.Inc()
			}
			continue
		}
		if out.FailedOver {
			w.Header().Set(FailoverHeader, "1")
		}
		c.relay(w, resp)
		out.Handled = true
		out.Peer = p.name
		return out
	}
	// Unreachable: self is always on the ring, so the walk above
	// resolves before the sequence is exhausted.
	return out
}

// nextAvailable returns the first non-self candidate at or after
// index i that is routable, or nil.  It must not consume breaker
// state: the returned peer may never be contacted (the owner can
// answer before the hedge fires), so it only peeks via canForward —
// the half-open trial slot is claimed by allow() at launch time.
func (c *Cluster) nextAvailable(cands []*peer, i int) *peer {
	for ; i < len(cands); i++ {
		p := cands[i]
		if p.self {
			return nil
		}
		if p.healthy() && p.br.canForward() {
			return p
		}
	}
	return nil
}

// hedgedTry forwards to the owner and, if it stalls past HedgeDelay
// and a second replica is available, races the same read against it,
// returning the first success (and which peer produced it).  The
// hedge hop targets a non-owner, so it is marked as a failover on the
// wire: a miss there (errPeerMiss) just means "keep waiting for the
// owner", never a relayable 404.  failedOver reports whether the
// owner's attempt failed — any response returned after that must
// carry FailoverHeader.  Both attempts share the request context; the
// loser is abandoned to its own per-hop timeout — its result lands in
// a buffered channel, so nothing leaks.
func (c *Cluster) hedgedTry(ctx context.Context, owner, next *peer, req Request, reqID string, sp *telemetry.Span, ownerIsFailover bool) (_ *peerResp, _ *peer, failedOver bool, _ error) {
	type tryResult struct {
		resp *peerResp
		err  error
		peer *peer
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan tryResult, 2)
	launch := func(p *peer, failover bool) {
		go func() {
			resp, err := c.tryPeer(hctx, p, req, reqID, sp, failover)
			results <- tryResult{resp, err, p}
		}()
	}
	launch(owner, ownerIsFailover)
	inFlight := 1
	var lastErr error
	if next != nil {
		select {
		case res := <-results:
			if res.err == nil {
				return res.resp, res.peer, failedOver, nil
			}
			inFlight--
			// Owner already failed: the "hedge" is now just failover
			// within the same call.
			failedOver = true
			lastErr = res.err
			c.failovers.Inc()
		case <-time.After(c.hedgeDelay):
			c.hedges.Inc()
		}
		// Claim the breaker slot only now that the request actually
		// launches; a concurrent route may have taken a half-open
		// trial since nextAvailable peeked.
		if next.br.allow() {
			launch(next, true)
			inFlight++
		}
	}
	for ; inFlight > 0; inFlight-- {
		res := <-results
		if res.err != nil {
			if res.peer == owner {
				failedOver = true
			}
			lastErr = res.err
			continue
		}
		if res.peer != owner {
			c.hedgeWins.Inc()
		}
		return res.resp, res.peer, failedOver, nil
	}
	return nil, nil, failedOver, lastErr
}

// tryPeer forwards the request to one peer with the retry policy:
// transient failures (transport errors, timeouts, 5xx — all
// idempotent to re-send here) back off and retry up to MaxAttempts,
// then the peer is given up on (the caller fails over).  Outcomes
// feed the peer's breaker and the forward metrics.  failover marks
// the hop as aimed at a non-owner; a local-miss answer from such a
// peer (errPeerMiss) is final for this peer — the peer is healthy
// (the breaker records a success) and re-asking it cannot help, so
// the caller moves on without retries.
func (c *Cluster) tryPeer(ctx context.Context, p *peer, req Request, reqID string, sp *telemetry.Span, failover bool) (*peerResp, error) {
	var lastErr error
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(c.retry.backoff(attempt - 1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		resp, err := c.doOnce(ctx, p, req, reqID, failover)
		c.noteAttempt(sp, p, resp, err, attempt)
		if err == nil {
			p.br.success()
			c.brState.With(p.name).Set(int64(p.br.state()))
			c.forwards.With(p.name, "ok").Inc()
			return resp, nil
		}
		lastErr = err
		if errors.Is(err, errPeerMiss) {
			p.br.success()
			c.brState.With(p.name).Set(int64(p.br.state()))
			c.forwards.With(p.name, "miss").Inc()
			return nil, err
		}
		p.br.failure()
		c.brState.With(p.name).Set(int64(p.br.state()))
		c.forwards.With(p.name, "error").Inc()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// doOnce performs one forwarded hop: fault-injection point, per-hop
// timeout, header threading, full body buffering, latency histogram.
// A status >= 500 is a failure — the next replica can serve the same
// content-derived ID, so relaying a peer's 5xx would waste the ring.
// On a failover hop the request carries FailoverHeader, and the
// peer's "I don't hold this ID" answer — MissHeader, or a 404/410
// from an older peer that doesn't stamp it — maps to errPeerMiss
// instead of a relayable response: only the ID's owner may assert
// not-found to the client.
func (c *Cluster) doOnce(ctx context.Context, p *peer, req Request, reqID string, failover bool) (*peerResp, error) {
	if err := faultinject.FireCtx(ctx, "cluster.forward"); err != nil {
		return nil, err
	}
	hctx, cancel := context.WithTimeout(ctx, c.forwardTO)
	defer cancel()
	var body io.Reader
	if req.Body != nil {
		body = bytes.NewReader(req.Body)
	}
	hr, err := http.NewRequestWithContext(hctx, req.Method, p.url+req.Path, body)
	if err != nil {
		return nil, err
	}
	if req.Body != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	hr.Header.Set(RequestIDHeader, reqID)
	hr.Header.Set(ForwardedByHeader, c.self)
	if failover {
		hr.Header.Set(FailoverHeader, "1")
	}

	start := time.Now()
	resp, err := c.client.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBody+1))
	c.peerLatency.With(p.name).Observe(float64(time.Since(start)) / 1e6)
	if err != nil {
		return nil, err
	}
	if len(buf) > maxRelayBody {
		// Relaying a truncated body would hand the client broken JSON
		// with a clean status; fail the forward instead.
		return nil, fmt.Errorf("cluster: peer %s response exceeds the %d-byte relay cap", p.name, maxRelayBody)
	}
	miss := resp.Header.Get(MissHeader) == "1" ||
		(failover && (resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusGone))
	if miss {
		return nil, fmt.Errorf("%w (peer %s answered %d)", errPeerMiss, p.name, resp.StatusCode)
	}
	if resp.StatusCode >= 500 {
		return nil, fmt.Errorf("cluster: peer %s answered %d", p.name, resp.StatusCode)
	}
	return &peerResp{status: resp.StatusCode, header: resp.Header, body: buf}, nil
}

// relay writes a buffered peer response to the client, preserving the
// headers that matter across the hop (content type, shed hints, and
// the serving node's identity — the peer's NodeHeader wins over the
// relaying node's).
func (c *Cluster) relay(w http.ResponseWriter, resp *peerResp) {
	for _, h := range []string{"Content-Type", "Retry-After", NodeHeader} {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.body)))
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// spanNote records a non-attempt routing event (skip, local
// failover) in the forward span tree.
func (c *Cluster) spanNote(sp *telemetry.Span, event, peer string, _ int) {
	if sp == nil {
		return
	}
	child := sp.Child(event)
	child.SetAttr("peer", peer)
	child.End()
}

// noteAttempt records one forwarded attempt in the span tree.
func (c *Cluster) noteAttempt(sp *telemetry.Span, p *peer, resp *peerResp, err error, attempt int) {
	if sp == nil {
		return
	}
	child := sp.Child("forward")
	child.SetAttr("peer", p.name)
	child.SetAttr("attempt", strconv.Itoa(attempt))
	if err != nil {
		child.SetAttr("error", err.Error())
	} else {
		child.SetAttr("status", strconv.Itoa(resp.status))
	}
	child.End()
}
