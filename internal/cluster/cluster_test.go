package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/telemetry"
)

// idOwnedBy finds an ID the ring assigns to the wanted member —
// content-derived IDs hash uniformly, so a handful of tries suffice.
func idOwnedBy(t *testing.T, r *ring, member string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("job-%d", i)
		if r.owner(id) == member {
			return id
		}
	}
	t.Fatalf("no ID owned by %s in 10000 tries", member)
	return ""
}

// idRoutedVia finds an ID whose failover sequence starts
// [first, second, ...] — tests that exercise failover need the next
// replica after the owner to be a specific member, and the ring
// decides that per ID.
func idRoutedVia(t *testing.T, r *ring, first, second string) string {
	t.Helper()
	for i := 0; i < 20000; i++ {
		id := fmt.Sprintf("job-%d", i)
		if seq := r.sequence(id); seq[0] == first && seq[1] == second {
			return id
		}
	}
	t.Fatalf("no ID routed %s then %s in 20000 tries", first, second)
	return ""
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	members := []string{"a", "b", "c"}
	r1 := newRing(members, 64)
	r2 := newRing([]string{"c", "a", "b"}, 64) // order must not matter

	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		id := fmt.Sprintf("id-%d", i)
		o := r1.owner(id)
		if o2 := r2.owner(id); o2 != o {
			t.Fatalf("rings disagree on %s: %s vs %s", id, o, o2)
		}
		counts[o]++
	}
	for _, m := range members {
		if counts[m] < 300 {
			t.Errorf("member %s owns only %d/3000 ids — ring badly skewed: %v", m, counts[m], counts)
		}
	}

	seq := r1.sequence("id-42")
	if len(seq) != 3 || seq[0] != r1.owner("id-42") {
		t.Errorf("sequence = %v, want all 3 members starting at owner %s", seq, r1.owner("id-42"))
	}
	seen := map[string]bool{}
	for _, m := range seq {
		if seen[m] {
			t.Errorf("sequence repeats %s: %v", m, seq)
		}
		seen[m] = true
	}
}

// TestRingRemappingIsMinimal pins the consistent-hashing property:
// removing one of three members remaps only that member's keys.
func TestRingRemappingIsMinimal(t *testing.T) {
	full := newRing([]string{"a", "b", "c"}, 64)
	reduced := newRing([]string{"a", "b"}, 64)
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("id-%d", i)
		before := full.owner(id)
		if before == "c" {
			continue
		}
		if after := reduced.owner(id); after != before {
			t.Fatalf("id %s moved %s -> %s though its owner did not leave", id, before, after)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := newBreaker(3, time.Minute)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused forward %d", i)
		}
		b.failure()
	}
	if b.state() != breakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.state())
	}
	b.failure() // third consecutive: opens
	if b.state() != breakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.state())
	}
	if b.allow() {
		t.Fatal("open breaker allowed a forward before cooldown")
	}

	now = now.Add(time.Minute) // cooldown elapsed: half-open
	if b.state() != breakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.state())
	}
	if !b.allow() {
		t.Fatal("half-open breaker refused the trial")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.failure() // trial failed: re-open, cooldown re-armed
	if b.state() != breakerOpen || b.allow() {
		t.Fatal("failed trial did not re-open the breaker")
	}

	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatal("re-armed breaker refused the next trial")
	}
	b.success()
	if b.state() != breakerClosed || !b.allow() {
		t.Fatal("successful trial did not close the breaker")
	}
}

// TestBreakerCanForwardDoesNotConsumeTrial pins the peek/claim split:
// candidate selection may look at a half-open breaker any number of
// times without consuming the single trial slot, which only allow()
// claims.  (A consumed-but-never-launched trial would otherwise
// exclude a recovered peer from routing forever.)
func TestBreakerCanForwardDoesNotConsumeTrial(t *testing.T) {
	b := newBreaker(1, time.Minute)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	b.failure() // opens
	if b.canForward() {
		t.Fatal("open breaker reports canForward")
	}
	now = now.Add(time.Minute) // half-open
	for i := 0; i < 3; i++ {
		if !b.canForward() {
			t.Fatalf("half-open peek %d refused — a previous peek consumed the trial", i)
		}
	}
	if !b.allow() {
		t.Fatal("half-open breaker refused the trial after peeks")
	}
	if b.canForward() {
		t.Fatal("canForward ignores an in-flight trial")
	}
	b.success()
	if !b.canForward() {
		t.Fatal("closed breaker refuses forwards")
	}
}

// testCluster builds a 3-member cluster ("self", "b", "c") with b and
// c backed by the given handlers, a paused prober (huge interval) and
// fast retries.
func testCluster(t *testing.T, hb, hc http.Handler, mut func(*Options)) (*Cluster, *telemetry.Registry) {
	t.Helper()
	tsB := httptest.NewServer(hb)
	tsC := httptest.NewServer(hc)
	t.Cleanup(tsB.Close)
	t.Cleanup(tsC.Close)
	reg := telemetry.NewRegistry()
	opts := Options{
		Self: "self",
		Peers: []Peer{
			{Name: "self"},
			{Name: "b", URL: tsB.URL},
			{Name: "c", URL: tsC.URL},
		},
		ProbeInterval:    time.Hour, // prober stays quiet unless a test wants it
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		ForwardTimeout:   2 * time.Second,
		Retry:            RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		Metrics:          reg,
	}
	if mut != nil {
		mut(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, reg
}

// route drives one Route call and returns the recorder plus outcome.
func route(c *Cluster, req Request) (*httptest.ResponseRecorder, Outcome) {
	w := httptest.NewRecorder()
	r := httptest.NewRequest(req.Method, "http://client"+req.Path, nil)
	r.Header.Set(RequestIDHeader, "req-test")
	return w, c.Route(w, r, req)
}

func TestRouteForwardsToOwnerAndRelays(t *testing.T) {
	leakcheck.Check(t)
	okBody := []byte(`{"state":"done"}`)
	handler := func(node string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Header.Get(ForwardedByHeader) != "self" {
				t.Errorf("forwarded request missing %s", ForwardedByHeader)
			}
			if r.Header.Get(RequestIDHeader) != "req-test" {
				t.Errorf("request ID not threaded, got %q", r.Header.Get(RequestIDHeader))
			}
			w.Header().Set(NodeHeader, node)
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(okBody)
		})
	}
	c, _ := testCluster(t, handler("b"), handler("c"), nil)

	// ID owned by self: no forwarding, caller serves.
	selfID := idOwnedBy(t, c.ring, "self")
	if _, out := route(c, Request{ID: selfID, Method: "GET", Path: "/v1/jobs/" + selfID}); out.Handled || out.FailedOver {
		t.Fatalf("self-owned ID was forwarded: %+v", out)
	}

	// ID owned by b: forwarded and relayed.
	bID := idOwnedBy(t, c.ring, "b")
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/v1/jobs/" + bID})
	if !out.Handled || out.Peer != "b" || out.FailedOver {
		t.Fatalf("outcome = %+v, want handled by b", out)
	}
	if w.Code != 200 || w.Body.String() != string(okBody) {
		t.Errorf("relayed %d %q", w.Code, w.Body.String())
	}
	if w.Header().Get(NodeHeader) != "b" {
		t.Errorf("%s = %q, want b", NodeHeader, w.Header().Get(NodeHeader))
	}
	if w.Header().Get(FailoverHeader) != "" {
		t.Error("clean forward carries the failover marker")
	}
}

func TestRouteFailsOverPastFailingOwner(t *testing.T) {
	leakcheck.Check(t)
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(NodeHeader, "c")
		_, _ = w.Write([]byte("ok"))
	})
	c, _ := testCluster(t, bad, good, nil)

	bID := idRoutedVia(t, c.ring, "b", "c")
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/v1/jobs/" + bID})
	if !out.Handled || !out.FailedOver {
		t.Fatalf("outcome = %+v, want handled with failover", out)
	}
	if w.Code != 200 || w.Body.String() != "ok" {
		t.Errorf("failover response %d %q, want 200 ok from c", w.Code, w.Body.String())
	}
	if w.Header().Get(FailoverHeader) != "1" {
		t.Error("failover response not marked")
	}
	if c.Failovers() == 0 {
		t.Error("failover counter did not move")
	}
	// A 5xx peer is never relayed: the owner answered 500 twice
	// (retry), both recorded as errors.
	if got := c.forwards.With("b", "error").Value(); got != 2 {
		t.Errorf("owner error forwards = %d, want 2 (retry then failover)", got)
	}
}

func TestBreakerOpensAndSkipsWithoutNetwork(t *testing.T) {
	leakcheck.Check(t)
	var hits atomic.Int64
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	c, _ := testCluster(t, bad, good, func(o *Options) {
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Hour
		o.Retry = RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}
	})

	bID := idRoutedVia(t, c.ring, "b", "c")
	// Two routes = two failures = breaker opens.
	route(c, Request{ID: bID, Method: "GET", Path: "/x"})
	route(c, Request{ID: bID, Method: "GET", Path: "/x"})
	if got := c.peers["b"].br.state(); got != breakerOpen {
		t.Fatalf("breaker state after failures = %v, want open", got)
	}
	before := hits.Load()
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/x"})
	if !out.Handled || !out.FailedOver || w.Code != 200 {
		t.Fatalf("route with open breaker: %+v code=%d", out, w.Code)
	}
	if hits.Load() != before {
		t.Errorf("open breaker still let %d request(s) through", hits.Load()-before)
	}
	if st := c.Status(); !st.Degraded {
		t.Error("cluster with an open breaker reports itself healthy")
	}
}

func TestHedgedGetWinsOnSlowOwner(t *testing.T) {
	leakcheck.Check(t)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		_, _ = w.Write([]byte("slow"))
	})
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("fast"))
	})
	c, _ := testCluster(t, slow, fast, func(o *Options) {
		o.HedgeDelay = 20 * time.Millisecond
	})

	bID := idRoutedVia(t, c.ring, "b", "c")
	start := time.Now()
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/x", Hedge: true})
	if !out.Handled || w.Body.String() != "fast" {
		t.Fatalf("hedged read: %+v body=%q, want fast replica's answer", out, w.Body.String())
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Errorf("hedged read took %v — waited for the slow owner", d)
	}
	if c.hedges.Value() != 1 || c.hedgeWins.Value() != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", c.hedges.Value(), c.hedgeWins.Value())
	}
}

// TestHedgeMissWaitsForSlowOwner pins the spurious-404 fix: a hedge
// fired at a non-owner that misses locally (503 + MissHeader, the
// clusterMiss shape) must not be relayed — the slow-but-healthy
// owner's eventual 200 is the answer.  The miss is also not a peer
// fault: the hedge peer's breaker stays closed.
func TestHedgeMissWaitsForSlowOwner(t *testing.T) {
	leakcheck.Check(t)
	owner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		_, _ = w.Write([]byte("owner-result"))
	})
	var hedged atomic.Int64
	missing := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hedged.Add(1)
		if r.Header.Get(FailoverHeader) != "1" {
			t.Error("hedge hop to non-owner not marked as failover on the wire")
		}
		w.Header().Set(MissHeader, "1")
		http.Error(w, "no local copy", http.StatusServiceUnavailable)
	})
	c, _ := testCluster(t, owner, missing, func(o *Options) {
		o.HedgeDelay = 20 * time.Millisecond
	})

	bID := idRoutedVia(t, c.ring, "b", "c")
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/v1/jobs/" + bID, Hedge: true})
	if !out.Handled || out.Peer != "b" {
		t.Fatalf("outcome = %+v, want the owner's answer", out)
	}
	if w.Code != 200 || w.Body.String() != "owner-result" {
		t.Fatalf("hedged read relayed %d %q, want the owner's 200", w.Code, w.Body.String())
	}
	if hedged.Load() == 0 {
		t.Fatal("hedge never fired — test exercised nothing")
	}
	if got := c.forwards.With("c", "miss").Value(); got != 1 {
		t.Errorf("miss forwards to c = %d, want 1", got)
	}
	if st := c.peers["c"].br.state(); st != breakerClosed {
		t.Errorf("hedge peer's breaker = %v after a miss, want closed", st)
	}
}

// TestHedgeFailoverMarksResponse pins the header contract: when the
// owner fails before the hedge delay and the next replica serves, the
// relayed response must carry the failover marker.
func TestHedgeFailoverMarksResponse(t *testing.T) {
	leakcheck.Check(t)
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	c, _ := testCluster(t, bad, good, func(o *Options) {
		o.HedgeDelay = 500 * time.Millisecond // owner fails long before it
	})

	bID := idRoutedVia(t, c.ring, "b", "c")
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/x", Hedge: true})
	if !out.Handled || !out.FailedOver || out.Peer != "c" {
		t.Fatalf("outcome = %+v, want handled by c with failover", out)
	}
	if w.Code != 200 || w.Header().Get(FailoverHeader) != "1" {
		t.Errorf("failed-over hedge response %d, %s=%q — failover not marked",
			w.Code, FailoverHeader, w.Header().Get(FailoverHeader))
	}
	if c.Failovers() == 0 {
		t.Error("failover counter did not move")
	}
}

// TestFailoverMissKeepsWalking pins the intermediate-replica story:
// with the owner down, a non-owner's local miss (404 here — even a
// peer that forgets the MissHeader stamp) is never relayed; the walk
// continues and falls through to self, so the caller — not the
// non-owner — decides what a miss means.
func TestFailoverMissKeepsWalking(t *testing.T) {
	leakcheck.Check(t)
	dead := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	missing := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(FailoverHeader) != "1" {
			t.Error("failover hop to non-owner not marked on the wire")
		}
		http.Error(w, "no such job", http.StatusNotFound)
	})
	c, _ := testCluster(t, dead, missing, nil)

	bID := idRoutedVia(t, c.ring, "b", "c")
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/v1/jobs/" + bID})
	if out.Handled || !out.FailedOver {
		t.Fatalf("outcome = %+v, want unhandled fall-through to self with failover", out)
	}
	if w.Code == http.StatusNotFound {
		t.Fatal("non-owner's 404 was relayed to the client")
	}
	if w.Header().Get(FailoverHeader) != "1" {
		t.Error("local fall-through after failover not marked")
	}
	if got := c.forwards.With("c", "miss").Value(); got != 1 {
		t.Errorf("miss forwards to c = %d, want 1 (no retries on a miss)", got)
	}
	if st := c.peers["c"].br.state(); st != breakerClosed {
		t.Errorf("missing peer's breaker = %v, want closed (a miss is not a fault)", st)
	}
}

// TestOversizePeerBodyFailsOver pins the relay cap: a peer body past
// maxRelayBody must fail the forward (and fail over) rather than be
// truncated and relayed as a clean 200.
func TestOversizePeerBodyFailsOver(t *testing.T) {
	leakcheck.Check(t)
	huge := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(bytes.Repeat([]byte("x"), maxRelayBody+1))
	})
	good := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	c, _ := testCluster(t, huge, good, func(o *Options) {
		o.Retry = RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}
	})

	bID := idRoutedVia(t, c.ring, "b", "c")
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/x"})
	if !out.Handled || !out.FailedOver || out.Peer != "c" {
		t.Fatalf("outcome = %+v, want failover to c past the oversize body", out)
	}
	if w.Code != 200 || w.Body.String() != "ok" {
		t.Errorf("relayed %d with %d-byte body, want c's 200 ok", w.Code, w.Body.Len())
	}
}

func TestProberMarksDeadPeerDownAndRecovers(t *testing.T) {
	leakcheck.Check(t)
	var down atomic.Bool
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "dead", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ok"))
	})
	good := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	c, _ := testCluster(t, flaky, good, func(o *Options) {
		o.ProbeInterval = 10 * time.Millisecond
		o.ProbeTimeout = 100 * time.Millisecond
		o.FailThreshold = 2
	})

	waitHealthy := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for c.peers["b"].healthy() != want {
			if time.Now().After(deadline) {
				t.Fatalf("peer b never became healthy=%v", want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitHealthy(true)
	down.Store(true)
	waitHealthy(false)
	if st := c.Status(); !st.Degraded {
		t.Error("down peer did not degrade the cluster status")
	}
	// Routing an ID owned by the down peer skips it without a dial.
	bID := idRoutedVia(t, c.ring, "b", "c")
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/x"})
	if !out.Handled || !out.FailedOver || w.Code != 200 {
		t.Fatalf("route past down peer: %+v code=%d", out, w.Code)
	}
	down.Store(false)
	waitHealthy(true)
}

func TestFaultPointRetriesAndRecovers(t *testing.T) {
	leakcheck.Check(t)
	defer faultinject.Reset()
	good := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	c, _ := testCluster(t, good, good, nil)

	// Exactly one injected transport fault: the first attempt fails,
	// the in-peer retry succeeds — no failover needed.
	faultinject.Enable("cluster.forward", faultinject.PointConfig{Mode: faultinject.Error, Prob: 1, Count: 1})
	bID := idOwnedBy(t, c.ring, "b")
	w, out := route(c, Request{ID: bID, Method: "GET", Path: "/x"})
	if !out.Handled || out.FailedOver || w.Code != 200 {
		t.Fatalf("route under single fault: %+v code=%d", out, w.Code)
	}
	if got := c.forwards.With("b", "error").Value(); got != 1 {
		t.Errorf("error forwards = %d, want 1 (the injected fault)", got)
	}
	if got := c.forwards.With("b", "ok").Value(); got != 1 {
		t.Errorf("ok forwards = %d, want 1 (the retry)", got)
	}
}

func TestNewValidation(t *testing.T) {
	base := []Peer{{Name: "a"}, {Name: "b", URL: "http://x"}}
	cases := []Options{
		{Peers: base},                           // no self
		{Self: "z", Peers: base},                // self not a member
		{Self: "a", Peers: []Peer{{Name: "a"}}}, // too few
		{Self: "a", Peers: []Peer{{Name: "a"}, {Name: "a", URL: "http://"}}}, // duplicate
		{Self: "a", Peers: []Peer{{Name: "a"}, {Name: "b"}}},                 // remote without URL
	}
	for i, o := range cases {
		if c, err := New(o); err == nil {
			c.Close()
			t.Errorf("case %d: New accepted invalid options %+v", i, o)
		}
	}
}
