package cluster

import (
	"sync"
	"time"
)

// breakerState names the circuit breaker's three states for status
// reporting and the dlsim_cluster_breaker_state gauge (0 closed,
// 1 half-open, 2 open).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-peer circuit breaker over the forwarding path.
// Closed, every forward is allowed.  After `threshold` consecutive
// failures it opens: forwards to the peer are skipped (the ring walk
// falls through to the next replica) until `cooldown` elapses, at
// which point exactly one trial request is let through (half-open).
// The trial's success closes the breaker; its failure re-opens it for
// another cooldown.  The breaker sees only forward outcomes — the
// background health prober is a separate, probe-driven view — so a
// peer that answers /healthz but fails real requests still trips it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	fails    int       // consecutive failures while closed
	openedAt time.Time // zero while closed
	trial    bool      // a half-open trial is in flight
	now      func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a forward may proceed.  In half-open it
// admits a single trial; concurrent callers are rejected until the
// trial resolves via success or failure.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return true
	}
	if b.now().Sub(b.openedAt) < b.cooldown || b.trial {
		return false
	}
	b.trial = true
	return true
}

// canForward reports whether a forward could proceed right now,
// WITHOUT consuming the half-open trial slot.  Candidate selection
// (e.g. picking a hedge peer that may never be contacted) must use
// this; allow() is reserved for the moment a request actually
// launches, so an unused selection can never strand the breaker with
// a trial that nobody resolves.
func (b *breaker) canForward() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return true
	}
	return b.now().Sub(b.openedAt) >= b.cooldown && !b.trial
}

// success records a successful forward: any state resets to closed.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.openedAt = time.Time{}
	b.trial = false
}

// failure records a failed forward, opening the breaker at the
// threshold and re-arming the cooldown when a half-open trial fails.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openedAt.IsZero() {
		// Half-open trial failed (or a pre-open forward completed
		// late); re-arm the full cooldown.
		b.openedAt = b.now()
		b.trial = false
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.openedAt = b.now()
	}
}

// state reports the breaker's current state for /readyz and metrics.
func (b *breaker) state() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openedAt.IsZero():
		return breakerClosed
	case b.now().Sub(b.openedAt) >= b.cooldown:
		return breakerHalfOpen
	default:
		return breakerOpen
	}
}
