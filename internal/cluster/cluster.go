// Package cluster is dlsimd's fault-tolerant sharding layer: a static
// member list, consistent-hash routing of content-derived job and
// batch IDs across N replicas, and an HTTP forwarding path that owns
// the failure story.
//
// Routing is trivial because IDs are content-derived (the same
// property that makes retries idempotent — see DESIGN.md §12): every
// node hashes an ID onto the same ring and forwards to its owner, so
// any replica can front the whole cluster.  The hard part is
// surviving the failures multi-node introduces, and each has an
// explicit mechanism:
//
//   - dead peers    — a background prober hits every peer's /healthz;
//     `FailThreshold` consecutive failures mark it down and the ring
//     walk skips it (failover to the next replica clockwise).
//   - flaky peers   — per-forward failures feed a per-peer circuit
//     breaker (open after `BreakerThreshold` consecutive failures,
//     half-open trial after `BreakerCooldown`), so a peer that
//     answers probes but fails requests is still routed around.
//   - slow peers    — every hop has a `ForwardTimeout`; transient
//     failures retry with capped exponential backoff + jitter
//     (RetryPolicy, mirroring internal/runner's shape); optional
//     hedged GETs start a second replica read after `HedgeDelay` and
//     take the first success, cutting tail latency on result reads.
//   - half-finished work — forwarding is at most one hop (a forwarded
//     request is always served where it lands), and because IDs are
//     content-derived, re-routing a job to a different replica
//     recomputes bit-identical results instead of corrupting state.
//
// Every hop threads X-Request-ID, emits dlsim_cluster_* metrics
// (forwards, failovers, breaker state, per-peer latency histograms)
// and forward/failover spans in the shared tracer, and evaluates the
// `cluster.forward` fault-injection point so the chaos suite can
// drive error/delay/hang through the real client.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Peer names one cluster member: its ring identity and base URL.
type Peer struct {
	// Name is the member's stable identity on the hash ring.  It must
	// be unique and identical in every member's configuration, or the
	// nodes will disagree about ownership.
	Name string

	// URL is the member's base HTTP address, e.g. "http://10.0.0.2:8344".
	URL string
}

// Options configures a node's view of the cluster.
type Options struct {
	// Self is this node's Name in Peers.
	Self string

	// Peers is the full static member list, including self.
	Peers []Peer

	// VirtualNodes is the number of ring points per member (0 =
	// default 64).  More points smooth the load split at the cost of
	// a larger ring.
	VirtualNodes int

	// ProbeInterval is the health-probe period (0 = default 1s);
	// ProbeTimeout bounds each probe (0 = default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// FailThreshold is the number of consecutive probe failures that
	// marks a peer down (0 = default 3).
	FailThreshold int

	// BreakerThreshold is the number of consecutive forward failures
	// that opens a peer's circuit breaker (0 = default 5);
	// BreakerCooldown is how long it stays open before a half-open
	// trial (0 = default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ForwardTimeout bounds each forwarded hop (0 = default 5s).
	ForwardTimeout time.Duration

	// HedgeDelay, when positive, arms hedged GETs: if the owner has
	// not answered a result read within this delay, the same GET is
	// raced against the next replica and the first success wins.
	// Zero disables hedging.
	HedgeDelay time.Duration

	// Retry governs per-peer retransmission of transiently failed
	// forwards before failing over to the next replica.
	Retry RetryPolicy

	// Metrics receives the dlsim_cluster_* instrument set; nil
	// registers into a private registry.  Tracer, when non-nil,
	// records a forward span tree per forwarded request under
	// "fwd-<request-id>".
	Metrics *telemetry.Registry
	Tracer  *telemetry.Tracer

	// Transport overrides the forwarding client's RoundTripper
	// (tests); nil uses a dedicated transport with sane pool limits.
	Transport http.RoundTripper
}

// peer is one member plus this node's live view of it.
type peer struct {
	name string
	url  string
	self bool
	br   *breaker

	mu          sync.Mutex
	probeFails  int  // consecutive health-probe failures
	healthyView bool // probe-driven liveness
}

// healthy reports the probe-driven view of the peer.
func (p *peer) healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthyView
}

// Cluster is one node's routing and forwarding engine.  Create it
// with New, share it with the HTTP layer, and Close it on shutdown to
// stop the health prober.
type Cluster struct {
	self   string
	ring   *ring
	peers  map[string]*peer
	client *http.Client
	tracer *telemetry.Tracer

	probeInterval time.Duration
	probeTimeout  time.Duration
	failThreshold int
	forwardTO     time.Duration
	hedgeDelay    time.Duration
	retry         RetryPolicy

	// instruments
	forwards    *telemetry.CounterVec // peer, outcome
	failovers   *telemetry.Counter
	hedges      *telemetry.Counter
	hedgeWins   *telemetry.Counter
	peerUp      *telemetry.GaugeVec
	brState     *telemetry.GaugeVec
	peerLatency *telemetry.HistogramVec
	probes      *telemetry.CounterVec // peer, outcome

	stop chan struct{}
	done chan struct{}
}

// New validates the member list and starts the health prober.
func New(opts Options) (*Cluster, error) {
	if opts.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	if len(opts.Peers) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 peers, got %d", len(opts.Peers))
	}
	if opts.VirtualNodes <= 0 {
		opts.VirtualNodes = 64
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 3
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * time.Second
	}
	if opts.ForwardTimeout <= 0 {
		opts.ForwardTimeout = 5 * time.Second
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	names := make([]string, 0, len(opts.Peers))
	peers := make(map[string]*peer, len(opts.Peers))
	for _, m := range opts.Peers {
		if m.Name == "" {
			return nil, fmt.Errorf("cluster: peer with empty name")
		}
		if _, dup := peers[m.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", m.Name)
		}
		if m.URL == "" && m.Name != opts.Self {
			return nil, fmt.Errorf("cluster: peer %q has no URL", m.Name)
		}
		peers[m.Name] = &peer{
			name:        m.Name,
			url:         m.URL,
			self:        m.Name == opts.Self,
			br:          newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
			healthyView: true, // innocent until probed guilty
		}
		names = append(names, m.Name)
	}
	if _, ok := peers[opts.Self]; !ok {
		return nil, fmt.Errorf("cluster: Self %q not in peer list", opts.Self)
	}

	transport := opts.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}
	}
	c := &Cluster{
		self:          opts.Self,
		ring:          newRing(names, opts.VirtualNodes),
		peers:         peers,
		client:        &http.Client{Transport: transport},
		tracer:        opts.Tracer,
		probeInterval: opts.ProbeInterval,
		probeTimeout:  opts.ProbeTimeout,
		failThreshold: opts.FailThreshold,
		forwardTO:     opts.ForwardTimeout,
		hedgeDelay:    opts.HedgeDelay,
		retry:         opts.Retry.normalized(),

		forwards: reg.CounterVec("dlsim_cluster_forwards_total",
			"Forwarded requests by destination peer and outcome.", "peer", "outcome"),
		failovers: reg.Counter("dlsim_cluster_failovers_total",
			"Requests re-routed past an unavailable or failing owner to the next ring replica."),
		hedges: reg.Counter("dlsim_cluster_hedges_total",
			"Hedged result reads launched after the owner stalled past the hedge delay."),
		hedgeWins: reg.Counter("dlsim_cluster_hedge_wins_total",
			"Hedged result reads won by the second replica."),
		peerUp: reg.GaugeVec("dlsim_cluster_peer_up",
			"Probe-driven peer liveness (1 up, 0 down).", "peer"),
		brState: reg.GaugeVec("dlsim_cluster_breaker_state",
			"Per-peer circuit-breaker state (0 closed, 1 half-open, 2 open).", "peer"),
		peerLatency: reg.HistogramVec("dlsim_cluster_peer_latency_ms",
			"Forwarded-hop latency by destination peer.",
			telemetry.ExponentialBuckets(0.25, 2, 16), "peer"),
		probes: reg.CounterVec("dlsim_cluster_probes_total",
			"Health probes by peer and outcome.", "peer", "outcome"),

		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for name, p := range peers {
		if !p.self {
			c.peerUp.With(name).Set(1)
			c.brState.With(name).Set(int64(breakerClosed))
		}
	}
	go c.probeLoop()
	return c, nil
}

// Close stops the health prober and the forwarding client's idle
// connections.  Forwards in flight finish on their own contexts.
func (c *Cluster) Close() {
	close(c.stop)
	<-c.done
	if t, ok := c.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// Self returns this node's member name.
func (c *Cluster) Self() string { return c.self }

// Owner returns the member name owning the ID on the ring.
func (c *Cluster) Owner(id string) string { return c.ring.owner(id) }

// Failovers returns the node's failover count (tests and harnesses;
// the same value is exported as dlsim_cluster_failovers_total).
func (c *Cluster) Failovers() uint64 { return c.failovers.Value() }

// candidates returns the peers in failover order for the ID.
func (c *Cluster) candidates(id string) []*peer {
	names := c.ring.sequence(id)
	out := make([]*peer, len(names))
	for i, n := range names {
		out[i] = c.peers[n]
	}
	return out
}

// probeLoop drives the health view: every ProbeInterval each remote
// peer's /healthz is fetched; FailThreshold consecutive failures mark
// it down (the ring walk then skips it), any success marks it back
// up.  Down peers keep being probed, so recovery is automatic.
func (c *Cluster) probeLoop() {
	defer close(c.done)
	t := time.NewTicker(c.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, p := range c.peers {
			if p.self {
				continue
			}
			wg.Add(1)
			go func(p *peer) {
				defer wg.Done()
				c.probe(p)
			}(p)
		}
		wg.Wait()
	}
}

// probe fetches one peer's /healthz and updates its liveness view.
func (c *Cluster) probe(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
	if err == nil {
		resp, err := c.client.Do(req)
		if err == nil {
			_ = resp.Body.Close()
			ok = resp.StatusCode < 300
		}
	}
	outcome := "error"
	if ok {
		outcome = "ok"
	}
	c.probes.With(p.name, outcome).Inc()

	p.mu.Lock()
	if ok {
		p.probeFails = 0
		p.healthyView = true
	} else {
		p.probeFails++
		if p.probeFails >= c.failThreshold {
			p.healthyView = false
		}
	}
	up := int64(0)
	if p.healthyView {
		up = 1
	}
	p.mu.Unlock()
	c.peerUp.With(p.name).Set(up)
	c.brState.With(p.name).Set(int64(p.br.state()))
}

// PeerStatus is one member's row in the cluster status report served
// by /readyz.
type PeerStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url,omitempty"`
	Self    bool   `json:"self,omitempty"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`

	// ConsecutiveProbeFailures is the current probe-failure streak —
	// non-zero below FailThreshold means "degrading but still routed".
	ConsecutiveProbeFailures int `json:"consecutive_probe_failures,omitempty"`
}

// Status is the cluster-state block /readyz serves: orchestrators use
// Degraded to distinguish "serving with failover" from "healthy".
type Status struct {
	Self     string       `json:"self"`
	Size     int          `json:"size"`
	Degraded bool         `json:"degraded"`
	Peers    []PeerStatus `json:"peers"`
}

// Status snapshots every member's health and breaker state.  The
// cluster is degraded when any remote peer is down by probe or has a
// non-closed breaker.
func (c *Cluster) Status() Status {
	st := Status{Self: c.self, Size: len(c.peers)}
	for _, name := range c.ring.members {
		p := c.peers[name]
		row := PeerStatus{Name: p.name, URL: p.url, Self: p.self}
		if p.self {
			row.Healthy = true
			row.Breaker = breakerClosed.String()
		} else {
			p.mu.Lock()
			row.Healthy = p.healthyView
			row.ConsecutiveProbeFailures = p.probeFails
			p.mu.Unlock()
			bs := p.br.state()
			row.Breaker = bs.String()
			if !row.Healthy || bs != breakerClosed {
				st.Degraded = true
			}
		}
		st.Peers = append(st.Peers, row)
	}
	return st
}

// PeerForwards is one remote peer's forwarded-request outcome counts.
type PeerForwards struct {
	Peer  string `json:"peer"`
	OK    uint64 `json:"ok"`
	Miss  uint64 `json:"miss"`
	Error uint64 `json:"error"`
}

// Stats is the cluster tier served inside GET /v1/stats: the /readyz
// health view plus this node's forwarding activity, so one endpoint
// summarizes the routing layer next to the pool and store tiers.  All
// values are read from the same telemetry counters /metrics exports.
type Stats struct {
	Status

	// Forwards lists per-remote-peer forward outcomes, ring order,
	// remote peers only (a node never forwards to itself).
	Forwards []PeerForwards `json:"forwards,omitempty"`

	// Failovers counts requests this node answered from a non-owner
	// replica after the owner was skipped or failed; Hedges counts
	// hedged secondary reads launched, HedgeWins those that answered
	// first.
	Failovers uint64 `json:"failovers"`
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
}

// Stats snapshots the cluster tier for /v1/stats.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Status:    c.Status(),
		Failovers: c.failovers.Value(),
		Hedges:    c.hedges.Value(),
		HedgeWins: c.hedgeWins.Value(),
	}
	for _, name := range c.ring.members {
		p := c.peers[name]
		if p.self {
			continue
		}
		st.Forwards = append(st.Forwards, PeerForwards{
			Peer:  p.name,
			OK:    c.forwards.With(p.name, "ok").Value(),
			Miss:  c.forwards.With(p.name, "miss").Value(),
			Error: c.forwards.With(p.name, "error").Value(),
		})
	}
	return st
}
