package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over member names.  Each member owns
// `virtual` points on a 64-bit circle; an ID is owned by the member
// whose point is the first at or clockwise after the ID's hash.
// Virtual points smooth the load split (with one point per member a
// 3-node ring can be arbitrarily lopsided) and keep remapping minimal
// when the member list changes: only the keys between a removed
// member's points and their successors move.
//
// The ring is immutable after construction — the member list is
// static configuration — so lookups are lock-free.
type ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, for deterministic iteration
}

// ringPoint is one virtual node: a position on the circle and the
// member that owns it.
type ringPoint struct {
	hash   uint64
	member string
}

// hash64 positions a key on the circle: FNV-1a for the byte walk,
// then a splitmix64 finalizer.  Raw FNV-1a diffuses short keys
// ("b#17", 8-hex-char IDs) poorly into the high bits that ring order
// sorts by, which clumps each member's virtual points together and
// degenerates the failover order; the finalizer's multiply-xor-shift
// cascade spreads every input bit across the full 64-bit circle.
func hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds the ring with `virtual` points per member.
func newRing(members []string, virtual int) *ring {
	r := &ring{
		points:  make([]ringPoint, 0, len(members)*virtual),
		members: append([]string(nil), members...),
	}
	sort.Strings(r.members)
	for _, m := range r.members {
		for i := 0; i < virtual; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m, i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) break by name so
		// every node computes the same ring.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// owner returns the member owning the ID.
func (r *ring) owner(id string) string {
	return r.points[r.successor(hash64(id))].member
}

// successor returns the index of the first point at or after h,
// wrapping past the top of the circle.
func (r *ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// sequence returns every member in ring order starting at the ID's
// owner: the failover order.  The owner is first; each later entry is
// the next distinct member clockwise, so every node computes the same
// candidate list and a failed-over request lands deterministically.
func (r *ring) sequence(id string) []string {
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	start := r.successor(hash64(id))
	for i := 0; len(out) < len(r.members) && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
