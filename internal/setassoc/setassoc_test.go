package setassoc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasicInsertLookup(t *testing.T) {
	tb := New[string](4, 2)
	tb.Insert(0x10, "a")
	v, ok := tb.Lookup(0x10)
	if !ok || v != "a" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	if _, ok := tb.Lookup(0x20); ok {
		t.Error("absent key hit")
	}
	if tb.Lookups() != 2 || tb.Hits() != 1 || tb.Misses() != 1 {
		t.Errorf("counters = %d/%d/%d", tb.Lookups(), tb.Hits(), tb.Misses())
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	tb := New[int](1, 2)
	tb.Insert(1, 10)
	if ev := tb.Insert(1, 20); ev {
		t.Error("update reported eviction")
	}
	v, _ := tb.Lookup(1)
	if v != 20 {
		t.Errorf("value = %d, want 20", v)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	tb := New[int](1, 2) // fully associative, 2 entries
	tb.Insert(1, 1)
	tb.Insert(2, 2)
	tb.Lookup(1) // make 2 the LRU
	if ev := tb.Insert(3, 3); !ev {
		t.Error("expected eviction")
	}
	if _, ok := tb.Lookup(2); ok {
		t.Error("LRU entry 2 should have been evicted")
	}
	if _, ok := tb.Lookup(1); !ok {
		t.Error("MRU entry 1 was evicted")
	}
	if tb.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", tb.Evictions())
	}
}

func TestSetIsolation(t *testing.T) {
	tb := New[int](4, 1)
	// Keys 0..3 land in different sets and must not evict each other.
	for k := uint64(0); k < 4; k++ {
		tb.Insert(k, int(k))
	}
	for k := uint64(0); k < 4; k++ {
		if v, ok := tb.Lookup(k); !ok || v != int(k) {
			t.Errorf("key %d: %d, %v", k, v, ok)
		}
	}
	// Key 4 conflicts with key 0 only.
	tb.Insert(4, 4)
	if _, ok := tb.Lookup(0); ok {
		t.Error("key 0 should have been evicted by key 4")
	}
	if _, ok := tb.Lookup(1); !ok {
		t.Error("key 1 should have survived")
	}
}

func TestPeekDoesNotPerturb(t *testing.T) {
	tb := New[int](1, 2)
	tb.Insert(1, 1)
	tb.Insert(2, 2)
	lk := tb.Lookups()
	// Peek at 1 must not make it MRU nor bump counters.
	if v, ok := tb.Peek(1); !ok || v != 1 {
		t.Fatal("Peek failed")
	}
	if tb.Lookups() != lk {
		t.Error("Peek bumped lookup counter")
	}
	tb.Insert(3, 3) // should evict LRU = 1 (Peek must not have refreshed it)
	if _, ok := tb.Peek(1); ok {
		t.Error("Peek refreshed LRU state")
	}
	if _, ok := tb.Peek(9); ok {
		t.Error("Peek of absent key hit")
	}
}

func TestInvalidate(t *testing.T) {
	tb := New[int](2, 2)
	tb.Insert(4, 4)
	if !tb.Invalidate(4) {
		t.Error("Invalidate of present key returned false")
	}
	if tb.Invalidate(4) {
		t.Error("Invalidate of absent key returned true")
	}
	if _, ok := tb.Lookup(4); ok {
		t.Error("invalidated key still present")
	}
}

func TestClear(t *testing.T) {
	tb := New[int](4, 4)
	for k := uint64(0); k < 16; k++ {
		tb.Insert(k, 1)
	}
	if tb.Len() != 16 {
		t.Fatalf("Len = %d, want 16", tb.Len())
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Errorf("Len after Clear = %d", tb.Len())
	}
	for k := uint64(0); k < 16; k++ {
		if _, ok := tb.Lookup(k); ok {
			t.Fatalf("key %d survived Clear", k)
		}
	}
}

func TestResetStats(t *testing.T) {
	tb := New[int](1, 1)
	tb.Insert(1, 1)
	tb.Lookup(1)
	tb.Lookup(2)
	tb.ResetStats()
	if tb.Lookups() != 0 || tb.Hits() != 0 || tb.Misses() != 0 || tb.Evictions() != 0 {
		t.Error("ResetStats did not zero counters")
	}
	if v, ok := tb.Lookup(1); !ok || v != 1 {
		t.Error("ResetStats dropped contents")
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, g := range []struct{ sets, ways int }{{0, 1}, {1, 0}, {3, 2}, {-4, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", g.sets, g.ways)
				}
			}()
			New[int](g.sets, g.ways)
		}()
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	f := func(keys []uint64) bool {
		tb := New[uint64](8, 2)
		for _, k := range keys {
			tb.Insert(k, k)
		}
		return tb.Len() <= tb.Entries()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertedValueRetrievable(t *testing.T) {
	// Property: immediately after Insert(k,v), Lookup(k) returns v.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		tb := New[uint64](4, 4)
		for i := 0; i < 200; i++ {
			k := rng.Uint64() % 64
			tb.Insert(k, k*3)
			if v, ok := tb.Lookup(k); !ok || v != k*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetWithinWaysAlwaysHits(t *testing.T) {
	// A working set no larger than the associativity of one set must
	// never miss after warmup — the LRU guarantee.
	tb := New[int](1, 4)
	keys := []uint64{10, 20, 30, 40}
	for _, k := range keys {
		tb.Insert(k, 1)
	}
	tb.ResetStats()
	for round := 0; round < 100; round++ {
		for _, k := range keys {
			if _, ok := tb.Lookup(k); !ok {
				t.Fatalf("miss on %d within-capacity working set", k)
			}
		}
	}
	if tb.Misses() != 0 {
		t.Errorf("misses = %d, want 0", tb.Misses())
	}
}
