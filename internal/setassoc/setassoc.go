// Package setassoc implements a generic set-associative, LRU-replaced
// lookup table — the storage organisation shared by every hardware
// structure in the simulator: caches, TLBs, the BTB and the ABTB.
//
// Keys are 64-bit values (addresses or page numbers).  The set index
// is taken from the low bits of the key and the full key is stored as
// the tag, so aliasing between distinct keys never produces a false
// hit; conflict behaviour (the paper's concern for BTB pressure) comes
// from set overflow, exactly as in hardware.
package setassoc

import "fmt"

type entry[V any] struct {
	valid bool
	key   uint64
	val   V
	lru   uint64
}

// Table is a set-associative table mapping uint64 keys to values of
// type V.  Construct with New.
type Table[V any] struct {
	sets    int
	ways    int
	mask    uint64
	entries []entry[V]
	tick    uint64

	lookups   uint64
	hits      uint64
	evictions uint64
}

// New returns a table with the given geometry.  sets must be a power
// of two; both arguments must be positive.  It panics otherwise, since
// geometry is fixed hardware configuration.
func New[V any](sets, ways int) *Table[V] {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("setassoc: invalid geometry sets=%d ways=%d", sets, ways))
	}
	return &Table[V]{
		sets:    sets,
		ways:    ways,
		mask:    uint64(sets - 1),
		entries: make([]entry[V], sets*ways),
	}
}

// Sets returns the number of sets.
func (t *Table[V]) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.ways }

// Entries returns the total capacity in entries.
func (t *Table[V]) Entries() int { return t.sets * t.ways }

func (t *Table[V]) set(key uint64) []entry[V] {
	s := int(key & t.mask)
	return t.entries[s*t.ways : (s+1)*t.ways]
}

// Lookup returns the value stored for key and whether it was present,
// updating LRU state and hit/miss counters on the way.
func (t *Table[V]) Lookup(key uint64) (V, bool) {
	t.lookups++
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			t.tick++
			set[i].lru = t.tick
			t.hits++
			return set[i].val, true
		}
	}
	var zero V
	return zero, false
}

// Peek returns the value for key without updating LRU state or
// counters.  Used by retire-time checks that must not perturb the
// structure.
func (t *Table[V]) Peek(key uint64) (V, bool) {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			return set[i].val, true
		}
	}
	var zero V
	return zero, false
}

// Insert stores val under key, replacing the LRU way of the set if the
// key is not already present.  It reports whether a valid, different
// entry was evicted.
func (t *Table[V]) Insert(key uint64, val V) (evicted bool) {
	t.tick++
	set := t.set(key)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i].val = val
			set[i].lru = t.tick
			return false
		}
		if !set[i].valid {
			victim = i
			// Prefer an invalid way but keep scanning for the key.
			continue
		}
		if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evicted = set[victim].valid
	if evicted {
		t.evictions++
	}
	set[victim] = entry[V]{valid: true, key: key, val: val, lru: t.tick}
	return evicted
}

// Invalidate removes key if present, reporting whether it was.
func (t *Table[V]) Invalidate(key uint64) bool {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].key == key {
			set[i] = entry[V]{}
			return true
		}
	}
	return false
}

// Clear invalidates every entry (flush).  Statistics are preserved.
func (t *Table[V]) Clear() {
	for i := range t.entries {
		t.entries[i] = entry[V]{}
	}
}

// Len returns the number of valid entries.
func (t *Table[V]) Len() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// Lookups returns the number of Lookup calls.
func (t *Table[V]) Lookups() uint64 { return t.lookups }

// Hits returns the number of Lookup calls that hit.
func (t *Table[V]) Hits() uint64 { return t.hits }

// Misses returns the number of Lookup calls that missed.
func (t *Table[V]) Misses() uint64 { return t.lookups - t.hits }

// Evictions returns the number of valid entries replaced by Insert.
func (t *Table[V]) Evictions() uint64 { return t.evictions }

// ResetStats zeroes the hit/miss/eviction counters, keeping contents.
// Used to exclude warmup from measurement windows.
func (t *Table[V]) ResetStats() {
	t.lookups, t.hits, t.evictions = 0, 0, 0
}
