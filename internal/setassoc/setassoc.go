// Package setassoc implements a generic set-associative, LRU-replaced
// lookup table — the storage organisation shared by every hardware
// structure in the simulator: caches, TLBs, the BTB and the ABTB.
//
// Keys are 64-bit values (addresses or page numbers).  The set index
// is taken from the low bits of the key and the full key is stored as
// the tag, so aliasing between distinct keys never produces a false
// hit; conflict behaviour (the paper's concern for BTB pressure) comes
// from set overflow, exactly as in hardware.
//
// Lookup is the hottest function in the simulator — every I-cache,
// D-cache, TLB, BTB and ABTB access lands here, and the ABTB is a
// 256-way fully-associative CAM probed once per retired call.  Three
// accelerations keep the modelled semantics (lookup/hit counters, LRU
// ordering, eviction choice) bit-identical while avoiding the naive
// O(ways) scan in the common cases:
//
//   - a last-hit memo: sequential code re-probes the same line/page/
//     target back to back, so the previously hit entry is checked
//     first (revalidated against key+valid, so staleness is harmless);
//   - a per-set occupancy count, so scans stop after all valid entries
//     have been examined instead of walking every way of a mostly
//     empty high-associativity set;
//   - a per-set 64-bit key signature (a superset of the resident keys'
//     hash bits), so most misses are rejected without scanning at all.
//     Replacement leaves stale bits behind — the signature is only
//     ever a superset, which costs a wasted scan, never a wrong
//     result — and Invalidate/Clear rebuild or reset it exactly.
package setassoc

import "fmt"

type entry[V any] struct {
	valid bool
	key   uint64
	val   V
	lru   uint64
}

// Table is a set-associative table mapping uint64 keys to values of
// type V.  Construct with New.
type Table[V any] struct {
	sets    int
	ways    int
	mask    uint64
	entries []entry[V]
	tick    uint64

	// occ[s] counts the valid entries in set s; sig[s] is a superset
	// signature of the keys resident in set s.  lastHit points at the
	// entry of the most recent Lookup hit, or nil.
	occ     []uint16
	sig     []uint64
	lastHit *entry[V]

	lookups   uint64
	hits      uint64
	evictions uint64
}

// sigBit maps a key to its signature bit.  The multiplier is the
// 64-bit golden ratio; the top six product bits select the bit so that
// keys differing only in low bits (adjacent lines, pages, slots) still
// spread across the signature.
func sigBit(key uint64) uint64 {
	return 1 << ((key * 0x9e3779b97f4a7c15) >> 58)
}

// New returns a table with the given geometry.  sets must be a power
// of two; both arguments must be positive.  It panics otherwise, since
// geometry is fixed hardware configuration.
func New[V any](sets, ways int) *Table[V] {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("setassoc: invalid geometry sets=%d ways=%d", sets, ways))
	}
	if ways > 1<<16-1 {
		panic(fmt.Sprintf("setassoc: associativity %d exceeds occupancy counter range", ways))
	}
	return &Table[V]{
		sets:    sets,
		ways:    ways,
		mask:    uint64(sets - 1),
		entries: make([]entry[V], sets*ways),
		occ:     make([]uint16, sets),
		sig:     make([]uint64, sets),
	}
}

// Sets returns the number of sets.
func (t *Table[V]) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.ways }

// Entries returns the total capacity in entries.
func (t *Table[V]) Entries() int { return t.sets * t.ways }

// Lookup returns the value stored for key and whether it was present,
// updating LRU state and hit/miss counters on the way.
func (t *Table[V]) Lookup(key uint64) (V, bool) {
	t.lookups++
	if e := t.lastHit; e != nil && e.key == key && e.valid {
		t.tick++
		e.lru = t.tick
		t.hits++
		return e.val, true
	}
	s := int(key & t.mask)
	if t.sig[s]&sigBit(key) != 0 {
		// Insert prefers the highest invalid way, so sets fill from
		// the top: scan downward and stop once every valid entry has
		// been seen.
		base := s * t.ways
		rem := int(t.occ[s])
		for i := base + t.ways - 1; rem > 0 && i >= base; i-- {
			e := &t.entries[i]
			if !e.valid {
				continue
			}
			if e.key == key {
				t.tick++
				e.lru = t.tick
				t.hits++
				t.lastHit = e
				return e.val, true
			}
			rem--
		}
	}
	var zero V
	return zero, false
}

// BumpHits applies n consecutive hit-Lookups of key in one step and
// reports whether the key was resident.  The counter and LRU effects
// are exactly those of calling Lookup n times when every call hits:
// lookups and hits advance by n, the tick advances by n, and the
// entry's LRU stamp lands on the final tick.  The compiled-trace
// replay loop uses it to account for a run of guaranteed same-line
// accesses without re-probing; callers must only use it when the key
// is known to be resident (n repeated accesses with nothing evicting
// in between).  If the key is in fact absent the single probe spent
// discovering that is recorded as an ordinary miss and false returns.
func (t *Table[V]) BumpHits(key uint64, n int) bool {
	if n <= 0 {
		return true
	}
	if _, ok := t.Lookup(key); !ok {
		return false
	}
	if n > 1 {
		// Lookup left lastHit pointing at key's entry; replay the
		// remaining n-1 hits in bulk.
		t.lookups += uint64(n - 1)
		t.hits += uint64(n - 1)
		t.tick += uint64(n - 1)
		t.lastHit.lru = t.tick
	}
	return true
}

// Peek returns the value for key without updating LRU state or
// counters.  Used by retire-time checks that must not perturb the
// structure.
func (t *Table[V]) Peek(key uint64) (V, bool) {
	s := int(key & t.mask)
	if t.sig[s]&sigBit(key) != 0 {
		base := s * t.ways
		rem := int(t.occ[s])
		for i := base + t.ways - 1; rem > 0 && i >= base; i-- {
			e := &t.entries[i]
			if !e.valid {
				continue
			}
			if e.key == key {
				return e.val, true
			}
			rem--
		}
	}
	var zero V
	return zero, false
}

// Insert stores val under key, replacing the LRU way of the set if the
// key is not already present.  It reports whether a valid, different
// entry was evicted.
//
// The direct-mapped case short-circuits: with one way there is nothing
// to scan and no LRU comparison to make.
func (t *Table[V]) Insert(key uint64, val V) (evicted bool) {
	t.tick++
	s := int(key & t.mask)
	base := s * t.ways
	if t.ways == 1 {
		e := &t.entries[base]
		if e.valid && e.key != key {
			t.evictions++
			evicted = true
		}
		*e = entry[V]{valid: true, key: key, val: val, lru: t.tick}
		t.occ[s] = 1
		t.sig[s] |= sigBit(key)
		return evicted
	}
	victim := base
	for i := base; i < base+t.ways; i++ {
		e := &t.entries[i]
		if e.valid && e.key == key {
			e.val = val
			e.lru = t.tick
			return false
		}
		if !e.valid {
			victim = i
			// Prefer an invalid way but keep scanning for the key.
			continue
		}
		if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	evicted = t.entries[victim].valid
	if evicted {
		t.evictions++
	} else {
		t.occ[s]++
	}
	t.entries[victim] = entry[V]{valid: true, key: key, val: val, lru: t.tick}
	t.sig[s] |= sigBit(key)
	return evicted
}

// Invalidate removes key if present, reporting whether it was.
func (t *Table[V]) Invalidate(key uint64) bool {
	s := int(key & t.mask)
	if t.sig[s]&sigBit(key) == 0 {
		return false
	}
	base := s * t.ways
	for i := base; i < base+t.ways; i++ {
		if e := &t.entries[i]; e.valid && e.key == key {
			*e = entry[V]{}
			t.occ[s]--
			t.rebuildSig(s)
			return true
		}
	}
	return false
}

// rebuildSig recomputes set s's signature exactly from its resident
// keys.  Only Invalidate needs it; replacement tolerates stale bits.
func (t *Table[V]) rebuildSig(s int) {
	var sig uint64
	base := s * t.ways
	for i := base; i < base+t.ways; i++ {
		if e := &t.entries[i]; e.valid {
			sig |= sigBit(e.key)
		}
	}
	t.sig[s] = sig
}

// Clear invalidates every entry (flush).  Statistics are preserved.
func (t *Table[V]) Clear() {
	for i := range t.entries {
		t.entries[i] = entry[V]{}
	}
	for s := range t.occ {
		t.occ[s] = 0
		t.sig[s] = 0
	}
	t.lastHit = nil
}

// Len returns the number of valid entries.
func (t *Table[V]) Len() int {
	n := 0
	for s := range t.occ {
		n += int(t.occ[s])
	}
	return n
}

// Lookups returns the number of Lookup calls.
func (t *Table[V]) Lookups() uint64 { return t.lookups }

// Hits returns the number of Lookup calls that hit.
func (t *Table[V]) Hits() uint64 { return t.hits }

// Misses returns the number of Lookup calls that missed.
func (t *Table[V]) Misses() uint64 { return t.lookups - t.hits }

// Evictions returns the number of valid entries replaced by Insert.
func (t *Table[V]) Evictions() uint64 { return t.evictions }

// ResetStats zeroes the hit/miss/eviction counters, keeping contents.
// Used to exclude warmup from measurement windows.
func (t *Table[V]) ResetStats() {
	t.lookups, t.hits, t.evictions = 0, 0, 0
}
