package setassoc

import "testing"

func BenchmarkLookupHit(b *testing.B) {
	t := New[uint64](64, 4)
	for k := uint64(0); k < 256; k++ {
		t.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(uint64(i) % 256)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	t := New[uint64](64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(uint64(i), uint64(i))
	}
}
