package mmu

import (
	"testing"

	"repro/internal/mem"
)

func TestPermString(t *testing.T) {
	tests := []struct {
		p    Perm
		want string
	}{
		{0, "---"},
		{PermRead, "r--"},
		{PermRead | PermWrite, "rw-"},
		{PermRead | PermExec, "r-x"},
		{PermRead | PermWrite | PermExec, "rwx"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Perm(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestMapTranslate(t *testing.T) {
	pm := NewPhysMemory()
	as := NewAddressSpace(pm)
	if err := as.Map(0x400000, 4, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	f, err := as.Translate(0x401234)
	if err != nil {
		t.Fatal(err)
	}
	if f == 0 {
		t.Error("Translate returned zero frame")
	}
	if _, err := as.Translate(0x500000); err == nil {
		t.Error("Translate of unmapped page should fail")
	}
	if !as.Mapped(0x400000) || as.Mapped(0x404000) {
		t.Error("Mapped() wrong")
	}
	if got := as.Perm(0x400000); got != PermRead|PermExec {
		t.Errorf("Perm = %v", got)
	}
}

func TestMapErrors(t *testing.T) {
	pm := NewPhysMemory()
	as := NewAddressSpace(pm)
	if err := as.Map(0x400001, 1, PermRead); err == nil {
		t.Error("unaligned Map should fail")
	}
	if err := as.Map(0x400000, 2, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x401000, 1, PermRead); err == nil {
		t.Error("overlapping Map should fail")
	}
	// A failed overlapping Map must not leak partial mappings.
	if got := pm.FramesInUse(); got != 2 {
		t.Errorf("FramesInUse = %d, want 2", got)
	}
}

func TestWritePermissionDenied(t *testing.T) {
	pm := NewPhysMemory()
	as := NewAddressSpace(pm)
	if err := as.Map(0x400000, 1, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Write(0x400010); err == nil {
		t.Error("write to r-x page should fault")
	}
	// mprotect then write succeeds: the software-patching path.
	if err := as.Protect(0x400000, 1, PermRead|PermWrite|PermExec); err != nil {
		t.Fatal(err)
	}
	copied, err := as.Write(0x400010)
	if err != nil {
		t.Fatal(err)
	}
	if copied {
		t.Error("write to private page should not copy")
	}
}

func TestProtectUnmapped(t *testing.T) {
	as := NewAddressSpace(NewPhysMemory())
	if err := as.Protect(0x400000, 1, PermRead); err == nil {
		t.Error("Protect of unmapped page should fail")
	}
}

func TestForkCOW(t *testing.T) {
	pm := NewPhysMemory()
	parent := NewAddressSpace(pm)
	if err := parent.Map(0x400000, 10, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	base := pm.FramesInUse()
	child := parent.Fork()
	if pm.FramesInUse() != base {
		t.Errorf("fork allocated frames: %d -> %d", base, pm.FramesInUse())
	}
	// Parent and child translate to the same frame before any write.
	pf, _ := parent.Translate(0x400000)
	cf, _ := child.Translate(0x400000)
	if pf != cf {
		t.Error("fork did not share frames")
	}
	// Child write copies exactly one page.
	copied, err := child.Write(0x400008)
	if err != nil {
		t.Fatal(err)
	}
	if !copied {
		t.Error("COW write did not report a copy")
	}
	if pm.FramesInUse() != base+1 {
		t.Errorf("FramesInUse = %d, want %d", pm.FramesInUse(), base+1)
	}
	pf2, _ := parent.Translate(0x400000)
	cf2, _ := child.Translate(0x400000)
	if pf2 == cf2 {
		t.Error("frames still shared after COW write")
	}
	if pf2 != pf {
		t.Error("parent frame changed on child write")
	}
	if child.COWFaults() != 1 {
		t.Errorf("COWFaults = %d, want 1", child.COWFaults())
	}
	// Second write to the same page: no further copy.
	copied, err = child.Write(0x400100)
	if err != nil {
		t.Fatal(err)
	}
	if copied {
		t.Error("second write to copied page reported a copy")
	}
}

func TestForkReadOnlySharing(t *testing.T) {
	pm := NewPhysMemory()
	parent := NewAddressSpace(pm)
	if err := parent.Map(0x400000, 100, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	children := make([]*AddressSpace, 50)
	for i := range children {
		children[i] = parent.Fork()
	}
	if pm.FramesInUse() != 100 {
		t.Errorf("50 forks of r-x pages use %d frames, want 100", pm.FramesInUse())
	}
	// Read-only pages must still refuse writes after fork.
	if _, err := children[0].Write(0x400000); err == nil {
		t.Error("write to r-x page after fork should fault")
	}
}

func TestGrandchildFork(t *testing.T) {
	pm := NewPhysMemory()
	p := NewAddressSpace(pm)
	if err := p.Map(0, 1, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	c := p.Fork()
	g := c.Fork()
	if pm.RefCount(mustTranslate(t, g, 0)) != 3 {
		t.Errorf("refcount = %d, want 3", pm.RefCount(mustTranslate(t, g, 0)))
	}
	if _, err := g.Write(0); err != nil {
		t.Fatal(err)
	}
	if pm.FramesInUse() != 2 {
		t.Errorf("FramesInUse = %d, want 2", pm.FramesInUse())
	}
	// Parent and child still share the original.
	if mustTranslate(t, p, 0) != mustTranslate(t, c, 0) {
		t.Error("parent/child no longer share after grandchild write")
	}
	// Now the child writes: refcount of original drops to 1 (parent).
	if _, err := c.Write(0); err != nil {
		t.Fatal(err)
	}
	if pm.FramesInUse() != 3 {
		t.Errorf("FramesInUse = %d, want 3", pm.FramesInUse())
	}
	// The parent's page is the last reference; its write must not copy.
	copied, err := p.Write(0)
	if err != nil {
		t.Fatal(err)
	}
	if copied {
		t.Error("sole-owner COW write should not copy")
	}
	if pm.FramesInUse() != 3 {
		t.Errorf("FramesInUse = %d, want 3 after sole-owner write", pm.FramesInUse())
	}
}

func mustTranslate(t *testing.T, as *AddressSpace, vaddr uint64) uint64 {
	t.Helper()
	f, err := as.Translate(vaddr)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRelease(t *testing.T) {
	pm := NewPhysMemory()
	p := NewAddressSpace(pm)
	if err := p.Map(0, 10, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	c := p.Fork()
	c.Release()
	if pm.FramesInUse() != 10 {
		t.Errorf("FramesInUse after child release = %d, want 10", pm.FramesInUse())
	}
	p.Release()
	if pm.FramesInUse() != 0 {
		t.Errorf("FramesInUse after all released = %d, want 0", pm.FramesInUse())
	}
}

func TestPhysMemoryPanics(t *testing.T) {
	pm := NewPhysMemory()
	for _, f := range []func(){
		func() { pm.Ref(999) },
		func() { pm.Unref(999) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on unallocated frame")
				}
			}()
			f()
		}()
	}
}

func TestLayoutHighVsLowLibraries(t *testing.T) {
	high := NewLayout(1, false, false)
	low := NewLayout(1, false, true)
	h := high.NextLibrary(1 << 20)
	l := low.NextLibrary(1 << 20)
	if h < HighLibBase {
		t.Errorf("high library at %#x, want >= %#x", h, uint64(HighLibBase))
	}
	// Low libraries must be within 2 GiB of the executable (the
	// rel32 reach constraint from §2.3).
	if l-TextBase >= 1<<31 {
		t.Errorf("low library at %#x not within 2GiB of text", l)
	}
}

func TestLayoutNoOverlap(t *testing.T) {
	l := NewLayout(42, true, false)
	type region struct{ base, end uint64 }
	var regions []region
	for i := 0; i < 100; i++ {
		size := uint64(1<<16 + i*4096)
		b := l.NextLibrary(size)
		if b%mem.PageSize != 0 {
			t.Fatalf("library base %#x not page aligned", b)
		}
		regions = append(regions, region{b, b + size})
	}
	for i := 1; i < len(regions); i++ {
		if regions[i].base < regions[i-1].end {
			t.Fatalf("library %d overlaps previous: %#x < %#x",
				i, regions[i].base, regions[i-1].end)
		}
	}
}

func TestLayoutASLRVariesWithSeed(t *testing.T) {
	a := NewLayout(1, true, false).NextLibrary(1 << 20)
	b := NewLayout(2, true, false).NextLibrary(1 << 20)
	if a == b {
		t.Error("ASLR bases identical across seeds")
	}
	// Without ASLR, bases are deterministic regardless of seed.
	c := NewLayout(1, false, false).NextLibrary(1 << 20)
	d := NewLayout(2, false, false).NextLibrary(1 << 20)
	if c != d {
		t.Error("non-ASLR bases differ across seeds")
	}
}

func TestLayoutHeapAndStack(t *testing.T) {
	l := NewLayout(1, false, false)
	h1 := l.NextHeap(8192)
	h2 := l.NextHeap(8192)
	if h2 <= h1 {
		t.Error("heap regions not increasing")
	}
	if l.Stack() != StackTop {
		t.Errorf("non-ASLR stack = %#x, want %#x", l.Stack(), uint64(StackTop))
	}
	la := NewLayout(3, true, false)
	if la.Stack() == StackTop {
		t.Error("ASLR stack not randomised")
	}
}

func TestPhysMemoryAccounting(t *testing.T) {
	pm := NewPhysMemory()
	as := NewAddressSpace(pm)
	if err := as.Map(0, 3, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if pm.BytesInUse() != 3*mem.PageSize {
		t.Errorf("BytesInUse = %d", pm.BytesInUse())
	}
	if pm.TotalAllocated() != 3 {
		t.Errorf("TotalAllocated = %d", pm.TotalAllocated())
	}
	if as.PagesMapped() != 3 {
		t.Errorf("PagesMapped = %d", as.PagesMapped())
	}
	if as.PrivatePages() != 3 {
		t.Errorf("PrivatePages = %d", as.PrivatePages())
	}
	child := as.Fork()
	if as.PrivatePages() != 0 {
		t.Errorf("PrivatePages after fork = %d, want 0 (all shared)", as.PrivatePages())
	}
	if _, err := child.Write(0); err != nil {
		t.Fatal(err)
	}
	if child.PrivatePages() != 1 {
		t.Errorf("child PrivatePages = %d, want 1", child.PrivatePages())
	}
}

func TestLayoutExecBase(t *testing.T) {
	l := NewLayout(1, false, false)
	if l.ExecBase() != TextBase {
		t.Errorf("ExecBase = %#x", l.ExecBase())
	}
}
