// Package mmu models virtual address spaces: page permissions,
// copy-on-write sharing across fork, and the x86-64 Linux process
// layout (executable low, libraries high) with optional ASLR.
//
// Two consumers use it.  The linker asks for address-space layout
// (where to map the executable, each library, the stack and the heap,
// with or without randomisation).  The §5.5 memory-savings experiment
// uses fork/COW accounting to quantify how many physical pages a
// software call-site-patching approach copies in a prefork server —
// the overhead the paper's hardware mechanism avoids entirely.
package mmu

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/mem"
)

// Perm is a page-permission bitmask.
type Perm uint8

// Page permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders the permission in "rwx" form.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// PhysMemory tracks simulated physical pages with reference counts, so
// that COW sharing across processes can be accounted exactly.
type PhysMemory struct {
	nextFrame uint64
	refs      map[uint64]int
	allocated uint64 // cumulative frames ever allocated
}

// NewPhysMemory returns an empty physical memory.
func NewPhysMemory() *PhysMemory {
	return &PhysMemory{refs: make(map[uint64]int), nextFrame: 1}
}

// Alloc allocates a new frame with reference count 1.
func (pm *PhysMemory) Alloc() uint64 {
	f := pm.nextFrame
	pm.nextFrame++
	pm.refs[f] = 1
	pm.allocated++
	return f
}

// Ref increments the reference count of frame f.
func (pm *PhysMemory) Ref(f uint64) {
	if pm.refs[f] == 0 {
		panic(fmt.Sprintf("mmu: Ref of unallocated frame %d", f))
	}
	pm.refs[f]++
}

// Unref decrements the reference count, freeing the frame at zero.
func (pm *PhysMemory) Unref(f uint64) {
	c := pm.refs[f]
	if c == 0 {
		panic(fmt.Sprintf("mmu: Unref of unallocated frame %d", f))
	}
	if c == 1 {
		delete(pm.refs, f)
		return
	}
	pm.refs[f] = c - 1
}

// RefCount returns the reference count of frame f (0 if free).
func (pm *PhysMemory) RefCount(f uint64) int { return pm.refs[f] }

// FramesInUse returns the number of live physical frames.
func (pm *PhysMemory) FramesInUse() int { return len(pm.refs) }

// BytesInUse returns the live physical footprint in bytes.
func (pm *PhysMemory) BytesInUse() uint64 {
	return uint64(len(pm.refs)) * mem.PageSize
}

// TotalAllocated returns the cumulative number of frames ever
// allocated (including since-freed ones).
func (pm *PhysMemory) TotalAllocated() uint64 { return pm.allocated }

// pte is a page-table entry.
type pte struct {
	frame uint64
	perm  Perm
	cow   bool // write-protected only because the frame is shared
}

// AddressSpace maps virtual page numbers to physical frames for one
// process.
type AddressSpace struct {
	phys     *PhysMemory
	pt       map[uint64]pte
	cowFault uint64 // pages copied due to COW writes
}

// NewAddressSpace returns an empty address space over phys.
func NewAddressSpace(phys *PhysMemory) *AddressSpace {
	return &AddressSpace{phys: phys, pt: make(map[uint64]pte)}
}

// Map allocates fresh frames for npages pages starting at vaddr (which
// must be page-aligned) with the given permissions.
func (as *AddressSpace) Map(vaddr uint64, npages int, perm Perm) error {
	if vaddr%mem.PageSize != 0 {
		return fmt.Errorf("mmu: Map at unaligned address %#x", vaddr)
	}
	vpn := mem.PageNum(vaddr)
	for i := uint64(0); i < uint64(npages); i++ {
		if _, ok := as.pt[vpn+i]; ok {
			return fmt.Errorf("mmu: page %#x already mapped", (vpn+i)<<mem.PageShift)
		}
	}
	for i := uint64(0); i < uint64(npages); i++ {
		as.pt[vpn+i] = pte{frame: as.phys.Alloc(), perm: perm}
	}
	return nil
}

// Protect changes the permissions of npages pages starting at vaddr.
// The pages must already be mapped.  This models mprotect, which the
// software patching approach must call to unprotect text pages
// (§2.3's security concern).
func (as *AddressSpace) Protect(vaddr uint64, npages int, perm Perm) error {
	vpn := mem.PageNum(vaddr)
	for i := uint64(0); i < uint64(npages); i++ {
		e, ok := as.pt[vpn+i]
		if !ok {
			return fmt.Errorf("mmu: Protect of unmapped page %#x", (vpn+i)<<mem.PageShift)
		}
		e.perm = perm
		as.pt[vpn+i] = e
	}
	return nil
}

// Translate returns the physical frame for the page containing vaddr,
// or an error if the page is unmapped.  Permissions are not checked;
// use Access for permission-checked access.
func (as *AddressSpace) Translate(vaddr uint64) (uint64, error) {
	e, ok := as.pt[mem.PageNum(vaddr)]
	if !ok {
		return 0, fmt.Errorf("mmu: page fault at %#x (unmapped)", vaddr)
	}
	return e.frame, nil
}

// Mapped reports whether the page containing vaddr is mapped.
func (as *AddressSpace) Mapped(vaddr uint64) bool {
	_, ok := as.pt[mem.PageNum(vaddr)]
	return ok
}

// Perm returns the permissions of the page containing vaddr (0 if
// unmapped).
func (as *AddressSpace) Perm(vaddr uint64) Perm {
	return as.pt[mem.PageNum(vaddr)].perm
}

// Write performs a permission-checked write access to the page
// containing vaddr, applying copy-on-write: a write to a shared COW
// page allocates a private copy.  It returns whether a page copy
// happened.
func (as *AddressSpace) Write(vaddr uint64) (copied bool, err error) {
	vpn := mem.PageNum(vaddr)
	e, ok := as.pt[vpn]
	if !ok {
		return false, fmt.Errorf("mmu: page fault at %#x (unmapped)", vaddr)
	}
	if e.perm&PermWrite == 0 && !e.cow {
		return false, fmt.Errorf("mmu: write to %s page at %#x", e.perm, vaddr)
	}
	// All mappings are MAP_PRIVATE: any write to a frame shared with
	// another address space copies it, whether the page was marked COW
	// at fork time or was a read-only shared page made writable by a
	// later mprotect (the software-patching path of §2.3).
	if e.cow || as.phys.RefCount(e.frame) > 1 {
		copied := as.phys.RefCount(e.frame) > 1
		if copied {
			as.phys.Unref(e.frame)
			e.frame = as.phys.Alloc()
			as.cowFault++
		}
		e.cow = false
		e.perm |= PermWrite
		as.pt[vpn] = e
		return copied, nil
	}
	return false, nil
}

// Fork clones the address space.  Writable pages become COW-shared in
// both parent and child; read-only pages stay plainly shared.  This is
// the prefork-server mechanism of §5.5.
func (as *AddressSpace) Fork() *AddressSpace {
	child := NewAddressSpace(as.phys)
	for vpn, e := range as.pt {
		as.phys.Ref(e.frame)
		if e.perm&PermWrite != 0 {
			e.cow = true
			e.perm &^= PermWrite
			as.pt[vpn] = e
		}
		// An already-COW page stays COW in both.
		child.pt[vpn] = e
	}
	return child
}

// Release unmaps everything, dropping frame references (process exit).
func (as *AddressSpace) Release() {
	for vpn, e := range as.pt {
		as.phys.Unref(e.frame)
		delete(as.pt, vpn)
	}
}

// COWFaults returns the number of pages this address space copied due
// to writes to COW-shared pages.
func (as *AddressSpace) COWFaults() uint64 { return as.cowFault }

// PagesMapped returns the number of mapped virtual pages.
func (as *AddressSpace) PagesMapped() int { return len(as.pt) }

// PrivatePages returns the number of mapped pages whose frame is not
// shared with any other address space.
func (as *AddressSpace) PrivatePages() int {
	n := 0
	for _, e := range as.pt {
		if as.phys.RefCount(e.frame) == 1 {
			n++
		}
	}
	return n
}

// Layout chooses virtual addresses for process regions following the
// conventional x86-64 Linux map: executable text at 0x400000, heap
// above it, libraries in the 0x7f... region, stack at the top.
type Layout struct {
	rng *rand.Rand

	// ASLR enables randomisation of the library base and stack.
	ASLR bool

	// LowLibraries places libraries just above the heap instead of in
	// the high mmap region, keeping them within ±2 GiB of the
	// executable's call sites.  The software-patching evaluation
	// requires this (§4.3: "custom allocator in glibc to load all
	// libraries within the 32-bit reach of the patched call
	// instructions").
	LowLibraries bool

	nextLib  uint64
	nextHeap uint64
}

// Conventional region bases.
const (
	TextBase     = 0x400000
	HeapBase     = 0x2000000
	LowLibBase   = 0x10000000   // within 2 GiB of TextBase
	HighLibBase  = 0x7f00000000 // conventional mmap region, far above 2 GiB
	StackTop     = 0x7ffffffff000
	aslrLibSpan  = 1 << 28 // 256 MiB of library-base entropy
	libAlignment = 1 << 16
)

// NewLayout returns a layout driven by the given seed.
func NewLayout(seed uint64, aslr, lowLibraries bool) *Layout {
	return &Layout{
		rng:          rand.New(rand.NewPCG(seed, 0x1a404)),
		ASLR:         aslr,
		LowLibraries: lowLibraries,
		nextHeap:     HeapBase,
	}
}

// ExecBase returns the load address for the main executable.
func (l *Layout) ExecBase() uint64 { return TextBase }

// NextLibrary returns a page-aligned base address for a library image
// of the given size.  Successive calls return non-overlapping regions.
func (l *Layout) NextLibrary(size uint64) uint64 {
	if l.nextLib == 0 {
		base := uint64(HighLibBase)
		if l.LowLibraries {
			base = LowLibBase
		}
		if l.ASLR {
			base += (l.rng.Uint64() % aslrLibSpan) &^ (libAlignment - 1)
		}
		l.nextLib = base
	}
	addr := l.nextLib
	l.nextLib += (size + libAlignment) &^ (libAlignment - 1)
	if l.ASLR {
		// Independent per-library gap, as mmap randomisation gives.
		l.nextLib += (l.rng.Uint64() % (1 << 20)) &^ (mem.PageSize - 1)
	}
	return addr
}

// NextHeap returns a page-aligned heap region of the given size.
func (l *Layout) NextHeap(size uint64) uint64 {
	addr := l.nextHeap
	l.nextHeap += (size + mem.PageSize) &^ (mem.PageSize - 1)
	return addr
}

// Stack returns the top-of-stack address.
func (l *Layout) Stack() uint64 {
	if l.ASLR {
		return StackTop - (l.rng.Uint64()%(1<<22))&^15
	}
	return StackTop
}
