// Package core assembles the paper's evaluated systems: a linked
// program image plus a configured CPU, with the measurement plumbing
// (warmup control, per-request latency capture, per-kilo-instruction
// counter derivation) that every experiment shares.
//
// The four system presets mirror the paper's comparison space:
//
//	Base      lazy dynamic linking on an unmodified CPU (the paper's
//	          "Base" columns)
//	Enhanced  lazy dynamic linking with the ABTB mechanism (the
//	          paper's "Enhanced" columns)
//	Eager     BIND_NOW dynamic linking, unmodified CPU (trampolines
//	          still execute; resolution cost moves to load time)
//	Static    static linking, unmodified CPU (the performance upper
//	          bound dynamic linking is measured against)
//	Patched   the software emulation of §4.3: call sites rewritten to
//	          direct calls, ASLR off, libraries within rel32 reach
//
// # Concurrency
//
// The package holds no mutable package-level state: linking and
// simulation read their inputs and write only into the System being
// built or driven.  Independent Systems may therefore be constructed
// and run concurrently from different goroutines — the guarantee
// internal/runner's worker pool is built on.  A single System is NOT
// safe for concurrent use; drive each System from one goroutine.
package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/linker"
	"repro/internal/objfile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ClockGHz is the simulated core clock (Xeon E5450, §4.1).
const ClockGHz = 3.0

// Micros converts a cycle count to microseconds at the model clock.
func Micros(cycles uint64) float64 { return float64(cycles) / (ClockGHz * 1000) }

// Config names a complete system configuration.
type Config struct {
	Label    string
	Linking  linker.Options
	Hardware cpu.Config
}

// Base returns the unmodified system with lazy dynamic linking.
func Base(seed uint64) Config {
	hw := cpu.DefaultConfig()
	hw.Seed = seed
	return Config{
		Label:    "base",
		Linking:  linker.Options{Mode: linker.BindLazy, ASLR: true, Seed: seed},
		Hardware: hw,
	}
}

// Enhanced returns the Base system with the paper's ABTB enabled.
func Enhanced(seed uint64) Config {
	c := Base(seed)
	c.Label = "enhanced"
	hw := cpu.EnhancedConfig()
	hw.Seed = seed
	c.Hardware = hw
	return c
}

// EnhancedARM returns the Enhanced system with ARM-flavoured
// trampolines (paper Fig. 2b) and the pattern window the ABTB needs to
// learn their three-instruction sequence.
func EnhancedARM(seed uint64) Config {
	c := Enhanced(seed)
	c.Label = "enhanced-arm"
	c.Linking.PLT = linker.PLTARM
	a := *c.Hardware.ABTB
	a.PatternWindow = 2
	c.Hardware.ABTB = &a
	return c
}

// BaseARM returns the unmodified system with ARM-flavoured
// trampolines.
func BaseARM(seed uint64) Config {
	c := Base(seed)
	c.Label = "base-arm"
	c.Linking.PLT = linker.PLTARM
	return c
}

// Eager returns BIND_NOW dynamic linking on the unmodified CPU.
func Eager(seed uint64) Config {
	c := Base(seed)
	c.Label = "eager"
	c.Linking.Mode = linker.BindNow
	return c
}

// Static returns static linking on the unmodified CPU.
func Static(seed uint64) Config {
	c := Base(seed)
	c.Label = "static"
	c.Linking.Mode = linker.BindStatic
	return c
}

// Patched returns the §4.3 software emulation: patched call sites on
// the unmodified CPU.
func Patched(seed uint64) Config {
	c := Base(seed)
	c.Label = "patched"
	c.Linking.Mode = linker.BindPatched
	return c
}

// System is a linked image executing on a configured CPU.
type System struct {
	cfg     Config
	img     *linker.Image
	cpu     *cpu.CPU
	rec     *trace.Recorder // measurement window
	lifeRec *trace.Recorder // whole process lifetime
}

// NewSystem links the program under the configuration and prepares a
// CPU with attached trampoline-trace recorders.  NewSystem does not
// mutate app or libs, so concurrent NewSystem calls — even over the
// same objects — are safe; the returned System itself must be driven
// from a single goroutine.
func NewSystem(app *objfile.Object, libs []*objfile.Object, cfg Config) (*System, error) {
	img, err := linker.Link(app, libs, cfg.Linking)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return NewSystemFromImage(img, cfg), nil
}

// NewSystemFromImage wraps an already linked image in a configured
// System — the path internal/pool uses to build jobs from pooled,
// copy-on-write-forked images without re-linking.  The image must have
// been linked with cfg.Linking (the caller keys pooled images by those
// options), and must be private to the returned System: pass a
// linker.Image.Fork of a shared master, never the master itself, since
// driving the System mutates the image's memory and resolution
// counter.
func NewSystemFromImage(img *linker.Image, cfg Config) *System {
	s := &System{
		cfg:     cfg,
		img:     img,
		cpu:     cpu.New(img, cfg.Hardware),
		rec:     trace.NewRecorder(0),
		lifeRec: trace.NewRecorder(0),
	}
	s.attachRecorders()
	return s
}

// attachRecorders fans the CPU's library-call trace point out to both
// the windowed and the lifetime recorder.
func (s *System) attachRecorders() {
	s.cpu.TraceLibCall = func(slot uint64) {
		s.rec.Record(slot)
		s.lifeRec.Record(slot)
	}
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Image returns the linked image.
func (s *System) Image() *linker.Image { return s.img }

// CPU returns the processor model.
func (s *System) CPU() *cpu.CPU { return s.cpu }

// Recorder returns the measurement-window trace recorder.
func (s *System) Recorder() *trace.Recorder { return s.rec }

// LifetimeRecorder returns the recorder covering the whole process
// lifetime including warmup.  The paper's pintool counted distinct
// trampolines over entire multi-hour runs (Table 3, Figures 4-5);
// experiments use this recorder for those artefacts.
func (s *System) LifetimeRecorder() *trace.Recorder { return s.lifeRec }

// RunOnce executes the entry symbol to completion and returns its
// cycle and instruction cost.
func (s *System) RunOnce(entry string) (cpu.RunResult, error) {
	return s.cpu.RunSymbol(entry, 0)
}

// Warmup executes the entry symbol n times and then clears every
// measurement counter, leaving all microarchitectural state (cache
// contents, predictor training, ABTB mappings, resolved GOT entries)
// warm — the steady state the paper measures in.
func (s *System) Warmup(entry string, n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.cpu.RunSymbol(entry, 0); err != nil {
			return fmt.Errorf("core: warmup %d: %w", i, err)
		}
	}
	s.ResetStats()
	return nil
}

// ResetStats clears measurement counters and opens a fresh recorder
// window; the lifetime recorder keeps accumulating.
func (s *System) ResetStats() {
	s.cpu.ResetStats()
	s.rec = trace.NewRecorder(0)
	s.attachRecorders()
}

// MeasureRequests executes the entry symbol n times, returning the
// per-request latencies in microseconds.
func (s *System) MeasureRequests(entry string, n int) (*stats.Sample, error) {
	sample := &stats.Sample{}
	for i := 0; i < n; i++ {
		res, err := s.cpu.RunSymbol(entry, 0)
		if err != nil {
			return nil, fmt.Errorf("core: request %d: %w", i, err)
		}
		sample.Add(Micros(res.Cycles))
	}
	return sample, nil
}

// Counters returns the CPU's counter snapshot.
func (s *System) Counters() cpu.Counters { return s.cpu.Counters() }

// PKI is the paper's per-kilo-instruction counter normalisation
// (Tables 2 and 4).
type PKI struct {
	TrampInstrs float64 // Table 2
	L1IMisses   float64 // Table 4 rows
	ITLBMisses  float64
	L1DMisses   float64
	DTLBMisses  float64
	Mispredicts float64
}

// PKIOf derives the per-kilo-instruction rates from a counter window.
func PKIOf(c cpu.Counters) PKI {
	return PKI{
		TrampInstrs: stats.PerKilo(c.TrampInstrs, c.Instructions),
		L1IMisses:   stats.PerKilo(c.L1IMisses, c.Instructions),
		ITLBMisses:  stats.PerKilo(c.ITLBMisses, c.Instructions),
		L1DMisses:   stats.PerKilo(c.L1DMisses, c.Instructions),
		DTLBMisses:  stats.PerKilo(c.DTLBMisses, c.Instructions),
		Mispredicts: stats.PerKilo(c.Mispredicts, c.Instructions),
	}
}

// PKI returns the per-kilo-instruction rates for the current window.
func (s *System) PKI() PKI { return PKIOf(s.Counters()) }
