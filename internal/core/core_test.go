package core

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/linker"
	"repro/internal/objfile"
)

func program() (*objfile.Object, []*objfile.Object) {
	app := objfile.New("app")
	m := app.NewFunc("main")
	lib := objfile.New("lib")
	lib.AddData("buf", 512)
	for i := 0; i < 6; i++ {
		name := "f" + string(rune('0'+i))
		lib.NewFunc(name).ALU(4).Load("buf", uint64(i*8), 8).Ret()
		m.Call(name)
	}
	m.Halt()
	return app, []*objfile.Object{lib}
}

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	app, libs := program()
	s, err := NewSystem(app, libs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPresetLabelsAndModes(t *testing.T) {
	tests := []struct {
		cfg      Config
		label    string
		mode     linker.BindingMode
		enhanced bool
	}{
		{Base(1), "base", linker.BindLazy, false},
		{Enhanced(1), "enhanced", linker.BindLazy, true},
		{Eager(1), "eager", linker.BindNow, false},
		{Static(1), "static", linker.BindStatic, false},
		{Patched(1), "patched", linker.BindPatched, false},
	}
	for _, tt := range tests {
		if tt.cfg.Label != tt.label {
			t.Errorf("label = %q, want %q", tt.cfg.Label, tt.label)
		}
		if tt.cfg.Linking.Mode != tt.mode {
			t.Errorf("%s: mode = %v, want %v", tt.label, tt.cfg.Linking.Mode, tt.mode)
		}
		if (tt.cfg.Hardware.ABTB != nil) != tt.enhanced {
			t.Errorf("%s: ABTB presence = %v", tt.label, tt.cfg.Hardware.ABTB != nil)
		}
	}
}

func TestMicros(t *testing.T) {
	if got := Micros(3000); got != 1.0 {
		t.Errorf("Micros(3000) = %v, want 1 at 3GHz", got)
	}
	if got := Micros(0); got != 0 {
		t.Errorf("Micros(0) = %v", got)
	}
}

func TestWarmupClearsCountersKeepsState(t *testing.T) {
	s := newSystem(t, Enhanced(3))
	if err := s.Warmup("main", 5); err != nil {
		t.Fatal(err)
	}
	if s.Counters().Instructions != 0 {
		t.Error("warmup left counters dirty")
	}
	// Steady state immediately: every library call skips.
	res, err := s.RunOnce("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 {
		t.Fatal("no instructions")
	}
	c := s.Counters()
	if c.TrampSkips != 6 {
		t.Errorf("TrampSkips = %d, want 6 after warm ABTB", c.TrampSkips)
	}
	if c.Resolutions != 0 {
		t.Errorf("Resolutions = %d after warmup", c.Resolutions)
	}
}

func TestMeasureRequests(t *testing.T) {
	s := newSystem(t, Base(3))
	if err := s.Warmup("main", 3); err != nil {
		t.Fatal(err)
	}
	sample, err := s.MeasureRequests("main", 20)
	if err != nil {
		t.Fatal(err)
	}
	if sample.N() != 20 {
		t.Fatalf("N = %d", sample.N())
	}
	if sample.Mean() <= 0 {
		t.Error("non-positive latency")
	}
	// Recorder window covers the measured requests.
	if s.Recorder().Total() != 6*20 {
		t.Errorf("recorder total = %d, want 120", s.Recorder().Total())
	}
}

func TestEnhancedFasterThanBase(t *testing.T) {
	base := newSystem(t, Base(3))
	enh := newSystem(t, Enhanced(3))
	for _, s := range []*System{base, enh} {
		if err := s.Warmup("main", 5); err != nil {
			t.Fatal(err)
		}
	}
	bs, err := base.MeasureRequests("main", 50)
	if err != nil {
		t.Fatal(err)
	}
	es, err := enh.MeasureRequests("main", 50)
	if err != nil {
		t.Fatal(err)
	}
	if es.Mean() >= bs.Mean() {
		t.Errorf("enhanced mean %.3fus >= base %.3fus", es.Mean(), bs.Mean())
	}
}

func TestPKIDerivation(t *testing.T) {
	c := cpu.Counters{
		Instructions: 100000,
		TrampInstrs:  1223,
		L1IMisses:    500,
		Mispredicts:  250,
	}
	pki := PKIOf(c)
	if math.Abs(pki.TrampInstrs-12.23) > 1e-9 {
		t.Errorf("TrampInstrs PKI = %v", pki.TrampInstrs)
	}
	if math.Abs(pki.L1IMisses-5) > 1e-9 {
		t.Errorf("L1IMisses PKI = %v", pki.L1IMisses)
	}
	if math.Abs(pki.Mispredicts-2.5) > 1e-9 {
		t.Errorf("Mispredicts PKI = %v", pki.Mispredicts)
	}
	if got := PKIOf(cpu.Counters{}); got != (PKI{}) {
		t.Errorf("zero counters PKI = %+v", got)
	}
}

func TestNewSystemLinkError(t *testing.T) {
	app := objfile.New("app")
	app.NewFunc("main").Call("missing").Halt()
	if _, err := NewSystem(app, nil, Base(1)); err == nil {
		t.Error("link error not propagated")
	}
}

func TestPatchedSystemRuns(t *testing.T) {
	s := newSystem(t, Patched(3))
	if err := s.Warmup("main", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunOnce("main"); err != nil {
		t.Fatal(err)
	}
	if s.Counters().TrampInstrs != 0 {
		t.Error("patched system executed trampolines")
	}
	if s.Image().Patch().CallSites == 0 {
		t.Error("no patch stats recorded")
	}
}

func TestARMPresets(t *testing.T) {
	app, libs := program()
	for _, tt := range []struct {
		cfg      Config
		enhanced bool
	}{
		{BaseARM(3), false},
		{EnhancedARM(3), true},
	} {
		sys, err := NewSystem(app, libs, tt.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Warmup("main", 4); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunOnce("main"); err != nil {
			t.Fatal(err)
		}
		c := sys.Counters()
		if tt.enhanced {
			if c.TrampSkips != 6 {
				t.Errorf("%s: skips = %d, want 6", tt.cfg.Label, c.TrampSkips)
			}
			if c.TrampInstrs != 0 {
				t.Errorf("%s: trampoline instrs = %d, want 0", tt.cfg.Label, c.TrampInstrs)
			}
		} else {
			// ARM trampolines cost three instructions per call.
			if c.TrampInstrs != 18 {
				t.Errorf("%s: trampoline instrs = %d, want 18", tt.cfg.Label, c.TrampInstrs)
			}
		}
	}
}

func TestSystemAccessors(t *testing.T) {
	s := newSystem(t, Enhanced(3))
	if s.Config().Label != "enhanced" {
		t.Errorf("Config label = %q", s.Config().Label)
	}
	if s.CPU() == nil || !s.CPU().Enhanced() {
		t.Error("CPU accessor broken")
	}
	if s.LifetimeRecorder() == nil {
		t.Error("no lifetime recorder")
	}
	if err := s.Warmup("main", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunOnce("main"); err != nil {
		t.Fatal(err)
	}
	// Lifetime recorder spans warmup + measurement; window does not.
	if s.LifetimeRecorder().Total() <= s.Recorder().Total() {
		t.Errorf("lifetime %d <= window %d",
			s.LifetimeRecorder().Total(), s.Recorder().Total())
	}
	pki := s.PKI()
	if pki.TrampInstrs < 0 {
		t.Error("bad PKI")
	}
	// Error paths.
	if err := s.Warmup("missing", 1); err == nil {
		t.Error("warmup of unknown symbol succeeded")
	}
	if _, err := s.MeasureRequests("missing", 1); err == nil {
		t.Error("measure of unknown symbol succeeded")
	}
}
