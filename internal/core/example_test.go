package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/objfile"
)

// Example builds a two-module program, runs it on the base system and
// on the ABTB-enhanced system, and shows the trampolines disappearing
// while the library call count stays identical.
func Example() {
	app := objfile.New("app")
	m := app.NewFunc("main")
	for i := 0; i < 3; i++ {
		m.Call("work")
	}
	m.Halt()
	lib := objfile.New("lib")
	lib.NewFunc("work").ALU(5).Ret()

	for _, cfg := range []core.Config{core.Base(1), core.Enhanced(1)} {
		sys, err := core.NewSystem(app, []*objfile.Object{lib}, cfg)
		if err != nil {
			panic(err)
		}
		if err := sys.Warmup("main", 4); err != nil {
			panic(err)
		}
		if _, err := sys.RunOnce("main"); err != nil {
			panic(err)
		}
		c := sys.Counters()
		fmt.Printf("%-9s library calls=%d trampolines executed=%d skipped=%d\n",
			cfg.Label, c.TrampCalls, c.TrampInstrs, c.TrampSkips)
	}
	// Output:
	// base      library calls=3 trampolines executed=3 skipped=0
	// enhanced  library calls=3 trampolines executed=0 skipped=3
}
