package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Nop, "nop"}, {ALU, "alu"}, {Call, "call"}, {CallInd, "call*"},
		{JmpMem, "jmp*m"}, {Ret, "ret"}, {Resolve, "resolve"}, {Halt, "halt"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.op, got, tt.want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op String = %q", got)
	}
	if Op(200).Valid() {
		t.Error("Op(200) should be invalid")
	}
}

func TestOpClassification(t *testing.T) {
	tests := []struct {
		op                              Op
		control, call, indirect, rd, wr bool
	}{
		{Nop, false, false, false, false, false},
		{ALU, false, false, false, false, false},
		{Load, false, false, false, true, false},
		{Store, false, false, false, false, true},
		{Push, false, false, false, false, true},
		{Call, true, true, false, false, true},
		{CallInd, true, true, true, true, false},
		{Jmp, true, false, false, false, false},
		{JmpCond, true, false, false, false, false},
		{JmpMem, true, false, true, true, false},
		{Ret, true, false, true, true, false},
		{Resolve, true, false, true, false, true},
		{Halt, false, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsControlFlow(); got != tt.control {
			t.Errorf("%v.IsControlFlow() = %v, want %v", tt.op, got, tt.control)
		}
		if got := tt.op.IsCall(); got != tt.call {
			t.Errorf("%v.IsCall() = %v, want %v", tt.op, got, tt.call)
		}
		if got := tt.op.IsIndirectBranch(); got != tt.indirect {
			t.Errorf("%v.IsIndirectBranch() = %v, want %v", tt.op, got, tt.indirect)
		}
		if got := tt.op.ReadsMemory(); got != tt.rd {
			t.Errorf("%v.ReadsMemory() = %v, want %v", tt.op, got, tt.rd)
		}
		if got := tt.op.WritesMemory(); got != tt.wr {
			t.Errorf("%v.WritesMemory() = %v, want %v", tt.op, got, tt.wr)
		}
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		in      Instr
		wantErr bool
	}{
		{"valid alu", Instr{Op: ALU, Size: 4}, false},
		{"valid call", Instr{Op: Call, Size: 5, Target: 0x400000}, false},
		{"call without target", Instr{Op: Call, Size: 5}, true},
		{"jmp without target", Instr{Op: Jmp, Size: 5}, true},
		{"load without mem", Instr{Op: Load, Size: 5}, true},
		{"jmpmem without mem", Instr{Op: JmpMem, Size: 6}, true},
		{"valid jmpmem", Instr{Op: JmpMem, Size: 6, Mem: 0x601000}, false},
		{"zero size", Instr{Op: ALU}, true},
		{"bad opcode", Instr{Op: Op(99), Size: 4}, true},
		{"bias out of range", Instr{Op: JmpCond, Size: 6, Bias: 150, Target: 1}, true},
		{"valid jcc", Instr{Op: JmpCond, Size: 6, Bias: 70, Target: 0x400100}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.in.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEffAddrFixed(t *testing.T) {
	in := Instr{Op: Load, Size: 5, Mem: 0x1000}
	for n := uint64(0); n < 10; n++ {
		if got := in.EffAddr(0x400000, n); got != 0x1000 {
			t.Fatalf("fixed EffAddr(n=%d) = %#x, want 0x1000", n, got)
		}
	}
	in.Span = 1
	if got := in.EffAddr(0x400000, 3); got != 0x1000 {
		t.Fatalf("span-1 EffAddr = %#x, want 0x1000", got)
	}
}

func TestEffAddrSpan(t *testing.T) {
	in := Instr{Op: Load, Size: 5, Mem: 0x1000, Span: 64}
	seen := map[uint64]bool{}
	for n := uint64(0); n < 1000; n++ {
		a := in.EffAddr(0x400000, n)
		if a < 0x1000 || a >= 0x1000+64*8 {
			t.Fatalf("EffAddr(n=%d) = %#x out of buffer", n, a)
		}
		if a%8 != 0 {
			t.Fatalf("EffAddr(n=%d) = %#x not 8-byte aligned", n, a)
		}
		seen[a] = true
	}
	if len(seen) < 32 {
		t.Errorf("only %d distinct addresses over 1000 executions; want spread", len(seen))
	}
}

func TestEffAddrDeterministic(t *testing.T) {
	f := func(pc, n, mem uint64, span uint16) bool {
		in := Instr{Op: Load, Size: 5, Mem: mem | 8, Span: uint64(span)}
		return in.EffAddr(pc, n) == in.EffAddr(pc, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondTakenBias(t *testing.T) {
	for _, bias := range []uint8{0, 10, 50, 90, 100} {
		in := Instr{Op: JmpCond, Size: 6, Bias: bias, Target: 1}
		taken := 0
		const n = 20000
		for i := uint64(0); i < n; i++ {
			if in.CondTaken(0x400000, i, 42) {
				taken++
			}
		}
		got := float64(taken) / n * 100
		want := float64(bias)
		if got < want-2 || got > want+2 {
			t.Errorf("bias %d%%: observed %.2f%% taken", bias, got)
		}
	}
}

func TestCondTakenDeterministic(t *testing.T) {
	in := Instr{Op: JmpCond, Size: 6, Bias: 50, Target: 1}
	for n := uint64(0); n < 100; n++ {
		a := in.CondTaken(0x400000, n, 7)
		b := in.CondTaken(0x400000, n, 7)
		if a != b {
			t.Fatalf("CondTaken not deterministic at n=%d", n)
		}
	}
}

func TestDetHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		seen[DetHash(i, 0, 0)] = true
	}
	if len(seen) != 10000 {
		t.Errorf("DetHash collisions: %d distinct of 10000", len(seen))
	}
}

func TestDefaultSizeNonZero(t *testing.T) {
	for op := Nop; op < opCount; op++ {
		if DefaultSize(op) == 0 {
			t.Errorf("DefaultSize(%v) = 0", op)
		}
	}
	// PLT slot arithmetic from the paper (§2.2): 16-byte trampolines,
	// four per 64-byte cache line.
	if SizeJmpMem+SizePush+SizeJmp != 16 {
		t.Errorf("PLT slot = %d bytes, want 16", SizeJmpMem+SizePush+SizeJmp)
	}
}
