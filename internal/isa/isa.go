// Package isa defines the instruction-set model executed by the CPU
// simulator.
//
// The model is a compact x86-64-like ISA: variable-length instructions
// identified by virtual address, with explicit opcodes for the three
// control-flow shapes the paper cares about — direct calls, indirect
// calls through memory (function pointers), and indirect jumps through
// memory (`jmp *(GOT)`, the PLT trampoline).  Everything else that a
// real program executes is abstracted into ALU, Load and Store
// instructions whose only architectural effects are the memory
// addresses they touch; that is all the cache, TLB and branch-predictor
// models can observe anyway.
//
// Dynamic behaviour (conditional-branch outcomes, load/store address
// variation within a buffer) is a pure function of the instruction
// address, its per-instruction execution count and a global seed, so a
// program executes identically under every linker and hardware
// configuration — the property that makes Base-vs-Enhanced counter
// comparisons meaningful.
package isa

import "fmt"

// Op enumerates instruction opcodes.
type Op uint8

const (
	// Nop does nothing; used as padding inside PLT slots.
	Nop Op = iota
	// ALU is any register-only computation.
	ALU
	// Load reads 8 bytes from the effective address.
	Load
	// Store writes Val to the effective address.
	Store
	// Push stores an immediate to the stack (PLT resolver glue).
	Push
	// Call is a direct call to Target; pushes the return address.
	Call
	// CallInd is an indirect call: loads the target from the
	// effective address, then calls it (C-style function pointers,
	// C++ virtual calls).
	CallInd
	// Jmp is a direct unconditional jump to Target.
	Jmp
	// JmpCond is a conditional branch to Target, taken with
	// probability Bias/100, falling through otherwise.
	JmpCond
	// JmpMem is an indirect jump through memory: loads the target
	// from the effective address and jumps.  This is the x86-64 PLT
	// trampoline, `jmp *disp32(%rip)`.
	JmpMem
	// Ret pops the return address and jumps to it.
	Ret
	// Resolve is the dynamic linker's lazy resolver: it binds the
	// pending PLT relocation (communicated by the preceding Push
	// instructions, per the ELF convention), stores the resolved
	// function address into the GOT slot, and jumps to the function.
	// The binding work itself is modelled by the linker package.
	Resolve
	// Halt stops execution; request drivers place it at the end of
	// the entry function.
	Halt

	opCount
)

var opNames = [...]string{
	Nop:     "nop",
	ALU:     "alu",
	Load:    "load",
	Store:   "store",
	Push:    "push",
	Call:    "call",
	CallInd: "call*",
	Jmp:     "jmp",
	JmpCond: "jcc",
	JmpMem:  "jmp*m",
	Ret:     "ret",
	Resolve: "resolve",
	Halt:    "halt",
}

// String returns the assembler-style mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount }

// IsControlFlow reports whether the opcode redirects the PC.
func (op Op) IsControlFlow() bool {
	switch op {
	case Call, CallInd, Jmp, JmpCond, JmpMem, Ret, Resolve:
		return true
	}
	return false
}

// IsCall reports whether the opcode is a call (pushes a return
// address).  The ABTB population rule keys on a retired call followed
// by a retired indirect branch.
func (op Op) IsCall() bool { return op == Call || op == CallInd }

// IsIndirectBranch reports whether the branch target is computed at
// run time rather than encoded in the instruction.
func (op Op) IsIndirectBranch() bool {
	switch op {
	case CallInd, JmpMem, Ret, Resolve:
		return true
	}
	return false
}

// ReadsMemory reports whether executing the opcode performs a data
// read (and thus a D-TLB translation and D-cache access).
func (op Op) ReadsMemory() bool {
	switch op {
	case Load, CallInd, JmpMem, Ret:
		return true
	}
	return false
}

// WritesMemory reports whether executing the opcode performs a data
// write.  Resolve writes the resolved address into the GOT.
func (op Op) WritesMemory() bool {
	switch op {
	case Store, Push, Call, Resolve:
		return true
	}
	return false
}

// Instr is one decoded instruction.  Instructions live at fixed
// virtual addresses inside a linked image; the CPU fetches them by
// address.
type Instr struct {
	Op   Op
	Size uint8 // encoded length in bytes
	Bias uint8 // JmpCond: taken probability in percent (0..100)

	// PLT marks instructions the linker placed inside a PLT section
	// (slot glue, PLT0 stubs, ARM lazy stubs).  The CPU classifies
	// every retired instruction as trampoline code or not (Table 2's
	// "instructions in trampoline PKI"); baking the section test into
	// the decoded instruction makes that a field read instead of a
	// per-retire range scan over the module table.  It fits existing
	// struct padding, so decoded images cost no extra memory.
	PLT bool

	// Target is the statically encoded destination for Call, Jmp and
	// JmpCond.
	Target uint64

	// Mem is the base of the memory operand for Load, Store, CallInd
	// and JmpMem.  For JmpMem emitted by the linker this is the GOT
	// slot holding the function pointer.
	Mem uint64

	// Span is the number of consecutive 8-byte slots over which the
	// effective address of a Load/Store varies between executions
	// (data-structure walking).  0 and 1 both mean a fixed address.
	Span uint64

	// Val is the immediate for Push and the value written by Store.
	Val uint64
}

// Validate reports a descriptive error if the instruction is
// malformed.  The linker validates every instruction it places.
func (in *Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if in.Size == 0 {
		return fmt.Errorf("isa: %v has zero size", in.Op)
	}
	if in.Op == JmpCond && in.Bias > 100 {
		return fmt.Errorf("isa: %v bias %d%% out of range", in.Op, in.Bias)
	}
	switch in.Op {
	case Call, Jmp, JmpCond:
		if in.Target == 0 {
			return fmt.Errorf("isa: %v with unresolved target", in.Op)
		}
	case Load, Store, CallInd, JmpMem:
		if in.Mem == 0 {
			return fmt.Errorf("isa: %v with zero memory operand", in.Op)
		}
	}
	return nil
}

// EffAddr returns the effective data address of the n-th dynamic
// execution of the instruction.  Loads and stores with Span > 1 sweep
// a Span-slot buffer in a deterministic pseudo-random order; all other
// memory operands are fixed.
func (in *Instr) EffAddr(pc uint64, n uint64) uint64 {
	if in.Span <= 1 {
		return in.Mem
	}
	return in.Mem + 8*(DetHash(pc, n, 0x10ad)%in.Span)
}

// CondTaken reports whether the n-th dynamic execution of a JmpCond at
// pc is taken, for the given program seed.
func (in *Instr) CondTaken(pc, n, seed uint64) bool {
	return DetHash(pc, n, seed)%100 < uint64(in.Bias)
}

// DetHash deterministically mixes three 64-bit values into one.  It is
// the source of all "random" dynamic behaviour in the ISA, keeping
// program execution bit-identical across hardware configurations.
func DetHash(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xc2b2ae3d27d4eb4f + c + 0x165667b19e3779f9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Typical encoded sizes, mirroring common x86-64 encodings.  The PLT
// slot layout (16 bytes: 6-byte jmp*m + 5-byte push + 5-byte jmp)
// matches the ELF x86-64 psABI exactly, which is what gives
// trampolines their sparse I-cache footprint (4 slots per 64-byte
// line).
const (
	SizeALU     = 4
	SizeLoad    = 5
	SizeStore   = 5
	SizePush    = 5
	SizeCall    = 5
	SizeCallInd = 6
	SizeJmp     = 5
	SizeJmpCond = 6
	SizeJmpMem  = 6
	SizeRet     = 1
	SizeHalt    = 2
)

// DefaultSize returns the typical encoded size for an opcode.
func DefaultSize(op Op) uint8 {
	switch op {
	case ALU:
		return SizeALU
	case Load:
		return SizeLoad
	case Store:
		return SizeStore
	case Push:
		return SizePush
	case Call:
		return SizeCall
	case CallInd:
		return SizeCallInd
	case Jmp:
		return SizeJmp
	case JmpCond:
		return SizeJmpCond
	case JmpMem:
		return SizeJmpMem
	case Ret:
		return SizeRet
	case Halt:
		return SizeHalt
	case Resolve:
		return SizeJmpMem
	default:
		return SizeALU
	}
}
