package runner

import (
	"context"
	"testing"
)

// churnSpec is an exact job on a churn workload with enough requests
// for several library rotations (plugin-server unloads/reloads a
// plugin every 12 requests).
func churnSpec(workload string, seed uint64) JobSpec {
	return JobSpec{Workload: workload, Config: Enhanced, Seed: seed, Warm: 10, Measure: 80}
}

// TestChurnWorkloadsBitIdentical extends the kernel-path A/B to the
// churn workloads: with libraries rotating mid-job (plugin-server) and
// guest code rewriting GOT slots (jit), counters must be bit-identical
// across compiled vs interpreted kernels and pooled vs unpooled images.
func TestChurnWorkloadsBitIdentical(t *testing.T) {
	ctx := context.Background()
	variants := []struct {
		name string
		opts Options
	}{
		{"compiled-pooled", Options{Workers: 2}},
		{"compiled-unpooled", Options{Workers: 2, DisablePool: true}},
		{"interpreted-pooled", Options{Workers: 2, DisableCompiledTraces: true}},
		{"interpreted-unpooled", Options{Workers: 2, DisableCompiledTraces: true, DisablePool: true}},
	}
	for _, wl := range []string{"plugin-server", "jit"} {
		spec := churnSpec(wl, 13)
		results := make([]Result, len(variants))
		for i, v := range variants {
			r := New(v.opts)
			res, err := r.Run(ctx, spec)
			if err != nil {
				t.Fatalf("%s %s: %v", wl, v.name, err)
			}
			results[i] = res
			r.Close()
		}
		if results[0].Counters.Instructions == 0 {
			t.Fatalf("%s: empty counters", wl)
		}
		for i := 1; i < len(results); i++ {
			if results[i].Counters != results[0].Counters {
				t.Errorf("%s: %s counters diverge from %s:\n  %+v\n  %+v",
					wl, variants[i].name, variants[0].name, results[i].Counters, results[0].Counters)
			}
		}
	}
}

// TestChurnSampledCICoversExact is the sampled-mode acceptance check on
// a churn workload: the sampled job's per-request estimates must cover
// the exact job's measured cost within their 95% confidence intervals.
// Library rotations land in fast-forwarded stretches as well as
// measured windows, so this fails if skipped churn (GOT stores, demand
// maps) leaves the ABTB or paging state diverged from the exact path.
func TestChurnSampledCICoversExact(t *testing.T) {
	ctx := context.Background()
	for _, wl := range []string{"plugin-server", "jit"} {
		const measure = 160
		exactSpec := JobSpec{Workload: wl, Config: Enhanced, Seed: 7, Warm: 10, Measure: measure}
		sampled := exactSpec
		sampled.SampleWindows = 4

		r := New(Options{Workers: 2})
		exact, err := r.Run(ctx, exactSpec)
		if err != nil {
			t.Fatalf("%s exact: %v", wl, err)
		}
		est, err := r.Run(ctx, sampled)
		if err != nil {
			t.Fatalf("%s sampled: %v", wl, err)
		}
		r.Close()
		if est.Sampled == nil {
			t.Fatalf("%s: sampled job has no estimate block", wl)
		}
		for name, want := range map[string]float64{
			"instructions": float64(exact.Counters.Instructions) / measure,
			"cycles":       float64(exact.Counters.Cycles) / measure,
		} {
			m, ok := est.Sampled.Metrics[name]
			if !ok {
				t.Fatalf("%s: metric %s missing", wl, name)
			}
			if m.CI95 < 0 {
				t.Fatalf("%s: metric %s has negative half-width", wl, name)
			}
			if want < m.Mean-m.CI95 || want > m.Mean+m.CI95 {
				t.Errorf("%s: exact %s %.1f/req outside sampled 95%% CI %.1f ± %.1f",
					wl, name, want, m.Mean, m.CI95)
			}
		}
	}
}
