package runner

import (
	"context"
	"math/rand/v2"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestBackoffNeverExceedsMaxDelay pins the clamp-after-jitter fix:
// MaxDelay is a hard cap, so upward jitter on a capped delay must not
// push past it, while downward jitter still shortens it.
func TestBackoffNeverExceedsMaxDelay(t *testing.T) {
	cases := []struct {
		name   string
		policy RetryPolicy
		// wantVaried marks policies whose deep-retry jitter floor sits
		// below the cap, so capped delays must still vary downward.
		// (The default policy's un-jittered deep delay overshoots the
		// cap so far that even maximal downward jitter stays above it
		// — every deep backoff clamps to exactly MaxDelay.)
		wantVaried bool
	}{
		{"default", DefaultRetryPolicy(), false},
		{"wide jitter", RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: 0.9}, true},
		{"base at cap", RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Jitter: 0.5}, true},
		{"no jitter", RetryPolicy{BaseDelay: 5 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Jitter: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.policy.normalized()
			rng := rand.New(rand.NewPCG(1, 2))
			sawBelowCap := false
			for retry := 1; retry <= 12; retry++ {
				for sample := 0; sample < 200; sample++ {
					d := p.backoff(retry, rng)
					if d > p.MaxDelay {
						t.Fatalf("retry %d: backoff %v exceeds MaxDelay %v", retry, d, p.MaxDelay)
					}
					if d <= 0 {
						t.Fatalf("retry %d: non-positive backoff %v", retry, d)
					}
					if retry >= 10 && d < p.MaxDelay {
						sawBelowCap = true
					}
				}
			}
			if tc.wantVaried && !sawBelowCap {
				t.Error("jitter never shortened a capped delay — is it still applied before the clamp?")
			}
		})
	}
}

// TestRetentionEvictsLRU pins the eviction order and the recency
// refresh: with capacity 2, re-reading job A makes B the eviction
// victim when C arrives.
func TestRetentionEvictsLRU(t *testing.T) {
	r := New(Options{Workers: 2, MaxRetained: 2})
	defer r.Close()
	ctx := context.Background()

	runOne := func(seed uint64) *Job {
		j, _, err := r.Submit(fastSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := runOne(1), runOne(2)
	// Refresh A: it becomes most recent, leaving B as the LRU victim.
	if _, reused, err := r.Submit(fastSpec(1)); err != nil || !reused {
		t.Fatalf("resubmit A: reused=%v err=%v, want cache hit", reused, err)
	}
	runOne(3)

	if _, ok := r.Job(a.ID); !ok {
		t.Error("A was evicted despite its recency refresh")
	}
	if _, ok := r.Job(b.ID); ok {
		t.Error("B still present; LRU should have evicted it")
	}
	if !r.Evicted(b.ID) {
		t.Error("Evicted(B) = false, want true")
	}
	if r.Evicted(a.ID) {
		t.Error("Evicted(A) = true for a retained job")
	}
	st := r.Stats()
	if st.Retained != 2 {
		t.Errorf("Retained = %d, want 2", st.Retained)
	}
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}

	// A resubmission of the evicted spec recomputes under the same
	// content-derived ID, which is then no longer "gone".
	nb := runOne(2)
	if nb.ID != b.ID {
		t.Fatalf("recomputed job ID %s != original %s", nb.ID, b.ID)
	}
	if r.Evicted(b.ID) {
		t.Error("Evicted(B) still true after B was recomputed")
	}
}

// TestRetentionPinsInFlight floods the cache far past MaxRetained
// while a job is deterministically held mid-execution (a Hang fault
// released by Reset) and asserts the in-flight job is never evicted.
func TestRetentionPinsInFlight(t *testing.T) {
	r := New(Options{Workers: 2, MaxRetained: 2})
	defer r.Close()
	ctx := context.Background()

	// Hang exactly one execution: the held job is the only one
	// submitted while the point is armed, and Count caps the fault so
	// the flood below passes through.
	faultinject.Enable("runner.execute", faultinject.PointConfig{
		Mode: faultinject.Hang, Prob: 1, Count: 1,
	})
	defer faultinject.Reset()
	held, _, err := r.Submit(JobSpec{Workload: "memcached", Config: Enhanced, Seed: 99, Warm: 5, Measure: 25})
	if err != nil {
		t.Fatal(err)
	}
	for faultinject.Injections("runner.execute") == 0 {
		time.Sleep(time.Millisecond)
	}

	for seed := uint64(1); seed <= 20; seed++ {
		if _, err := r.Run(ctx, fastSpec(seed)); err != nil {
			t.Fatal(err)
		}
		if _, ok := r.Job(held.ID); !ok {
			t.Fatalf("in-flight job evicted after %d fast jobs (state %s)", seed, held.State())
		}
		if r.Evicted(held.ID) {
			t.Fatal("in-flight job ID marked evicted")
		}
	}

	faultinject.Reset() // release the hang
	if _, err := held.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Job(held.ID); !ok {
		t.Error("held job unreachable immediately after completing")
	}
}

// TestRetentionSoak is the regression test for the unbounded job-map
// leak: many more distinct specs than MaxRetained flow through the
// runner, and the lookup maps and heap must stay bounded by the
// retention limit rather than by submission history.
func TestRetentionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	const maxRetained = 64
	// Default size keeps the tier-1 suite fast; the full acceptance
	// soak (DLSIM_SOAK_JOBS=10000) exercises ~150 cache generations.
	jobs := 600
	if s := os.Getenv("DLSIM_SOAK_JOBS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < maxRetained {
			t.Fatalf("bad DLSIM_SOAK_JOBS %q", s)
		}
		jobs = n
	}
	r := New(Options{Workers: runtime.NumCPU(), MaxRetained: maxRetained})
	defer r.Close()

	var after runtime.MemStats
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	for batch := 0; batch < jobs; batch += 50 {
		n := 50
		if jobs-batch < n {
			n = jobs - batch
		}
		handles := make([]*Job, 0, n)
		for i := 0; i < n; i++ {
			j, _, err := r.Submit(fastSpec(uint64(1000 + batch + i)))
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, j)
		}
		for _, j := range handles {
			// Failed jobs (possible under `make faults`) complete and
			// are retained just like successful ones; only submission
			// errors above are fatal.
			<-j.Done()
		}
	}

	r.mu.Lock()
	nKey, nID, nLRU, nEvicted := len(r.byKey), len(r.byID), r.lru.Len(), len(r.evicted)
	r.mu.Unlock()
	if nKey > maxRetained || nID > maxRetained || nLRU > maxRetained {
		t.Errorf("maps after soak: byKey=%d byID=%d lru=%d, want <= %d", nKey, nID, nLRU, maxRetained)
	}
	if cap := evictedMemory(maxRetained); nEvicted > cap {
		t.Errorf("evicted-ID memory %d exceeds bound %d", nEvicted, cap)
	}
	st := r.Stats()
	if st.Retained != maxRetained {
		t.Errorf("Retained = %d, want %d", st.Retained, maxRetained)
	}
	if want := uint64(jobs - maxRetained); st.Evictions != want {
		t.Errorf("Evictions = %d, want %d", st.Evictions, want)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	// Unbounded retention of ~1500 results (counters, samples, traces,
	// generated workloads) costs hundreds of MiB; a bounded cache of
	// 64 stays well under this ceiling.
	const heapCeiling = 192 << 20
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > heapCeiling {
		t.Errorf("heap grew %d bytes over the soak, want <= %d", growth, int64(heapCeiling))
	}
}
