package runner

import (
	"strconv"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// metrics is the runner's instrument set on a telemetry registry.
// It is the single source of truth for the runner's operational
// counters: Stats(), GET /v1/stats and GET /metrics all read the same
// instruments (no shadow bookkeeping to drift).
//
// Metric name catalogue (see DESIGN.md §8 for the full contract):
//
//	dlsim_runner_workers                     gauge      pool width
//	dlsim_runner_queued                      gauge      jobs waiting for a worker
//	dlsim_runner_running                     gauge      jobs executing
//	dlsim_runner_jobs_completed_total        counter    jobs finished successfully
//	dlsim_runner_jobs_failed_total           counter    jobs finished in error
//	dlsim_runner_retries_total               counter    re-executed attempts
//	dlsim_runner_panics_total                counter    worker panics recovered
//	dlsim_runner_shed_total                  counter    submissions shed by admission control
//	dlsim_runner_retained                    gauge      completed jobs held in the result cache
//	dlsim_runner_evictions_total             counter    completed jobs evicted from the result cache
//	dlsim_runner_cache_hits_total            counter    submissions served from a completed result
//	dlsim_runner_coalesced_total             counter    submissions attached to an in-flight job
//	dlsim_runner_cache_misses_total          counter    submissions that started a simulation
//	dlsim_runner_queue_wait_ms               histogram  submit→worker-acquired wait, per attempt
//	dlsim_runner_exec_ms                     histogram  single-attempt execution time
//	dlsim_runner_backoff_ms                  histogram  retry backoff sleeps
//	dlsim_runner_job_wall_ms                 histogram  whole-job wall clock (completed jobs)
//	dlsim_runner_setup_wall_ms               histogram  generation+link+warmup wall clock
//	dlsim_runner_measure_wall_ms             histogram  measured-request wall clock
//	dlsim_sim_instructions_total{workload,config}   counter  simulated instructions retired
//	dlsim_sim_cycles_total{workload,config}         counter  simulated cycles
//	dlsim_sim_lib_calls_total{workload,config}      counter  trampoline-routed library calls
//	dlsim_sim_tramp_skips_total{workload,config}    counter  trampolines skipped via ABTB redirect
//	dlsim_sim_abtb_redirects_total{workload,config} counter  ABTB hits (redirected fetches)
//	dlsim_sim_abtb_flushes_total{workload,config}   counter  Bloom-triggered ABTB flushes
//	dlsim_sim_resolutions_total{workload,config}    counter  lazy symbol resolutions
type metrics struct {
	reg *telemetry.Registry

	workers *telemetry.Gauge
	queued  *telemetry.Gauge
	running *telemetry.Gauge

	completed *telemetry.Counter
	failed    *telemetry.Counter
	retries   *telemetry.Counter
	panics    *telemetry.Counter
	shed      *telemetry.Counter

	retained  *telemetry.Gauge
	evictions *telemetry.Counter

	cacheHits   *telemetry.Counter
	coalesced   *telemetry.Counter
	cacheMisses *telemetry.Counter

	queueWaitMS   *telemetry.Histogram
	execMS        *telemetry.Histogram
	backoffMS     *telemetry.Histogram
	jobWallMS     *telemetry.Histogram
	setupWallMS   *telemetry.Histogram
	measureWallMS *telemetry.Histogram

	simInstructions *telemetry.CounterVec
	simCycles       *telemetry.CounterVec
	simLibCalls     *telemetry.CounterVec
	simTrampSkips   *telemetry.CounterVec
	simABTBHits     *telemetry.CounterVec
	simABTBFlushes  *telemetry.CounterVec
	simResolutions  *telemetry.CounterVec
}

// wallBuckets covers sub-ms smoke jobs through multi-minute full-scale
// simulations: 0.5ms·2^k up to ~4.4min, overflow beyond.
var wallBuckets = telemetry.ExponentialBuckets(0.5, 2, 20)

// backoffBuckets covers the retry policy's delay range (default 5ms
// base, 250ms cap; custom policies overflow gracefully).
var backoffBuckets = telemetry.ExponentialBuckets(1, 2, 10)

func newMetrics(reg *telemetry.Registry) *metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	const wl = "workload"
	const cf = "config"
	return &metrics{
		reg: reg,

		workers: reg.Gauge("dlsim_runner_workers", "Worker pool width."),
		queued:  reg.Gauge("dlsim_runner_queued", "Jobs waiting for a worker (including retry backoff)."),
		running: reg.Gauge("dlsim_runner_running", "Jobs currently executing."),

		completed: reg.Counter("dlsim_runner_jobs_completed_total", "Jobs finished successfully."),
		failed:    reg.Counter("dlsim_runner_jobs_failed_total", "Jobs finished in error (after retries)."),
		retries:   reg.Counter("dlsim_runner_retries_total", "Re-executed attempts after transient failures."),
		panics:    reg.Counter("dlsim_runner_panics_total", "Worker panics recovered into job failures."),
		shed:      reg.Counter("dlsim_runner_shed_total", "Submissions rejected by admission control (queue full)."),

		retained:  reg.Gauge("dlsim_runner_retained", "Completed jobs held in the result cache."),
		evictions: reg.Counter("dlsim_runner_evictions_total", "Completed jobs evicted from the result cache (LRU bound)."),

		cacheHits:   reg.Counter("dlsim_runner_cache_hits_total", "Submissions served from a completed cached result."),
		coalesced:   reg.Counter("dlsim_runner_coalesced_total", "Submissions coalesced onto an in-flight identical job."),
		cacheMisses: reg.Counter("dlsim_runner_cache_misses_total", "Submissions that started a new simulation."),

		queueWaitMS:   reg.Histogram("dlsim_runner_queue_wait_ms", "Wait from ready-to-run to worker acquired, per attempt.", wallBuckets),
		execMS:        reg.Histogram("dlsim_runner_exec_ms", "Single-attempt execution time.", wallBuckets),
		backoffMS:     reg.Histogram("dlsim_runner_backoff_ms", "Retry backoff sleeps.", backoffBuckets),
		jobWallMS:     reg.Histogram("dlsim_runner_job_wall_ms", "Whole-job wall clock over completed jobs.", wallBuckets),
		setupWallMS:   reg.Histogram("dlsim_runner_setup_wall_ms", "Per-job setup wall clock: generation, linking (or pool fetch), warmup.", wallBuckets),
		measureWallMS: reg.Histogram("dlsim_runner_measure_wall_ms", "Per-job measurement wall clock: measured requests only.", wallBuckets),

		simInstructions: reg.CounterVec("dlsim_sim_instructions_total", "Simulated instructions retired in measurement windows.", wl, cf),
		simCycles:       reg.CounterVec("dlsim_sim_cycles_total", "Simulated cycles in measurement windows.", wl, cf),
		simLibCalls:     reg.CounterVec("dlsim_sim_lib_calls_total", "Library calls resolving to a PLT slot.", wl, cf),
		simTrampSkips:   reg.CounterVec("dlsim_sim_tramp_skips_total", "Trampolines skipped via ABTB redirect.", wl, cf),
		simABTBHits:     reg.CounterVec("dlsim_sim_abtb_redirects_total", "ABTB hits: fetches redirected past the trampoline.", wl, cf),
		simABTBFlushes:  reg.CounterVec("dlsim_sim_abtb_flushes_total", "Bloom-filter-triggered ABTB flushes on GOT stores.", wl, cf),
		simResolutions:  reg.CounterVec("dlsim_sim_resolutions_total", "Lazy symbol resolutions executed.", wl, cf),
	}
}

// recordResult folds one completed simulation's headline counters into
// the per-workload series.  Counters are deltas over the measurement
// window, so repeated jobs accumulate meaningfully.
func (m *metrics) recordResult(res *Result) {
	w, c := res.Spec.Workload, string(res.Spec.Config)
	m.simInstructions.With(w, c).Add(res.Counters.Instructions)
	m.simCycles.With(w, c).Add(res.Counters.Cycles)
	m.simLibCalls.With(w, c).Add(res.Counters.TrampCalls)
	m.simTrampSkips.With(w, c).Add(res.Counters.TrampSkips)
	m.simABTBHits.With(w, c).Add(res.Counters.ABTBRedirects)
	m.simABTBFlushes.With(w, c).Add(res.Counters.ABTBFlushes)
	m.simResolutions.With(w, c).Add(res.Counters.Resolutions)
}

// traceResultAttrs annotates a job's root span with the headline
// outcome, so a dumped trace is self-describing.
func traceResultAttrs(sp *telemetry.Span, res *Result) {
	if sp == nil || res == nil {
		return
	}
	sp.SetAttr("instructions", strconv.FormatUint(res.Counters.Instructions, 10))
	sp.SetAttr("tramp_skips", strconv.FormatUint(res.Counters.TrampSkips, 10))
	sp.SetAttr("distinct_trampolines", strconv.Itoa(traceDistinct(res.Trace)))
}

func traceDistinct(rec *trace.Recorder) int {
	if rec == nil {
		return 0
	}
	return rec.Distinct()
}
