package runner

import (
	"errors"
	"fmt"
)

// Sentinel errors for the failure paths callers are expected to
// branch on.  Job errors wrap these, so callers match with errors.Is
// rather than string inspection.
var (
	// ErrRunnerClosed marks errors caused by runner shutdown: Submit
	// after Close, and jobs abandoned while queued or cancelled
	// mid-run by Close.
	ErrRunnerClosed = errors.New("runner: closed")

	// ErrJobTimeout marks a job that exceeded Options.JobTimeout.
	ErrJobTimeout = errors.New("runner: job timeout")

	// ErrQueueFull marks a submission shed by admission control
	// (Options.MaxQueue).  The job was not registered; the caller
	// should back off and resubmit.
	ErrQueueFull = errors.New("runner: admission queue full")
)

// PanicError is a panic recovered from a worker goroutine, converted
// into an ordinary job failure so one panicking simulation cannot
// take down the process or the pool.
type PanicError struct {
	// Value is the recovered panic value.
	Value any

	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: worker panic: %v", e.Value)
}

// IsTransient reports whether err is worth retrying: some error in
// its chain declares itself transient via a `Transient() bool`
// method (e.g. faultinject.InjectedError, or a workload error
// wrapped with Transient).  Timeouts, shutdown, validation failures
// and panics are permanent by default.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// transientError wraps an error to classify it transient.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// Transient marks err as retryable under the default retry
// classification.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}
