package runner

import (
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Result is the typed outcome of one completed job.
//
// A Result is immutable after the job completes: the Runner shares one
// Result value between every submitter of the same spec, and its
// samples are pre-sorted so that concurrent percentile reads are safe.
// Callers must not Add observations to its samples or Record into its
// trace; derive fresh samples (TrimOutliers, AddAll into a new Sample)
// for any further aggregation.
type Result struct {
	// Spec is the normalized job spec (defaults resolved, scale
	// folded into Measure).
	Spec JobSpec

	// Key is the spec's canonical content-address; ID is its short
	// form used by the HTTP API.
	Key string
	ID  string

	// Counters is the CPU counter snapshot over the measurement
	// window, and PKI its per-kilo-instruction normalisation.
	Counters cpu.Counters
	PKI      core.PKI

	// Samples holds per-request-class latencies in microseconds for
	// the measured window.
	Samples map[string]*stats.Sample

	// Trace is the lifetime trampoline recorder (warmup included),
	// the paper's whole-run pintool view (Table 3, Figures 4-5).
	Trace *trace.Recorder

	// Workload is the generated application bundle the job simulated;
	// its Classes describe the request mix behind Samples.
	Workload *workload.Workload

	// Timeline is the job's phase-resolved counter series over the
	// measurement window (nil when the spec disabled collection).
	// Restored results carry nil here even when a series was
	// persisted; Runner.Timeline falls back to the store record.
	Timeline *timeline.Series

	// Sampled carries the per-counter interval estimates of a sampled
	// job (Spec.SampleWindows > 0); nil on exact jobs.  On sampled
	// jobs, Counters/PKI cover only the measured window excerpts (the
	// sum of the window deltas) and Samples pool the measured
	// requests' latencies.  Restored results carry nil here even when
	// estimates were persisted; Runner.Sampled falls back to the store
	// record.
	Sampled *SampledResult

	// SetupWall is the wall clock spent before the first measured
	// request: workload generation (or pool fetch), linking (or
	// copy-on-write fork), and warmup.  MeasureWall covers only the
	// measured requests.  Wall is their sum — the whole simulation's
	// time on the worker — kept so existing consumers keep reading
	// one number.  Splitting them is what makes pool savings visible:
	// the pool shrinks SetupWall and cannot touch MeasureWall.
	SetupWall   time.Duration
	MeasureWall time.Duration
	Wall        time.Duration

	// CacheHit reports whether this submission was answered without
	// starting a new simulation (served from cache or coalesced onto
	// an in-flight identical job).
	CacheHit bool

	// Restored reports that this result was reloaded from the disk
	// store rather than computed in this process.  The workload
	// bundle and the trampoline trace recorder are not persisted, so
	// Workload and Trace are nil on a restored result; their
	// API-visible summaries are carried in the fields behind
	// DistinctTrampolines and LibCalls instead.  Counters, PKI and
	// Samples are bit-identical to the original run's.
	Restored bool

	// Persisted trampoline summary, set only on restored results.
	distinct int
	libCalls uint64
}

// DistinctTrampolines returns the number of distinct trampolines the
// run recorded — from the live trace recorder, or from the persisted
// summary on a restored result.
func (r *Result) DistinctTrampolines() int {
	if r.Trace != nil {
		return r.Trace.Distinct()
	}
	return r.distinct
}

// LibCalls returns the total trampoline-routed library calls over the
// run's lifetime — from the live trace recorder, or from the
// persisted summary on a restored result.
func (r *Result) LibCalls() uint64 {
	if r.Trace != nil {
		return r.Trace.Total()
	}
	return r.libCalls
}

// freeze pre-sorts every sample so later concurrent reads (Percentile,
// Values, CDF) never mutate shared state.
func (r *Result) freeze() {
	for _, s := range r.Samples {
		s.Values()
	}
}
