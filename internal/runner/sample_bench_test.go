package runner

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
)

// BenchmarkSampledVsExact is the accuracy-and-cost row behind
// scripts/sample_bench.sh: one exact job and its sampled counterpart
// (same workload, seed and request budget), reporting the exact
// per-request cost, the sampled estimate with its 95% half-width, the
// relative error, whether the exact value fell inside the interval
// (within_ci: the acceptance gate), and the measured-phase wall-clock
// ratio the fast-forward path buys.  Both sides are deterministic, so
// every metric except the wall ratio is host-invariant.
func BenchmarkSampledVsExact(b *testing.B) {
	ctx := context.Background()
	// 8 windows of 75 requests, 16 detailed warmup + 7 measured each:
	// the warmup share is what keeps the post-fast-forward cold-start
	// bias inside the interval (fast-forwarded stretches advance
	// architectural state but not caches or predictors, so each
	// window's detailed phase starts partially cold).
	sampled := JobSpec{
		Workload: "memcached", Config: Base, Seed: 3,
		Warm: 20, Measure: 600, SampleWindows: 8, SampleWarmup: 16,
	}
	exact := sampled
	exact.SampleWindows, exact.SampleWarmup = 0, 0

	var exactUS, mean, ci, wallRatio float64
	for i := 0; i < b.N; i++ {
		r := New(Options{Workers: 2})
		eres, err := r.Run(ctx, exact)
		if err != nil {
			b.Fatal(err)
		}
		sres, err := r.Run(ctx, sampled)
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
		if sres.Sampled == nil {
			b.Fatal("sampled job has no estimates")
		}
		exactUS = core.Micros(eres.Counters.Cycles) / float64(exact.Measure)
		m := sres.Sampled.Metrics["us_per_req"]
		mean, ci = m.Mean, m.CI95
		wallRatio = float64(eres.MeasureWall) / float64(sres.MeasureWall)
	}
	b.ReportMetric(exactUS, "exact_us")
	b.ReportMetric(mean, "sampled_us")
	b.ReportMetric(ci, "ci95_us")
	b.ReportMetric(100*math.Abs(mean-exactUS)/exactUS, "rel_err_pct")
	within := 0.0
	if math.Abs(mean-exactUS) <= ci {
		within = 1
	}
	b.ReportMetric(within, "within_ci")
	b.ReportMetric(wallRatio, "wall_speedup")
}
