package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/timeline"
)

// tlSpec is a cheap job with a fine sampling grid so even short runs
// produce a multi-point series.
func tlSpec(seed uint64) JobSpec {
	s := fastSpec(seed)
	s.TimelineInterval = timeline.MinInterval
	return s
}

// mustJSON marshals a series for byte-level comparison.
func mustJSON(t *testing.T, s *timeline.Series) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTimelineDeterministic is the series analogue of the golden
// counter test: the same spec yields a byte-identical timeline on
// every run, in-process and across runner instances.
func TestTimelineDeterministic(t *testing.T) {
	ctx := context.Background()
	var got []string
	for i := 0; i < 2; i++ {
		r := New(Options{Workers: 2})
		res, err := r.Run(ctx, tlSpec(11))
		if err != nil {
			t.Fatal(err)
		}
		if res.Timeline == nil {
			t.Fatal("result has no timeline")
		}
		if len(res.Timeline.Points) < 2 {
			t.Fatalf("series has %d points, want >= 2 (premise: spec spans multiple intervals)",
				len(res.Timeline.Points))
		}
		got = append(got, mustJSON(t, res.Timeline))
		r.Close()
	}
	if got[0] != got[1] {
		t.Errorf("timelines diverge across runner instances:\n  a %s\n  b %s", got[0], got[1])
	}

	// And through the same pool: a cache hit returns the identical
	// series object, a distinct-seed job a distinct one.
	r := New(Options{Workers: 4})
	defer r.Close()
	a, err := r.Run(ctx, tlSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(ctx, tlSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, a.Timeline) != got[0] || mustJSON(t, b.Timeline) != got[0] {
		t.Error("pooled runs diverge from fresh-runner series")
	}
	if tl, ok := r.Timeline(a.ID); !ok || mustJSON(t, tl) != got[0] {
		t.Errorf("Timeline(%s) ok=%v, want the job's own series", a.ID, ok)
	}
}

// TestTimelineOff checks the off switch end to end: no series on the
// result, Timeline() answers false, and the job key (hence ID) differs
// from the default-sampled variant while default sampling leaves the
// key identical to a spec that never mentions timelines.
func TestTimelineOff(t *testing.T) {
	ctx := context.Background()
	r := New(Options{Workers: 2})
	defer r.Close()

	off := fastSpec(3)
	off.TimelineOff = true
	res, err := r.Run(ctx, off)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Error("TimelineOff job still produced a series")
	}
	if _, ok := r.Timeline(res.ID); ok {
		t.Error("Timeline() answered true for a timeline-off job")
	}

	// Key discipline: defaults are silent (old IDs stay valid),
	// non-defaults are spelled out.
	key := func(s JobSpec) string {
		t.Helper()
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	deflt := fastSpec(3)
	deflt.TimelineInterval = timeline.DefaultInterval
	if key(deflt) != key(fastSpec(3)) {
		t.Errorf("explicit default interval changed key:\n  %s\n  %s", key(deflt), key(fastSpec(3)))
	}
	if key(off) == key(fastSpec(3)) {
		t.Error("timeline-off spec has the same key as the default spec")
	}
	if key(tlSpec(3)) == key(fastSpec(3)) || key(tlSpec(3)) == key(off) {
		t.Error("non-default interval spec key collides")
	}
}

// TestTimelineStoreRestore checks the persistence contract: a series
// written beside the result is served byte-identically by the next
// process generation, for a job restored from disk.
func TestTimelineStoreRestore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := tlSpec(5)

	st1 := openStore(t, dir)
	r1 := New(Options{Workers: 2, Store: st1})
	res, err := r1.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, res.Timeline)
	r1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	r2 := New(Options{Workers: 2, Store: st2})
	defer r2.Close()
	j, reused, err := r2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("warm-start Submit reused=false")
	}
	got, ok := r2.Timeline(j.ID)
	if !ok {
		t.Fatal("restored job has no timeline")
	}
	if mustJSON(t, got) != want {
		t.Errorf("restored series differs:\n  want %s\n  got  %s", want, mustJSON(t, got))
	}
}

// TestTimelineTornRecord is the crash test: tearing the tail of the
// segment (where the timeline record sits, written after its result)
// must cost exactly the timeline — the result itself stays servable
// and the partial series never surfaces.
func TestTimelineTornRecord(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := tlSpec(9)

	st1 := openStore(t, dir)
	r1 := New(Options{Workers: 2, Store: st1})
	res, err := r1.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the final record's payload: a torn CRC the store's
	// recovery discards on open.
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	if st2.Stats().TornRecovered == 0 {
		t.Fatal("reopen recovered no torn record; test cut nothing")
	}
	r2 := New(Options{Workers: 2, Store: st2})
	defer r2.Close()
	j, reused, err := r2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("result record should have survived the torn timeline")
	}
	got, ok := j.Result()
	if !ok {
		t.Fatal("restored job has no result")
	}
	if got.ID != res.ID || got.Counters != res.Counters {
		t.Errorf("restored result differs: %+v vs %+v", got.Counters, res.Counters)
	}
	if _, ok := r2.Timeline(j.ID); ok {
		t.Error("torn timeline record surfaced as a series")
	}
}

// TestBatchTimelines checks per-config aggregation: a sweep's status
// carries one merged series per config covering every completed job.
func TestBatchTimelines(t *testing.T) {
	r := New(Options{Workers: 4})
	defer r.Close()
	b, _, err := r.SubmitBatch(SweepSpec{
		Workload: "memcached",
		Configs:  []ConfigKind{Base, Enhanced},
		Seeds:    []uint64{1, 2},
		Warm:     5, Measure: 25,
		TimelineInterval: timeline.MinInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := b.Status()
	if len(st.Timelines) != 2 {
		t.Fatalf("got %d batch timelines, want one per config (2): %+v", len(st.Timelines), st.Timelines)
	}
	for _, bt := range st.Timelines {
		if bt.Jobs != 2 {
			t.Errorf("config %s merged %d jobs, want 2", bt.Config, bt.Jobs)
		}
		if bt.Series == nil || len(bt.Series.Points) == 0 {
			t.Errorf("config %s has an empty merged series", bt.Config)
		}
	}
}
