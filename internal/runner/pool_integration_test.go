package runner

import (
	"context"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// TestPooledBitIdenticalToUnpooled is the tentpole invariant at the
// runner layer: the same specs run through the artifact pool and with
// pooling disabled produce bit-identical counters and latencies.
func TestPooledBitIdenticalToUnpooled(t *testing.T) {
	specs := []JobSpec{
		{Workload: "memcached", Config: Base, Seed: 4, Warm: 5, Measure: 30},
		{Workload: "memcached", Config: Enhanced, Seed: 4, Warm: 5, Measure: 30},
		{Workload: "memcached", Config: Enhanced, Seed: 4, Warm: 5, Measure: 60},
	}

	pooled := New(Options{Workers: 2})
	defer pooled.Close()
	unpooled := New(Options{Workers: 2, DisablePool: true})
	defer unpooled.Close()
	if pooled.ArtifactPool() == nil {
		t.Fatal("default runner has no artifact pool")
	}
	if unpooled.ArtifactPool() != nil {
		t.Fatal("DisablePool runner still has a pool")
	}

	pr, err := pooled.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := unpooled.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if pr[i].Counters != ur[i].Counters {
			t.Errorf("spec %d: pooled counters diverge from unpooled:\npooled   %+v\nunpooled %+v",
				i, pr[i].Counters, ur[i].Counters)
		}
		for class, ps := range pr[i].Samples {
			us, ok := ur[i].Samples[class]
			if !ok {
				t.Errorf("spec %d: class %q missing unpooled", i, class)
				continue
			}
			pv, uv := ps.Values(), us.Values()
			if len(pv) != len(uv) {
				t.Errorf("spec %d %q: %d vs %d samples", i, class, len(pv), len(uv))
				continue
			}
			for k := range pv {
				if pv[k] != uv[k] {
					t.Errorf("spec %d %q: sample %d = %v pooled, %v unpooled", i, class, k, pv[k], uv[k])
					break
				}
			}
		}
	}

	// All three jobs share one bundle; base and enhanced share link
	// options, so one master serves all three (two forks are hits).
	// Exact counts shift when ambient fault injection forces retries
	// (each retry touches the pool again), so only check them clean.
	if !faultinject.Enabled() {
		st := pooled.ArtifactPool().Stats()
		if st.WorkloadMisses != 1 {
			t.Errorf("workload generated %d times, want 1", st.WorkloadMisses)
		}
		if st.ImageMisses != 1 || st.ImageHits != 2 {
			t.Errorf("image misses=%d hits=%d, want 1 miss + 2 hits", st.ImageMisses, st.ImageHits)
		}
	}

	// Wall split: both components populated, Wall is their sum.
	for i, res := range pr {
		if res.SetupWall <= 0 || res.MeasureWall <= 0 {
			t.Errorf("spec %d: SetupWall=%v MeasureWall=%v, want both > 0", i, res.SetupWall, res.MeasureWall)
		}
		if res.Wall != res.SetupWall+res.MeasureWall {
			t.Errorf("spec %d: Wall=%v != SetupWall+MeasureWall=%v", i, res.Wall, res.SetupWall+res.MeasureWall)
		}
	}
}

// TestConcurrentPooledJobs fans many jobs that share one pooled master
// across the worker pool concurrently (run with -race) and checks each
// against its unpooled twin.
func TestConcurrentPooledJobs(t *testing.T) {
	pooled := New(Options{Workers: 4})
	defer pooled.Close()
	unpooled := New(Options{Workers: 4, DisablePool: true})
	defer unpooled.Close()

	specs := make([]JobSpec, 6)
	for i := range specs {
		specs[i] = JobSpec{Workload: "memcached", Config: Base, Seed: 11, Warm: 5, Measure: 25 + 5*i}
	}
	var wg sync.WaitGroup
	pr := make([]Result, len(specs))
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			pr[i], errs[i] = pooled.Run(context.Background(), spec)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	ur, err := unpooled.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if pr[i].Counters != ur[i].Counters {
			t.Errorf("job %d: pooled counters diverge from unpooled", i)
		}
	}
	if st := pooled.ArtifactPool().Stats(); !faultinject.Enabled() && (st.WorkloadMisses != 1 || st.ImageMisses != 1) {
		t.Errorf("concurrent jobs rebuilt artifacts: %+v, want 1 workload miss and 1 image miss", st)
	}
}

// TestNormalizeRejectsExplicitSubMinimum pins the Normalize contract:
// an explicitly requested budget below MinMeasure errors (it used to
// be silently clamped to 20 and cached under a key the caller never
// asked for), while the default and scale-fold paths still clamp.
func TestNormalizeRejectsExplicitSubMinimum(t *testing.T) {
	_, err := JobSpec{Workload: "memcached", Config: Base, Seed: 1, Measure: 5}.Normalize()
	if err == nil {
		t.Error("explicit measure=5 normalized, want error")
	}
	if _, _, err := New(Options{Workers: 1}).Submit(JobSpec{Workload: "memcached", Config: Base, Seed: 1, Measure: 5}); err == nil {
		t.Error("explicit measure=5 submitted, want error")
	}
	// MinMeasure itself is accepted.
	n, err := JobSpec{Workload: "memcached", Config: Base, Seed: 1, Measure: MinMeasure}.Normalize()
	if err != nil || n.Measure != MinMeasure {
		t.Errorf("measure=%d: n=%+v err=%v, want accepted verbatim", MinMeasure, n, err)
	}
	// The scale-fold path clamps rather than erroring: an explicit
	// valid budget scaled below the floor lands on the floor.
	n, err = JobSpec{Workload: "memcached", Config: Base, Seed: 1, Measure: 100, Scale: 0.01}.Normalize()
	if err != nil || n.Measure != MinMeasure {
		t.Errorf("measure=100 scale=0.01: n=%+v err=%v, want clamp to %d", n, err, MinMeasure)
	}
	// The workload-default path still clamps tiny scales.
	n, err = JobSpec{Workload: "memcached", Config: Base, Seed: 1, Scale: 0.001}.Normalize()
	if err != nil || n.Measure != MinMeasure {
		t.Errorf("default scale=0.001: n=%+v err=%v, want clamp to %d", n, err, MinMeasure)
	}
}
