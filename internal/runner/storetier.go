package runner

// The disk-tier lookup path: promoting persisted results back into
// the in-memory cache.  The store itself lives in internal/store;
// this file is the glue that turns its byte payloads back into
// completed *Job handles.

import "repro/internal/timeline"

// closedChan is a pre-closed done channel shared by every restored
// job — they were complete before this process ever saw them.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Timeline returns the phase timeline of the job with the given short
// ID: from the in-memory result when the job completed in this
// process, otherwise from the store record persisted beside the
// result.  It answers false for unknown jobs, jobs that ran with
// timelines disabled, jobs still in flight, and timeline records lost
// to crash recovery — the result itself stays servable in every one
// of those cases.
func (r *Runner) Timeline(id string) (*timeline.Series, bool) {
	r.mu.Lock()
	j, inMem := r.byID[id]
	r.mu.Unlock()
	if inMem {
		if res, ok := j.Result(); ok && res.Timeline != nil {
			return res.Timeline, true
		}
	}
	if r.store == nil {
		return nil, false
	}
	payload, ok, err := r.store.Get(timelineStoreID(id))
	if !ok || err != nil {
		return nil, false
	}
	s, err := decodeTimeline(payload)
	if err != nil {
		return nil, false
	}
	return s, true
}

// Sampled returns the interval estimates of the sampled job with the
// given short ID: from the in-memory result when the job completed in
// this process, otherwise from the store record persisted beside the
// result.  It answers false for unknown jobs, exact jobs, jobs still
// in flight, and sampled records lost to crash recovery.
func (r *Runner) Sampled(id string) (*SampledResult, bool) {
	r.mu.Lock()
	j, inMem := r.byID[id]
	r.mu.Unlock()
	if inMem {
		if res, ok := j.Result(); ok && res.Sampled != nil {
			return res.Sampled, true
		}
	}
	if r.store == nil {
		return nil, false
	}
	payload, ok, err := r.store.Get(sampledStoreID(id))
	if !ok || err != nil {
		return nil, false
	}
	s, err := decodeSampled(payload)
	if err != nil {
		return nil, false
	}
	return s, true
}

// restoreJobLocked looks id up in the disk store and, on a hit,
// promotes it into the in-memory cache as a completed job.  wantKey,
// when non-empty, must match the stored result's canonical key (a
// Submit-path paranoia check; the ID is a truncated hash of the key).
// Caller holds r.mu; the runner→store lock order is safe because the
// store never calls back into the runner while holding its own lock.
func (r *Runner) restoreJobLocked(id, wantKey string) (*Job, bool) {
	if r.store == nil {
		return nil, false
	}
	payload, ok, err := r.store.Get(id)
	if !ok || err != nil {
		return nil, false
	}
	res, err := decodeResult(payload)
	if err != nil {
		// Foreign or corrupt record (e.g. a batch snapshot probed by
		// a job lookup): treat as a miss, never as an error.
		return nil, false
	}
	if res.ID != id || (wantKey != "" && res.Key != wantKey) {
		return nil, false
	}
	j := &Job{
		ID:       id,
		Key:      res.Key,
		Spec:     res.Spec,
		done:     closedChan,
		state:    StateDone,
		result:   res,
		attempts: 1,
	}
	r.byKey[j.Key] = j
	r.byID[id] = j
	// The ID is addressable again; it is no longer "gone".
	delete(r.evicted, id)
	r.retainLocked(j)
	return j, true
}
