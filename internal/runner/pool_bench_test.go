package runner

import (
	"context"
	"testing"
)

// benchSweepSpecs is a repeated-spec sweep: one workload bundle, one
// seed, two configs that share link options, and a ladder of warmup
// budgets over the minimum measured count.  Unpooled, every cell pays
// generation + linking (mysql's dominant cost at small budgets);
// pooled, the whole sweep costs one generation, one link, and cheap
// copy-on-write forks.  This is the shape batch submissions take in
// practice (sweep one workload across configs/budgets), so the A/B
// ratio below is the pool's headline throughput win.
func benchSweepSpecs() []JobSpec {
	specs := make([]JobSpec, 0, 12)
	for _, cfg := range []ConfigKind{Base, Enhanced} {
		for i := 0; i < 6; i++ {
			specs = append(specs, JobSpec{
				Workload: "mysql",
				Config:   cfg,
				Seed:     1,
				Warm:     1 + i,
				Measure:  MinMeasure,
			})
		}
	}
	return specs
}

// benchSweep runs the sweep on a fresh Runner per iteration so the
// pooled side rebuilds its pool every time — the measured win is
// within-sweep reuse, not a warm cache carried across iterations.
func benchSweep(b *testing.B, disable bool) {
	specs := benchSweepSpecs()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := New(Options{Workers: 2, DisablePool: disable, TraceCapacity: -1})
		if _, err := r.RunAll(ctx, specs); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
	b.ReportMetric(float64(len(specs)), "jobs/op")
}

func BenchmarkSweepPooled(b *testing.B)   { benchSweep(b, false) }
func BenchmarkSweepUnpooled(b *testing.B) { benchSweep(b, true) }
