package runner

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// fastSpec is a cheap job for pool-mechanics tests.
func fastSpec(seed uint64) JobSpec {
	return JobSpec{Workload: "memcached", Config: Base, Seed: seed, Warm: 5, Measure: 25}
}

func TestSpecNormalizeAndKey(t *testing.T) {
	// Defaults resolve from the registry and scale folds into Measure.
	n, err := JobSpec{Workload: "apache", Config: Base, Seed: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Warm != 80 || n.Measure != 400 || n.Scale != 0 {
		t.Errorf("normalized = %+v, want warm=80 measure=400 scale=0", n)
	}
	// Scale 0.25 of 400 = 100; tiny scales clamp to 20 (the Suite
	// clamp the runner must mirror).
	n, _ = JobSpec{Workload: "apache", Config: Base, Seed: 1, Scale: 0.25}.Normalize()
	if n.Measure != 100 {
		t.Errorf("scaled measure = %d, want 100", n.Measure)
	}
	n, _ = JobSpec{Workload: "apache", Config: Base, Seed: 1, Scale: 0.001}.Normalize()
	if n.Measure != 20 {
		t.Errorf("clamped measure = %d, want 20", n.Measure)
	}

	// Specs denoting the same simulation share a key...
	k1, _ := JobSpec{Workload: "apache", Config: Base, Seed: 1, Scale: 1}.Key()
	k2, _ := JobSpec{Workload: "apache", Config: Base, Seed: 1, Measure: 400, Warm: 80}.Key()
	if k1 != k2 {
		t.Errorf("equivalent specs keyed differently:\n%s\n%s", k1, k2)
	}
	// ...and different simulations do not.
	k3, _ := JobSpec{Workload: "apache", Config: Enhanced, Seed: 1}.Key()
	k4, _ := JobSpec{Workload: "apache", Config: Base, Seed: 2}.Key()
	if k1 == k3 || k1 == k4 || k3 == k4 {
		t.Errorf("distinct specs share a key: %q %q %q", k1, k3, k4)
	}
	if IDFromKey(k1) == IDFromKey(k3) {
		t.Error("distinct keys share an ID")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []JobSpec{
		{Workload: "nginx", Config: Base, Seed: 1},
		{Workload: "apache", Config: "turbo", Seed: 1},
		{Workload: "apache", Config: Base, Warm: -1},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", spec)
		}
		if _, _, err := New(Options{Workers: 1}).Submit(spec); err == nil {
			t.Errorf("Submit(%+v) = nil, want error", spec)
		}
	}
}

// TestSingleflightDedup submits the same spec many times concurrently
// and asserts the simulation ran exactly once with every caller seeing
// identical results.
func TestSingleflightDedup(t *testing.T) {
	r := New(Options{Workers: 4})
	defer r.Close()
	spec := fastSpec(3)

	const callers = 8
	results := make([]Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(context.Background(), spec)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	st := r.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1 (exactly one simulation)", st.CacheMisses)
	}
	if st.CacheHits+st.Deduped != callers-1 {
		t.Errorf("hits+deduped = %d, want %d", st.CacheHits+st.Deduped, callers-1)
	}
	if st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}
	for i := 1; i < callers; i++ {
		if results[i].Counters != results[0].Counters {
			t.Errorf("caller %d saw different counters", i)
		}
		if !results[i].CacheHit {
			// At most one caller (the creator) may report a miss; with
			// 8 racing callers at least 7 reused.  The creator is the
			// only one allowed CacheHit == false.
			if results[i].Key != results[0].Key {
				t.Errorf("caller %d: key mismatch", i)
			}
		}
	}
	// Resubmission after completion is a cache hit with the same data.
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("resubmission: CacheHit = false, want true")
	}
	if res.Counters != results[0].Counters {
		t.Error("resubmission returned different counters")
	}
}

// inlineRun replays the historical sequential Suite sequence for one
// spec: generate, link, warm up, measure — no pool, no cache.  The
// runner must be bit-identical to this.
func inlineRun(t *testing.T, spec JobSpec) Result {
	t.Helper()
	n, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := WorkloadByName(n.Workload)
	cfg, err := n.Config.Config(n.Seed)
	if err != nil {
		t.Fatal(err)
	}
	w := ws.Gen(n.Seed)
	sys, err := w.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := workload.NewDriver(w, sys, n.Seed+17)
	if err := d.Warmup(n.Warm); err != nil {
		t.Fatal(err)
	}
	samp, err := d.Run(n.Measure)
	if err != nil {
		t.Fatal(err)
	}
	return Result{Counters: sys.Counters(), Samples: samp, Trace: sys.LifetimeRecorder()}
}

// TestDeterminismUnderParallelism is the DESIGN.md determinism
// invariant surviving the worker pool: N distinct jobs submitted at
// once produce counters and latency samples bit-identical to an
// inline sequential run of the same specs.
func TestDeterminismUnderParallelism(t *testing.T) {
	specs := []JobSpec{
		{Workload: "memcached", Config: Base, Seed: 7, Warm: 5, Measure: 30},
		{Workload: "memcached", Config: Enhanced, Seed: 7, Warm: 5, Measure: 30},
		{Workload: "firefox", Config: Base, Seed: 7, Warm: 5, Measure: 25},
		{Workload: "firefox", Config: Enhanced, Seed: 7, Warm: 5, Measure: 25},
	}

	r := New(Options{Workers: 4})
	defer r.Close()
	parallel, err := r.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	for i, spec := range specs {
		seq := inlineRun(t, spec)
		got := parallel[i]
		if got.Counters != seq.Counters {
			t.Errorf("%s/%s: parallel counters differ from sequential:\n got %+v\nwant %+v",
				spec.Workload, spec.Config, got.Counters, seq.Counters)
		}
		if got.Trace.Total() != seq.Trace.Total() || got.Trace.Distinct() != seq.Trace.Distinct() {
			t.Errorf("%s/%s: trace totals differ: got (%d,%d) want (%d,%d)",
				spec.Workload, spec.Config,
				got.Trace.Total(), got.Trace.Distinct(),
				seq.Trace.Total(), seq.Trace.Distinct())
		}
		for class, want := range seq.Samples {
			gotS, ok := got.Samples[class]
			if !ok {
				t.Errorf("%s/%s: class %s missing", spec.Workload, spec.Config, class)
				continue
			}
			wv, gv := want.Values(), gotS.Values()
			if len(wv) != len(gv) {
				t.Errorf("%s/%s %s: %d samples, want %d", spec.Workload, spec.Config, class, len(gv), len(wv))
				continue
			}
			for k := range wv {
				if wv[k] != gv[k] {
					t.Errorf("%s/%s %s[%d]: %v != %v", spec.Workload, spec.Config, class, k, gv[k], wv[k])
					break
				}
			}
		}
	}
}

// TestSameSpecConcurrentBitIdentical submits one spec twice
// concurrently and checks both counters match a sequential rerun.
func TestSameSpecConcurrentBitIdentical(t *testing.T) {
	spec := fastSpec(11)
	r := New(Options{Workers: 2})
	defer r.Close()

	var a, b Result
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a, errA = r.Run(context.Background(), spec) }()
	go func() { defer wg.Done(); b, errB = r.Run(context.Background(), spec) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.Counters != b.Counters {
		t.Error("concurrent submissions of one spec returned different counters")
	}
	seq := inlineRun(t, spec)
	if a.Counters != seq.Counters {
		t.Errorf("pooled counters differ from sequential:\n got %+v\nwant %+v", a.Counters, seq.Counters)
	}
}

func TestJobTimeout(t *testing.T) {
	r := New(Options{Workers: 1, JobTimeout: time.Nanosecond})
	defer r.Close()
	_, err := r.Run(context.Background(), fastSpec(1))
	if err == nil {
		t.Fatal("want timeout error, got nil")
	}
	if st := r.Stats(); st.Failed != 1 {
		t.Errorf("failed = %d, want 1", st.Failed)
	}
}

func TestWaitCancellation(t *testing.T) {
	r := New(Options{Workers: 1})
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx, fastSpec(2)); err == nil {
		t.Fatal("want context error, got nil")
	}
}

func TestCloseRejectsAndUnblocks(t *testing.T) {
	r := New(Options{Workers: 1})
	r.Close()
	if _, _, err := r.Submit(fastSpec(1)); err == nil {
		t.Error("Submit after Close = nil, want error")
	}
}

func TestStatsLatency(t *testing.T) {
	r := New(Options{Workers: 2})
	defer r.Close()
	specs := []JobSpec{fastSpec(21), fastSpec(22), fastSpec(23)}
	if _, err := r.RunAll(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Completed)
	}
	if st.JobP50MS <= 0 || st.JobP99MS < st.JobP50MS || st.JobMeanMS <= 0 {
		t.Errorf("latency stats inconsistent: %+v", st)
	}
	if st.Workers != 2 {
		t.Errorf("workers = %d, want 2", st.Workers)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("idle pool reports queued=%d running=%d", st.Queued, st.Running)
	}
}

func TestJobLookupByID(t *testing.T) {
	r := New(Options{Workers: 1})
	defer r.Close()
	j, _, err := r.Submit(fastSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r.Job(j.ID)
	if !ok || got != j {
		t.Fatalf("Job(%q) = %v, %v", j.ID, got, ok)
	}
	if _, ok := r.Job("no-such-id"); ok {
		t.Error("lookup of unknown ID succeeded")
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateDone {
		t.Errorf("state = %s, want done", j.State())
	}
	if _, done := j.Result(); !done {
		t.Error("Result() not ready after Wait")
	}
	if j.Err() != nil {
		t.Errorf("Err() = %v on a done job", j.Err())
	}
	if j.Attempts() != 1 {
		t.Errorf("Attempts() = %d, want 1", j.Attempts())
	}
}
