package runner

// Sampled-simulation result shapes: per-counter means with 95%
// confidence intervals over a job's measurement windows.  The window
// deltas come from workload.RunSampledContext; this file reduces them
// to per-request rates and interval estimates (stats.MeanCI95).

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SampledCounter is one metric's interval estimate over a sampled
// job's measurement windows: the mean of the per-window values and the
// half-width of its 95% confidence interval (Student-t, n-1 degrees of
// freedom).  The true steady-state value lies in [Mean-CI95, Mean+CI95]
// with 95% confidence under the windows-as-independent-draws model.
type SampledCounter struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
}

// SampledResult is the statistical outcome of a sampled job.  Metrics
// maps metric names to interval estimates; all counter metrics are
// per-measured-request rates, "cpi" is cycles over instructions, and
// "us_per_req" is microseconds of simulated time per request.
type SampledResult struct {
	// Windows is the number of measurement windows (= sample size of
	// every estimate).
	Windows int `json:"windows"`

	// Per-window request budget split: FastForwarded requests run
	// architecturally only, Warmed detailed-but-discarded, Measured
	// detailed and counted.
	FastForwarded int `json:"fast_forwarded_per_window"`
	Warmed        int `json:"warmup_per_window"`
	Measured      int `json:"measured_per_window"`

	Metrics map[string]SampledCounter `json:"metrics"`
}

// sampledMetricNames lists the reported metrics in a stable order (the
// JSON map marshals sorted by key regardless; the list exists for
// tests and table printers).
var sampledMetricNames = []string{
	"instructions", "cycles", "cpi", "us_per_req",
	"tramp_calls", "tramp_skips", "tramp_instrs",
	"mispredicts",
	"l1i_misses", "itlb_misses", "l1d_misses", "dtlb_misses",
}

// buildSampledResult reduces the per-window counter deltas to interval
// estimates.
func buildSampledResult(run *workload.SampledRun) *SampledResult {
	out := &SampledResult{
		Windows:       len(run.Windows),
		FastForwarded: run.FastForwarded,
		Warmed:        run.Warmed,
		Measured:      run.Measured,
		Metrics:       make(map[string]SampledCounter, len(sampledMetricNames)),
	}
	series := make(map[string][]float64, len(sampledMetricNames))
	for _, w := range run.Windows {
		reqs := float64(w.Requests)
		if reqs == 0 {
			continue
		}
		c := w.Counters
		perReq := func(name string, v uint64) {
			series[name] = append(series[name], float64(v)/reqs)
		}
		perReq("instructions", c.Instructions)
		perReq("cycles", c.Cycles)
		perReq("tramp_calls", c.TrampCalls)
		perReq("tramp_skips", c.TrampSkips)
		perReq("tramp_instrs", c.TrampInstrs)
		perReq("mispredicts", c.Mispredicts)
		perReq("l1i_misses", c.L1IMisses)
		perReq("itlb_misses", c.ITLBMisses)
		perReq("l1d_misses", c.L1DMisses)
		perReq("dtlb_misses", c.DTLBMisses)
		if c.Instructions > 0 {
			series["cpi"] = append(series["cpi"], float64(c.Cycles)/float64(c.Instructions))
		}
		series["us_per_req"] = append(series["us_per_req"], core.Micros(c.Cycles)/reqs)
	}
	for _, name := range sampledMetricNames {
		mean, ci := stats.MeanCI95(series[name])
		out.Metrics[name] = SampledCounter{Mean: mean, CI95: ci}
	}
	return out
}
