package runner

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestStoreWarmStart is the restart contract: a result computed by
// one process generation is a cache hit in the next — served from
// disk, never recomputed, with bit-identical counters.
func TestStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := fastSpec(7)

	st1 := openStore(t, dir)
	r1 := New(Options{Workers: 2, Store: st1})
	first, err := r1.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh runner over a reopened store: the same spec must come
	// back reused (a store hit), not recomputed.
	st2 := openStore(t, dir)
	r2 := New(Options{Workers: 2, Store: st2})
	defer r2.Close()
	j, reused, err := r2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("warm-start Submit reused=false; job would recompute")
	}
	res, ok := j.Result()
	if !ok {
		t.Fatal("restored job has no result")
	}
	if !res.Restored {
		t.Error("restored result not flagged Restored")
	}
	if first.ID != res.ID || first.Key != res.Key {
		t.Fatalf("identity drifted across restart: %s/%s vs %s/%s", first.ID, first.Key, res.ID, res.Key)
	}
	// Bit-identical: every architectural counter, the derived PKI
	// decomposition, and the trampoline summaries survive the
	// JSON round trip exactly.
	if !reflect.DeepEqual(first.Counters, res.Counters) {
		t.Errorf("counters drifted:\nlive:     %+v\nrestored: %+v", first.Counters, res.Counters)
	}
	if !reflect.DeepEqual(first.PKI, res.PKI) {
		t.Errorf("PKI drifted:\nlive:     %+v\nrestored: %+v", first.PKI, res.PKI)
	}
	if first.DistinctTrampolines() != res.DistinctTrampolines() {
		t.Errorf("distinct trampolines: live %d, restored %d", first.DistinctTrampolines(), res.DistinctTrampolines())
	}
	if first.LibCalls() != res.LibCalls() {
		t.Errorf("lib calls: live %d, restored %d", first.LibCalls(), res.LibCalls())
	}
	if hits := st2.Stats().Hits; hits == 0 {
		t.Error("store recorded no hits during warm start")
	}
	// The restored job is a real cache entry: a second submit
	// coalesces in memory without touching the store again.
	before := st2.Stats().Hits
	if _, reused, _ := r2.Submit(spec); !reused {
		t.Error("second submit after restore missed the in-memory cache")
	}
	if st2.Stats().Hits != before {
		t.Error("second submit re-read the store instead of the memory tier")
	}
}

// TestStoreDemotion pins the eviction semantics change: with a store
// attached, LRU eviction demotes results to disk instead of dropping
// them — the job stays addressable and is never reported 410-gone.
func TestStoreDemotion(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openStore(t, dir)
	r := New(Options{Workers: 2, MaxRetained: 1, Store: st})
	defer r.Close()

	a, err := r.Run(ctx, fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, fastSpec(2)); err != nil {
		t.Fatal(err)
	}
	// Capacity 1: job A has been evicted from memory by now.
	if r.Evicted(a.ID) {
		t.Fatal("Evicted(A) = true despite the store holding A (demotion should not mark gone)")
	}
	j, ok := r.Job(a.ID)
	if !ok {
		t.Fatal("demoted job not addressable via Job()")
	}
	res, ok := j.Result()
	if !ok || !res.Restored {
		t.Fatalf("demoted job result: ok=%v restored=%v", ok, res != nil && res.Restored)
	}
	if !reflect.DeepEqual(a.Counters, res.Counters) {
		t.Errorf("demoted counters drifted:\nlive:     %+v\nrestored: %+v", a.Counters, res.Counters)
	}
}

// TestStoreBatchPersistRestore: a completed batch's aggregate
// snapshot is written through and is readable — with identical
// totals and aggregates — from a later process generation.
func TestStoreBatchPersistRestore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st1 := openStore(t, dir)
	r1 := New(Options{Workers: 2, Store: st1})
	sweep := SweepSpec{Workload: "memcached", Configs: []ConfigKind{Base, Enhanced}, Seeds: []uint64{1, 2}, Warm: 5, Measure: 25}
	b, _, err := r1.SubmitBatch(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := b.Status()
	// The batch snapshot persists asynchronously once the last job
	// completes; wait for it to land.
	deadline := time.Now().Add(5 * time.Second)
	for !st1.Has(b.ID) {
		if time.Now().After(deadline) {
			t.Fatal("batch snapshot never reached the store")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	r2 := New(Options{Workers: 2, Store: st2})
	defer r2.Close()
	rb, ok := r2.Batch(b.ID)
	if !ok {
		t.Fatal("batch not restorable from the store")
	}
	got := rb.Status()
	if got.ID != want.ID || got.Total != want.Total || got.Done != want.Done ||
		got.Failed != want.Failed || !got.Completed {
		t.Fatalf("restored status drifted:\nlive:     %+v\nrestored: %+v", want, got)
	}
	if !reflect.DeepEqual(want.Aggregate, got.Aggregate) {
		t.Errorf("restored aggregates drifted:\nlive:     %+v\nrestored: %+v", want.Aggregate, got.Aggregate)
	}
	if len(rb.Specs) != len(b.Specs) {
		t.Errorf("restored specs %d, want %d", len(rb.Specs), len(b.Specs))
	}
}

// TestStoreDropMarksEvicted: when size-bounded compaction drops an
// entry that is no longer in memory, the runner is told and the ID
// answers "evicted" (410 at the HTTP layer) instead of pretending it
// was never seen.
func TestStoreDropMarksEvicted(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	// A store this small cannot hold even one persisted result, so
	// every demotion is eventually dropped by compaction.
	st, err := store.Open(dir, store.Options{MaxBytes: 1 << 10, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := New(Options{Workers: 2, MaxRetained: 1, Store: st})
	defer r.Close()

	a, err := r.Run(ctx, fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(2); seed < 6; seed++ {
		if _, err := r.Run(ctx, fastSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Has(a.ID) {
		t.Skip("store retained A despite the 1KB bound; cannot exercise drop")
	}
	if !r.Evicted(a.ID) {
		t.Error("store-dropped job not marked evicted")
	}
	if _, ok := r.Job(a.ID); ok {
		t.Error("store-dropped job still addressable")
	}
}
