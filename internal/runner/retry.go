package runner

import (
	"math/rand/v2"
	"time"
)

// RetryPolicy governs re-execution of failed job attempts.
//
// The zero value means "use DefaultRetryPolicy" — transient failures
// (see IsTransient) retry up to 3 total attempts with capped
// exponential backoff and jitter.  To disable retries entirely set
// MaxAttempts to 1 (or any negative value).
type RetryPolicy struct {
	// MaxAttempts is the total number of execution attempts,
	// including the first.  Zero selects the default (3); one or a
	// negative value disables retries.
	MaxAttempts int

	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it.  Zero selects the default (5ms).
	BaseDelay time.Duration

	// MaxDelay caps the exponential growth.  Zero selects the
	// default (250ms).
	MaxDelay time.Duration

	// Jitter is the fraction of each backoff randomised uniformly in
	// [1-Jitter, 1+Jitter], decorrelating retry storms.  Zero selects
	// the default (0.2); a negative value disables jitter.
	Jitter float64

	// Classify reports whether an error is transient (retryable).
	// Nil selects IsTransient.
	Classify func(error) bool
}

// DefaultRetryPolicy returns the policy used for zero-value fields:
// 3 attempts, 5ms base, 250ms cap, 20% jitter, IsTransient
// classification.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Jitter:      0.2,
		Classify:    IsTransient,
	}
}

// normalized resolves zero fields to the defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts == 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = def.MaxDelay
	}
	if p.Jitter == 0 {
		p.Jitter = def.Jitter
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Classify == nil {
		p.Classify = def.Classify
	}
	return p
}

// backoff returns the delay before retry number `retry` (1-based):
// BaseDelay·2^(retry-1) with ±Jitter applied from the given seeded
// stream, never exceeding MaxDelay.  MaxDelay is a hard cap: jitter is
// applied before the final clamp, so upward jitter can never push a
// capped delay past it (it remains a *jittered* cap from below, since
// downward jitter still shortens capped delays).
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.Jitter > 0 && rng != nil {
		f := 1 - p.Jitter + 2*p.Jitter*rng.Float64()
		d = time.Duration(float64(d) * f)
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}
