package runner

import (
	"context"
	"testing"

	"repro/internal/store"
)

// benchStoreSweep measures the restart story end to end: the sweep
// from benchSweepSpecs run through a fresh Runner + freshly opened
// Store per iteration.  Cold, the store directory is empty, so every
// job simulates and persists — compute plus write-through, the first
// process generation.  Warm, the directory was populated once before
// the timer, so each iteration pays segment replay plus twelve disk
// reads and simulates nothing — the second generation.  The ratio is
// the warm-start win a restarted dlsimd gets over recomputing its
// whole result set.
func benchStoreSweep(b *testing.B, warm bool) {
	specs := benchSweepSpecs()
	ctx := context.Background()
	dir := b.TempDir()
	if warm {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r := New(Options{Workers: 2, Store: st, TraceCapacity: -1})
		if _, err := r.RunAll(ctx, specs); err != nil {
			b.Fatal(err)
		}
		r.Close()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dir
		if !warm {
			// Each cold iteration starts from an empty directory, so
			// no generation ever sees another's results.
			b.StopTimer()
			d = b.TempDir()
			b.StartTimer()
		}
		st, err := store.Open(d, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r := New(Options{Workers: 2, Store: st, TraceCapacity: -1})
		if _, err := r.RunAll(ctx, specs); err != nil {
			b.Fatal(err)
		}
		r.Close()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		if warm {
			if got := st.Stats().Writes; got != 0 {
				b.Fatalf("warm iteration wrote %d records; the sweep should be served entirely from disk", got)
			}
		}
	}
	b.ReportMetric(float64(len(specs)), "jobs/op")
}

func BenchmarkSweepColdStore(b *testing.B) { benchStoreSweep(b, false) }
func BenchmarkSweepWarmStore(b *testing.B) { benchStoreSweep(b, true) }
