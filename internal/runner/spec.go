// Package runner turns one-shot simulations into schedulable,
// cacheable, parallel jobs.
//
// A JobSpec names everything that determines a simulation's outcome:
// the workload, the system configuration, the seed, and the request
// budgets.  Specs are content-addressed — two specs that normalise to
// the same canonical key denote the same simulation — so a Runner can
// deduplicate concurrent submissions (singleflight) and serve repeat
// submissions from an in-memory result cache.  Jobs execute on a
// fixed-size worker pool with per-job timeout and cancellation via
// context.Context.
//
// Determinism is preserved end to end: a job's execution sequence
// (workload generation, linking, warmup, measured requests) is exactly
// the sequence internal/experiments.Suite historically ran inline, so
// runner-backed results are bit-identical to sequential ones for the
// same spec.  This invariant is what lets the whole evaluation fan out
// across cores without perturbing any published number.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// ConfigKind names one of the evaluated system configurations.  The
// string values are stable wire names used in job keys and in the
// dlsimd HTTP API.
type ConfigKind string

// The comparison space of the paper (§4.1) plus the ARM trampoline
// variants (Fig. 2b).
const (
	Base        ConfigKind = "base"
	Enhanced    ConfigKind = "enhanced"
	Eager       ConfigKind = "eager"
	Static      ConfigKind = "static"
	Patched     ConfigKind = "patched"
	BaseARM     ConfigKind = "base-arm"
	EnhancedARM ConfigKind = "enhanced-arm"
)

// configs maps each kind to its core preset constructor.
var configs = map[ConfigKind]func(uint64) core.Config{
	Base:        core.Base,
	Enhanced:    core.Enhanced,
	Eager:       core.Eager,
	Static:      core.Static,
	Patched:     core.Patched,
	BaseARM:     core.BaseARM,
	EnhancedARM: core.EnhancedARM,
}

// ConfigKinds returns every valid kind, in presentation order.
func ConfigKinds() []ConfigKind {
	return []ConfigKind{Base, Enhanced, Eager, Static, Patched, BaseARM, EnhancedARM}
}

// Valid reports whether k names a known configuration.
func (k ConfigKind) Valid() bool { _, ok := configs[k]; return ok }

// Config returns the core configuration for the kind under the seed.
func (k ConfigKind) Config(seed uint64) (core.Config, error) {
	f, ok := configs[k]
	if !ok {
		return core.Config{}, fmt.Errorf("runner: unknown config kind %q (valid: %v)", k, ConfigKinds())
	}
	return f(seed), nil
}

// WorkloadSpec binds a workload generator to its default measurement
// budget (the evaluation's per-workload request counts, §4.4).
type WorkloadSpec struct {
	Name    string
	Gen     func(seed uint64) *workload.Workload
	Warm    int // warmup requests before measurement
	Measure int // measured requests at scale 1.0
}

// Workloads is the full registry: the paper's four evaluation
// workloads in presentation order, followed by the library-churn
// workloads (plugin-server: dlclose/dlopen rotation with demand-driven
// reloads; jit: runtime GOT rewriting).  Paper-facing tables iterate
// PaperWorkloads so churn additions never perturb published rows.
var Workloads = []WorkloadSpec{
	{Name: "apache", Gen: workload.Apache, Warm: 80, Measure: 400},
	{Name: "firefox", Gen: workload.Firefox, Warm: 20, Measure: 150},
	{Name: "memcached", Gen: workload.Memcached, Warm: 80, Measure: 600},
	{Name: "mysql", Gen: workload.MySQL, Warm: 40, Measure: 200},
	{Name: "plugin-server", Gen: workload.PluginServer, Warm: 30, Measure: 160},
	{Name: "jit", Gen: workload.JIT, Warm: 30, Measure: 160},
}

// NumPaperWorkloads counts the leading registry entries that belong to
// the paper's Table 2/Figure 6 evaluation set.
const NumPaperWorkloads = 4

// PaperWorkloads returns the paper's evaluation workloads — the
// registry subset every reproduced table and figure iterates.
func PaperWorkloads() []WorkloadSpec { return Workloads[:NumPaperWorkloads] }

// WorkloadByName returns the registered workload spec.
func WorkloadByName(name string) (WorkloadSpec, bool) {
	for _, ws := range Workloads {
		if ws.Name == name {
			return ws, true
		}
	}
	return WorkloadSpec{}, false
}

// WorkloadNames returns the registered workload names in order.
func WorkloadNames() []string {
	out := make([]string, len(Workloads))
	for i, ws := range Workloads {
		out[i] = ws.Name
	}
	return out
}

// JobSpec fully determines one simulation job.  The zero values of
// Scale, Warm and Measure mean "use the workload's defaults"; explicit
// values override them.
type JobSpec struct {
	// Workload is a registered workload name (see WorkloadNames).
	Workload string `json:"workload"`

	// Config is the system configuration to simulate under.
	Config ConfigKind `json:"config"`

	// Seed drives workload generation, layout and request
	// interleaving; the same seed produces bit-identical results.
	Seed uint64 `json:"seed"`

	// Scale multiplies the default measured request count.  Zero or
	// negative means 1.0.
	Scale float64 `json:"scale,omitempty"`

	// Warm overrides the warmup request count.  Zero means the
	// workload default.
	Warm int `json:"warm,omitempty"`

	// Measure overrides the measured request count before scaling.
	// Zero means the workload default.
	Measure int `json:"measure,omitempty"`

	// TimelineInterval selects the interval-sampling granularity in
	// retired instructions for the job's phase timeline.  Zero means
	// timeline.DefaultInterval; values below timeline.MinInterval are
	// raised to it.  The interval only changes observation granularity
	// — aggregate counters are bit-identical at any setting.
	TimelineInterval uint64 `json:"timeline_interval,omitempty"`

	// TimelineOff disables timeline collection for this job: the
	// kernel runs with sampling disarmed (the measured zero-overhead
	// path) and GET /v1/jobs/{id}/timeline answers 404.
	TimelineOff bool `json:"timeline_off,omitempty"`

	// SampleWindows, when positive, switches the job to sampled
	// simulation: the measured request budget is split into this many
	// evenly spaced windows, most of each window is fast-forwarded with
	// architectural fidelity only, and the result carries per-counter
	// means with 95% confidence intervals over the measured excerpts
	// (Result.Sampled).  At least 2 windows are required — a single
	// window has no variance estimate.  Zero (the default) runs the
	// exact simulation, leaving the spec's key and every
	// content-derived ID exactly as before sampling existed.
	SampleWindows int `json:"sample_windows,omitempty"`

	// SampleWarmup is the number of detailed warmup requests run (and
	// discarded) after each window's fast-forward phase, rebuilding
	// microarchitectural state before measurement.  Zero means the
	// default (DefaultSampleWarmup); only meaningful with
	// SampleWindows > 0.
	SampleWarmup int `json:"sample_warmup,omitempty"`
}

// Validate checks the spec against the registries.
func (j JobSpec) Validate() error {
	if _, ok := WorkloadByName(j.Workload); !ok {
		return fmt.Errorf("runner: unknown workload %q (valid: %v)", j.Workload, WorkloadNames())
	}
	if !j.Config.Valid() {
		return fmt.Errorf("runner: unknown config kind %q (valid: %v)", j.Config, ConfigKinds())
	}
	if j.Warm < 0 || j.Measure < 0 {
		return fmt.Errorf("runner: negative request budget (warm=%d, measure=%d)", j.Warm, j.Measure)
	}
	if j.SampleWindows < 0 || j.SampleWarmup < 0 {
		return fmt.Errorf("runner: negative sampling parameter (sample_windows=%d, sample_warmup=%d)",
			j.SampleWindows, j.SampleWarmup)
	}
	if j.SampleWindows == 1 {
		return fmt.Errorf("runner: sample_windows=1 has no variance estimate; use >= 2 windows or leave sampling off")
	}
	if j.SampleWindows == 0 && j.SampleWarmup != 0 {
		return fmt.Errorf("runner: sample_warmup=%d without sample_windows", j.SampleWarmup)
	}
	return nil
}

// MinMeasure is the smallest measured-request budget a job runs with:
// fewer requests give percentiles no support.  Scaled-down defaults
// are clamped up to it; explicitly requested budgets below it are
// rejected by Normalize instead, so a caller asking for measure=5
// learns the request is unsatisfiable rather than silently receiving
// a 20-request result cached under a key they never asked for.
const MinMeasure = 20

// DefaultSampleWarmup is the per-window detailed warmup applied when a
// sampled spec leaves SampleWarmup zero: enough requests to re-warm
// caches and predictor state after a fast-forward phase (SMARTS-style
// detailed warming) without eating into the measured excerpt.
const DefaultSampleWarmup = 2

// Normalize resolves defaults and folds Scale into the measured
// request count, returning the canonical form of the spec.  Two specs
// denoting the same simulation normalise identically.  The measured
// count is scaled and clamped exactly as experiments.Suite does, so
// runner results line up with the historical sequential path.  An
// explicit Measure below MinMeasure is an error; only the
// workload-default and Scale-folding paths clamp.
func (j JobSpec) Normalize() (JobSpec, error) {
	if err := j.Validate(); err != nil {
		return JobSpec{}, err
	}
	ws, _ := WorkloadByName(j.Workload)
	out := j
	if out.Warm == 0 {
		out.Warm = ws.Warm
	}
	if out.Measure == 0 {
		out.Measure = ws.Measure
	} else if out.Measure < MinMeasure {
		return JobSpec{}, fmt.Errorf("runner: measure=%d below the minimum %d (leave measure unset for the workload default)",
			out.Measure, MinMeasure)
	}
	scale := out.Scale
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(out.Measure) * scale)
	if n < MinMeasure {
		n = MinMeasure
	}
	out.Measure = n
	out.Scale = 0 // folded into Measure
	if out.SampleWindows > 0 {
		// Sampled simulation fast-forwards most of the run, so a phase
		// timeline over it would be full of holes; the two features are
		// mutually exclusive.  An explicit interval is a contradictory
		// request and is rejected; otherwise sampling forces the
		// timeline off.
		if out.TimelineInterval != 0 && !out.TimelineOff {
			return JobSpec{}, fmt.Errorf("runner: timeline_interval=%d is incompatible with sample_windows=%d (sampled jobs collect no timeline)",
				out.TimelineInterval, out.SampleWindows)
		}
		out.TimelineOff = true
		if out.SampleWarmup == 0 {
			out.SampleWarmup = DefaultSampleWarmup
		}
		if perWin := out.Measure / out.SampleWindows; perWin < out.SampleWarmup+1 {
			return JobSpec{}, fmt.Errorf("runner: measure=%d over sample_windows=%d leaves %d requests per window, need >= sample_warmup+1 = %d",
				out.Measure, out.SampleWindows, perWin, out.SampleWarmup+1)
		}
	}
	if out.TimelineOff {
		out.TimelineInterval = 0
	} else if out.TimelineInterval == 0 {
		out.TimelineInterval = timeline.DefaultInterval
	} else if out.TimelineInterval < timeline.MinInterval {
		out.TimelineInterval = timeline.MinInterval
	}
	return out, nil
}

// Key returns the canonical content-address of the simulation the
// spec denotes.  Specs that normalise identically share a key; the
// Runner caches and deduplicates by it.
func (j JobSpec) Key() (string, error) {
	n, err := j.Normalize()
	if err != nil {
		return "", err
	}
	key := fmt.Sprintf("%s|%s|seed=%d|warm=%d|measure=%d",
		n.Workload, n.Config, n.Seed, n.Warm, n.Measure)
	// Timeline settings only affect observation, but jobs are cached
	// by key and the cached result carries the series — a non-default
	// granularity therefore gets its own key.  Default settings leave
	// the key exactly as before timelines existed, preserving every
	// content-derived ID.
	switch {
	case n.TimelineOff:
		key += "|tl=off"
	case n.TimelineInterval != timeline.DefaultInterval:
		key += fmt.Sprintf("|tl=%d", n.TimelineInterval)
	}
	// Sampled jobs estimate rather than measure exactly, so they can
	// never share a cache entry with an exact job (or with a different
	// window split).  Exact jobs carry no suffix — their keys are
	// byte-identical to pre-sampling ones.
	if n.SampleWindows > 0 {
		key += fmt.Sprintf("|sw=%d|su=%d", n.SampleWindows, n.SampleWarmup)
	}
	return key, nil
}

// IDFromKey derives the short hex job ID used by the dlsimd HTTP API
// from a canonical key.
func IDFromKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}
