package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// sampledSpec is a cheap sampled job: enough measured requests that a
// 4-way split leaves a real excerpt per window.
func sampledSpec(seed uint64) JobSpec {
	return JobSpec{
		Workload: "memcached", Config: Base, Seed: seed,
		Warm: 5, Measure: 160, SampleWindows: 4,
	}
}

func sampledJSON(t *testing.T, s *SampledResult) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSampledRunDeterministic pins the sampled path's reproducibility:
// the same spec yields byte-identical estimates (and excerpt counters)
// across independent runner instances, and the estimate block carries
// every advertised metric.
func TestSampledRunDeterministic(t *testing.T) {
	ctx := context.Background()
	var got []string
	for i := 0; i < 2; i++ {
		r := New(Options{Workers: 2})
		res, err := r.Run(ctx, sampledSpec(11))
		if err != nil {
			t.Fatal(err)
		}
		if res.Sampled == nil {
			t.Fatal("sampled job has no Sampled block")
		}
		if res.Timeline != nil {
			t.Error("sampled job produced a timeline")
		}
		if res.Counters.Instructions == 0 {
			t.Error("excerpt counters are empty")
		}
		for _, name := range sampledMetricNames {
			m, ok := res.Sampled.Metrics[name]
			if !ok {
				t.Fatalf("metric %s missing", name)
			}
			if m.CI95 < 0 {
				t.Errorf("metric %s: negative half-width %v", name, m.CI95)
			}
		}
		got = append(got, sampledJSON(t, res.Sampled))
		r.Close()
	}
	if got[0] != got[1] {
		t.Errorf("sampled estimates diverge across runners:\n  a %s\n  b %s", got[0], got[1])
	}
}

// TestSampledStoreRestore checks the persistence contract: the
// estimate record written beside the result is served byte-identically
// by the next process generation through Runner.Sampled, for a job
// whose in-memory Result was never populated in this process.
func TestSampledStoreRestore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := sampledSpec(5)

	st1 := openStore(t, dir)
	r1 := New(Options{Workers: 2, Store: st1})
	res, err := r1.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := sampledJSON(t, res.Sampled)
	r1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	r2 := New(Options{Workers: 2, Store: st2})
	defer r2.Close()
	j, reused, err := r2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("warm-start Submit reused=false")
	}
	got, ok := r2.Sampled(j.ID)
	if !ok {
		t.Fatal("restored job has no sampled record")
	}
	if sampledJSON(t, got) != want {
		t.Errorf("restored estimates differ:\n  want %s\n  got  %s", want, sampledJSON(t, got))
	}
}

// TestSampledTornRecord is the crash test: tearing the segment tail
// (where the sampled record sits, written after its result) costs
// exactly the estimates — the result stays servable and the partial
// record never surfaces.
func TestSampledTornRecord(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := sampledSpec(9)

	st1 := openStore(t, dir)
	r1 := New(Options{Workers: 2, Store: st1})
	res, err := r1.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	if st2.Stats().TornRecovered == 0 {
		t.Fatal("reopen recovered no torn record; test cut nothing")
	}
	r2 := New(Options{Workers: 2, Store: st2})
	defer r2.Close()
	j, reused, err := r2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("result record should have survived the torn sampled tail")
	}
	got, ok := j.Result()
	if !ok {
		t.Fatal("restored job has no result")
	}
	if got.ID != res.ID || got.Counters != res.Counters {
		t.Errorf("restored result differs: %+v vs %+v", got.Counters, res.Counters)
	}
	if _, ok := r2.Sampled(j.ID); ok {
		t.Error("torn sampled record surfaced as estimates")
	}
}

// TestCompiledExactBitIdentical pins the tentpole's core guarantee at
// the job level: an exact job's counters are bit-identical whether the
// kernel replays the compiled trace or interprets instruction by
// instruction — pooled (compiled Program cached next to the master
// image) and unpooled (compiled per job) alike.
func TestCompiledExactBitIdentical(t *testing.T) {
	ctx := context.Background()
	spec := fastSpec(21)
	variants := []struct {
		name string
		opts Options
	}{
		{"compiled-pooled", Options{Workers: 2}},
		{"compiled-unpooled", Options{Workers: 2, DisablePool: true}},
		{"interpreted-pooled", Options{Workers: 2, DisableCompiledTraces: true}},
		{"interpreted-unpooled", Options{Workers: 2, DisableCompiledTraces: true, DisablePool: true}},
	}
	results := make([]Result, len(variants))
	for i, v := range variants {
		r := New(v.opts)
		res, err := r.Run(ctx, spec)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		results[i] = res
		r.Close()
	}
	for i := 1; i < len(results); i++ {
		if results[i].Counters != results[0].Counters {
			t.Errorf("%s counters diverge from %s:\n  %+v\n  %+v",
				variants[i].name, variants[0].name, results[i].Counters, results[0].Counters)
		}
		if results[i].PKI != results[0].PKI {
			t.Errorf("%s PKI diverges from %s", variants[i].name, variants[0].name)
		}
	}

	// Sampled jobs need the compiled form for fast-forward, so the
	// kill switch must not break them.
	r := New(Options{Workers: 2, DisableCompiledTraces: true})
	defer r.Close()
	res, err := r.Run(ctx, sampledSpec(21))
	if err != nil {
		t.Fatalf("sampled under DisableCompiledTraces: %v", err)
	}
	if res.Sampled == nil {
		t.Error("sampled job under DisableCompiledTraces has no estimates")
	}
}

// TestBatchSampledAggregate checks the sweep roll-up: a sampled sweep
// propagates sample_windows into every expanded spec and its
// aggregates carry the pooled per-request mean with a combined 95%
// half-width.
func TestBatchSampledAggregate(t *testing.T) {
	r := New(Options{Workers: 4})
	defer r.Close()
	b, _, err := r.SubmitBatch(SweepSpec{
		Workload: "memcached",
		Configs:  []ConfigKind{Base, Enhanced},
		Seeds:    []uint64{1, 2},
		Warm:     5, Measure: 160,
		SampleWindows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range b.Specs {
		if s.SampleWindows != 4 {
			t.Fatalf("expanded spec lost sample_windows: %+v", s)
		}
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := b.Status()
	if len(st.Aggregate) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(st.Aggregate))
	}
	for _, a := range st.Aggregate {
		if a.SampledJobs != 2 {
			t.Errorf("config %s: sampled_jobs = %d, want 2", a.Config, a.SampledJobs)
		}
		if a.SampledUS <= 0 || a.SampledUSCI < 0 {
			t.Errorf("config %s: sampled_us = %v ± %v, want positive mean", a.Config, a.SampledUS, a.SampledUSCI)
		}
	}
	if len(st.Timelines) != 0 {
		t.Errorf("sampled sweep produced %d merged timelines, want 0", len(st.Timelines))
	}
}
