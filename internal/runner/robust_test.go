package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// armed arms one injection point for the duration of the test and
// restores the framework afterwards.
func armed(t *testing.T, point string, cfg faultinject.PointConfig) {
	t.Helper()
	faultinject.Enable(point, cfg)
	t.Cleanup(faultinject.Reset)
}

// TestPanicIsolation proves the acceptance criterion: an injected
// panic in a worker fails only that job — the process survives, the
// stack is recorded, and stats count the failure — while a subsequent
// job on the same pool succeeds.
func TestPanicIsolation(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Panic, Prob: 1, Count: 1})

	r := New(Options{Workers: 2})
	defer r.Close()

	_, err := r.Run(context.Background(), fastSpec(41))
	if err == nil {
		t.Fatal("want panic-failure, got success")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PanicError", err, err)
	}
	if pe.Stack == "" || pe.Value == nil {
		t.Errorf("panic not captured: value=%v stack-len=%d", pe.Value, len(pe.Stack))
	}
	st := r.Stats()
	if st.Failed != 1 || st.Panics != 1 {
		t.Errorf("stats failed=%d panics=%d, want 1/1", st.Failed, st.Panics)
	}

	// The pool is still alive: the injection count is exhausted, so a
	// fresh job runs clean.
	res, err := r.Run(context.Background(), fastSpec(42))
	if err != nil {
		t.Fatalf("pool dead after panic: %v", err)
	}
	if res.Counters.Instructions == 0 {
		t.Error("post-panic job returned empty result")
	}
	if st := r.Stats(); st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}
}

// TestTransientRetrySucceeds proves the acceptance criterion: a job
// that fails transiently N < max times under injection eventually
// succeeds via backoff retry, with the exact retry count in stats.
func TestTransientRetrySucceeds(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Error, Prob: 1, Count: 2})

	r := New(Options{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	defer r.Close()

	j, _, err := r.Submit(fastSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("job failed despite retries: %v", err)
	}
	if j.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3 (2 injected failures + success)", j.Attempts())
	}
	st := r.Stats()
	if st.Retries != 2 {
		t.Errorf("retries = %d, want exactly 2", st.Retries)
	}
	if st.Completed != 1 || st.Failed != 0 {
		t.Errorf("completed=%d failed=%d, want 1/0", st.Completed, st.Failed)
	}
	if faultinject.Injections("runner.execute") != 2 {
		t.Errorf("injections = %d, want 2", faultinject.Injections("runner.execute"))
	}
}

// TestPermanentFailureStopsAtCap proves the other half of the
// criterion: a job that keeps failing stops at the retry cap with the
// exact attempt and retry counts.
func TestPermanentFailureStopsAtCap(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Error, Prob: 1})

	r := New(Options{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	defer r.Close()

	j, _, err := r.Submit(fastSpec(52))
	if err != nil {
		t.Fatal(err)
	}
	_, err = j.Wait(context.Background())
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("error = %v, want the injected error", err)
	}
	if j.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3 (the cap)", j.Attempts())
	}
	st := r.Stats()
	if st.Retries != 2 || st.Failed != 1 || st.Completed != 0 {
		t.Errorf("retries=%d failed=%d completed=%d, want 2/1/0", st.Retries, st.Failed, st.Completed)
	}
	if got := j.Err(); !errors.As(got, &inj) {
		t.Errorf("Job.Err() = %v, want the injected error", got)
	}
	if _, ok := j.Result(); ok {
		t.Error("failed job reports a Result")
	}
}

// TestNonTransientNotRetried: the default classification does not
// retry panics.
func TestNonTransientNotRetried(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Panic, Prob: 1})

	r := New(Options{Workers: 1, Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}})
	defer r.Close()
	j, _, _ := r.Submit(fastSpec(53))
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("want failure")
	}
	if j.Attempts() != 1 {
		t.Errorf("attempts = %d, want 1 (panics are permanent)", j.Attempts())
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Errorf("retries = %d, want 0", st.Retries)
	}
}

func TestJobTimeoutSentinel(t *testing.T) {
	leakcheck.Check(t)
	r := New(Options{Workers: 1, JobTimeout: time.Nanosecond})
	defer r.Close()
	_, err := r.Run(context.Background(), fastSpec(54))
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("error = %v, want errors.Is ErrJobTimeout", err)
	}
	if errors.Is(err, ErrRunnerClosed) {
		t.Error("timeout error also matches ErrRunnerClosed")
	}
}

// TestClosedSentinels: Submit after Close, a job cancelled mid-run by
// Close, and a job abandoned while queued all match ErrRunnerClosed.
func TestClosedSentinels(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Hang, Prob: 1})

	r := New(Options{Workers: 1})
	running, _, err := r.Submit(fastSpec(55))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, _, err := r.Submit(fastSpec(56))
	if err != nil {
		t.Fatal(err)
	}

	r.Close()
	if _, _, err := r.Submit(fastSpec(57)); !errors.Is(err, ErrRunnerClosed) {
		t.Errorf("Submit after Close = %v, want ErrRunnerClosed", err)
	}
	if _, err := running.Wait(context.Background()); !errors.Is(err, ErrRunnerClosed) {
		t.Errorf("mid-run job error = %v, want ErrRunnerClosed", err)
	}
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrRunnerClosed) {
		t.Errorf("queued job error = %v, want ErrRunnerClosed", err)
	}
}

// waitState polls until the job reaches the state or the test times
// out.
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s, want %s", j.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelledWhileQueued: a caller abandoning its Wait while the
// job is still queued leaks nothing, and the job itself is untouched
// (it still belongs to the pool).
func TestCancelledWhileQueued(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Hang, Prob: 1, Count: 1})

	r := New(Options{Workers: 1})
	hog, _, err := r.Submit(fastSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hog, StateRunning)

	queued, _, err := r.Submit(fastSpec(62))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := queued.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
	if queued.State() != StateQueued {
		t.Errorf("abandoned job state = %s, want still queued", queued.State())
	}

	// Release the hang: both jobs complete normally.
	faultinject.Reset()
	if _, err := hog.Wait(context.Background()); err != nil {
		t.Errorf("hog failed: %v", err)
	}
	if _, err := queued.Wait(context.Background()); err != nil {
		t.Errorf("queued job failed after release: %v", err)
	}
	r.Close()
}

// TestCancelledMidRun: abandoning the Wait of a running job does not
// cancel the job; Close afterwards reclaims the worker goroutine
// (asserted by the leak check).
func TestCancelledMidRun(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Hang, Prob: 1})

	r := New(Options{Workers: 1})
	j, _, err := r.Submit(fastSpec(63))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want Canceled", err)
	}
	if j.State() != StateRunning {
		t.Errorf("job state = %s, want still running (Wait must not cancel it)", j.State())
	}
	r.Close()
	if _, err := j.Wait(context.Background()); !errors.Is(err, ErrRunnerClosed) {
		t.Errorf("after Close, job error = %v, want ErrRunnerClosed", err)
	}
}

// TestQueueFullSheds: with MaxQueue reached, new specs are rejected
// with ErrQueueFull (counted in stats) while cache hits and dedup
// still serve.
func TestQueueFullSheds(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Hang, Prob: 1})

	r := New(Options{Workers: 1, MaxQueue: 1})
	hog, _, err := r.Submit(fastSpec(71))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, hog, StateRunning)
	if _, _, err := r.Submit(fastSpec(72)); err != nil {
		t.Fatalf("first queued submit rejected: %v", err)
	}
	_, _, err = r.Submit(fastSpec(73))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit = %v, want ErrQueueFull", err)
	}
	// Admission control does not break idempotent resubmission.
	if _, reused, err := r.Submit(fastSpec(71)); err != nil || !reused {
		t.Errorf("resubmit of in-flight spec = reused=%v err=%v, want coalesced", reused, err)
	}
	st := r.Stats()
	if st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
	r.Close()
}

// TestDrain: a drain with headroom finishes every job and reports
// nothing abandoned; submissions after the drain are rejected.
func TestDrain(t *testing.T) {
	leakcheck.Check(t)
	r := New(Options{Workers: 2})
	jobs := make([]*Job, 0, 3)
	for seed := uint64(81); seed < 84; seed++ {
		j, _, err := r.Submit(fastSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if n := r.Drain(ctx); n != 0 {
		t.Fatalf("Drain abandoned %d jobs, want 0", n)
	}
	for _, j := range jobs {
		if j.State() != StateDone {
			t.Errorf("job %s state = %s after drain, want done", j.ID, j.State())
		}
	}
	if _, _, err := r.Submit(fastSpec(85)); !errors.Is(err, ErrRunnerClosed) {
		t.Errorf("Submit after Drain = %v, want ErrRunnerClosed", err)
	}
	r.Close()
}

// TestDrainDeadline: a drain that cannot finish reports the abandoned
// jobs and leaves them to Close.
func TestDrainDeadline(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Hang, Prob: 1})

	r := New(Options{Workers: 1})
	j, _, err := r.Submit(fastSpec(91))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if n := r.Drain(ctx); n != 1 {
		t.Errorf("Drain = %d abandoned, want 1", n)
	}
	r.Close()
	if _, err := j.Wait(context.Background()); !errors.Is(err, ErrRunnerClosed) {
		t.Errorf("abandoned job error = %v, want ErrRunnerClosed", err)
	}
}

// TestTransientMarker: the Transient wrapper drives the default
// classification and survives error wrapping.
func TestTransientMarker(t *testing.T) {
	base := errors.New("flaky backend")
	if IsTransient(base) {
		t.Error("unmarked error classified transient")
	}
	marked := Transient(base)
	if !IsTransient(marked) {
		t.Error("marked error not classified transient")
	}
	wrapped := errors.Join(errors.New("outer"), marked)
	if !IsTransient(wrapped) {
		t.Error("wrapped marked error not classified transient")
	}
	if !errors.Is(marked, base) {
		t.Error("Transient broke the error chain")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}
