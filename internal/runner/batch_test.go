package runner

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// fastSweep is a cheap 2-config × 2-seed sweep.
func fastSweep() SweepSpec {
	return SweepSpec{
		Workload: "memcached",
		Configs:  []ConfigKind{Base, Enhanced},
		Seeds:    []uint64{1, 2},
		Warm:     5,
		Measure:  25,
	}
}

// TestSweepIDMatchesSubmit pins that SweepSpec.ID — the routing key
// the cluster layer hashes before forwarding a sweep — is exactly the
// ID SubmitBatch registers, and that it is insensitive to axis order.
func TestSweepIDMatchesSubmit(t *testing.T) {
	defer leakcheck.Check(t)
	id, err := fastSweep().ID()
	if err != nil {
		t.Fatal(err)
	}
	shuffled := fastSweep()
	shuffled.Configs = []ConfigKind{Enhanced, Base}
	shuffled.Seeds = []uint64{2, 1}
	if id2, _ := shuffled.ID(); id2 != id {
		t.Errorf("axis order changed the sweep ID: %s vs %s", id2, id)
	}

	r := New(Options{Workers: 1, TraceCapacity: -1})
	defer r.Close()
	b, _, err := r.SubmitBatch(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != id {
		t.Errorf("SubmitBatch ID %s != SweepSpec.ID %s", b.ID, id)
	}
	if _, err := (SweepSpec{Workload: "memcached"}).ID(); err == nil {
		t.Error("empty-axis sweep produced an ID, want error")
	}
}

func TestSweepExpand(t *testing.T) {
	specs, err := fastSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("expanded %d jobs, want 4", len(specs))
	}
	// Config-major order, every spec normalized.
	if specs[0].Config != Base || specs[0].Seed != 1 || specs[3].Config != Enhanced || specs[3].Seed != 2 {
		t.Errorf("expansion order wrong: %+v", specs)
	}
	for _, sp := range specs {
		if sp.Measure != 25 || sp.Scale != 0 {
			t.Errorf("spec not normalized: %+v", sp)
		}
	}

	// Duplicate axis values dedup by canonical key.
	dup := fastSweep()
	dup.Configs = append(dup.Configs, Base)
	dup.Seeds = append(dup.Seeds, 1)
	specs2, err := dup.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs2) != 4 {
		t.Errorf("duplicated axes expanded to %d jobs, want 4", len(specs2))
	}
	if batchID(specs2) != batchID(specs) {
		t.Error("duplicated axes changed the batch ID")
	}

	// Errors: empty axes, oversized expansion, invalid cell.
	bad := []SweepSpec{
		{Workload: "memcached", Configs: nil, Seeds: []uint64{1}},
		{Workload: "memcached", Configs: []ConfigKind{Base}, Seeds: nil},
		{Workload: "memcached", Configs: []ConfigKind{Base}, Seeds: make([]uint64, MaxBatchJobs+1)},
		{Workload: "nginx", Configs: []ConfigKind{Base}, Seeds: []uint64{1}},
		{Workload: "memcached", Configs: []ConfigKind{Base}, Seeds: []uint64{1}, Measure: 5},
	}
	for i, sweep := range bad {
		if _, err := sweep.Expand(); err == nil {
			t.Errorf("bad sweep %d expanded, want error", i)
		}
	}
}

// TestSubmitBatchIdempotent: resubmitting the same sweep returns the
// same batch handle and runs nothing twice; a different sweep gets a
// different batch sharing overlapping jobs.
func TestSubmitBatchIdempotent(t *testing.T) {
	r := New(Options{Workers: 4})
	defer r.Close()
	defer leakcheck.Check(t)

	b1, reused, err := r.SubmitBatch(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("first submission reported reused")
	}
	if err := b1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	b2, reused, err := r.SubmitBatch(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if !reused || b2 != b1 {
		t.Errorf("resubmission: reused=%v same=%v, want true/true", reused, b2 == b1)
	}
	if got, ok := r.Batch(b1.ID); !ok || got != b1 {
		t.Errorf("Batch(%q) = %v,%v; want the submitted batch", b1.ID, got, ok)
	}

	// Overlapping sweep: the shared cells coalesce onto done jobs.
	grown := fastSweep()
	grown.Seeds = []uint64{1, 2, 3}
	b3, reused, err := r.SubmitBatch(grown)
	if err != nil {
		t.Fatal(err)
	}
	if reused || b3.ID == b1.ID {
		t.Errorf("grown sweep: reused=%v id=%q, want a new batch", reused, b3.ID)
	}
	if err := b3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := b3.Status()
	if st.Done != 6 || !st.Completed {
		t.Errorf("grown batch status = %+v, want 6 done", st)
	}
}

// TestBatchStatusAggregates: a completed batch reports per-config
// aggregates over its seeds and a full per-job listing.
func TestBatchStatusAggregates(t *testing.T) {
	r := New(Options{Workers: 4})
	defer r.Close()
	defer leakcheck.Check(t)

	b, _, err := r.SubmitBatch(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := b.Status()
	if st.Total != 4 || st.Done != 4 || st.Failed != 0 || !st.Completed {
		t.Fatalf("status = %+v, want 4/4 done", st)
	}
	if len(st.Jobs) != 4 {
		t.Fatalf("listed %d jobs, want 4", len(st.Jobs))
	}
	for _, row := range st.Jobs {
		if row.State != StateDone || row.ID == "" || row.Error != "" {
			t.Errorf("job row = %+v, want done with id and no error", row)
		}
	}
	if len(st.Aggregate) != 2 {
		t.Fatalf("aggregates for %d configs, want 2", len(st.Aggregate))
	}
	for _, a := range st.Aggregate {
		if a.Jobs != 2 {
			t.Errorf("%s aggregate over %d jobs, want 2", a.Config, a.Jobs)
		}
		if a.MeanCPI <= 0 || a.MeanUS <= 0 || a.P99US < a.MeanUS/2 {
			t.Errorf("%s aggregate implausible: %+v", a.Config, a)
		}
	}
}

// TestBatchPartialFailure: cells already satisfied by prior traffic
// succeed while cells that must simulate under a certain fault fail;
// the batch completes, reports both, and carries each failure's
// error.  Runs under DLSIM_FAULTS ambient injection too: the armed()
// override below replaces the ambient config for its duration.
func TestBatchPartialFailure(t *testing.T) {
	r := New(Options{Workers: 2, Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}})
	defer r.Close()
	defer leakcheck.Check(t)

	// Satisfy the base cells first, without injected faults.
	warm := fastSweep()
	warm.Configs = []ConfigKind{Base}
	wb, _, err := r.SubmitBatch(warm)
	if err != nil {
		t.Fatal(err)
	}
	if err := wb.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Every execution now fails deterministically; the enhanced cells
	// must run and therefore fail (retries included), while the base
	// cells coalesce onto the completed jobs untouched.
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Error, Prob: 1})
	b, _, err := r.SubmitBatch(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := b.Status()
	if !st.Completed || st.Done != 2 || st.Failed != 2 {
		t.Fatalf("status = %+v, want completed with 2 done + 2 failed", st)
	}
	for _, row := range st.Jobs {
		switch row.Spec.Config {
		case Base:
			if row.State != StateDone || row.Error != "" {
				t.Errorf("base cell %+v, want done", row)
			}
		case Enhanced:
			if row.State != StateFailed || row.Error == "" {
				t.Errorf("enhanced cell %+v, want failed with error", row)
			}
		}
	}
	// Failed cells keep the batch's aggregates to the successful
	// config only.
	if len(st.Aggregate) != 1 || st.Aggregate[0].Config != Base {
		t.Errorf("aggregate = %+v, want base only", st.Aggregate)
	}
}

// TestBatchRetention: the batch index is LRU-bounded; evicted batches
// answer not-found while their jobs stay individually addressable.
func TestBatchRetention(t *testing.T) {
	r := New(Options{Workers: 2, MaxBatches: 2})
	defer r.Close()

	ids := make([]string, 3)
	for i := range ids {
		sweep := fastSweep()
		sweep.Seeds = []uint64{uint64(100 + i)}
		b, _, err := r.SubmitBatch(sweep)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		ids[i] = b.ID
	}
	if _, ok := r.Batch(ids[0]); ok {
		t.Error("oldest batch survived past MaxBatches")
	}
	for _, id := range ids[1:] {
		if _, ok := r.Batch(id); !ok {
			t.Errorf("batch %q evicted within the bound", id)
		}
	}
}
