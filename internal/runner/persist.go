package runner

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/timeline"
)

// Disk forms of completed work, stored as JSON payloads in the
// content-addressed store (internal/store) under the same IDs the
// HTTP API serves.  The envelope carries a version and kind so a
// record can be rejected rather than misread if the format ever
// changes; integers round-trip exactly through encoding/json (uint64
// decodes via strconv, float64 marshals shortest-round-trip), which
// is what makes a restored result's counters bit-identical to the
// live run's.
const (
	persistVersion = 1
	kindJob        = "job"
	kindBatch      = "batch"
	kindTimeline   = "timeline"
	kindSampled    = "sampled"
)

// timelineStoreID derives the store ID a job's timeline record lives
// under.  The "t" prefix keeps it disjoint from job IDs (16 hex
// chars) and batch IDs ("b" prefix), so a timeline is a separate
// record beside its result: a torn timeline tail lost to crash
// recovery never takes the result with it, and vice versa.
func timelineStoreID(jobID string) string { return "t" + jobID }

// persistedResult is the durable subset of a Result: everything the
// API and batch aggregation read.  The workload bundle and the
// trampoline trace recorder are reconstruction artifacts of the live
// run and are not persisted; their API-visible summaries
// (distinct trampolines, total library calls) are.
type persistedResult struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`

	Spec JobSpec `json:"spec"`
	Key  string  `json:"key"`
	ID   string  `json:"id"`

	Counters cpu.Counters `json:"counters"`
	PKI      core.PKI     `json:"pki"`

	// Classes holds each request class's raw latency observations in
	// microseconds (sorted; order is irrelevant to the statistics).
	Classes map[string][]float64 `json:"classes"`

	DistinctTrampolines int    `json:"distinct_trampolines"`
	LibCalls            uint64 `json:"lib_calls"`

	SetupWallNS   int64 `json:"setup_wall_ns"`
	MeasureWallNS int64 `json:"measure_wall_ns"`
}

// encodeResult serialises a completed Result for the store.
func encodeResult(res *Result) ([]byte, error) {
	p := persistedResult{
		V:                   persistVersion,
		Kind:                kindJob,
		Spec:                res.Spec,
		Key:                 res.Key,
		ID:                  res.ID,
		Counters:            res.Counters,
		PKI:                 res.PKI,
		Classes:             make(map[string][]float64, len(res.Samples)),
		DistinctTrampolines: res.DistinctTrampolines(),
		LibCalls:            res.LibCalls(),
		SetupWallNS:         int64(res.SetupWall),
		MeasureWallNS:       int64(res.MeasureWall),
	}
	for class, s := range res.Samples {
		p.Classes[class] = append([]float64(nil), s.Values()...)
	}
	return json.Marshal(p)
}

// decodeResult rebuilds a Result from its disk form.  The result is
// marked Restored: its Workload and Trace are nil, and the trampoline
// summary comes from the persisted fields.
func decodeResult(b []byte) (*Result, error) {
	var p persistedResult
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("runner: corrupt stored result: %w", err)
	}
	if p.V != persistVersion || p.Kind != kindJob {
		return nil, fmt.Errorf("runner: stored record is not a v%d job result (v=%d kind=%q)", persistVersion, p.V, p.Kind)
	}
	res := &Result{
		Spec:        p.Spec,
		Key:         p.Key,
		ID:          p.ID,
		Counters:    p.Counters,
		PKI:         p.PKI,
		Samples:     make(map[string]*stats.Sample, len(p.Classes)),
		SetupWall:   time.Duration(p.SetupWallNS),
		MeasureWall: time.Duration(p.MeasureWallNS),
		Wall:        time.Duration(p.SetupWallNS + p.MeasureWallNS),
		Restored:    true,
		distinct:    p.DistinctTrampolines,
		libCalls:    p.LibCalls,
	}
	for class, xs := range p.Classes {
		s := &stats.Sample{}
		s.AddAll(xs)
		res.Samples[class] = s
	}
	res.freeze()
	return res, nil
}

// persistedTimeline is a job timeline's durable form.  Points are
// uint64 deltas, which round-trip exactly through encoding/json — the
// same discipline as counters, so a restored series is byte-identical
// to the live run's.
type persistedTimeline struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`

	ID     string           `json:"id"` // the owning job's ID, without the "t" prefix
	Series *timeline.Series `json:"series"`
}

// encodeTimeline serialises a job's series for the store.
func encodeTimeline(jobID string, s *timeline.Series) ([]byte, error) {
	return json.Marshal(persistedTimeline{
		V:      persistVersion,
		Kind:   kindTimeline,
		ID:     jobID,
		Series: s,
	})
}

// decodeTimeline rebuilds a series from its disk form.
func decodeTimeline(b []byte) (*timeline.Series, error) {
	var p persistedTimeline
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("runner: corrupt stored timeline: %w", err)
	}
	if p.V != persistVersion || p.Kind != kindTimeline {
		return nil, fmt.Errorf("runner: stored record is not a v%d timeline (v=%d kind=%q)", persistVersion, p.V, p.Kind)
	}
	if p.Series == nil || len(p.Series.Points) == 0 {
		return nil, fmt.Errorf("runner: stored timeline %s has no points", p.ID)
	}
	return p.Series, nil
}

// sampledStoreID derives the store ID a sampled job's interval
// estimates live under.  Like timelines, the "s" prefix keeps the
// record disjoint from job IDs and beside (not inside) the result: a
// torn sampled tail lost to crash recovery never takes the result with
// it, and vice versa.
func sampledStoreID(jobID string) string { return "s" + jobID }

// persistedSampled is a sampled job's durable estimate record.
type persistedSampled struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`

	ID      string         `json:"id"` // the owning job's ID, without the "s" prefix
	Sampled *SampledResult `json:"sampled"`
}

// encodeSampled serialises a job's interval estimates for the store.
func encodeSampled(jobID string, s *SampledResult) ([]byte, error) {
	return json.Marshal(persistedSampled{
		V:       persistVersion,
		Kind:    kindSampled,
		ID:      jobID,
		Sampled: s,
	})
}

// decodeSampled rebuilds the estimates from their disk form.
func decodeSampled(b []byte) (*SampledResult, error) {
	var p persistedSampled
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("runner: corrupt stored sampled record: %w", err)
	}
	if p.V != persistVersion || p.Kind != kindSampled {
		return nil, fmt.Errorf("runner: stored record is not a v%d sampled record (v=%d kind=%q)", persistVersion, p.V, p.Kind)
	}
	if p.Sampled == nil || p.Sampled.Windows == 0 {
		return nil, fmt.Errorf("runner: stored sampled record %s is empty", p.ID)
	}
	return p.Sampled, nil
}

// persistedBatch is a completed batch's durable form: the expanded
// specs (for provenance) and the final status snapshot, aggregates
// included.  Per-job results live as their own store records; the
// batch record is what lets GET /v1/batches/{id} answer across
// restarts without re-walking jobs.
type persistedBatch struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`

	ID     string      `json:"id"`
	Specs  []JobSpec   `json:"specs"`
	Status BatchStatus `json:"status"`
}

// encodeBatch serialises a batch's final snapshot for the store.
func encodeBatch(id string, specs []JobSpec, st BatchStatus) ([]byte, error) {
	return json.Marshal(persistedBatch{
		V:      persistVersion,
		Kind:   kindBatch,
		ID:     id,
		Specs:  specs,
		Status: st,
	})
}

// decodeBatch rebuilds a batch snapshot from its disk form.
func decodeBatch(b []byte) (*persistedBatch, error) {
	var p persistedBatch
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("runner: corrupt stored batch: %w", err)
	}
	if p.V != persistVersion || p.Kind != kindBatch {
		return nil, fmt.Errorf("runner: stored record is not a v%d batch (v=%d kind=%q)", persistVersion, p.V, p.Kind)
	}
	return &p, nil
}
