package runner

import (
	"context"
	"testing"
)

// benchChurnRow runs one exact Enhanced job and reports the ABTB
// figures scripts/churn_bench.sh turns into BENCH_churn.json: the
// trampoline hit rate (calls skipped via an ABTB redirect) and the
// flush rate per 1k retired instructions.  Counters are bit-exact, so
// both metrics are host-invariant.
func benchChurnRow(b *testing.B, workload string) {
	ctx := context.Background()
	spec := JobSpec{Workload: workload, Config: Enhanced, Seed: 3, Warm: 30, Measure: 160}
	var hitRate, flushPer1k float64
	for i := 0; i < b.N; i++ {
		r := New(Options{Workers: 2})
		res, err := r.Run(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
		c := res.Counters
		if c.TrampCalls == 0 || c.Instructions == 0 {
			b.Fatalf("%s: empty counters", workload)
		}
		hitRate = float64(c.TrampSkips) / float64(c.TrampCalls)
		flushPer1k = 1000 * float64(c.ABTBFlushes) / float64(c.Instructions)
	}
	b.ReportMetric(hitRate, "abtb_hit_rate")
	b.ReportMetric(flushPer1k, "flushes_per_1k")
}

func BenchmarkChurnPluginServer(b *testing.B) { benchChurnRow(b, "plugin-server") }
func BenchmarkChurnJIT(b *testing.B)          { benchChurnRow(b, "jit") }

// BenchmarkChurnBaseline is the no-churn reference (same request
// budget, stable library set) the churn rows are compared against.
func BenchmarkChurnBaseline(b *testing.B) { benchChurnRow(b, "memcached") }
