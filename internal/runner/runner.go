package runner

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/pool"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// Options configures a Runner.
type Options struct {
	// Workers is the maximum number of jobs simulating concurrently.
	// Zero means runtime.NumCPU().
	Workers int

	// JobTimeout bounds each job attempt's simulation time.  Zero
	// means no per-job timeout.
	JobTimeout time.Duration

	// MaxQueue bounds the number of jobs waiting for a worker
	// (admission control): once reached, Submit sheds new work with
	// ErrQueueFull instead of queueing unboundedly.  Cache hits and
	// in-flight coalescing are still served when the queue is full.
	// Zero or negative means unbounded.
	MaxQueue int

	// MaxRetained bounds the number of *completed* jobs (done or
	// failed) retained in the result cache.  Once exceeded, the least
	// recently used completed job is dropped from both lookup maps, so
	// a long-lived runner's memory stays proportional to the bound
	// rather than to its submission history.  Queued and running jobs
	// are pinned: they are never evicted, and do not count against the
	// bound until they finish.  A cache hit refreshes a job's recency.
	// Zero means DefaultMaxRetained; negative means unbounded
	// retention (the pre-bound behaviour).
	MaxRetained int

	// Retry governs re-execution of failed attempts.  The zero value
	// retries transient failures (see IsTransient) up to 3 attempts
	// with capped exponential backoff + jitter; set MaxAttempts to 1
	// to disable.
	Retry RetryPolicy

	// RetrySeed seeds the backoff-jitter stream; zero means 1.  The
	// same seed gives the same jitter schedule, keeping test runs
	// reproducible.
	RetrySeed uint64

	// Metrics is the telemetry registry the runner registers its
	// instruments in (see metrics.go for the name catalogue).  Nil
	// means a private registry — reachable via Runner.Metrics() — so
	// every Runner is always instrumented and Stats() always has a
	// single source of truth.
	Metrics *telemetry.Registry

	// TraceCapacity sizes the ring buffer of retained per-job traces.
	// Zero means telemetry.DefaultTraceCapacity; negative disables
	// tracing entirely (spans become nil no-ops).
	TraceCapacity int

	// Tracer, when set, is used instead of building a private ring
	// from TraceCapacity — pass one to share a trace ring with other
	// components (dlsimd shares it with the store's open/replay
	// trace).
	Tracer *telemetry.Tracer

	// Store is the disk-backed second tier below the in-memory result
	// cache (see internal/store).  When set, every completed result
	// is written through to it, LRU eviction demotes instead of
	// deletes (the entry stays servable from disk), and Submit /
	// Job / Batch lookups fall back to it before recomputing — which
	// is what lets a restarted process warm-start from a prior run's
	// results.  Nil disables persistence.  The runner registers
	// itself as the store's drop observer so entries dropped by store
	// compaction keep answering 410 Gone.
	Store *store.Store

	// Pool is the shared artifact pool jobs draw generated workloads
	// and copy-on-write-forked images from.  Nil means a private pool
	// registered on the runner's metrics registry; pass one explicitly
	// to share artifacts across runners.  Pooling never changes
	// results — a forked image is bit-identical to a fresh link (see
	// internal/pool) — it only skips redundant setup work.
	Pool *pool.Pool

	// DisablePool turns artifact pooling off: every job generates and
	// links from scratch, the pre-pool behaviour.  Used by the A/B
	// throughput benchmark; Pool is ignored when set.
	DisablePool bool

	// DisableCompiledTraces runs exact jobs on the interpreted
	// per-instruction kernel loop instead of the compiled-trace fast
	// path.  Results are bit-identical either way (the property
	// experiments.TestGoldenCounters pins); the switch exists for A/B
	// throughput benchmarks and as an escape hatch.  Sampled jobs
	// ignore it — fast-forwarding requires the compiled form.
	DisableCompiledTraces bool

	// MaxBatches bounds how many batch handles are retained for
	// lookup by ID (least recently used dropped beyond it).  Zero
	// means DefaultMaxBatches; negative means unbounded.
	MaxBatches int
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job is a handle on one submitted (possibly shared) simulation.
type Job struct {
	// ID is the short content-derived identifier; Spec the normalized
	// spec; Key the canonical content-address.
	ID   string
	Key  string
	Spec JobSpec

	done chan struct{}

	// span is the job's root trace span ("job"); nil when tracing is
	// disabled.  Set once at Submit, before drive starts.
	span *telemetry.Span

	mu       sync.Mutex
	state    JobState
	result   *Result
	err      error
	attempts int
	started  time.Time
	finished time.Time
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job completes or fails.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's result once it completed successfully.
// The boolean is false while the job is queued or running, and for
// failed jobs — check Err for those.
func (j *Job) Result() (*Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// Err returns the job's failure, nil while the job is still in
// flight or once it succeeded.  Failures wrap the sentinels
// (ErrRunnerClosed, ErrJobTimeout) and recovered panics surface as
// *PanicError with the captured stack.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Attempts returns how many execution attempts the job has started
// (1 for a job that never retried).
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Wait blocks until the job completes, the context is cancelled, or
// the runner shuts down, and returns a copy of the job's Result with
// CacheHit reflecting whether this submission reused prior work.
func (j *Job) Wait(ctx context.Context) (Result, error) {
	select {
	case <-ctx.Done():
		return Result{}, ctx.Err()
	case <-j.done:
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return Result{}, j.err
	}
	return *j.result, nil
}

func (j *Job) complete(res *Result, err error) {
	j.mu.Lock()
	if err != nil {
		j.state, j.err = StateFailed, err
	} else {
		j.state, j.result = StateDone, res
	}
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Runner executes simulation jobs on a bounded worker pool with a
// content-addressed result cache.  Each distinct job (by JobSpec.Key)
// simulates exactly once, even under concurrent submission: the first
// submitter creates the job, later submitters attach to it
// (singleflight) or read its cached result.  Runner is safe for
// concurrent use.
type Runner struct {
	opts Options

	// rootCtx cancels every in-flight job on Close.
	rootCtx context.Context
	cancel  context.CancelFunc

	// sem bounds concurrent simulation; waiting submissions count as
	// queued.
	sem chan struct{}

	// m holds every operational counter on a telemetry registry — the
	// single source of truth behind Stats(), /v1/stats and /metrics.
	// tracer retains recent per-job span trees (nil = disabled).
	m      *metrics
	tracer *telemetry.Tracer

	// pool serves generated workloads and COW-forked images to
	// execute; nil when Options.DisablePool is set.
	pool *pool.Pool

	// store is the disk-backed result tier; nil disables persistence.
	store *store.Store

	mu       sync.Mutex
	byKey    map[string]*Job
	byID     map[string]*Job
	closed   bool
	retryRNG *rand.Rand // jitter stream, guarded by mu

	// Completed-job retention (guarded by mu): lru orders completed
	// jobs from least (front) to most (back) recently used; lruElem
	// maps job ID to its list element.  In-flight jobs appear in
	// neither, which is what pins them.  evicted remembers recently
	// evicted job IDs (a bounded FIFO ring) so the HTTP layer can
	// answer "gone" rather than "never existed".
	maxRetained int
	lru         *list.List
	lruElem     map[string]*list.Element
	evicted     map[string]struct{}
	evictRing   []string
	evictHead   int

	// Batch retention (guarded by mu): batches indexes retained batch
	// handles by content-derived ID, LRU-bounded by maxBatches.
	maxBatches int
	batches    map[string]*Batch
	batchLRU   *list.List
	batchElem  map[string]*list.Element
}

// DefaultMaxRetained is the completed-job retention bound applied when
// Options.MaxRetained is zero.
const DefaultMaxRetained = 4096

// evictedMemory returns the capacity of the evicted-ID ring: enough to
// answer "gone" for several cache generations without itself becoming
// an unbounded map.
func evictedMemory(maxRetained int) int {
	n := 4 * maxRetained
	if n < 256 {
		n = 256
	}
	if n > 16384 {
		n = 16384
	}
	return n
}

// New returns a Runner with the given options.
func New(opts Options) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	opts.Retry = opts.Retry.normalized()
	seed := opts.RetrySeed
	if seed == 0 {
		seed = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	tracer := opts.Tracer
	if tracer == nil && opts.TraceCapacity >= 0 {
		tracer = telemetry.NewTracer(opts.TraceCapacity)
	}
	maxRetained := opts.MaxRetained
	if maxRetained == 0 {
		maxRetained = DefaultMaxRetained
	}
	maxBatches := opts.MaxBatches
	if maxBatches == 0 {
		maxBatches = DefaultMaxBatches
	}
	r := &Runner{
		opts:        opts,
		rootCtx:     ctx,
		cancel:      cancel,
		sem:         make(chan struct{}, opts.Workers),
		m:           newMetrics(opts.Metrics),
		tracer:      tracer,
		byKey:       make(map[string]*Job),
		byID:        make(map[string]*Job),
		retryRNG:    rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb)),
		maxRetained: maxRetained,
		lru:         list.New(),
		lruElem:     make(map[string]*list.Element),
		evicted:     make(map[string]struct{}),
		maxBatches:  maxBatches,
		batches:     make(map[string]*Batch),
		batchLRU:    list.New(),
		batchElem:   make(map[string]*list.Element),
	}
	r.m.workers.Set(int64(opts.Workers))
	if !opts.DisablePool {
		if opts.Pool != nil {
			r.pool = opts.Pool
		} else {
			r.pool = pool.New(pool.Options{Metrics: r.m.reg})
		}
	}
	if opts.Store != nil {
		r.store = opts.Store
		// Entries dropped by store compaction are truly gone (unless
		// still held in memory): remember them so lookups answer 410
		// Gone rather than 404.  The store invokes this outside its
		// own lock, so taking r.mu here cannot deadlock against
		// runner→store calls.
		r.store.OnDrop(func(id string) {
			r.mu.Lock()
			if _, inMemory := r.byID[id]; !inMemory {
				r.noteEvicted(id)
			}
			r.mu.Unlock()
		})
	}
	return r
}

// ArtifactPool returns the pool jobs draw workloads and images from —
// the one passed in Options.Pool or the private one created by New —
// or nil when pooling is disabled.
func (r *Runner) ArtifactPool() *pool.Pool { return r.pool }

// Store returns the disk-backed result tier, nil when persistence is
// disabled.
func (r *Runner) Store() *store.Store { return r.store }

// MaxRetained returns the completed-job retention bound (negative
// means unbounded).
func (r *Runner) MaxRetained() int { return r.maxRetained }

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.opts.Workers }

// Metrics returns the telemetry registry holding the runner's
// instruments (the one passed in Options.Metrics, or the private one
// created for this Runner).
func (r *Runner) Metrics() *telemetry.Registry { return r.m.reg }

// Tracer returns the per-job trace ring, nil when tracing is disabled
// (Options.TraceCapacity < 0).
func (r *Runner) Tracer() *telemetry.Tracer { return r.tracer }

// Close cancels every in-flight job and rejects further submissions.
func (r *Runner) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cancel()
}

// Drain stops admission and waits for every queued and running job
// (including pending retries) to finish, up to ctx's deadline.  It
// returns the number of jobs still unfinished — 0 on a clean drain.
// Drain does not cancel the abandoned jobs; call Close afterwards to
// reclaim their workers.
func (r *Runner) Drain(ctx context.Context) int {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	for {
		n := int(r.m.queued.Value() + r.m.running.Value())
		if n == 0 {
			return 0
		}
		select {
		case <-ctx.Done():
			return n
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Submit registers the spec for execution and returns its job handle
// immediately.  If an identical job (same canonical key) is already
// cached or in flight, the existing handle is returned and reused is
// true; no second simulation starts.
func (r *Runner) Submit(spec JobSpec) (job *Job, reused bool, err error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	key, _ := norm.Key()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, false, ErrRunnerClosed
	}
	if j, ok := r.byKey[key]; ok {
		st := j.State()
		if st == StateDone || st == StateFailed {
			r.m.cacheHits.Inc()
			if e, ok := r.lruElem[j.ID]; ok {
				r.lru.MoveToBack(e) // refresh recency
			}
		} else {
			r.m.coalesced.Inc()
		}
		r.mu.Unlock()
		return j, true, nil
	}
	// Second tier: a result persisted by this or an earlier process
	// serves the submission without recomputing (warm start).  A
	// store hit is a cache hit — it is admitted even when the queue
	// is full, like any other cached answer.
	if j, ok := r.restoreJobLocked(IDFromKey(key), key); ok {
		r.m.cacheHits.Inc()
		r.mu.Unlock()
		return j, true, nil
	}
	if r.opts.MaxQueue > 0 && int(r.m.queued.Value()) >= r.opts.MaxQueue {
		r.m.shed.Inc()
		r.mu.Unlock()
		return nil, false, fmt.Errorf("%w (%d jobs queued)", ErrQueueFull, r.opts.MaxQueue)
	}
	j := &Job{
		ID:    IDFromKey(key),
		Key:   key,
		Spec:  norm,
		done:  make(chan struct{}),
		state: StateQueued,
	}
	if tr := r.tracer.Start(j.ID); tr != nil {
		j.span = tr.Root()
		j.span.SetAttr("workload", norm.Workload)
		j.span.SetAttr("config", string(norm.Config))
		j.span.SetAttr("seed", strconv.FormatUint(norm.Seed, 10))
		j.span.SetAttr("measure", strconv.Itoa(norm.Measure))
	}
	r.byKey[key] = j
	r.byID[j.ID] = j
	// IDs are content-derived, so a resubmitted spec reuses the ID of
	// a job evicted earlier; it is no longer "gone".
	delete(r.evicted, j.ID)
	r.m.cacheMisses.Inc()
	r.m.queued.Inc()
	r.mu.Unlock()

	go r.drive(j)
	return j, false, nil
}

// Run submits the spec and waits for its result.
func (r *Runner) Run(ctx context.Context, spec JobSpec) (Result, error) {
	j, reused, err := r.Submit(spec)
	if err != nil {
		return Result{}, err
	}
	res, err := j.Wait(ctx)
	if err != nil {
		return Result{}, err
	}
	res.CacheHit = reused
	return res, nil
}

// RunAll submits every spec up front (so they fan out across the
// pool) and waits for all of them, returning results in spec order.
// The first error aborts the wait.
func (r *Runner) RunAll(ctx context.Context, specs []JobSpec) ([]Result, error) {
	jobs := make([]*Job, len(specs))
	reused := make([]bool, len(specs))
	for i, spec := range specs {
		j, ru, err := r.Submit(spec)
		if err != nil {
			return nil, err
		}
		jobs[i], reused[i] = j, ru
	}
	out := make([]Result, len(jobs))
	for i, j := range jobs {
		res, err := j.Wait(ctx)
		if err != nil {
			return nil, fmt.Errorf("runner: job %s: %w", j.Key, err)
		}
		res.CacheHit = reused[i]
		out[i] = res
	}
	return out, nil
}

// Job returns the job with the given short ID, if known — falling
// back to the disk store, so results demoted by the in-memory LRU (or
// computed by an earlier process against the same store) remain
// addressable without recomputation.
func (r *Runner) Job(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.byID[id]; ok {
		return j, ok
	}
	return r.restoreJobLocked(id, "")
}

// Evicted reports whether a job with this ID was recently evicted from
// the result cache.  The memory behind it is a bounded ring (see
// evictedMemory), so very old evictions eventually read false again —
// callers should treat true as "gone, resubmit to recompute" and false
// as "unknown".
func (r *Runner) Evicted(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.evicted[id]
	return ok
}

// retain enters a just-completed job into the retention order and
// evicts the least recently used completed jobs beyond the bound.
// In-flight jobs are never in the order, so they cannot be evicted.
func (r *Runner) retain(j *Job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[j.ID]; !ok {
		// The job was dropped from the maps while it ran (cannot
		// happen today: only completed jobs are evicted); do not
		// resurrect a stale entry in the retention order.
		return
	}
	r.retainLocked(j)
}

// retainLocked appends j to the retention order and applies the
// bound.  Caller holds r.mu and has already ensured j is in the
// lookup maps.
func (r *Runner) retainLocked(j *Job) {
	r.lruElem[j.ID] = r.lru.PushBack(j)
	if r.maxRetained > 0 {
		for r.lru.Len() > r.maxRetained {
			r.evictOldest()
		}
	}
	r.m.retained.Set(int64(r.lru.Len()))
}

// evictOldest drops the least recently used completed job from the
// lookup maps and the retention order.  With a store attached a
// successful job's eviction is a demotion — the result stays servable
// from disk and the ID is not remembered as gone; only entries absent
// from the store (failed jobs, or write-through failures) enter the
// evicted ring and answer 410.  Caller holds r.mu.
func (r *Runner) evictOldest() {
	e := r.lru.Front()
	if e == nil {
		return
	}
	j := r.lru.Remove(e).(*Job)
	delete(r.lruElem, j.ID)
	delete(r.byKey, j.Key)
	delete(r.byID, j.ID)
	if r.store == nil || !r.store.Has(j.ID) {
		r.noteEvicted(j.ID)
	}
	r.m.evictions.Inc()
}

// noteEvicted records an evicted job ID in the bounded FIFO ring.
// Caller holds r.mu.
func (r *Runner) noteEvicted(id string) {
	if _, dup := r.evicted[id]; dup {
		return
	}
	capacity := evictedMemory(r.maxRetained)
	if len(r.evictRing) < capacity {
		r.evictRing = append(r.evictRing, id)
	} else {
		delete(r.evicted, r.evictRing[r.evictHead])
		r.evictRing[r.evictHead] = id
		r.evictHead = (r.evictHead + 1) % capacity
	}
	r.evicted[id] = struct{}{}
}

// drive acquires a worker slot per attempt, executes the job with
// panic isolation, and retries transient failures per the retry
// policy, recording metrics and trace phases throughout.
func (r *Runner) drive(j *Job) {
	policy := r.opts.Retry
	ready := time.Now() // when the job (re-)entered the queue
	for attempt := 1; ; attempt++ {
		qs := j.span.Child("queued")
		select {
		case r.sem <- struct{}{}:
		case <-r.rootCtx.Done():
			qs.End()
			r.finish(j, nil, fmt.Errorf("shut down while queued: %w", ErrRunnerClosed))
			return
		}
		qs.End()
		r.m.queueWaitMS.Observe(float64(time.Since(ready)) / 1e6)
		// Inc before Dec so queued+running never transiently reads 0
		// for an in-flight job (Drain and /metrics read the gauges
		// without r.mu).
		r.m.running.Inc()
		r.m.queued.Dec()
		j.mu.Lock()
		j.state = StateRunning
		j.attempts = attempt
		if attempt == 1 {
			j.started = time.Now()
		}
		j.mu.Unlock()

		as := j.span.Child("attempt")
		as.SetAttr("n", strconv.Itoa(attempt))
		execStart := time.Now()
		res, err := r.attempt(j, as)
		r.m.execMS.Observe(float64(time.Since(execStart)) / 1e6)
		if err != nil {
			as.SetAttr("error", err.Error())
		}
		as.End()
		<-r.sem // release the worker before any backoff sleep
		if err == nil {
			r.finish(j, res, nil)
			return
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			r.m.panics.Inc()
		}
		if attempt >= policy.MaxAttempts || !policy.Classify(err) || r.rootCtx.Err() != nil {
			r.finish(j, nil, err)
			return
		}

		// Requeue the job and back off before the next attempt.
		r.m.queued.Inc()
		r.m.running.Dec()
		r.m.retries.Inc()
		r.mu.Lock()
		delay := policy.backoff(attempt, r.retryRNG)
		r.mu.Unlock()
		j.mu.Lock()
		j.state = StateQueued
		j.mu.Unlock()
		bs := j.span.Child("backoff")
		r.m.backoffMS.Observe(float64(delay) / 1e6)
		select {
		case <-time.After(delay):
			bs.End()
		case <-r.rootCtx.Done():
			bs.End()
			r.finish(j, nil, fmt.Errorf("shut down during retry backoff: %w", ErrRunnerClosed))
			return
		}
		ready = time.Now()
	}
}

// attempt runs one execution attempt on the calling worker goroutine,
// converting panics into *PanicError failures (with the stack
// captured at recovery) and mapping context errors onto the
// ErrJobTimeout / ErrRunnerClosed sentinels.  sp is the attempt's
// trace span (nil when tracing is disabled).
func (r *Runner) attempt(j *Job, sp *telemetry.Span) (res *Result, err error) {
	ctx := r.rootCtx
	if r.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.JobTimeout)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 64<<10)
			n := runtime.Stack(buf, false)
			res, err = nil, &PanicError{Value: v, Stack: string(buf[:n])}
		}
	}()
	if ferr := faultinject.FireCtx(ctx, "runner.execute"); ferr != nil {
		err = fmt.Errorf("runner: %s/%s: %w", j.Spec.Workload, j.Spec.Config, ferr)
	} else {
		res, err = r.execute(ctx, j.Spec, sp)
	}
	if err == nil {
		if ferr := faultinject.FireCtx(ctx, "runner.result"); ferr != nil {
			res, err = nil, fmt.Errorf("runner: %s/%s: %w", j.Spec.Workload, j.Spec.Config, ferr)
		}
	}
	if err != nil {
		switch {
		case r.rootCtx.Err() != nil:
			err = fmt.Errorf("%w: %w", ErrRunnerClosed, err)
		case errors.Is(err, context.DeadlineExceeded):
			err = fmt.Errorf("%w (limit %v): %w", ErrJobTimeout, r.opts.JobTimeout, err)
		}
	}
	return res, err
}

// finish completes the job and folds its outcome into the metrics.
func (r *Runner) finish(j *Job, res *Result, err error) {
	// Write the result through to the disk tier before the job's
	// gauges drop: Drain observing an idle runner then implies every
	// completed result has been handed to the store, so the shutdown
	// path's store flush loses nothing.  Put failures are counted by
	// the store and leave the result memory-only.
	if err == nil && r.store != nil && !res.Restored {
		if b, perr := encodeResult(res); perr == nil {
			_ = r.store.Put(j.ID, b)
		}
		// Timelines and sampled estimates are separate records beside
		// the result: losing one to a torn tail never corrupts the
		// others.
		if res.Timeline != nil {
			if b, perr := encodeTimeline(j.ID, res.Timeline); perr == nil {
				_ = r.store.Put(timelineStoreID(j.ID), b)
			}
		}
		if res.Sampled != nil {
			if b, perr := encodeSampled(j.ID, res.Sampled); perr == nil {
				_ = r.store.Put(sampledStoreID(j.ID), b)
			}
		}
	}
	if j.State() == StateRunning {
		r.m.running.Dec()
	} else {
		r.m.queued.Dec()
	}
	if err != nil {
		r.m.failed.Inc()
		j.span.SetAttr("error", err.Error())
	} else {
		r.m.completed.Inc()
		r.m.jobWallMS.Observe(float64(res.Wall) / float64(time.Millisecond))
		r.m.setupWallMS.Observe(float64(res.SetupWall) / float64(time.Millisecond))
		r.m.measureWallMS.Observe(float64(res.MeasureWall) / float64(time.Millisecond))
		r.m.recordResult(res)
		traceResultAttrs(j.span, res)
	}
	j.span.End()
	j.complete(res, err)
	// Only now that the job reads as completed does it become
	// evictable; until here it was pinned by being absent from the
	// retention order.
	r.retain(j)
}

// execute runs one simulation: generate the workload, link and build
// the system, warm it up, and measure.  This is exactly the sequence
// experiments.Suite historically ran inline (including the driver
// seed offset), so results are bit-identical to the sequential path:
// the trace spans around each phase only observe wall clock and touch
// no simulation state, and the artifact pool — when enabled — serves
// the generate and link phases from cache, handing the job a bundle
// and a copy-on-write fork that are bit-identical to fresh ones (see
// internal/pool).  sp may be nil (tracing disabled).
func (r *Runner) execute(ctx context.Context, spec JobSpec, sp *telemetry.Span) (*Result, error) {
	ws, ok := WorkloadByName(spec.Workload)
	if !ok {
		return nil, fmt.Errorf("runner: unknown workload %q", spec.Workload)
	}
	cfg, err := spec.Config.Config(spec.Seed)
	if err != nil {
		return nil, err
	}
	setupStart := time.Now()
	ph := sp.Child("generate")
	var w *workload.Workload
	if r.pool != nil {
		var hit bool
		w, hit = r.pool.Workload(spec.Workload, ws.Gen, spec.Seed)
		ph.SetAttr("pool_hit", strconv.FormatBool(hit))
	} else {
		w = ws.Gen(spec.Seed)
	}
	ph.End()
	ph = sp.Child("link")
	var sys *core.System
	if r.pool != nil {
		var hit bool
		sys, hit, err = r.pool.ImageSystem(spec.Workload, spec.Seed, w, cfg)
		ph.SetAttr("pool_hit", strconv.FormatBool(hit))
	} else {
		sys, err = w.NewSystem(cfg)
	}
	ph.End()
	if err != nil {
		return nil, fmt.Errorf("runner: %s/%s: %w", spec.Workload, spec.Config, err)
	}
	sampled := spec.SampleWindows > 0
	if r.pool == nil {
		// The pool path installed the shared compiled trace program;
		// without a pool, compile one for this job.  Exact results are
		// bit-identical on either kernel path.
		if !r.opts.DisableCompiledTraces || sampled {
			if perr := sys.CPU().SetProgram(cpu.Compile(sys.Image(), cfg.Hardware.L1I.LineBytes)); perr != nil {
				return nil, fmt.Errorf("runner: %s/%s: %w", spec.Workload, spec.Config, perr)
			}
		}
	} else if r.opts.DisableCompiledTraces && !sampled {
		sys.CPU().SetProgram(nil)
	}
	d := workload.NewDriver(w, sys, workload.DriverSeed(spec.Seed))
	ph = sp.Child("warmup")
	err = d.WarmupContext(ctx, spec.Warm)
	ph.End()
	if err != nil {
		return nil, fmt.Errorf("runner: %s/%s: %w", spec.Workload, spec.Config, err)
	}
	setupWall := time.Since(setupStart)
	key, _ := spec.Key()
	res := &Result{
		Spec:     spec,
		Key:      key,
		ID:       IDFromKey(key),
		Trace:    sys.LifetimeRecorder(),
		Workload: w,
	}
	measureStart := time.Now()
	if sampled {
		// Sampled simulation: fast-forward / warm / measure per window.
		// Counters cover only the measured excerpts (the sum of the
		// window deltas); the interval estimates live in res.Sampled.
		ph = sp.Child("measure-sampled")
		run, serr := d.RunSampledContext(ctx, spec.Measure, spec.SampleWindows, spec.SampleWarmup)
		ph.End()
		if serr != nil {
			return nil, fmt.Errorf("runner: %s/%s: %w", spec.Workload, spec.Config, serr)
		}
		var sum cpu.Counters
		for _, win := range run.Windows {
			sum = sum.Add(win.Counters)
		}
		res.Counters = sum
		res.PKI = core.PKIOf(sum)
		res.Samples = run.Classes
		res.Sampled = buildSampledResult(run)
	} else {
		// Arm timeline sampling only now: WarmupContext ended with
		// ResetStats, so the series covers exactly the measurement
		// window.  A disabled timeline leaves the kernel's sampler
		// disarmed — the measured zero-overhead path.
		var col *timeline.Collector
		if spec.TimelineInterval > 0 {
			col = timeline.NewCollector(spec.TimelineInterval, timeline.DefaultMaxPoints)
			col.Attach(sys.CPU())
		}
		ph = sp.Child("measure")
		samp, merr := d.RunContext(ctx, spec.Measure)
		ph.End()
		if merr != nil {
			if col != nil {
				col.Close() // disarm the sampler before the fork is discarded
			}
			return nil, fmt.Errorf("runner: %s/%s: %w", spec.Workload, spec.Config, merr)
		}
		res.Counters = sys.Counters()
		res.PKI = sys.PKI()
		res.Samples = samp
		if col != nil {
			res.Timeline = col.Close()
		}
	}
	res.MeasureWall = time.Since(measureStart)
	res.SetupWall = setupWall
	res.Wall = setupWall + res.MeasureWall
	res.freeze()
	return res, nil
}

// Stats is a point-in-time snapshot of the runner's activity.
type Stats struct {
	Workers   int    `json:"workers"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`

	// Retries counts re-executed attempts after transient failures;
	// Panics counts worker panics recovered into job failures; Shed
	// counts submissions rejected by admission control (MaxQueue).
	Retries uint64 `json:"retries"`
	Panics  uint64 `json:"panics"`
	Shed    uint64 `json:"shed"`

	// Retained is the number of completed jobs currently held in the
	// result cache; Evictions counts completed jobs dropped by the
	// MaxRetained LRU bound.
	Retained  int    `json:"retained"`
	Evictions uint64 `json:"evictions"`

	// CacheHits counts submissions answered from a completed cached
	// result; Deduped counts submissions coalesced onto an in-flight
	// identical job; CacheMisses counts submissions that started a
	// new simulation.
	CacheHits   uint64 `json:"cache_hits"`
	Deduped     uint64 `json:"deduped"`
	CacheMisses uint64 `json:"cache_misses"`

	// Job wall-clock latency over completed jobs, milliseconds.
	JobMeanMS float64 `json:"job_mean_ms"`
	JobP50MS  float64 `json:"job_p50_ms"`
	JobP99MS  float64 `json:"job_p99_ms"`
}

// Stats returns a snapshot of pool depth, cache effectiveness and job
// latency percentiles, read from the telemetry registry (the same
// instruments GET /metrics exposes — there is no shadow bookkeeping).
// The latency percentiles are histogram estimates: exact mean
// (sum/count), p50/p99 interpolated within the straddling bucket.
func (r *Runner) Stats() Stats {
	m := r.m
	st := Stats{
		Workers:     int(m.workers.Value()),
		Queued:      int(m.queued.Value()),
		Running:     int(m.running.Value()),
		Completed:   m.completed.Value(),
		Failed:      m.failed.Value(),
		Retries:     m.retries.Value(),
		Panics:      m.panics.Value(),
		Shed:        m.shed.Value(),
		Retained:    int(m.retained.Value()),
		Evictions:   m.evictions.Value(),
		CacheHits:   m.cacheHits.Value(),
		Deduped:     m.coalesced.Value(),
		CacheMisses: m.cacheMisses.Value(),
	}
	if m.jobWallMS.Count() > 0 {
		st.JobMeanMS = m.jobWallMS.Mean()
		st.JobP50MS = m.jobWallMS.Quantile(50)
		st.JobP99MS = m.jobWallMS.Quantile(99)
	}
	return st
}

// PairSpecs returns the Base/Enhanced spec pair for one workload — the
// unit the paper's tables compare.
func PairSpecs(name string, seed uint64, scale float64) [2]JobSpec {
	return [2]JobSpec{
		{Workload: name, Config: Base, Seed: seed, Scale: scale},
		{Workload: name, Config: Enhanced, Seed: seed, Scale: scale},
	}
}

// SuiteSpecs returns every paper workload's Base/Enhanced pair — the
// paper's evaluation matrix at the given seed and scale.  The churn
// workloads are excluded so suite batches keep their historical
// composition (and content-derived IDs); submit them individually.
func SuiteSpecs(seed uint64, scale float64) []JobSpec {
	paper := PaperWorkloads()
	out := make([]JobSpec, 0, 2*len(paper))
	for _, ws := range paper {
		p := PairSpecs(ws.Name, seed, scale)
		out = append(out, p[0], p[1])
	}
	return out
}
