package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/timeline"
)

// SweepSpec names a parameter sweep: one workload crossed with a set
// of system configurations and seeds under shared request budgets —
// the shape of almost all real traffic against the service (the
// paper's own evaluation is four such sweeps).  A sweep is the unit
// the artifact pool is built for: every job in it shares the
// workload bundle per seed, and every config with identical link
// options shares a master image per seed.
type SweepSpec struct {
	Workload string       `json:"workload"`
	Configs  []ConfigKind `json:"configs"`
	Seeds    []uint64     `json:"seeds"`

	// Scale, Warm and Measure apply to every expanded job, with
	// JobSpec's zero-value default semantics.
	Scale   float64 `json:"scale,omitempty"`
	Warm    int     `json:"warm,omitempty"`
	Measure int     `json:"measure,omitempty"`

	// TimelineInterval and TimelineOff apply to every expanded job
	// (see JobSpec); zero values keep the default sampling grid and
	// therefore every pre-timeline batch ID.
	TimelineInterval uint64 `json:"timeline_interval,omitempty"`
	TimelineOff      bool   `json:"timeline_off,omitempty"`

	// SampleWindows and SampleWarmup apply to every expanded job (see
	// JobSpec): a positive window count runs the whole sweep as sampled
	// simulation.  Zero values keep the exact path and every
	// pre-sampling batch ID.
	SampleWindows int `json:"sample_windows,omitempty"`
	SampleWarmup  int `json:"sample_warmup,omitempty"`
}

// MaxBatchJobs bounds one sweep's expansion, so a single request
// cannot enqueue unbounded work past admission control.
const MaxBatchJobs = 1024

// Expand crosses the sweep's axes into normalized job specs in
// (config-major, seed-minor) order, deduplicating jobs that normalise
// to the same canonical key.  Every spec error aborts the expansion:
// a batch is accepted whole or not at all.
func (s SweepSpec) Expand() ([]JobSpec, error) {
	if len(s.Configs) == 0 {
		return nil, fmt.Errorf("runner: sweep has no configs")
	}
	if len(s.Seeds) == 0 {
		return nil, fmt.Errorf("runner: sweep has no seeds")
	}
	if n := len(s.Configs) * len(s.Seeds); n > MaxBatchJobs {
		return nil, fmt.Errorf("runner: sweep expands to %d jobs (max %d)", n, MaxBatchJobs)
	}
	seen := make(map[string]struct{}, len(s.Configs)*len(s.Seeds))
	specs := make([]JobSpec, 0, len(s.Configs)*len(s.Seeds))
	for _, cfg := range s.Configs {
		for _, seed := range s.Seeds {
			spec := JobSpec{
				Workload:         s.Workload,
				Config:           cfg,
				Seed:             seed,
				Scale:            s.Scale,
				Warm:             s.Warm,
				Measure:          s.Measure,
				TimelineInterval: s.TimelineInterval,
				TimelineOff:      s.TimelineOff,
				SampleWindows:    s.SampleWindows,
				SampleWarmup:     s.SampleWarmup,
			}
			norm, err := spec.Normalize()
			if err != nil {
				return nil, err
			}
			key, _ := norm.Key()
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			specs = append(specs, norm)
		}
	}
	return specs, nil
}

// ID returns the sweep's content-derived batch ID — the same ID
// SubmitBatch would register it under — without submitting anything.
// The HTTP layer uses it to route batch submissions across cluster
// replicas by consistent hash before any work is enqueued.  The error
// is the expansion's (invalid spec, empty axes, oversized sweep).
func (s SweepSpec) ID() (string, error) {
	specs, err := s.Expand()
	if err != nil {
		return "", err
	}
	return batchID(specs), nil
}

// Batch is a handle on one submitted sweep.  Its ID is derived from
// the canonical keys of its jobs, so resubmitting the same sweep
// (even with axes reordered or duplicated) addresses the same batch.
type Batch struct {
	ID      string
	Specs   []JobSpec // normalized, deduplicated, expansion order
	jobs    []*Job
	created time.Time

	// restored holds the final status snapshot of a batch reloaded
	// from the disk store; such a handle has no live jobs and serves
	// Status from the snapshot.
	restored *BatchStatus
}

// batchID content-addresses a batch by its jobs' canonical keys.
// Expansion order is deterministic given the sweep, but two sweeps
// listing the same cells in different axis order should still
// coincide, so the keys are sorted before hashing.
func batchID(specs []JobSpec) string {
	keys := make([]string, len(specs))
	for i, sp := range specs {
		keys[i], _ = sp.Key()
	}
	sortStrings(keys)
	sum := sha256.Sum256([]byte(strings.Join(keys, "\n")))
	return "b" + hex.EncodeToString(sum[:8])
}

// sortStrings is insertion sort — batch key lists are small and this
// keeps the file free of a sort import debate; replace if batches
// ever grow past MaxBatchJobs.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Jobs returns the batch's job handles in expansion order.
func (b *Batch) Jobs() []*Job { return b.jobs }

// Wait blocks until every job in the batch has finished — done or
// failed — or the context expires.  Per-job failures do not abort the
// wait (a batch is expected to surface partial failure in its
// status); the only error is the context's.
func (b *Batch) Wait(ctx context.Context) error {
	for _, j := range b.jobs {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-j.done:
		}
	}
	return nil
}

// BatchJobStatus is one job's row in a batch status snapshot.
type BatchJobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Spec     JobSpec  `json:"spec"`
	Attempts int      `json:"attempts"`
	Error    string   `json:"error,omitempty"`
}

// BatchAggregate summarises a batch's completed jobs for one config
// across its seeds.  Latency figures are sample-count-weighted means
// over the jobs' request classes — a dashboard summary, not a
// substitute for per-job percentiles.
type BatchAggregate struct {
	Config   ConfigKind `json:"config"`
	Jobs     int        `json:"jobs"`
	MeanCPI  float64    `json:"mean_cpi"`
	MeanUS   float64    `json:"mean_us"`
	P99US    float64    `json:"p99_us"`
	SetupMS  float64    `json:"setup_ms"`
	MeasMS   float64    `json:"measure_ms"`
	TrampPKI float64    `json:"tramp_instrs_pki"`

	// Sampled-job roll-up: the unweighted mean of the jobs'
	// us_per_req estimates with the propagated 95% half-width
	// (sqrt of summed squared per-job half-widths over the job
	// count — exact for independent estimates).  Zero-valued when
	// no job in the config ran sampled.
	SampledJobs int     `json:"sampled_jobs,omitempty"`
	SampledUS   float64 `json:"sampled_us,omitempty"`
	SampledUSCI float64 `json:"sampled_us_ci95,omitempty"`
}

// BatchTimeline is one config's merged phase timeline over the
// batch's completed jobs: the per-job series element-wise summed on a
// common interval grid (see timeline.Merge).  Jobs counts the series
// merged — jobs that ran with timelines disabled, or whose series
// were restored from disk without being fetched, do not contribute.
type BatchTimeline struct {
	Config ConfigKind       `json:"config"`
	Jobs   int              `json:"jobs"`
	Series *timeline.Series `json:"series"`
}

// BatchStatus is a point-in-time snapshot of a batch: progress,
// per-job states (including each failed job's error — partial
// failure is reported, never hidden), and per-config aggregates over
// the jobs that completed.
type BatchStatus struct {
	ID        string           `json:"id"`
	Total     int              `json:"total"`
	Queued    int              `json:"queued"`
	Running   int              `json:"running"`
	Done      int              `json:"done"`
	Failed    int              `json:"failed"`
	Completed bool             `json:"completed"`
	Jobs      []BatchJobStatus `json:"jobs"`
	Aggregate []BatchAggregate `json:"aggregate,omitempty"`
	Timelines []BatchTimeline  `json:"timelines,omitempty"`
}

// Status snapshots the batch.  A batch restored from the disk store
// returns its persisted final snapshot.
func (b *Batch) Status() BatchStatus {
	if b.restored != nil {
		return *b.restored
	}
	st := BatchStatus{ID: b.ID, Total: len(b.jobs)}
	type agg struct {
		jobs             int
		cpi, meanNum, wN float64
		p99Num           float64
		setupMS, measMS  float64
		trampPKI         float64
		series           []*timeline.Series

		sampledJobs   int
		sampledUSSum  float64
		sampledUSCISq float64
	}
	aggs := make(map[ConfigKind]*agg)
	order := make([]ConfigKind, 0, 4)
	for _, j := range b.jobs {
		row := BatchJobStatus{ID: j.ID, State: j.State(), Spec: j.Spec, Attempts: j.Attempts()}
		if err := j.Err(); err != nil {
			row.Error = err.Error()
		}
		switch row.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateFailed:
			st.Failed++
		case StateDone:
			st.Done++
			if res, ok := j.Result(); ok {
				a := aggs[j.Spec.Config]
				if a == nil {
					a = &agg{}
					aggs[j.Spec.Config] = a
					order = append(order, j.Spec.Config)
				}
				a.jobs++
				if res.Timeline != nil {
					a.series = append(a.series, res.Timeline)
				}
				if res.Sampled != nil {
					if sc, ok := res.Sampled.Metrics["us_per_req"]; ok {
						a.sampledJobs++
						a.sampledUSSum += sc.Mean
						a.sampledUSCISq += sc.CI95 * sc.CI95
					}
				}
				if res.Counters.Instructions > 0 {
					a.cpi += float64(res.Counters.Cycles) / float64(res.Counters.Instructions)
				}
				a.trampPKI += res.PKI.TrampInstrs
				a.setupMS += float64(res.SetupWall) / float64(time.Millisecond)
				a.measMS += float64(res.MeasureWall) / float64(time.Millisecond)
				// Sorted class order: float accumulation order must
				// not depend on map iteration, or two Status() calls
				// could disagree in the last ULP.
				classes := make([]string, 0, len(res.Samples))
				for name := range res.Samples {
					classes = append(classes, name)
				}
				sort.Strings(classes)
				for _, name := range classes {
					s := res.Samples[name]
					n := float64(s.N())
					a.meanNum += n * s.Mean()
					a.p99Num += n * s.Percentile(99)
					a.wN += n
				}
			}
		}
		st.Jobs = append(st.Jobs, row)
	}
	st.Completed = st.Done+st.Failed == st.Total
	for _, cfg := range order {
		a := aggs[cfg]
		out := BatchAggregate{
			Config:   cfg,
			Jobs:     a.jobs,
			MeanCPI:  a.cpi / float64(a.jobs),
			SetupMS:  a.setupMS / float64(a.jobs),
			MeasMS:   a.measMS / float64(a.jobs),
			TrampPKI: a.trampPKI / float64(a.jobs),
		}
		if a.wN > 0 {
			out.MeanUS = a.meanNum / a.wN
			out.P99US = a.p99Num / a.wN
		}
		if a.sampledJobs > 0 {
			out.SampledJobs = a.sampledJobs
			out.SampledUS = a.sampledUSSum / float64(a.sampledJobs)
			out.SampledUSCI = math.Sqrt(a.sampledUSCISq) / float64(a.sampledJobs)
		}
		st.Aggregate = append(st.Aggregate, out)
		// Merged per-config timeline, kept beside (not inside) the
		// aggregate row: the chaos suite asserts aggregates are
		// bit-identical across failover scenarios, and that property
		// must not depend on which jobs' series are in memory.
		// All of a batch's series share one base interval and compact
		// by doubling, so incompatible grids can only come from
		// corrupted input; skip the timeline rather than fail Status.
		if merged, err := timeline.Merge(a.series); err == nil && merged != nil {
			st.Timelines = append(st.Timelines, BatchTimeline{
				Config: cfg,
				Jobs:   len(a.series),
				Series: merged,
			})
		}
	}
	return st
}

// DefaultMaxBatches is the batch retention bound applied when
// Options.MaxBatches is zero.  A batch handle is a slice of job
// pointers, so retention is cheap; the bound exists so an eternal
// service's batch index cannot grow with its history.
const DefaultMaxBatches = 256

// SubmitBatch expands the sweep and submits every job, returning the
// batch handle.  Identical sweeps (same expanded job set) share one
// batch: resubmission returns the existing handle with reused=true.
// Individual jobs still deduplicate against *all* prior traffic via
// the content-addressed job cache, so overlapping batches never
// re-simulate shared cells.  Submission is atomic in effect: any
// admission error (queue full, runner closed, invalid spec) fails the
// whole batch — jobs admitted before the failure keep running and
// stay individually addressable, but no batch is registered.
func (r *Runner) SubmitBatch(sweep SweepSpec) (batch *Batch, reused bool, err error) {
	specs, err := sweep.Expand()
	if err != nil {
		return nil, false, err
	}
	id := batchID(specs)

	r.mu.Lock()
	if b, ok := r.batches[id]; ok {
		if e, ok := r.batchElem[id]; ok {
			r.batchLRU.MoveToBack(e)
		}
		r.mu.Unlock()
		return b, true, nil
	}
	r.mu.Unlock()

	b := &Batch{ID: id, Specs: specs, jobs: make([]*Job, len(specs)), created: time.Now()}
	for i, spec := range specs {
		j, _, err := r.Submit(spec)
		if err != nil {
			return nil, false, fmt.Errorf("runner: batch job %d/%d (%s/%s seed=%d): %w",
				i+1, len(specs), spec.Workload, spec.Config, spec.Seed, err)
		}
		b.jobs[i] = j
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.batches[id]; ok {
		// Lost a submission race; the jobs we enqueued coalesced onto
		// the winner's, so just adopt its handle.
		return existing, true, nil
	}
	r.batches[id] = b
	r.batchElem[id] = r.batchLRU.PushBack(id)
	if r.maxBatches > 0 {
		for r.batchLRU.Len() > r.maxBatches {
			old := r.batchLRU.Remove(r.batchLRU.Front()).(string)
			delete(r.batches, old)
			delete(r.batchElem, old)
			// Parity with job eviction: a batch demoted to the disk
			// store stays addressable; one truly dropped enters the
			// evicted ring so lookups answer 410 Gone, not 404.
			// (Batch and job IDs share the ring — the "b" prefix
			// keeps the namespaces disjoint.)
			if r.store == nil || !r.store.Has(old) {
				r.noteEvicted(old)
			}
		}
	}
	if r.store != nil {
		go r.persistBatch(b)
	}
	return b, false, nil
}

// persistBatch waits for every job in the batch to finish, then
// writes the batch's final snapshot (per-job states and per-config
// aggregates) through to the disk store under the batch ID.  Jobs
// always finish — runner shutdown fails them — so this goroutine is
// bounded by the batch's own lifetime.
func (r *Runner) persistBatch(b *Batch) {
	for _, j := range b.jobs {
		<-j.done
	}
	payload, err := encodeBatch(b.ID, b.Specs, b.Status())
	if err != nil {
		return
	}
	_ = r.store.Put(b.ID, payload)
}

// Batch returns the batch with the given ID, if retained — falling
// back to the disk store, where completed batches' final snapshots
// survive retention eviction and process restarts.
func (r *Runner) Batch(id string) (*Batch, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.batches[id]
	if ok {
		if e, ok := r.batchElem[id]; ok {
			r.batchLRU.MoveToBack(e)
		}
		return b, ok
	}
	if r.store != nil {
		if payload, ok, _ := r.store.Get(id); ok {
			if pb, err := decodeBatch(payload); err == nil && pb.ID == id {
				return &Batch{ID: pb.ID, Specs: pb.Specs, restored: &pb.Status}, true
			}
		}
	}
	return nil, false
}
