package runner

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// TestJobTracePhases: a completed job's trace carries the full phase
// breakdown — queued, then an attempt with generate/link/warmup/
// measure children — addressable by the job's own ID.
func TestJobTracePhases(t *testing.T) {
	r := New(Options{Workers: 1})
	defer r.Close()
	j, _, err := r.Submit(fastSpec(301))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	tr, ok := r.Tracer().Get(j.ID)
	if !ok {
		t.Fatalf("no trace for job %s", j.ID)
	}
	phases := tr.Phases()
	if len(phases) != 2 || phases[0] != "queued" || phases[1] != "attempt" {
		t.Fatalf("phases = %v, want [queued attempt]", phases)
	}
	snap := tr.Snapshot()
	if snap.ID != j.ID {
		t.Errorf("trace id = %s, want job id %s", snap.ID, j.ID)
	}
	if snap.Root.InProgress {
		t.Error("completed job's trace still in progress")
	}
	if snap.Root.Attrs["workload"] != j.Spec.Workload {
		t.Errorf("root attrs = %v", snap.Root.Attrs)
	}
	var attempt *telemetry.SpanJSON
	for i := range snap.Root.Children {
		if snap.Root.Children[i].Name == "attempt" {
			attempt = &snap.Root.Children[i]
		}
	}
	if attempt == nil {
		t.Fatal("no attempt span")
	}
	want := []string{"generate", "link", "warmup", "measure"}
	if len(attempt.Children) != len(want) {
		t.Fatalf("attempt children = %+v, want %v", attempt.Children, want)
	}
	for i, name := range want {
		if attempt.Children[i].Name != name {
			t.Errorf("attempt child %d = %s, want %s", i, attempt.Children[i].Name, name)
		}
	}
}

// TestRetryTraceShowsBackoff: a transiently failing job's trace shows
// the retry anatomy — attempt, backoff, queued, attempt.
func TestRetryTraceShowsBackoff(t *testing.T) {
	faultinject.Enable("runner.execute", faultinject.PointConfig{Mode: faultinject.Error, Prob: 1, Count: 1})
	t.Cleanup(faultinject.Reset)
	r := New(Options{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	defer r.Close()
	j, _, err := r.Submit(fastSpec(302))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	tr, _ := r.Tracer().Get(j.ID)
	got := strings.Join(tr.Phases(), " ")
	if got != "queued attempt backoff queued attempt" {
		t.Errorf("phases = %q, want retry anatomy", got)
	}
}

// TestMetricsEndToEnd: the registry the runner exposes carries the
// operational counters and the per-workload simulation counters, and
// Stats() reads the same instruments.
func TestMetricsEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(Options{Workers: 2, Metrics: reg})
	defer r.Close()
	if r.Metrics() != reg {
		t.Fatal("runner did not adopt the provided registry")
	}
	res, err := r.Run(context.Background(), fastSpec(303))
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dlsim_runner_jobs_completed_total 1",
		"dlsim_runner_cache_misses_total 1",
		`dlsim_sim_instructions_total{workload="memcached",config="base"}`,
		`dlsim_sim_tramp_skips_total{workload="memcached",config="base"}`,
		"dlsim_runner_job_wall_ms_count 1",
		"dlsim_runner_queue_wait_ms_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if res.Counters.Instructions == 0 {
		t.Fatal("no instructions simulated")
	}
	if st := r.Stats(); st.Completed != 1 || st.JobMeanMS <= 0 {
		t.Errorf("stats = %+v, want completed=1 with latency", st)
	}
}

// TestTracingDisabled: TraceCapacity < 0 turns tracing off without
// affecting execution.
func TestTracingDisabled(t *testing.T) {
	r := New(Options{Workers: 1, TraceCapacity: -1})
	defer r.Close()
	if r.Tracer() != nil {
		t.Fatal("tracer not disabled")
	}
	if _, err := r.Run(context.Background(), fastSpec(304)); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}
}
