package pool

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// drive runs a short warmup+measure cycle on sys and returns the
// counter snapshot — the same sequence runner.execute performs.
func drive(t *testing.T, w *workload.Workload, sys *core.System, seed uint64, warm, measure int) cpu.Counters {
	t.Helper()
	d := workload.NewDriver(w, sys, workload.DriverSeed(seed))
	if err := d.Warmup(warm); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(measure); err != nil {
		t.Fatal(err)
	}
	return sys.Counters()
}

// TestPooledSystemBitIdenticalToFresh: a system built from a pooled,
// COW-forked image produces counters bit-equal to one generated and
// linked from scratch.
func TestPooledSystemBitIdenticalToFresh(t *testing.T) {
	const seed = 5
	cfg := core.Enhanced(seed)

	fw := workload.Memcached(seed)
	fsys, err := fw.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh := drive(t, fw, fsys, seed, 10, 40)

	p := New(Options{})
	// Two pooled runs: the second reuses the already-forked master.
	for i := 0; i < 2; i++ {
		sys, w, hit, err := p.System("memcached", workload.Memcached, seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if wantHit := i == 1; hit != wantHit {
			t.Errorf("run %d: image hit = %v, want %v", i, hit, wantHit)
		}
		pooled := drive(t, w, sys, seed, 10, 40)
		if pooled != fresh {
			t.Errorf("run %d: pooled counters diverge from fresh construction:\npooled %+v\nfresh  %+v", i, pooled, fresh)
		}
	}
	st := p.Stats()
	if st.WorkloadMisses != 1 || st.ImageMisses != 1 || st.ImageHits != 1 {
		t.Errorf("stats = %+v, want 1 workload miss, 1 image miss, 1 image hit", st)
	}
	if st.ImageBytes <= 0 {
		t.Errorf("ImageBytes = %d, want > 0", st.ImageBytes)
	}
}

// TestConcurrentJobsShareOneMaster: many goroutines build and drive
// systems for the same key concurrently; generation and linking happen
// once, and every run's counters are bit-equal.  Run with -race.
func TestConcurrentJobsShareOneMaster(t *testing.T) {
	const seed, workers = 9, 8
	p := New(Options{})
	cfg := core.Base(seed)

	results := make([]cpu.Counters, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sys, w, _, err := p.System("memcached", workload.Memcached, seed, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = drive(t, w, sys, seed, 8, 30)
		}(g)
	}
	wg.Wait()

	for g := 1; g < workers; g++ {
		if results[g] != results[0] {
			t.Errorf("goroutine %d counters diverge:\n%+v\n%+v", g, results[g], results[0])
		}
	}
	st := p.Stats()
	if st.WorkloadMisses != 1 {
		t.Errorf("workload generated %d times under concurrency, want 1", st.WorkloadMisses)
	}
	if st.ImageMisses != 1 {
		t.Errorf("master linked %d times under concurrency, want 1", st.ImageMisses)
	}
	if st.ImageHits+st.ImageMisses != workers {
		t.Errorf("image hits+misses = %d, want %d", st.ImageHits+st.ImageMisses, workers)
	}
}

// TestImageKeyedByLinkOptions: configs differing only in hardware
// share one master; configs differing in linking do not.
func TestImageKeyedByLinkOptions(t *testing.T) {
	const seed = 3
	p := New(Options{})
	for _, cfg := range []core.Config{core.Base(seed), core.Enhanced(seed)} {
		if _, _, _, err := p.System("memcached", workload.Memcached, seed, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.ImageMisses != 1 || st.ImageHits != 1 {
		t.Errorf("base+enhanced (same link options): misses=%d hits=%d, want 1/1", st.ImageMisses, st.ImageHits)
	}
	// Static linking changes the link product: new master.
	if _, _, _, err := p.System("memcached", workload.Memcached, seed, core.Static(seed)); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.ImageMisses != 2 {
		t.Errorf("static link reused a lazy master: misses=%d, want 2", st.ImageMisses)
	}
	if st := p.Stats(); st.WorkloadMisses != 1 {
		t.Errorf("workload regenerated: misses=%d, want 1", st.WorkloadMisses)
	}
}

// TestLRUEviction: the image bound evicts the least recently used
// master, and a re-request relinks it.
func TestLRUEviction(t *testing.T) {
	p := New(Options{MaxImages: 2, MaxWorkloads: 2})
	for _, seed := range []uint64{1, 2, 3} { // seeds give distinct link layouts
		if _, _, _, err := p.System("memcached", workload.Memcached, seed, core.Base(seed)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Images != 2 || st.Workloads != 2 {
		t.Errorf("cached images=%d workloads=%d, want 2/2", st.Images, st.Workloads)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded past the bound")
	}
	// Seed 1 was evicted; using it again is a miss that still works.
	_, _, hit, err := p.System("memcached", workload.Memcached, 1, core.Base(1))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("evicted master reported as hit")
	}
}

// TestUnboundedWhenNegative: negative bounds disable eviction.
func TestUnboundedWhenNegative(t *testing.T) {
	p := New(Options{MaxImages: -1, MaxWorkloads: -1})
	for _, seed := range []uint64{1, 2, 3, 4} {
		if _, _, _, err := p.System("memcached", workload.Memcached, seed, core.Base(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Images != 4 || st.Evictions != 0 {
		t.Errorf("images=%d evictions=%d, want 4/0", st.Images, st.Evictions)
	}
}
