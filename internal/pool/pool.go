// Package pool is the shared artifact pool behind the job engine: a
// content-keyed, immutable cache of generated workloads and linked
// program images.
//
// Every simulation job historically re-ran two pure, expensive setup
// phases — workload generation (a function of (workload, seed)) and
// linking (a function of (workload, seed, linker.Options)) — before a
// single request was measured.  For parameter-sweep traffic (one
// workload, many hardware configs or measurement budgets), that setup
// dominates; this package is the software analogue of the paper's
// observation that per-call redundant work belongs in a shared,
// snoop-kept cache rather than on the hot path.
//
// # Sharing contract
//
//   - Workloads are immutable after generation (see workload.Workload),
//     so one generated bundle backs any number of concurrent systems.
//   - A linked image's mutable state — GOT words rebound by the lazy
//     resolver, workload data stores, the stack, the resolution
//     counter — is never shared: System forks the pooled master
//     copy-on-write (linker.Image.Fork), so each job gets memory
//     bit-identical to a fresh link while sharing every untouched
//     page and the whole decoded-instruction index.
//   - Masters are built once per key under a per-entry singleflight,
//     and both caches are LRU-bounded so a long-lived service's
//     footprint tracks its working set, not its submission history.
//
// Because a forked image starts bit-identical to a fresh link and all
// microarchitectural state (CPU, caches, TLBs, ABTB) is constructed
// per job, pooled results are bit-identical to unpooled ones — proven
// by internal/experiments.TestGoldenCounters running through the pool
// and by runner.TestPooledBitIdenticalToUnpooled.
package pool

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/linker"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Defaults for the LRU bounds.  A workload bundle is a few MB of
// generated objects; a master image's COW layer is mostly its
// pre-touched data pages.  The defaults comfortably hold the whole
// evaluation matrix (4 workloads × a handful of seeds and link modes)
// while bounding adversarial many-seed traffic.
const (
	DefaultMaxWorkloads = 32
	DefaultMaxImages    = 128
)

// Options configures a Pool.
type Options struct {
	// MaxWorkloads / MaxImages bound the two caches (least recently
	// used entries are dropped beyond them).  Zero means the defaults;
	// negative means unbounded.
	MaxWorkloads int
	MaxImages    int

	// Metrics is the registry the pool's hit/miss/byte instruments
	// register in.  Nil means a private registry.
	Metrics *telemetry.Registry
}

// WorkloadKey identifies one generated workload bundle.
type WorkloadKey struct {
	Workload string
	Seed     uint64
}

// ImageKey identifies one linked master image: the generated bundle
// plus everything that determines the link product.  linker.Options
// is comparable by value, so the key captures binding mode, ASLR,
// layout seed, ifunc level and PLT flavour.
type ImageKey struct {
	WorkloadKey
	Linking linker.Options
}

// workloadEntry is one cached bundle; built once via its sync.Once.
type workloadEntry struct {
	once sync.Once
	w    *workload.Workload
	elem *list.Element // position in the workload LRU (guarded by Pool.mu)
}

// imageEntry is one cached master image.  mu serialises Fork calls on
// the master (the first fork freezes its pages); once guards the
// build.
type imageEntry struct {
	once    sync.Once
	mu      sync.Mutex
	img     *linker.Image
	bytes   uint64
	evicted bool // guarded by mu; stops byte accounting after eviction
	err     error
	elem    *list.Element // position in the image LRU (guarded by Pool.mu)

	// progs caches compiled trace programs for this master, keyed by
	// L1I line size (the only hardware parameter baked into the
	// compiled form).  Forks share the master's decoded-instruction
	// index, so one Program drives every system built from this entry
	// (cpu.TestCompiledForkSharing); compilation happens once per
	// (image, line size), off every job's hot path.  Guarded by
	// progMu, separate from mu so compilation never blocks forks.
	progMu sync.Mutex
	progs  map[int]*cpu.Program
}

// program returns the compiled trace program for the entry's master at
// the given L1I line size, compiling it on first use.
func (e *imageEntry) program(lineBytes int) *cpu.Program {
	e.progMu.Lock()
	defer e.progMu.Unlock()
	if p, ok := e.progs[lineBytes]; ok {
		// Masters never churn (Load/Unload privatize forks first), so a
		// cached program can only go stale if that invariant breaks —
		// recompile rather than hand out a trace into freed code.
		if p.Generation() == e.img.Generation() {
			return p
		}
		delete(e.progs, lineBytes)
	}
	p := cpu.Compile(e.img, lineBytes)
	if e.progs == nil {
		e.progs = make(map[int]*cpu.Program, 1)
	}
	e.progs[lineBytes] = p
	return p
}

// Pool caches generated workloads and linked master images.  All
// methods are safe for concurrent use.
type Pool struct {
	maxWorkloads int
	maxImages    int

	mu        sync.Mutex
	workloads map[WorkloadKey]*workloadEntry
	images    map[ImageKey]*imageEntry
	wlLRU     *list.List // of WorkloadKey, front = oldest
	imgLRU    *list.List // of ImageKey, front = oldest

	m poolMetrics
}

// poolMetrics is the pool's instrument set (see DESIGN.md §10):
//
//	dlsim_pool_workload_hits_total    counter  generations skipped
//	dlsim_pool_workload_misses_total  counter  workloads generated
//	dlsim_pool_image_hits_total       counter  links skipped (COW fork served)
//	dlsim_pool_image_misses_total     counter  master images linked
//	dlsim_pool_evictions_total        counter  entries dropped by the LRU bounds
//	dlsim_pool_workloads              gauge    cached workload bundles
//	dlsim_pool_images                 gauge    cached master images
//	dlsim_pool_image_bytes            gauge    resident master memory (COW layers)
type poolMetrics struct {
	reg            *telemetry.Registry
	workloadHits   *telemetry.Counter
	workloadMisses *telemetry.Counter
	imageHits      *telemetry.Counter
	imageMisses    *telemetry.Counter
	evictions      *telemetry.Counter
	workloads      *telemetry.Gauge
	images         *telemetry.Gauge
	imageBytes     *telemetry.Gauge
}

// New returns a Pool with the given options.
func New(opts Options) *Pool {
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	maxW, maxI := opts.MaxWorkloads, opts.MaxImages
	if maxW == 0 {
		maxW = DefaultMaxWorkloads
	}
	if maxI == 0 {
		maxI = DefaultMaxImages
	}
	return &Pool{
		maxWorkloads: maxW,
		maxImages:    maxI,
		workloads:    make(map[WorkloadKey]*workloadEntry),
		images:       make(map[ImageKey]*imageEntry),
		wlLRU:        list.New(),
		imgLRU:       list.New(),
		m: poolMetrics{
			reg:            reg,
			workloadHits:   reg.Counter("dlsim_pool_workload_hits_total", "Workload generations served from the artifact pool."),
			workloadMisses: reg.Counter("dlsim_pool_workload_misses_total", "Workload bundles generated into the artifact pool."),
			imageHits:      reg.Counter("dlsim_pool_image_hits_total", "Link steps skipped: systems built by COW-forking a pooled image."),
			imageMisses:    reg.Counter("dlsim_pool_image_misses_total", "Master images linked into the artifact pool."),
			evictions:      reg.Counter("dlsim_pool_evictions_total", "Artifact-pool entries dropped by the LRU bounds."),
			workloads:      reg.Gauge("dlsim_pool_workloads", "Workload bundles cached in the artifact pool."),
			images:         reg.Gauge("dlsim_pool_images", "Master images cached in the artifact pool."),
			imageBytes:     reg.Gauge("dlsim_pool_image_bytes", "Resident bytes of pooled master images' COW page layers."),
		},
	}
}

// Metrics returns the registry holding the pool's instruments.
func (p *Pool) Metrics() *telemetry.Registry { return p.m.reg }

// Workload returns the generated bundle for (name, seed), generating
// it with gen on first use.  gen must be deterministic in the seed
// (every registered generator is); concurrent callers for the same key
// share one generation.  The returned bundle is immutable — callers
// must not modify it.
func (p *Pool) Workload(name string, gen func(uint64) *workload.Workload, seed uint64) (*workload.Workload, bool) {
	key := WorkloadKey{Workload: name, Seed: seed}
	p.mu.Lock()
	e, hit := p.workloads[key]
	if !hit {
		e = &workloadEntry{}
		p.workloads[key] = e
		e.elem = p.wlLRU.PushBack(key)
		p.evictLocked()
	} else if e.elem != nil {
		p.wlLRU.MoveToBack(e.elem)
	}
	p.mu.Unlock()

	if hit {
		p.m.workloadHits.Inc()
	} else {
		p.m.workloadMisses.Inc()
	}
	e.once.Do(func() { e.w = gen(seed) })
	return e.w, hit
}

// System builds a private simulation system for (name, seed) under
// cfg: the workload comes from the bundle cache, the image from the
// master-image cache (linked on first use), and the returned System
// wraps a copy-on-write fork of the master, so its GOT, data, stack
// and hardware state are exclusively the caller's.  The second return
// is the shared workload bundle; imageHit reports whether the link
// step was skipped.
func (p *Pool) System(name string, gen func(uint64) *workload.Workload, seed uint64, cfg core.Config) (*core.System, *workload.Workload, bool, error) {
	w, _ := p.Workload(name, gen, seed)
	sys, hit, err := p.systemFor(ImageKey{WorkloadKey{name, seed}, cfg.Linking}, w, cfg)
	return sys, w, hit, err
}

// ImageSystem is System for callers that already fetched the bundle
// via Workload (the runner times the two cache steps under separate
// trace spans).  w must be the bundle cached under (name, seed).
func (p *Pool) ImageSystem(name string, seed uint64, w *workload.Workload, cfg core.Config) (*core.System, bool, error) {
	return p.systemFor(ImageKey{WorkloadKey{name, seed}, cfg.Linking}, w, cfg)
}

// systemFor serves cfg from the image cache, linking the master on
// first use.
func (p *Pool) systemFor(key ImageKey, w *workload.Workload, cfg core.Config) (*core.System, bool, error) {
	p.mu.Lock()
	e, hit := p.images[key]
	if !hit {
		e = &imageEntry{}
		p.images[key] = e
		e.elem = p.imgLRU.PushBack(key)
		p.evictLocked()
	} else if e.elem != nil {
		p.imgLRU.MoveToBack(e.elem)
	}
	p.mu.Unlock()

	e.once.Do(func() {
		img, err := linker.Link(w.App, w.Libs, cfg.Linking)
		if err != nil {
			e.err = fmt.Errorf("pool: linking %s/seed=%d: %w", key.Workload, key.Seed, err)
			return
		}
		e.img = img
	})
	if e.err != nil {
		// Failed links are not retried under this key until evicted;
		// they are deterministic in the inputs, so a retry would fail
		// identically.
		return nil, false, e.err
	}
	if hit {
		p.m.imageHits.Inc()
	} else {
		p.m.imageMisses.Inc()
	}

	// Serialise forks of this master: the first fork freezes its
	// written pages, later forks just share the base layer.
	e.mu.Lock()
	img := e.img.Fork()
	if b := e.img.SharedBytes(); !e.evicted && b != e.bytes {
		p.m.imageBytes.Add(int64(b) - int64(e.bytes))
		e.bytes = b
	}
	e.mu.Unlock()

	sys := core.NewSystemFromImage(img, cfg)
	// Install the shared compiled trace program: the fast-path Run loop
	// is bit-identical to the interpreted one, so pooled results stay
	// bit-identical to unpooled — callers that want the interpreted
	// path (A/B benchmarks) detach it with SetProgram(nil).
	if err := sys.CPU().SetProgram(e.program(cfg.Hardware.L1I.LineBytes)); err != nil {
		return nil, false, fmt.Errorf("pool: installing compiled trace for %s/seed=%d: %w", key.Workload, key.Seed, err)
	}
	return sys, hit, nil
}

// evictLocked drops least-recently-used entries beyond the bounds and
// refreshes the size gauges.  Caller holds p.mu.  Entries still being
// built or forked elsewhere stay valid for their holders: eviction
// only unlinks them from the cache, it cannot invalidate outstanding
// forks (which keep the shared page layer alive independently).
func (p *Pool) evictLocked() {
	if p.maxWorkloads > 0 {
		for p.wlLRU.Len() > p.maxWorkloads {
			key := p.wlLRU.Remove(p.wlLRU.Front()).(WorkloadKey)
			p.workloads[key].elem = nil
			delete(p.workloads, key)
			p.m.evictions.Inc()
		}
	}
	if p.maxImages > 0 {
		for p.imgLRU.Len() > p.maxImages {
			key := p.imgLRU.Remove(p.imgLRU.Front()).(ImageKey)
			e := p.images[key]
			e.elem = nil
			delete(p.images, key)
			e.mu.Lock() // bytes is updated under e.mu on the fork path
			p.m.imageBytes.Add(-int64(e.bytes))
			e.bytes = 0
			e.evicted = true
			e.mu.Unlock()
			p.m.evictions.Inc()
		}
	}
	p.m.workloads.Set(int64(p.wlLRU.Len()))
	p.m.images.Set(int64(p.imgLRU.Len()))
}

// Stats is a point-in-time snapshot of pool effectiveness.
type Stats struct {
	WorkloadHits   uint64 `json:"workload_hits"`
	WorkloadMisses uint64 `json:"workload_misses"`
	ImageHits      uint64 `json:"image_hits"`
	ImageMisses    uint64 `json:"image_misses"`
	Evictions      uint64 `json:"evictions"`
	Workloads      int    `json:"workloads"`
	Images         int    `json:"images"`
	ImageBytes     int64  `json:"image_bytes"`
}

// Stats reads the pool's instruments.
func (p *Pool) Stats() Stats {
	return Stats{
		WorkloadHits:   p.m.workloadHits.Value(),
		WorkloadMisses: p.m.workloadMisses.Value(),
		ImageHits:      p.m.imageHits.Value(),
		ImageMisses:    p.m.imageMisses.Value(),
		Evictions:      p.m.evictions.Value(),
		Workloads:      int(p.m.workloads.Value()),
		Images:         int(p.m.images.Value()),
		ImageBytes:     p.m.imageBytes.Value(),
	}
}
