package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, id string, payload []byte) {
	t.Helper()
	if err := s.Put(id, payload); err != nil {
		t.Fatalf("Put(%q): %v", id, err)
	}
}

func mustGet(t *testing.T, s *Store, id string) []byte {
	t.Helper()
	b, ok, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get(%q): %v", id, err)
	}
	if !ok {
		t.Fatalf("Get(%q): missing", id)
	}
	return b
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	mustPut(t, s, "a", []byte("hello"))
	mustPut(t, s, "b", []byte{})
	mustPut(t, s, "c", []byte("世界"))
	if got := mustGet(t, s, "a"); string(got) != "hello" {
		t.Fatalf("a = %q", got)
	}
	if got := mustGet(t, s, "b"); len(got) != 0 {
		t.Fatalf("b = %q, want empty", got)
	}
	if got := mustGet(t, s, "c"); string(got) != "世界" {
		t.Fatalf("c = %q", got)
	}
	if _, ok, _ := s.Get("nope"); ok {
		t.Fatal("Get(nope) found something")
	}
	st := s.Stats()
	if st.Entries != 3 || st.Writes != 3 || st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverwriteLastWins(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	mustPut(t, s, "k", []byte("v1"))
	mustPut(t, s, "k", []byte("v2"))
	if got := mustGet(t, s, "k"); string(got) != "v2" {
		t.Fatalf("k = %q, want v2", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Close()

	// Last write must also win across a replay.
	s2 := open(t, dir, Options{})
	if got := mustGet(t, s2, "k"); string(got) != "v2" {
		t.Fatalf("after reopen k = %q, want v2", got)
	}
}

func TestDeleteAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	mustPut(t, s, "keep", []byte("x"))
	mustPut(t, s, "gone", []byte("y"))
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if s.Has("gone") {
		t.Fatal("deleted id still present")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("deleting unknown id: %v", err)
	}
	s.Close()

	s2 := open(t, dir, Options{})
	if s2.Has("gone") {
		t.Fatal("tombstone not honored on replay")
	}
	if got := mustGet(t, s2, "keep"); string(got) != "x" {
		t.Fatalf("keep = %q", got)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	want := map[string]string{}
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("id-%03d", i)
		val := fmt.Sprintf("payload-%d", i*i)
		want[id] = val
		mustPut(t, s, id, []byte(val))
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := open(t, dir, Options{})
	if s2.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s2.Len(), len(want))
	}
	for id, val := range want {
		if got := mustGet(t, s2, id); string(got) != val {
			t.Fatalf("%s = %q, want %q", id, got, val)
		}
	}
	if st := s2.Stats(); st.Replayed != 100 {
		t.Fatalf("replayed = %d, want 100", st.Replayed)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxBytes: -1, SegmentBytes: 4096})
	payload := make([]byte, 512)
	for i := 0; i < 40; i++ {
		mustPut(t, s, fmt.Sprintf("id-%02d", i), payload)
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want several after 20KB of writes at a 4KB target", st.Segments)
	}
	// Every entry must remain readable across rotations and a replay.
	s.Close()
	s2 := open(t, dir, Options{MaxBytes: -1, SegmentBytes: 4096})
	for i := 0; i < 40; i++ {
		mustGet(t, s2, fmt.Sprintf("id-%02d", i))
	}
}

func TestCompactionDropsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxBytes: 64 << 10, SegmentBytes: 8 << 10})
	payload := make([]byte, 1024)
	// Rewriting one key over and over generates dead bytes; the live
	// set stays tiny, so compaction must reclaim without dropping.
	for i := 0; i < 200; i++ {
		mustPut(t, s, "hot", payload)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 200KB of dead writes into a 64KB bound: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("compaction dropped %d live entries; live set was one key", st.Dropped)
	}
	if st.Bytes > 64<<10 {
		t.Fatalf("bytes = %d, want <= bound after compaction", st.Bytes)
	}
	if got := mustGet(t, s, "hot"); len(got) != 1024 {
		t.Fatalf("hot payload corrupted by compaction: %d bytes", len(got))
	}
}

func TestCompactionDropsOldestWhenLiveExceedsBound(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var dropped []string
	s := open(t, dir, Options{
		MaxBytes:     16 << 10,
		SegmentBytes: 4 << 10,
		OnDrop: func(id string) {
			mu.Lock()
			dropped = append(dropped, id)
			mu.Unlock()
		},
	})
	payload := make([]byte, 1024)
	n := 40
	for i := 0; i < n; i++ {
		mustPut(t, s, fmt.Sprintf("id-%02d", i), payload)
	}
	mu.Lock()
	nd := len(dropped)
	mu.Unlock()
	if nd == 0 {
		t.Fatal("no drops despite live set exceeding the bound")
	}
	// Oldest entries drop first; the most recent write must survive.
	last := fmt.Sprintf("id-%02d", n-1)
	if !s.Has(last) {
		t.Fatalf("most recent entry %s was dropped", last)
	}
	mu.Lock()
	first := dropped[0]
	for _, id := range dropped {
		if !s.Has(id) {
			continue
		}
		mu.Unlock()
		t.Fatalf("dropped id %s still present", id)
	}
	mu.Unlock()
	if first != "id-00" {
		t.Fatalf("first drop = %s, want id-00 (oldest first)", first)
	}
	if st := s.Stats(); st.Bytes > 16<<10 {
		t.Fatalf("bytes = %d, want <= 16KB bound", st.Bytes)
	}
	// Old segment files must actually be gone from disk.
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	var total int64
	for _, p := range names {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total > 16<<10 {
		t.Fatalf("on-disk bytes = %d, want <= bound", total)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	mustPut(t, s, "a", []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put("b", []byte("y")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get("a"); err != ErrClosed {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if err := s.Snapshot(); err != ErrClosed {
		t.Fatalf("Snapshot after Close = %v, want ErrClosed", err)
	}
}

func TestRejectsOversizedInputs(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	longID := string(make([]byte, MaxIDLen+1))
	if err := s.Put(longID, nil); err != ErrIDTooLong {
		t.Fatalf("long id: %v", err)
	}
	if err := s.Put("", nil); err != ErrIDTooLong {
		t.Fatalf("empty id: %v", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxBytes: 256 << 10, SegmentBytes: 16 << 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("g%d-i%d", g, i)
				if err := s.Put(id, []byte(id)); err != nil {
					t.Error(err)
					return
				}
				if b, ok, err := s.Get(id); err != nil || !ok || string(b) != id {
					t.Errorf("Get(%s) = %q %v %v", id, b, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := open(t, t.TempDir(), Options{Metrics: reg})
	mustPut(t, s, "a", []byte("x"))
	mustGet(t, s, "a")
	s.Get("missing")
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dlsim_store_hits_total 1",
		"dlsim_store_misses_total 1",
		"dlsim_store_writes_total 1",
		"dlsim_store_entries 1",
		"dlsim_store_segments 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestOpenReplaySpan(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	mustPut(t, s, "a", []byte("x"))
	s.Close()

	tracer := telemetry.NewTracer(8)
	open(t, dir, Options{Tracer: tracer})
	tr, ok := tracer.Get("store-open")
	if !ok {
		t.Fatal("no store-open trace recorded")
	}
	if tr.ID() != "store-open" {
		t.Fatalf("trace id = %q", tr.ID())
	}
}
