// Package store is a disk-backed, content-addressed store for
// completed simulation results: the durable second tier below the
// runner's in-memory LRU.
//
// Layout is deliberately simple — append-only segment files of
// length-prefixed, checksummed records, plus an in-memory index
// rebuilt by scanning the segments on open:
//
//	segment file (seg-%016x.seg):
//	    8-byte magic "DLSTORE1"
//	    record*
//	record:
//	    u32  length of body (little endian)
//	    u32  CRC-32 (IEEE) of body
//	    body = u8 flags | u16 id length | id bytes | payload
//
// Records are immutable once written; a re-Put of an existing ID
// appends a new record (last write wins on replay) and a Delete
// appends a tombstone (flags bit 0).  The bytes superseded that way
// are "dead" and reclaimed by compaction: when the store's total size
// exceeds MaxBytes, live records are rewritten into fresh segments in
// append order and the old files removed; if the live set alone still
// exceeds the bound, the oldest live entries are dropped and reported
// through the OnDrop hook (so the serving layer can answer 410 Gone
// for them).  Compaction is crash-safe in the lossless direction: new
// segments are written and fsynced before old ones are removed, and
// replay resolves duplicates newest-segment-wins, so a crash mid-
// compaction can resurrect dropped entries but never lose live ones.
//
// Crash consistency: appends are buffered by the OS until Snapshot or
// Close fsyncs (the dlsimd drain path calls Close before exit).  A
// crash can therefore tear the final record — a partial header, a
// short body, or a checksum mismatch.  Open detects the torn tail,
// truncates the segment back to the last intact record, and keeps
// every fully-written record before it; it never invents or drops
// intact data.
//
// The package depends only on the standard library and the in-repo
// telemetry registry (optional, for dlsim_store_* metrics and the
// open/replay span).  It knows nothing about job results: values are
// opaque byte payloads keyed by string IDs.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// Size defaults; see Options.
const (
	// DefaultMaxBytes bounds the store's on-disk footprint when
	// Options.MaxBytes is zero.
	DefaultMaxBytes = 256 << 20

	// DefaultSegmentBytes is the target size at which the active
	// segment is sealed and a new one started.
	DefaultSegmentBytes = 8 << 20

	// MaxIDLen bounds record IDs (they are 16-17 byte content hashes
	// in practice).
	MaxIDLen = 256

	// MaxPayloadLen bounds one record's payload.
	MaxPayloadLen = 1 << 30
)

var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("store: closed")

	// ErrIDTooLong rejects Put/Delete IDs beyond MaxIDLen.
	ErrIDTooLong = errors.New("store: id too long")

	// ErrPayloadTooLarge rejects Put payloads beyond MaxPayloadLen.
	ErrPayloadTooLarge = errors.New("store: payload too large")
)

const (
	magic         = "DLSTORE1"
	headerLen     = 8 // u32 length + u32 crc
	flagTombstone = 1 << 0
)

// Options configures Open.
type Options struct {
	// MaxBytes bounds the total on-disk size across all segments.
	// Exceeding it triggers compaction; if the live set alone exceeds
	// it, the oldest live entries are dropped (reported via OnDrop).
	// Zero means DefaultMaxBytes; negative means unbounded.
	MaxBytes int64

	// SegmentBytes is the size at which the active segment rolls
	// over.  Zero picks DefaultSegmentBytes, clamped to a quarter of
	// MaxBytes so a bounded store always spans several segments.
	SegmentBytes int64

	// Metrics is the telemetry registry the store registers its
	// dlsim_store_* instruments in.  Nil disables metrics.
	Metrics *telemetry.Registry

	// Tracer, when set, records the open/replay work as the span tree
	// "store-open" (segments scanned, records replayed, tail
	// recoveries) addressable via the tracer like any job trace.
	Tracer *telemetry.Tracer

	// OnDrop is called — outside the store's lock — with the ID of
	// every live entry dropped by size-bounded compaction.  The
	// serving layer uses it to remember "gone" IDs for 410 responses.
	// Settable later via Store.OnDrop.
	OnDrop func(id string)
}

// recLoc locates one live record inside a segment.
type recLoc struct {
	seg  *segment
	off  int64 // record start (header)
	size int64 // header + body
}

// segment is one append-only file.
type segment struct {
	seq  uint64
	path string
	f    *os.File
	size int64 // validated bytes (magic + intact records)
	live int64 // bytes of records currently referenced by the index
}

// metrics is the store's instrument set (all nil-safe when disabled).
type metrics struct {
	hits, misses, writes     *telemetry.Counter
	writeErrors, compactions *telemetry.Counter
	dropped, torn            *telemetry.Counter
	bytes, segments, entries *telemetry.Gauge
	replayed                 *telemetry.Counter
}

func newStoreMetrics(reg *telemetry.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		hits:        reg.Counter("dlsim_store_hits_total", "Store reads that found the requested entry."),
		misses:      reg.Counter("dlsim_store_misses_total", "Store reads for an unknown or dropped entry."),
		writes:      reg.Counter("dlsim_store_writes_total", "Records appended (puts and tombstones)."),
		writeErrors: reg.Counter("dlsim_store_write_errors_total", "Appends that failed at the filesystem."),
		compactions: reg.Counter("dlsim_store_compactions_total", "Compaction passes run."),
		dropped:     reg.Counter("dlsim_store_dropped_total", "Live entries dropped by size-bounded compaction."),
		torn:        reg.Counter("dlsim_store_torn_recovered_total", "Torn tail records truncated during replay."),
		replayed:    reg.Counter("dlsim_store_replayed_records_total", "Records scanned while rebuilding the index on open."),
		bytes:       reg.Gauge("dlsim_store_bytes", "Total on-disk size of all segment files."),
		segments:    reg.Gauge("dlsim_store_segments", "Segment files on disk."),
		entries:     reg.Gauge("dlsim_store_entries", "Live entries in the index."),
	}
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	Entries       int    `json:"entries"`
	Segments      int    `json:"segments"`
	Bytes         int64  `json:"bytes"`
	LiveBytes     int64  `json:"live_bytes"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Writes        uint64 `json:"writes"`
	Compactions   uint64 `json:"compactions"`
	Dropped       uint64 `json:"dropped"`
	TornRecovered uint64 `json:"torn_recovered"`
	Replayed      uint64 `json:"replayed"`
}

// Store is a disk-backed content-addressed byte store.  Safe for
// concurrent use.
type Store struct {
	dir       string
	maxBytes  int64 // <=0 means unbounded
	segTarget int64
	m         *metrics
	mu        sync.Mutex
	segs      []*segment // ascending seq; last is active
	index     map[string]recLoc
	nextSeq   uint64
	closed    bool
	onDrop    func(string)
	// counters mirrored locally so Stats works without a registry
	hits, misses, writes, compactions, droppedN, torn, replayed uint64
}

// Open opens (or creates) the store in dir, rebuilding the index by
// scanning every segment and truncating a torn tail record.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	maxBytes := opts.MaxBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	segTarget := opts.SegmentBytes
	if segTarget <= 0 {
		segTarget = DefaultSegmentBytes
		if maxBytes > 0 && maxBytes/4 < segTarget {
			segTarget = maxBytes / 4
		}
	}
	if segTarget < 4096 {
		segTarget = 4096
	}
	s := &Store{
		dir:       dir,
		maxBytes:  maxBytes,
		segTarget: segTarget,
		m:         newStoreMetrics(opts.Metrics),
		index:     make(map[string]recLoc),
		nextSeq:   1,
		onDrop:    opts.OnDrop,
	}

	tr := opts.Tracer.Start("store-open")
	sp := tr.Root()
	if sp != nil {
		sp.SetAttr("dir", dir)
	}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		seq, ok := seqOfPath(path)
		if !ok {
			continue // foreign file; leave it alone
		}
		seg, err := s.openSegment(path, seq, sp)
		if err != nil {
			s.closeAll()
			sp.End()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	if len(s.segs) == 0 {
		seg, err := s.newSegment()
		if err != nil {
			sp.End()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	if sp != nil {
		sp.SetAttr("segments", strconv.Itoa(len(s.segs)))
		sp.SetAttr("entries", strconv.Itoa(len(s.index)))
		sp.SetAttr("replayed", strconv.FormatUint(s.replayed, 10))
		sp.SetAttr("torn_recovered", strconv.FormatUint(s.torn, 10))
		sp.End()
	}
	s.publishGauges()
	return s, nil
}

// seqOfPath extracts the sequence number from a segment path.
func seqOfPath(path string) (uint64, bool) {
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "seg-") || !strings.HasSuffix(base, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(base[4:len(base)-4], 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016x.seg", seq))
}

// newSegment creates the next empty segment file with its magic.
func (s *Store) newSegment() (*segment, error) {
	seq := s.nextSeq
	s.nextSeq++
	path := segPath(s.dir, seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return &segment{seq: seq, path: path, f: f, size: int64(len(magic))}, nil
}

// openSegment opens an existing segment, replays its records into the
// index (last write wins, tombstones delete) and truncates a torn
// tail.  sp, when non-nil, gets one child span per segment.
func (s *Store) openSegment(path string, seq uint64, sp *telemetry.Span) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	seg := &segment{seq: seq, path: path, f: f}
	child := sp.Child("replay-segment")
	if child != nil {
		child.SetAttr("path", filepath.Base(path))
	}
	defer child.End()

	size := fi.Size()
	if size < int64(len(magic)) {
		// A segment torn before its header finished: reset it.
		if err := s.resetSegment(seg); err != nil {
			f.Close()
			return nil, err
		}
		s.noteTorn()
		return seg, nil
	}
	hdr := make([]byte, len(magic))
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if string(hdr) != magic {
		f.Close()
		return nil, fmt.Errorf("store: %s: bad magic %q", path, hdr)
	}

	off := int64(len(magic))
	var buf [headerLen]byte
	records := 0
	for off < size {
		if size-off < headerLen {
			break // torn header
		}
		if _, err := f.ReadAt(buf[:], off); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		bodyLen := int64(binary.LittleEndian.Uint32(buf[0:4]))
		wantCRC := binary.LittleEndian.Uint32(buf[4:8])
		if bodyLen < 3 || bodyLen > MaxPayloadLen+3+MaxIDLen || off+headerLen+bodyLen > size {
			break // implausible length or body runs past EOF: torn
		}
		body := make([]byte, bodyLen)
		if _, err := f.ReadAt(body, off+headerLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			break // corrupt or torn body
		}
		flags := body[0]
		idLen := int(binary.LittleEndian.Uint16(body[1:3]))
		if idLen == 0 || idLen > MaxIDLen || int64(3+idLen) > bodyLen {
			break
		}
		id := string(body[3 : 3+idLen])
		recSize := headerLen + bodyLen
		if prev, ok := s.index[id]; ok {
			prev.seg.live -= prev.size
		}
		if flags&flagTombstone != 0 {
			delete(s.index, id)
		} else {
			s.index[id] = recLoc{seg: seg, off: off, size: recSize}
			seg.live += recSize
		}
		off += recSize
		records++
	}
	s.replayed += uint64(records)
	if s.m != nil {
		s.m.replayed.Add(uint64(records))
	}
	if child != nil {
		child.SetAttr("records", strconv.Itoa(records))
	}
	if off < size {
		// Torn tail: drop the partial record, keep everything intact
		// before it.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
		s.noteTorn()
		if child != nil {
			child.SetAttr("torn_at", strconv.FormatInt(off, 10))
		}
	}
	seg.size = off
	return seg, nil
}

// resetSegment truncates a segment to an empty, valid state.
func (s *Store) resetSegment(seg *segment) error {
	if err := seg.f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := seg.f.WriteAt([]byte(magic), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg.size = int64(len(magic))
	seg.live = 0
	return nil
}

func (s *Store) noteTorn() {
	s.torn++
	if s.m != nil {
		s.m.torn.Inc()
	}
}

func (s *Store) closeAll() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
}

// OnDrop registers fn to receive the ID of every live entry dropped
// by compaction.  Called outside the store's lock.
func (s *Store) OnDrop(fn func(id string)) {
	s.mu.Lock()
	s.onDrop = fn
	s.mu.Unlock()
}

// encodeRecord builds one on-disk record.
func encodeRecord(id string, payload []byte, flags byte) []byte {
	bodyLen := 3 + len(id) + len(payload)
	rec := make([]byte, headerLen+bodyLen)
	body := rec[headerLen:]
	body[0] = flags
	binary.LittleEndian.PutUint16(body[1:3], uint16(len(id)))
	copy(body[3:], id)
	copy(body[3+len(id):], payload)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(bodyLen))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(body))
	return rec
}

// Put stores payload under id, superseding any previous record with
// the same id.  The append lands in the OS page cache; durability is
// established by Snapshot/Close (or sooner by the OS).  Exceeding the
// size bound triggers compaction inline.
func (s *Store) Put(id string, payload []byte) error {
	if len(id) == 0 || len(id) > MaxIDLen {
		return ErrIDTooLong
	}
	if len(payload) > MaxPayloadLen {
		return ErrPayloadTooLarge
	}
	s.mu.Lock()
	dropped, err := s.putLocked(id, payload, 0)
	s.mu.Unlock()
	s.notifyDropped(dropped)
	return err
}

// Delete removes id by appending a tombstone.  Deleting an unknown id
// is a no-op.
func (s *Store) Delete(id string) error {
	if len(id) == 0 || len(id) > MaxIDLen {
		return ErrIDTooLong
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, ok := s.index[id]; !ok {
		s.mu.Unlock()
		return nil
	}
	dropped, err := s.putLocked(id, nil, flagTombstone)
	s.mu.Unlock()
	s.notifyDropped(dropped)
	return err
}

func (s *Store) notifyDropped(dropped []string) {
	if len(dropped) == 0 {
		return
	}
	s.mu.Lock()
	fn := s.onDrop
	s.mu.Unlock()
	if fn == nil {
		return
	}
	for _, id := range dropped {
		fn(id)
	}
}

// putLocked appends one record and runs compaction if the bound is
// exceeded, returning the IDs compaction dropped.  Caller holds s.mu.
func (s *Store) putLocked(id string, payload []byte, flags byte) ([]string, error) {
	if s.closed {
		return nil, ErrClosed
	}
	rec := encodeRecord(id, payload, flags)
	active := s.segs[len(s.segs)-1]
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		if s.m != nil {
			s.m.writeErrors.Inc()
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	off := active.size
	active.size += int64(len(rec))
	if prev, ok := s.index[id]; ok {
		prev.seg.live -= prev.size
	}
	if flags&flagTombstone != 0 {
		delete(s.index, id)
	} else {
		s.index[id] = recLoc{seg: active, off: off, size: int64(len(rec))}
		active.live += int64(len(rec))
	}
	s.writes++
	if s.m != nil {
		s.m.writes.Inc()
	}

	var dropped []string
	var err error
	if active.size >= s.segTarget {
		if serr := s.rotateLocked(); serr != nil && err == nil {
			err = serr
		}
	}
	if s.maxBytes > 0 && s.totalBytesLocked() > s.maxBytes {
		dropped, err = s.compactLocked()
	}
	s.publishGauges()
	return dropped, err
}

// rotateLocked seals the active segment (fsync) and starts a new one.
func (s *Store) rotateLocked() error {
	active := s.segs[len(s.segs)-1]
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg, err := s.newSegment()
	if err != nil {
		return err
	}
	s.segs = append(s.segs, seg)
	return nil
}

func (s *Store) totalBytesLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

func (s *Store) liveBytesLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.live
	}
	return n
}

// compactLocked rewrites live records into fresh segments in append
// order, dropping dead bytes; if the live set alone exceeds the
// bound, the oldest live entries are dropped first and their IDs
// returned.  New segments are written and fsynced before the old
// files are removed, so a crash mid-compaction loses nothing (it can
// only resurrect dropped entries, which replay then re-drops on the
// next overflow).
func (s *Store) compactLocked() ([]string, error) {
	type entry struct {
		id  string
		loc recLoc
	}
	entries := make([]entry, 0, len(s.index))
	for id, loc := range s.index {
		entries = append(entries, entry{id, loc})
	}
	// Append order: segment sequence, then offset.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].loc, entries[j].loc
		if a.seg.seq != b.seg.seq {
			return a.seg.seq < b.seg.seq
		}
		return a.off < b.off
	})

	liveTotal := s.liveBytesLocked()
	// Budget the live set below the bound, leaving headroom for the
	// per-segment magic of the rewritten files.
	budget := s.maxBytes - int64(len(magic))*(liveTotal/s.segTarget+1)
	var dropped []string
	for len(entries) > 0 && liveTotal > budget {
		e := entries[0]
		entries = entries[1:]
		liveTotal -= e.loc.size
		delete(s.index, e.id)
		dropped = append(dropped, e.id)
	}
	s.droppedN += uint64(len(dropped))
	if s.m != nil {
		s.m.dropped.Add(uint64(len(dropped)))
	}

	// Rewrite survivors into fresh segments.
	var newSegs []*segment
	fail := func(err error) ([]string, error) {
		for _, seg := range newSegs {
			seg.f.Close()
			os.Remove(seg.path)
		}
		return dropped, err
	}
	cur, err := s.newSegment()
	if err != nil {
		return fail(err)
	}
	newSegs = append(newSegs, cur)
	for _, e := range entries {
		rec := make([]byte, e.loc.size)
		if _, err := e.loc.seg.f.ReadAt(rec, e.loc.off); err != nil {
			return fail(fmt.Errorf("store: compaction read: %w", err))
		}
		if cur.size+int64(len(rec)) > s.segTarget && cur.size > int64(len(magic)) {
			if err := cur.f.Sync(); err != nil {
				return fail(fmt.Errorf("store: %w", err))
			}
			cur, err = s.newSegment()
			if err != nil {
				return fail(err)
			}
			newSegs = append(newSegs, cur)
		}
		if _, err := cur.f.WriteAt(rec, cur.size); err != nil {
			return fail(fmt.Errorf("store: compaction write: %w", err))
		}
		s.index[e.id] = recLoc{seg: cur, off: cur.size, size: int64(len(rec))}
		cur.size += int64(len(rec))
		cur.live += int64(len(rec))
	}
	for _, seg := range newSegs {
		if err := seg.f.Sync(); err != nil {
			return fail(fmt.Errorf("store: %w", err))
		}
	}
	if err := s.syncDir(); err != nil {
		return fail(err)
	}
	// Point of no return: retire the old files.
	old := s.segs
	s.segs = newSegs
	for _, seg := range old {
		seg.f.Close()
		os.Remove(seg.path)
	}
	s.compactions++
	if s.m != nil {
		s.m.compactions.Inc()
	}
	return dropped, nil
}

// Get returns the payload stored under id.  The returned slice is
// freshly allocated and owned by the caller.
func (s *Store) Get(id string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	loc, ok := s.index[id]
	if !ok {
		s.misses++
		if s.m != nil {
			s.m.misses.Inc()
		}
		return nil, false, nil
	}
	rec := make([]byte, loc.size)
	if _, err := loc.seg.f.ReadAt(rec, loc.off); err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	body := rec[headerLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(rec[4:8]) {
		return nil, false, fmt.Errorf("store: %s: checksum mismatch reading %q (bit rot?)", loc.seg.path, id)
	}
	idLen := int(binary.LittleEndian.Uint16(body[1:3]))
	s.hits++
	if s.m != nil {
		s.m.hits.Inc()
	}
	payload := make([]byte, len(body)-3-idLen)
	copy(payload, body[3+idLen:])
	return payload, true, nil
}

// Has reports whether id is live in the index, without counting a hit
// or miss.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// IDs returns the live IDs in unspecified order.
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index))
	for id := range s.index {
		out = append(out, id)
	}
	return out
}

// Snapshot flushes the active segment (and the directory entry) to
// stable storage.  Sealed segments were synced at rotation.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	active := s.segs[len(s.segs)-1]
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.syncDir()
}

func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, io.EOF) {
		// Some filesystems reject directory fsync; the segment fsync
		// above is the load-bearing one.
		return nil
	}
	return nil
}

// Close snapshots and closes every segment.  Further operations
// return ErrClosed.  Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.snapshotLocked()
	s.closeAll()
	s.closed = true
	return err
}

// Stats reads the store's counters and sizes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:       len(s.index),
		Segments:      len(s.segs),
		Bytes:         s.totalBytesLocked(),
		LiveBytes:     s.liveBytesLocked(),
		Hits:          s.hits,
		Misses:        s.misses,
		Writes:        s.writes,
		Compactions:   s.compactions,
		Dropped:       s.droppedN,
		TornRecovered: s.torn,
		Replayed:      s.replayed,
	}
}

// publishGauges mirrors sizes into the telemetry gauges.  Caller
// holds s.mu.
func (s *Store) publishGauges() {
	if s.m == nil {
		return
	}
	s.m.bytes.Set(s.totalBytesLocked())
	s.m.segments.Set(int64(len(s.segs)))
	s.m.entries.Set(int64(len(s.index)))
}
