package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// recordSize is the on-disk footprint of one record: the u32 length +
// u32 CRC header, then flags byte, u16 id length, id, payload.
func recordSize(id string, payload []byte) int64 {
	return int64(headerLen + 3 + len(id) + len(payload))
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

// soleSegment returns the path of the only segment file in dir,
// failing the test if there is more or less than one.
func soleSegment(t *testing.T, dir string) string {
	t.Helper()
	names := segFiles(t, dir)
	if len(names) != 1 {
		t.Fatalf("want exactly one segment, have %v", names)
	}
	return names[0]
}

// writeN fills a fresh store with n records id-00..id-NN carrying
// distinguishable payloads, closes it, and returns the payloads.
func writeN(t *testing.T, dir string, n int) map[string][]byte {
	t.Helper()
	s := open(t, dir, Options{})
	want := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("id-%02d", i)
		val := []byte(fmt.Sprintf("payload-%02d-%s", i, "0123456789abcdef"))
		want[id] = val
		mustPut(t, s, id, val)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// truncateFile chops the file to newSize, simulating a crash that
// tore the final append.
func truncateFile(t *testing.T, path string, newSize int64) {
	t.Helper()
	if err := os.Truncate(path, newSize); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// A crash mid-append leaves a partial body at the tail.  Reopen must
// recover every fully-written record, surface none of the partial
// one, and truncate the file back to the last intact record.
func TestTornTailMidBodyRecovers(t *testing.T) {
	dir := t.TempDir()
	want := writeN(t, dir, 10)
	seg := soleSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop 5 bytes off: the final record loses part of its payload.
	truncateFile(t, seg, fi.Size()-5)

	s := open(t, dir, Options{})
	if s.Len() != 9 {
		t.Fatalf("Len = %d, want 9 (all full records, no partials)", s.Len())
	}
	if s.Has("id-09") {
		t.Fatal("partial record id-09 surfaced after recovery")
	}
	for i := 0; i < 9; i++ {
		id := fmt.Sprintf("id-%02d", i)
		if got := mustGet(t, s, id); string(got) != string(want[id]) {
			t.Fatalf("%s = %q, want %q", id, got, want[id])
		}
	}
	if st := s.Stats(); st.TornRecovered != 1 {
		t.Fatalf("torn_recovered = %d, want 1", st.TornRecovered)
	}
	// The torn bytes must be gone from disk: the file ends exactly at
	// the last intact record.
	fi2, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := fi.Size() - recordSize("id-09", want["id-09"])
	if fi2.Size() != wantSize {
		t.Fatalf("post-recovery size = %d, want %d", fi2.Size(), wantSize)
	}

	// Appends after recovery land where the torn record was; the next
	// replay must see old and new records alike.
	mustPut(t, s, "id-09", want["id-09"])
	s.Close()
	s2 := open(t, dir, Options{})
	if s2.Len() != 10 {
		t.Fatalf("after re-put Len = %d, want 10", s2.Len())
	}
	if got := mustGet(t, s2, "id-09"); string(got) != string(want["id-09"]) {
		t.Fatalf("id-09 = %q after recovery+rewrite", got)
	}
	if st := s2.Stats(); st.TornRecovered != 0 {
		t.Fatalf("clean reopen reported torn_recovered = %d", st.TornRecovered)
	}
}

// A crash can also tear mid-header (fewer than 8 bytes of the length
// and CRC written).
func TestTornTailMidHeaderRecovers(t *testing.T) {
	dir := t.TempDir()
	want := writeN(t, dir, 3)
	seg := soleSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Leave 4 bytes of the final record: half a header, no body.
	cut := fi.Size() - recordSize("id-02", want["id-02"]) + 4
	truncateFile(t, seg, cut)

	s := open(t, dir, Options{})
	if s.Len() != 2 || s.Has("id-02") {
		t.Fatalf("Len = %d, Has(id-02) = %v; want 2 records and no partial", s.Len(), s.Has("id-02"))
	}
	if st := s.Stats(); st.TornRecovered != 1 {
		t.Fatalf("torn_recovered = %d, want 1", st.TornRecovered)
	}
}

// A tail record whose bytes are all present but corrupt (e.g. the
// crash interleaved with a partial sector write) fails its checksum
// and is discarded like any other torn tail.
func TestTornTailBadChecksumRecovers(t *testing.T) {
	dir := t.TempDir()
	want := writeN(t, dir, 3)
	seg := soleSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the final payload byte: length still plausible, CRC wrong.
	flipByte(t, seg, fi.Size()-1)

	s := open(t, dir, Options{})
	if s.Len() != 2 || s.Has("id-02") {
		t.Fatalf("Len = %d, Has(id-02) = %v; want corrupt tail dropped", s.Len(), s.Has("id-02"))
	}
	for _, id := range []string{"id-00", "id-01"} {
		if got := mustGet(t, s, id); string(got) != string(want[id]) {
			t.Fatalf("%s = %q, want %q", id, got, want[id])
		}
	}
	if st := s.Stats(); st.TornRecovered != 1 {
		t.Fatalf("torn_recovered = %d, want 1", st.TornRecovered)
	}
}

// Replay stops at the first bad record: corruption in the middle of a
// segment conservatively truncates everything from that point on.
// Records before the corruption always survive.
func TestMidFileCorruptionTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	want := writeN(t, dir, 5)
	seg := soleSegment(t, dir)
	// Corrupt a payload byte inside record #2 (records 0 and 1 intact).
	off := int64(len(magic))
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("id-%02d", i)
		off += recordSize(id, want[id])
	}
	flipByte(t, seg, off+recordSize("id-02", want["id-02"])-1)

	s := open(t, dir, Options{})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (replay stops at first corrupt record)", s.Len())
	}
	for _, id := range []string{"id-00", "id-01"} {
		if got := mustGet(t, s, id); string(got) != string(want[id]) {
			t.Fatalf("%s = %q, want %q", id, got, want[id])
		}
	}
	for _, id := range []string{"id-02", "id-03", "id-04"} {
		if s.Has(id) {
			t.Fatalf("%s survived past a corrupt predecessor", id)
		}
	}
}

// A segment torn before even its magic finished writing is reset to
// an empty valid segment rather than rejected.
func TestShortSegmentResets(t *testing.T) {
	dir := t.TempDir()
	writeN(t, dir, 1)
	seg := soleSegment(t, dir)
	truncateFile(t, seg, 3) // less than the 8-byte magic

	s := open(t, dir, Options{})
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after reset", s.Len())
	}
	if st := s.Stats(); st.TornRecovered != 1 {
		t.Fatalf("torn_recovered = %d, want 1", st.TornRecovered)
	}
	mustPut(t, s, "fresh", []byte("ok"))
	s.Close()
	s2 := open(t, dir, Options{})
	if got := mustGet(t, s2, "fresh"); string(got) != "ok" {
		t.Fatalf("fresh = %q after reset+reuse", got)
	}
}

// A full-length file that is not a store segment must be rejected,
// not silently clobbered.
func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	writeN(t, dir, 1)
	seg := soleSegment(t, dir)
	flipByte(t, seg, 0)

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a segment with corrupt magic")
	}
}
