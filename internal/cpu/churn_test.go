package cpu

import (
	"strings"
	"testing"

	"repro/internal/linker"
	"repro/internal/objfile"
)

// churnLib builds generation `alu` of a small churnable library: a
// dispatch function jfn, a shorter alternate implementation impl_a a
// JIT-style rebind can swap in, and a helper.  Different alu weights
// give different generations; smaller weights fit the original span so
// reloads reuse the address range.
func churnLib(alu int) *objfile.Object {
	lib := objfile.New("libdyn")
	lib.AddData("ld", 8192)
	f := lib.NewFunc("jfn")
	f.ALU(alu)
	f.Load("ld", 0, 32)
	f.Store("ld", 256, 16, 3)
	f.Ret()
	lib.NewFunc("impl_a").ALU(4).Ret()
	lib.NewFunc("hfn").ALU(8).Ret()
	return lib
}

// churnApp builds an app with four entries: main exercises the library,
// warm populates the ABTB through repeated dispatch calls, flip rewrites
// the jfn GOT slot to impl_a from guest code (the jit workload's
// mechanism), and callonly re-dispatches after the flip.
func churnApp() *objfile.Object {
	app := objfile.New("app")
	app.AddData("d", 4096)
	m := app.NewFunc("main")
	for i := 0; i < 4; i++ {
		m.Call("jfn")
		m.ALU(2)
		m.Call("hfn")
	}
	m.Halt()
	w := app.NewFunc("warm")
	for i := 0; i < 6; i++ {
		w.Call("jfn")
		w.ALU(3)
	}
	w.Halt()
	fl := app.NewFunc("flip")
	fl.RebindImport("jfn", "impl_a")
	fl.Halt()
	co := app.NewFunc("callonly")
	for i := 0; i < 6; i++ {
		co.Call("jfn")
		co.ALU(3)
	}
	co.Halt()
	return app
}

func churnImage(t *testing.T) *linker.Image {
	t.Helper()
	im, err := linker.Link(churnApp(), []*objfile.Object{churnLib(20)}, linker.Options{Mode: linker.BindLazy, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// churnOnce rotates libdyn to its next generation through the CPU's
// LinkerStore — the production path workload churn takes.
func churnOnce(t *testing.T, c *CPU, alu int, demand bool) {
	t.Helper()
	im := c.Image()
	if err := im.Unload("libdyn", c.LinkerStore); err != nil {
		t.Fatal(err)
	}
	if _, err := im.Load(churnLib(alu), linker.LoadOptions{Demand: demand, Write: c.LinkerStore}); err != nil {
		t.Fatal(err)
	}
}

// TestStaleProgramTraps is the pooled-trace staleness regression: after
// an unload, a compiled trace built against the old image generation
// must trap — on Run and on re-installation — rather than branch into
// freed code, and a recompile against the reloaded image must run.
func TestStaleProgramTraps(t *testing.T) {
	im := churnImage(t)
	c := New(im, DefaultConfig())
	stale := Compile(im, c.cfg.L1I.LineBytes)
	if err := c.SetProgram(stale); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}

	if err := im.Unload("libdyn", c.LinkerStore); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSymbol("main", 0); err == nil {
		t.Fatal("compiled run through an unloaded library succeeded")
	} else if !strings.Contains(err.Error(), "stale compiled trace") {
		t.Fatalf("unhelpful stale-trace error: %v", err)
	}
	if err := c.SetProgram(stale); err == nil {
		t.Fatal("stale program re-installed without error")
	} else if !strings.Contains(err.Error(), "generation") {
		t.Fatalf("unhelpful stale SetProgram error: %v", err)
	}

	// The interpreter must trap too: the tombstoned GOT word routes the
	// call to the resolver, which refuses to resolve through a dead
	// module instead of returning a freed address.
	if err := c.SetProgram(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSymbol("main", 0); err == nil {
		t.Fatal("interpreted call into an unloaded library succeeded")
	}

	// Reload + recompile restores execution.
	if _, err := im.Load(churnLib(12), linker.LoadOptions{Write: c.LinkerStore}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetProgram(Compile(im, c.cfg.L1I.LineBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatalf("recompiled run after reload: %v", err)
	}
}

// TestFastForwardGOTStoreSnoop pins the sampled-path bug this PR fixes:
// a fast-forwarded stretch containing a GOT store (here a JIT-style
// rebind of jfn to impl_a) must snoop the store into the ABTB's Bloom
// filter and flush the stale trampoline mapping, exactly as the
// detailed path would.  Without the snoop the fast-forwarded CPU keeps
// a redirect to the old implementation, and the next detailed run
// retires a different instruction stream than an all-detailed CPU.
func TestFastForwardGOTStoreSnoop(t *testing.T) {
	cfg := EnhancedConfig()
	cfg.Seed = 7
	mk := func() *CPU {
		c := New(churnImage(t), cfg)
		if err := c.SetProgram(Compile(c.Image(), cfg.L1I.LineBytes)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	detailed, ffwd := mk(), mk()

	for _, c := range []*CPU{detailed, ffwd} {
		if _, err := c.RunSymbol("warm", 0); err != nil {
			t.Fatal(err)
		}
	}
	if ffwd.ABTB().Len() == 0 {
		t.Fatal("warm-up did not populate the ABTB; the test needs a live mapping to go stale")
	}

	// The flip runs detailed on one CPU, fast-forwarded on the other.
	if _, err := detailed.RunSymbol("flip", 0); err != nil {
		t.Fatal(err)
	}
	flushes := ffwd.ABTB().FlushingStores()
	if err := ffwd.FastForwardSymbol("flip"); err != nil {
		t.Fatal(err)
	}
	if got := ffwd.ABTB().FlushingStores(); got == flushes {
		t.Error("fast-forwarded GOT store did not flush the ABTB (store snoop dropped)")
	}

	rd, err := detailed.RunSymbol("callonly", 0)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := ffwd.RunSymbol("callonly", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Instructions != rf.Instructions {
		t.Fatalf("post-skip run retired %d instructions, all-detailed retired %d: stale ABTB redirect executed the old implementation",
			rf.Instructions, rd.Instructions)
	}
	imA, imB := detailed.Image(), ffwd.Image()
	for mi, m := range imA.Modules() {
		for a := m.DataBase; a < m.DataEnd; a += 8 {
			if va, vb := imA.Memory().Read64(a), imB.Memory().Read64(a); va != vb {
				t.Fatalf("memory diverged at %#x in %s: %#x vs %#x", a, imB.Modules()[mi].Name, va, vb)
			}
		}
	}
	if imA.Resolutions() != imB.Resolutions() {
		t.Fatalf("resolutions %d vs %d", imA.Resolutions(), imB.Resolutions())
	}
}

// TestChurnBitIdentity extends the compiled path's core contract across
// a mid-stream unload/reload (with demand paging on): the recompiled
// trace must replay with counters, trampoline histograms and memory
// bit-identical to the interpreter.
func TestChurnBitIdentity(t *testing.T) {
	cfg := EnhancedConfig()
	cfg.Seed = 3
	interp := New(churnImage(t), cfg)
	compiled := New(churnImage(t), cfg)
	if err := compiled.SetProgram(Compile(compiled.Image(), cfg.L1I.LineBytes)); err != nil {
		t.Fatal(err)
	}

	run := func(label string) {
		t.Helper()
		ri, errI := interp.RunSymbol("main", 0)
		rc, errC := compiled.RunSymbol("main", 0)
		if errI != nil || errC != nil {
			t.Fatalf("%s: %v / %v", label, errI, errC)
		}
		if ri != rc {
			t.Fatalf("%s: results %+v vs %+v", label, ri, rc)
		}
		comparePair(t, label, interp, compiled)
	}
	run("pre-churn")

	churnOnce(t, interp, 12, true)
	churnOnce(t, compiled, 12, true)
	if err := compiled.SetProgram(Compile(compiled.Image(), cfg.L1I.LineBytes)); err != nil {
		t.Fatal(err)
	}
	run("post-churn run 1")
	run("post-churn run 2")
	if interp.PageFaults() == 0 {
		t.Error("demand-loaded reload took no page faults")
	}
	if interp.PageFaults() != compiled.PageFaults() {
		t.Errorf("page faults diverged: interpreted %d, compiled %d", interp.PageFaults(), compiled.PageFaults())
	}
}

// TestDemandPagingCharges: first touch of each demand-mapped page
// faults exactly once, at exactly PageFaultPenalty cycles — a
// demand-loaded run costs the eager-loaded run plus faults×penalty,
// and a repeat run faults no further.
func TestDemandPagingCharges(t *testing.T) {
	mk := func(demand bool) *CPU {
		c := New(churnImage(t), DefaultConfig())
		churnOnce(t, c, 12, demand)
		return c
	}
	eager, lazy := mk(false), mk(true)

	pending := lazy.Image().DemandPending()
	if pending == 0 {
		t.Fatal("demand load left no pending pages")
	}
	re, err := eager.RunSymbol("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := lazy.RunSymbol("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	faults := lazy.PageFaults()
	if faults == 0 || int(faults) > pending {
		t.Fatalf("page faults = %d, want in (0, %d]", faults, pending)
	}
	if eager.PageFaults() != 0 {
		t.Errorf("eager run took %d page faults", eager.PageFaults())
	}
	if want := re.Cycles + faults*uint64(lazy.cfg.PageFaultPenalty); rl.Cycles != want {
		t.Errorf("demand run cost %d cycles, want eager %d + %d faults × %d penalty = %d",
			rl.Cycles, re.Cycles, faults, lazy.cfg.PageFaultPenalty, want)
	}
	if got := lazy.Image().DemandPending(); got != pending-int(faults) {
		t.Errorf("DemandPending = %d after run, want %d", got, pending-int(faults))
	}
	if _, err := lazy.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if lazy.PageFaults() != faults {
		t.Errorf("repeat run re-faulted: %d, want %d", lazy.PageFaults(), faults)
	}
}

// TestFastForwardDrainsDemandPages: a fast-forwarded stretch maps the
// pages its skipped fetches touch — silently, with no fault count or
// penalty (measurement state does not accrue while skipping) — so a
// detailed run resumed afterwards faults on none of them.
func TestFastForwardDrainsDemandPages(t *testing.T) {
	c := New(churnImage(t), DefaultConfig())
	churnOnce(t, c, 12, true)
	if err := c.SetProgram(Compile(c.Image(), c.cfg.L1I.LineBytes)); err != nil {
		t.Fatal(err)
	}
	pending := c.Image().DemandPending()
	if err := c.FastForwardSymbol("main"); err != nil {
		t.Fatal(err)
	}
	if c.PageFaults() != 0 {
		t.Errorf("fast-forward charged %d page faults, want 0", c.PageFaults())
	}
	if got := c.Image().DemandPending(); got >= pending {
		t.Errorf("fast-forward mapped no pages: pending %d -> %d", pending, got)
	}
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if c.PageFaults() != 0 {
		t.Errorf("detailed run re-faulted on fast-forward-mapped pages: %d", c.PageFaults())
	}
}
