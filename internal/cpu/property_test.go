package cpu

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/linker"
	"repro/internal/objfile"
)

// genRandomProgram builds a random but valid application + libraries:
// random function counts, bodies mixing ALU/loads/stores/conditionals,
// random call graphs (app → libs, lib i → lib j>i), function pointers,
// and occasional ifuncs.  It is the input generator for the
// cross-configuration property tests below.
func genRandomProgram(seed uint64) (*objfile.Object, []*objfile.Object) {
	rng := rand.New(rand.NewPCG(seed, 0xbadc0de))

	nLibs := 1 + rng.IntN(3)
	libs := make([]*objfile.Object, nLibs)
	names := make([][]string, nLibs)
	for i := range libs {
		lib := objfile.New(fmt.Sprintf("lib%d", i))
		lib.AddData("d", 4096)
		n := 2 + rng.IntN(6)
		names[i] = make([]string, n)
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("lib%d_f%d", i, j)
			names[i][j] = name
			f := lib.NewFunc(name)
			emitRandomBody(rng, f, "d")
			// Cross-library call to a later library.
			if i+1 < nLibs && rng.IntN(3) == 0 {
				// Later lib names are deterministic by construction.
				li := i + 1 + rng.IntN(nLibs-i-1)
				f.Call(fmt.Sprintf("lib%d_f%d", li, 0))
			}
			f.Ret()
		}
		// Occasionally export an ifunc over two variants.
		if n >= 2 && rng.IntN(2) == 0 {
			lib.DeclareIFunc(fmt.Sprintf("lib%d_ifn", i), names[i][0], names[i][1])
			names[i] = append(names[i], fmt.Sprintf("lib%d_ifn", i))
		}
		libs[i] = lib
	}

	app := objfile.New("app")
	app.AddData("heap", 8192)
	// A vtable slot for indirect calls.
	app.AddData("vt", 16)
	app.InitPtr("vt", 0, names[0][0])
	m := app.NewFunc("main")
	calls := 3 + rng.IntN(12)
	for i := 0; i < calls; i++ {
		switch rng.IntN(5) {
		case 0:
			m.CallPtr("vt", 0)
		default:
			li := rng.IntN(nLibs)
			m.Call(names[li][rng.IntN(len(names[li]))])
		}
		if rng.IntN(3) == 0 {
			m.ALU(1 + rng.IntN(6))
		}
		if rng.IntN(4) == 0 {
			m.Load("heap", uint64(rng.IntN(512))*8, uint64(1+rng.IntN(16)))
		}
	}
	m.Halt()
	return app, libs
}

func emitRandomBody(rng *rand.Rand, f *objfile.Func, region string) {
	for n := 1 + rng.IntN(4); n > 0; n-- {
		switch rng.IntN(4) {
		case 0:
			f.ALU(1 + rng.IntN(8))
		case 1:
			f.Load(region, uint64(rng.IntN(400))*8, uint64(1+rng.IntN(8)))
		case 2:
			f.Store(region, uint64(rng.IntN(400))*8, uint64(1+rng.IntN(8)), rng.Uint64())
		case 3:
			f.CondSkip(uint8(rng.IntN(101)), 1)
			f.ALU(1)
		}
	}
	if rng.IntN(3) == 0 {
		f.ALU(2)
		f.LoopBack(uint8(50+rng.IntN(40)), 2)
	}
}

// TestPropertyRandomProgramsAllModes: every random program must link
// and run to completion under every binding mode and both hardware
// configurations, with deterministic results.
func TestPropertyRandomProgramsAllModes(t *testing.T) {
	modes := []linker.BindingMode{linker.BindLazy, linker.BindNow, linker.BindStatic, linker.BindPatched}
	for seed := uint64(0); seed < 40; seed++ {
		app, libs := genRandomProgram(seed)
		for _, mode := range modes {
			im, err := linker.Link(app, libs, linker.Options{Mode: mode, Seed: seed, IFuncLevel: int(seed % 3)})
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			for _, enhanced := range []bool{false, true} {
				cfg := DefaultConfig()
				if enhanced {
					cfg = EnhancedConfig()
				}
				cfg.Seed = seed
				// Fresh image per CPU: lazy GOT state is mutable.
				im2, err := linker.Link(app, libs, linker.Options{Mode: mode, Seed: seed, IFuncLevel: int(seed % 3)})
				if err != nil {
					t.Fatal(err)
				}
				_ = im
				c := New(im2, cfg)
				for r := 0; r < 3; r++ {
					if _, err := c.RunSymbol("main", 2_000_000); err != nil {
						t.Fatalf("seed %d mode %v enhanced=%v run %d: %v",
							seed, mode, enhanced, r, err)
					}
				}
			}
		}
	}
}

// TestPropertyBaseEnhancedEquivalence: for random lazy-linked
// programs, the enhanced system must (a) produce identical memory
// side effects, (b) retire exactly TrampSkips fewer instructions,
// (c) make identical library calls, and (d) mispredict identically on
// conditional branches.
func TestPropertyBaseEnhancedEquivalence(t *testing.T) {
	for seed := uint64(100); seed < 160; seed++ {
		app, libs := genRandomProgram(seed)
		opts := linker.Options{Mode: linker.BindLazy, Seed: seed}
		imB, err := linker.Link(app, libs, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		imE, err := linker.Link(app, libs, opts)
		if err != nil {
			t.Fatal(err)
		}
		cfgB, cfgE := DefaultConfig(), EnhancedConfig()
		cfgB.Seed, cfgE.Seed = seed, seed
		base, enh := New(imB, cfgB), New(imE, cfgE)
		for r := 0; r < 5; r++ {
			if _, err := base.RunSymbol("main", 2_000_000); err != nil {
				t.Fatalf("seed %d base: %v", seed, err)
			}
			if _, err := enh.RunSymbol("main", 2_000_000); err != nil {
				t.Fatalf("seed %d enhanced: %v", seed, err)
			}
		}
		cb, ce := base.Counters(), enh.Counters()
		if cb.Instructions-ce.Instructions != ce.TrampSkips {
			t.Errorf("seed %d: instruction delta %d != skips %d",
				seed, cb.Instructions-ce.Instructions, ce.TrampSkips)
		}
		if cb.TrampCalls != ce.TrampCalls || cb.Resolutions != ce.Resolutions {
			t.Errorf("seed %d: call/resolution divergence", seed)
		}
		if cb.MispredCond != ce.MispredCond {
			t.Errorf("seed %d: conditional mispredicts diverged %d vs %d",
				seed, cb.MispredCond, ce.MispredCond)
		}
		// Identical data side effects in every module's data segment.
		for mi, mb := range imB.Modules() {
			me := imE.Modules()[mi]
			if mb.DataBase != me.DataBase {
				t.Fatalf("seed %d: layouts diverged", seed)
			}
			for a := mb.GOTEnd; a < mb.DataEnd; a += 8 {
				if imB.Memory().Read64(a) != imE.Memory().Read64(a) {
					t.Fatalf("seed %d: memory divergence at %#x in %s", seed, a, mb.Name)
				}
			}
		}
	}
}

// TestPropertyRebindNeverStale: randomly interleave calls and
// re-bindings of one import between two implementations; after every
// re-bind, the next call must observe the new implementation, on both
// systems.  This drives the Bloom-filter/flush machinery through
// arbitrary schedules — the paper's §3.1 safety argument under attack.
func TestPropertyRebindNeverStale(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x5afe))
		app := objfile.New("app")
		app.NewFunc("main").Call("api").Halt()
		app.NewFunc("bind1").RebindImport("api", "impl1").Halt()
		app.NewFunc("bind2").RebindImport("api", "impl2").Halt()
		lib := objfile.New("lib")
		lib.AddData("out", 8)
		lib.NewFunc("api").Store("out", 0, 1, 1).Ret() // initial = impl1-ish
		lib.NewFunc("impl1").Store("out", 0, 1, 1).Ret()
		lib.NewFunc("impl2").Store("out", 0, 1, 2).Ret()

		for _, enhanced := range []bool{false, true} {
			im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: linker.BindLazy, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			if enhanced {
				cfg = EnhancedConfig()
			}
			c := New(im, cfg)
			lib0 := im.Modules()[1]
			outAddr := (lib0.GOTEnd + 63) &^ 63
			want := uint64(1)
			for op := 0; op < 40; op++ {
				switch rng.IntN(3) {
				case 0:
					if _, err := c.RunSymbol("bind1", 0); err != nil {
						t.Fatal(err)
					}
					want = 1
				case 1:
					if _, err := c.RunSymbol("bind2", 0); err != nil {
						t.Fatal(err)
					}
					want = 2
				default:
					if _, err := c.RunSymbol("main", 0); err != nil {
						t.Fatal(err)
					}
					if got := im.Memory().Read64(outAddr); got != want {
						t.Fatalf("seed %d enhanced=%v op %d: out = %d, want %d (stale redirect!)",
							seed, enhanced, op, got, want)
					}
				}
			}
		}
	}
}
