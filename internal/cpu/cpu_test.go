package cpu

import (
	"errors"
	"testing"

	"repro/internal/abtb"
	"repro/internal/linker"
	"repro/internal/objfile"
)

// buildProgram links a small app with one library of nFuncs functions;
// main calls each library function once, then halts.  Every library
// function stores a distinctive value so architectural effects can be
// compared across hardware configurations.
func buildProgram(t *testing.T, nFuncs int, mode linker.BindingMode) *linker.Image {
	t.Helper()
	app := objfile.New("app")
	main := app.NewFunc("main")
	lib := objfile.New("lib")
	lib.AddData("out", uint64(nFuncs*8))
	for i := 0; i < nFuncs; i++ {
		name := libFuncName(i)
		lib.NewFunc(name).
			ALU(3).
			Store("out", uint64(i*8), 1, uint64(1000+i)).
			Ret()
		main.Call(name)
	}
	main.Halt()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: mode, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func libFuncName(i int) string {
	return "libfn" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func run(t *testing.T, c *CPU, times int) {
	t.Helper()
	for i := 0; i < times; i++ {
		if _, err := c.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStraightLineExecution(t *testing.T) {
	app := objfile.New("app")
	app.NewFunc("main").ALU(5).Halt()
	im, err := linker.Link(app, nil, linker.Options{Mode: linker.BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, DefaultConfig())
	res, err := c.RunSymbol("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 6 {
		t.Errorf("Instructions = %d, want 6", res.Instructions)
	}
	if res.Cycles < res.Instructions {
		t.Errorf("Cycles = %d < Instructions", res.Cycles)
	}
}

func TestLazyBindingEndToEnd(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, DefaultConfig())

	run(t, c, 1)
	cnt := c.Counters()
	if cnt.Resolutions != 4 {
		t.Errorf("Resolutions = %d, want 4 (one per symbol)", cnt.Resolutions)
	}
	// After resolution, the GOT holds the function addresses.
	appMod := im.Modules()[0]
	for i, sym := range appMod.Imports() {
		want, _ := im.Symbol(sym)
		if got := im.Memory().Read64(appMod.GOTSlotAddr(i)); got != want {
			t.Errorf("GOT[%d] = %#x, want %#x", i, got, want)
		}
	}
	// Library side effects happened.
	lib := im.Modules()[1]
	_ = lib

	// Second run: no further resolutions, trampolines execute
	// directly.
	before := c.Counters()
	run(t, c, 1)
	after := c.Counters()
	d := after.Sub(before)
	if d.Resolutions != 0 {
		t.Errorf("second-run Resolutions = %d, want 0", d.Resolutions)
	}
	if d.TrampCalls != 4 {
		t.Errorf("second-run TrampCalls = %d, want 4", d.TrampCalls)
	}
	if d.TrampInstrs != 4 {
		t.Errorf("second-run TrampInstrs = %d, want 4 (one jmp*m each)", d.TrampInstrs)
	}
	if d.TrampSkips != 0 {
		t.Errorf("base system skipped %d trampolines", d.TrampSkips)
	}
}

func TestEnhancedSkipsTrampolines(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, EnhancedConfig())
	run(t, c, 3) // resolve, repopulate, skip
	before := c.Counters()
	run(t, c, 5)
	d := c.Counters().Sub(before)
	if d.TrampCalls != 20 {
		t.Fatalf("TrampCalls = %d, want 20", d.TrampCalls)
	}
	if d.TrampSkips != 20 {
		t.Errorf("TrampSkips = %d, want 20 (all skipped in steady state)", d.TrampSkips)
	}
	if d.TrampInstrs != 0 {
		t.Errorf("TrampInstrs = %d, want 0 in steady state", d.TrampInstrs)
	}
	if d.Resolutions != 0 {
		t.Errorf("Resolutions = %d", d.Resolutions)
	}
}

func TestABTBFlushedByResolution(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, EnhancedConfig())
	run(t, c, 1)
	if c.ABTB().Flushes() < 4 {
		t.Errorf("ABTB flushes = %d, want >= 4 (one per GOT store)", c.ABTB().Flushes())
	}
}

// The core architectural-equivalence claim (§3): the enhanced system
// executes exactly the same program state transitions; the only
// instruction-count difference is the skipped trampoline instructions.
func TestBaseEnhancedArchitecturalEquivalence(t *testing.T) {
	imBase := buildProgram(t, 8, linker.BindLazy)
	imEnh := buildProgram(t, 8, linker.BindLazy)
	base := New(imBase, DefaultConfig())
	enh := New(imEnh, EnhancedConfig())
	run(t, base, 10)
	run(t, enh, 10)
	cb, ce := base.Counters(), enh.Counters()

	if cb.Instructions-ce.Instructions != ce.TrampSkips {
		t.Errorf("instruction delta %d != skips %d",
			cb.Instructions-ce.Instructions, ce.TrampSkips)
	}
	// Same memory side effects: every stored value identical.
	libBase := imBase.Modules()[1]
	libEnh := imEnh.Modules()[1]
	if libBase.DataBase != libEnh.DataBase {
		t.Fatal("layouts differ; comparison invalid")
	}
	for a := libBase.GOTEnd; a < libBase.DataEnd; a += 8 {
		if imBase.Memory().Read64(a) != imEnh.Memory().Read64(a) {
			t.Errorf("memory divergence at %#x", a)
		}
	}
	// Same resolutions, same library calls.
	if cb.Resolutions != ce.Resolutions || cb.TrampCalls != ce.TrampCalls {
		t.Errorf("resolutions %d/%d trampcalls %d/%d",
			cb.Resolutions, ce.Resolutions, cb.TrampCalls, ce.TrampCalls)
	}
}

func TestEnhancedReducesPressure(t *testing.T) {
	imBase := buildProgram(t, 32, linker.BindLazy)
	imEnh := buildProgram(t, 32, linker.BindLazy)
	base := New(imBase, DefaultConfig())
	enh := New(imEnh, EnhancedConfig())
	// Warm up, then measure.
	run(t, base, 5)
	run(t, enh, 5)
	base.ResetStats()
	enh.ResetStats()
	run(t, base, 50)
	run(t, enh, 50)
	cb, ce := base.Counters(), enh.Counters()

	if ce.Cycles >= cb.Cycles {
		t.Errorf("enhanced cycles %d >= base %d", ce.Cycles, cb.Cycles)
	}
	if ce.L1IAccesses >= cb.L1IAccesses {
		t.Errorf("enhanced L1I accesses %d >= base %d", ce.L1IAccesses, cb.L1IAccesses)
	}
	if ce.L1DAccesses >= cb.L1DAccesses {
		t.Errorf("enhanced L1D accesses %d >= base %d (GOT loads gone)", ce.L1DAccesses, cb.L1DAccesses)
	}
	// Steady-state misprediction parity (§3.3): no *more* mispredicts
	// than base.
	if ce.Mispredicts > cb.Mispredicts {
		t.Errorf("enhanced mispredicts %d > base %d", ce.Mispredicts, cb.Mispredicts)
	}
}

func TestDeterminism(t *testing.T) {
	for _, cfgName := range []string{"base", "enhanced"} {
		im1 := buildProgram(t, 8, linker.BindLazy)
		im2 := buildProgram(t, 8, linker.BindLazy)
		cfg := DefaultConfig()
		if cfgName == "enhanced" {
			cfg = EnhancedConfig()
		}
		c1, c2 := New(im1, cfg), New(im2, cfg)
		run(t, c1, 7)
		run(t, c2, 7)
		if c1.Counters() != c2.Counters() {
			t.Errorf("%s: identical runs diverged:\n%+v\n%+v", cfgName, c1.Counters(), c2.Counters())
		}
	}
}

func TestEagerBindingNoResolutions(t *testing.T) {
	im := buildProgram(t, 4, linker.BindNow)
	c := New(im, DefaultConfig())
	run(t, c, 2)
	cnt := c.Counters()
	if cnt.Resolutions != 0 {
		t.Errorf("eager binding resolved %d symbols at runtime", cnt.Resolutions)
	}
	if cnt.TrampInstrs == 0 {
		t.Error("eager binding still executes trampolines; saw none")
	}
}

func TestStaticNoTrampolines(t *testing.T) {
	im := buildProgram(t, 4, linker.BindStatic)
	c := New(im, DefaultConfig())
	run(t, c, 2)
	cnt := c.Counters()
	if cnt.TrampInstrs != 0 || cnt.TrampCalls != 0 {
		t.Errorf("static image executed trampolines: %d instrs, %d calls",
			cnt.TrampInstrs, cnt.TrampCalls)
	}
}

func TestPatchedMatchesStaticBehaviour(t *testing.T) {
	im := buildProgram(t, 4, linker.BindPatched)
	c := New(im, DefaultConfig())
	run(t, c, 2)
	cnt := c.Counters()
	if cnt.TrampInstrs != 0 {
		t.Errorf("patched image executed %d trampoline instructions", cnt.TrampInstrs)
	}
}

func TestTrampFreq(t *testing.T) {
	im := buildProgram(t, 3, linker.BindLazy)
	c := New(im, DefaultConfig())
	run(t, c, 4)
	freq := c.TrampFreq()
	if len(freq) != 3 {
		t.Fatalf("distinct trampolines = %d, want 3", len(freq))
	}
	for slot, n := range freq {
		if n != 4 {
			t.Errorf("trampoline %#x count = %d, want 4", slot, n)
		}
		if im.TrampolineSym(slot) == "" {
			t.Errorf("freq key %#x is not a PLT slot", slot)
		}
	}
}

func TestTraceHook(t *testing.T) {
	im := buildProgram(t, 2, linker.BindLazy)
	c := New(im, DefaultConfig())
	var seen []uint64
	c.TraceLibCall = func(slot uint64) { seen = append(seen, slot) }
	run(t, c, 3)
	if len(seen) != 6 {
		t.Errorf("trace recorded %d calls, want 6", len(seen))
	}
}

func TestCallIndThroughPointer(t *testing.T) {
	app := objfile.New("app")
	app.AddData("vt", 16)
	app.InitPtr("vt", 0, "virt")
	app.NewFunc("main").CallPtr("vt", 0).CallPtr("vt", 0).Halt()
	lib := objfile.New("lib")
	lib.AddData("d", 8)
	lib.NewFunc("virt").Store("d", 0, 1, 42).Ret()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: linker.BindLazy})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, EnhancedConfig())
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	libMod := im.Modules()[1]
	addr := libMod.GOTEnd
	// Data regions are 64-byte aligned after the GOT.
	addr = (addr + 63) &^ 63
	if got := im.Memory().Read64(addr); got != 42 {
		t.Errorf("virtual call side effect = %d, want 42", got)
	}
	// Function pointers bypass the PLT: no trampoline calls.
	if c.Counters().TrampCalls != 0 {
		t.Errorf("CallInd counted as trampoline call")
	}
}

func TestLoopsAndConditionals(t *testing.T) {
	app := objfile.New("app")
	f := app.NewFunc("main")
	f.ALU(2)
	f.LoopBack(75, 2) // ~4 iterations of the 2 ALUs
	f.CondSkip(50, 1)
	f.ALU(1)
	f.Halt()
	im, err := linker.Link(app, nil, linker.Options{Mode: linker.BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, DefaultConfig())
	res, err := c.RunSymbol("main", 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum path: 2 ALU + jcc + jcc + (alu?) + halt >= 5.
	if res.Instructions < 5 {
		t.Errorf("Instructions = %d, too few", res.Instructions)
	}
	if c.Counters().Branches == 0 {
		t.Error("no branches counted")
	}
}

func TestRunErrors(t *testing.T) {
	im := buildProgram(t, 2, linker.BindLazy)
	c := New(im, DefaultConfig())
	if _, err := c.RunSymbol("nope", 0); err == nil {
		t.Error("unknown symbol accepted")
	}
	if _, err := c.Run(0xdead, 0); !errors.Is(err, ErrNoInstruction) {
		t.Errorf("wild entry error = %v", err)
	}
	// Budget exhaustion.
	app := objfile.New("app")
	f := app.NewFunc("main")
	f.ALU(1)
	f.LoopBack(100, 1) // infinite loop
	f.Halt()
	im2, err := linker.Link(app, nil, linker.Options{Mode: linker.BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(im2, DefaultConfig())
	if _, err := c2.RunSymbol("main", 1000); err == nil {
		t.Error("infinite loop not caught by budget")
	}
}

func TestContextSwitchFlushes(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, EnhancedConfig())
	run(t, c, 3)
	if c.ABTB().Len() == 0 {
		t.Fatal("ABTB empty before switch")
	}
	c.ContextSwitch(1)
	if c.ABTB().Len() != 0 {
		t.Error("ABTB survived untagged context switch")
	}
	// ITLB misses recur after the flush.
	before := c.Counters()
	run(t, c, 1)
	d := c.Counters().Sub(before)
	if d.ITLBMisses == 0 {
		t.Error("no ITLB misses after flush")
	}
}

func TestInvalidateABTB(t *testing.T) {
	cfg := DefaultConfig()
	a := abtb.Config{Entries: 256, Ways: 4, ExplicitInvalidate: true}
	cfg.ABTB = &a
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, cfg)
	run(t, c, 3)
	if c.ABTB().Len() == 0 {
		t.Fatal("ABTB empty")
	}
	c.InvalidateABTB()
	if c.ABTB().Len() != 0 {
		t.Error("explicit invalidate did not clear ABTB")
	}
	// Base CPU: both are no-ops.
	b := New(buildProgram(t, 2, linker.BindLazy), DefaultConfig())
	b.InvalidateABTB()
	b.ContextSwitch(1)
	if b.ABTB() != nil || b.Enhanced() {
		t.Error("base CPU has an ABTB")
	}
}

func TestResetStatsPreservesState(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, EnhancedConfig())
	run(t, c, 3)
	c.ResetStats()
	if c.Counters().Instructions != 0 {
		t.Error("counters survived reset")
	}
	if c.ABTB().Len() == 0 {
		t.Error("ABTB contents lost on stats reset")
	}
	before := c.Counters()
	run(t, c, 1)
	d := c.Counters().Sub(before)
	// Fully warm: all trampolines skipped right away.
	if d.TrampSkips != 4 {
		t.Errorf("post-reset TrampSkips = %d, want 4", d.TrampSkips)
	}
}

// In the §3.4 explicit-invalidate variant, stores never flush the
// ABTB (there is no Bloom filter); instead the modified resolver
// executes the invalidate instruction after each GOT update, so the
// mechanism stays architecturally safe without snooping.
func TestExplicitInvalidateModeFlushSemantics(t *testing.T) {
	cfg := DefaultConfig()
	a := abtb.Config{Entries: 256, Ways: 4, ExplicitInvalidate: true}
	cfg.ABTB = &a
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, cfg)
	run(t, c, 3)
	if c.ABTB().FlushingStores() != 0 {
		t.Errorf("stores flushed the explicit-invalidate ABTB %d times", c.ABTB().FlushingStores())
	}
	if c.ABTB().Flushes() != 4 {
		t.Errorf("resolver invalidates = %d, want 4 (one per resolution)", c.ABTB().Flushes())
	}
	// Steady state still skips everything.
	c.ResetStats()
	run(t, c, 2)
	cnt := c.Counters()
	if cnt.TrampSkips != cnt.TrampCalls || cnt.TrampSkips == 0 {
		t.Errorf("steady-state skips %d of %d calls", cnt.TrampSkips, cnt.TrampCalls)
	}
}
