// Compiled traces: a one-time pass over a linked image that lowers its
// decoded-instruction maps into a dense, branch-threaded instruction
// array the Run loop can replay without per-step page lookups.
//
// The interpreter executes from the image's per-page instruction index:
// every step is a page-memo probe, a decode-struct load, two
// AccessRange calls for fetch, and a full opcode dispatch.  The
// compiler removes the redundant parts ahead of time:
//
//   - Instructions are stored in one dense array sorted by PC, and
//     every statically known successor (fall-through, direct call/jump
//     target) is pre-resolved to an array index, so sequential and
//     direct-branch execution never consults a page table.
//   - Runs of straight-line simple instructions (Nop/ALU/Load/Store/
//     Push — nothing that touches the predictor) are grouped into
//     superblocks whose I-TLB and L1I fetch traffic is pre-computed as
//     run-length-encoded access runs; replay applies each run with one
//     bulk cache/TLB operation (AccessRepeat/AccessRepeatPage) instead
//     of per-instruction AccessRange calls.
//   - PLT/trampoline classification is annotated at compile time: a
//     direct call's TrampolineIndex is resolved once, and each
//     superblock segment carries its retired-in-PLT instruction count.
//
// The compiled path is bit-identical to the interpreter — same
// counters, same cycle account, same sample and budget boundaries,
// same errors.  Two properties make that exact:
//
//   - Superblocks segment at memory operations, so a bulk I-fetch run
//     never reorders across a D-side access into the shared L2, and a
//     block is only dispatched when it fits entirely under the loop's
//     current limit (budget or sample boundary); otherwise replay
//     falls back to single-instruction steps, reproducing the
//     interpreter's step granularity exactly.
//   - The bulk cache/TLB operations replay the interpreter's exact
//     access sequence: only the first access of a same-line (same-page)
//     run can miss, so recording that access's address preserves
//     next-level addresses, and the remaining accesses are applied as
//     guaranteed hits with identical counter and LRU effects.
//
// A Program is built from the image's shared instruction index, which
// forks share with their master, so one compiled Program serves every
// fork of a pooled image (see internal/pool).
package cpu

import (
	"fmt"
	"slices"

	"repro/internal/isa"
	"repro/internal/linker"
	"repro/internal/mem"
)

// blockCap bounds superblock length in instructions.  Blocks are only
// dispatched when they fit entirely under the Run loop's limit, so a
// cap keeps the single-step fallback window (and thus the tail of a
// sample interval executed per-instruction) short.
const blockCap = 32

// cinstr is one compiled instruction: the decoded instruction by
// value (no pointer chase), its PC, and pre-resolved successor
// indices into the program's code array.
type cinstr struct {
	in isa.Instr
	pc uint64

	next     int32 // index of the fall-through (pc+Size), -1 if unmapped
	tgt      int32 // index of in.Target for Call/Jmp/JmpCond, else -1
	trampIdx int32 // TrampolineIndex(in.Target) for direct calls, else -1

	// blk, when non-nil, is the superblock starting at this
	// instruction.
	blk *block
}

// crun is one run-length-encoded fetch access: n consecutive accesses
// to the same L1I line (addr is the first access's byte address) or
// the same page (addr is the virtual page number).
type crun struct {
	addr uint64
	n    int32
}

// seg is a superblock segment: a run of simple instructions whose
// fetch traffic is applied in bulk, optionally ending with one memory
// operation.  Segments never continue past a memory op, so bulk
// I-fetches never cross a D-side access into the shared L2.
type seg struct {
	firstIdx int32 // code index of the segment's first instruction
	n        int32 // instructions in the segment (incl. trailing mem op)
	nPLT     uint64
	memIdx   int32 // code index of the trailing Load/Store/Push, or -1
	itlb     []crun
	l1i      []crun
}

// block is a superblock: up to blockCap straight-line simple
// instructions with pre-computed fetch runs, entered only at its first
// instruction.
type block struct {
	nInstr uint64
	endIdx int32  // code index of the instruction after the block
	endPC  uint64 // its PC (for the unmapped-fall-through error)
	segs   []seg
}

// idxMemoEntry memoises one compiled-index page for the replay loop's
// dynamic-target lookups, mirroring the interpreter's fetch-page memo.
type idxMemoEntry struct {
	pn uint64
	pg *idxPage // nil marks an empty memo slot
}

// idxPage maps a page's in-page byte offsets to code-array indices
// (-1 where no instruction starts).
type idxPage [mem.PageSize]int32

// Program is a compiled trace: the image's instructions as a dense
// branch-threaded array plus the PC→index pages used for dynamic
// targets.  A Program is immutable after Compile and safe for
// concurrent use by any number of CPUs running forks of the image it
// was compiled from.
type Program struct {
	code      []cinstr
	pages     map[uint64]*idxPage
	lineBytes int    // L1I line size the fetch runs were compiled for
	gen       uint64 // image generation the trace was compiled against
}

// Instructions returns the number of compiled instructions.
func (p *Program) Instructions() int { return len(p.code) }

// LineBytes returns the L1I line size the program was compiled for.
func (p *Program) LineBytes() int { return p.lineBytes }

// Generation returns the image generation (see linker.Image.Generation)
// the program was compiled against.  Runtime Load/Unload bumps the
// image's generation, making older programs stale: SetProgram and Run
// refuse to replay them.
func (p *Program) Generation() uint64 { return p.gen }

// ProgramStats summarises a compiled trace for tooling (cmd/tracedump
// -compiled): how much of the instruction stream was lowered into
// superblocks, how densely the fetch traffic compressed, and how many
// control-flow edges were threaded at compile time.
type ProgramStats struct {
	Instructions int    // compiled instructions
	Threaded     int    // static successor edges resolved to indices
	Blocks       int    // superblocks
	BlockInstrs  uint64 // instructions covered by some superblock
	Segments     int    // superblock segments
	L1IRuns      int    // RLE L1I fetch runs across all segments
	ITLBRuns     int    // RLE I-TLB page runs across all segments
	PLTInstrs    uint64 // trampoline-body instructions inside blocks
	DirectCalls  int    // direct calls total
	PLTCalls     int    // direct calls annotated with a trampoline index
}

// BlockInfo describes one superblock head for tooling, in PC order.
type BlockInfo struct {
	StartPC uint64
	Instrs  uint64
	Segs    int
	PLT     uint64
}

// Stats walks the program once and returns its summary.
func (p *Program) Stats() ProgramStats {
	var st ProgramStats
	st.Instructions = len(p.code)
	for i := range p.code {
		ci := &p.code[i]
		if ci.next >= 0 {
			st.Threaded++
		}
		if ci.tgt >= 0 {
			st.Threaded++
		}
		if ci.in.Op == isa.Call {
			st.DirectCalls++
			if ci.trampIdx >= 0 {
				st.PLTCalls++
			}
		}
		if b := ci.blk; b != nil {
			st.Blocks++
			st.BlockInstrs += b.nInstr
			st.Segments += len(b.segs)
			for si := range b.segs {
				s := &b.segs[si]
				st.L1IRuns += len(s.l1i)
				st.ITLBRuns += len(s.itlb)
				st.PLTInstrs += s.nPLT
			}
		}
	}
	return st
}

// Blocks returns every superblock head in PC order.
func (p *Program) Blocks() []BlockInfo {
	var out []BlockInfo
	for i := range p.code {
		ci := &p.code[i]
		if b := ci.blk; b != nil {
			var plt uint64
			for si := range b.segs {
				plt += b.segs[si].nPLT
			}
			out = append(out, BlockInfo{StartPC: ci.pc, Instrs: b.nInstr, Segs: len(b.segs), PLT: plt})
		}
	}
	return out
}

// batchable reports whether op can live inside a superblock: simple
// instructions with no control flow and no predictor interaction.
func batchable(op isa.Op) bool {
	switch op {
	case isa.Nop, isa.ALU, isa.Load, isa.Store, isa.Push:
		return true
	}
	return false
}

// Compile lowers the image's instruction index into a Program whose
// fetch runs are pre-computed for the given L1I line size.  The image's
// instruction map is read but never mutated, and because forks share
// that map one Program serves the master and every fork.
func Compile(img *linker.Image, l1iLineBytes int) *Program {
	if l1iLineBytes <= 0 || l1iLineBytes&(l1iLineBytes-1) != 0 {
		panic(fmt.Sprintf("cpu: compile with invalid L1I line size %d", l1iLineBytes))
	}
	lineShift := uint(0)
	for 1<<lineShift < l1iLineBytes {
		lineShift++
	}

	instrs := img.Instructions()
	pcs := make([]uint64, 0, len(instrs))
	for pc := range instrs {
		pcs = append(pcs, pc)
	}
	slices.Sort(pcs)

	p := &Program{
		code:      make([]cinstr, len(pcs)),
		pages:     make(map[uint64]*idxPage),
		lineBytes: l1iLineBytes,
		gen:       img.Generation(),
	}
	for i, pc := range pcs {
		p.code[i] = cinstr{in: *instrs[pc], pc: pc, next: -1, tgt: -1, trampIdx: -1}
		pn := pc >> mem.PageShift
		pg := p.pages[pn]
		if pg == nil {
			pg = new(idxPage)
			for j := range pg {
				pg[j] = -1
			}
			p.pages[pn] = pg
		}
		pg[pc&(mem.PageSize-1)] = int32(i)
	}

	indexOf := func(pc uint64) int32 {
		pg := p.pages[pc>>mem.PageShift]
		if pg == nil {
			return -1
		}
		return pg[pc&(mem.PageSize-1)]
	}

	// Successor threading and static-target annotation.
	isTarget := make([]bool, len(p.code))
	for i := range p.code {
		ci := &p.code[i]
		ci.next = indexOf(ci.pc + uint64(ci.in.Size))
		switch ci.in.Op {
		case isa.Call, isa.Jmp, isa.JmpCond:
			ci.tgt = indexOf(ci.in.Target)
			if ci.tgt >= 0 {
				isTarget[ci.tgt] = true
			}
		}
		if ci.in.Op == isa.Call {
			ci.trampIdx = int32(img.TrampolineIndex(ci.in.Target))
		}
	}

	// Superblock formation.  A run is a maximal contiguous stretch of
	// batchable instructions (each falling through to the next array
	// element).  Blocks are emitted at every entry point into a run —
	// the run head, every static branch target inside it — and chained
	// every blockCap instructions from each entry.  Dynamic entry
	// points (return sites, function entries) always follow a
	// non-batchable instruction, so they are run heads.
	for i := 0; i < len(p.code); {
		if !batchable(p.code[i].in.Op) {
			i++
			continue
		}
		// Extend the run [i, e).
		e := i + 1
		for e < len(p.code) && p.code[e-1].next == int32(e) && batchable(p.code[e].in.Op) {
			e++
		}
		for k := i; k < e; k++ {
			if k != i && !isTarget[k] {
				continue
			}
			// Chain blocks from entry point k to the end of the run,
			// stopping where an earlier entry's chain already built
			// them (identical content: a block depends only on its
			// start index and the run end).
			for b0 := k; b0 < e && p.code[b0].blk == nil; {
				end := b0 + blockCap
				if end > e {
					end = e
				}
				p.code[b0].blk = buildBlock(p.code, b0, end, lineShift)
				b0 = end
			}
		}
		i = e
	}
	return p
}

// buildBlock compiles the superblock covering code[b0:end).
func buildBlock(code []cinstr, b0, end int, lineShift uint) *block {
	last := &code[end-1]
	b := &block{
		nInstr: uint64(end - b0),
		endIdx: last.next,
		endPC:  last.pc + uint64(last.in.Size),
	}
	segStart := b0
	for k := b0; k < end; k++ {
		op := code[k].in.Op
		memOp := op == isa.Load || op == isa.Store || op == isa.Push
		if memOp || k == end-1 {
			b.segs = append(b.segs, buildSeg(code, segStart, k+1, memOp, lineShift))
			segStart = k + 1
		}
	}
	return b
}

// buildSeg pre-computes one segment's RLE fetch runs, replaying the
// interpreter's exact access sequence: per instruction, every page
// overlapped by [pc, pc+Size), then every L1I line.  Runs record the
// first access's address (page number for the TLB), because only the
// first access of a same-key run can miss and recurse.
func buildSeg(code []cinstr, s, e int, memOp bool, lineShift uint) seg {
	sg := seg{firstIdx: int32(s), n: int32(e - s), memIdx: -1}
	if memOp {
		sg.memIdx = int32(e - 1)
	}
	for k := s; k < e; k++ {
		ci := &code[k]
		if ci.in.PLT {
			sg.nPLT++
		}
		pc, size := ci.pc, uint64(ci.in.Size)
		pFirst, pLast := mem.PageNum(pc), mem.PageNum(pc+size-1)
		for vpn := pFirst; vpn <= pLast; vpn++ {
			if n := len(sg.itlb) - 1; n >= 0 && sg.itlb[n].addr == vpn {
				sg.itlb[n].n++
			} else {
				sg.itlb = append(sg.itlb, crun{addr: vpn, n: 1})
			}
		}
		// Mirror cache.AccessRange: a single-line access records the
		// real byte address; a straddling access records each line's
		// base address.
		lFirst, lLast := pc>>lineShift, (pc+size-1)>>lineShift
		if lFirst == lLast {
			sg.l1i = appendLineRun(sg.l1i, pc, lineShift)
		} else {
			for ln := lFirst; ln <= lLast; ln++ {
				sg.l1i = appendLineRun(sg.l1i, ln<<lineShift, lineShift)
			}
		}
	}
	return sg
}

func appendLineRun(runs []crun, addr uint64, lineShift uint) []crun {
	if n := len(runs) - 1; n >= 0 && runs[n].addr>>lineShift == addr>>lineShift {
		runs[n].n++
		return runs
	}
	return append(runs, crun{addr: addr, n: 1})
}

// SetProgram installs (or, with nil, removes) a compiled program; Run
// replays it instead of interpreting.  The program must have been
// compiled from the CPU's image — or from any image sharing its
// instruction index, i.e. the pooled master this image was forked
// from — for the same L1I line size.
func (c *CPU) SetProgram(p *Program) error {
	if p != nil {
		if p.lineBytes != c.cfg.L1I.LineBytes {
			return fmt.Errorf("cpu: program compiled for %d-byte I-lines, cache has %d-byte lines", p.lineBytes, c.cfg.L1I.LineBytes)
		}
		if p.gen != c.img.Generation() {
			return fmt.Errorf("cpu: program compiled against image generation %d, image is at %d (library churn since compile); recompile or run interpreted",
				p.gen, c.img.Generation())
		}
		if len(p.code) != len(c.img.Instructions()) {
			return fmt.Errorf("cpu: program has %d instructions, image has %d", len(p.code), len(c.img.Instructions()))
		}
	}
	c.prog = p
	// Both paths' page memos key the same underlying state; reset them
	// all so a mode switch re-derives every memo from the maps.
	c.idxMemo = [pageMemoSize]idxMemoEntry{}
	c.pageMemo = [pageMemoSize]pageMemoEntry{}
	c.cntPageNum, c.cntPage = 0, nil
	c.fetchPageNum, c.fetchPage, c.fetchCounts = 0, nil, nil
	return nil
}

// Program returns the installed compiled program, or nil when the CPU
// interprets.
func (c *CPU) Program() *Program { return c.prog }

// lookupIdx maps a dynamic target PC to its code-array index (-1 if
// unmapped), memoising the index page.
func (c *CPU) lookupIdx(pc uint64) int32 {
	pn := pc >> mem.PageShift
	m := &c.idxMemo[pageMemoIdx(pn)]
	if m.pn != pn || m.pg == nil {
		pg := c.prog.pages[pn]
		if pg == nil {
			return -1
		}
		*m = idxMemoEntry{pn: pn, pg: pg}
	}
	return m.pg[pc&(mem.PageSize-1)]
}

// bumpC is the compiled path's bumpN: it returns and increments pc's
// dynamic execution count, memoising the counter page directly (the
// compiled loop does not maintain the fetch memo).  Pages are shared
// with the interpreter's execPages map, and the interpreter's memos
// are refreshed on allocation so a later SetProgram(nil) observes
// coherent counts.
func (c *CPU) bumpC(pc uint64) uint64 {
	pn := pc >> mem.PageShift
	if c.cntPage == nil || c.cntPageNum != pn {
		p := c.execPages[pn]
		if p == nil {
			p = new(execPage)
			c.execPages[pn] = p
			if m := &c.pageMemo[pageMemoIdx(pn)]; m.pn == pn && m.page != nil {
				m.counts = p
			}
			if c.fetchPage != nil && c.fetchPageNum == pn {
				c.fetchCounts = p
			}
		}
		c.cntPageNum, c.cntPage = pn, p
	}
	off := pc & (mem.PageSize - 1)
	n := c.cntPage[off]
	c.cntPage[off] = n + 1
	return n
}

// runCompiled is Run over a compiled program.  The control structure —
// limit = min(budget end, next sample boundary), checked before every
// dispatch — is the interpreter's; the difference is that a superblock
// is dispatched as one unit when it fits entirely under the limit, and
// otherwise (or for control flow) a single pre-threaded instruction is
// stepped.  Because blocks never partially execute, budget errors and
// sample boundaries land on exactly the interpreter's instruction
// counts.
func (c *CPU) runCompiled(entry uint64, maxInstrs uint64) (RunResult, error) {
	if c.prog.gen != c.img.Generation() {
		// Trap instead of branching into freed or rewritten code: the
		// image was churned (Load/Unload) after this trace was built.
		return RunResult{}, fmt.Errorf("cpu: stale compiled trace (program generation %d, image at %d); recompile or SetProgram(nil)",
			c.prog.gen, c.img.Generation())
	}
	start := c.c
	budgetEnd := start.Instructions + maxInstrs
	limit := budgetEnd
	if c.onSample != nil && c.nextSampleAt < limit {
		limit = c.nextSampleAt
	}
	c.sp = c.img.StackTop() - 64
	pc := entry
	idx := c.lookupIdx(entry)
	for {
		if c.c.Instructions >= limit {
			if c.c.Instructions >= budgetEnd {
				return c.runDelta(start), fmt.Errorf("cpu: instruction budget %d exhausted at pc %#x", maxInstrs, pc)
			}
			c.takeSample()
			limit = budgetEnd
			if c.nextSampleAt < limit {
				limit = c.nextSampleAt
			}
			continue
		}
		if idx < 0 {
			return c.runDelta(start), fmt.Errorf("%w: pc %#x", ErrNoInstruction, pc)
		}
		ci := &c.prog.code[idx]
		if b := ci.blk; b != nil && c.c.Instructions+b.nInstr <= limit {
			c.execBlock(b)
			idx, pc = b.endIdx, b.endPC
			continue
		}
		var halted bool
		var err error
		idx, pc, halted, err = c.stepIdx(ci)
		if err != nil {
			return c.runDelta(start), err
		}
		if halted {
			return c.runDelta(start), nil
		}
	}
}

// execBlock replays one superblock: per segment, the pre-computed
// fetch runs are applied in bulk, counters are advanced once, and the
// trailing memory operation (if any) executes normally.  The ABTB
// pattern hooks are only walked when a call→indirect-branch pattern is
// actually pending at block entry: nothing inside a block retires a
// call, so otherwise every hook call would be a no-op.
func (c *CPU) execBlock(b *block) {
	glue := c.ab != nil && c.ab.PatternPending()
	code := c.prog.code
	for si := range b.segs {
		s := &b.segs[si]
		lat := 0
		for _, r := range s.itlb {
			if c.demand {
				c.demandTouch(r.addr)
			}
			lat += c.itlb.AccessRepeatPage(r.addr, int(r.n))
		}
		for _, r := range s.l1i {
			lat += c.l1i.AccessRepeat(r.addr, int(r.n))
		}
		c.c.TrampInstrs += s.nPLT
		c.c.Instructions += uint64(s.n)
		c.c.Cycles += uint64(lat) + uint64(s.n)

		nSimple := s.n
		if s.memIdx >= 0 {
			nSimple--
		}
		if glue {
			for k := s.firstIdx; k < s.firstIdx+nSimple; k++ {
				ci := &code[k]
				c.ab.OnRetireOther(ci.pc, ci.in.Size)
			}
		}
		if s.memIdx >= 0 {
			mi := &code[s.memIdx]
			switch mi.in.Op {
			case isa.Load:
				c.dataRead(mi.in.EffAddr(mi.pc, c.bumpC(mi.pc)))
			case isa.Store:
				c.dataWrite(mi.in.EffAddr(mi.pc, c.bumpC(mi.pc)), mi.in.Val)
			case isa.Push:
				c.sp -= 8
				c.dataWrite(c.sp, mi.in.Val)
			}
			if glue {
				c.ab.BreakPattern()
				glue = false // nothing in the block can re-arm it
			}
		}
	}
}

// stepIdx retires one compiled instruction.  It mirrors step exactly —
// same access order, same counter and predictor updates, same retire
// logic — but consumes pre-threaded successor indices and returns the
// next (index, pc) pair.  It also serves as the fallback for entering
// a superblock that does not fit under the current limit, which is why
// it handles the batchable opcodes too.
func (c *CPU) stepIdx(ci *cinstr) (nextIdx int32, nextPC uint64, halted bool, err error) {
	in := &ci.in
	pc := ci.pc
	size := uint64(in.Size)

	// ---- Fetch ----
	if c.demand {
		c.touchFetch(pc, size)
	}
	c.c.Cycles += uint64(c.itlb.AccessRange(pc, size))
	c.c.Cycles += uint64(c.l1i.AccessRange(pc, size))

	var predicted uint64
	var predValid bool
	var predTaken bool
	switch in.Op {
	case isa.Call, isa.CallInd, isa.Jmp, isa.JmpMem, isa.Resolve:
		predicted, predValid = c.bp.PredictTarget(pc)
		if in.Op.IsCall() {
			c.bp.PushReturn(pc + size)
		}
	case isa.JmpCond:
		predTaken = c.bp.PredictCond(pc)
		if predTaken {
			predicted, predValid = c.bp.PredictTarget(pc)
		} else {
			predicted, predValid = pc+size, true
		}
	case isa.Ret:
		predicted, predValid = c.bp.PredictReturn()
	}

	// ---- Execute ----
	if in.PLT {
		c.c.TrampInstrs++
	}
	c.c.Instructions++
	c.c.Cycles++

	var actual uint64
	actualIdx := int32(-1)
	actualKnown := false // actualIdx valid without a lookup
	switch in.Op {
	case isa.Halt:
		c.retireBreak()
		c.syncCounters()
		return 0, 0, true, nil

	case isa.Nop, isa.ALU:
		if c.ab != nil {
			c.ab.OnRetireOther(pc, in.Size)
		}
		return ci.next, pc + size, false, nil

	case isa.Load:
		c.dataRead(in.EffAddr(pc, c.bumpC(pc)))
		c.retireBreak()
		return ci.next, pc + size, false, nil

	case isa.Store:
		c.dataWrite(in.EffAddr(pc, c.bumpC(pc)), in.Val)
		c.retireBreak()
		return ci.next, pc + size, false, nil

	case isa.Push:
		c.sp -= 8
		c.dataWrite(c.sp, in.Val)
		c.retireBreak()
		return ci.next, pc + size, false, nil

	case isa.Call:
		actual = in.Target
		actualIdx, actualKnown = ci.tgt, true
		c.sp -= 8
		c.dataWrite(c.sp, pc+size)

	case isa.CallInd:
		actual = c.dataRead(in.Mem)
		c.sp -= 8
		c.dataWrite(c.sp, pc+size)

	case isa.Jmp:
		actual = in.Target
		actualIdx, actualKnown = ci.tgt, true

	case isa.JmpCond:
		taken := in.CondTaken(pc, c.bumpC(pc), c.cfg.Seed)
		if taken {
			actual = in.Target
		} else {
			actual = pc + size
		}
		c.c.Branches++
		switch {
		case taken != predTaken:
			c.c.Mispredicts++
			c.c.MispredCond++
			c.c.Cycles += uint64(c.cfg.MispredictPenalty)
		case taken && !predValid:
			c.c.FetchBubbles++
			c.c.Cycles += uint64(c.cfg.FetchBubblePenalty)
		case taken && predicted != actual:
			c.c.Mispredicts++
			c.c.MispredCond++
			c.c.Cycles += uint64(c.cfg.MispredictPenalty)
		}
		c.bp.UpdateCond(pc, taken)
		if taken {
			c.bp.UpdateTarget(pc, actual)
			c.retireBreak()
			return ci.tgt, actual, false, nil
		}
		c.retireBreak()
		return ci.next, actual, false, nil

	case isa.JmpMem:
		actual = c.dataRead(in.Mem)

	case isa.Ret:
		actual = c.dataRead(c.sp)
		c.sp += 8

	case isa.Resolve:
		next, _, rerr := c.execResolve(pc, predicted, predValid)
		if rerr != nil {
			return 0, 0, false, rerr
		}
		return c.lookupIdx(next), next, false, nil

	default:
		return 0, 0, false, fmt.Errorf("cpu: unexecutable opcode %v at %#x", in.Op, pc)
	}

	// ---- Retire: branch resolution with the ABTB hook ----
	effective := actual
	effIdx, effKnown := actualIdx, actualKnown
	skipped := false
	if in.Op.IsCall() {
		tIdx := -1
		if in.Op == isa.Call {
			tIdx = int(ci.trampIdx)
		} else {
			tIdx = c.img.TrampolineIndex(actual)
		}
		if tIdx >= 0 {
			c.c.TrampCalls++
			c.trampCounts[tIdx]++
			if c.TraceLibCall != nil {
				c.TraceLibCall(actual)
			}
		}
		if c.ab != nil {
			if target, hit := c.ab.Lookup(actual); hit {
				effective = target
				effKnown = false
				skipped = true
				c.c.TrampSkips++
			}
		}
	}

	c.c.Branches++
	if !predValid || predicted != effective {
		if (in.Op == isa.Call || in.Op == isa.Jmp) && !skipped {
			c.c.FetchBubbles++
			c.c.Cycles += uint64(c.cfg.FetchBubblePenalty)
		} else {
			c.c.Mispredicts++
			c.c.Cycles += uint64(c.cfg.MispredictPenalty)
			switch {
			case skipped || in.Op == isa.Call:
				c.c.MispredCall++
			case in.Op == isa.Ret:
				c.c.MispredRet++
			default:
				c.c.MispredIndirect++
			}
		}
	}
	if in.Op != isa.Ret {
		c.bp.UpdateTarget(pc, effective)
	}

	if c.ab != nil {
		if in.Op.IsIndirectBranch() {
			memAddr := uint64(0)
			if in.Op == isa.JmpMem {
				memAddr = in.Mem
			}
			c.ab.OnRetireIndirectBranch(pc, actual, memAddr)
		}
		if in.Op.IsCall() {
			c.ab.OnRetireCall(actual)
		} else if !in.Op.IsIndirectBranch() {
			c.ab.BreakPattern()
		}
	}

	if !effKnown {
		effIdx = c.lookupIdx(effective)
	}
	return effIdx, effective, false, nil
}

// FastForward executes from entry with architectural fidelity only:
// memory contents, the stack pointer, per-PC execution counts and lazy
// GOT bindings advance exactly as under detailed simulation, but no
// cache, TLB, predictor or measurement-counter state is touched.  The
// one microarchitectural exception is the ABTB: its Bloom filter
// snoops every skipped store (see ffWrite), because a stale trampoline
// mapping must not survive a skip over the GOT store that would have
// flushed it.  Demand pages touched by skipped fetches are mapped
// silently, with no fault count or penalty (see ffTouch).  Sampled
// simulation uses it to skip between measurement windows at a fraction
// of detailed cost; a detailed run resumed after a fast-forward sees
// the same architectural state it would have seen had every
// instruction been simulated in detail.
//
// It requires a compiled program (the threaded successor indices are
// what make skipping cheap) and bounds runaway execution like Run
// (maxInstrs 0 means the same generous default).
func (c *CPU) FastForward(entry uint64, maxInstrs uint64) error {
	if c.prog == nil {
		return fmt.Errorf("cpu: fast-forward requires a compiled program")
	}
	c.syncChurn()
	if c.prog.gen != c.img.Generation() {
		return fmt.Errorf("cpu: stale compiled trace (program generation %d, image at %d); recompile or SetProgram(nil)",
			c.prog.gen, c.img.Generation())
	}
	if maxInstrs == 0 {
		maxInstrs = 100_000_000
	}
	if c.ab != nil {
		// The skipped stretch would have retired pattern-breaking
		// instructions; never let a pre-skip call pair with a
		// post-skip indirect branch.
		c.ab.BreakPattern()
	}
	c.sp = c.img.StackTop() - 64
	pc := entry
	idx := c.lookupIdx(entry)
	code := c.prog.code
	var steps uint64
	for {
		if idx < 0 {
			return fmt.Errorf("%w: pc %#x", ErrNoInstruction, pc)
		}
		if steps >= maxInstrs {
			return fmt.Errorf("cpu: fast-forward budget %d exhausted at pc %#x", maxInstrs, pc)
		}
		steps++
		ci := &code[idx]
		in := &ci.in
		if c.demand {
			// Map demand pages as the skipped fetches would, silently:
			// the fault count and penalty are measurement state, which
			// fast-forwarded stretches do not accrue.
			c.ffTouch(pc, uint64(in.Size))
		}
		switch in.Op {
		case isa.Halt:
			return nil
		case isa.Nop, isa.ALU:
			idx, pc = ci.next, pc+uint64(in.Size)
		case isa.Load:
			// The count advances (EffAddr sweeps consume one per
			// execution) but the read has no architectural effect.
			c.bumpC(pc)
			idx, pc = ci.next, pc+uint64(in.Size)
		case isa.Store:
			c.ffWrite(in.EffAddr(pc, c.bumpC(pc)), in.Val)
			idx, pc = ci.next, pc+uint64(in.Size)
		case isa.Push:
			c.sp -= 8
			c.ffWrite(c.sp, in.Val)
			idx, pc = ci.next, pc+uint64(in.Size)
		case isa.Call:
			c.sp -= 8
			c.ffWrite(c.sp, pc+uint64(in.Size))
			idx, pc = ci.tgt, in.Target
		case isa.CallInd:
			tgt := c.mem.Read64(in.Mem)
			c.sp -= 8
			c.ffWrite(c.sp, pc+uint64(in.Size))
			idx, pc = c.lookupIdx(tgt), tgt
		case isa.Jmp:
			idx, pc = ci.tgt, in.Target
		case isa.JmpCond:
			if in.CondTaken(pc, c.bumpC(pc), c.cfg.Seed) {
				idx, pc = ci.tgt, in.Target
			} else {
				idx, pc = ci.next, pc+uint64(in.Size)
			}
		case isa.JmpMem:
			tgt := c.mem.Read64(in.Mem)
			idx, pc = c.lookupIdx(tgt), tgt
		case isa.Ret:
			tgt := c.mem.Read64(c.sp)
			c.sp += 8
			idx, pc = c.lookupIdx(tgt), tgt
		case isa.Resolve:
			modID := c.mem.Read64(c.sp)
			relocIdx := c.mem.Read64(c.sp + 8)
			c.sp += 16
			gotAddr, funcAddr, err := c.img.Resolve(modID, relocIdx)
			if err != nil {
				return err
			}
			// The resolver's GOT store, with the same ABTB visibility
			// the detailed path gives it: Bloom snoop, or the §3.4
			// explicit invalidate.
			c.ffWrite(gotAddr, funcAddr)
			c.gotStores++
			if c.ab != nil && c.ab.Config().ExplicitInvalidate {
				c.ab.Invalidate()
			}
			idx, pc = c.lookupIdx(funcAddr), funcAddr
		default:
			return fmt.Errorf("cpu: unexecutable opcode %v at %#x", in.Op, pc)
		}
	}
}

// ffWrite performs a fast-forwarded store: architectural memory only —
// no cache, TLB or counter effects — except that the ABTB's Bloom
// filter snoops it exactly as it snoops every retired store on the
// detailed path.  Stale trampoline mappings must not survive a skip
// over the store that would have flushed them (and detailed-path
// false-positive flushes must reproduce too, or sampled ABTB state
// diverges from exact).
func (c *CPU) ffWrite(addr, val uint64) {
	c.mem.Write64(addr, val)
	if c.ab != nil {
		c.ab.SnoopStore(addr)
	}
}

// ffTouch maps demand pages overlapped by the fetch of [pc, pc+size)
// without fault accounting (see FastForward).
func (c *CPU) ffTouch(pc, size uint64) {
	for pn := pc >> mem.PageShift; pn <= (pc+size-1)>>mem.PageShift; pn++ {
		if c.img.TouchPage(pn) && !c.img.HasDemandPages() {
			c.demand = false
		}
	}
}

// FastForwardSymbol resolves a function symbol and fast-forwards from
// it.
func (c *CPU) FastForwardSymbol(sym string) error {
	entry, ok := c.img.Symbol(sym)
	if !ok {
		return fmt.Errorf("cpu: unknown entry symbol %q", sym)
	}
	return c.FastForward(entry, 0)
}
