package cpu

import (
	"reflect"
	"testing"

	"repro/internal/linker"
	"repro/internal/objfile"
)

// TestCoherenceInvalidation: a GOT write by another core (delivered
// as a coherence invalidation) must flush the ABTB, after which the
// redirect re-learns — multi-core safety of §3.1.
func TestCoherenceInvalidation(t *testing.T) {
	im := buildProgram(t, 2, linker.BindLazy)
	c := New(im, EnhancedConfig())
	run(t, c, 3)
	if c.ABTB().Len() == 0 {
		t.Fatal("ABTB empty")
	}
	appMod := im.Modules()[0]
	// Another core rewrites the first GOT entry.
	newTarget, _ := im.Symbol(libFuncName(1))
	im.Memory().Write64(appMod.GOTSlotAddr(0), newTarget)
	if !c.CoherenceInvalidate(appMod.GOTSlotAddr(0)) {
		t.Fatal("coherence invalidation of a GOT address did not flush")
	}
	if c.ABTB().Len() != 0 {
		t.Fatal("ABTB survived coherence flush")
	}
	// Unrelated invalidations do not flush (no entries -> empty bloom).
	if c.CoherenceInvalidate(0x1234) {
		t.Error("empty-filter invalidation flushed")
	}
	// Execution follows the rewritten GOT.
	run(t, c, 2)
	// On a base CPU the call is a no-op.
	b := New(buildProgram(t, 2, linker.BindLazy), DefaultConfig())
	if b.CoherenceInvalidate(0x1234) {
		t.Error("base CPU reported a flush")
	}
}

// TestCallStackDiscipline: deeply nested calls and returns must
// preserve the architectural stack, and the RAS must mispredict
// gracefully (not corrupt execution) beyond its depth.
func TestCallStackDiscipline(t *testing.T) {
	app := objfile.New("app")
	const depth = 24 // deeper than the 16-entry RAS
	for i := 0; i < depth; i++ {
		f := app.NewFunc(fname(i))
		f.ALU(1)
		if i+1 < depth {
			f.Call(fname(i + 1))
		}
		f.Ret()
	}
	m := app.NewFunc("main")
	m.Call(fname(0))
	m.ALU(1)
	m.Halt()
	im, err := linker.Link(app, nil, linker.Options{Mode: linker.BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, DefaultConfig())
	res, err := c.RunSymbol("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	// 24 functions x (alu + maybe call + ret) + main's 3.
	want := uint64(depth*2 + (depth - 1) + 3)
	if res.Instructions != want {
		t.Errorf("Instructions = %d, want %d", res.Instructions, want)
	}
	// The 8 returns beyond RAS capacity mispredict but execute
	// correctly (we got here without ErrNoInstruction).
	if c.Counters().MispredRet == 0 {
		t.Error("no return mispredicts despite RAS overflow")
	}
}

func fname(i int) string { return "fn" + string(rune('a'+i/10)) + string(rune('0'+i%10)) }

// TestRecursion: self-recursive calls through a conditional exercise
// the stack and RAS under data-dependent depth.
func TestRecursion(t *testing.T) {
	app := objfile.New("app")
	f := app.NewFunc("rec")
	f.ALU(2)
	f.CondSkip(40, 1) // 60% chance to recurse
	f.Call("rec")
	f.Ret()
	m := app.NewFunc("main")
	m.Call("rec")
	m.Halt()
	im, err := linker.Link(app, nil, linker.Options{Mode: linker.BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, DefaultConfig())
	for i := 0; i < 50; i++ {
		if _, err := c.RunSymbol("main", 1_000_000); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// TestSweptStores: Store instructions with Span write to varying
// addresses; the D-cache and memory must both see every effective
// address.
func TestSweptStores(t *testing.T) {
	app := objfile.New("app")
	app.AddData("buf", 64*8)
	f := app.NewFunc("main")
	for i := 0; i < 200; i++ {
		f.Store("buf", 0, 64, 7)
	}
	f.Halt()
	im, err := linker.Link(app, nil, linker.Options{Mode: linker.BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, DefaultConfig())
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	appMod := im.Modules()[0]
	base := (appMod.GOTEnd + 63) &^ 63 // static: GOTEnd == GOTBase
	written := 0
	for s := uint64(0); s < 64; s++ {
		if im.Memory().Read64(base+s*8) == 7 {
			written++
		}
	}
	if written < 32 {
		t.Errorf("only %d/64 slots written by 200 swept stores", written)
	}
	if c.Counters().Stores != 200 {
		t.Errorf("Stores = %d", c.Counters().Stores)
	}
}

// TestCountersSubRoundTrip: Sub must be exact for every field.
func TestCountersSubRoundTrip(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, EnhancedConfig())
	run(t, c, 2)
	mid := c.Counters()
	run(t, c, 3)
	end := c.Counters()
	d := end.Sub(mid)
	if d.Instructions != end.Instructions-mid.Instructions {
		t.Error("Sub wrong for Instructions")
	}
	if d.TrampSkips != end.TrampSkips-mid.TrampSkips {
		t.Error("Sub wrong for TrampSkips")
	}
	if d.L1IMisses != end.L1IMisses-mid.L1IMisses {
		t.Error("Sub wrong for L1IMisses")
	}
	if d.MispredCond != end.MispredCond-mid.MispredCond {
		t.Error("Sub wrong for MispredCond")
	}
	if d.ABTBRedirects != end.ABTBRedirects-mid.ABTBRedirects {
		t.Error("Sub wrong for ABTBRedirects")
	}
}

// TestResolverStackDiscipline: the lazy resolver consumes exactly the
// two pushed words, so nested library calls resolve correctly even on
// the first invocation (call chains through multiple unresolved PLTs).
func TestResolverStackDiscipline(t *testing.T) {
	app := objfile.New("app")
	app.NewFunc("main").Call("outer").Halt()
	lib1 := objfile.New("lib1")
	lib1.NewFunc("outer").ALU(1).Call("inner").Ret() // cross-lib call, also unresolved
	lib2 := objfile.New("lib2")
	lib2.AddData("d", 8)
	lib2.NewFunc("inner").Store("d", 0, 1, 99).Ret()
	im, err := linker.Link(app, []*objfile.Object{lib1, lib2}, linker.Options{Mode: linker.BindLazy})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, EnhancedConfig())
	// First run: two nested resolutions on one call chain.
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if c.Counters().Resolutions != 2 {
		t.Errorf("Resolutions = %d, want 2", c.Counters().Resolutions)
	}
	lib2Mod := im.Modules()[2]
	if got := im.Memory().Read64((lib2Mod.GOTEnd + 63) &^ 63); got != 99 {
		t.Errorf("inner side effect = %d, want 99 (stack corrupted?)", got)
	}
}

// TestRunResultMatchesCounters: RunResult deltas must agree with the
// counter snapshots.
func TestRunResultMatchesCounters(t *testing.T) {
	im := buildProgram(t, 3, linker.BindLazy)
	c := New(im, DefaultConfig())
	before := c.Counters()
	res, err := c.RunSymbol("main", 0)
	if err != nil {
		t.Fatal(err)
	}
	d := c.Counters().Sub(before)
	if res.Instructions != d.Instructions || res.Cycles != d.Cycles {
		t.Errorf("RunResult %+v != counter delta {%d %d}", res, d.Instructions, d.Cycles)
	}
}

// TestCountersAddInvertsSub walks every field by reflection: for fully
// populated snapshots, prev.Add(end.Sub(prev)) must reproduce end
// exactly, so a counter added to the struct but forgotten in Add or
// Sub fails here by name.
func TestCountersAddInvertsSub(t *testing.T) {
	var prev, end Counters
	pv, ev := reflect.ValueOf(&prev).Elem(), reflect.ValueOf(&end).Elem()
	for i := 0; i < pv.NumField(); i++ {
		pv.Field(i).SetUint(uint64(3*i + 1))
		ev.Field(i).SetUint(uint64(7*i + 5))
	}
	got := prev.Add(end.Sub(prev))
	gv := reflect.ValueOf(got)
	for i := 0; i < gv.NumField(); i++ {
		if gv.Field(i).Uint() != ev.Field(i).Uint() {
			t.Errorf("Counters.%s: Add(Sub) = %d, want %d (field missing from Add or Sub?)",
				gv.Type().Field(i).Name, gv.Field(i).Uint(), ev.Field(i).Uint())
		}
	}
}
