package cpu

import (
	"testing"

	"repro/internal/linker"
	"repro/internal/objfile"
)

// benchImage builds a moderate program for throughput measurement.
func benchImage(b *testing.B, enhanced bool) *CPU {
	b.Helper()
	app := objfile.New("app")
	m := app.NewFunc("main")
	lib := objfile.New("lib")
	lib.AddData("d", 8192)
	for i := 0; i < 16; i++ {
		name := "f" + string(rune('a'+i))
		lib.NewFunc(name).ALU(8).Load("d", uint64(i*64), 8).Ret()
		m.Call(name)
	}
	m.Halt()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: linker.BindLazy})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	if enhanced {
		cfg = EnhancedConfig()
	}
	c := New(im, cfg)
	for i := 0; i < 3; i++ { // resolve and warm
		if _, err := c.RunSymbol("main", 0); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkSimulatedInstructions reports simulator throughput in
// nanoseconds per simulated instruction (as ns/op divided by the
// reported instructions metric).
func BenchmarkSimulatedInstructionsBase(b *testing.B) {
	c := benchImage(b, false)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSymbol("main", 0)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

func BenchmarkSimulatedInstructionsEnhanced(b *testing.B) {
	c := benchImage(b, true)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSymbol("main", 0)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// BenchmarkRunTimelineOff is the sampling-disabled baseline for the
// timeline overhead comparison: identical to the enhanced-config
// throughput bench, with no sampler ever attached.  The acceptance
// bound is a ≤1% delta against the pre-sampling kernel and zero
// allocations per run (see TestTimelineOffNoAllocs).
func BenchmarkRunTimelineOff(b *testing.B) {
	c := benchImage(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSymbol("main", 0)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// BenchmarkRunTimelineOn measures the same workload with a sampler
// attached at the default production interval (64Ki instructions).
// The callback is a counting no-op so the bench isolates the kernel's
// own sampling cost: the boundary bookkeeping, not the collector.
func BenchmarkRunTimelineOn(b *testing.B) {
	c := benchImage(b, true)
	var fired uint64
	c.SetSampler(64<<10, func(IntervalSample) { fired++ })
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSymbol("main", 0)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// benchComputeCPU builds a compute-heavy image for the compiled-trace
// A/B: long straight-line ALU bodies with occasional data accesses,
// the shape trace compilation batches into full superblocks.  The
// same CPU runs interpreted or compiled depending on the flag; the
// two paths are bit-identical (TestCompiledBitIdentical), so the
// instrs/op metric must agree between the pair.
func benchComputeCPU(b *testing.B, compiled bool) *CPU {
	b.Helper()
	app := objfile.New("app")
	m := app.NewFunc("main")
	lib := objfile.New("lib")
	lib.AddData("d", 8192)
	for i := 0; i < 8; i++ {
		name := "w" + string(rune('a'+i))
		f := lib.NewFunc(name)
		for j := 0; j < 6; j++ {
			f.ALU(28).Load("d", uint64(i*64), 512)
		}
		f.Ret()
		m.Call(name)
		m.ALU(16)
	}
	m.Halt()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: linker.BindLazy})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	c := New(im, cfg)
	if compiled {
		if err := c.SetProgram(Compile(im, cfg.L1I.LineBytes)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ { // resolve and warm
		if _, err := c.RunSymbol("main", 0); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func benchComputeRun(b *testing.B, c *CPU) {
	b.Helper()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSymbol("main", 0)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// BenchmarkComputeInterpreted / BenchmarkComputeCompiled are the
// compiled-trace A/B pair scripts/sample_bench.sh records: the same
// compute-heavy workload stepped instruction by instruction vs
// replayed from the compiled Program (superblock dispatch, RLE fetch
// runs, threaded successors).
func BenchmarkComputeInterpreted(b *testing.B) {
	benchComputeRun(b, benchComputeCPU(b, false))
}

func BenchmarkComputeCompiled(b *testing.B) {
	benchComputeRun(b, benchComputeCPU(b, true))
}
