package cpu

import (
	"testing"

	"repro/internal/linker"
	"repro/internal/objfile"
)

// benchImage builds a moderate program for throughput measurement.
func benchImage(b *testing.B, enhanced bool) *CPU {
	b.Helper()
	app := objfile.New("app")
	m := app.NewFunc("main")
	lib := objfile.New("lib")
	lib.AddData("d", 8192)
	for i := 0; i < 16; i++ {
		name := "f" + string(rune('a'+i))
		lib.NewFunc(name).ALU(8).Load("d", uint64(i*64), 8).Ret()
		m.Call(name)
	}
	m.Halt()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: linker.BindLazy})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	if enhanced {
		cfg = EnhancedConfig()
	}
	c := New(im, cfg)
	for i := 0; i < 3; i++ { // resolve and warm
		if _, err := c.RunSymbol("main", 0); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkSimulatedInstructions reports simulator throughput in
// nanoseconds per simulated instruction (as ns/op divided by the
// reported instructions metric).
func BenchmarkSimulatedInstructionsBase(b *testing.B) {
	c := benchImage(b, false)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSymbol("main", 0)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

func BenchmarkSimulatedInstructionsEnhanced(b *testing.B) {
	c := benchImage(b, true)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSymbol("main", 0)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}
