// Package cpu implements the trace-driven processor model that
// executes linked images and produces the paper's measurements.
//
// The model is a functional fetch/execute/retire pipeline with a
// cycle-cost account, not a cycle-accurate out-of-order core: the
// paper's results are counter deltas (cache misses, TLB misses,
// branch mispredictions per kilo-instruction) and the latency shifts
// those deltas imply, which a functional simulator with real
// set-associative structures reproduces.
//
// Per instruction the CPU performs, in order:
//
//	fetch:   I-TLB translation and L1I access over the instruction's
//	         byte range; branch prediction for control flow (BTB for
//	         targets, gshare for directions, RAS for returns).
//	execute: architectural semantics — memory accesses through the
//	         D-TLB and L1D, stack pushes/pops, GOT reads by PLT
//	         trampolines, the lazy resolver, conditional outcomes.
//	retire:  branch resolution with the ABTB hook (§3.2): if the
//	         resolved target of a call hits the ABTB, the mapped
//	         library-function address is treated as the correct
//	         target, the predictor is trained to it, and the
//	         trampoline is skipped; every retired store is snooped
//	         against the ABTB's Bloom filter.
//
// All dynamic behaviour is a pure function of (pc, per-pc execution
// count, seed), so the same image executes identically under every
// hardware configuration — the property that makes Base-vs-Enhanced
// comparisons exact.
package cpu

import (
	"fmt"

	"repro/internal/abtb"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/linker"
	"repro/internal/mem"
	"repro/internal/tlb"
)

// Config selects the hardware configuration.
type Config struct {
	// ABTB, when non-nil, enables the paper's mechanism ("Enhanced").
	// Nil models the base system.
	ABTB *abtb.Config

	Branch branch.Config

	L1I, L1D, L2 cache.Config
	ITLB, DTLB   tlb.Config

	// MispredictPenalty is the pipeline-flush cost in cycles.
	MispredictPenalty int

	// FetchBubblePenalty is the cost of a fetch redirect for a
	// direct branch whose target was absent from the BTB (computed
	// at decode, far cheaper than a full flush).
	FetchBubblePenalty int

	// ResolverInstrs and ResolverLoads model the dynamic linker's
	// lazy resolution work: the number of ld.so instructions executed
	// and the number of data touches over the linker's tables.
	ResolverInstrs int
	ResolverLoads  int

	// PageFaultPenalty is the cycle cost of a demand-paging fault on
	// first touch of a lazily-mapped library page (trap, map, resume).
	// It is only charged for images with demand-loaded modules, so
	// configurations without churn are unaffected by its value.
	PageFaultPenalty int

	// SharedL2, when non-nil, is used as the second-level cache
	// instead of a private one built from the L2 config — the
	// organisation of the paper's Xeon E5450, where cores share the
	// 12 MiB last-level cache.  The smp package uses it to build
	// multi-core clusters.
	SharedL2 *cache.Cache

	// Seed drives conditional-branch outcomes and load-address
	// sweeps.
	Seed uint64
}

// DefaultConfig returns a configuration approximating the paper's
// Xeon E5450 testbed, with the ABTB disabled (base system).
func DefaultConfig() Config {
	return Config{
		Branch: branch.DefaultConfig(),
		L1I:    cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitLatency: 0, MissPenalty: 8},
		L1D:    cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitLatency: 0, MissPenalty: 8},
		L2:     cache.Config{Name: "L2", SizeBytes: 12 << 20, LineBytes: 64, Ways: 24, HitLatency: 4, MissPenalty: 180},
		ITLB:   tlb.Config{Name: "ITLB", Entries: 128, Ways: 4, MissPenalty: 30},
		DTLB:   tlb.Config{Name: "DTLB", Entries: 256, Ways: 4, MissPenalty: 30},

		MispredictPenalty:  15,
		FetchBubblePenalty: 3,
		ResolverInstrs:     240,
		ResolverLoads:      40,
		PageFaultPenalty:   1200,
	}
}

// EnhancedConfig returns DefaultConfig with the paper's headline ABTB
// (256 entries, Bloom-filtered).
func EnhancedConfig() Config {
	c := DefaultConfig()
	a := abtb.DefaultConfig()
	c.ABTB = &a
	return c
}

// Counters is a snapshot of the CPU's measurement state.
type Counters struct {
	Instructions uint64 // retired architectural instructions
	Cycles       uint64

	TrampInstrs uint64 // retired instructions inside PLT sections
	TrampCalls  uint64 // calls resolving to a PLT slot
	TrampSkips  uint64 // of those, skipped via ABTB redirect

	Loads, Stores uint64

	Branches    uint64
	Mispredicts uint64
	// Mispredict decomposition: conditional direction/target, return,
	// indirect branch (trampolines, function pointers, resolver), and
	// call-target redirects (BTB conflicts and ABTB substitutions).
	MispredCond, MispredRet, MispredIndirect, MispredCall uint64
	FetchBubbles                                          uint64

	Resolutions uint64 // lazy symbol resolutions executed

	L1IAccesses, L1IMisses   uint64
	L1DAccesses, L1DMisses   uint64
	L2Accesses, L2Misses     uint64
	ITLBAccesses, ITLBMisses uint64
	DTLBAccesses, DTLBMisses uint64

	BTBEvictions  uint64
	ABTBRedirects uint64
	ABTBFlushes   uint64
}

// Sub returns c - prev, for windowed measurements.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		MispredCond:     c.MispredCond - prev.MispredCond,
		MispredRet:      c.MispredRet - prev.MispredRet,
		MispredIndirect: c.MispredIndirect - prev.MispredIndirect,
		MispredCall:     c.MispredCall - prev.MispredCall,
		Instructions:    c.Instructions - prev.Instructions,
		Cycles:          c.Cycles - prev.Cycles,
		TrampInstrs:     c.TrampInstrs - prev.TrampInstrs,
		TrampCalls:      c.TrampCalls - prev.TrampCalls,
		TrampSkips:      c.TrampSkips - prev.TrampSkips,
		Loads:           c.Loads - prev.Loads,
		Stores:          c.Stores - prev.Stores,
		Branches:        c.Branches - prev.Branches,
		Mispredicts:     c.Mispredicts - prev.Mispredicts,
		FetchBubbles:    c.FetchBubbles - prev.FetchBubbles,
		Resolutions:     c.Resolutions - prev.Resolutions,
		L1IAccesses:     c.L1IAccesses - prev.L1IAccesses,
		L1IMisses:       c.L1IMisses - prev.L1IMisses,
		L1DAccesses:     c.L1DAccesses - prev.L1DAccesses,
		L1DMisses:       c.L1DMisses - prev.L1DMisses,
		L2Accesses:      c.L2Accesses - prev.L2Accesses,
		L2Misses:        c.L2Misses - prev.L2Misses,
		ITLBAccesses:    c.ITLBAccesses - prev.ITLBAccesses,
		ITLBMisses:      c.ITLBMisses - prev.ITLBMisses,
		DTLBAccesses:    c.DTLBAccesses - prev.DTLBAccesses,
		DTLBMisses:      c.DTLBMisses - prev.DTLBMisses,
		BTBEvictions:    c.BTBEvictions - prev.BTBEvictions,
		ABTBRedirects:   c.ABTBRedirects - prev.ABTBRedirects,
		ABTBFlushes:     c.ABTBFlushes - prev.ABTBFlushes,
	}
}

// Add returns c + d, the inverse of Sub — used to total windowed
// measurements (sampled simulation sums its per-window deltas).
func (c Counters) Add(d Counters) Counters {
	return Counters{
		MispredCond:     c.MispredCond + d.MispredCond,
		MispredRet:      c.MispredRet + d.MispredRet,
		MispredIndirect: c.MispredIndirect + d.MispredIndirect,
		MispredCall:     c.MispredCall + d.MispredCall,
		Instructions:    c.Instructions + d.Instructions,
		Cycles:          c.Cycles + d.Cycles,
		TrampInstrs:     c.TrampInstrs + d.TrampInstrs,
		TrampCalls:      c.TrampCalls + d.TrampCalls,
		TrampSkips:      c.TrampSkips + d.TrampSkips,
		Loads:           c.Loads + d.Loads,
		Stores:          c.Stores + d.Stores,
		Branches:        c.Branches + d.Branches,
		Mispredicts:     c.Mispredicts + d.Mispredicts,
		FetchBubbles:    c.FetchBubbles + d.FetchBubbles,
		Resolutions:     c.Resolutions + d.Resolutions,
		L1IAccesses:     c.L1IAccesses + d.L1IAccesses,
		L1IMisses:       c.L1IMisses + d.L1IMisses,
		L1DAccesses:     c.L1DAccesses + d.L1DAccesses,
		L1DMisses:       c.L1DMisses + d.L1DMisses,
		L2Accesses:      c.L2Accesses + d.L2Accesses,
		L2Misses:        c.L2Misses + d.L2Misses,
		ITLBAccesses:    c.ITLBAccesses + d.ITLBAccesses,
		ITLBMisses:      c.ITLBMisses + d.ITLBMisses,
		DTLBAccesses:    c.DTLBAccesses + d.DTLBAccesses,
		DTLBMisses:      c.DTLBMisses + d.DTLBMisses,
		BTBEvictions:    c.BTBEvictions + d.BTBEvictions,
		ABTBRedirects:   c.ABTBRedirects + d.ABTBRedirects,
		ABTBFlushes:     c.ABTBFlushes + d.ABTBFlushes,
	}
}

// IntervalSample is a cumulative snapshot of the CPU's measurement
// state taken at an interval-sampling boundary (see SetSampler).  It
// carries the full Counters set plus ABTB/Bloom detail that is kept
// out of Counters so the golden aggregate-counter set stays frozen:
// insertions into the ABTB, Bloom-filter store snoops (lookups), and
// snoops that hit the filter and flushed the table (true GOT stores
// plus false positives), and the count of retired GOT stores
// performed by the resolver.
//
// Values are running totals since the last ResetStats; consumers
// difference consecutive samples to obtain per-interval deltas.
type IntervalSample struct {
	Counters Counters

	ABTBInserts    uint64 // entries installed into the ABTB
	BloomLookups   uint64 // retired stores snooped against the Bloom filter
	BloomFlushHits uint64 // snoops that hit the filter and flushed (incl. false positives)
	GOTStores      uint64 // retired linker stores into the GOT (resolver + runtime load/unload)
	PageFaults     uint64 // demand-paging faults on first touch of lazily-mapped library pages
}

// execPage holds per-PC dynamic execution counts for one
// instruction-index page, indexed by the PC's in-page byte offset.
// Hanging the counters off the fetch page (allocated lazily, only for
// pages whose instructions consult their counts) turns the per-retire
// count bump from a map operation into an array increment.
type execPage [mem.PageSize]uint64

// pageMemoSize is the size (a power of two) of the CPU's direct-mapped
// fetch-page memo, which caches instruction-index pages and their
// counter pages by page number.  Call-heavy code ping-pongs between a
// handful of pages (caller, PLT, callee), so this absorbs nearly all
// page switches without a map probe.
const pageMemoSize = 128

type pageMemoEntry struct {
	pn     uint64
	page   *linker.InstrPage // nil marks an empty memo slot
	counts *execPage
}

// pageMemoIdx spreads page numbers across the memo.  Text pages from
// different modules can share low bits (module bases are aligned), so
// a straight mask would thrash; a golden-ratio multiply decorrelates
// them.
func pageMemoIdx(pn uint64) uint64 {
	return (pn * 0x9e3779b97f4a7c15) >> (64 - 7) // log2(pageMemoSize) == 7
}

// CPU executes one linked image.
type CPU struct {
	cfg Config
	img *linker.Image
	mem *mem.Memory // the image's data memory, cached at construction

	l1i, l1d, l2 *cache.Cache
	itlb, dtlb   *tlb.TLB
	bp           *branch.Predictor
	ab           *abtb.ABTB // nil in the base system

	sp uint64

	// Fetch memo: the instruction-index page of the last fetch, and
	// that page's execution counters (nil until first bump).
	// Sequential execution stays on one page for dozens of
	// instructions, so page-crossing map lookups amortise to nothing.
	fetchPageNum uint64
	fetchPage    *linker.InstrPage
	fetchCounts  *execPage
	pageMemo     [pageMemoSize]pageMemoEntry

	// Per-PC dynamic execution counts, kept only for instructions
	// whose behaviour depends on them (conditional branches and
	// swept loads/stores), paged like the fetch index.
	execPages map[uint64]*execPage

	// Per-trampoline call counts, including skipped ones, indexed by
	// the image's dense trampoline numbering (see
	// linker.Image.TrampolineIndex); feeds Tables 2-3 and Figures 4-5.
	trampCounts []uint64

	// TraceLibCall, when set, is invoked for every call that resolves
	// to a PLT slot, with the slot address.  The trace package uses
	// it to record trampoline streams for offline working-set
	// analysis (Figure 5).
	TraceLibCall func(slot uint64)

	// TraceStore, when set, is invoked with the address of every
	// retired store.  The smp package uses it to broadcast coherence
	// invalidations to the other cores' ABTBs (§3.1).
	TraceStore func(addr uint64)

	// Interval sampling (SetSampler): when onSample is non-nil, Run
	// invokes it each time retired instructions cross nextSampleAt,
	// then advances nextSampleAt by sampleEvery.  The check rides the
	// Run loop's existing per-step budget comparison — a single
	// precomputed limit — so the disabled path is bit-identical to a
	// build without sampling and adds no per-instruction work.
	// sampleOrigin anchors the absolute boundary grid: every boundary
	// is sampleOrigin + k*sampleEvery, including after a mid-run
	// interval change (see SetSampleInterval).
	sampleEvery  uint64
	sampleOrigin uint64
	nextSampleAt uint64
	onSample     func(IntervalSample)

	// prog, when non-nil, is the compiled-trace program for the image
	// (see Compile/SetProgram): Run replays the dense branch-threaded
	// instruction array instead of interpreting via per-PC page
	// lookups.  The compiled path is bit-identical to the interpreted
	// one.  cntPageNum/cntPage memoise the execution-counter page for
	// the compiled loop, which never touches the fetch memo.
	prog       *Program
	cntPageNum uint64
	cntPage    *execPage
	idxMemo    [pageMemoSize]idxMemoEntry

	// gotStores counts retired linker stores into the GOT (lazy
	// resolutions plus runtime load/unload rebinds).  It is
	// deliberately not a Counters field: the golden-counter test
	// freezes that set, and timeline samples carry it separately.
	gotStores uint64

	// Demand-driven loading state (see linker.Image.TouchPage):
	// pageFaults counts first-touch faults on lazily-mapped library
	// pages (outside Counters, like gotStores); demand arms the
	// fetch-side touch check and is re-derived at every Run entry.
	// memoGen is the image generation the fetch/index memos were built
	// against — runtime Load/Unload replaces instruction pages, so
	// stale memos would fetch freed code.
	pageFaults uint64
	demand     bool
	memoGen    uint64

	c Counters
}

// New constructs a CPU for the image.  Configuration errors panic:
// hardware geometry is fixed by the experiment definitions.
func New(img *linker.Image, cfg Config) *CPU {
	l2 := cfg.SharedL2
	if l2 == nil {
		l2 = cache.New(cfg.L2, nil)
	}
	c := &CPU{
		cfg:         cfg,
		img:         img,
		mem:         img.Memory(),
		l2:          l2,
		l1i:         cache.New(cfg.L1I, l2),
		l1d:         cache.New(cfg.L1D, l2),
		itlb:        tlb.New(cfg.ITLB),
		dtlb:        tlb.New(cfg.DTLB),
		bp:          branch.New(cfg.Branch),
		execPages:   make(map[uint64]*execPage),
		trampCounts: make([]uint64, img.Trampolines()),
	}
	if cfg.ABTB != nil {
		c.ab = abtb.New(*cfg.ABTB)
	}
	return c
}

// Image returns the image the CPU executes.
func (c *CPU) Image() *linker.Image { return c.img }

// Enhanced reports whether the ABTB mechanism is active.
func (c *CPU) Enhanced() bool { return c.ab != nil }

// ABTB returns the ABTB, or nil for the base system.
func (c *CPU) ABTB() *abtb.ABTB { return c.ab }

// RunResult summarises one Run.
type RunResult struct {
	Instructions uint64
	Cycles       uint64
}

// ErrNoInstruction is returned (wrapped) when execution reaches an
// address with no decoded instruction — a wild jump or a fall-through
// off the end of a function.
var ErrNoInstruction = fmt.Errorf("cpu: execution reached unmapped code")

// Run executes from the entry address until a Halt retires, returning
// the instructions and cycles consumed by this run.  maxInstrs bounds
// runaway execution (0 means a generous default).
//
// On error — budget exhaustion or a decode/resolve failure — Run
// returns the partial instruction and cycle counts consumed so far
// alongside the error, so callers can account for truncated work.
// The budget is checked before each step and a single step can retire
// more than one instruction: a Resolve retires the resolver's whole
// footprint, so the returned count may overshoot maxInstrs by up to
// Config.ResolverInstrs+1 instructions (+1 more with the §3.4
// explicit-invalidate variant).
func (c *CPU) Run(entry uint64, maxInstrs uint64) (RunResult, error) {
	if maxInstrs == 0 {
		maxInstrs = 100_000_000
	}
	c.syncChurn()
	if c.prog != nil {
		return c.runCompiled(entry, maxInstrs)
	}
	start := c.c
	// The loop stops at limit = min(budget end, next sample boundary):
	// one comparison per step whether or not sampling is enabled, so
	// the timeline-off path does exactly the work it did before
	// sampling existed.  Sample boundaries persist across Run calls
	// (nextSampleAt is an absolute retired-instruction count), so a
	// measure window made of many short runs samples on one grid.
	budgetEnd := start.Instructions + maxInstrs
	limit := budgetEnd
	if c.onSample != nil && c.nextSampleAt < limit {
		limit = c.nextSampleAt
	}
	c.sp = c.img.StackTop() - 64
	pc := entry
	for {
		if c.c.Instructions >= limit {
			if c.c.Instructions >= budgetEnd {
				return c.runDelta(start), fmt.Errorf("cpu: instruction budget %d exhausted at pc %#x", maxInstrs, pc)
			}
			c.takeSample()
			limit = budgetEnd
			if c.nextSampleAt < limit {
				limit = c.nextSampleAt
			}
			continue
		}
		next, halted, err := c.step(pc)
		if err != nil {
			return c.runDelta(start), err
		}
		if halted {
			return c.runDelta(start), nil
		}
		pc = next
	}
}

// takeSample emits one interval sample and advances the boundary past
// the current instruction count.  A single step can retire hundreds of
// instructions (a Resolve), so one crossing may cover several
// boundaries; exactly one sample is emitted and the skipped intervals
// are visible to consumers as a larger instruction delta.
func (c *CPU) takeSample() {
	c.onSample(c.IntervalSnapshot())
	for c.nextSampleAt <= c.c.Instructions {
		c.nextSampleAt += c.sampleEvery
	}
}

// SetSampler enables interval sampling: fn is invoked from Run each
// time retired instructions cross a boundary, every instructions
// apart, with a cumulative IntervalSample.  The first boundary is
// every instructions from the current count, so callers attach the
// sampler immediately after ResetStats to sample a measurement window
// from zero.  every==0 or fn==nil disables sampling.
//
// fn runs synchronously inside Run; it must not call back into the
// CPU other than SetSampleInterval.
func (c *CPU) SetSampler(every uint64, fn func(IntervalSample)) {
	if every == 0 || fn == nil {
		c.sampleEvery, c.nextSampleAt, c.onSample = 0, 0, nil
		return
	}
	c.sampleEvery = every
	c.onSample = fn
	c.sampleOrigin = c.c.Instructions
	c.nextSampleAt = c.sampleOrigin + every
}

// SetSampleInterval changes the sampling interval for subsequent
// boundaries without disturbing the current one.  Collectors use it
// from inside the sample callback when they compact: after merging
// adjacent points they double the interval so the series stays
// bounded.  No-op when sampling is disabled or every is zero.
//
// The re-arm stays on the absolute grid anchored at SetSampler time:
// the next boundary is the first sampleOrigin + k*every strictly past
// the current instruction count, so a collector that compacted mid-run
// emits the same boundaries a fresh collector at the wider interval
// would.  (A relative re-arm from the current count would drift off
// the grid by the boundary-crossing overshoot.)
func (c *CPU) SetSampleInterval(every uint64) {
	if c.onSample != nil && every != 0 {
		c.sampleEvery = every
		c.nextSampleAt = c.sampleOrigin + ((c.c.Instructions-c.sampleOrigin)/every+1)*every
	}
}

// SampleInterval returns the active sampling interval in instructions,
// or 0 when sampling is disabled.
func (c *CPU) SampleInterval() uint64 {
	if c.onSample == nil {
		return 0
	}
	return c.sampleEvery
}

// IntervalSnapshot returns the current cumulative sample: the full
// counter set plus the ABTB/Bloom totals that live outside Counters.
// Collectors call it directly at the end of a measurement window to
// flush the final partial interval.
func (c *CPU) IntervalSnapshot() IntervalSample {
	c.syncCounters()
	s := IntervalSample{Counters: c.c, GOTStores: c.gotStores, PageFaults: c.pageFaults}
	if c.ab != nil {
		s.ABTBInserts = c.ab.Inserts()
		s.BloomLookups = c.ab.StoreSnoops()
		s.BloomFlushHits = c.ab.FlushingStores()
	}
	return s
}

// runDelta returns the instructions and cycles retired since start.
func (c *CPU) runDelta(start Counters) RunResult {
	return RunResult{
		Instructions: c.c.Instructions - start.Instructions,
		Cycles:       c.c.Cycles - start.Cycles,
	}
}

// RunSymbol resolves a function symbol and runs from it.
func (c *CPU) RunSymbol(sym string, maxInstrs uint64) (RunResult, error) {
	entry, ok := c.img.Symbol(sym)
	if !ok {
		return RunResult{}, fmt.Errorf("cpu: unknown entry symbol %q", sym)
	}
	return c.Run(entry, maxInstrs)
}

// step retires one instruction (or a call plus a skipped trampoline)
// and returns the next PC.
func (c *CPU) step(pc uint64) (next uint64, halted bool, err error) {
	in := c.fetch(pc)
	if in == nil {
		return 0, false, fmt.Errorf("%w: pc %#x", ErrNoInstruction, pc)
	}
	size := uint64(in.Size)

	// ---- Fetch ----
	if c.demand {
		c.touchFetch(pc, size)
	}
	c.c.Cycles += uint64(c.itlb.AccessRange(pc, size))
	c.c.Cycles += uint64(c.l1i.AccessRange(pc, size))

	// Branch prediction at fetch.
	var predicted uint64
	var predValid bool
	var predTaken bool
	switch in.Op {
	case isa.Call, isa.CallInd, isa.Jmp, isa.JmpMem, isa.Resolve:
		predicted, predValid = c.bp.PredictTarget(pc)
		if in.Op.IsCall() {
			c.bp.PushReturn(pc + size)
		}
	case isa.JmpCond:
		predTaken = c.bp.PredictCond(pc)
		if predTaken {
			predicted, predValid = c.bp.PredictTarget(pc)
		} else {
			predicted, predValid = pc+size, true
		}
	case isa.Ret:
		predicted, predValid = c.bp.PredictReturn()
	}

	// ---- Execute ----
	if in.PLT {
		c.c.TrampInstrs++
	}
	c.c.Instructions++
	c.c.Cycles++ // base CPI of 1

	var actual uint64 // resolved next PC for control flow
	switch in.Op {
	case isa.Halt:
		c.retireBreak()
		c.syncCounters()
		return 0, true, nil

	case isa.Nop, isa.ALU:
		// Simple register-only instructions may be trampoline glue
		// (ARM's address-forming adds) within the pattern window.
		if c.ab != nil {
			c.ab.OnRetireOther(pc, in.Size)
		}
		return pc + size, false, nil

	case isa.Load:
		addr := in.EffAddr(pc, c.bumpN(pc))
		c.dataRead(addr)
		c.retireBreak()
		return pc + size, false, nil

	case isa.Store:
		addr := in.EffAddr(pc, c.bumpN(pc))
		c.dataWrite(addr, in.Val)
		c.retireBreak()
		return pc + size, false, nil

	case isa.Push:
		c.sp -= 8
		c.dataWrite(c.sp, in.Val)
		c.retireBreak()
		return pc + size, false, nil

	case isa.Call:
		actual = in.Target
		c.sp -= 8
		c.dataWrite(c.sp, pc+size)

	case isa.CallInd:
		actual = c.dataRead(in.Mem)
		c.sp -= 8
		c.dataWrite(c.sp, pc+size)

	case isa.Jmp:
		actual = in.Target

	case isa.JmpCond:
		taken := in.CondTaken(pc, c.bumpN(pc), c.cfg.Seed)
		if taken {
			actual = in.Target
		} else {
			actual = pc + size
		}
		c.c.Branches++
		switch {
		case taken != predTaken:
			c.c.Mispredicts++
			c.c.MispredCond++
			c.c.Cycles += uint64(c.cfg.MispredictPenalty)
		case taken && !predValid:
			// Direction right but no BTB target: redirect at decode.
			c.c.FetchBubbles++
			c.c.Cycles += uint64(c.cfg.FetchBubblePenalty)
		case taken && predicted != actual:
			c.c.Mispredicts++
			c.c.MispredCond++
			c.c.Cycles += uint64(c.cfg.MispredictPenalty)
		}
		c.bp.UpdateCond(pc, taken)
		if taken {
			c.bp.UpdateTarget(pc, actual)
		}
		c.retireBreak()
		return actual, false, nil

	case isa.JmpMem:
		actual = c.dataRead(in.Mem)

	case isa.Ret:
		actual = c.dataRead(c.sp)
		c.sp += 8

	case isa.Resolve:
		return c.execResolve(pc, predicted, predValid)

	default:
		return 0, false, fmt.Errorf("cpu: unexecutable opcode %v at %#x", in.Op, pc)
	}

	// ---- Retire: branch resolution with the ABTB hook ----
	effective := actual
	skipped := false
	if in.Op.IsCall() {
		if idx := c.img.TrampolineIndex(actual); idx >= 0 {
			c.c.TrampCalls++
			c.trampCounts[idx]++
			if c.TraceLibCall != nil {
				c.TraceLibCall(actual)
			}
		}
		if c.ab != nil {
			if target, hit := c.ab.Lookup(actual); hit {
				effective = target
				skipped = true
				c.c.TrampSkips++
			}
		}
	}

	c.c.Branches++
	if !predValid || predicted != effective {
		if (in.Op == isa.Call || in.Op == isa.Jmp) && !skipped {
			// Direct branches recover at decode unless the ABTB
			// redirected them somewhere the decoder cannot know.
			c.c.FetchBubbles++
			c.c.Cycles += uint64(c.cfg.FetchBubblePenalty)
		} else {
			c.c.Mispredicts++
			c.c.Cycles += uint64(c.cfg.MispredictPenalty)
			switch {
			case skipped || in.Op == isa.Call:
				c.c.MispredCall++
			case in.Op == isa.Ret:
				c.c.MispredRet++
			default:
				c.c.MispredIndirect++
			}
		}
	}
	if in.Op != isa.Ret {
		// Returns are predicted by the RAS, not the BTB.
		c.bp.UpdateTarget(pc, effective)
	}

	// ABTB retire-time population (§3.2).  Only indirect *jumps*
	// qualify as the pattern's second half: an indirect call pushes a
	// return address, so skipping it would corrupt the call stack —
	// the hardware distinguishes the opcodes at retire.
	if c.ab != nil {
		if in.Op.IsIndirectBranch() {
			memAddr := uint64(0)
			if in.Op == isa.JmpMem {
				memAddr = in.Mem
			}
			c.ab.OnRetireIndirectBranch(pc, actual, memAddr)
		}
		if in.Op.IsCall() {
			c.ab.OnRetireCall(actual)
		} else if !in.Op.IsIndirectBranch() {
			c.ab.BreakPattern() // direct jumps are never glue
		}
	}

	return effective, false, nil
}

// syncChurn re-arms per-run state that runtime library churn can
// change between Run calls: when the image generation moved, the
// fetch-page and compiled-index memos are dropped (their page objects
// may describe freed code), the per-trampoline counter array grows to
// cover dense indices appended by Load, and the demand-paging check is
// armed iff unmapped pages exist.  For unchurned images this is two
// comparisons per Run.
func (c *CPU) syncChurn() {
	c.demand = c.img.HasDemandPages()
	if g := c.img.Generation(); g != c.memoGen {
		c.memoGen = g
		c.fetchPageNum, c.fetchPage, c.fetchCounts = 0, nil, nil
		c.pageMemo = [pageMemoSize]pageMemoEntry{}
		c.idxMemo = [pageMemoSize]idxMemoEntry{}
		c.cntPageNum, c.cntPage = 0, nil
		if n := len(c.img.TrampolineAddrs()); n > len(c.trampCounts) {
			grown := make([]uint64, n)
			copy(grown, c.trampCounts)
			c.trampCounts = grown
		}
	}
}

// touchFetch charges demand-paging faults for the instruction bytes
// [pc, pc+size): the first touch of a demand-mapped page traps to the
// loader, which maps it (Mururu et al.'s demand-driven loading).
func (c *CPU) touchFetch(pc, size uint64) {
	for pn := pc >> mem.PageShift; pn <= (pc+size-1)>>mem.PageShift; pn++ {
		c.demandTouch(pn)
	}
}

// demandTouch records a fetch from page pn, charging a fault on the
// first touch of a demand-mapped page and disarming the check once no
// unmapped pages remain.
func (c *CPU) demandTouch(pn uint64) {
	if c.img.TouchPage(pn) {
		c.pageFaults++
		c.c.Cycles += uint64(c.cfg.PageFaultPenalty)
		if !c.img.HasDemandPages() {
			c.demand = false
		}
	}
}

// PageFaults returns the demand-paging faults taken since the last
// ResetStats.  Like gotStores it lives outside Counters so the golden
// aggregate-counter set stays frozen.
func (c *CPU) PageFaults() uint64 { return c.pageFaults }

// LinkerStore is the runtime dynamic linker's store primitive (the
// production linker.StoreFunc passed to Image.Load/Unload): a retired
// store that flows through the D-TLB, D-cache and the ABTB's Bloom
// snoop exactly like the lazy resolver's GOT update — the mechanism
// that makes dlclose tombstones flush stale trampoline mappings.  In
// the §3.4 explicit-invalidate variant (no Bloom watching stores) the
// modified loader executes the invalidate instruction instead.
func (c *CPU) LinkerStore(addr, val uint64) {
	c.dataWrite(addr, val)
	c.gotStores++
	if c.ab != nil && c.ab.Config().ExplicitInvalidate {
		c.ab.Invalidate()
	}
}

// fetch returns the decoded instruction at pc (nil if unmapped),
// memoising the containing index page and its execution-counter page:
// sequential execution stays on one page for dozens of instructions.
func (c *CPU) fetch(pc uint64) *isa.Instr {
	pn := pc >> mem.PageShift
	if pn != c.fetchPageNum || c.fetchPage == nil {
		if !c.fetchSwitch(pn, pc) {
			return nil
		}
	}
	return c.fetchPage[pc&(mem.PageSize-1)]
}

// fetchSwitch re-points the fetch memo at pn's index page, consulting
// the image and counter maps only on a page-memo miss.
func (c *CPU) fetchSwitch(pn, pc uint64) bool {
	c.fetchPageNum = pn
	m := &c.pageMemo[pageMemoIdx(pn)]
	if m.pn == pn && m.page != nil {
		c.fetchPage, c.fetchCounts = m.page, m.counts
		return true
	}
	pg := c.img.InstrPageAt(pc)
	c.fetchPage = pg
	if pg == nil {
		c.fetchCounts = nil
		return false
	}
	cnt := c.execPages[pn] // nil until the page first bumps
	c.fetchCounts = cnt
	*m = pageMemoEntry{pn: pn, page: pg, counts: cnt}
	return true
}

// execResolve models the lazy dynamic linker invocation reached
// through PLT0 (§2): read the pushed module ID and relocation index,
// perform the binding work, store the resolved address into the GOT
// (snooped by the ABTB), and jump to the function.
func (c *CPU) execResolve(pc, predicted uint64, predValid bool) (uint64, bool, error) {
	modID := c.dataRead(c.sp)
	relocIdx := c.dataRead(c.sp + 8)
	c.sp += 16

	gotAddr, funcAddr, err := c.img.Resolve(modID, relocIdx)
	if err != nil {
		return 0, false, err
	}
	c.c.Resolutions++

	// The resolver's own footprint: ld.so executes a few hundred
	// instructions and walks its symbol tables.
	base, sz := c.img.LinkerData()
	for i := 0; i < c.cfg.ResolverLoads; i++ {
		addr := base + isa.DetHash(uint64(relocIdx), uint64(i), modID)%(sz-8)
		c.dataRead(addr &^ 7)
	}
	c.c.Instructions += uint64(c.cfg.ResolverInstrs)
	c.c.Cycles += uint64(c.cfg.ResolverInstrs)

	// The GOT store that redirects future trampoline executions.
	c.dataWrite(gotAddr, funcAddr)
	c.gotStores++
	// In the §3.4 variant there is no Bloom filter watching that
	// store; the modified resolver executes the architecturally
	// visible ABTB-invalidate instruction instead.
	if c.ab != nil && c.ab.Config().ExplicitInvalidate {
		c.ab.Invalidate()
		c.c.Instructions++
		c.c.Cycles++
	}

	// The resolver's final indirect jump to the bound function; it is
	// effectively never predicted correctly.
	c.c.Branches++
	if !predValid || predicted != funcAddr {
		c.c.Mispredicts++
		c.c.MispredIndirect++
		c.c.Cycles += uint64(c.cfg.MispredictPenalty)
	}
	c.bp.UpdateTarget(pc, funcAddr)
	if c.ab != nil {
		// Preceded by pushes, so no call→indirect-branch pattern.
		c.ab.BreakPattern()
	}
	return funcAddr, false, nil
}

// dataRead performs a data-memory read through the D-TLB and D-cache.
func (c *CPU) dataRead(addr uint64) uint64 {
	c.c.Loads++
	c.c.Cycles += uint64(c.dtlb.Access(addr))
	c.c.Cycles += uint64(c.l1d.Access(addr))
	return c.mem.Read64(addr)
}

// dataWrite performs a data-memory write through the D-TLB and
// D-cache, snooping the ABTB's Bloom filter as the coherence point
// does (§3.1).
func (c *CPU) dataWrite(addr uint64, v uint64) {
	c.c.Stores++
	c.c.Cycles += uint64(c.dtlb.Access(addr))
	c.c.Cycles += uint64(c.l1d.Access(addr))
	c.mem.Write64(addr, v)
	if c.ab != nil {
		c.ab.SnoopStore(addr)
	}
	if c.TraceStore != nil {
		c.TraceStore(addr)
	}
}

// retireBreak informs the ABTB pattern detector that an instruction
// that can never be trampoline glue retired.
func (c *CPU) retireBreak() {
	if c.ab != nil {
		c.ab.BreakPattern()
	}
}

// bumpN returns the current execution count of pc and increments it.
// pc is always the PC of the instruction currently being stepped, so
// its counter page is the memoized fetch page's — an array increment,
// allocated lazily the first time a page's instruction consults its
// count.
func (c *CPU) bumpN(pc uint64) uint64 {
	p := c.fetchCounts
	if p == nil {
		pn := pc >> mem.PageShift
		p = new(execPage)
		c.execPages[pn] = p
		c.fetchCounts = p
		if m := &c.pageMemo[pageMemoIdx(pn)]; m.pn == pn && m.page != nil {
			m.counts = p
		}
	}
	n := p[pc&(mem.PageSize-1)]
	p[pc&(mem.PageSize-1)] = n + 1
	return n
}

// ContextSwitch models an OS context switch: untagged structures
// (TLBs, predictor, and — per §3.3 — the ABTB without ASIDs) are
// flushed.
func (c *CPU) ContextSwitch(asid uint64) {
	c.itlb.Flush()
	c.dtlb.Flush()
	c.bp.Flush()
	if c.ab != nil {
		c.ab.SwitchContext(asid)
	}
}

// InvalidateABTB models the §3.4 explicit-invalidate instruction.
func (c *CPU) InvalidateABTB() {
	if c.ab != nil {
		c.ab.Invalidate()
	}
}

// CoherenceInvalidate models an invalidation arriving from the cache
// coherence subsystem for addr — another core wrote the line.  The
// paper requires the ABTB's Bloom filter to snoop these exactly like
// local stores (§3.1: "or an invalidation for such an address is
// received from the coherence subsystem"), so a GOT update by any
// core flushes every core's ABTB.  It returns whether a flush
// occurred.
func (c *CPU) CoherenceInvalidate(addr uint64) bool {
	if c.ab == nil {
		return false
	}
	return c.ab.SnoopStore(addr)
}

// syncCounters folds substructure statistics into the snapshot.
func (c *CPU) syncCounters() {
	c.c.L1IAccesses = c.l1i.Accesses()
	c.c.L1IMisses = c.l1i.Misses()
	c.c.L1DAccesses = c.l1d.Accesses()
	c.c.L1DMisses = c.l1d.Misses()
	c.c.L2Accesses = c.l2.Accesses()
	c.c.L2Misses = c.l2.Misses()
	c.c.ITLBAccesses = c.itlb.Accesses()
	c.c.ITLBMisses = c.itlb.Misses()
	c.c.DTLBAccesses = c.dtlb.Accesses()
	c.c.DTLBMisses = c.dtlb.Misses()
	c.c.BTBEvictions = c.bp.BTBEvictions()
	if c.ab != nil {
		c.c.ABTBRedirects = c.ab.Redirects()
		c.c.ABTBFlushes = c.ab.Flushes()
	}
}

// Counters returns a snapshot of all measurement counters.
func (c *CPU) Counters() Counters {
	c.syncCounters()
	return c.c
}

// TrampFreq returns a copy of the per-trampoline call counts (PLT
// slot address -> calls, skipped or executed) accumulated since the
// last ResetStats.
func (c *CPU) TrampFreq() map[uint64]uint64 {
	addrs := c.img.TrampolineAddrs()
	out := make(map[uint64]uint64)
	for i, n := range c.trampCounts {
		if n != 0 {
			// += not =: after unload/reload churn, a reused slot
			// address appears under both its old and new dense index.
			out[addrs[i]] += n
		}
	}
	return out
}

// ResetStats zeroes every measurement counter while preserving all
// microarchitectural state (cache contents, predictor training, ABTB
// mappings) and architectural state; used to exclude warmup.
func (c *CPU) ResetStats() {
	c.c = Counters{}
	c.gotStores = 0
	c.pageFaults = 0
	c.l1i.ResetStats()
	c.l1d.ResetStats() // resets shared L2 twice; harmless
	c.itlb.ResetStats()
	c.dtlb.ResetStats()
	c.bp.ResetStats()
	if c.ab != nil {
		c.ab.ResetStats()
	}
	for i := range c.trampCounts {
		c.trampCounts[i] = 0
	}
}
