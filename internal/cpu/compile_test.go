package cpu

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/linker"
	"repro/internal/objfile"
)

// newPair links the same random program twice (lazy GOT state is
// mutable, so each CPU needs its own image) and returns an interpreted
// CPU and a compiled CPU with otherwise identical configuration.
func newPair(t *testing.T, seed uint64, mode linker.BindingMode, enhanced bool) (interp, compiled *CPU) {
	t.Helper()
	app, libs := genRandomProgram(seed)
	opts := linker.Options{Mode: mode, Seed: seed, IFuncLevel: int(seed % 3)}
	cfg := DefaultConfig()
	if enhanced {
		cfg = EnhancedConfig()
	}
	cfg.Seed = seed
	imI, err := linker.Link(app, libs, opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	imC, err := linker.Link(app, libs, opts)
	if err != nil {
		t.Fatal(err)
	}
	interp = New(imI, cfg)
	compiled = New(imC, cfg)
	if err := compiled.SetProgram(Compile(imC, cfg.L1I.LineBytes)); err != nil {
		t.Fatal(err)
	}
	return interp, compiled
}

// comparePair asserts the two CPUs are in bit-identical measurement
// and architectural states.
func comparePair(t *testing.T, label string, interp, compiled *CPU) {
	t.Helper()
	if ci, cc := interp.Counters(), compiled.Counters(); ci != cc {
		t.Fatalf("%s: counters diverged\ninterpreted: %+v\ncompiled:    %+v", label, ci, cc)
	}
	if fi, fc := interp.TrampFreq(), compiled.TrampFreq(); !reflect.DeepEqual(fi, fc) {
		t.Fatalf("%s: trampoline frequencies diverged: %v vs %v", label, fi, fc)
	}
	for mi, m := range interp.Image().Modules() {
		mc := compiled.Image().Modules()[mi]
		for a := m.DataBase; a < m.DataEnd; a += 8 {
			if vi, vc := interp.Image().Memory().Read64(a), compiled.Image().Memory().Read64(a); vi != vc {
				t.Fatalf("%s: memory diverged at %#x in %s: %#x vs %#x", label, a, mc.Name, vi, vc)
			}
		}
	}
}

// TestCompiledBitIdentity is the compiled path's core contract: over
// random programs, all binding modes, and both hardware systems, the
// compiled trace replays with counters, trampoline histograms, and
// memory side effects bit-identical to the interpreter, run after run.
func TestCompiledBitIdentity(t *testing.T) {
	modes := []linker.BindingMode{linker.BindLazy, linker.BindNow, linker.BindStatic, linker.BindPatched}
	for seed := uint64(0); seed < 25; seed++ {
		for _, mode := range modes {
			for _, enhanced := range []bool{false, true} {
				interp, compiled := newPair(t, seed, mode, enhanced)
				for r := 0; r < 3; r++ {
					ri, errI := interp.RunSymbol("main", 2_000_000)
					rc, errC := compiled.RunSymbol("main", 2_000_000)
					if errI != nil || errC != nil {
						t.Fatalf("seed %d mode %v enhanced=%v run %d: %v / %v", seed, mode, enhanced, r, errI, errC)
					}
					if ri != rc {
						t.Fatalf("seed %d mode %v enhanced=%v run %d: results %+v vs %+v", seed, mode, enhanced, r, ri, rc)
					}
					comparePair(t, "bit-identity", interp, compiled)
				}
			}
		}
	}
}

// TestCompiledBudgetIdentity: because a superblock is only dispatched
// when it fits entirely under the limit, budget exhaustion must land
// on the same instruction with the same error and the same partial
// counters on both paths.
func TestCompiledBudgetIdentity(t *testing.T) {
	for _, budget := range []uint64{1, 2, 3, 5, 7, 17, 50, 199, 1000} {
		interp, compiled := newPair(t, 11, linker.BindLazy, true)
		ri, errI := interp.RunSymbol("main", budget)
		rc, errC := compiled.RunSymbol("main", budget)
		if (errI == nil) != (errC == nil) {
			t.Fatalf("budget %d: error mismatch: %v vs %v", budget, errI, errC)
		}
		if errI != nil && errI.Error() != errC.Error() {
			t.Fatalf("budget %d: errors diverged: %q vs %q", budget, errI, errC)
		}
		if ri != rc {
			t.Fatalf("budget %d: partial results diverged: %+v vs %+v", budget, ri, rc)
		}
		comparePair(t, "budget", interp, compiled)
	}
}

// TestCompiledSampleIdentity: interval-sample boundaries are part of
// the bit-identity contract — with the same sampler attached, both
// paths must emit identical sample series, boundary for boundary.
func TestCompiledSampleIdentity(t *testing.T) {
	for _, every := range []uint64{64, 700} {
		interp, compiled := newPair(t, 4, linker.BindLazy, true)
		var si, sc []IntervalSample
		interp.SetSampler(every, func(s IntervalSample) { si = append(si, s) })
		compiled.SetSampler(every, func(s IntervalSample) { sc = append(sc, s) })
		for r := 0; r < 2; r++ {
			if _, err := interp.RunSymbol("main", 0); err != nil {
				t.Fatal(err)
			}
			if _, err := compiled.RunSymbol("main", 0); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(si, sc) {
			t.Fatalf("every=%d: sample series diverged (%d vs %d samples)", every, len(si), len(sc))
		}
		if len(si) == 0 {
			t.Fatalf("every=%d: no samples emitted", every)
		}
	}
}

// TestCompiledUnmappedIdentity: execution reaching an address with no
// decoded instruction must produce the same wrapped ErrNoInstruction,
// at the same pc, with the same partial counters.
func TestCompiledUnmappedIdentity(t *testing.T) {
	interp, compiled := newPair(t, 2, linker.BindNow, false)
	ri, errI := interp.Run(0xdead000, 0)
	rc, errC := compiled.Run(0xdead000, 0)
	if !errors.Is(errI, ErrNoInstruction) || !errors.Is(errC, ErrNoInstruction) {
		t.Fatalf("want ErrNoInstruction from both paths, got %v / %v", errI, errC)
	}
	if errI.Error() != errC.Error() {
		t.Fatalf("errors diverged: %q vs %q", errI, errC)
	}
	if ri != rc || interp.Counters() != compiled.Counters() {
		t.Fatalf("partial state diverged: %+v vs %+v", ri, rc)
	}
}

// TestSetProgramValidation: programs compiled for a different line
// size or a different image are rejected; nil detaches.
func TestSetProgramValidation(t *testing.T) {
	interp, compiled := newPair(t, 1, linker.BindLazy, false)
	prog := compiled.Program()
	if prog == nil {
		t.Fatal("no program installed")
	}
	if err := interp.SetProgram(Compile(interp.Image(), 128)); err == nil {
		t.Fatal("line-size mismatch accepted")
	} else if !strings.Contains(err.Error(), "line") {
		t.Fatalf("unhelpful error: %v", err)
	}
	app := objfile.New("other")
	app.NewFunc("main").ALU(40).Halt()
	im, err := linker.Link(app, nil, linker.Options{Mode: linker.BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	if err := New(im, DefaultConfig()).SetProgram(prog); err == nil {
		t.Fatal("foreign program accepted")
	}
	// Detach mid-life: the CPU must revert to interpretation with
	// coherent execution counts.
	if _, err := compiled.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if err := compiled.SetProgram(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := compiled.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	comparePair(t, "detach", interp, compiled)
}

// TestCompiledForkSharing: one Program compiled from a master image
// must drive CPUs running forks of that master — the pool's usage.
func TestCompiledForkSharing(t *testing.T) {
	app, libs := genRandomProgram(3)
	opts := linker.Options{Mode: linker.BindLazy, Seed: 3}
	master, err := linker.Link(app, libs, opts)
	if err != nil {
		t.Fatal(err)
	}
	prog := Compile(master, DefaultConfig().L1I.LineBytes)
	ref, err := linker.Link(app, libs, opts)
	if err != nil {
		t.Fatal(err)
	}
	interp := New(ref, DefaultConfig())
	compiled := New(master.Fork(), DefaultConfig())
	if err := compiled.SetProgram(prog); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		ri, errI := interp.RunSymbol("main", 0)
		rc, errC := compiled.RunSymbol("main", 0)
		if errI != nil || errC != nil {
			t.Fatal(errI, errC)
		}
		if ri != rc {
			t.Fatalf("run %d: %+v vs %+v", r, ri, rc)
		}
	}
	if interp.Counters() != compiled.Counters() {
		t.Fatal("fork-shared program diverged from reference")
	}
}

// TestFastForwardArchEquivalence: fast-forwarding a run must leave the
// same architectural state — memory contents, execution counts, GOT
// bindings — as simulating it in detail, so a detailed run resumed
// afterwards retires exactly the same instruction stream.  (Cycle
// counts legitimately differ: fast-forward does not warm caches.)
func TestFastForwardArchEquivalence(t *testing.T) {
	for seed := uint64(20); seed < 30; seed++ {
		app, libs := genRandomProgram(seed)
		opts := linker.Options{Mode: linker.BindLazy, Seed: seed}
		imA, err := linker.Link(app, libs, opts)
		if err != nil {
			t.Fatal(err)
		}
		imB, err := linker.Link(app, libs, opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		detailed, ffwd := New(imA, cfg), New(imB, cfg)
		if err := detailed.SetProgram(Compile(imA, cfg.L1I.LineBytes)); err != nil {
			t.Fatal(err)
		}
		if err := ffwd.SetProgram(Compile(imB, cfg.L1I.LineBytes)); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2; r++ {
			if _, err := detailed.RunSymbol("main", 0); err != nil {
				t.Fatal(err)
			}
			if err := ffwd.FastForwardSymbol("main"); err != nil {
				t.Fatal(err)
			}
		}
		rd, err := detailed.RunSymbol("main", 0)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := ffwd.RunSymbol("main", 0)
		if err != nil {
			t.Fatal(err)
		}
		if rd.Instructions != rf.Instructions {
			t.Fatalf("seed %d: post-skip run retired %d instructions, want %d", seed, rf.Instructions, rd.Instructions)
		}
		for mi, m := range imA.Modules() {
			mb := imB.Modules()[mi]
			for a := m.DataBase; a < m.DataEnd; a += 8 {
				if va, vb := imA.Memory().Read64(a), imB.Memory().Read64(a); va != vb {
					t.Fatalf("seed %d: memory diverged at %#x in %s: %#x vs %#x", seed, a, mb.Name, va, vb)
				}
			}
		}
		if imA.Resolutions() != imB.Resolutions() {
			t.Fatalf("seed %d: resolutions %d vs %d", seed, imA.Resolutions(), imB.Resolutions())
		}
	}
}

// TestFastForwardRequiresProgram documents the compiled-only contract.
func TestFastForwardRequiresProgram(t *testing.T) {
	interp, _ := newPair(t, 0, linker.BindLazy, false)
	if err := interp.FastForwardSymbol("main"); err == nil {
		t.Fatal("fast-forward without a program accepted")
	}
}
