package cpu

import (
	"strings"
	"testing"

	"repro/internal/linker"
)

// TestRunBudgetPartialCounts pins Run's contract for budget
// exhaustion: the error carries the partial instruction and cycle
// counts actually consumed, overshooting the budget by at most the
// documented bound (a Resolve step retires the resolver's whole
// footprint after the pre-step check passes).
func TestRunBudgetPartialCounts(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	cfg := DefaultConfig()
	c := New(im, cfg)

	const budget = 10
	res, err := c.RunSymbol("main", budget)
	if err == nil {
		t.Fatal("Run with a tiny budget returned nil error")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("error = %v, want budget exhaustion", err)
	}
	if res.Instructions < budget {
		t.Errorf("partial Instructions = %d, want >= budget %d", res.Instructions, budget)
	}
	// One step can retire the resolver's whole footprint (+1 for the
	// triggering instruction, +1 more in the explicit-invalidate
	// variant, not active under DefaultConfig).
	maxOvershoot := uint64(cfg.ResolverInstrs) + 1
	if res.Instructions > budget+maxOvershoot {
		t.Errorf("partial Instructions = %d, want <= %d (budget %d + overshoot bound %d)",
			res.Instructions, budget+maxOvershoot, budget, maxOvershoot)
	}
	if res.Cycles < res.Instructions {
		t.Errorf("partial Cycles = %d < Instructions = %d", res.Cycles, res.Instructions)
	}
	// On a fresh CPU the partial delta is the CPU's whole history.
	if got := c.Counters().Instructions; res.Instructions != got {
		t.Errorf("partial Instructions = %d, want CPU counter %d", res.Instructions, got)
	}
}

// TestRunUnmappedPartialCounts pins the same contract for decode
// failures: a wild entry address fails before retiring anything and
// reports zero partial work.
func TestRunUnmappedPartialCounts(t *testing.T) {
	im := buildProgram(t, 1, linker.BindNow)
	c := New(im, DefaultConfig())
	res, err := c.Run(0xdead000, 0)
	if err == nil {
		t.Fatal("Run at unmapped address returned nil error")
	}
	if res.Instructions != 0 || res.Cycles != 0 {
		t.Errorf("partial counts = %+v, want zero", res)
	}
}
