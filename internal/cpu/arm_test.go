package cpu

import (
	"testing"

	"repro/internal/abtb"
	"repro/internal/linker"
	"repro/internal/objfile"
)

// armConfig returns the enhanced configuration with the pattern
// window ARM trampolines need (two adds of glue before `ldr pc`).
func armConfig() Config {
	cfg := DefaultConfig()
	a := abtb.DefaultConfig()
	a.PatternWindow = 2
	cfg.ABTB = &a
	return cfg
}

func armProgram(t *testing.T, mode linker.BindingMode) *linker.Image {
	t.Helper()
	app := objfile.New("app")
	m := app.NewFunc("main")
	lib := objfile.New("lib")
	lib.AddData("out", 32)
	for i := 0; i < 4; i++ {
		name := libFuncName(i)
		lib.NewFunc(name).ALU(3).Store("out", uint64(i*8), 1, uint64(500+i)).Ret()
		m.Call(name)
	}
	m.Halt()
	im, err := linker.Link(app, []*objfile.Object{lib},
		linker.Options{Mode: mode, Seed: 9, PLT: linker.PLTARM})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// The paper's cross-ISA claim: the mechanism "works on all dynamically
// linked library techniques ... across architectures (e.g., ARM and
// x86)".  ARM trampolines are three instructions, so the retire-time
// pattern must tolerate the two adds between the call and `ldr pc`.
func TestARMTrampolinesExecuteAndResolve(t *testing.T) {
	im := armProgram(t, linker.BindLazy)
	c := New(im, DefaultConfig())
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	cnt := c.Counters()
	if cnt.Resolutions != 4 {
		t.Errorf("Resolutions = %d, want 4", cnt.Resolutions)
	}
	// Steady state: each library call executes three trampoline
	// instructions (add, add, ldr pc) — versus one on x86.
	c.ResetStats()
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	cnt = c.Counters()
	if cnt.TrampCalls != 4 {
		t.Errorf("TrampCalls = %d, want 4", cnt.TrampCalls)
	}
	if cnt.TrampInstrs != 12 {
		t.Errorf("TrampInstrs = %d, want 12 (3 per ARM trampoline)", cnt.TrampInstrs)
	}
	// Side effects landed.
	lib := im.Modules()[1]
	out := (lib.GOTEnd + 63) &^ 63
	for i := uint64(0); i < 4; i++ {
		if got := im.Memory().Read64(out + i*8); got != 500+i {
			t.Errorf("out[%d] = %d, want %d", i, got, 500+i)
		}
	}
}

func TestARMTrampolinesSkippedWithWindow(t *testing.T) {
	im := armProgram(t, linker.BindLazy)
	c := New(im, armConfig())
	for i := 0; i < 3; i++ {
		if _, err := c.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
	}
	c.ResetStats()
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	cnt := c.Counters()
	if cnt.TrampSkips != 4 {
		t.Errorf("TrampSkips = %d, want 4", cnt.TrampSkips)
	}
	if cnt.TrampInstrs != 0 {
		t.Errorf("TrampInstrs = %d, want 0 (all three glue instructions skipped)", cnt.TrampInstrs)
	}
}

// Without the window, the x86-tuned ABTB never learns ARM trampolines:
// the adds break the strict adjacency pattern.  This pins why the
// PatternWindow knob exists.
func TestARMTrampolinesNotLearnedWithoutWindow(t *testing.T) {
	im := armProgram(t, linker.BindLazy)
	c := New(im, EnhancedConfig()) // window 0
	for i := 0; i < 5; i++ {
		if _, err := c.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Counters().TrampSkips; got != 0 {
		t.Errorf("window-0 ABTB skipped %d ARM trampolines", got)
	}
	if c.ABTB().Len() != 0 {
		t.Errorf("window-0 ABTB learned %d ARM mappings", c.ABTB().Len())
	}
}

// The window must not cause false learning: a call to a function that
// begins with two ALU instructions and then makes an indirect call
// through a function pointer is NOT a trampoline; mapping it would
// redirect past the function's own body.
func TestWindowDoesNotAliasFunctionPrologues(t *testing.T) {
	app := objfile.New("app")
	app.AddData("vt", 8)
	app.InitPtr("vt", 0, "target")
	// dispatch looks exactly like an ARM trampoline to a naive
	// detector: two ALU then an indirect transfer — but the indirect
	// transfer is a CallInd (pushes a return address) and its own
	// body continues after.
	app.NewFunc("dispatch").ALU(2).CallPtr("vt", 0).ALU(1).Ret()
	app.NewFunc("target").ALU(1).Ret()
	app.NewFunc("main").Call("dispatch").Call("dispatch").Halt()
	im, err := linker.Link(app, nil, linker.Options{Mode: linker.BindLazy, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, armConfig())
	for i := 0; i < 4; i++ {
		if _, err := c.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
	}
	// A mapping dispatch→target would skip dispatch's trailing ALU
	// and corrupt the call stack; the CallInd's own retirement (a
	// call, not a plain indirect jump) re-arms the detector with a
	// NEW pending call, so no mapping for "dispatch" may exist.
	if v, ok := c.ABTB().Lookup(mustSym(t, im, "dispatch")); ok {
		t.Errorf("prologue aliased into ABTB: dispatch -> %#x", v)
	}
}

func mustSym(t *testing.T, im *linker.Image, name string) uint64 {
	t.Helper()
	a, ok := im.Symbol(name)
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	return a
}

// ARM images must satisfy the same equivalence invariant as x86 ones.
func TestARMBaseEnhancedEquivalence(t *testing.T) {
	imB := armProgram(t, linker.BindLazy)
	imE := armProgram(t, linker.BindLazy)
	base := New(imB, DefaultConfig())
	enh := New(imE, armConfig())
	for i := 0; i < 6; i++ {
		if _, err := base.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := enh.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
	}
	cb, ce := base.Counters(), enh.Counters()
	// Each skip removes the three trampoline instructions.
	if cb.Instructions-ce.Instructions != 3*ce.TrampSkips {
		t.Errorf("instruction delta %d != 3*skips %d",
			cb.Instructions-ce.Instructions, 3*ce.TrampSkips)
	}
	lib := imB.Modules()[1]
	for a := lib.GOTEnd; a < lib.DataEnd; a += 8 {
		if imB.Memory().Read64(a) != imE.Memory().Read64(a) {
			t.Fatalf("memory divergence at %#x", a)
		}
	}
}

func TestARMEagerBinding(t *testing.T) {
	im := armProgram(t, linker.BindNow)
	c := New(im, armConfig())
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if c.Counters().Resolutions != 0 {
		t.Error("eager ARM image resolved at runtime")
	}
}
