package cpu

import (
	"testing"

	"repro/internal/linker"
	"repro/internal/objfile"
)

// TestSamplerBoundaries pins the sampler contract: callbacks fire at
// (or just past) every interval boundary, samples are cumulative and
// monotone, and boundary overshoot is bounded by the largest single
// step (the resolver footprint + 1).
func TestSamplerBoundaries(t *testing.T) {
	im := buildProgram(t, 16, linker.BindLazy)
	cfg := DefaultConfig()
	c := New(im, cfg)

	const every = 64
	var samples []IntervalSample
	c.SetSampler(every, func(s IntervalSample) { samples = append(samples, s) })
	run(t, c, 8)

	total := c.Counters().Instructions
	// A single step may retire the resolver's whole footprint and cross
	// several boundaries at once; crossing yields one sample and the
	// grid re-arms past the current count.  So the sample count is
	// bounded by the grid above and by the worst-case step below.
	overshoot := uint64(cfg.ResolverInstrs) + 1
	if max := int(total / every); len(samples) > max {
		t.Errorf("got %d samples for %d instructions at interval %d, want <= %d",
			len(samples), total, every, max)
	}
	if min := int(total/(every+overshoot)) - 1; len(samples) < min {
		t.Errorf("got %d samples for %d instructions at interval %d, want >= %d",
			len(samples), total, every, min)
	}
	if len(samples) == 0 {
		t.Fatal("sampler never fired")
	}
	var prev uint64
	for i, s := range samples {
		got := s.Counters.Instructions
		if got <= prev {
			t.Errorf("sample %d: Instructions = %d not past prev %d", i, got, prev)
		}
		// Each sample fires within one step of its arming boundary,
		// which is itself at most `every` past the previous sample.
		if i > 0 && got-prev > every+overshoot {
			t.Errorf("sample %d: gap %d exceeds interval+overshoot %d",
				i, got-prev, every+overshoot)
		}
		if got < every {
			t.Errorf("sample %d: Instructions = %d before first boundary %d", i, got, every)
		}
		prev = got
	}
}

// TestSamplerBitIdentical proves sampling is invisible to the
// simulation: a sampled CPU and an unsampled CPU running the same
// program finish with equal counters.
func TestSamplerBitIdentical(t *testing.T) {
	imA := buildProgram(t, 8, linker.BindLazy)
	imB := buildProgram(t, 8, linker.BindLazy)
	plain := New(imA, DefaultConfig())
	sampled := New(imB, DefaultConfig())

	fired := 0
	sampled.SetSampler(128, func(IntervalSample) { fired++ })
	run(t, plain, 5)
	run(t, sampled, 5)
	if fired == 0 {
		t.Fatal("sampler never fired")
	}
	if plain.Counters() != sampled.Counters() {
		t.Errorf("counters diverge:\n  plain   %+v\n  sampled %+v",
			plain.Counters(), sampled.Counters())
	}
}

// TestSamplerSpansRuns checks that the sampling grid is an absolute
// retired-instruction count persisting across Run calls: many short
// runs produce the same boundaries as one long run would.
func TestSamplerSpansRuns(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, DefaultConfig())

	const every = 1 << 10
	var samples []uint64
	c.SetSampler(every, func(s IntervalSample) {
		samples = append(samples, s.Counters.Instructions)
	})
	perRun := func() uint64 {
		res, err := c.RunSymbol("main", 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Instructions
	}
	one := perRun()
	if one >= every {
		t.Fatalf("test premise broken: one run retires %d >= interval %d", one, every)
	}
	runs := 1
	for c.Counters().Instructions < 4*every {
		perRun()
		runs++
	}
	if len(samples) < 3 {
		t.Fatalf("crossed %d boundaries over %d runs, want >= 3 samples (got %d)",
			c.Counters().Instructions/every, runs, len(samples))
	}
	for i, got := range samples {
		if boundary := uint64(i+1) * every; got < boundary || got >= boundary+every {
			t.Errorf("sample %d at %d instructions, want in [%d, %d)",
				i, got, boundary, boundary+every)
		}
	}
}

// TestSamplerDisable checks both off switches: never enabling, and
// disabling after enabling.
func TestSamplerDisable(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, DefaultConfig())
	run(t, c, 2) // no sampler set: must not panic

	fired := 0
	c.SetSampler(16, func(IntervalSample) { fired++ })
	run(t, c, 5)
	if fired == 0 {
		t.Fatal("sampler never fired while enabled")
	}
	c.SetSampler(0, nil)
	before := fired
	run(t, c, 5)
	if fired != before {
		t.Errorf("sampler fired %d more times after disable", fired-before)
	}
	if c.SampleInterval() != 0 {
		t.Errorf("SampleInterval() = %d after disable, want 0", c.SampleInterval())
	}
}

// TestSetSampleIntervalWidens checks mid-run re-arming (the compaction
// path): widening the interval moves the next boundary onto the new
// grid without firing stale boundaries.
func TestSetSampleIntervalWidens(t *testing.T) {
	im := buildProgram(t, 4, linker.BindLazy)
	c := New(im, DefaultConfig())

	var samples []uint64
	c.SetSampler(256, func(s IntervalSample) {
		samples = append(samples, s.Counters.Instructions)
		c.SetSampleInterval(1 << 20) // widen drastically on first fire
	})
	run(t, c, 40)
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want exactly 1 (widened beyond run length after the first)", len(samples))
	}
	if c.SampleInterval() != 1<<20 {
		t.Errorf("SampleInterval() = %d, want %d", c.SampleInterval(), 1<<20)
	}
}

// TestSetSampleIntervalAbsoluteGrid pins the re-arm fix: re-arming
// from inside a sample callback must land the next boundary on the
// absolute grid anchored at SetSampler time, not relative to the
// current instruction count.  The program forces the first boundary to
// be crossed by a Resolve step (overshooting by the resolver footprint);
// a relative re-arm would carry that overshoot onto every later
// boundary, so the second sample would drift off the grid.
func TestSetSampleIntervalAbsoluteGrid(t *testing.T) {
	app := objfile.New("app")
	app.NewFunc("main").ALU(50).Call("api").ALU(300).Halt()
	lib := objfile.New("lib")
	lib.NewFunc("api").ALU(20).Ret()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: linker.BindLazy})
	if err != nil {
		t.Fatal(err)
	}
	c := New(im, DefaultConfig())

	const every = 100
	var samples []uint64
	c.SetSampler(every, func(s IntervalSample) {
		if len(samples) == 0 {
			// Re-arm mid-run with the same interval, as a compacting
			// collector would with a doubled one.
			c.SetSampleInterval(every)
		}
		samples = append(samples, s.Counters.Instructions)
	})
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want >= 2", len(samples))
	}
	if samples[0]%every == 0 {
		t.Fatalf("test premise broken: first sample at %d has no overshoot", samples[0])
	}
	// Every step after the resolution retires exactly one instruction,
	// so the second sample must land exactly on the next grid boundary.
	if want := (samples[0]/every + 1) * every; samples[1] != want {
		t.Errorf("second sample at %d instructions, want %d (re-arm drifted off the absolute grid)",
			samples[1], want)
	}
}

// TestIntervalSnapshotExtras checks the extra (non-Counters) series:
// GOT stores and ABTB/Bloom totals surface through IntervalSnapshot
// and reset with ResetStats.
func TestIntervalSnapshotExtras(t *testing.T) {
	im := buildProgram(t, 8, linker.BindLazy)
	c := New(im, DefaultConfig())
	run(t, c, 1)
	s := c.IntervalSnapshot()
	if s.GOTStores != 8 {
		t.Errorf("GOTStores = %d, want 8 (one per lazy resolution)", s.GOTStores)
	}
	if s.Counters != c.Counters() {
		t.Errorf("snapshot counters %+v != Counters() %+v", s.Counters, c.Counters())
	}
	c.ResetStats()
	if s = c.IntervalSnapshot(); s.GOTStores != 0 {
		t.Errorf("GOTStores = %d after ResetStats, want 0", s.GOTStores)
	}
}

// TestTimelineOffNoAllocs pins the timeline-off hot path at zero
// allocations: a warmed CPU with no sampler attached must run without
// touching the heap, exactly as before sampling existed.
func TestTimelineOffNoAllocs(t *testing.T) {
	im := buildProgram(t, 16, linker.BindLazy)
	c := New(im, DefaultConfig())
	run(t, c, 3) // resolve everything; steady state
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("timeline-off RunSymbol allocates %.1f objects/run, want 0", allocs)
	}
}
