package cpu

import (
	"testing"

	"repro/internal/linker"
	"repro/internal/objfile"
)

// rebindProgram builds an app whose "api" import can be re-bound at
// runtime from api_v1 to api_v2 (dlclose/interposition).  The two
// implementations leave distinguishable side effects.
func rebindProgram(t *testing.T, mode linker.BindingMode) *linker.Image {
	t.Helper()
	app := objfile.New("app")
	app.NewFunc("main").Call("api").Halt()
	app.NewFunc("upgrade").RebindImport("api", "api_v2").Halt()

	lib := objfile.New("lib")
	lib.AddData("out", 8)
	lib.NewFunc("api").Store("out", 0, 1, 111).Ret()
	lib.NewFunc("api_v2").Store("out", 0, 1, 222).Ret()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: mode, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func outValue(im *linker.Image) uint64 {
	lib := im.Modules()[1]
	addr := (lib.GOTEnd + 63) &^ 63 // first data region, 64-byte aligned
	return im.Memory().Read64(addr)
}

// The paper's §3.3 "GOT entry of library function modified" case, end
// to end: after a runtime re-bind, both systems must call the new
// implementation; the enhanced system must flush its stale mapping
// (Bloom filter hit on the GOT store) and then re-learn the new one.
func TestRebindEndToEnd(t *testing.T) {
	for _, tt := range []struct {
		name string
		cfg  Config
	}{
		{"base", DefaultConfig()},
		{"enhanced", EnhancedConfig()},
	} {
		t.Run(tt.name, func(t *testing.T) {
			im := rebindProgram(t, linker.BindLazy)
			c := New(im, tt.cfg)
			// Several calls: resolve, then steady state on v1.
			for i := 0; i < 4; i++ {
				if _, err := c.RunSymbol("main", 0); err != nil {
					t.Fatal(err)
				}
			}
			if got := outValue(im); got != 111 {
				t.Fatalf("pre-rebind out = %d, want 111", got)
			}
			flushesBefore := uint64(0)
			if c.Enhanced() {
				flushesBefore = c.ABTB().Flushes()
				if c.ABTB().Len() == 0 {
					t.Fatal("ABTB empty before rebind")
				}
			}

			if _, err := c.RunSymbol("upgrade", 0); err != nil {
				t.Fatal(err)
			}
			if c.Enhanced() && c.ABTB().Flushes() == flushesBefore {
				t.Error("GOT store did not flush the ABTB")
			}

			// Every subsequent call must land in v2.
			for i := 0; i < 4; i++ {
				if _, err := c.RunSymbol("main", 0); err != nil {
					t.Fatal(err)
				}
				if got := outValue(im); got != 222 {
					t.Fatalf("post-rebind call %d: out = %d, want 222", i, got)
				}
			}
			// The enhanced system re-learns the new mapping and
			// resumes skipping.
			if c.Enhanced() {
				before := c.Counters()
				if _, err := c.RunSymbol("main", 0); err != nil {
					t.Fatal(err)
				}
				d := c.Counters().Sub(before)
				if d.TrampSkips != 1 {
					t.Errorf("post-rebind steady state: skips = %d, want 1", d.TrampSkips)
				}
			}
		})
	}
}

// The paper's criticism of its own software emulation (§4): patched
// call sites bypass the GOT, so re-binding a library silently keeps
// calling the old code — "removing or updating a library could result
// in dangling call instruction targets".  The hardware approach above
// handles the same sequence correctly.
func TestRebindStaleUnderSoftwarePatching(t *testing.T) {
	im := rebindProgram(t, linker.BindPatched)
	c := New(im, DefaultConfig())
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSymbol("upgrade", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if got := outValue(im); got != 111 {
		t.Fatalf("patched mode after rebind: out = %d (patched call sites cannot retarget; want stale 111)", got)
	}
}

func TestRebindEagerMode(t *testing.T) {
	im := rebindProgram(t, linker.BindNow)
	c := New(im, EnhancedConfig())
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSymbol("upgrade", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if got := outValue(im); got != 222 {
		t.Fatalf("eager mode after rebind: out = %d, want 222", got)
	}
}

// ifuncProgram: lib exports string routine "strcpy" as an ifunc with
// a baseline and an SSE-ish variant; both the app and the library
// itself call it — through the PLT in both cases (§2.4.1).
func ifuncProgram(t *testing.T, mode linker.BindingMode, level int) *linker.Image {
	t.Helper()
	app := objfile.New("app")
	app.NewFunc("main").Call("strcpy").Call("wrapper").Halt()

	lib := objfile.New("lib")
	lib.AddData("out", 8)
	lib.NewFunc("strcpy_baseline").Store("out", 0, 1, 1000).Ret()
	lib.NewFunc("strcpy_sse").Store("out", 0, 1, 2000).Ret()
	lib.DeclareIFunc("strcpy", "strcpy_baseline", "strcpy_sse")
	// The library's own wrapper also calls the ifunc: even this
	// intra-module call goes through lib's PLT.
	lib.NewFunc("wrapper").ALU(1).Call("strcpy").Ret()

	im, err := linker.Link(app, []*objfile.Object{lib},
		linker.Options{Mode: mode, Seed: 5, IFuncLevel: level})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestIFuncSelectsVariantByHardwareLevel(t *testing.T) {
	for _, tt := range []struct {
		level int
		want  uint64
	}{
		{0, 1000}, {1, 2000}, {9, 2000}, // level clamps to best variant
	} {
		im := ifuncProgram(t, linker.BindLazy, tt.level)
		c := New(im, DefaultConfig())
		if _, err := c.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
		if got := outValue(im); got != tt.want {
			t.Errorf("level %d: out = %d, want %d", tt.level, got, tt.want)
		}
	}
}

func TestIFuncCallsGoThroughPLT(t *testing.T) {
	im := ifuncProgram(t, linker.BindLazy, 1)
	c := New(im, DefaultConfig())
	// Warm run resolves; measure the second.
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	before := c.Counters()
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	d := c.Counters().Sub(before)
	// Three trampolined calls per run: app→strcpy, app→wrapper is
	// a plain external (also via PLT), and lib's own wrapper→strcpy
	// through lib's PLT (the §2.4.1 point).
	if d.TrampCalls != 3 {
		t.Errorf("TrampCalls = %d, want 3", d.TrampCalls)
	}
	lib := im.Modules()[1]
	found := false
	for _, sym := range lib.Imports() {
		if sym == "strcpy" {
			found = true
		}
	}
	if !found {
		t.Error("library's own PLT has no slot for its local ifunc")
	}
}

func TestIFuncSkippedByABTB(t *testing.T) {
	im := ifuncProgram(t, linker.BindLazy, 1)
	c := New(im, EnhancedConfig())
	for i := 0; i < 3; i++ {
		if _, err := c.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Counters()
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	d := c.Counters().Sub(before)
	if d.TrampSkips != d.TrampCalls || d.TrampCalls == 0 {
		t.Errorf("ifunc trampolines not skipped: %d of %d", d.TrampSkips, d.TrampCalls)
	}
	if got := outValue(im); got != 2000 {
		t.Errorf("skipped ifunc produced wrong variant: out = %d", got)
	}
}

func TestIFuncStaticModeDirect(t *testing.T) {
	im := ifuncProgram(t, linker.BindStatic, 1)
	c := New(im, DefaultConfig())
	if _, err := c.RunSymbol("main", 0); err != nil {
		t.Fatal(err)
	}
	if got := outValue(im); got != 2000 {
		t.Errorf("static ifunc: out = %d, want 2000", got)
	}
	if c.Counters().TrampCalls != 0 {
		t.Error("static link executed trampolines")
	}
}
