// Package leakcheck asserts that tests do not leak goroutines.
//
// Call Check(t) at the top of a test; at cleanup it polls until the
// process goroutine count returns to the pre-test baseline, and fails
// the test with a full stack dump if it does not settle within the
// grace period.  Polling (rather than an exact snapshot diff) absorbs
// goroutines that are legitimately still winding down — a worker
// observing a cancelled context, a timer firing — while still
// catching goroutines parked forever on a channel or semaphore.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// grace is how long cleanup waits for the goroutine count to settle
// back to the baseline before declaring a leak.
const grace = 5 * time.Second

// Check snapshots the goroutine count and registers a cleanup that
// fails t if the count has not returned to the snapshot within the
// grace period.  Tests using it must not run in parallel with tests
// that spawn goroutines outliving them.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		m := runtime.Stack(buf, true)
		t.Errorf("leakcheck: %d goroutines still running, want <= %d baseline; stacks:\n%s",
			n, base, buf[:m])
	})
}
