// Package branch models the processor front-end branch prediction
// hardware: a set-associative branch target buffer (BTB), a gshare
// direction predictor, and a return address stack (RAS).
//
// The paper's mechanism deliberately reuses this machinery: the ABTB
// feeds corrected targets through the ordinary "branch resolved"
// update path (§3.1, Fig. 3), so the front end needs no modification.
// In the simulator the CPU asks this package for predictions at fetch
// and reports resolved outcomes at retire; the ABTB intervenes only in
// what target the CPU reports as correct.
package branch

import (
	"fmt"
	"math/bits"

	"repro/internal/setassoc"
)

// Config describes the predictor geometry.
type Config struct {
	BTBEntries int // total BTB entries
	BTBWays    int
	PHTEntries int // gshare pattern history table (2-bit counters)
	HistoryLen int // global history bits
	RASDepth   int
}

// DefaultConfig approximates a Core-2-era front end (the paper's Xeon
// E5450 testbed).
func DefaultConfig() Config {
	return Config{
		BTBEntries: 2048,
		BTBWays:    4,
		PHTEntries: 4096,
		HistoryLen: 12,
		RASDepth:   16,
	}
}

// Validate reports an error for an inconsistent configuration.
func (c Config) Validate() error {
	if c.BTBEntries <= 0 || c.BTBWays <= 0 || c.PHTEntries <= 0 || c.RASDepth <= 0 {
		return fmt.Errorf("branch: non-positive geometry %+v", c)
	}
	if c.BTBEntries%c.BTBWays != 0 {
		return fmt.Errorf("branch: BTB entries %d not divisible by ways %d", c.BTBEntries, c.BTBWays)
	}
	sets := c.BTBEntries / c.BTBWays
	if sets&(sets-1) != 0 {
		return fmt.Errorf("branch: BTB set count %d not a power of two", sets)
	}
	if c.PHTEntries&(c.PHTEntries-1) != 0 {
		return fmt.Errorf("branch: PHT entries %d not a power of two", c.PHTEntries)
	}
	if c.HistoryLen < 0 || c.HistoryLen > 32 {
		return fmt.Errorf("branch: history length %d out of range", c.HistoryLen)
	}
	return nil
}

// Predictor is the front-end prediction state.
type Predictor struct {
	cfg Config

	btb *setassoc.Table[uint64]

	pht     []uint8 // 2-bit saturating counters
	phtMask uint64
	ghr     uint64
	ghrMask uint64

	ras    []uint64
	rasTop int // index of next push slot
	rasLen int

	condLookups  uint64
	rasUnderflow uint64
}

// New constructs a predictor, panicking on invalid configuration.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:     cfg,
		btb:     setassoc.New[uint64](cfg.BTBEntries/cfg.BTBWays, cfg.BTBWays),
		pht:     make([]uint8, cfg.PHTEntries),
		phtMask: uint64(cfg.PHTEntries - 1),
		ghrMask: (1 << cfg.HistoryLen) - 1,
		ras:     make([]uint64, cfg.RASDepth),
	}
	// Weakly taken start state, the usual initialisation.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p
}

// btbKey derives the BTB index/tag key from a branch PC.  Hardware
// BTBs index above the low in-fetch-block offset bits; rotating the
// two lowest bits away (injective, so tags never falsely match) keeps
// an index stride of 4 for the 16-byte-spaced PLT trampolines — they
// cluster into a quarter of the sets, modelling the BTB pressure the
// paper attributes to trampolines without degenerate LRU thrash.
func btbKey(pc uint64) uint64 { return bits.RotateLeft64(pc, 62) }

// PredictTarget returns the predicted target for the branch at pc,
// with ok reporting whether the BTB held an entry.
func (p *Predictor) PredictTarget(pc uint64) (target uint64, ok bool) {
	return p.btb.Lookup(btbKey(pc))
}

// UpdateTarget installs the resolved target for pc in the BTB.  This
// is the standard back-end feedback path — and the single point where
// the ABTB's substituted target enters the front end.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	p.btb.Insert(btbKey(pc), target)
}

// InvalidateTarget drops pc's BTB entry if present.
func (p *Predictor) InvalidateTarget(pc uint64) {
	p.btb.Invalidate(btbKey(pc))
}

func (p *Predictor) phtIndex(pc uint64) uint64 {
	return ((pc >> 1) ^ p.ghr) & p.phtMask
}

// PredictCond returns the predicted direction for the conditional
// branch at pc.
func (p *Predictor) PredictCond(pc uint64) bool {
	p.condLookups++
	return p.pht[p.phtIndex(pc)] >= 2
}

// UpdateCond trains the direction predictor with the resolved outcome
// and shifts the global history.
func (p *Predictor) UpdateCond(pc uint64, taken bool) {
	i := p.phtIndex(pc)
	if taken {
		if p.pht[i] < 3 {
			p.pht[i]++
		}
	} else if p.pht[i] > 0 {
		p.pht[i]--
	}
	p.ghr = (p.ghr << 1) & p.ghrMask
	if taken {
		p.ghr |= 1
	}
}

// PushReturn records a return address at a call (fetch-time RAS push).
func (p *Predictor) PushReturn(addr uint64) {
	p.ras[p.rasTop] = addr
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	if p.rasLen < len(p.ras) {
		p.rasLen++
	}
}

// PredictReturn pops and returns the predicted return address, with ok
// false on underflow (deep call chains overwrite older entries).
func (p *Predictor) PredictReturn() (addr uint64, ok bool) {
	if p.rasLen == 0 {
		p.rasUnderflow++
		return 0, false
	}
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	p.rasLen--
	return p.ras[p.rasTop], true
}

// Flush clears all prediction state (context switch).
func (p *Predictor) Flush() {
	p.btb.Clear()
	for i := range p.pht {
		p.pht[i] = 2
	}
	p.ghr = 0
	p.rasLen, p.rasTop = 0, 0
}

// BTBLookups returns the number of BTB probes.
func (p *Predictor) BTBLookups() uint64 { return p.btb.Lookups() }

// BTBMisses returns the number of BTB probes that found no entry.
func (p *Predictor) BTBMisses() uint64 { return p.btb.Misses() }

// BTBEvictions returns the number of BTB conflict replacements — the
// "pressure" metric the paper argues trampolines inflate (§2.2).
func (p *Predictor) BTBEvictions() uint64 { return p.btb.Evictions() }

// BTBOccupancy returns the number of valid BTB entries.
func (p *Predictor) BTBOccupancy() int { return p.btb.Len() }

// CondLookups returns the number of direction predictions made.
func (p *Predictor) CondLookups() uint64 { return p.condLookups }

// RASUnderflows returns the number of return predictions that found an
// empty RAS.
func (p *Predictor) RASUnderflows() uint64 { return p.rasUnderflow }

// ResetStats zeroes counters, preserving learned state.
func (p *Predictor) ResetStats() {
	p.btb.ResetStats()
	p.condLookups = 0
	p.rasUnderflow = 0
}
