package branch

import (
	"testing"
)

func small() *Predictor {
	return New(Config{BTBEntries: 8, BTBWays: 2, PHTEntries: 16, HistoryLen: 4, RASDepth: 4})
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{BTBEntries: 0, BTBWays: 1, PHTEntries: 16, HistoryLen: 4, RASDepth: 4},
		{BTBEntries: 8, BTBWays: 3, PHTEntries: 16, HistoryLen: 4, RASDepth: 4},
		{BTBEntries: 24, BTBWays: 2, PHTEntries: 16, HistoryLen: 4, RASDepth: 4},
		{BTBEntries: 8, BTBWays: 2, PHTEntries: 15, HistoryLen: 4, RASDepth: 4},
		{BTBEntries: 8, BTBWays: 2, PHTEntries: 16, HistoryLen: 40, RASDepth: 4},
		{BTBEntries: 8, BTBWays: 2, PHTEntries: 16, HistoryLen: 4, RASDepth: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestBTBMissThenHit(t *testing.T) {
	p := small()
	if _, ok := p.PredictTarget(0x400000); ok {
		t.Error("cold BTB predicted a target")
	}
	p.UpdateTarget(0x400000, 0x500000)
	tgt, ok := p.PredictTarget(0x400000)
	if !ok || tgt != 0x500000 {
		t.Fatalf("PredictTarget = %#x, %v", tgt, ok)
	}
	if p.BTBLookups() != 2 || p.BTBMisses() != 1 {
		t.Errorf("lookups/misses = %d/%d", p.BTBLookups(), p.BTBMisses())
	}
}

func TestBTBRetarget(t *testing.T) {
	p := small()
	p.UpdateTarget(0x400000, 0x500000)
	p.UpdateTarget(0x400000, 0x600000) // the ABTB substitution path
	tgt, ok := p.PredictTarget(0x400000)
	if !ok || tgt != 0x600000 {
		t.Fatalf("retargeted prediction = %#x, %v", tgt, ok)
	}
	if p.BTBOccupancy() != 1 {
		t.Errorf("occupancy = %d, want 1 (update in place)", p.BTBOccupancy())
	}
}

func TestBTBInvalidate(t *testing.T) {
	p := small()
	p.UpdateTarget(0x400000, 0x500000)
	p.InvalidateTarget(0x400000)
	if _, ok := p.PredictTarget(0x400000); ok {
		t.Error("invalidated entry still predicts")
	}
}

func TestBTBConflictEviction(t *testing.T) {
	p := small() // 4 sets x 2 ways
	// Insert many branches; occupancy must never exceed capacity and
	// evictions must occur.
	for i := uint64(0); i < 64; i++ {
		p.UpdateTarget(0x400000+i*8, 0x500000+i)
	}
	if p.BTBOccupancy() > 8 {
		t.Errorf("occupancy %d exceeds capacity 8", p.BTBOccupancy())
	}
	if p.BTBEvictions() == 0 {
		t.Error("no evictions under 8x oversubscription")
	}
}

func TestCondPredictorLearnsBias(t *testing.T) {
	p := small()
	pc := uint64(0x400100)
	// Train always-taken.
	for i := 0; i < 32; i++ {
		p.PredictCond(pc)
		p.UpdateCond(pc, true)
	}
	correct := 0
	for i := 0; i < 32; i++ {
		if p.PredictCond(pc) {
			correct++
		}
		p.UpdateCond(pc, true)
	}
	if correct != 32 {
		t.Errorf("trained always-taken accuracy = %d/32", correct)
	}
}

func TestCondPredictorLearnsPattern(t *testing.T) {
	// With 4 bits of history, a (T,T,N) repeating pattern becomes
	// fully predictable after training.
	p := New(Config{BTBEntries: 8, BTBWays: 2, PHTEntries: 1024, HistoryLen: 8, RASDepth: 4})
	pc := uint64(0x400200)
	pattern := []bool{true, true, false}
	for i := 0; i < 3000; i++ {
		p.UpdateCond(pc, pattern[i%3])
	}
	correct := 0
	for i := 0; i < 300; i++ {
		want := pattern[i%3]
		if p.PredictCond(pc) == want {
			correct++
		}
		p.UpdateCond(pc, want)
	}
	if correct < 290 {
		t.Errorf("pattern accuracy = %d/300, want near-perfect", correct)
	}
}

func TestCounterSaturation(t *testing.T) {
	p := small()
	pc := uint64(0x400300)
	for i := 0; i < 100; i++ {
		p.UpdateCond(pc, true)
	}
	// One not-taken must not flip a saturated counter.
	p.UpdateCond(pc, false)
	// Re-establish the history the training used is not needed for a
	// saturation check with the same index; bias should still be taken
	// in aggregate: probe many history states.
	taken := 0
	for i := 0; i < 16; i++ {
		if p.PredictCond(pc) {
			taken++
		}
		p.UpdateCond(pc, true)
	}
	if taken < 12 {
		t.Errorf("post-saturation taken predictions = %d/16", taken)
	}
}

func TestRASLIFO(t *testing.T) {
	p := small()
	p.PushReturn(1)
	p.PushReturn(2)
	p.PushReturn(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := p.PredictReturn()
		if !ok || got != want {
			t.Fatalf("PredictReturn = %d, %v; want %d", got, ok, want)
		}
	}
	if _, ok := p.PredictReturn(); ok {
		t.Error("empty RAS predicted")
	}
	if p.RASUnderflows() != 1 {
		t.Errorf("underflows = %d, want 1", p.RASUnderflows())
	}
}

func TestRASOverflowWraps(t *testing.T) {
	p := small() // depth 4
	for i := uint64(1); i <= 6; i++ {
		p.PushReturn(i)
	}
	// Deepest two (1, 2) were overwritten; pops yield 6,5,4,3.
	for want := uint64(6); want >= 3; want-- {
		got, ok := p.PredictReturn()
		if !ok || got != want {
			t.Fatalf("PredictReturn = %d, %v; want %d", got, ok, want)
		}
	}
	if _, ok := p.PredictReturn(); ok {
		t.Error("RAS deeper than capacity")
	}
}

func TestFlush(t *testing.T) {
	p := small()
	p.UpdateTarget(0x400000, 0x500000)
	p.PushReturn(7)
	p.UpdateCond(0x400100, true)
	p.Flush()
	if _, ok := p.PredictTarget(0x400000); ok {
		t.Error("BTB survived flush")
	}
	if _, ok := p.PredictReturn(); ok {
		t.Error("RAS survived flush")
	}
}

func TestResetStats(t *testing.T) {
	p := small()
	p.UpdateTarget(0x400000, 1)
	p.PredictTarget(0x400000)
	p.PredictCond(0x400100)
	p.PredictReturn()
	p.ResetStats()
	if p.BTBLookups() != 0 || p.CondLookups() != 0 || p.RASUnderflows() != 0 {
		t.Error("ResetStats did not zero counters")
	}
	if _, ok := p.PredictTarget(0x400000); !ok {
		t.Error("ResetStats dropped BTB contents")
	}
}
