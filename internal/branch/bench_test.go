package branch

import "testing"

func BenchmarkPredictUpdateTarget(b *testing.B) {
	p := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i) % 4096 * 8
		p.PredictTarget(pc)
		p.UpdateTarget(pc, pc+100)
	}
}

func BenchmarkPredictCond(b *testing.B) {
	p := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i) % 1024 * 4
		p.UpdateCond(pc, p.PredictCond(pc))
	}
}
