// Package objfile defines the relocatable object format consumed by
// the linker: named functions whose bodies are template instructions
// with symbolic references, plus named data regions and initialised
// function pointers.
//
// An Object corresponds to one compiled module — the main executable
// or one shared library.  Function bodies reference other functions by
// symbol name; whether a call becomes a direct call, a PLT trampoline,
// or a patched call site is entirely the linker's decision, which is
// exactly the property the paper's evaluation varies.
package objfile

import (
	"fmt"

	"repro/internal/isa"
)

// TInstr is a template instruction: an isa.Instr whose target and
// memory operand are still symbolic.
type TInstr struct {
	Op   isa.Op
	Bias uint8 // JmpCond taken probability

	// Sym names a function for Call, or a data region for Load,
	// Store and CallInd (the region slot holds the function pointer).
	Sym string

	// Off is the byte offset within the data region.
	Off uint64

	// Span is the number of 8-byte slots the effective address sweeps
	// (Load/Store only).
	Span uint64

	// Rel is the branch displacement for Jmp/JmpCond, in body
	// instruction indexes relative to the branch itself: the target
	// index is the branch's index plus Rel.  Rel 0 (a self-loop) is
	// invalid; positive values branch forward, negative backwards.
	Rel int

	// Val is the immediate stored by Store.
	Val uint64

	// GOTSym, on a Store, turns the instruction into a runtime
	// re-binding of this module's GOT entry for the named imported
	// symbol (dlclose/interposition): the linker resolves the memory
	// operand to the GOT slot of GOTSym and the stored value to the
	// address of the function named by Sym.  This is exactly the
	// GOT-modification case the paper's Bloom filter exists for
	// (§3.1, §3.3 "GOT entry of library function modified").
	GOTSym string
}

// DataRegion is a named chunk of the module's data segment.
type DataRegion struct {
	Name string
	Size uint64
}

// PtrInit initialises an 8-byte slot of a data region with the
// resolved address of a function symbol (C function pointers, vtable
// slots).
type PtrInit struct {
	Region string
	Off    uint64
	Sym    string
}

// IFunc is a GNU indirect function (§2.4.1): a symbol whose
// implementation is selected from candidate variants when the program
// is loaded, based on hardware capability.  Calls to an ifunc always
// go through the PLT, even from within the defining module — which is
// why glibc's heavily used string routines are exactly the
// trampolines the ABTB accelerates.
type IFunc struct {
	Name     string
	Variants []string // candidate implementations, in capability order
}

// Object is one relocatable module.
type Object struct {
	name       string
	funcs      []*Func
	funcIndex  map[string]*Func
	data       []DataRegion
	dataIndex  map[string]int
	ptrInits   []PtrInit
	ifuncs     []IFunc
	ifuncIndex map[string]int
}

// New returns an empty object named name.
func New(name string) *Object {
	return &Object{
		name:       name,
		funcIndex:  make(map[string]*Func),
		dataIndex:  make(map[string]int),
		ifuncIndex: make(map[string]int),
	}
}

// Name returns the module name.
func (o *Object) Name() string { return o.name }

// AddData declares a data region.  It panics on duplicate names or
// zero size: object construction errors are programming bugs in the
// workload generators.
func (o *Object) AddData(name string, size uint64) {
	if _, dup := o.dataIndex[name]; dup {
		panic(fmt.Sprintf("objfile: duplicate data region %q in %q", name, o.name))
	}
	if size == 0 {
		panic(fmt.Sprintf("objfile: empty data region %q in %q", name, o.name))
	}
	o.dataIndex[name] = len(o.data)
	o.data = append(o.data, DataRegion{Name: name, Size: size})
}

// InitPtr requests that the 8-byte slot at off within region be
// initialised with the address of the function named sym.
func (o *Object) InitPtr(region string, off uint64, sym string) {
	i, ok := o.dataIndex[region]
	if !ok {
		panic(fmt.Sprintf("objfile: InitPtr into unknown region %q in %q", region, o.name))
	}
	if off+8 > o.data[i].Size {
		panic(fmt.Sprintf("objfile: InitPtr at %d overflows region %q (size %d)", off, region, o.data[i].Size))
	}
	o.ptrInits = append(o.ptrInits, PtrInit{Region: region, Off: off, Sym: sym})
}

// NewFunc creates and registers an empty function.  Function names
// are the linker's symbol names and must be unique within the object.
func (o *Object) NewFunc(name string) *Func {
	if _, dup := o.funcIndex[name]; dup {
		panic(fmt.Sprintf("objfile: duplicate function %q in %q", name, o.name))
	}
	f := &Func{Name: name}
	o.funcIndex[name] = f
	o.funcs = append(o.funcs, f)
	return f
}

// DeclareIFunc registers an indirect-function symbol whose
// implementation the loader picks from variants (which must be
// functions defined in this object).  The name must not collide with
// a regular function.
func (o *Object) DeclareIFunc(name string, variants ...string) {
	if len(variants) == 0 {
		panic(fmt.Sprintf("objfile: ifunc %q with no variants", name))
	}
	if _, dup := o.funcIndex[name]; dup {
		panic(fmt.Sprintf("objfile: ifunc %q collides with function", name))
	}
	if _, dup := o.ifuncIndex[name]; dup {
		panic(fmt.Sprintf("objfile: duplicate ifunc %q", name))
	}
	o.ifuncIndex[name] = len(o.ifuncs)
	o.ifuncs = append(o.ifuncs, IFunc{Name: name, Variants: append([]string(nil), variants...)})
}

// IFuncs returns the declared indirect functions.
func (o *Object) IFuncs() []IFunc { return o.ifuncs }

// IFuncByName returns the ifunc declaration and whether it exists.
func (o *Object) IFuncByName(name string) (IFunc, bool) {
	i, ok := o.ifuncIndex[name]
	if !ok {
		return IFunc{}, false
	}
	return o.ifuncs[i], true
}

// Funcs returns the functions in definition order.
func (o *Object) Funcs() []*Func { return o.funcs }

// Func returns the function named name, or nil.
func (o *Object) Func(name string) *Func { return o.funcIndex[name] }

// Data returns the declared data regions in declaration order.
func (o *Object) Data() []DataRegion { return o.data }

// DataRegionByName returns the region and whether it exists.
func (o *Object) DataRegionByName(name string) (DataRegion, bool) {
	i, ok := o.dataIndex[name]
	if !ok {
		return DataRegion{}, false
	}
	return o.data[i], true
}

// PtrInits returns the requested pointer initialisations.
func (o *Object) PtrInits() []PtrInit { return o.ptrInits }

// Defines reports whether the object defines the symbol, as a regular
// function or as an indirect function.
func (o *Object) Defines(sym string) bool {
	if _, ok := o.funcIndex[sym]; ok {
		return true
	}
	_, ok := o.ifuncIndex[sym]
	return ok
}

// Externals returns, in first-use order, every symbol that needs a
// PLT/GOT slot in this module: function symbols referenced but not
// defined here, plus indirect functions — which go through the PLT
// even when called from their defining module (§2.4.1) — and the GOT
// slots named by runtime re-binding stores.  The linker allocates one
// PLT/GOT slot per entry, in this order, mirroring how compilers emit
// PLT entries in definition order (§2).
func (o *Object) Externals() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(sym string, force bool) {
		if sym == "" || seen[sym] {
			return
		}
		if !force && o.definesDirectly(sym) {
			return
		}
		seen[sym] = true
		out = append(out, sym)
	}
	for _, f := range o.funcs {
		for _, in := range f.Body {
			switch {
			case in.Op == isa.Call:
				_, localIFunc := o.ifuncIndex[in.Sym]
				add(in.Sym, localIFunc)
			case in.Op == isa.Store && in.GOTSym != "":
				add(in.GOTSym, false)
			}
		}
	}
	for _, pi := range o.ptrInits {
		add(pi.Sym, false)
	}
	return out
}

// definesDirectly reports whether sym is a regular function of this
// object (ifuncs are indirect by definition).
func (o *Object) definesDirectly(sym string) bool {
	_, ok := o.funcIndex[sym]
	return ok
}

// Validate checks structural well-formedness of the whole object.
func (o *Object) Validate() error {
	if len(o.funcs) == 0 {
		return fmt.Errorf("objfile: object %q has no functions", o.name)
	}
	for _, f := range o.funcs {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("objfile: %q: %w", o.name, err)
		}
		for _, in := range f.Body {
			switch in.Op {
			case isa.Load, isa.Store, isa.CallInd:
				if in.Op == isa.Store && in.GOTSym != "" {
					// A runtime re-binding store; the linker
					// resolves both symbols.
					if in.Sym == "" {
						return fmt.Errorf("objfile: %q: rebind of %q without target", f.Name, in.GOTSym)
					}
					continue
				}
				if _, ok := o.dataIndex[in.Sym]; !ok {
					return fmt.Errorf("objfile: %q: %s references unknown region %q",
						f.Name, in.Op, in.Sym)
				}
				region := o.data[o.dataIndex[in.Sym]]
				need := in.Off + 8
				if in.Span > 1 {
					need = in.Off + in.Span*8
				}
				if need > region.Size {
					return fmt.Errorf("objfile: %q: %s at +%d span %d overflows region %q (size %d)",
						f.Name, in.Op, in.Off, in.Span, in.Sym, region.Size)
				}
			}
		}
	}
	for _, pi := range o.ptrInits {
		if pi.Sym == "" {
			return fmt.Errorf("objfile: %q: pointer init with empty symbol", o.name)
		}
	}
	for _, ifn := range o.ifuncs {
		for _, v := range ifn.Variants {
			if _, ok := o.funcIndex[v]; !ok {
				return fmt.Errorf("objfile: %q: ifunc %q variant %q not defined", o.name, ifn.Name, v)
			}
		}
	}
	return nil
}

// Func is one function body under construction.
type Func struct {
	Name string
	Body []TInstr
}

// ALU appends n register-only instructions.
func (f *Func) ALU(n int) *Func {
	for i := 0; i < n; i++ {
		f.Body = append(f.Body, TInstr{Op: isa.ALU})
	}
	return f
}

// Load appends a load from region+off sweeping span slots.
func (f *Func) Load(region string, off, span uint64) *Func {
	f.Body = append(f.Body, TInstr{Op: isa.Load, Sym: region, Off: off, Span: span})
	return f
}

// Store appends a store of val to region+off sweeping span slots.
func (f *Func) Store(region string, off, span uint64, val uint64) *Func {
	f.Body = append(f.Body, TInstr{Op: isa.Store, Sym: region, Off: off, Span: span, Val: val})
	return f
}

// Call appends a call to the function symbol sym.  Whether it is
// direct or via the PLT is decided at link time.
func (f *Func) Call(sym string) *Func {
	if sym == "" {
		panic("objfile: Call with empty symbol")
	}
	f.Body = append(f.Body, TInstr{Op: isa.Call, Sym: sym})
	return f
}

// CallPtr appends an indirect call through the function pointer stored
// at region+off (virtual dispatch, callbacks).
func (f *Func) CallPtr(region string, off uint64) *Func {
	f.Body = append(f.Body, TInstr{Op: isa.CallInd, Sym: region, Off: off})
	return f
}

// RebindImport appends a store that re-binds this module's GOT entry
// for the imported symbol got to the address of the function named
// to — the runtime linkage modification (library replacement,
// interposition) whose correctness the ABTB's Bloom filter guarantees.
func (f *Func) RebindImport(got, to string) *Func {
	if got == "" || to == "" {
		panic("objfile: RebindImport with empty symbol")
	}
	f.Body = append(f.Body, TInstr{Op: isa.Store, Sym: to, GOTSym: got})
	return f
}

// CondSkip appends a conditional branch that, with probability
// bias/100, skips the next n instructions.
func (f *Func) CondSkip(bias uint8, n int) *Func {
	if n < 1 {
		panic("objfile: CondSkip over nothing")
	}
	f.Body = append(f.Body, TInstr{Op: isa.JmpCond, Bias: bias, Rel: n + 1})
	return f
}

// LoopBack appends a conditional branch that, with probability
// bias/100, jumps back over the previous n instructions (forming a
// loop with expected 1/(1-bias/100) iterations).
func (f *Func) LoopBack(bias uint8, n int) *Func {
	if n < 1 {
		panic("objfile: LoopBack over nothing")
	}
	f.Body = append(f.Body, TInstr{Op: isa.JmpCond, Bias: bias, Rel: -n})
	return f
}

// Ret appends a return.
func (f *Func) Ret() *Func {
	f.Body = append(f.Body, TInstr{Op: isa.Ret})
	return f
}

// Halt appends a halt (driver entry points only).
func (f *Func) Halt() *Func {
	f.Body = append(f.Body, TInstr{Op: isa.Halt})
	return f
}

// Validate checks intra-function well-formedness: branch displacements
// in range, calls named, terminating instruction present.
func (f *Func) Validate() error {
	if len(f.Body) == 0 {
		return fmt.Errorf("function %q is empty", f.Name)
	}
	for i, in := range f.Body {
		switch in.Op {
		case isa.Jmp, isa.JmpCond:
			tgt := i + in.Rel
			if tgt < 0 || tgt >= len(f.Body) {
				return fmt.Errorf("function %q: branch at %d with displacement %d escapes body", f.Name, i, in.Rel)
			}
			if in.Rel == 0 {
				return fmt.Errorf("function %q: zero-displacement branch at %d", f.Name, i)
			}
		case isa.Call:
			if in.Sym == "" {
				return fmt.Errorf("function %q: call at %d without symbol", f.Name, i)
			}
		case isa.Load, isa.Store, isa.CallInd:
			if in.Sym == "" {
				return fmt.Errorf("function %q: %s at %d without region", f.Name, in.Op, i)
			}
		case isa.Resolve, isa.JmpMem, isa.Push, isa.Nop:
			return fmt.Errorf("function %q: %s at %d is linker-reserved", f.Name, in.Op, i)
		}
	}
	last := f.Body[len(f.Body)-1].Op
	if last != isa.Ret && last != isa.Halt && last != isa.Jmp {
		return fmt.Errorf("function %q does not end in ret/halt", f.Name)
	}
	return nil
}
