package objfile

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func validObject(t *testing.T) *Object {
	t.Helper()
	o := New("libtest")
	o.AddData("buf", 256)
	o.NewFunc("work").ALU(3).Load("buf", 0, 8).Ret()
	return o
}

func TestBuilderProducesValidObject(t *testing.T) {
	o := validObject(t)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Name() != "libtest" {
		t.Errorf("Name = %q", o.Name())
	}
	f := o.Func("work")
	if f == nil || len(f.Body) != 5 {
		t.Fatalf("work body = %v", f)
	}
	if f.Body[4].Op != isa.Ret {
		t.Error("last op not ret")
	}
}

func TestExternals(t *testing.T) {
	o := New("app")
	o.AddData("d", 64)
	o.NewFunc("main").
		Call("local").
		Call("printf").
		Call("malloc").
		Call("printf"). // duplicate reference: one slot
		Halt()
	o.NewFunc("local").Ret()
	o.InitPtr("d", 0, "qsort_cmp")
	ext := o.Externals()
	want := []string{"printf", "malloc", "qsort_cmp"}
	if len(ext) != len(want) {
		t.Fatalf("Externals = %v, want %v", ext, want)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Errorf("Externals[%d] = %q, want %q (order must be first-use)", i, ext[i], want[i])
		}
	}
}

func TestExternalsExcludesLocalDefs(t *testing.T) {
	o := New("lib")
	o.NewFunc("a").Call("b").Ret()
	o.NewFunc("b").Ret()
	if ext := o.Externals(); len(ext) != 0 {
		t.Errorf("Externals = %v, want none", ext)
	}
}

func TestValidateCatches(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Object
		frag  string
	}{
		{"no functions", func() *Object { return New("x") }, "no functions"},
		{"empty function", func() *Object {
			o := New("x")
			o.NewFunc("f")
			return o
		}, "empty"},
		{"no terminator", func() *Object {
			o := New("x")
			f := o.NewFunc("f")
			f.ALU(2)
			return o
		}, "ret/halt"},
		{"unknown region", func() *Object {
			o := New("x")
			o.NewFunc("f").Load("nope", 0, 1).Ret()
			return o
		}, "unknown region"},
		{"region overflow", func() *Object {
			o := New("x")
			o.AddData("small", 16)
			o.NewFunc("f").Load("small", 8, 4).Ret() // needs 8+32 > 16
			return o
		}, "overflows"},
		{"branch escapes", func() *Object {
			o := New("x")
			f := o.NewFunc("f")
			f.Body = append(f.Body, TInstr{Op: isa.JmpCond, Bias: 50, Rel: 9})
			f.Ret()
			return o
		}, "escapes"},
		{"zero displacement", func() *Object {
			o := New("x")
			f := o.NewFunc("f")
			f.Body = append(f.Body, TInstr{Op: isa.JmpCond, Bias: 50, Rel: 0})
			f.Ret()
			return o
		}, "zero-displacement"},
		{"reserved op", func() *Object {
			o := New("x")
			f := o.NewFunc("f")
			f.Body = append(f.Body, TInstr{Op: isa.JmpMem})
			f.Ret()
			return o
		}, "linker-reserved"},
		{"call without symbol", func() *Object {
			o := New("x")
			f := o.NewFunc("f")
			f.Body = append(f.Body, TInstr{Op: isa.Call})
			f.Ret()
			return o
		}, "without symbol"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.build().Validate()
			if err == nil {
				t.Fatal("Validate passed")
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("error %q does not mention %q", err, tt.frag)
			}
		})
	}
}

func TestCondSkipAndLoopBackDisplacements(t *testing.T) {
	o := New("x")
	f := o.NewFunc("f")
	f.ALU(1).CondSkip(30, 2).ALU(2).Load("", 0, 0) // placeholder fixed below
	f.Body = f.Body[:len(f.Body)-1]                // drop bogus load
	f.LoopBack(50, 3)
	f.Ret()
	// Body: [alu, jcc(+3), alu, alu, jcc(-3), ret]
	if f.Body[1].Rel != 3 {
		t.Errorf("CondSkip Rel = %d, want 3", f.Body[1].Rel)
	}
	if f.Body[4].Rel != -3 {
		t.Errorf("LoopBack Rel = %d, want -3", f.Body[4].Rel)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// jcc(+3) from index 1 lands on index 4; jcc(-3) from 4 lands on 1.
}

func TestBuilderPanics(t *testing.T) {
	for _, tt := range []struct {
		name string
		f    func()
	}{
		{"duplicate data", func() {
			o := New("x")
			o.AddData("d", 8)
			o.AddData("d", 8)
		}},
		{"empty data", func() { New("x").AddData("d", 0) }},
		{"duplicate func", func() {
			o := New("x")
			o.NewFunc("f")
			o.NewFunc("f")
		}},
		{"empty call sym", func() { New("x").NewFunc("f").Call("") }},
		{"ptr init unknown region", func() { New("x").InitPtr("nope", 0, "f") }},
		{"ptr init overflow", func() {
			o := New("x")
			o.AddData("d", 8)
			o.InitPtr("d", 4, "f")
		}},
		{"condskip zero", func() { New("x").NewFunc("f").CondSkip(50, 0) }},
		{"loopback zero", func() { New("x").NewFunc("f").LoopBack(50, 0) }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.f()
		})
	}
}

func TestDataRegionByName(t *testing.T) {
	o := validObject(t)
	r, ok := o.DataRegionByName("buf")
	if !ok || r.Size != 256 {
		t.Errorf("DataRegionByName = %+v, %v", r, ok)
	}
	if _, ok := o.DataRegionByName("nope"); ok {
		t.Error("unknown region found")
	}
}

func TestDefines(t *testing.T) {
	o := validObject(t)
	if !o.Defines("work") {
		t.Error("Defines(work) = false")
	}
	if o.Defines("other") {
		t.Error("Defines(other) = true")
	}
}
