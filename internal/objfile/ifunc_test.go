package objfile

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestDeclareIFunc(t *testing.T) {
	o := New("lib")
	o.NewFunc("v0").Ret()
	o.NewFunc("v1").Ret()
	o.DeclareIFunc("f", "v0", "v1")
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	ifn, ok := o.IFuncByName("f")
	if !ok || len(ifn.Variants) != 2 || ifn.Variants[0] != "v0" {
		t.Fatalf("IFuncByName = %+v, %v", ifn, ok)
	}
	if _, ok := o.IFuncByName("nope"); ok {
		t.Error("unknown ifunc found")
	}
	if !o.Defines("f") {
		t.Error("object does not define its ifunc")
	}
	if len(o.IFuncs()) != 1 {
		t.Errorf("IFuncs = %d", len(o.IFuncs()))
	}
}

func TestDeclareIFuncPanics(t *testing.T) {
	for _, tt := range []struct {
		name string
		f    func()
	}{
		{"no variants", func() { New("x").DeclareIFunc("f") }},
		{"collides with function", func() {
			o := New("x")
			o.NewFunc("f").Ret()
			o.DeclareIFunc("f", "f")
		}},
		{"duplicate", func() {
			o := New("x")
			o.NewFunc("v").Ret()
			o.DeclareIFunc("f", "v")
			o.DeclareIFunc("f", "v")
		}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.f()
		})
	}
}

func TestValidateIFuncVariantMissing(t *testing.T) {
	o := New("lib")
	o.NewFunc("v0").Ret()
	o.DeclareIFunc("f", "v0", "ghost")
	err := o.Validate()
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("Validate = %v, want ghost complaint", err)
	}
}

func TestExternalsIncludesLocalIFunc(t *testing.T) {
	o := New("lib")
	o.NewFunc("v0").Ret()
	o.DeclareIFunc("f", "v0")
	o.NewFunc("caller").Call("f").Ret()
	ext := o.Externals()
	if len(ext) != 1 || ext[0] != "f" {
		t.Errorf("Externals = %v, want [f] (local ifunc calls use the PLT)", ext)
	}
	// An uncalled ifunc needs no slot.
	o2 := New("lib2")
	o2.NewFunc("v0").Ret()
	o2.DeclareIFunc("g", "v0")
	if ext := o2.Externals(); len(ext) != 0 {
		t.Errorf("uncalled ifunc got a slot: %v", ext)
	}
}

func TestExternalsIncludesRebindGOTSym(t *testing.T) {
	o := New("app")
	o.NewFunc("swap").RebindImport("hook", "impl").Halt()
	ext := o.Externals()
	if len(ext) != 1 || ext[0] != "hook" {
		t.Errorf("Externals = %v, want [hook]", ext)
	}
}

func TestRebindImportValidation(t *testing.T) {
	o := New("app")
	o.NewFunc("swap").RebindImport("hook", "impl").Halt()
	if err := o.Validate(); err != nil {
		t.Fatalf("valid rebind rejected: %v", err)
	}
	// A rebind instruction without a target fails validation.
	bad := New("app2")
	f := bad.NewFunc("swap")
	f.Body = append(f.Body, TInstr{Op: isa.Store, GOTSym: "hook"})
	f.Halt()
	if err := bad.Validate(); err == nil {
		t.Error("rebind without target validated")
	}
}

func TestRebindImportPanics(t *testing.T) {
	for _, tt := range []struct{ got, to string }{{"", "x"}, {"x", ""}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New("x").NewFunc("f").RebindImport(tt.got, tt.to)
		}()
	}
}
