package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// figureWorkloads are the workloads plotted in Figures 4 and 5.
var figureWorkloads = []string{"apache", "firefox", "memcached"}

// Figure4Series is one workload's trampoline rank/frequency curve
// (Figure 4: log count vs. log rank).
type Figure4Series struct {
	Workload string
	Counts   []uint64 // call counts, descending (index = rank)
}

// Figure4 reproduces Figure 4's frequency-of-trampolines series.
func (s *Suite) Figure4() ([]Figure4Series, error) {
	out := make([]Figure4Series, 0, len(figureWorkloads))
	for _, name := range figureWorkloads {
		rd, err := s.run(name)
		if err != nil {
			return nil, err
		}
		ranked := rd.baseRec.Ranked()
		counts := make([]uint64, len(ranked))
		for i, tc := range ranked {
			counts[i] = tc.Count
		}
		out = append(out, Figure4Series{Workload: name, Counts: counts})
	}
	return out, nil
}

// FormatFigure4 renders the series at sampled ranks.
func FormatFigure4(series []Figure4Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4. Frequency of trampolines (call count at rank; log-log shape)\n")
	fmt.Fprintf(&b, "%-12s", "Rank")
	for _, s := range series {
		fmt.Fprintf(&b, " %12s", s.Workload)
	}
	b.WriteString("\n")
	ranks := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}
	for _, r := range ranks {
		fmt.Fprintf(&b, "%-12d", r)
		for _, s := range series {
			if r <= len(s.Counts) {
				fmt.Fprintf(&b, " %12d", s.Counts[r-1])
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure5Sizes are the ABTB entry counts swept in Figure 5.
var Figure5Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Figure5Series is one workload's trampoline-skip curve.
type Figure5Series struct {
	Workload string
	Sizes    []int
	SkipPct  []float64 // percent of trampoline calls skipped at each size
}

// Figure5 reproduces Figure 5: the percentage of library-call
// trampolines skipped as a function of ABTB size, computed
// analytically from one LRU stack-distance pass over the recorded
// trampoline stream (equivalent to replaying an LRU table of each
// size; the equivalence is property-tested in the trace package).
func (s *Suite) Figure5() ([]Figure5Series, error) {
	out := make([]Figure5Series, 0, len(figureWorkloads))
	for _, name := range figureWorkloads {
		rd, err := s.run(name)
		if err != nil {
			return nil, err
		}
		curve := rd.baseRec.SkipCurveFromDistances(Figure5Sizes)
		pct := make([]float64, len(curve))
		for i, c := range curve {
			pct[i] = c * 100
		}
		out = append(out, Figure5Series{Workload: name, Sizes: Figure5Sizes, SkipPct: pct})
	}
	return out, nil
}

// FormatFigure5 renders the skip curves.
func FormatFigure5(series []Figure5Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5. %% of library function call trampolines skipped vs ABTB entries\n")
	fmt.Fprintf(&b, "%-10s", "Entries")
	for _, s := range series {
		fmt.Fprintf(&b, " %12s", s.Workload)
	}
	b.WriteString("\n")
	for i, n := range Figure5Sizes {
		fmt.Fprintf(&b, "%-10d", n)
		for _, s := range series {
			fmt.Fprintf(&b, " %11.1f%%", s.SkipPct[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CDFPair is a request class's Base and Enhanced latency CDFs.
type CDFPair struct {
	Class      string
	Base       []stats.CDFPoint // latency µs vs fraction served
	Enhanced   []stats.CDFPoint
	BaseMeanUS float64
	EnhMeanUS  float64
}

// cdfPairs assembles per-class CDF pairs for a workload, trimming the
// measurement-perturbation outliers as the paper does (§4.4).
func (s *Suite) cdfPairs(workloadName string, points int) ([]CDFPair, error) {
	rd, err := s.run(workloadName)
	if err != nil {
		return nil, err
	}
	out := make([]CDFPair, 0, len(rd.w.Classes))
	for _, c := range rd.w.Classes {
		bs := rd.baseSamp[c.Name].TrimOutliers(99.9)
		es := rd.enhSamp[c.Name].TrimOutliers(99.9)
		out = append(out, CDFPair{
			Class:      c.Name,
			Base:       bs.CDF(points),
			Enhanced:   es.CDF(points),
			BaseMeanUS: bs.Mean(),
			EnhMeanUS:  es.Mean(),
		})
	}
	return out, nil
}

// Figure6 reproduces Figure 6: the CDF of Apache requests served
// within a given response time, per SPECweb request type.
func (s *Suite) Figure6() ([]CDFPair, error) { return s.cdfPairs("apache", 20) }

// Figure8 reproduces Figure 8: the CDF of MySQL requests served
// within a given response time, for New Order and Payment.
func (s *Suite) Figure8() ([]CDFPair, error) { return s.cdfPairs("mysql", 20) }

// FormatCDFPairs renders CDF pairs compactly: selected percentiles
// per class plus the mean improvement.
func FormatCDFPairs(title string, pairs []CDFPair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, p := range pairs {
		fmt.Fprintf(&b, "  %s: mean %0.2fus -> %0.2fus (%+0.2f%%)\n",
			p.Class, p.BaseMeanUS, p.EnhMeanUS,
			(p.EnhMeanUS-p.BaseMeanUS)/p.BaseMeanUS*100)
		fmt.Fprintf(&b, "    %-10s %14s %14s\n", "served", "base (us)", "enhanced (us)")
		for _, frac := range []float64{0.50, 0.90, 0.99} {
			bv := valueAtFraction(p.Base, frac)
			ev := valueAtFraction(p.Enhanced, frac)
			fmt.Fprintf(&b, "    %9.0f%% %14.2f %14.2f\n", frac*100, bv, ev)
		}
	}
	return b.String()
}

// valueAtFraction returns the latency at which the CDF first reaches
// the fraction.
func valueAtFraction(cdf []stats.CDFPoint, frac float64) float64 {
	for _, p := range cdf {
		if p.Fraction >= frac {
			return p.Value
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].Value
}

// Figure7Histogram is one Memcached request type's processing-time
// histogram pair (Figure 7).
type Figure7Histogram struct {
	Class         string
	BucketCenters []float64 // µs
	BaseFraction  []float64
	EnhFraction   []float64
	BasePeakUS    float64
	EnhPeakUS     float64
}

// Figure7 reproduces Figure 7: histograms of Memcached GET and SET
// request processing times, base vs enhanced.  The paper plots the
// buckets within the dominant peak; we histogram the 1st-95th
// percentile span of the merged distributions.
func (s *Suite) Figure7() ([]Figure7Histogram, error) {
	rd, err := s.run("memcached")
	if err != nil {
		return nil, err
	}
	out := make([]Figure7Histogram, 0, 2)
	for _, class := range []string{"GET", "SET"} {
		bs, es := rd.baseSamp[class], rd.enhSamp[class]
		merged := &stats.Sample{}
		merged.AddAll(bs.Values())
		merged.AddAll(es.Values())
		lo, hi := merged.Percentile(1), merged.Percentile(95)
		if hi <= lo {
			hi = lo + 1
		}
		const buckets = 30
		bh := stats.NewHistogram(lo, hi, buckets)
		eh := stats.NewHistogram(lo, hi, buckets)
		for _, v := range bs.Values() {
			bh.Add(v)
		}
		for _, v := range es.Values() {
			eh.Add(v)
		}
		h := Figure7Histogram{Class: class}
		for i := 0; i < buckets; i++ {
			h.BucketCenters = append(h.BucketCenters, bh.BucketCenter(i))
			h.BaseFraction = append(h.BaseFraction, bh.Fraction(i))
			h.EnhFraction = append(h.EnhFraction, eh.Fraction(i))
		}
		h.BasePeakUS = bh.BucketCenter(bh.PeakBucket())
		h.EnhPeakUS = eh.BucketCenter(eh.PeakBucket())
		out = append(out, h)
	}
	return out, nil
}

// FormatFigure7 renders the histogram pair summary.
func FormatFigure7(hists []Figure7Histogram) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7. Memcached request processing time histograms\n")
	for _, h := range hists {
		fmt.Fprintf(&b, "  %s: peak %0.2fus (base) -> %0.2fus (enhanced)\n",
			h.Class, h.BasePeakUS, h.EnhPeakUS)
		fmt.Fprintf(&b, "    %-12s %10s %10s\n", "bucket (us)", "base", "enhanced")
		for i := range h.BucketCenters {
			if h.BaseFraction[i] == 0 && h.EnhFraction[i] == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-12.2f %9.1f%% %9.1f%%\n",
				h.BucketCenters[i], h.BaseFraction[i]*100, h.EnhFraction[i]*100)
		}
	}
	return b.String()
}
