// Package experiments regenerates every table and figure of the
// paper's evaluation (§5), plus the ablations called out in DESIGN.md.
//
// Each experiment is a method on Suite returning typed rows and a
// paper-style textual rendering.  The Suite lazily runs each workload
// once under the Base configuration and once under Enhanced (the
// paper's two columns), with identical seeds and request interleaving,
// and caches the results so that e.g. Table 2, Table 3, Figure 4 and
// Figure 5 all reuse a single pair of simulations.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WorkloadSpec binds a workload generator to its measurement budget.
type WorkloadSpec struct {
	Name    string
	Gen     func(seed uint64) *workload.Workload
	Warm    int // warmup requests before measurement
	Measure int // measured requests
}

// Workloads is the evaluation's workload set (§4.4), in the paper's
// presentation order.
var Workloads = []WorkloadSpec{
	{Name: "apache", Gen: workload.Apache, Warm: 80, Measure: 400},
	{Name: "firefox", Gen: workload.Firefox, Warm: 20, Measure: 150},
	{Name: "memcached", Gen: workload.Memcached, Warm: 80, Measure: 600},
	{Name: "mysql", Gen: workload.MySQL, Warm: 40, Measure: 200},
}

// Suite runs the evaluation.
type Suite struct {
	// Seed drives workload generation, layout, and request
	// interleaving.  The same seed produces bit-identical results.
	Seed uint64

	// Scale multiplies measurement request counts: 1.0 is the default
	// budget; smaller values give quick smoke runs, larger values
	// smoother distributions.
	Scale float64

	runs map[string]*runData
}

// NewSuite returns a Suite with the given seed and scale.
func NewSuite(seed uint64, scale float64) *Suite {
	if scale <= 0 {
		scale = 1
	}
	return &Suite{Seed: seed, Scale: scale, runs: make(map[string]*runData)}
}

// runData is one workload's matched Base/Enhanced measurement pair.
type runData struct {
	spec WorkloadSpec
	w    *workload.Workload

	base, enh         *core.System
	baseSamp, enhSamp map[string]*stats.Sample // per request class, µs
	baseCnt, enhCnt   cpu.Counters
	baseRec           *trace.Recorder
}

func (s *Suite) measure(spec WorkloadSpec) int {
	n := int(float64(spec.Measure) * s.Scale)
	if n < 20 {
		n = 20
	}
	return n
}

// run lazily executes the Base/Enhanced pair for a workload.
func (s *Suite) run(name string) (*runData, error) {
	if rd, ok := s.runs[name]; ok {
		return rd, nil
	}
	var spec WorkloadSpec
	found := false
	for _, ws := range Workloads {
		if ws.Name == name {
			spec, found = ws, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}

	rd := &runData{spec: spec, w: spec.Gen(s.Seed)}
	var err error
	if rd.base, err = rd.w.NewSystem(core.Base(s.Seed)); err != nil {
		return nil, err
	}
	if rd.enh, err = rd.w.NewSystem(core.Enhanced(s.Seed)); err != nil {
		return nil, err
	}

	n := s.measure(spec)
	for _, sysCase := range []struct {
		sys  *core.System
		samp *map[string]*stats.Sample
		cnt  *cpu.Counters
	}{
		{rd.base, &rd.baseSamp, &rd.baseCnt},
		{rd.enh, &rd.enhSamp, &rd.enhCnt},
	} {
		// Matched interleaving: same driver seed for both systems.
		d := workload.NewDriver(rd.w, sysCase.sys, s.Seed+17)
		if err := d.Warmup(spec.Warm); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		samp, err := d.Run(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		*sysCase.samp = samp
		*sysCase.cnt = sysCase.sys.Counters()
	}
	rd.baseRec = rd.base.LifetimeRecorder()
	s.runs[name] = rd
	return rd, nil
}

// all runs every workload pair.
func (s *Suite) all() ([]*runData, error) {
	out := make([]*runData, 0, len(Workloads))
	for _, ws := range Workloads {
		rd, err := s.run(ws.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, rd)
	}
	return out, nil
}

// merged returns one sample merging every request class.
func merged(samp map[string]*stats.Sample) *stats.Sample {
	out := &stats.Sample{}
	for _, s := range samp {
		out.AddAll(s.Values())
	}
	return out
}
