// Package experiments regenerates every table and figure of the
// paper's evaluation (§5), plus the ablations called out in DESIGN.md.
//
// Each experiment is a method on Suite returning typed rows and a
// paper-style textual rendering.  The Suite lazily runs each workload
// once under the Base configuration and once under Enhanced (the
// paper's two columns), with identical seeds and request interleaving,
// and caches the results so that e.g. Table 2, Table 3, Figure 4 and
// Figure 5 all reuse a single pair of simulations.
//
// Simulations execute through an internal/runner pool, so a Suite
// fans its Base/Enhanced pairs out across cores: artefacts that need
// every workload (Table 2, Speedups, ...) submit all eight jobs up
// front and the pool runs as many concurrently as it has workers.
// Results are bit-identical to the historical sequential path — the
// runner executes exactly the same generation/link/warmup/measure
// sequence per job (see TestRunnerDeterminism).
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cpu"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WorkloadSpec binds a workload generator to its measurement budget.
// It aliases the runner's registry entry type.
type WorkloadSpec = runner.WorkloadSpec

// Workloads is the evaluation's workload set (§4.4), in the paper's
// presentation order — the paper subset of the runner's registry.  The
// library-churn workloads (plugin-server, jit) are runnable through the
// runner and dlsimd but are not part of any reproduced table or figure.
var Workloads = runner.PaperWorkloads()

// Suite runs the evaluation.
//
// Suite is safe for concurrent use: the lazy run cache is guarded by
// a mutex, and concurrent requests for the same workload pair are
// coalesced by the runner's singleflight cache so each simulation
// executes exactly once.
type Suite struct {
	// Seed drives workload generation, layout, and request
	// interleaving.  The same seed produces bit-identical results.
	Seed uint64

	// Scale multiplies measurement request counts: 1.0 is the default
	// budget; smaller values give quick smoke runs, larger values
	// smoother distributions.
	Scale float64

	mu   sync.Mutex
	runs map[string]*runData
	pool *runner.Runner
}

// NewSuite returns a Suite with the given seed and scale, executing
// on a private runner pool sized to the machine.
func NewSuite(seed uint64, scale float64) *Suite {
	return NewSuiteWithRunner(seed, scale, runner.New(runner.Options{}))
}

// NewSuiteWithRunner returns a Suite submitting its simulations to r,
// so several suites (or a suite and a dlsimd service) can share one
// pool and result cache.
func NewSuiteWithRunner(seed uint64, scale float64, r *runner.Runner) *Suite {
	if scale <= 0 {
		scale = 1
	}
	return &Suite{Seed: seed, Scale: scale, runs: make(map[string]*runData), pool: r}
}

// Runner returns the pool the suite submits simulations to.
func (s *Suite) Runner() *runner.Runner { return s.pool }

// runData is one workload's matched Base/Enhanced measurement pair.
type runData struct {
	spec WorkloadSpec
	w    *workload.Workload

	baseSamp, enhSamp map[string]*stats.Sample // per request class, µs
	baseCnt, enhCnt   cpu.Counters
	baseRec           *trace.Recorder
}

func (s *Suite) measure(spec WorkloadSpec) int {
	scale := s.Scale
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(spec.Measure) * scale)
	if n < 20 {
		n = 20
	}
	return n
}

// pair returns the workload's Base/Enhanced job specs.
func (s *Suite) pair(name string) [2]runner.JobSpec {
	return runner.PairSpecs(name, s.Seed, s.Scale)
}

// run lazily executes the Base/Enhanced pair for a workload through
// the runner pool.  Both jobs are submitted before either is waited
// on, so a pair occupies two workers at once.
func (s *Suite) run(name string) (*runData, error) {
	s.mu.Lock()
	if rd, ok := s.runs[name]; ok {
		s.mu.Unlock()
		return rd, nil
	}
	s.mu.Unlock()

	if _, ok := runner.WorkloadByName(name); !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	specs := s.pair(name)
	results, err := s.pool.RunAll(context.Background(), specs[:])
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	base, enh := results[0], results[1]

	rd := &runData{
		spec:     s.specOf(name),
		w:        base.Workload,
		baseSamp: base.Samples,
		enhSamp:  enh.Samples,
		baseCnt:  base.Counters,
		enhCnt:   enh.Counters,
		baseRec:  base.Trace,
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prior, ok := s.runs[name]; ok {
		// A concurrent caller got here first; the runner deduplicated
		// the simulations, so both runData views are identical — keep
		// the first for pointer stability.
		return prior, nil
	}
	s.runs[name] = rd
	return rd, nil
}

// specOf returns the registry entry for a known workload name.
func (s *Suite) specOf(name string) WorkloadSpec {
	ws, _ := runner.WorkloadByName(name)
	return ws
}

// all runs every workload pair, fanning the whole matrix out across
// the runner pool before collecting any result.
func (s *Suite) all() ([]*runData, error) {
	for _, spec := range runner.SuiteSpecs(s.Seed, s.Scale) {
		if _, _, err := s.pool.Submit(spec); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	out := make([]*runData, 0, len(Workloads))
	for _, ws := range Workloads {
		rd, err := s.run(ws.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, rd)
	}
	return out, nil
}

// merged returns one sample merging every request class.
func merged(samp map[string]*stats.Sample) *stats.Sample {
	out := &stats.Sample{}
	for _, s := range samp {
		out.AddAll(s.Values())
	}
	return out
}
