package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestApacheMechanismAnatomy pins the microarchitectural anatomy of
// the headline result on Apache: where the enhanced system's wins and
// costs come from.  It guards against regressions in the balance this
// reproduction converged on:
//
//   - conditional mispredicts identical (deterministic execution);
//   - base pays indirect-branch mispredicts on trampolines under BTB
//     pressure, which the enhanced system eliminates;
//   - the enhanced system pays call-redirect mispredicts instead, but
//     fewer, so total mispredicts drop (the paper's Table 4 row);
//   - nearly all trampoline calls are skipped in steady state;
//   - the Bloom filter never spuriously flushes in steady state.
func TestApacheMechanismAnatomy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tens of millions of instructions")
	}
	w := workload.Apache(1)
	run := func(cfg core.Config) *core.System {
		sys, err := w.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := workload.NewDriver(w, sys, 18)
		if err := d.Warmup(80); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(200); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	base := run(core.Base(1))
	enh := run(core.Enhanced(1))
	cb, ce := base.Counters(), enh.Counters()

	t.Logf("base: mispred=%d (cond=%d ind=%d call=%d) bubbles=%d cycles=%d",
		cb.Mispredicts, cb.MispredCond, cb.MispredIndirect, cb.MispredCall, cb.FetchBubbles, cb.Cycles)
	t.Logf("enh:  mispred=%d (cond=%d ind=%d call=%d) bubbles=%d cycles=%d skips=%d/%d",
		ce.Mispredicts, ce.MispredCond, ce.MispredIndirect, ce.MispredCall, ce.FetchBubbles, ce.Cycles,
		ce.TrampSkips, ce.TrampCalls)

	if cb.MispredCond != ce.MispredCond {
		t.Errorf("conditional mispredicts diverged: %d vs %d (determinism broken)",
			cb.MispredCond, ce.MispredCond)
	}
	if cb.MispredCall != 0 {
		t.Errorf("base system has %d call-redirect mispredicts", cb.MispredCall)
	}
	if ce.MispredIndirect >= cb.MispredIndirect {
		t.Errorf("indirect mispredicts not reduced: %d -> %d",
			cb.MispredIndirect, ce.MispredIndirect)
	}
	if ce.Mispredicts >= cb.Mispredicts {
		t.Errorf("total mispredicts not reduced: %d -> %d", cb.Mispredicts, ce.Mispredicts)
	}
	if ce.Cycles >= cb.Cycles {
		t.Errorf("cycles not reduced: %d -> %d", cb.Cycles, ce.Cycles)
	}
	skipRate := float64(ce.TrampSkips) / float64(ce.TrampCalls)
	if skipRate < 0.9 {
		t.Errorf("steady-state skip rate %.3f, want > 0.9", skipRate)
	}
	if ab := enh.CPU().ABTB(); ab.FlushingStores() != 0 {
		t.Errorf("%d spurious Bloom-filter flushes in steady state", ab.FlushingStores())
	}
}
