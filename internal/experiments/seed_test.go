package experiments

import "testing"

// TestSeedRobustness guards against seed-overfitting: the headline
// Apache improvement must be positive for several unrelated seeds, not
// just the documented one.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full apache pairs")
	}
	for _, seed := range []uint64{2, 5, 11} {
		s := NewSuite(seed, 0.4)
		rows, err := s.Speedups()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "apache" {
				t.Logf("seed %d: apache improvement %+.2f%%", seed, r.ImprovePct)
				if r.ImprovePct < 0.3 {
					t.Errorf("seed %d: apache improvement %.2f%%, want >= 0.3%%", seed, r.ImprovePct)
				}
			}
			if r.ImprovePct < -0.5 {
				t.Errorf("seed %d: %s regressed %.2f%%", seed, r.Workload, r.ImprovePct)
			}
		}
	}
}
