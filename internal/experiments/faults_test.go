package experiments

import (
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/runner"
)

// TestSuiteSurvivesTransientFaults runs an artefact through a pool
// whose first few simulations fail with injected transient errors:
// the runner's backoff retry absorbs them and the suite still
// produces complete rows, so a flaky substrate cannot corrupt the
// evaluation.
func TestSuiteSurvivesTransientFaults(t *testing.T) {
	leakcheck.Check(t)
	faultinject.Enable("runner.execute", faultinject.PointConfig{
		Mode: faultinject.Error, Prob: 1, Count: 3,
	})
	t.Cleanup(faultinject.Reset)

	pool := runner.New(runner.Options{
		Workers:   2,
		Retry:     runner.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		RetrySeed: 7,
	})
	defer pool.Close()
	s := NewSuiteWithRunner(1, 0.05, pool)

	rows, err := s.Speedups()
	if err != nil {
		t.Fatalf("suite failed despite retry policy: %v", err)
	}
	if len(rows) != len(Workloads) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Workloads))
	}

	st := pool.Stats()
	if st.Retries != 3 {
		t.Errorf("retries = %d, want exactly 3 (the injected faults)", st.Retries)
	}
	if st.Failed != 0 || st.Completed != 8 {
		t.Errorf("failed=%d completed=%d, want 0/8", st.Failed, st.Completed)
	}
	if faultinject.Injections("runner.execute") != 3 {
		t.Errorf("injections = %d, want 3", faultinject.Injections("runner.execute"))
	}
}

// TestSuiteRetriedResultsBitIdentical re-runs the same artefact on a
// clean pool and requires byte-identical output: a retried simulation
// restarts from its spec, so injected faults cannot perturb any
// published number.
func TestSuiteRetriedResultsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the workload matrix twice")
	}
	leakcheck.Check(t)

	render := func(s *Suite) string {
		sp, err := s.Speedups()
		if err != nil {
			t.Fatal(err)
		}
		return FormatSpeedups(sp)
	}

	faultinject.Enable("runner.execute", faultinject.PointConfig{
		Mode: faultinject.Error, Prob: 1, Count: 2,
	})
	t.Cleanup(faultinject.Reset)
	faulty := NewSuiteWithRunner(1, 0.05, runner.New(runner.Options{
		Workers: 2,
		Retry:   runner.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}))
	defer faulty.Runner().Close()
	faultyOut := render(faulty)

	faultinject.Reset()
	clean := NewSuiteWithRunner(1, 0.05, runner.New(runner.Options{Workers: 2}))
	defer clean.Runner().Close()
	cleanOut := render(clean)

	if faultyOut != cleanOut {
		t.Errorf("retried output differs from clean run:\n--- retried ---\n%s\n--- clean ---\n%s", faultyOut, cleanOut)
	}
}
