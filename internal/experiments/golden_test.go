package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenSeed pins the workload generation, layout and request streams
// of the golden runs.  Changing it (or the golden scale) invalidates
// testdata/golden_counters.json; regenerate with -update.
const goldenSeed = 7

// goldenScale trades coverage for runtime: a quarter of each
// workload's default measured window still executes tens of millions
// of instructions across the matrix, enough to exercise every kernel
// path (trampolines, resolver, ABTB redirects and flushes, swept
// loads, conditional branches) while keeping the test CI-sized.
const goldenScale = 0.25

// goldenEntry is one workload×config cell: the full CPU counter
// snapshot over the measurement window.
type goldenEntry struct {
	Workload string       `json:"workload"`
	Config   string       `json:"config"`
	Counters cpu.Counters `json:"counters"`
}

func goldenSpecs() []runner.JobSpec {
	var specs []runner.JobSpec
	for _, w := range runner.WorkloadNames() {
		for _, cfg := range []runner.ConfigKind{runner.Base, runner.Enhanced} {
			specs = append(specs, runner.JobSpec{
				Workload: w, Config: cfg, Seed: goldenSeed, Scale: goldenScale,
			})
		}
	}
	return specs
}

// runGoldenMatrix executes the golden workload × config matrix under
// the given runner options and returns the counter snapshot rows.
func runGoldenMatrix(t *testing.T, opts runner.Options) []goldenEntry {
	t.Helper()
	pool := runner.New(opts)
	defer pool.Close()
	results, err := pool.RunAll(t.Context(), goldenSpecs())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]goldenEntry, len(results))
	for i, res := range results {
		got[i] = goldenEntry{
			Workload: res.Spec.Workload,
			Config:   string(res.Spec.Config),
			Counters: res.Counters,
		}
	}
	return got
}

// TestGoldenCounters locks the simulation kernel to a pre-recorded
// counter snapshot: every workload × {base, enhanced} cell must
// reproduce testdata/golden_counters.json field for field.  The file
// was generated before the kernel's hot-path rework (dense per-page
// execution counters, memoized data pages, de-mapped trampoline
// accounting, set-associative fast paths), so a pass proves those
// optimisations are bit-identical, not just statistically close.
//
// The matrix runs twice against the SAME golden file — once replaying
// compiled traces (the default) and once on the interpreted path
// (DisableCompiledTraces) — so trace compilation is pinned as a pure
// speed change with no counter drift in either direction.
//
// Regenerate deliberately with:
//
//	go test ./internal/experiments/ -run TestGoldenCounters -update
func TestGoldenCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is full simulations; skipped in -short")
	}
	path := filepath.Join("testdata", "golden_counters.json")

	got := runGoldenMatrix(t, runner.Options{Workers: 2})

	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d entries)", path, len(got))
		return
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	compareGolden(t, "compiled", got, want)
	compareGolden(t, "interpreted",
		runGoldenMatrix(t, runner.Options{Workers: 2, DisableCompiledTraces: true}), want)
	if t.Failed() {
		t.Fatal(fmt.Sprintf("kernel output drifted from %s: the optimized hot path is no longer bit-identical", path))
	}
}

// compareGolden diffs one matrix run against the golden rows,
// reporting exactly which counters drifted, field by field.
func compareGolden(t *testing.T, label string, got, want []goldenEntry) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: golden file has %d entries, run produced %d (regenerate with -update?)", label, len(want), len(got))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Workload != w.Workload || g.Config != w.Config {
			t.Fatalf("%s: entry %d is %s/%s, golden has %s/%s", label, i, g.Workload, g.Config, w.Workload, w.Config)
		}
		if g.Counters == w.Counters {
			continue
		}
		gv := reflect.ValueOf(g.Counters)
		wv := reflect.ValueOf(w.Counters)
		for f := 0; f < gv.NumField(); f++ {
			if gv.Field(f).Uint() != wv.Field(f).Uint() {
				t.Errorf("%s: %s/%s: %s = %d, golden %d",
					label, g.Workload, g.Config, gv.Type().Field(f).Name,
					gv.Field(f).Uint(), wv.Field(f).Uint())
			}
		}
	}
}
