package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Table2Row is one row of Table 2: trampoline instructions per kilo
// instruction under the base system.
type Table2Row struct {
	Workload string
	PKI      float64
	PaperPKI float64
}

// paperTable2 records the paper's published values for side-by-side
// reporting.
var paperTable2 = map[string]float64{
	"apache": 12.23, "firefox": 0.72, "memcached": 1.75, "mysql": 5.56,
}

// Table2 reproduces Table 2.
func (s *Suite) Table2() ([]Table2Row, error) {
	rds, err := s.all()
	if err != nil {
		return nil, err
	}
	out := make([]Table2Row, 0, len(rds))
	for _, rd := range rds {
		out = append(out, Table2Row{
			Workload: rd.spec.Name,
			PKI:      core.PKIOf(rd.baseCnt).TrampInstrs,
			PaperPKI: paperTable2[rd.spec.Name],
		})
	}
	return out, nil
}

// FormatTable2 renders Table 2 rows.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Instructions in trampoline per kilo instruction\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "Workload", "Measured", "Paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12.2f %12.2f\n", r.Workload, r.PKI, r.PaperPKI)
	}
	return b.String()
}

// Table3Row is one row of Table 3: distinct trampolines used.
type Table3Row struct {
	Workload      string
	Distinct      int
	PaperDistinct int
}

var paperTable3 = map[string]int{
	"apache": 501, "firefox": 2457, "memcached": 33, "mysql": 1611,
}

// Table3 reproduces Table 3.
func (s *Suite) Table3() ([]Table3Row, error) {
	rds, err := s.all()
	if err != nil {
		return nil, err
	}
	out := make([]Table3Row, 0, len(rds))
	for _, rd := range rds {
		out = append(out, Table3Row{
			Workload:      rd.spec.Name,
			Distinct:      rd.baseRec.Distinct(),
			PaperDistinct: paperTable3[rd.spec.Name],
		})
	}
	return out, nil
}

// FormatTable3 renders Table 3 rows.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Number of trampolines used by program execution\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "Workload", "Measured", "Paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d %12d\n", r.Workload, r.Distinct, r.PaperDistinct)
	}
	return b.String()
}

// Table4Row is one workload's Base/Enhanced counter pair (Table 4),
// all values per kilo-instruction.
type Table4Row struct {
	Workload string
	Base     core.PKI
	Enhanced core.PKI
}

// Table4 reproduces Table 4: performance counters per kilo
// instruction, base vs. enhanced.
func (s *Suite) Table4() ([]Table4Row, error) {
	rds, err := s.all()
	if err != nil {
		return nil, err
	}
	out := make([]Table4Row, 0, len(rds))
	for _, rd := range rds {
		out = append(out, Table4Row{
			Workload: rd.spec.Name,
			Base:     core.PKIOf(rd.baseCnt),
			Enhanced: core.PKIOf(rd.enhCnt),
		})
	}
	return out, nil
}

// FormatTable4 renders Table 4 in the paper's counter × workload
// layout.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Performance counters (values are per kilo instruction)\n")
	fmt.Fprintf(&b, "%-22s", "Performance Counter")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s-Base %10s-Enh", r.Workload[:min(6, len(r.Workload))], r.Workload[:min(6, len(r.Workload))])
	}
	b.WriteString("\n")
	counters := []struct {
		name string
		get  func(core.PKI) float64
	}{
		{"I-$ Misses", func(p core.PKI) float64 { return p.L1IMisses }},
		{"I-TLB Misses", func(p core.PKI) float64 { return p.ITLBMisses }},
		{"D-$ Misses", func(p core.PKI) float64 { return p.L1DMisses }},
		{"D-TLB Misses", func(p core.PKI) float64 { return p.DTLBMisses }},
		{"Branch Mispredictions", func(p core.PKI) float64 { return p.Mispredicts }},
	}
	for _, c := range counters {
		fmt.Fprintf(&b, "%-22s", c.name)
		for _, r := range rows {
			fmt.Fprintf(&b, " %15.2f %14.2f", c.get(r.Base), c.get(r.Enhanced))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table5Row is one Peacekeeper category score (Table 5, higher is
// better).  Scores are derived as work-per-second: the category's
// fixed work quantum divided by its mean request latency.
type Table5Row struct {
	Category   string
	Base       float64
	Enhanced   float64
	ImprovePct float64
}

// Table5 reproduces Table 5: Firefox Peacekeeper scores.
func (s *Suite) Table5() ([]Table5Row, error) {
	rd, err := s.run("firefox")
	if err != nil {
		return nil, err
	}
	// Work quanta chosen so base scores land near the paper's
	// magnitudes (fps for rendering categories, ops for the rest).
	quantum := map[string]float64{
		"Rendering": 1.6e3, "Canvas": 1.2e3, "Data": 7e5,
		"DOM": 5.4e5, "TextParsing": 7e6,
	}
	out := make([]Table5Row, 0, len(quantum))
	for _, cat := range []string{"Rendering", "Canvas", "Data", "DOM", "TextParsing"} {
		bm := rd.baseSamp[cat].Mean()
		em := rd.enhSamp[cat].Mean()
		if bm == 0 || em == 0 {
			return nil, fmt.Errorf("experiments: firefox category %s unmeasured", cat)
		}
		base := quantum[cat] / bm
		enh := quantum[cat] / em
		out = append(out, Table5Row{
			Category:   cat,
			Base:       base,
			Enhanced:   enh,
			ImprovePct: (enh - base) / base * 100,
		})
	}
	return out, nil
}

// FormatTable5 renders Table 5 rows.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. Firefox Peacekeeper scores (higher is better)\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %10s\n", "Workload", "Base", "Enhanced", "Delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12.1f %12.1f %+9.2f%%\n", r.Category, r.Base, r.Enhanced, r.ImprovePct)
	}
	return b.String()
}

// Table6Row is one percentile row of Table 6: MySQL response times in
// milliseconds, lower is better.
type Table6Row struct {
	Percentile                float64
	NewOrderBase, NewOrderEnh float64
	PaymentBase, PaymentEnh   float64
}

// Table6 reproduces Table 6: response time of MySQL requests at the
// paper's percentiles.
func (s *Suite) Table6() ([]Table6Row, error) {
	rd, err := s.run("mysql")
	if err != nil {
		return nil, err
	}
	out := make([]Table6Row, 0, 4)
	for _, p := range []float64{50, 75, 90, 95} {
		out = append(out, Table6Row{
			Percentile:   p,
			NewOrderBase: rd.baseSamp["NewOrder"].Percentile(p) / 1000, // µs → ms
			NewOrderEnh:  rd.enhSamp["NewOrder"].Percentile(p) / 1000,
			PaymentBase:  rd.baseSamp["Payment"].Percentile(p) / 1000,
			PaymentEnh:   rd.enhSamp["Payment"].Percentile(p) / 1000,
		})
	}
	return out, nil
}

// FormatTable6 renders Table 6 rows.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6. Response Time of MySQL Requests in milliseconds (lower is better)\n")
	fmt.Fprintf(&b, "%-9s %14s %14s %14s %14s\n",
		"Requests", "NewOrder-Base", "NewOrder-Enh", "Payment-Base", "Payment-Enh")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7.0f%%  %14.3f %14.3f %14.3f %14.3f\n",
			r.Percentile, r.NewOrderBase, r.NewOrderEnh, r.PaymentBase, r.PaymentEnh)
	}
	return b.String()
}

// Speedup summarises the headline result: mean request latency
// improvement of Enhanced over Base per workload (the paper's "up to
// 4%" for Apache).
type Speedup struct {
	Workload   string
	BaseMeanUS float64
	EnhMeanUS  float64
	ImprovePct float64
}

// Speedups computes the per-workload mean latency improvement.
func (s *Suite) Speedups() ([]Speedup, error) {
	rds, err := s.all()
	if err != nil {
		return nil, err
	}
	out := make([]Speedup, 0, len(rds))
	for _, rd := range rds {
		bm := merged(rd.baseSamp).Mean()
		em := merged(rd.enhSamp).Mean()
		out = append(out, Speedup{
			Workload:   rd.spec.Name,
			BaseMeanUS: bm,
			EnhMeanUS:  em,
			ImprovePct: stats.PercentDelta(bm, em),
		})
	}
	return out, nil
}

// FormatSpeedups renders the speedup summary.
func FormatSpeedups(rows []Speedup) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline: mean request latency, Base vs Enhanced\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %10s\n", "Workload", "Base (us)", "Enhanced (us)", "Improve")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14.2f %14.2f %+9.2f%%\n", r.Workload, r.BaseMeanUS, r.EnhMeanUS, r.ImprovePct)
	}
	return b.String()
}
