package experiments

import (
	"testing"

	"repro/internal/runner"
)

// benchSuite measures full-suite wall-clock (all four workloads'
// Base/Enhanced pairs, the simulations behind every table and figure)
// at scale 0.25 through a pool with the given options.
func benchSuite(b *testing.B, opts runner.Options) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := runner.New(opts)
		s := NewSuiteWithRunner(1, 0.25, r)
		if _, err := s.Speedups(); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// BenchmarkSuiteSequential is the historical one-core path: every
// simulation runs back to back on a single worker.
func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, runner.Options{Workers: 1}) }

// BenchmarkSuiteParallel fans the eight simulations out across a
// machine-sized pool with the full telemetry layer on (metrics +
// job-phase tracing, the production default); the speedup over
// BenchmarkSuiteSequential is recorded in BENCH_runner.json.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, runner.Options{}) }

// BenchmarkSuiteParallelNoTrace is the same fan-out with job-phase
// tracing disabled, isolating the span layer's share of the telemetry
// cost; the delta vs BenchmarkSuiteParallel feeds BENCH_obs.json.
// (Metric instruments cannot be disabled — they ARE the runner's
// bookkeeping — so their cost is bounded separately by the
// internal/telemetry micro-benchmarks.)
func BenchmarkSuiteParallelNoTrace(b *testing.B) {
	benchSuite(b, runner.Options{TraceCapacity: -1})
}
