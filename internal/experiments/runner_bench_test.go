package experiments

import (
	"testing"

	"repro/internal/runner"
)

// benchSuite measures full-suite wall-clock (all four workloads'
// Base/Enhanced pairs, the simulations behind every table and figure)
// at scale 0.25 through a pool of the given width.
func benchSuite(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := runner.New(runner.Options{Workers: workers})
		s := NewSuiteWithRunner(1, 0.25, r)
		if _, err := s.Speedups(); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// BenchmarkSuiteSequential is the historical one-core path: every
// simulation runs back to back on a single worker.
func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel fans the eight simulations out across a
// machine-sized pool; the speedup over BenchmarkSuiteSequential is
// recorded in BENCH_runner.json.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }
