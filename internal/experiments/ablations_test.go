package experiments

import (
	"strings"
	"testing"
)

// Ablations are expensive (each design point is a full simulation);
// they share the package-level suite's seed but run their own systems.

func TestAblationBloomSize(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps seven full simulations")
	}
	points, err := shared.AblationBloomSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("points = %d", len(points))
	}
	// The cliff: an undersized filter saturates (about 400 GOT
	// addresses live in it between flushes) and spuriously flushes on
	// ordinary stores; a generously sized one never does.
	smallest, largest := points[0], points[len(points)-1]
	if smallest.FlushingStores == 0 {
		t.Errorf("%d-bit filter reported no spurious flushes", smallest.Bits)
	}
	if largest.FlushingStores > smallest.FlushingStores/20 {
		t.Errorf("%d-bit filter still flushes %d times (smallest: %d)",
			largest.Bits, largest.FlushingStores, smallest.FlushingStores)
	}
	if largest.SkipPct <= smallest.SkipPct {
		t.Errorf("skip rate did not improve with filter size: %.1f%% -> %.1f%%",
			smallest.SkipPct, largest.SkipPct)
	}
	// Monotone non-increasing flush counts as the filter grows.
	for i := 1; i < len(points); i++ {
		if points[i].FlushingStores > points[i-1].FlushingStores {
			t.Errorf("flushing stores rose at %d bits: %d -> %d",
				points[i].Bits, points[i-1].FlushingStores, points[i].FlushingStores)
		}
	}
	if !strings.Contains(FormatBloomSweep(points), "Bloom") {
		t.Error("FormatBloomSweep malformed")
	}
}

func TestAblationBindingModes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five full simulations")
	}
	points, err := shared.AblationBindingModes()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]BindingPoint{}
	for _, p := range points {
		byLabel[p.Label] = p
	}
	base, enhanced := byLabel["base"], byLabel["enhanced"]
	static, patched, eager := byLabel["static"], byLabel["patched"], byLabel["eager"]

	// The paper's framing: enhanced delivers (nearly) the performance
	// of static linking.  Allow enhanced to close at least 60% of the
	// base→static gap.
	gap := base.MeanUS - static.MeanUS
	if gap <= 0 {
		t.Fatalf("static (%.2f) not faster than base (%.2f)", static.MeanUS, base.MeanUS)
	}
	// The residual gap is the occasionally-unskipped tail plus the
	// denser static text layout, which no trampoline-skipping scheme
	// recovers.
	closed := base.MeanUS - enhanced.MeanUS
	if closed < 0.45*gap {
		t.Errorf("enhanced closes %.1f%% of the static gap, want >= 45%%", closed/gap*100)
	}
	// Static and patched have no trampolines; base and eager do.
	if static.TrampPKI != 0 || patched.TrampPKI != 0 {
		t.Errorf("static/patched executed trampolines: %.2f / %.2f", static.TrampPKI, patched.TrampPKI)
	}
	if base.TrampPKI <= 0 || eager.TrampPKI <= 0 {
		t.Errorf("base/eager executed no trampolines: %.2f / %.2f", base.TrampPKI, eager.TrampPKI)
	}
	if !strings.Contains(FormatBindingModes(points), "static") {
		t.Error("FormatBindingModes malformed")
	}
}

func TestAblationExplicitInvalidate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulations")
	}
	points, err := shared.AblationExplicitInvalidate()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	bloom, explicit := points[0], points[1]
	// Both variants skip nearly everything in steady state.
	if bloom.SkipPct < 90 || explicit.SkipPct < 90 {
		t.Errorf("skip rates %.1f%% / %.1f%%, want > 90%%", bloom.SkipPct, explicit.SkipPct)
	}
	// The §3.4 variant is the cheaper hardware.
	if explicit.StorageBytes >= bloom.StorageBytes {
		t.Errorf("explicit variant (%dB) not cheaper than bloom (%dB)",
			explicit.StorageBytes, bloom.StorageBytes)
	}
	if !strings.Contains(FormatExplicitInvalidate(points), "explicit") {
		t.Error("FormatExplicitInvalidate malformed")
	}
}

func TestAblationContextSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six full simulations")
	}
	points, err := shared.AblationContextSwitch()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	get := func(label string, every int) ContextSwitchPoint {
		for _, p := range points {
			if p.Label == label && p.SwitchEvery == every {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", label, every)
		return ContextSwitchPoint{}
	}
	// ASID tagging preserves the skip rate under frequent switches;
	// the flushing design loses it (§3.3).
	if a, f := get("asid", 1), get("flush", 1); a.SkipPct <= f.SkipPct {
		t.Errorf("every-request switches: asid %.1f%% <= flush %.1f%%", a.SkipPct, f.SkipPct)
	}
	// With rare switches the flushing design recovers.
	if f1, f16 := get("flush", 1), get("flush", 16); f16.SkipPct <= f1.SkipPct {
		t.Errorf("flush policy did not recover with rarer switches: %.1f%% vs %.1f%%",
			f16.SkipPct, f1.SkipPct)
	}
	if !strings.Contains(FormatContextSwitch(points), "asid") {
		t.Error("FormatContextSwitch malformed")
	}
}

func TestAblationABTBGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full simulations")
	}
	points, err := shared.AblationABTBGeometry()
	if err != nil {
		t.Fatal(err)
	}
	// Skip rate grows with live table size, mirroring Figure 5.
	for i := 1; i < len(points); i++ {
		if points[i].SkipPct < points[i-1].SkipPct-2 { // small tolerance: live runs have churn
			t.Errorf("live skip rate fell at %d entries: %.1f%% -> %.1f%%",
				points[i].Entries, points[i-1].SkipPct, points[i].SkipPct)
		}
	}
	last := points[len(points)-1]
	if last.SkipPct < 90 {
		t.Errorf("1024-entry live ABTB skips %.1f%%, want > 90%%", last.SkipPct)
	}
	if !strings.Contains(FormatABTBGeometry(points), "Entries") {
		t.Error("FormatABTBGeometry malformed")
	}
}

func TestAblationPLTStyle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full simulations")
	}
	points, err := shared.AblationPLTStyle()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	get := func(style string, enhanced bool) PLTStylePoint {
		for _, p := range points {
			if p.Style == style && p.Enhanced == enhanced {
				return p
			}
		}
		t.Fatalf("missing %s/%v", style, enhanced)
		return PLTStylePoint{}
	}
	x86b, x86e := get("x86", false), get("x86", true)
	armb, arme := get("arm", false), get("arm", true)
	// ARM trampolines cost ~3 instructions per call vs 1 on x86.
	if armb.TrampPKI < 2.2*x86b.TrampPKI {
		t.Errorf("ARM base trampoline PKI %.2f not ~3x x86's %.2f", armb.TrampPKI, x86b.TrampPKI)
	}
	// Both enhanced systems skip nearly everything.
	if x86e.SkipPct < 90 || arme.SkipPct < 90 {
		t.Errorf("skip rates %.1f%% / %.1f%%", x86e.SkipPct, arme.SkipPct)
	}
	// The ABTB's win is at least as large on ARM (more instructions
	// eliminated per skip).
	if arme.ImprovePct < x86e.ImprovePct-0.05 {
		t.Errorf("ARM improvement %.2f%% < x86 %.2f%%", arme.ImprovePct, x86e.ImprovePct)
	}
	if !strings.Contains(FormatPLTStyle(points), "arm") {
		t.Error("FormatPLTStyle malformed")
	}
}

func TestAblationSMP(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six cluster simulations")
	}
	points, err := shared.AblationSMP()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Enhanced && p.ImprovePct < -0.3 {
			t.Errorf("%d cores: enhanced slower by %.2f%%", p.Cores, -p.ImprovePct)
		}
	}
	if !strings.Contains(FormatSMP(points), "Cores") {
		t.Error("FormatSMP malformed")
	}
}
