package experiments

import (
	"fmt"
	"strings"

	"repro/internal/linker"
	"repro/internal/mem"
	"repro/internal/mmu"
)

// MemorySavings quantifies §5.5: the physical-memory cost of the
// software call-site-patching approach under a prefork server, which
// the hardware ABTB avoids entirely.
type MemorySavings struct {
	Processes        int
	CallSites        int     // call sites the software approach patches
	PatchedPages     int     // distinct text pages written
	PerProcessKB     float64 // private pages per worker after patching
	TotalWastedMB    float64 // across all workers
	SharedTextPages  int     // text pages of the image (stay shared in hardware)
	HardwareWastedMB float64 // always 0: code pages stay COW-shared
}

// MemorySavingsExperiment links the Apache bundle in patched mode,
// then simulates a prefork master and N workers in the MMU: each
// worker lazily patches its call sites after fork (the worst case the
// paper describes), copying every text page that contains one.
func (s *Suite) MemorySavingsExperiment(processes int) (*MemorySavings, error) {
	w := Workloads[0].Gen(s.Seed) // apache: the paper's prefork example
	img, err := linker.Link(w.App, w.Libs, linker.Options{Mode: linker.BindPatched, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	st := img.Patch()

	// Build the master's address space: every module's text+PLT span,
	// read-only executable (shared), plus its writable data span.
	phys := mmu.NewPhysMemory()
	master := mmu.NewAddressSpace(phys)
	textPages := 0
	type textSpan struct{ lo, hi uint64 }
	var spans []textSpan
	for _, m := range img.Modules() {
		end := m.TextEnd
		if m.PLTEnd > end {
			end = m.PLTEnd
		}
		lo := mem.PageBase(m.Base)
		n := int((end - lo + mem.PageSize - 1) / mem.PageSize)
		if err := master.Map(lo, n, mmu.PermRead|mmu.PermExec); err != nil {
			return nil, err
		}
		textPages += n
		spans = append(spans, textSpan{lo, lo + uint64(n)*mem.PageSize})
		dlo := mem.PageBase(m.DataBase)
		dn := int((m.DataEnd-dlo+mem.PageSize-1)/mem.PageSize) + 1
		if err := master.Map(dlo, dn, mmu.PermRead|mmu.PermWrite); err != nil {
			return nil, err
		}
	}

	// Reconstruct the set of patched page addresses: every page of a
	// module that contains a rewritten call site.  The linker records
	// the distinct count; for the MMU replay we patch that many pages
	// spread across the text spans, matching the real distribution
	// (call sites are spread through handler and library text).
	patchPages := make([]uint64, 0, st.PagesTouched)
	for _, sp := range spans {
		for p := sp.lo; p < sp.hi && len(patchPages) < st.PagesTouched; p += mem.PageSize {
			patchPages = append(patchPages, p)
		}
	}

	baseline := phys.FramesInUse()
	workers := make([]*mmu.AddressSpace, processes)
	for i := range workers {
		workers[i] = master.Fork()
	}
	afterFork := phys.FramesInUse()
	if afterFork != baseline {
		return nil, fmt.Errorf("experiments: fork allocated %d frames", afterFork-baseline)
	}

	// Each worker patches lazily after fork: mprotect + write on each
	// page holding a call site.
	for _, as := range workers {
		for _, page := range patchPages {
			if err := as.Protect(page, 1, mmu.PermRead|mmu.PermWrite|mmu.PermExec); err != nil {
				return nil, err
			}
			if _, err := as.Write(page + 64); err != nil {
				return nil, err
			}
		}
	}
	wasted := phys.FramesInUse() - afterFork

	return &MemorySavings{
		Processes:        processes,
		CallSites:        st.CallSites,
		PatchedPages:     len(patchPages),
		PerProcessKB:     float64(len(patchPages)) * mem.PageSize / 1024,
		TotalWastedMB:    float64(wasted) * mem.PageSize / (1 << 20),
		SharedTextPages:  textPages,
		HardwareWastedMB: 0,
	}, nil
}

// FormatMemorySavings renders the §5.5 analysis.
func FormatMemorySavings(m *MemorySavings) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.5. Memory cost of software call-site patching (prefork Apache)\n")
	fmt.Fprintf(&b, "  worker processes:            %d\n", m.Processes)
	fmt.Fprintf(&b, "  call sites patched:          %d\n", m.CallSites)
	fmt.Fprintf(&b, "  text pages copied per worker: %d (%.1f KiB)\n", m.PatchedPages, m.PerProcessKB)
	fmt.Fprintf(&b, "  total COW waste:             %.2f MiB (software patching)\n", m.TotalWastedMB)
	fmt.Fprintf(&b, "  total COW waste:             %.2f MiB (hardware ABTB)\n", m.HardwareWastedMB)
	fmt.Fprintf(&b, "  shared text pages:           %d (stay shared under the ABTB)\n", m.SharedTextPages)
	return b.String()
}
