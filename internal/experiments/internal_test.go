package experiments

import (
	"testing"

	"repro/internal/stats"
)

func TestValueAtFraction(t *testing.T) {
	cdf := []stats.CDFPoint{
		{Value: 10, Fraction: 0.25},
		{Value: 20, Fraction: 0.50},
		{Value: 30, Fraction: 0.75},
		{Value: 40, Fraction: 1.00},
	}
	tests := []struct {
		frac float64
		want float64
	}{
		{0.1, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.9, 40}, {1.0, 40},
	}
	for _, tt := range tests {
		if got := valueAtFraction(cdf, tt.frac); got != tt.want {
			t.Errorf("valueAtFraction(%.2f) = %v, want %v", tt.frac, got, tt.want)
		}
	}
	if got := valueAtFraction(nil, 0.5); got != 0 {
		t.Errorf("empty CDF = %v", got)
	}
	// Fraction beyond the table clamps to the last value.
	short := []stats.CDFPoint{{Value: 5, Fraction: 0.5}}
	if got := valueAtFraction(short, 0.99); got != 5 {
		t.Errorf("clamp = %v", got)
	}
}

func TestMerged(t *testing.T) {
	a, b := &stats.Sample{}, &stats.Sample{}
	a.AddAll([]float64{1, 2, 3})
	b.AddAll([]float64{10, 20})
	m := merged(map[string]*stats.Sample{"a": a, "b": b})
	if m.N() != 5 {
		t.Errorf("N = %d, want 5", m.N())
	}
	if m.Percentile(100) != 20 || m.Percentile(0) != 1 {
		t.Errorf("range = [%v, %v]", m.Percentile(0), m.Percentile(100))
	}
}

func TestSuiteMeasureClamp(t *testing.T) {
	s := NewSuite(1, 0.001) // absurdly small scale
	if got := s.measure(WorkloadSpec{Measure: 400}); got != 20 {
		t.Errorf("measure = %d, want clamped to 20", got)
	}
	s2 := NewSuite(1, 0) // zero scale defaults to 1
	if got := s2.measure(WorkloadSpec{Measure: 400}); got != 400 {
		t.Errorf("measure = %d, want 400", got)
	}
	if s2.Scale != 1 {
		t.Errorf("Scale = %v", s2.Scale)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	if len(Workloads) != 4 {
		t.Fatalf("workloads = %d", len(Workloads))
	}
	names := map[string]bool{}
	for _, w := range Workloads {
		if w.Gen == nil || w.Warm <= 0 || w.Measure <= 0 {
			t.Errorf("%s: incomplete spec %+v", w.Name, w)
		}
		names[w.Name] = true
	}
	for _, want := range []string{"apache", "firefox", "memcached", "mysql"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
}

func TestFormatFigure5AlignsSizes(t *testing.T) {
	series := []Figure5Series{{
		Workload: "demo",
		Sizes:    Figure5Sizes,
		SkipPct:  make([]float64, len(Figure5Sizes)),
	}}
	out := FormatFigure5(series)
	if out == "" {
		t.Fatal("empty output")
	}
}
