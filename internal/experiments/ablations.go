package experiments

import (
	"fmt"
	"strings"

	"repro/internal/abtb"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/linker"
	"repro/internal/smp"
	"repro/internal/workload"
)

// ablation budgets: smaller than the headline runs, since each design
// point is a full simulation.
const (
	ablationWarm    = 40
	ablationMeasure = 120
)

// pooledWorkload fetches the generated bundle for (name, s.Seed)
// through the runner's artifact pool, generating it at most once per
// suite no matter how many ablations share the workload.  When the
// suite's runner has pooling disabled it falls back to direct
// generation, the historical behaviour.
func (s *Suite) pooledWorkload(name string, gen func(uint64) *workload.Workload) *workload.Workload {
	if p := s.pool.ArtifactPool(); p != nil {
		w, _ := p.Workload(name, gen, s.Seed)
		return w
	}
	return gen(s.Seed)
}

// pooledSystem builds a private System for w under cfg through the
// artifact pool: design points that share linking options (every
// hardware-only sweep, e.g. the seven Bloom sizes of A1) share one
// linked master and receive copy-on-write forks, so the link step
// runs once per distinct link product instead of once per point.
// w must come from pooledWorkload (its Name keys the image cache).
func (s *Suite) pooledSystem(w *workload.Workload, cfg core.Config) (*core.System, error) {
	if p := s.pool.ArtifactPool(); p != nil {
		sys, _, err := p.ImageSystem(w.Name, s.Seed, w, cfg)
		return sys, err
	}
	return w.NewSystem(cfg)
}

// BloomPoint is one Bloom-filter size design point (ablation A1).
type BloomPoint struct {
	Bits           int
	FlushingStores uint64  // stores whose filter hit forced a flush
	Flushes        uint64  // total ABTB clears
	SkipPct        float64 // trampoline calls skipped
}

// AblationBloomSize sweeps the GOT Bloom filter size on Apache.  An
// undersized filter false-positives on ordinary stores and repeatedly
// flushes the ABTB, eroding the skip rate; the paper's ~1Kbit filter
// makes flushes vanishingly rare after startup.
func (s *Suite) AblationBloomSize() ([]BloomPoint, error) {
	w := s.pooledWorkload("apache", workload.Apache)
	var out []BloomPoint
	for _, bits := range []int{512, 1024, 2048, 4096, 8192, 16384, 32768} {
		cfg := core.Enhanced(s.Seed)
		a := abtb.DefaultConfig()
		a.BloomBits = bits
		cfg.Hardware.ABTB = &a
		sys, err := s.pooledSystem(w, cfg)
		if err != nil {
			return nil, err
		}
		d := workload.NewDriver(w, sys, workload.DriverSeed(s.Seed))
		if err := d.Warmup(ablationWarm); err != nil {
			return nil, err
		}
		if _, err := d.Run(ablationMeasure); err != nil {
			return nil, err
		}
		c := sys.Counters()
		skip := 0.0
		if c.TrampCalls > 0 {
			skip = float64(c.TrampSkips) / float64(c.TrampCalls) * 100
		}
		out = append(out, BloomPoint{
			Bits:           bits,
			FlushingStores: sys.CPU().ABTB().FlushingStores(),
			Flushes:        c.ABTBFlushes,
			SkipPct:        skip,
		})
	}
	return out, nil
}

// FormatBloomSweep renders ablation A1.
func FormatBloomSweep(points []BloomPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A1. Bloom filter size vs spurious ABTB flushes (Apache)\n")
	fmt.Fprintf(&b, "%-10s %16s %10s %10s\n", "Bits", "Flushing stores", "Flushes", "Skip")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %16d %10d %9.1f%%\n", p.Bits, p.FlushingStores, p.Flushes, p.SkipPct)
	}
	return b.String()
}

// BindingPoint is one linking-mode design point (ablation A2).
type BindingPoint struct {
	Label     string
	MeanUS    float64
	CyclesPKI float64 // cycles per kilo-instruction (inverse IPC)
	TrampPKI  float64
	VsBasePct float64 // mean latency improvement over base
}

// AblationBindingModes compares lazy, eager, static, patched and
// enhanced on the same workload: the paper's framing is that Enhanced
// delivers static-linking performance while remaining dynamic.
func (s *Suite) AblationBindingModes() ([]BindingPoint, error) {
	w := s.pooledWorkload("apache", workload.Apache)
	cfgs := []core.Config{
		core.Base(s.Seed),
		core.Eager(s.Seed),
		core.Static(s.Seed),
		core.Patched(s.Seed),
		core.Enhanced(s.Seed),
	}
	var out []BindingPoint
	var baseMean float64
	for _, cfg := range cfgs {
		sys, err := s.pooledSystem(w, cfg)
		if err != nil {
			return nil, err
		}
		d := workload.NewDriver(w, sys, workload.DriverSeed(s.Seed))
		if err := d.Warmup(ablationWarm); err != nil {
			return nil, err
		}
		samp, err := d.Run(ablationMeasure)
		if err != nil {
			return nil, err
		}
		mean := merged(samp).Mean()
		if cfg.Label == "base" {
			baseMean = mean
		}
		c := sys.Counters()
		out = append(out, BindingPoint{
			Label:     cfg.Label,
			MeanUS:    mean,
			CyclesPKI: float64(c.Cycles) / float64(c.Instructions) * 1000,
			TrampPKI:  core.PKIOf(c).TrampInstrs,
			VsBasePct: (baseMean - mean) / baseMean * 100,
		})
	}
	return out, nil
}

// FormatBindingModes renders ablation A2.
func FormatBindingModes(points []BindingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A2. Linking modes (Apache; enhanced should approach static)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %10s\n", "Mode", "Mean (us)", "cyc/kinstr", "trampPKI", "vs base")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %12.2f %12.1f %10.2f %+9.2f%%\n",
			p.Label, p.MeanUS, p.CyclesPKI, p.TrampPKI, p.VsBasePct)
	}
	return b.String()
}

// InvalidatePoint compares the Bloom-filtered design with the §3.4
// explicit-invalidate variant (ablation A3).
type InvalidatePoint struct {
	Label        string
	SkipPct      float64
	Flushes      uint64
	StorageBytes int
	MeanUS       float64
}

// AblationExplicitInvalidate runs Apache under both ABTB variants.
func (s *Suite) AblationExplicitInvalidate() ([]InvalidatePoint, error) {
	w := s.pooledWorkload("apache", workload.Apache)
	variants := []struct {
		label string
		cfg   abtb.Config
	}{
		{"bloom", abtb.DefaultConfig()},
		{"explicit", abtb.Config{Entries: 256, Ways: 4, ExplicitInvalidate: true}},
	}
	var out []InvalidatePoint
	for _, v := range variants {
		cfg := core.Enhanced(s.Seed)
		a := v.cfg
		cfg.Hardware.ABTB = &a
		sys, err := s.pooledSystem(w, cfg)
		if err != nil {
			return nil, err
		}
		d := workload.NewDriver(w, sys, workload.DriverSeed(s.Seed))
		if err := d.Warmup(ablationWarm); err != nil {
			return nil, err
		}
		samp, err := d.Run(ablationMeasure)
		if err != nil {
			return nil, err
		}
		c := sys.Counters()
		skip := 0.0
		if c.TrampCalls > 0 {
			skip = float64(c.TrampSkips) / float64(c.TrampCalls) * 100
		}
		out = append(out, InvalidatePoint{
			Label:        v.label,
			SkipPct:      skip,
			Flushes:      c.ABTBFlushes,
			StorageBytes: v.cfg.SizeBytes(),
			MeanUS:       merged(samp).Mean(),
		})
	}
	return out, nil
}

// FormatExplicitInvalidate renders ablation A3.
func FormatExplicitInvalidate(points []InvalidatePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A3. Bloom-filtered vs explicit-invalidate ABTB (Apache)\n")
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %12s\n", "Variant", "Skip", "Flushes", "Storage", "Mean (us)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %7.1f%% %10d %9dB %12.2f\n",
			p.Label, p.SkipPct, p.Flushes, p.StorageBytes, p.MeanUS)
	}
	return b.String()
}

// ContextSwitchPoint is one context-switch policy design point
// (ablation A4).
type ContextSwitchPoint struct {
	Label       string
	SwitchEvery int
	SkipPct     float64
	MeanUS      float64
}

// AblationContextSwitch measures how context-switch frequency affects
// the skip rate with and without ASID tagging (§3.3): the untagged
// ABTB flushes on every switch and must repopulate; the tagged one
// survives.
func (s *Suite) AblationContextSwitch() ([]ContextSwitchPoint, error) {
	w := s.pooledWorkload("memcached", workload.Memcached) // short requests: switches hurt most
	var out []ContextSwitchPoint
	for _, asids := range []bool{false, true} {
		for _, every := range []int{1, 4, 16} {
			cfg := core.Enhanced(s.Seed)
			a := abtb.DefaultConfig()
			a.ASIDs = asids
			cfg.Hardware.ABTB = &a
			sys, err := s.pooledSystem(w, cfg)
			if err != nil {
				return nil, err
			}
			d := workload.NewDriver(w, sys, workload.DriverSeed(s.Seed))
			if err := d.Warmup(ablationWarm); err != nil {
				return nil, err
			}
			// Interleave measurement with simulated context switches:
			// the process is descheduled every `every` requests and
			// other processes run (their ASIDs differ).
			samp := 0.0
			var calls, skips uint64
			n := ablationMeasure
			for i := 0; i < n; i++ {
				if i%every == 0 {
					sys.CPU().ContextSwitch(2) // someone else runs
					sys.CPU().ContextSwitch(1) // we are rescheduled
				}
				res, err := sys.RunOnce(w.Classes[i%len(w.Classes)].Entry)
				if err != nil {
					return nil, err
				}
				samp += core.Micros(res.Cycles)
			}
			c := sys.Counters()
			calls, skips = c.TrampCalls, c.TrampSkips
			skip := 0.0
			if calls > 0 {
				skip = float64(skips) / float64(calls) * 100
			}
			label := "flush"
			if asids {
				label = "asid"
			}
			out = append(out, ContextSwitchPoint{
				Label:       label,
				SwitchEvery: every,
				SkipPct:     skip,
				MeanUS:      samp / float64(n),
			})
		}
	}
	return out, nil
}

// FormatContextSwitch renders ablation A4.
func FormatContextSwitch(points []ContextSwitchPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A4. Context-switch policy (Memcached; switch every N requests)\n")
	fmt.Fprintf(&b, "%-8s %12s %8s %12s\n", "Policy", "Switch every", "Skip", "Mean (us)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %12d %7.1f%% %12.2f\n", p.Label, p.SwitchEvery, p.SkipPct, p.MeanUS)
	}
	return b.String()
}

// ABTBGeometryPoint is one ABTB size run live in the pipeline (a
// cross-check of Figure 5's trace-replay against full simulation).
type ABTBGeometryPoint struct {
	Entries int
	SkipPct float64
	MeanUS  float64
}

// AblationABTBGeometry runs Apache with real ABTBs of increasing size,
// validating the Figure 5 offline replay against the live mechanism.
func (s *Suite) AblationABTBGeometry() ([]ABTBGeometryPoint, error) {
	w := s.pooledWorkload("apache", workload.Apache)
	var out []ABTBGeometryPoint
	for _, entries := range []int{16, 64, 256, 1024} {
		cfg := core.Enhanced(s.Seed)
		a := abtb.DefaultConfig()
		a.Entries = entries
		a.Ways = entries // fully associative at every size, as Figure 5 assumes
		cfg.Hardware.ABTB = &a
		sys, err := s.pooledSystem(w, cfg)
		if err != nil {
			return nil, err
		}
		d := workload.NewDriver(w, sys, workload.DriverSeed(s.Seed))
		if err := d.Warmup(ablationWarm); err != nil {
			return nil, err
		}
		samp, err := d.Run(ablationMeasure)
		if err != nil {
			return nil, err
		}
		c := sys.Counters()
		skip := 0.0
		if c.TrampCalls > 0 {
			skip = float64(c.TrampSkips) / float64(c.TrampCalls) * 100
		}
		out = append(out, ABTBGeometryPoint{
			Entries: entries,
			SkipPct: skip,
			MeanUS:  merged(samp).Mean(),
		})
	}
	return out, nil
}

// FormatABTBGeometry renders the live-geometry sweep.
func FormatABTBGeometry(points []ABTBGeometryPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A5. Live ABTB size sweep (Apache; cross-checks Figure 5)\n")
	fmt.Fprintf(&b, "%-10s %8s %12s\n", "Entries", "Skip", "Mean (us)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %7.1f%% %12.2f\n", p.Entries, p.SkipPct, p.MeanUS)
	}
	return b.String()
}

// PLTStylePoint is one trampoline-flavour design point (ablation A6):
// the paper claims the approach "works on all dynamically linked
// library techniques ... across architectures (e.g., ARM and x86)".
type PLTStylePoint struct {
	Style      string
	Enhanced   bool
	TrampPKI   float64
	SkipPct    float64
	MeanUS     float64
	ImprovePct float64 // vs the same style's base system
}

// AblationPLTStyle runs Memcached with x86-flavoured (one-instruction)
// and ARM-flavoured (three-instruction) trampolines, base vs enhanced.
// ARM's fatter trampolines make the base system pay roughly 3x the
// trampoline instructions, so the ABTB's relative win grows; the ARM
// ABTB needs a 2-instruction pattern window to learn the add-add-ldr
// sequence.
func (s *Suite) AblationPLTStyle() ([]PLTStylePoint, error) {
	w := s.pooledWorkload("memcached", workload.Memcached)
	var out []PLTStylePoint
	for _, style := range []linker.PLTStyle{linker.PLTx86, linker.PLTARM} {
		var baseMean float64
		for _, enhanced := range []bool{false, true} {
			cfg := core.Base(s.Seed)
			cfg.Linking.PLT = style
			if enhanced {
				cfg.Label = "enhanced"
				a := abtb.DefaultConfig()
				if style == linker.PLTARM {
					a.PatternWindow = 2
				}
				hw := cpu.EnhancedConfig()
				hw.Seed = s.Seed
				hw.ABTB = &a
				cfg.Hardware = hw
			}
			sys, err := s.pooledSystem(w, cfg)
			if err != nil {
				return nil, err
			}
			d := workload.NewDriver(w, sys, workload.DriverSeed(s.Seed))
			if err := d.Warmup(ablationWarm); err != nil {
				return nil, err
			}
			samp, err := d.Run(ablationMeasure)
			if err != nil {
				return nil, err
			}
			mean := merged(samp).Mean()
			if !enhanced {
				baseMean = mean
			}
			c := sys.Counters()
			skip := 0.0
			if c.TrampCalls > 0 {
				skip = float64(c.TrampSkips) / float64(c.TrampCalls) * 100
			}
			out = append(out, PLTStylePoint{
				Style:      style.String(),
				Enhanced:   enhanced,
				TrampPKI:   core.PKIOf(c).TrampInstrs,
				SkipPct:    skip,
				MeanUS:     mean,
				ImprovePct: (baseMean - mean) / baseMean * 100,
			})
		}
	}
	return out, nil
}

// FormatPLTStyle renders ablation A6.
func FormatPLTStyle(points []PLTStylePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A6. Trampoline flavour: x86 (1 instr) vs ARM (3 instrs), Memcached\n")
	fmt.Fprintf(&b, "%-6s %-10s %10s %8s %12s %10s\n", "Style", "System", "trampPKI", "Skip", "Mean (us)", "vs base")
	for _, p := range points {
		system := "base"
		if p.Enhanced {
			system = "enhanced"
		}
		fmt.Fprintf(&b, "%-6s %-10s %10.2f %7.1f%% %12.2f %+9.2f%%\n",
			p.Style, system, p.TrampPKI, p.SkipPct, p.MeanUS, p.ImprovePct)
	}
	return b.String()
}

// SMPPoint is one multi-core design point (ablation A7): a threaded
// server on an n-core cluster with a shared L2 and ABTB coherence.
type SMPPoint struct {
	Cores       int
	Enhanced    bool
	MeanUS      float64
	ImprovePct  float64 // vs same-core-count base
	L2MissesPKI float64
}

// AblationSMP scales the threaded Memcached server across core counts,
// base vs enhanced, with per-core ABTBs kept coherent by GOT
// invalidation broadcast (§3.1).
func (s *Suite) AblationSMP() ([]SMPPoint, error) {
	w := s.pooledWorkload("memcached", workload.Memcached)
	var out []SMPPoint
	for _, cores := range []int{1, 2, 4} {
		var baseMean float64
		for _, enhanced := range []bool{false, true} {
			cfg := core.Base(s.Seed)
			if enhanced {
				cfg = core.Enhanced(s.Seed)
			}
			cl, err := smp.New(w, cfg, cores)
			if err != nil {
				return nil, err
			}
			if err := cl.Warmup("handle_GET", ablationWarm*cores); err != nil {
				return nil, err
			}
			samp, err := cl.Serve("handle_GET", ablationMeasure*2)
			if err != nil {
				return nil, err
			}
			mean := samp.Mean()
			if !enhanced {
				baseMean = mean
			}
			c := cl.Counters()
			out = append(out, SMPPoint{
				Cores:       cores,
				Enhanced:    enhanced,
				MeanUS:      mean,
				ImprovePct:  (baseMean - mean) / baseMean * 100,
				L2MissesPKI: float64(c.L2Misses) / float64(c.Instructions) * 1000,
			})
		}
	}
	return out, nil
}

// FormatSMP renders ablation A7.
func FormatSMP(points []SMPPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A7. Multi-core threaded server (Memcached, shared L2, coherent ABTBs)\n")
	fmt.Fprintf(&b, "%-7s %-10s %12s %10s %12s\n", "Cores", "System", "Mean (us)", "vs base", "L2 miss PKI")
	for _, p := range points {
		system := "base"
		if p.Enhanced {
			system = "enhanced"
		}
		fmt.Fprintf(&b, "%-7d %-10s %12.2f %+9.2f%% %12.3f\n",
			p.Cores, system, p.MeanUS, p.ImprovePct, p.L2MissesPKI)
	}
	return b.String()
}
