package experiments

import (
	"strings"
	"testing"
)

// suite is shared across tests: experiments cache their workload runs,
// so the whole file costs two simulations per workload.
var shared = NewSuite(1, 0.5)

func TestTable2ReproducesOrdering(t *testing.T) {
	rows, err := shared.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	pki := map[string]float64{}
	for _, r := range rows {
		pki[r.Workload] = r.PKI
		if r.PKI <= 0 {
			t.Errorf("%s: PKI = %v", r.Workload, r.PKI)
		}
		// Within 3x of the paper's value.
		if r.PKI < r.PaperPKI/3 || r.PKI > r.PaperPKI*3 {
			t.Errorf("%s: PKI %.2f not within 3x of paper %.2f", r.Workload, r.PKI, r.PaperPKI)
		}
	}
	if !(pki["apache"] > pki["mysql"] && pki["mysql"] > pki["memcached"] && pki["memcached"] > pki["firefox"]) {
		t.Errorf("Table 2 ordering: %v", pki)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "apache") || !strings.Contains(out, "12.23") {
		t.Errorf("FormatTable2 output malformed:\n%s", out)
	}
}

func TestTable3ReproducesOrdering(t *testing.T) {
	rows, err := shared.Table3()
	if err != nil {
		t.Fatal(err)
	}
	n := map[string]int{}
	for _, r := range rows {
		n[r.Workload] = r.Distinct
	}
	if !(n["firefox"] > n["mysql"] && n["mysql"] > n["apache"] && n["apache"] > n["memcached"]) {
		t.Errorf("Table 3 ordering: %v", n)
	}
	// Memcached's famously tiny surface.
	if n["memcached"] > 40 {
		t.Errorf("memcached distinct = %d, want ~33", n["memcached"])
	}
	if !strings.Contains(FormatTable3(rows), "2457") {
		t.Error("FormatTable3 missing paper column")
	}
}

func TestTable4EnhancedRelievesPressure(t *testing.T) {
	rows, err := shared.Table4()
	if err != nil {
		t.Fatal(err)
	}
	var apache *Table4Row
	for i := range rows {
		r := &rows[i]
		// Universal claims: trampoline-heavy structures improve.
		if r.Enhanced.L1IMisses > r.Base.L1IMisses*1.02 {
			t.Errorf("%s: I$ misses rose %v -> %v", r.Workload, r.Base.L1IMisses, r.Enhanced.L1IMisses)
		}
		// Mispredicts must not rise materially; workloads with
		// trampoline-induced BTB pressure (apache, mysql) show the
		// paper's drop, while firefox sits at parity (its branch
		// working set fits the BTB, so there is no pressure for the
		// ABTB to relieve; the paper's firefox delta was 1.4%).
		if r.Enhanced.Mispredicts > r.Base.Mispredicts*1.02+0.1 {
			t.Errorf("%s: mispredicts rose %v -> %v", r.Workload, r.Base.Mispredicts, r.Enhanced.Mispredicts)
		}
		if r.Workload == "apache" {
			apache = r
		}
	}
	if apache == nil {
		t.Fatal("no apache row")
	}
	// Apache has the largest instruction-cache pressure of the four
	// workloads (the paper's 109 PKI base rate) and a clear
	// improvement under the ABTB.
	for _, r := range rows {
		if r.Workload == "apache" {
			continue
		}
		if apache.Base.L1IMisses < r.Base.L1IMisses {
			t.Errorf("apache base I$ %.2f < %s %.2f", apache.Base.L1IMisses, r.Workload, r.Base.L1IMisses)
		}
	}
	if apache.Base.L1IMisses-apache.Enhanced.L1IMisses < 0.2 {
		t.Errorf("apache I$ delta %.2f, want a clear improvement",
			apache.Base.L1IMisses-apache.Enhanced.L1IMisses)
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "I-$ Misses") || !strings.Contains(out, "Branch Mispredictions") {
		t.Errorf("FormatTable4 malformed:\n%s", out)
	}
}

func TestSpeedupsPositive(t *testing.T) {
	rows, err := shared.Speedups()
	if err != nil {
		t.Fatal(err)
	}
	imp := map[string]float64{}
	for _, r := range rows {
		imp[r.Workload] = r.ImprovePct
		if r.ImprovePct < -0.5 {
			t.Errorf("%s: enhanced slower by %.2f%%", r.Workload, -r.ImprovePct)
		}
	}
	// Apache gains the most (paper: up to 4%); Firefox the least
	// (paper: ~1-3% on scores).
	if imp["apache"] < 0.5 {
		t.Errorf("apache improvement %.2f%%, want >= 0.5%%", imp["apache"])
	}
	if imp["apache"] < imp["firefox"] {
		t.Errorf("apache %.2f%% < firefox %.2f%%", imp["apache"], imp["firefox"])
	}
	if !strings.Contains(FormatSpeedups(rows), "apache") {
		t.Error("FormatSpeedups malformed")
	}
}

func TestFigure4Shapes(t *testing.T) {
	series, err := shared.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	// Steepness of the rank/frequency curve: the paper reads "steep
	// cutoffs" for Apache and Memcached (a plateau of per-request
	// calls, then a cliff into the rare tail) versus a "much less
	// steep" Firefox curve.  Quantify as the count at the median rank
	// divided by the count at the 95th-percentile rank: a cliff
	// between them produces a large ratio.
	steep := map[string]float64{}
	topShare := map[string]float64{}
	for _, s := range series {
		if len(s.Counts) < 20 {
			if s.Workload != "memcached" {
				t.Fatalf("%s: only %d trampolines", s.Workload, len(s.Counts))
			}
		}
		var total, top10 uint64
		for i, c := range s.Counts {
			total += c
			if i < 10 {
				top10 += c
			}
		}
		if total == 0 {
			t.Fatalf("%s: empty series", s.Workload)
		}
		topShare[s.Workload] = float64(top10) / float64(total)
		mid := s.Counts[len(s.Counts)/2]
		tail := s.Counts[len(s.Counts)*95/100]
		if tail == 0 {
			tail = 1
		}
		steep[s.Workload] = float64(mid) / float64(tail)
	}
	// Memcached: "the majority of library calls are made to fewer
	// than 10 library functions".
	if topShare["memcached"] < 0.5 {
		t.Errorf("memcached top-10 share = %.2f, want > 0.5", topShare["memcached"])
	}
	// Apache cuts off steeply; Firefox does not.  (Memcached's 32
	// trampolines make a rank-ratio steepness metric meaningless at
	// its scale; its "steep cutoff" is captured by the top-10 share
	// assertion above.)
	if steep["apache"] <= steep["firefox"] {
		t.Errorf("apache steepness %.1f <= firefox %.1f", steep["apache"], steep["firefox"])
	}
	if !strings.Contains(FormatFigure4(series), "Rank") {
		t.Error("FormatFigure4 malformed")
	}
}

func TestFigure5WorkingSets(t *testing.T) {
	series, err := shared.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		// Monotone non-decreasing in table size.
		for i := 1; i < len(s.SkipPct); i++ {
			if s.SkipPct[i] < s.SkipPct[i-1]-1e-9 {
				t.Errorf("%s: skip curve decreases at %d entries", s.Workload, s.Sizes[i])
			}
		}
		at := func(entries int) float64 {
			for i, n := range s.Sizes {
				if n == entries {
					return s.SkipPct[i]
				}
			}
			t.Fatalf("size %d not swept", entries)
			return 0
		}
		// Paper: 16 entries skip > 75% in any workload; 256 entries
		// skip nearly all actively used trampolines.  Firefox, with
		// ~2500 distinct trampolines and the shallowest curve, keeps
		// a few percent of calls in its rotating tail at 256 entries
		// and converges by 1024.
		if at(16) < 75 {
			t.Errorf("%s: 16-entry ABTB skips %.1f%%, want > 75%%", s.Workload, at(16))
		}
		want256 := 90.0
		if s.Workload == "firefox" {
			want256 = 85.0
			if at(1024) < 90 {
				t.Errorf("firefox: 1024-entry ABTB skips %.1f%%, want > 90%%", at(1024))
			}
		}
		if at(256) < want256 {
			t.Errorf("%s: 256-entry ABTB skips %.1f%%, want > %.0f%%", s.Workload, at(256), want256)
		}
	}
	if !strings.Contains(FormatFigure5(series), "ABTB") {
		t.Error("FormatFigure5 malformed")
	}
}

func TestFigure6ApacheLatencyShift(t *testing.T) {
	pairs, err := shared.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 {
		t.Fatalf("classes = %d, want 6", len(pairs))
	}
	improved := 0
	for _, p := range pairs {
		if len(p.Base) == 0 || len(p.Enhanced) == 0 {
			t.Fatalf("%s: empty CDF", p.Class)
		}
		if p.EnhMeanUS < p.BaseMeanUS {
			improved++
		}
	}
	if improved < 5 {
		t.Errorf("only %d/6 Apache classes improved", improved)
	}
	out := FormatCDFPairs("Figure 6", pairs)
	if !strings.Contains(out, "Index") {
		t.Error("FormatCDFPairs malformed")
	}
}

func TestTable5FirefoxScoresImprove(t *testing.T) {
	rows, err := shared.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("categories = %d", len(rows))
	}
	for _, r := range rows {
		if r.Enhanced < r.Base*0.995 {
			t.Errorf("%s: score regressed %.1f -> %.1f", r.Category, r.Base, r.Enhanced)
		}
	}
	if !strings.Contains(FormatTable5(rows), "Rendering") {
		t.Error("FormatTable5 malformed")
	}
}

func TestFigure7MemcachedPeakShiftsLeft(t *testing.T) {
	hists, err := shared.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(hists) != 2 {
		t.Fatalf("classes = %d", len(hists))
	}
	for _, h := range hists {
		if h.EnhPeakUS > h.BasePeakUS {
			t.Errorf("%s: peak moved right: %.2f -> %.2f", h.Class, h.BasePeakUS, h.EnhPeakUS)
		}
	}
	if !strings.Contains(FormatFigure7(hists), "GET") {
		t.Error("FormatFigure7 malformed")
	}
}

func TestTable6MySQLPercentiles(t *testing.T) {
	rows, err := shared.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("percentile rows = %d", len(rows))
	}
	better := 0
	for _, r := range rows {
		if r.NewOrderEnh <= r.NewOrderBase {
			better++
		}
		if r.PaymentEnh <= r.PaymentBase {
			better++
		}
	}
	if better < 6 {
		t.Errorf("only %d/8 percentile cells improved", better)
	}
	if !strings.Contains(FormatTable6(rows), "NewOrder") {
		t.Error("FormatTable6 malformed")
	}
}

func TestFigure8MySQLCDF(t *testing.T) {
	pairs, err := shared.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("classes = %d", len(pairs))
	}
	for _, p := range pairs {
		if p.EnhMeanUS >= p.BaseMeanUS*1.005 {
			t.Errorf("%s: mean regressed %.2f -> %.2f", p.Class, p.BaseMeanUS, p.EnhMeanUS)
		}
	}
}

func TestMemorySavings(t *testing.T) {
	m, err := shared.MemorySavingsExperiment(100)
	if err != nil {
		t.Fatal(err)
	}
	if m.CallSites == 0 || m.PatchedPages == 0 {
		t.Fatalf("no patching recorded: %+v", m)
	}
	// Every worker copies exactly the patched pages; the hardware
	// approach copies nothing.
	wantMB := float64(m.PatchedPages*100*4096) / (1 << 20)
	if m.TotalWastedMB < wantMB*0.99 || m.TotalWastedMB > wantMB*1.01 {
		t.Errorf("TotalWastedMB = %.2f, want ~%.2f", m.TotalWastedMB, wantMB)
	}
	if m.HardwareWastedMB != 0 {
		t.Error("hardware approach must waste nothing")
	}
	if !strings.Contains(FormatMemorySavings(m), "prefork") {
		t.Error("FormatMemorySavings malformed")
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := NewSuite(7, 0.1)
	b := NewSuite(7, 0.1)
	ra, err := a.Table2()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("row %d: %+v != %+v", i, ra[i], rb[i])
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := shared.run("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
