package experiments

import (
	"sync"
	"testing"

	"repro/internal/runner"
)

// TestSuiteParallelMatchesSequential renders the same artefacts from a
// single-worker (sequential) suite and a multi-worker suite and
// requires byte-identical output: fanning the evaluation out across
// the pool must not perturb any printed number.
func TestSuiteParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full workload matrix twice")
	}
	render := func(s *Suite) string {
		sp, err := s.Speedups()
		if err != nil {
			t.Fatal(err)
		}
		t2, err := s.Table2()
		if err != nil {
			t.Fatal(err)
		}
		t3, err := s.Table3()
		if err != nil {
			t.Fatal(err)
		}
		return FormatSpeedups(sp) + FormatTable2(t2) + FormatTable3(t3)
	}

	seq := NewSuiteWithRunner(1, 0.05, runner.New(runner.Options{Workers: 1}))
	defer seq.Runner().Close()
	par := NewSuiteWithRunner(1, 0.05, runner.New(runner.Options{Workers: 8}))
	defer par.Runner().Close()

	seqOut := render(seq)
	parOut := render(par)
	if seqOut != parOut {
		t.Errorf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}
}

// TestSuiteConcurrentUse hammers one Suite from many goroutines (the
// scenario the old unguarded runs map raced on) and checks that the
// runner deduplicated every pair: four workloads, two configs, eight
// simulations total, no matter how many callers asked.
func TestSuiteConcurrentUse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full workload matrix")
	}
	s := NewSuiteWithRunner(1, 0.05, runner.New(runner.Options{Workers: 8}))
	defer s.Runner().Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			if _, err := s.Table2(); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := s.Speedups(); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := s.Figure4(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Runner().Stats()
	if st.CacheMisses != 8 {
		t.Errorf("cache misses = %d, want 8 (one simulation per workload/config)", st.CacheMisses)
	}
	if st.Completed != 8 || st.Failed != 0 {
		t.Errorf("completed=%d failed=%d, want 8/0", st.Completed, st.Failed)
	}
}
