package trace

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 1)
	f.add(7, 2)
	if got := f.sum(2); got != 0 {
		t.Errorf("sum(2) = %d", got)
	}
	if got := f.sum(3); got != 1 {
		t.Errorf("sum(3) = %d", got)
	}
	if got := f.sum(10); got != 3 {
		t.Errorf("sum(10) = %d", got)
	}
	f.add(3, -1)
	if got := f.sum(10); got != 2 {
		t.Errorf("after removal sum(10) = %d", got)
	}
}

func TestStackDistancesSimple(t *testing.T) {
	r := NewRecorder(0)
	// Stream: A B A  -> A cold, B cold, A at distance 2 (B between).
	r.Record(1)
	r.Record(2)
	r.Record(1)
	dist, cold := r.StackDistances()
	if cold != 2 {
		t.Errorf("cold = %d, want 2", cold)
	}
	if dist[2] != 1 {
		t.Errorf("dist[2] = %d, want 1", dist[2])
	}
	// Immediate repeat: distance 1.
	r2 := NewRecorder(0)
	r2.Record(5)
	r2.Record(5)
	d2, c2 := r2.StackDistances()
	if c2 != 1 || d2[1] != 1 {
		t.Errorf("repeat: dist=%v cold=%d", d2, c2)
	}
}

func TestStackDistancesEmpty(t *testing.T) {
	r := NewRecorder(0)
	dist, cold := r.StackDistances()
	if dist != nil || cold != 0 {
		t.Error("empty recorder produced distances")
	}
	if got := r.SkipCurveFromDistances([]int{4}); got[0] != 0 {
		t.Error("empty curve nonzero")
	}
	if r.WorkingSet(0.9) != 0 {
		t.Error("empty working set nonzero")
	}
}

// The central equivalence: the analytic curve from one stack-distance
// pass must match the explicit LRU replay at every size.
func TestSkipCurveFromDistancesMatchesReplay(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 8, 16, 32, 64, 128}
	check := func(seed uint64, keys int, accesses int) {
		rng := rand.New(rand.NewPCG(seed, 0))
		r := NewRecorder(0)
		for i := 0; i < accesses; i++ {
			// Mix of zipf-ish hot keys and bursts.
			k := uint64(rng.ExpFloat64() * float64(keys) / 4)
			reps := 1 + rng.IntN(4)
			for j := 0; j < reps; j++ {
				r.Record(k)
			}
		}
		replay := r.SkipCurve(sizes)
		analytic := r.SkipCurveFromDistances(sizes)
		for i := range sizes {
			if math.Abs(replay[i]-analytic[i]) > 1e-12 {
				t.Fatalf("seed %d size %d: replay %.6f != analytic %.6f",
					seed, sizes[i], replay[i], analytic[i])
			}
		}
	}
	for seed := uint64(0); seed < 8; seed++ {
		check(seed, 50, 2000)
	}
	check(99, 5, 100)
	check(100, 300, 5000)
}

func TestSkipCurveEquivalenceProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder(0)
		for _, k := range raw {
			r.Record(uint64(k % 16))
		}
		sizes := []int{1, 2, 4, 8, 16, 32}
		a := r.SkipCurve(sizes)
		b := r.SkipCurveFromDistances(sizes)
		for i := range sizes {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSet(t *testing.T) {
	r := NewRecorder(0)
	// 4 keys round-robin in bursts of 3: hits are mostly distance 1,
	// with one distance-4 hit per rotation.
	for round := 0; round < 100; round++ {
		for k := uint64(0); k < 4; k++ {
			r.Record(k)
			r.Record(k)
			r.Record(k)
		}
	}
	// Two thirds of hits (the in-burst repeats) need only 1 entry.
	if ws := r.WorkingSet(0.6); ws != 1 {
		t.Errorf("WorkingSet(0.6) = %d, want 1", ws)
	}
	// Capturing everything needs the full rotation of 4.
	if ws := r.WorkingSet(1.0); ws != 4 {
		t.Errorf("WorkingSet(1.0) = %d, want 4", ws)
	}
}
