package trace

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/linker"
	"repro/internal/objfile"
)

func TestRecorderCounts(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 5; i++ {
		r.Record(100)
	}
	r.Record(200)
	if r.Total() != 6 {
		t.Errorf("Total = %d, want 6", r.Total())
	}
	if r.Distinct() != 2 {
		t.Errorf("Distinct = %d, want 2", r.Distinct())
	}
	ranked := r.Ranked()
	if len(ranked) != 2 || ranked[0].Slot != 100 || ranked[0].Count != 5 {
		t.Errorf("Ranked = %v", ranked)
	}
	if ranked[1].Count != 1 {
		t.Errorf("Ranked[1] = %v", ranked[1])
	}
}

func TestRankedDescending(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		r := NewRecorder(0)
		for i := 0; i < 500; i++ {
			r.Record(rng.Uint64() % 20)
		}
		ranked := r.Ranked()
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Count > ranked[i-1].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTruncation(t *testing.T) {
	r := NewRecorder(3)
	for i := uint64(0); i < 10; i++ {
		r.Record(i)
	}
	if !r.Truncated() {
		t.Error("not truncated")
	}
	if r.Total() != 10 || r.Distinct() != 10 {
		t.Error("freq counting must be exact despite truncation")
	}
}

func TestSkipRatioSmallWorkingSet(t *testing.T) {
	r := NewRecorder(0)
	// 4 trampolines round-robin, 100 rounds.
	for round := 0; round < 100; round++ {
		for s := uint64(0); s < 4; s++ {
			r.Record(s)
		}
	}
	// Size >= 4: everything but the 4 cold misses hits.
	want := float64(400-4) / 400
	if got := r.SkipRatio(4); got != want {
		t.Errorf("SkipRatio(4) = %v, want %v", got, want)
	}
	if got := r.SkipRatio(1000); got != want {
		t.Errorf("SkipRatio(1000) = %v, want %v", got, want)
	}
	// Size 3 with a cyclic pattern of 4: LRU always evicts the next
	// needed entry — zero hits.
	if got := r.SkipRatio(3); got != 0 {
		t.Errorf("SkipRatio(3) = %v, want 0 (LRU worst case)", got)
	}
	if got := r.SkipRatio(0); got != 0 {
		t.Errorf("SkipRatio(0) = %v", got)
	}
}

func TestSkipCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	r := NewRecorder(0)
	for i := 0; i < 20000; i++ {
		// Zipf-ish: favour low slots.
		s := uint64(rng.ExpFloat64() * 30)
		r.Record(s)
	}
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128}
	curve := r.SkipCurve(sizes)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Errorf("skip curve not monotone at %d: %v < %v", sizes[i], curve[i], curve[i-1])
		}
	}
	if curve[len(curve)-1] <= 0.9 {
		t.Errorf("large-table skip ratio = %v, want > 0.9", curve[len(curve)-1])
	}
}

func TestLRUBasics(t *testing.T) {
	l := newLRU(2)
	if l.touch(1) {
		t.Error("cold touch hit")
	}
	if !l.touch(1) {
		t.Error("warm touch missed")
	}
	l.touch(2)
	l.touch(3) // evicts 1 (LRU after the refresh order 1,2)
	if l.touch(1) {
		t.Error("evicted key hit")
	}
	// Now cache = {3, 1} (2 was LRU and evicted by reinserting 1).
	if !l.touch(3) {
		t.Error("key 3 lost")
	}
}

func TestAttachEndToEnd(t *testing.T) {
	app := objfile.New("app")
	m := app.NewFunc("main")
	lib := objfile.New("lib")
	for i := 0; i < 3; i++ {
		name := "f" + string(rune('0'+i))
		lib.NewFunc(name).ALU(1).Ret()
		m.Call(name)
	}
	m.Halt()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: linker.BindLazy})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(im, cpu.DefaultConfig())
	r := NewRecorder(0)
	r.Attach(c)
	for i := 0; i < 5; i++ {
		if _, err := c.RunSymbol("main", 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.Total() != 15 {
		t.Errorf("Total = %d, want 15", r.Total())
	}
	if r.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", r.Distinct())
	}
	// Steady state: each trampoline hits after its first call.
	if got := r.SkipRatio(16); got != float64(15-3)/15 {
		t.Errorf("SkipRatio = %v", got)
	}
}
