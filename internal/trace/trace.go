// Package trace is the simulator's counterpart of the paper's pintool
// (§4.3): it records the stream of library-function calls (by PLT
// trampoline address), aggregates per-trampoline frequencies, and
// replays the stream through idealised ABTB models of varying size.
//
// Three artefacts come from here: Table 3 (distinct trampolines),
// Figure 4 (trampoline frequency vs. rank), and Figure 5 (fraction of
// trampolines skippable vs. ABTB size, the working-set analysis).
package trace

import (
	"sort"

	"repro/internal/cpu"
)

// Recorder accumulates the trampoline call stream of one CPU.
type Recorder struct {
	maxEvents int
	seq       []uint64
	truncated bool
	freq      map[uint64]uint64
	total     uint64
}

// NewRecorder returns a recorder keeping at most maxEvents sequence
// entries (0 means a 4M default).  Frequency counts are always exact
// regardless of sequence truncation.
func NewRecorder(maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = 4 << 20
	}
	return &Recorder{
		maxEvents: maxEvents,
		freq:      make(map[uint64]uint64),
	}
}

// Attach hooks the recorder into the CPU's library-call trace point.
func (r *Recorder) Attach(c *cpu.CPU) {
	c.TraceLibCall = r.Record
}

// Record logs one library call through the trampoline at slot.
func (r *Recorder) Record(slot uint64) {
	r.total++
	r.freq[slot]++
	if len(r.seq) < r.maxEvents {
		r.seq = append(r.seq, slot)
	} else {
		r.truncated = true
	}
}

// Total returns the number of library calls recorded.
func (r *Recorder) Total() uint64 { return r.total }

// Distinct returns the number of distinct trampolines seen (Table 3).
func (r *Recorder) Distinct() int { return len(r.freq) }

// Truncated reports whether the sequence buffer overflowed.
func (r *Recorder) Truncated() bool { return r.truncated }

// TrampCount is one trampoline's call count.
type TrampCount struct {
	Slot  uint64
	Count uint64
}

// Ranked returns per-trampoline counts sorted by descending count
// (Figure 4's x-axis is the rank in this order).
func (r *Recorder) Ranked() []TrampCount {
	out := make([]TrampCount, 0, len(r.freq))
	for s, c := range r.freq {
		out = append(out, TrampCount{Slot: s, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// SkipRatio replays the recorded call stream through an idealised
// fully-associative, LRU-replaced ABTB with the given entry count and
// returns the fraction of calls that would skip their trampoline (hit
// the table).  The first call to each trampoline always misses
// (nothing is mapped yet), matching the hardware's behaviour after the
// initial resolution settles.
func (r *Recorder) SkipRatio(entries int) float64 {
	if entries <= 0 || len(r.seq) == 0 {
		return 0
	}
	lru := newLRU(entries)
	hits := 0
	for _, s := range r.seq {
		if lru.touch(s) {
			hits++
		}
	}
	return float64(hits) / float64(len(r.seq))
}

// SkipCurve evaluates SkipRatio at each size, producing Figure 5's
// series for one workload.
func (r *Recorder) SkipCurve(sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		out[i] = r.SkipRatio(n)
	}
	return out
}

// lru is a fixed-capacity LRU set over uint64 keys with O(1) touch.
type lru struct {
	cap  int
	m    map[uint64]*node
	head *node // most recent
	tail *node // least recent
}

type node struct {
	key        uint64
	prev, next *node
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, m: make(map[uint64]*node, capacity)}
}

// touch inserts or refreshes key, returning whether it was present.
func (l *lru) touch(key uint64) bool {
	if n, ok := l.m[key]; ok {
		l.moveToFront(n)
		return true
	}
	n := &node{key: key}
	l.m[key] = n
	l.pushFront(n)
	if len(l.m) > l.cap {
		evict := l.tail
		l.unlink(evict)
		delete(l.m, evict.key)
	}
	return false
}

func (l *lru) pushFront(n *node) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *lru) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *lru) moveToFront(n *node) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}
