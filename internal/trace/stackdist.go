package trace

// LRU stack-distance analysis (Mattson et al.): for each access in the
// trampoline stream, the stack distance is the number of *distinct*
// trampolines touched since the previous access to the same one.  An
// access hits a fully-associative LRU table of N entries exactly when
// its stack distance is <= N, so one pass over the trace yields the
// entire Figure 5 curve, and the curve's knees are the "ABTB working
// sets" the paper reads out of the figure (§5.3).
//
// The classic O(N log N) algorithm: keep the last-access time of every
// key and a Fenwick tree over timestamps marking which timestamps are
// the *most recent* access of some key; the stack distance of an
// access is the count of marked timestamps after the key's previous
// access.

// fenwick is a binary indexed tree over [1, n] supporting point update
// and prefix sum.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int, n+1)}
}

// add adds delta at position i (1-based).
func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [1, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// StackDistances returns the histogram of LRU stack distances of the
// recorded trampoline stream: dist[d] is the number of accesses at
// stack distance d (d >= 1), and cold is the number of first-ever
// accesses (infinite distance).  The histogram is truncated at the
// number of distinct trampolines, the largest possible distance.
func (r *Recorder) StackDistances() (dist []uint64, cold uint64) {
	n := len(r.seq)
	if n == 0 {
		return nil, 0
	}
	dist = make([]uint64, r.Distinct()+1)
	last := make(map[uint64]int, r.Distinct())
	ft := newFenwick(n)
	for t, key := range r.seq {
		if prev, seen := last[key]; seen {
			// Distinct keys accessed strictly after prev: marked
			// timestamps in (prev+1, t] using 1-based positions.
			d := ft.sum(t) - ft.sum(prev+1)
			// The key itself sits at distance d+1 in the LRU stack.
			d++
			if d >= len(dist) {
				d = len(dist) - 1
			}
			dist[d]++
			ft.add(prev+1, -1)
		} else {
			cold++
		}
		last[key] = t
		ft.add(t+1, 1)
	}
	return dist, cold
}

// SkipCurveFromDistances computes SkipCurve analytically from one
// stack-distance pass: an access hits an N-entry LRU table iff its
// stack distance is <= N.  Equivalent to (and validated against)
// SkipCurve's explicit replay, but one pass serves every size.
func (r *Recorder) SkipCurveFromDistances(sizes []int) []float64 {
	if len(r.seq) == 0 {
		out := make([]float64, len(sizes))
		return out
	}
	dist, _ := r.StackDistances()
	// Cumulative hits by table size.
	cum := make([]uint64, len(dist))
	var running uint64
	for d := 1; d < len(dist); d++ {
		running += dist[d]
		cum[d] = running
	}
	out := make([]float64, len(sizes))
	total := float64(len(r.seq))
	for i, n := range sizes {
		if n <= 0 {
			continue
		}
		if n >= len(cum) {
			n = len(cum) - 1
		}
		out[i] = float64(cum[n]) / total
	}
	return out
}

// WorkingSet returns the smallest fully-associative table size whose
// skip ratio reaches frac of the skip ratio of an unbounded table —
// the paper's "ABTB working set" reading of Figure 5's knees.
func (r *Recorder) WorkingSet(frac float64) int {
	if len(r.seq) == 0 {
		return 0
	}
	dist, _ := r.StackDistances()
	var total uint64
	for d := 1; d < len(dist); d++ {
		total += dist[d]
	}
	if total == 0 {
		return 0
	}
	target := uint64(frac * float64(total))
	var running uint64
	for d := 1; d < len(dist); d++ {
		running += dist[d]
		if running >= target {
			return d
		}
	}
	return len(dist) - 1
}
