package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Disable("never.armed") // ensure clean even under make-faults env
	if err := Fire("never.armed"); err != nil {
		t.Fatalf("Fire on unarmed point = %v, want nil", err)
	}
	if Hits("never.armed") != 0 {
		t.Error("unarmed point recorded hits")
	}
}

func TestErrorModeAndCounters(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p.err", PointConfig{Mode: Error, Prob: 1})
	err := Fire("p.err")
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != "p.err" {
		t.Fatalf("Fire = %v, want *InjectedError{p.err}", err)
	}
	if !inj.Transient() {
		t.Error("injected error not transient")
	}
	if Hits("p.err") != 1 || Injections("p.err") != 1 {
		t.Errorf("hits=%d injections=%d, want 1/1", Hits("p.err"), Injections("p.err"))
	}
}

func TestCountCapsInjections(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p.capped", PointConfig{Mode: Error, Prob: 1, Count: 2})
	var failed int
	for i := 0; i < 5; i++ {
		if Fire("p.capped") != nil {
			failed++
		}
	}
	if failed != 2 {
		t.Errorf("injected %d times, want 2 (Count cap)", failed)
	}
	if Hits("p.capped") != 5 || Injections("p.capped") != 2 {
		t.Errorf("hits=%d injections=%d, want 5/2", Hits("p.capped"), Injections("p.capped"))
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	schedule := func(seed uint64) []bool {
		Seed(seed)
		Enable("p.prob", PointConfig{Mode: Error, Prob: 0.3})
		out := make([]bool, 40)
		for i := range out {
			out[i] = Fire("p.prob") != nil
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at Fire %d", i)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 40-shot schedule")
	}
	// A 0.3 probability should inject some but not all of 40 shots.
	n := 0
	for _, hit := range a {
		if hit {
			n++
		}
	}
	if n == 0 || n == 40 {
		t.Errorf("prob 0.3 injected %d/40", n)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p.panic", PointConfig{Mode: Panic, Prob: 1})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic injected")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "p.panic") {
			t.Errorf("panic value = %v, want message naming the point", v)
		}
	}()
	_ = Fire("p.panic")
}

func TestDelayMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p.delay", PointConfig{Mode: Delay, Prob: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Fire("p.delay"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("delayed %v, want >= 30ms", d)
	}
	// A cancelled context cuts the delay short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := FireCtx(ctx, "p.delay"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled delay = %v, want context.Canceled", err)
	}
}

func TestHangModeUnblocksOnContextAndReset(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p.hang", PointConfig{Mode: Hang, Prob: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := FireCtx(ctx, "p.hang"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang under deadline = %v, want DeadlineExceeded", err)
	}

	// Reset releases a hang without a context deadline.
	done := make(chan error, 1)
	go func() { done <- Fire("p.hang") }()
	time.Sleep(10 * time.Millisecond)
	Reset()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("hang released by Reset = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Reset did not release the hang")
	}
}

func TestParseSpec(t *testing.T) {
	cfgs, err := ParseSpec("runner.execute=error:0.02, dlsimd.submit=delay:0.05:2ms")
	if err != nil {
		t.Fatal(err)
	}
	if c := cfgs["runner.execute"]; c.Mode != Error || c.Prob != 0.02 {
		t.Errorf("runner.execute = %+v", c)
	}
	if c := cfgs["dlsimd.submit"]; c.Mode != Delay || c.Prob != 0.05 || c.Delay != 2*time.Millisecond {
		t.Errorf("dlsimd.submit = %+v", c)
	}
	for _, bad := range []string{
		"noequals", "p=", "p=warp:0.5", "p=error:1.5", "p=error:x", "p=delay:0.5:zzz",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) = nil error", bad)
		}
	}
}

// BenchmarkFireDisabled measures the compiled-in-but-disabled hot-path
// cost of an injection point (BENCH_fault.json).
func BenchmarkFireDisabled(b *testing.B) {
	Reset()
	b.Cleanup(Reset)
	Disable("bench.point")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Fire("bench.point"); err != nil {
			b.Fatal(err)
		}
	}
}
