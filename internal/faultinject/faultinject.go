// Package faultinject is a deterministic fault-injection framework
// for robustness testing.
//
// Code under test declares named *injection points* on its hot paths
// by calling Fire (or FireCtx where a context is available).  When the
// framework is disabled — the default — a point is a single atomic
// load, so shipping the points compiled-in is effectively free (see
// BenchmarkFireDisabled and BENCH_fault.json).  When a point is armed,
// Fire rolls a seeded RNG against the point's probability and, on a
// hit, injects the configured fault:
//
//	Error — return an *InjectedError (classified transient, so a
//	        retry-capable caller recovers)
//	Panic — panic with a recognisable message (exercises worker
//	        panic isolation)
//	Delay — sleep for the configured duration, then proceed
//	Hang  — block until the context is cancelled or the registry is
//	        reset (exercises timeouts and drain deadlines)
//
// Points are armed either from test code (Enable/Disable/Reset) or
// from the environment, which is how `make faults` runs the whole
// test suite under low-probability injection:
//
//	DLSIM_FAULTS="runner.execute=error:0.02,dlsimd.submit=delay:0.05:2ms"
//	DLSIM_FAULT_SEED=42
//
// The spec grammar is point=mode:prob[:delay], comma-separated.  All
// randomness comes from one seeded PCG stream, so a given seed
// reproduces the same injection schedule for the same sequence of
// Fire calls.  Per-point hit and injection counters let tests assert
// exactly how many faults were delivered.
package faultinject

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed point injects.
type Mode string

// Injection modes.
const (
	Error Mode = "error"
	Panic Mode = "panic"
	Delay Mode = "delay"
	Hang  Mode = "hang"
)

// InjectedError is the error returned by a point armed in Error mode.
// It reports itself transient, so retry policies that classify with
// IsTransient-style checks will retry it.
type InjectedError struct {
	// Point is the injection-point name that produced the error.
	Point string
}

func (e *InjectedError) Error() string {
	return "faultinject: injected error at " + e.Point
}

// Transient marks the error as retryable (see runner.IsTransient).
func (e *InjectedError) Transient() bool { return true }

// PointConfig arms one injection point.
type PointConfig struct {
	// Mode is the fault to inject on a probability hit.
	Mode Mode

	// Prob is the per-Fire injection probability in [0, 1].
	Prob float64

	// Delay is the sleep duration for Delay mode (ignored otherwise).
	Delay time.Duration

	// Count, when positive, caps the number of injections this point
	// delivers; after Count injections the point passes through.
	// Zero means unlimited.
	Count int
}

// point is one armed injection point plus its counters.
type point struct {
	cfg      PointConfig
	hits     uint64 // Fire evaluations while armed
	injected uint64 // faults actually delivered
}

// registry holds the armed points.  A process has one (the package
// globals); tests drive it through the package-level functions.
type registry struct {
	// enabled is the fast-path gate: 0 means no point is armed and
	// Fire returns immediately.
	enabled atomic.Bool

	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
	// unhang releases Hang-mode blocks on Reset.
	unhang chan struct{}
}

var reg = newRegistry()

func newRegistry() *registry {
	r := &registry{
		points: make(map[string]*point),
		unhang: make(chan struct{}),
	}
	r.reseed(1)
	return r
}

func (r *registry) reseed(seed uint64) {
	r.rng = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func init() { armFromEnv() }

// armFromEnv applies DLSIM_FAULTS / DLSIM_FAULT_SEED, if set.
func armFromEnv() {
	seed := uint64(1)
	if s := os.Getenv("DLSIM_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			seed = v
		}
	}
	spec := os.Getenv("DLSIM_FAULTS")
	if spec == "" {
		return
	}
	cfgs, err := ParseSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultinject: ignoring DLSIM_FAULTS: %v\n", err)
		return
	}
	Seed(seed)
	for name, cfg := range cfgs {
		Enable(name, cfg)
	}
}

// ParseSpec parses the DLSIM_FAULTS grammar:
// "point=mode:prob[:delay]" entries separated by commas, e.g.
// "runner.execute=error:0.02,dlsimd.submit=delay:0.05:2ms".
func ParseSpec(spec string) (map[string]PointConfig, error) {
	out := make(map[string]PointConfig)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad entry %q (want point=mode:prob[:delay])", entry)
		}
		parts := strings.Split(rest, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("bad entry %q (want point=mode:prob[:delay])", entry)
		}
		mode := Mode(parts[0])
		switch mode {
		case Error, Panic, Delay, Hang:
		default:
			return nil, fmt.Errorf("unknown mode %q in %q", parts[0], entry)
		}
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("bad probability %q in %q", parts[1], entry)
		}
		cfg := PointConfig{Mode: mode, Prob: prob}
		if len(parts) >= 3 {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("bad delay %q in %q", parts[2], entry)
			}
			cfg.Delay = d
		}
		out[name] = cfg
	}
	return out, nil
}

// Seed reseeds the shared injection RNG, making the subsequent
// injection schedule deterministic for a fixed sequence of Fire calls.
func Seed(seed uint64) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.reseed(seed)
}

// Enable arms (or re-arms) the named point, replacing any prior
// configuration and zeroing its counters.
func Enable(name string, cfg PointConfig) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.points[name] = &point{cfg: cfg}
	reg.enabled.Store(true)
}

// Disable disarms the named point.
func Disable(name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	delete(reg.points, name)
	reg.enabled.Store(len(reg.points) > 0)
}

// Reset disarms every point, releases any Hang-mode blocks, and
// re-applies the environment configuration (so tests that Reset in
// cleanup leave `make faults` env injection in force for later tests).
func Reset() {
	reg.mu.Lock()
	reg.points = make(map[string]*point)
	reg.enabled.Store(false)
	close(reg.unhang)
	reg.unhang = make(chan struct{})
	reg.mu.Unlock()
	armFromEnv()
}

// Hits returns how many times the named point was evaluated while
// armed.
func Hits(name string) uint64 {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if p, ok := reg.points[name]; ok {
		return p.hits
	}
	return 0
}

// Injections returns how many faults the named point delivered.
func Injections(name string) uint64 {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if p, ok := reg.points[name]; ok {
		return p.injected
	}
	return 0
}

// Enabled reports whether any point is armed.
func Enabled() bool { return reg.enabled.Load() }

// PointStats is one armed point's configuration summary and counters,
// as reported by Snapshot.
type PointStats struct {
	// Mode is the armed fault mode; Prob its injection probability.
	Mode Mode
	Prob float64

	// Hits counts Fire evaluations while armed; Injected counts
	// faults actually delivered.
	Hits, Injected uint64
}

// Snapshot returns every armed point's counters, keyed by point name.
// Telemetry exporters poll this at scrape time to surface per-point
// fire counts as gauges without coupling this package to the metrics
// registry.
func Snapshot() map[string]PointStats {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make(map[string]PointStats, len(reg.points))
	for name, p := range reg.points {
		out[name] = PointStats{
			Mode:     p.cfg.Mode,
			Prob:     p.cfg.Prob,
			Hits:     p.hits,
			Injected: p.injected,
		}
	}
	return out
}

// Fire evaluates the named injection point with no cancellation
// context; Hang-mode points block until Reset.  Use FireCtx on paths
// that hold a context.
func Fire(name string) error { return FireCtx(context.Background(), name) }

// FireCtx evaluates the named injection point.  Disabled (the
// default), it costs one atomic load.  Armed, it may return an
// *InjectedError, panic, sleep, or block until ctx is done — per the
// point's PointConfig.
func FireCtx(ctx context.Context, name string) error {
	if !reg.enabled.Load() {
		return nil
	}
	reg.mu.Lock()
	p, ok := reg.points[name]
	if !ok {
		reg.mu.Unlock()
		return nil
	}
	p.hits++
	if p.cfg.Count > 0 && p.injected >= uint64(p.cfg.Count) {
		reg.mu.Unlock()
		return nil
	}
	if p.cfg.Prob < 1 && reg.rng.Float64() >= p.cfg.Prob {
		reg.mu.Unlock()
		return nil
	}
	p.injected++
	cfg := p.cfg
	unhang := reg.unhang
	reg.mu.Unlock()

	switch cfg.Mode {
	case Error:
		return &InjectedError{Point: name}
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", name))
	case Delay:
		select {
		case <-time.After(cfg.Delay):
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	case Hang:
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-unhang:
			return nil
		}
	}
	return nil
}
