// Runtime dynamic loading: dlopen/dlclose against a live image.
//
// Load links one additional library into an already-running image;
// Unload removes one.  Both mutate state the rest of the simulator
// caches aggressively, so they form the correctness spine of the churn
// scenario:
//
//   - Every GOT word they write goes through a caller-supplied store
//     callback (normally cpu.CPU.LinkerStore), so the write flows
//     through the D-cache and the ABTB's store snoop exactly like a
//     retired store.  A Bloom hit on a tombstoned or re-initialised
//     GOT slot forces the whole-table flush the paper's §3.3
//     correctness argument relies on — stale trampoline->target
//     mappings for freed (or about-to-be-reused) code cannot survive,
//     because every ABTB entry's GOT address was inserted into the
//     Bloom alongside it.
//   - Every mutation bumps the image generation, which invalidates any
//     compiled Program built against the old instruction index (see
//     cpu.Compile / cpu.CPU.SetProgram).
//   - Unload tombstones other modules' GOT slots that point into the
//     dead module back to their lazy re-entry values, so the next call
//     re-resolves through PLT0 instead of branching into freed code.
//     (Function pointers stored in data regions are not rewritten —
//     the same dangling-pointer hazard real dlclose has.)
//
// Address ranges are reused deterministically: reloading a library
// with the same name reuses its previous base when the new build fits
// the reserved span, and fresh libraries come from a bump allocator
// seeded above everything the initial link placed.  No randomness is
// involved at runtime, keeping churned runs bit-identical across
// interpreter, compiled-trace and pooled paths.
//
// Demand-driven loading (per Mururu et al., "Binary Debloating via
// Demand Driven Loading") is modelled on top: Load with Demand leaves
// the new module's text+PLT pages unmapped, and the CPU charges a page
// fault the first time each page is fetched (Image.TouchPage).
package linker

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/objfile"
)

// StoreFunc performs one 64-bit store on behalf of the runtime linker.
// cpu.CPU.LinkerStore is the production implementation; a nil StoreFunc
// writes memory directly (no cache or ABTB effects).
type StoreFunc func(addr, val uint64)

// LoadOptions configures a runtime library load.
type LoadOptions struct {
	// Demand maps the library's text+PLT pages lazily: each page
	// faults on first instruction fetch instead of being resident at
	// load time.
	Demand bool

	// Write routes the load's GOT and data-relocation stores (nil:
	// direct memory writes).
	Write StoreFunc
}

// churnSupported rejects runtime loading in the modes that cannot
// express it: static images have no GOT to rebind, and patched images
// call freed code directly with no indirection left to tombstone.
func (im *Image) churnSupported(op string) error {
	switch im.opts.Mode {
	case BindStatic:
		return fmt.Errorf("linker: %s requires a GOT (static link has none)", op)
	case BindPatched:
		return fmt.Errorf("linker: %s unsupported for patched images (direct call sites cannot be tombstoned)", op)
	}
	return nil
}

// privatize deep-copies the index structures Fork shares between a
// master image and its clones, so a churn mutation on this image
// cannot corrupt siblings.  Decoded instructions, instruction pages
// and Module records are themselves immutable once published (churn
// replaces whole map entries / table slots, never mutates in place),
// so only the containers are copied.
func (im *Image) privatize() {
	if !im.shared {
		return
	}
	im.shared = false

	instrs := make(map[uint64]*isa.Instr, len(im.instrs))
	for pc, in := range im.instrs {
		instrs[pc] = in
	}
	im.instrs = instrs

	ipages := make(map[uint64]*InstrPage, len(im.ipages))
	for pn, pg := range im.ipages {
		ipages[pn] = pg
	}
	im.ipages = ipages

	im.modules = append([]*Module(nil), im.modules...)
	im.pltSlotRanges = append([]pltSlotRange(nil), im.pltSlotRanges...)
	im.trampAddrs = append([]uint64(nil), im.trampAddrs...)

	symbols := make(map[string]uint64, len(im.symbols))
	for s, a := range im.symbols {
		symbols[s] = a
	}
	im.symbols = symbols

	funcName := make(map[uint64]string, len(im.funcName))
	for a, s := range im.funcName {
		funcName[a] = s
	}
	im.funcName = funcName

	trampolineSym := make(map[uint64]string, len(im.trampolineSym))
	for a, s := range im.trampolineSym {
		trampolineSym[a] = s
	}
	im.trampolineSym = trampolineSym
}

// lazyGOTWord returns import slot i's lazy re-entry value: the address
// the GOT must hold for the next call through the slot to fall into
// the resolver (x86: the slot's push; ARM: the per-import stub).
func (im *Image) lazyGOTWord(m *Module, i int) uint64 {
	if im.opts.PLT == PLTARM {
		stubBase := m.PLTBase + uint64(len(m.imports)+1)*PLTSlotBytes
		return stubBase + uint64(i)*armStubBytes
	}
	return m.PLTSlotAddr(i) + isa.SizeJmpMem
}

// findModule returns the live module with the given name, or nil.
func (im *Image) findModule(name string) *Module {
	for _, m := range im.modules {
		if !m.dead && m.Name == name {
			return m
		}
	}
	return nil
}

// Unload removes a library from the live image, as dlclose would:
// its instructions and symbols disappear, its PLT slots leave the
// trampoline index, and every live GOT slot still pointing into its
// text is tombstoned back to the lazy re-entry value through the
// store callback (so a snooping ABTB flushes any mapping it cached
// through those slots).  The module's address range stays reserved
// and is reused by a later Load of the same name.  The executable
// (module 0) cannot be unloaded.
func (im *Image) Unload(name string, write StoreFunc) error {
	if err := im.churnSupported("unload"); err != nil {
		return err
	}
	m := im.findModule(name)
	if m == nil {
		return fmt.Errorf("linker: unload of %q: no such module", name)
	}
	if m.ID == 0 {
		return fmt.Errorf("linker: cannot unload the executable %q", name)
	}

	im.privatize()
	im.generation++
	im.runtimeWrite = write
	defer func() { im.runtimeWrite = nil }()

	// Clear the dead module's own GOT slots.  Any ABTB entry for one
	// of its trampolines put the slot address in the Bloom when it was
	// inserted, so these stores guarantee a flush before the slot
	// addresses can be reused by a reload.
	for i := range m.imports {
		im.writeGOT(m.GOTSlotAddr(i), 0)
	}

	// Tombstone other modules' GOT slots that resolved into the dead
	// module's text, in deterministic module/slot order.
	for _, m2 := range im.modules {
		if m2.dead || m2 == m {
			continue
		}
		for i := range m2.imports {
			slot := m2.GOTSlotAddr(i)
			cur := im.memory.Read64(slot)
			if cur >= m.Base && cur < m.TextEnd {
				im.writeGOT(slot, im.lazyGOTWord(m2, i))
			}
		}
	}

	// Drop the module's instructions (text + PLT + ARM stubs share no
	// page with data or other modules, so whole pages go).
	for pn := m.Base >> mem.PageShift; pn <= (m.PLTEnd-1)>>mem.PageShift; pn++ {
		if pg := im.ipages[pn]; pg != nil {
			base := pn << mem.PageShift
			for off, in := range pg {
				if in != nil {
					delete(im.instrs, base+uint64(off))
				}
			}
			delete(im.ipages, pn)
		}
		delete(im.demandPages, pn)
	}

	// Drop its symbols and function names.
	for sym, addr := range im.symbols {
		if addr >= m.Base && addr < m.TextEnd {
			delete(im.symbols, sym)
		}
	}
	for addr := range im.funcName {
		if addr >= m.Base && addr < m.TextEnd {
			delete(im.funcName, addr)
		}
	}
	for i := range m.imports {
		delete(im.trampolineSym, m.PLTSlotAddr(i))
	}

	// Remove its slot range from the dense trampoline index.  The
	// dense indices themselves are never reassigned, so per-trampoline
	// counters stay valid across churn.
	if len(m.imports) > 0 {
		lo := m.PLTSlotAddr(0)
		for i, r := range im.pltSlotRanges {
			if r.lo == lo {
				im.pltSlotRanges = append(im.pltSlotRanges[:i:i], im.pltSlotRanges[i+1:]...)
				break
			}
		}
	}

	// Tombstone the module table entry, preserving geometry for span
	// reuse.  The shared entry is never mutated in place.
	dead := *m
	dead.dead = true
	im.modules[m.ID] = &dead
	return nil
}

// Load links one additional library into the live image, as dlopen
// would.  If a module of the same name was unloaded and the new build
// fits its reserved span, the old base address (and module ID) is
// reused — the scenario that makes stale caches dangerous.  GOT
// initialisation and data relocations flow through opts.Write.  With
// opts.Demand the module's text+PLT pages are left unmapped and fault
// in on first fetch.
func (im *Image) Load(o *objfile.Object, opts LoadOptions) (*Module, error) {
	if err := im.churnSupported("load"); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("linker: %w", err)
	}
	if im.findModule(o.Name()) != nil {
		return nil, fmt.Errorf("linker: load of %q: already loaded", o.Name())
	}

	im.privatize()
	im.generation++
	im.runtimeWrite = opts.Write
	defer func() { im.runtimeWrite = nil }()

	m := &Module{
		Name:       o.Name(),
		regionAddr: make(map[string]uint64),
		funcAddr:   make(map[string]uint64),
		imports:    o.Externals(),
	}
	size := moduleSize(o, true, len(m.imports))

	// Reuse a dead module's reservation when the new build fits.
	reuse := -1
	for _, old := range im.modules {
		if old.dead && old.Name == o.Name() && size <= old.span {
			reuse = old.ID
			break
		}
	}
	if reuse >= 0 {
		old := im.modules[reuse]
		m.ID = old.ID
		m.Base = old.Base
		m.span = old.span
	} else {
		m.ID = len(im.modules)
		m.Base = im.allocBase(size)
		m.span = size
	}
	placeModule(m, o, true, im.opts.PLT == PLTARM)

	// Register symbols (first definition wins, as at link time).
	for _, f := range o.Funcs() {
		addr := m.funcAddr[f.Name]
		if _, dup := im.symbols[f.Name]; !dup {
			im.symbols[f.Name] = addr
		}
		im.funcName[addr] = o.Name() + ":" + f.Name
	}
	for _, ifn := range o.IFuncs() {
		v := im.opts.IFuncLevel
		if v >= len(ifn.Variants) {
			v = len(ifn.Variants) - 1
		}
		if v < 0 {
			v = 0
		}
		if _, dup := im.symbols[ifn.Name]; !dup {
			im.symbols[ifn.Name] = m.funcAddr[ifn.Variants[v]]
		}
	}
	for _, sym := range m.imports {
		if _, ok := im.symbols[sym]; !ok {
			return nil, fmt.Errorf("linker: %s: undefined symbol %q", m.Name, sym)
		}
	}

	if reuse >= 0 {
		im.modules[reuse] = m
	} else {
		im.modules = append(im.modules, m)
	}

	if err := im.emitModule(m, o); err != nil {
		return nil, err
	}
	for _, pi := range o.PtrInits() {
		target, ok := im.symbols[pi.Sym]
		if !ok {
			return nil, fmt.Errorf("linker: %s: undefined symbol %q in pointer init", o.Name(), pi.Sym)
		}
		im.writeGOT(m.regionAddr[pi.Region]+pi.Off, target)
	}

	// Extend the dense trampoline index with fresh indices (reused
	// slot addresses get new counters; TrampolineIndex finds only the
	// live range because Unload removed the dead one).
	if len(m.imports) > 0 {
		im.pltSlotRanges = append(im.pltSlotRanges, pltSlotRange{
			lo:    m.PLTSlotAddr(0),
			hi:    m.PLTSlotAddr(len(m.imports)-1) + PLTSlotBytes,
			first: len(im.trampAddrs),
		})
		for i := range m.imports {
			im.trampAddrs = append(im.trampAddrs, m.PLTSlotAddr(i))
		}
	}

	if opts.Demand {
		if im.demandPages == nil {
			im.demandPages = make(map[uint64]struct{})
		}
		for pn := m.Base >> mem.PageShift; pn <= (m.PLTEnd-1)>>mem.PageShift; pn++ {
			im.demandPages[pn] = struct{}{}
		}
	}
	return m, nil
}

// allocBase reserves a fresh, deterministic base address for a library
// loaded at runtime into new address space: a bump allocator starting
// above everything the initial link placed (no randomness, so churned
// runs stay bit-identical across forks and kernel paths).
func (im *Image) allocBase(size uint64) uint64 {
	const libAlign = 1 << 16
	if im.dynNext == 0 {
		top := im.linkerDataBase + im.linkerDataSize
		for _, m := range im.modules {
			if m.DataEnd > top {
				top = m.DataEnd
			}
		}
		im.dynNext = align(top, libAlign)
	}
	base := im.dynNext
	im.dynNext = align(base+size, libAlign)
	return base
}

// HasDemandPages reports whether any demand-loaded pages are still
// unmapped.  The CPU checks this once per run to arm its fetch-side
// fault accounting.
func (im *Image) HasDemandPages() bool { return len(im.demandPages) > 0 }

// DemandPending returns the number of demand-loaded pages awaiting
// their first touch.
func (im *Image) DemandPending() int { return len(im.demandPages) }

// TouchPage records an instruction fetch from page pn (a page number),
// mapping the page if it was demand-pending and reporting whether this
// touch faulted.
func (im *Image) TouchPage(pn uint64) bool {
	if _, pending := im.demandPages[pn]; pending {
		delete(im.demandPages, pn)
		return true
	}
	return false
}
