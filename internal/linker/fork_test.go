package linker

import (
	"testing"
)

// TestForkSharesLinkProduct: a fork reads the identical link product —
// same symbols, same instructions, same initial GOT words — without
// re-linking.
func TestForkSharesLinkProduct(t *testing.T) {
	master := mustLink(t, Options{Mode: BindLazy, Seed: 3})
	fork := master.Fork()

	if fork.StackTop() != master.StackTop() {
		t.Errorf("fork stack top %#x != master %#x", fork.StackTop(), master.StackTop())
	}
	for _, sym := range []string{"main", "write", "parse"} {
		ma, _ := master.Symbol(sym)
		fa, ok := fork.Symbol(sym)
		if !ok || fa != ma {
			t.Errorf("fork symbol %q = %#x, master %#x", sym, fa, ma)
		}
	}
	m := master.Modules()[0]
	for i := range m.Imports() {
		slot := m.GOTSlotAddr(i)
		if got, want := fork.Memory().Read64(slot), master.Memory().Read64(slot); got != want {
			t.Errorf("fork GOT slot %d = %#x, master %#x", i, got, want)
		}
	}
	in, ok := fork.InstrAt(m.PLTSlotAddr(0))
	if !ok || !in.PLT {
		t.Error("fork lost the instruction index (PLT slot not decodable)")
	}
}

// TestForkIsolatesMutableState: GOT rebinding (BindAll) and the
// resolution counter in one fork never reach the master or a sibling —
// the copy-on-write invariant pooled jobs depend on.
func TestForkIsolatesMutableState(t *testing.T) {
	master := mustLink(t, Options{Mode: BindLazy, Seed: 3})
	a := master.Fork()
	b := master.Fork()

	m := master.Modules()[0]
	slot := m.GOTSlotAddr(0)
	lazyWord := master.Memory().Read64(slot)

	if n := a.BindAll(); n == 0 {
		t.Fatal("BindAll bound nothing; test needs a lazy import")
	}
	if got := master.Memory().Read64(slot); got != lazyWord {
		t.Errorf("BindAll in fork rewrote master GOT: %#x, want lazy %#x", got, lazyWord)
	}
	if got := b.Memory().Read64(slot); got != lazyWord {
		t.Errorf("BindAll in fork rewrote sibling GOT: %#x, want lazy %#x", got, lazyWord)
	}

	if _, _, err := a.Resolve(0, 0); err != nil {
		t.Fatal(err)
	}
	if a.Resolutions() != 1 || master.Resolutions() != 0 || b.Resolutions() != 0 {
		t.Errorf("resolution counters not private: a=%d master=%d b=%d",
			a.Resolutions(), master.Resolutions(), b.Resolutions())
	}
}

// TestForkChurnIsolation: runtime Load/Unload in one fork privatizes
// every shared index first, so churned instruction pages, symbols,
// module tombstones and demand-page state never leak into the master
// or a sibling — and the master remains fit to mint further forks.
func TestForkChurnIsolation(t *testing.T) {
	master := mustLink(t, Options{Mode: BindLazy, Seed: 3})
	a := master.Fork()
	b := master.Fork()

	parseAddr, _ := master.Symbol("parse")
	app := master.Modules()[0]
	parseSlot := app.GOTSlotAddr(1) // app imports [write, parse]
	lazyWord := master.Memory().Read64(parseSlot)
	libxID := master.findModule("libx").ID

	if n := a.BindAll(); n == 0 {
		t.Fatal("BindAll bound nothing")
	}
	if err := a.Unload("libx", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load(libxGen(1), LoadOptions{Demand: true}); err != nil {
		t.Fatal(err)
	}

	for name, im := range map[string]*Image{"master": master, "sibling": b} {
		if addr, ok := im.Symbol("parse"); !ok || addr != parseAddr {
			t.Errorf("%s: parse = %#x (ok=%v), want untouched %#x", name, addr, ok, parseAddr)
		}
		if _, ok := im.InstrAt(parseAddr); !ok {
			t.Errorf("%s: lost libx text to a fork's churn", name)
		}
		if im.Modules()[libxID].Dead() {
			t.Errorf("%s: module tombstone leaked from fork", name)
		}
		if got := im.Memory().Read64(parseSlot); got != lazyWord {
			t.Errorf("%s: GOT[parse] = %#x, want untouched lazy word %#x", name, got, lazyWord)
		}
		if im.HasDemandPages() {
			t.Errorf("%s: demand pages leaked from fork", name)
		}
		if g := im.Generation(); g != 0 {
			t.Errorf("%s: generation = %d, want 0", name, g)
		}
	}
	if a.Generation() != 2 {
		t.Errorf("churned fork generation = %d, want 2", a.Generation())
	}
	if !a.HasDemandPages() {
		t.Error("churned fork lost its demand pages")
	}

	// The master still mints clean forks after a sibling churned.
	c := master.Fork()
	if addr, ok := c.Symbol("parse"); !ok || addr != parseAddr {
		t.Errorf("post-churn fork: parse = %#x (ok=%v), want %#x", addr, ok, parseAddr)
	}
	// And a second fork can churn independently of the first.
	if err := c.Unload("libx", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Symbol("parse"); !ok {
		t.Error("fork c's unload removed fork a's reloaded symbol")
	}
}

// TestForkMatchesFreshLink: a forked image's visible memory is
// bit-identical to a fresh link of the same inputs at every GOT slot
// and pointer-initialised word.
func TestForkMatchesFreshLink(t *testing.T) {
	for _, mode := range []BindingMode{BindLazy, BindNow, BindPatched} {
		master := mustLink(t, Options{Mode: mode, Seed: 11})
		fresh := mustLink(t, Options{Mode: mode, Seed: 11})
		fork := master.Fork()
		for _, m := range fresh.Modules() {
			for i := range m.Imports() {
				slot := m.GOTSlotAddr(i)
				if got, want := fork.Memory().Read64(slot), fresh.Memory().Read64(slot); got != want {
					t.Errorf("mode %v: fork GOT %s[%d] = %#x, fresh link %#x",
						mode, m.Name, i, got, want)
				}
			}
		}
		if fork.SharedBytes() == 0 {
			t.Errorf("mode %v: SharedBytes = 0, want the COW layer counted", mode)
		}
	}
}
