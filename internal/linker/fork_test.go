package linker

import (
	"testing"
)

// TestForkSharesLinkProduct: a fork reads the identical link product —
// same symbols, same instructions, same initial GOT words — without
// re-linking.
func TestForkSharesLinkProduct(t *testing.T) {
	master := mustLink(t, Options{Mode: BindLazy, Seed: 3})
	fork := master.Fork()

	if fork.StackTop() != master.StackTop() {
		t.Errorf("fork stack top %#x != master %#x", fork.StackTop(), master.StackTop())
	}
	for _, sym := range []string{"main", "write", "parse"} {
		ma, _ := master.Symbol(sym)
		fa, ok := fork.Symbol(sym)
		if !ok || fa != ma {
			t.Errorf("fork symbol %q = %#x, master %#x", sym, fa, ma)
		}
	}
	m := master.Modules()[0]
	for i := range m.Imports() {
		slot := m.GOTSlotAddr(i)
		if got, want := fork.Memory().Read64(slot), master.Memory().Read64(slot); got != want {
			t.Errorf("fork GOT slot %d = %#x, master %#x", i, got, want)
		}
	}
	in, ok := fork.InstrAt(m.PLTSlotAddr(0))
	if !ok || !in.PLT {
		t.Error("fork lost the instruction index (PLT slot not decodable)")
	}
}

// TestForkIsolatesMutableState: GOT rebinding (BindAll) and the
// resolution counter in one fork never reach the master or a sibling —
// the copy-on-write invariant pooled jobs depend on.
func TestForkIsolatesMutableState(t *testing.T) {
	master := mustLink(t, Options{Mode: BindLazy, Seed: 3})
	a := master.Fork()
	b := master.Fork()

	m := master.Modules()[0]
	slot := m.GOTSlotAddr(0)
	lazyWord := master.Memory().Read64(slot)

	if n := a.BindAll(); n == 0 {
		t.Fatal("BindAll bound nothing; test needs a lazy import")
	}
	if got := master.Memory().Read64(slot); got != lazyWord {
		t.Errorf("BindAll in fork rewrote master GOT: %#x, want lazy %#x", got, lazyWord)
	}
	if got := b.Memory().Read64(slot); got != lazyWord {
		t.Errorf("BindAll in fork rewrote sibling GOT: %#x, want lazy %#x", got, lazyWord)
	}

	if _, _, err := a.Resolve(0, 0); err != nil {
		t.Fatal(err)
	}
	if a.Resolutions() != 1 || master.Resolutions() != 0 || b.Resolutions() != 0 {
		t.Errorf("resolution counters not private: a=%d master=%d b=%d",
			a.Resolutions(), master.Resolutions(), b.Resolutions())
	}
}

// TestForkMatchesFreshLink: a forked image's visible memory is
// bit-identical to a fresh link of the same inputs at every GOT slot
// and pointer-initialised word.
func TestForkMatchesFreshLink(t *testing.T) {
	for _, mode := range []BindingMode{BindLazy, BindNow, BindPatched} {
		master := mustLink(t, Options{Mode: mode, Seed: 11})
		fresh := mustLink(t, Options{Mode: mode, Seed: 11})
		fork := master.Fork()
		for _, m := range fresh.Modules() {
			for i := range m.Imports() {
				slot := m.GOTSlotAddr(i)
				if got, want := fork.Memory().Read64(slot), fresh.Memory().Read64(slot); got != want {
					t.Errorf("mode %v: fork GOT %s[%d] = %#x, fresh link %#x",
						mode, m.Name, i, got, want)
				}
			}
		}
		if fork.SharedBytes() == 0 {
			t.Errorf("mode %v: SharedBytes = 0, want the COW layer counted", mode)
		}
	}
}
