package linker

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// InstrPage is one page of the decoded-instruction index: the
// instruction starting at each byte offset, or nil.
type InstrPage [mem.PageSize]*isa.Instr

// Fork returns a copy-on-write clone of the image for a fresh
// simulated process.
//
// Everything Link produced is immutable afterwards except two things:
// the data memory (GOT words rebound by the lazy resolver, workload
// data stores, stack) and the lazy-resolution counter.  Fork therefore
// shares the decoded instructions, module map, symbol tables, dense
// trampoline index and patch statistics with the parent, forks the
// memory copy-on-write (see mem.Memory.Fork), and gives the clone a
// zeroed resolution counter.  The clone's initial memory contents —
// including the lazily-initialised GOT — are bit-identical to a fresh
// Link of the same inputs, which is what lets internal/pool hand
// pooled images to jobs without perturbing any simulated counter.
//
// Fork is not safe to call concurrently with other operations on the
// parent image (the first fork freezes the parent's written pages);
// callers must serialise forks of a shared master.  Forked clones are
// fully independent of each other and of the parent afterwards.
func (im *Image) Fork() *Image {
	clone := *im
	clone.memory = im.memory.Fork()
	clone.resolutions = 0
	// Runtime loading (dynload.go) mutates the index structures the
	// comment above calls immutable.  Mark both sides shared so the
	// first Load/Unload on either deep-copies its index view
	// (privatize) instead of corrupting the other's.
	im.shared = true
	clone.shared = true
	clone.runtimeWrite = nil
	if len(im.demandPages) > 0 {
		clone.demandPages = make(map[uint64]struct{}, len(im.demandPages))
		for pn := range im.demandPages {
			clone.demandPages[pn] = struct{}{}
		}
	}
	return &clone
}

// Generation counts runtime Load/Unload mutations of the image.  A
// compiled Program captures the generation it was built against;
// replaying it against a different generation is refused (the trace
// would branch into freed or rewritten code).  Freshly linked images
// are generation 0.
func (im *Image) Generation() uint64 { return im.generation }

// SharedBytes returns the size in bytes of the image's copy-on-write
// page layer plus its privately written pages — the resident data
// footprint one pooled master contributes (text/instruction indexes
// are shared Go objects and not counted).
func (im *Image) SharedBytes() uint64 {
	return uint64(im.memory.PagesShared())*mem.PageSize + im.memory.FootprintBytes()
}

// InstrAt returns the decoded instruction at pc.
func (im *Image) InstrAt(pc uint64) (*isa.Instr, bool) {
	pg := im.ipages[pc>>mem.PageShift]
	if pg == nil {
		return nil, false
	}
	in := pg[pc&(mem.PageSize-1)]
	return in, in != nil
}

// InstrPageAt returns the instruction-index page containing pc, or
// nil.  The CPU memoises the page across sequential fetches.
func (im *Image) InstrPageAt(pc uint64) *InstrPage {
	return im.ipages[pc>>mem.PageShift]
}

// Memory returns the image's data memory (GOT, data regions, stack).
func (im *Image) Memory() *mem.Memory { return im.memory }

// Instructions returns the image's full decoded-instruction index,
// keyed by virtual address.  The trace compiler walks it once to build
// its dense branch-threaded program; iteration order is unspecified,
// so callers sort.  The map is shared with the image (and with every
// fork, which is why one compiled program serves all forks of a pooled
// master) and must not be mutated.
func (im *Image) Instructions() map[uint64]*isa.Instr { return im.instrs }

// Modules returns the linked modules in load order (executable first).
func (im *Image) Modules() []*Module { return im.modules }

// Symbol returns the resolved address of a global function symbol.
func (im *Image) Symbol(name string) (uint64, bool) {
	a, ok := im.symbols[name]
	return a, ok
}

// FuncName returns the "module:function" name of the function starting
// at addr, or "".
func (im *Image) FuncName(addr uint64) string { return im.funcName[addr] }

// StackTop returns the initial stack pointer.
func (im *Image) StackTop() uint64 { return im.stackTop }

// Options returns the link options used.
func (im *Image) Options() Options { return im.opts }

// Patch returns the call-site patching statistics (BindPatched only).
func (im *Image) Patch() PatchStats { return im.patch }

// InPLT reports whether addr falls inside any module's PLT section —
// the test that classifies a retired instruction as trampoline code
// (Table 2's "instructions in trampoline PKI").
func (im *Image) InPLT(addr uint64) bool {
	for _, m := range im.modules {
		if m.dead {
			continue // stale geometry may overlap a reloaded module
		}
		if m.PLTBase != 0 && addr >= m.PLTBase && addr < m.PLTEnd {
			return true
		}
	}
	return false
}

// TrampolineSym returns the imported symbol whose trampoline starts at
// addr ("" if addr is not a PLT slot start).  Distinct-trampoline
// counting (Table 3) keys on these addresses.
func (im *Image) TrampolineSym(addr uint64) string { return im.trampolineSym[addr] }

// Trampolines returns the total number of PLT slots in the image
// (excluding the PLT0 stubs).
func (im *Image) Trampolines() int { return len(im.trampolineSym) }

// pltSlotRange is one module's contiguous PLT slot region in the
// dense trampoline numbering.
type pltSlotRange struct {
	lo, hi uint64 // [first slot, one past last slot)
	first  int    // dense index of the slot at lo
}

// TrampolineIndex returns the dense index (0..Trampolines()-1) of the
// PLT trampoline starting at addr, or -1 if addr is not a slot start.
// It is the CPU's per-retired-call classification test: a short scan
// over per-module slot ranges plus slot arithmetic, with no map probe
// and no allocation.
func (im *Image) TrampolineIndex(addr uint64) int {
	for i := range im.pltSlotRanges {
		r := &im.pltSlotRanges[i]
		if addr >= r.lo && addr < r.hi {
			if (addr-r.lo)%PLTSlotBytes != 0 {
				return -1 // inside a slot, not its first instruction
			}
			return r.first + int((addr-r.lo)/PLTSlotBytes)
		}
	}
	return -1
}

// TrampolineAddrs returns the slot address for each dense trampoline
// index, in index order.  The caller must not mutate the slice.
func (im *Image) TrampolineAddrs() []uint64 { return im.trampAddrs }

// ModuleOf returns the module whose text/PLT/data span contains addr,
// or nil.
func (im *Image) ModuleOf(addr uint64) *Module {
	for _, m := range im.modules {
		if m.dead {
			continue
		}
		if addr >= m.Base && addr < m.DataEnd {
			return m
		}
	}
	return nil
}

// LinkerData returns the base and size of the dynamic linker's own
// tables (symbol hashes, link maps).  The lazy resolver walks this
// region, giving resolution a realistic data-cache footprint.
func (im *Image) LinkerData() (base, size uint64) {
	return im.linkerDataBase, im.linkerDataSize
}

// Resolutions returns the number of lazy symbol resolutions performed.
func (im *Image) Resolutions() uint64 { return im.resolutions }

// Resolve performs a lazy binding: given the module ID and relocation
// index that the PLT glue pushed, it returns the GOT slot to update
// and the resolved function address.  The CPU performs the actual GOT
// store (so that the write flows through the D-cache and the ABTB's
// store snoop) and then jumps to the function.
func (im *Image) Resolve(modID, relocIdx uint64) (gotAddr, funcAddr uint64, err error) {
	if modID >= uint64(len(im.modules)) {
		return 0, 0, fmt.Errorf("linker: resolve with bad module id %d", modID)
	}
	m := im.modules[modID]
	if m.dead {
		return 0, 0, fmt.Errorf("linker: resolve through unloaded module %s", m.Name)
	}
	if relocIdx >= uint64(len(m.imports)) {
		return 0, 0, fmt.Errorf("linker: resolve %s with bad reloc %d", m.Name, relocIdx)
	}
	sym := m.imports[relocIdx]
	funcAddr, ok := im.symbols[sym]
	if !ok {
		return 0, 0, fmt.Errorf("linker: resolve of undefined symbol %q", sym)
	}
	im.resolutions++
	return m.GOTSlotAddr(int(relocIdx)), funcAddr, nil
}

// BindAll eagerly resolves every GOT slot to its final function
// address, as the lazy resolver would have after a long-running
// process touched every import.  The paper measures multi-hour steady
// state ("we run the experiment for 10 hours at close to peak load"),
// where resolution traffic is long finished; measurement harnesses
// call BindAll before their windows so that mid-window resolutions do
// not flush the ABTB.  It returns the number of slots bound and is a
// no-op for images whose GOT is already final (eager, patched) or
// absent (static).
func (im *Image) BindAll() int {
	n := 0
	for _, m := range im.modules {
		if m.dead {
			continue
		}
		for i, sym := range m.imports {
			addr := im.symbols[sym]
			slot := m.GOTSlotAddr(i)
			if im.memory.Read64(slot) != addr {
				im.memory.Write64(slot, addr)
				n++
			}
		}
	}
	return n
}

// TextBytes returns the total text+PLT footprint of the image in
// bytes, a code-working-set indicator used by the workload generators
// to check that synthetic applications exceed the L1I capacity the
// way the paper's applications do.
func (im *Image) TextBytes() uint64 {
	var n uint64
	for _, m := range im.modules {
		if m.dead {
			continue
		}
		end := m.TextEnd
		if m.PLTEnd > end {
			end = m.PLTEnd
		}
		n += end - m.Base
	}
	return n
}
