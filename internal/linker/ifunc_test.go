package linker

import (
	"strings"
	"testing"

	"repro/internal/objfile"
)

func TestIFuncSymbolBinding(t *testing.T) {
	lib := objfile.New("lib")
	lib.NewFunc("f_v0").ALU(1).Ret()
	lib.NewFunc("f_v1").ALU(2).Ret()
	lib.DeclareIFunc("f", "f_v0", "f_v1")
	app := objfile.New("app")
	app.NewFunc("main").Call("f").Halt()

	for _, tt := range []struct {
		level int
		want  string
	}{
		{0, "lib:f_v0"}, {1, "lib:f_v1"}, {7, "lib:f_v1"}, {-1, "lib:f_v0"},
	} {
		im, err := Link(app, []*objfile.Object{lib}, Options{Mode: BindLazy, IFuncLevel: tt.level})
		if err != nil {
			t.Fatal(err)
		}
		addr, ok := im.Symbol("f")
		if !ok {
			t.Fatal("ifunc symbol unresolved")
		}
		if got := im.FuncName(addr); got != tt.want {
			t.Errorf("level %d: f bound to %q, want %q", tt.level, got, tt.want)
		}
	}
}

func TestIFuncGetsPLTSlotInDefiningModule(t *testing.T) {
	lib := objfile.New("lib")
	lib.NewFunc("f_v0").ALU(1).Ret()
	lib.DeclareIFunc("f", "f_v0")
	lib.NewFunc("caller").Call("f").Ret()
	app := objfile.New("app")
	app.NewFunc("main").Call("caller").Halt()

	im, err := Link(app, []*objfile.Object{lib}, Options{Mode: BindLazy})
	if err != nil {
		t.Fatal(err)
	}
	libMod := im.Modules()[1]
	if len(libMod.Imports()) != 1 || libMod.Imports()[0] != "f" {
		t.Fatalf("lib imports = %v, want [f]", libMod.Imports())
	}
	if im.TrampolineSym(libMod.PLTSlotAddr(0)) != "f" {
		t.Error("no trampoline for local ifunc")
	}
}

func TestRebindResolution(t *testing.T) {
	app := objfile.New("app")
	app.NewFunc("main").Call("api").Halt()
	app.NewFunc("swap").RebindImport("api", "api2").Halt()
	lib := objfile.New("lib")
	lib.NewFunc("api").ALU(1).Ret()
	lib.NewFunc("api2").ALU(2).Ret()

	im, err := Link(app, []*objfile.Object{lib}, Options{Mode: BindNow})
	if err != nil {
		t.Fatal(err)
	}
	appMod := im.Modules()[0]
	swapAddr, _ := im.Symbol("swap")
	in, ok := im.InstrAt(swapAddr)
	if !ok {
		t.Fatal("no swap instruction")
	}
	if in.Mem != appMod.GOTSlotAddr(0) {
		t.Errorf("rebind store targets %#x, want GOT slot %#x", in.Mem, appMod.GOTSlotAddr(0))
	}
	api2, _ := im.Symbol("api2")
	if in.Val != api2 {
		t.Errorf("rebind store value %#x, want api2 %#x", in.Val, api2)
	}
}

func TestRebindErrors(t *testing.T) {
	build := func(got, to string) (*objfile.Object, []*objfile.Object) {
		app := objfile.New("app")
		app.NewFunc("main").Call("api").Halt()
		app.NewFunc("swap").RebindImport(got, to).Halt()
		lib := objfile.New("lib")
		lib.NewFunc("api").ALU(1).Ret()
		lib.NewFunc("api2").ALU(2).Ret()
		return app, []*objfile.Object{lib}
	}
	tests := []struct {
		name     string
		mode     BindingMode
		got, to  string
		fragment string
	}{
		{"static has no GOT", BindStatic, "api", "api2", "static"},
		{"undefined rebound symbol", BindLazy, "nosuch", "api2", "undefined"},
		{"undefined target", BindLazy, "api", "ghost", "undefined"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			app, libs := build(tt.got, tt.to)
			_, err := Link(app, libs, Options{Mode: tt.mode})
			if err == nil {
				t.Fatal("link succeeded")
			}
			if !strings.Contains(err.Error(), tt.fragment) {
				t.Errorf("error %q does not mention %q", err, tt.fragment)
			}
		})
	}
}

func TestRebindImportForcesSlot(t *testing.T) {
	// A rebind store's GOT symbol gets a PLT/GOT slot even if no call
	// references it (the slot is what the store writes).
	app := objfile.New("app")
	app.NewFunc("main").RebindImport("hook", "impl").Halt()
	lib := objfile.New("lib")
	lib.NewFunc("hook").ALU(1).Ret()
	lib.NewFunc("impl").ALU(2).Ret()
	im, err := Link(app, []*objfile.Object{lib}, Options{Mode: BindLazy})
	if err != nil {
		t.Fatal(err)
	}
	appMod := im.Modules()[0]
	if len(appMod.Imports()) != 1 || appMod.Imports()[0] != "hook" {
		t.Fatalf("imports = %v, want [hook]", appMod.Imports())
	}
}
