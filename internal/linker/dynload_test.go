package linker

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/objfile"
)

// libxGen builds a replacement generation of testProgram's libx: same
// name, same exported symbol, same import, body weight set by extraALU.
func libxGen(extraALU int) *objfile.Object {
	o := objfile.New("libx")
	o.NewFunc("parse").ALU(extraALU).Call("write").Ret()
	return o
}

func TestUnloadTombstonesAndCleans(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy, Seed: 5})
	im.BindAll()

	libx := im.findModule("libx")
	if libx == nil {
		t.Fatal("no libx module")
	}
	app := im.Modules()[0]
	parseAddr, _ := im.Symbol("parse")

	// app's imports are [write, parse] in first-use order; after
	// BindAll slot 1 points into libx text.
	parseSlot := app.GOTSlotAddr(1)
	if got := im.Memory().Read64(parseSlot); got != parseAddr {
		t.Fatalf("pre-unload app GOT[parse] = %#x, want %#x", got, parseAddr)
	}
	libxGOT := libx.GOTSlotAddr(0) // libx imports [write]
	pltSlot := libx.PLTSlotAddr(0)

	var stores []uint64
	write := func(addr, val uint64) {
		stores = append(stores, addr)
		im.Memory().Write64(addr, val)
	}
	if err := im.Unload("libx", write); err != nil {
		t.Fatal(err)
	}

	if got, want := im.Memory().Read64(parseSlot), im.lazyGOTWord(app, 1); got != want {
		t.Errorf("app GOT[parse] = %#x after unload, want lazy word %#x", got, want)
	}
	if got := im.Memory().Read64(libxGOT); got != 0 {
		t.Errorf("dead module's GOT slot = %#x, want 0", got)
	}
	if len(stores) == 0 {
		t.Error("unload wrote no GOT words through the store callback")
	}
	if _, ok := im.Symbol("parse"); ok {
		t.Error("parse still resolvable after unload")
	}
	if _, ok := im.InstrAt(parseAddr); ok {
		t.Error("libx text still decodable after unload")
	}
	if _, ok := im.InstrAt(pltSlot); ok {
		t.Error("libx PLT still decodable after unload")
	}
	if im.findModule("libx") != nil {
		t.Error("libx still live")
	}
	if !im.Modules()[libx.ID].Dead() {
		t.Error("module table entry not tombstoned")
	}
	if idx := im.TrampolineIndex(pltSlot); idx >= 0 {
		t.Errorf("TrampolineIndex(%#x) = %d after unload, want negative", pltSlot, idx)
	}
	if g := im.Generation(); g != 1 {
		t.Errorf("generation = %d after one unload, want 1", g)
	}
	// The resolver must trap rather than resolve through freed state.
	if _, _, err := im.Resolve(uint64(libx.ID), 0); err == nil {
		t.Error("Resolve through unloaded module succeeded")
	}
}

func TestUnloadErrors(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy})
	if err := im.Unload("nope", nil); err == nil {
		t.Error("unload of unknown module succeeded")
	}
	if err := im.Unload("app", nil); err == nil {
		t.Error("unload of the executable succeeded")
	}
	for _, mode := range []BindingMode{BindStatic, BindPatched} {
		im := mustLink(t, Options{Mode: mode})
		if err := im.Unload("libx", nil); err == nil {
			t.Errorf("mode %v: unload succeeded, want unsupported", mode)
		}
		if _, err := im.Load(libxGen(1), LoadOptions{}); err == nil {
			t.Errorf("mode %v: load succeeded, want unsupported", mode)
		}
	}
}

func TestReloadReusesAddressRange(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy, Seed: 9})
	old := im.findModule("libx")
	oldBase, oldID, oldSpan := old.Base, old.ID, old.span
	nTramp := len(im.TrampolineAddrs())

	if err := im.Unload("libx", nil); err != nil {
		t.Fatal(err)
	}
	m, err := im.Load(libxGen(1), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Base != oldBase || m.ID != oldID || m.span != oldSpan {
		t.Errorf("reload got base=%#x id=%d span=%d, want reuse of base=%#x id=%d span=%d",
			m.Base, m.ID, m.span, oldBase, oldID, oldSpan)
	}
	addr, ok := im.Symbol("parse")
	if !ok || addr < m.Base || addr >= m.TextEnd {
		t.Errorf("parse = %#x (ok=%v), want inside reloaded text [%#x,%#x)", addr, ok, m.Base, m.TextEnd)
	}
	// Reused slot addresses get fresh dense indices appended after the
	// surviving ones; old indices are never reassigned.
	if got := im.TrampolineIndex(m.PLTSlotAddr(0)); got != nTramp {
		t.Errorf("reloaded slot index = %d, want %d (appended)", got, nTramp)
	}
	if got, want := len(im.TrampolineAddrs()), nTramp+len(m.Imports()); got != want {
		t.Errorf("trampoline addrs = %d, want %d", got, want)
	}
	if g := im.Generation(); g != 2 {
		t.Errorf("generation = %d after unload+load, want 2", g)
	}
}

func TestReloadTooBigAllocatesFresh(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy, Seed: 9})
	old := im.findModule("libx")
	oldBase, oldID := old.Base, old.ID
	if err := im.Unload("libx", nil); err != nil {
		t.Fatal(err)
	}
	m, err := im.Load(libxGen(3000), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Base == oldBase {
		t.Errorf("oversized reload reused base %#x; must not fit the old span", oldBase)
	}
	if m.Base%(1<<16) != 0 {
		t.Errorf("fresh base %#x not 64K-aligned", m.Base)
	}
	if m.ID == oldID {
		t.Error("oversized reload reused the dead module's ID")
	}
	if !im.Modules()[oldID].Dead() {
		t.Error("old reservation no longer tombstoned")
	}
}

func TestLoadErrors(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy})
	if _, err := im.Load(libxGen(1), LoadOptions{}); err == nil || !strings.Contains(err.Error(), "already loaded") {
		t.Errorf("load over a live module: err = %v, want already-loaded", err)
	}
	bad := objfile.New("libbad")
	bad.NewFunc("badfn").Call("no_such_symbol").Ret()
	if _, err := im.Load(bad, LoadOptions{}); err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Errorf("load with dangling import: err = %v, want undefined symbol", err)
	}
}

func TestDemandLoadPages(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy})
	if err := im.Unload("libx", nil); err != nil {
		t.Fatal(err)
	}
	m, err := im.Load(libxGen(1), LoadOptions{Demand: true})
	if err != nil {
		t.Fatal(err)
	}
	wantPages := int((m.PLTEnd-1)>>mem.PageShift - m.Base>>mem.PageShift + 1)
	if got := im.DemandPending(); got != wantPages {
		t.Errorf("DemandPending = %d, want %d", got, wantPages)
	}
	if !im.HasDemandPages() {
		t.Error("HasDemandPages = false after demand load")
	}
	pn := m.Base >> mem.PageShift
	if !im.TouchPage(pn) {
		t.Error("first touch did not fault")
	}
	if im.TouchPage(pn) {
		t.Error("second touch faulted again")
	}
	if got := im.DemandPending(); got != wantPages-1 {
		t.Errorf("DemandPending = %d after one touch, want %d", got, wantPages-1)
	}
	// A later unload clears the module's pending pages.
	if err := im.Unload("libx", nil); err != nil {
		t.Fatal(err)
	}
	if im.HasDemandPages() {
		t.Errorf("DemandPending = %d after unload, want 0", im.DemandPending())
	}
}
