// Package linker turns relocatable objects into an executable memory
// image, implementing all four binding modes the evaluation compares:
//
//   - BindLazy: classic ELF dynamic linking.  Every module gets a PLT
//     (16-byte slots, x86-64 psABI layout) and a GOT; GOT slots
//     initially point back into the PLT so the first call falls into
//     the dynamic resolver, which binds the symbol, stores the real
//     address into the GOT, and jumps to the function (§2).
//   - BindNow: eager binding (LD_BIND_NOW).  GOT slots hold final
//     addresses at load time; trampolines still execute on every call.
//   - BindStatic: static linking.  Calls to external symbols are
//     direct; no PLT or GOT exists.  This is the paper's performance
//     upper bound.
//   - BindPatched: the paper's software emulation of the proposed
//     hardware (§4.3).  The image is laid out exactly like BindLazy
//     (PLT and GOT present, libraries forced within 32-bit reach,
//     ASLR off), but every call site that targeted a PLT slot is
//     patched to call the function directly.  The linker records
//     which text pages were written, feeding the §5.5 copy-on-write
//     memory accounting.
//
// The linked Image holds decoded instructions by virtual address, the
// initialised data memory (GOT contents, function-pointer slots), the
// module map (text/PLT/GOT ranges), and the lazy-binding resolver.
package linker

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/objfile"
)

// BindingMode selects how external symbols are bound.
type BindingMode int

// Binding modes.
const (
	BindLazy BindingMode = iota
	BindNow
	BindStatic
	BindPatched
)

var modeNames = map[BindingMode]string{
	BindLazy:    "lazy",
	BindNow:     "now",
	BindStatic:  "static",
	BindPatched: "patched",
}

// String returns the mode name.
func (m BindingMode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configures a link.
type Options struct {
	Mode BindingMode

	// ASLR randomises library bases and the stack.  BindPatched
	// forces it off, as the paper's evaluation did (§4.3).
	ASLR bool

	// Seed drives layout randomisation.
	Seed uint64

	// IFuncLevel is the simulated hardware capability level used to
	// select GNU indirect-function implementations at load time
	// (§2.4.1): variant min(IFuncLevel, len(variants)-1) is chosen.
	IFuncLevel int

	// PLT selects the trampoline flavour (paper Fig. 2): x86-64's
	// single `jmp *(got)` or ARM's two address-forming adds followed
	// by `ldr pc, [got]`.  The ABTB needs PatternWindow >= 2 to learn
	// ARM trampolines.
	PLT PLTStyle
}

// PLTStyle selects the trampoline instruction sequence.
type PLTStyle int

// Trampoline flavours (paper Figure 2).
const (
	PLTx86 PLTStyle = iota // jmp *(got); push reloc; jmp plt0
	PLTARM                 // add; add; ldr pc, [got]  (+ lazy stub)
)

// String returns the style name.
func (p PLTStyle) String() string {
	if p == PLTARM {
		return "arm"
	}
	return "x86"
}

// PLT geometry: 16-byte slots (the x86-64 psABI layout; ARM entries
// are 12 bytes but keep the same 16-byte pitch here for uniform slot
// arithmetic), slot 0 is the common resolver stub.  ARM lazy stubs of
// 12 bytes each follow the slots.
const (
	PLTSlotBytes = 16
	armStubBytes = 12
	gotReserved  = 3 // got[0..2]: link map, resolver, spare
)

// Module describes one linked module's address ranges.
type Module struct {
	Name string
	ID   int

	Base     uint64 // text start
	TextEnd  uint64
	PLTBase  uint64 // 0 when no PLT (static mode)
	PLTEnd   uint64
	GOTBase  uint64
	GOTEnd   uint64
	DataBase uint64
	DataEnd  uint64

	imports    []string          // symbol per PLT slot, in first-use order
	regionAddr map[string]uint64 // data region name -> address
	funcAddr   map[string]uint64 // local function -> entry address

	// span is the virtual size reserved for the module at placement
	// (moduleSize at link or load time).  Runtime reloads of a module
	// with the same name reuse its base address when the new build
	// fits the reserved span (see Image.Load).
	span uint64

	// dead marks a module removed by Image.Unload.  The entry stays in
	// the module table (PLT0 pushes encode module IDs) but resolves,
	// range queries and BindAll skip it.
	dead bool
}

// Dead reports whether the module has been unloaded.
func (m *Module) Dead() bool { return m.dead }

// PLTSlotAddr returns the address of import slot i's trampoline (the
// JmpMem instruction).
func (m *Module) PLTSlotAddr(i int) uint64 {
	return m.PLTBase + uint64(i+1)*PLTSlotBytes
}

// GOTSlotAddr returns the address of import slot i's GOT entry.
func (m *Module) GOTSlotAddr(i int) uint64 {
	return m.GOTBase + uint64(gotReserved+i)*8
}

// Imports returns the module's imported symbols in PLT order.
func (m *Module) Imports() []string { return m.imports }

// PatchStats summarises the call-site patching a BindPatched link
// performed — the input to the §5.5 memory-overhead analysis.
type PatchStats struct {
	CallSites     int            // call instructions rewritten
	PagesTouched  int            // distinct text pages written
	PagesByModule map[string]int // per-module page counts
}

// Image is a fully linked, executable program image.
type Image struct {
	opts Options

	instrs map[uint64]*isa.Instr
	// ipages is a two-level index over instrs (page number -> dense
	// per-byte-offset array), built once at the end of linking.  The
	// CPU fetches billions of instructions; the paged index plus a
	// last-page memo makes InstrAt a few array indexations instead of
	// a map probe.
	ipages   map[uint64]*InstrPage
	memory   *mem.Memory
	modules  []*Module
	symbols  map[string]uint64 // global function symbols
	funcName map[uint64]string

	trampolineSym map[uint64]string // PLT slot addr -> symbol it calls
	stackTop      uint64

	// Dense trampoline index, built once at the end of linking.  Each
	// module's PLT slot region maps its slots to consecutive integers,
	// so the CPU can keep per-trampoline call counts in a flat array
	// and classify a call target with a short range scan instead of a
	// map probe per retired call.
	pltSlotRanges []pltSlotRange
	trampAddrs    []uint64 // dense index -> slot address

	// Linker-internal data (ld.so's symbol tables) that the lazy
	// resolver walks; gives resolver executions a data footprint.
	linkerDataBase uint64
	linkerDataSize uint64

	patch        PatchStats
	patchedPages map[string]bool
	resolutions  uint64

	// Runtime-loading state (see dynload.go).  generation counts
	// Load/Unload mutations so cached derivations of the instruction
	// index (the compiled Program) can detect staleness.  shared marks
	// an image whose index structures are aliased with a fork; the
	// first churn operation deep-copies them (privatize).  dynNext is
	// the deterministic bump allocator for libraries loaded at runtime
	// into fresh address ranges.  runtimeWrite, when set, routes
	// linker-performed GOT/data stores through the CPU so a live ABTB
	// snoops them like any retired store.  demandPages is the set of
	// text pages mapped on demand: still unmapped, faulting on first
	// instruction fetch.
	generation   uint64
	shared       bool
	dynNext      uint64
	runtimeWrite StoreFunc
	demandPages  map[uint64]struct{}
}

// writeGOT performs a linker-side store of a GOT word (or other
// load-time data relocation): directly into memory at link time, or
// through the runtime store callback during Load/Unload so a live
// CPU's caches and ABTB observe the write.
func (im *Image) writeGOT(addr, val uint64) {
	if im.runtimeWrite != nil {
		im.runtimeWrite(addr, val)
		return
	}
	im.memory.Write64(addr, val)
}

// addInstr registers a decoded instruction, keeping the paged fetch
// index in sync when it already exists (runtime Load; at link time the
// index is built once afterwards).
func (im *Image) addInstr(pc uint64, in *isa.Instr) {
	im.instrs[pc] = in
	if im.ipages == nil {
		return
	}
	pn := pc >> mem.PageShift
	pg := im.ipages[pn]
	if pg == nil {
		pg = new(InstrPage)
		im.ipages[pn] = pg
	}
	pg[pc&(mem.PageSize-1)] = in
}

// Link links the executable object against the given libraries.
// Symbol resolution is first-definition-wins in load order (exe
// first), as the ELF global scope behaves.
func Link(exe *objfile.Object, libs []*objfile.Object, opts Options) (*Image, error) {
	objs := append([]*objfile.Object{exe}, libs...)
	for _, o := range objs {
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("linker: %w", err)
		}
	}
	if opts.Mode == BindPatched {
		opts.ASLR = false // the evaluation disables ASLR for patching
	}

	im := &Image{
		opts:          opts,
		instrs:        make(map[uint64]*isa.Instr),
		memory:        mem.New(),
		symbols:       make(map[string]uint64),
		funcName:      make(map[uint64]string),
		trampolineSym: make(map[uint64]string),
	}
	im.patch.PagesByModule = make(map[string]int)

	layout := mmu.NewLayout(opts.Seed, opts.ASLR, opts.Mode == BindPatched)
	im.stackTop = layout.Stack()

	// Pass 1: place every module and assign function addresses.
	withPLT := opts.Mode != BindStatic
	for id, o := range objs {
		m := &Module{
			Name:       o.Name(),
			ID:         id,
			regionAddr: make(map[string]uint64),
			funcAddr:   make(map[string]uint64),
		}
		if withPLT {
			m.imports = o.Externals()
		}
		size := moduleSize(o, withPLT, len(m.imports))
		if id == 0 {
			m.Base = layout.ExecBase()
		} else {
			m.Base = layout.NextLibrary(size)
		}
		m.span = size
		placeModule(m, o, withPLT, opts.PLT == PLTARM)
		im.modules = append(im.modules, m)

		for _, f := range o.Funcs() {
			addr := m.funcAddr[f.Name]
			if _, dup := im.symbols[f.Name]; !dup {
				im.symbols[f.Name] = addr
			}
			im.funcName[addr] = o.Name() + ":" + f.Name
		}
		// Indirect functions bind to the hardware-selected variant;
		// the ifunc resolver runs at load time (IRELATIVE semantics).
		for _, ifn := range o.IFuncs() {
			v := opts.IFuncLevel
			if v >= len(ifn.Variants) {
				v = len(ifn.Variants) - 1
			}
			if v < 0 {
				v = 0
			}
			addr := m.funcAddr[ifn.Variants[v]]
			if _, dup := im.symbols[ifn.Name]; !dup {
				im.symbols[ifn.Name] = addr
			}
		}
	}

	// Every import must resolve somewhere in the global scope, as ld
	// requires at link (or load) time.
	for _, m := range im.modules {
		for _, sym := range m.imports {
			if _, ok := im.symbols[sym]; !ok {
				return nil, fmt.Errorf("linker: %s: undefined symbol %q", m.Name, sym)
			}
		}
	}

	// The dynamic linker's own tables live above all modules.
	im.linkerDataSize = 256 << 10
	im.linkerDataBase = layout.NextLibrary(im.linkerDataSize)

	// Pass 2: materialise instructions and data.
	for id, o := range objs {
		m := im.modules[id]
		if err := im.emitModule(m, o); err != nil {
			return nil, err
		}
	}

	// Pointer initialisers (data relocations): always bound eagerly,
	// as ELF data relocations are processed at load time.
	for id, o := range objs {
		m := im.modules[id]
		for _, pi := range o.PtrInits() {
			target, ok := im.symbols[pi.Sym]
			if !ok {
				return nil, fmt.Errorf("linker: %s: undefined symbol %q in pointer init", o.Name(), pi.Sym)
			}
			im.memory.Write64(m.regionAddr[pi.Region]+pi.Off, target)
		}
	}

	im.buildInstrIndex()
	return im, nil
}

// buildInstrIndex constructs the paged fetch index and the dense
// trampoline index.
func (im *Image) buildInstrIndex() {
	im.ipages = make(map[uint64]*InstrPage)
	for pc, in := range im.instrs {
		pn := pc >> mem.PageShift
		pg := im.ipages[pn]
		if pg == nil {
			pg = new(InstrPage)
			im.ipages[pn] = pg
		}
		pg[pc&(mem.PageSize-1)] = in
	}

	// Number every PLT slot in module load order.  Slot i of a module
	// lives at PLTSlotAddr(i) = PLTBase + (i+1)*PLTSlotBytes; the slot
	// region excludes PLT0 (below) and the ARM lazy stubs (above).
	for _, m := range im.modules {
		if m.PLTBase == 0 || len(m.imports) == 0 {
			continue
		}
		lo := m.PLTSlotAddr(0)
		im.pltSlotRanges = append(im.pltSlotRanges, pltSlotRange{
			lo:    lo,
			hi:    m.PLTSlotAddr(len(m.imports)-1) + PLTSlotBytes,
			first: len(im.trampAddrs),
		})
		for i := range m.imports {
			im.trampAddrs = append(im.trampAddrs, m.PLTSlotAddr(i))
		}
	}
}

// moduleSize returns the total virtual size of a module's text+PLT+
// data span, for layout purposes.
func moduleSize(o *objfile.Object, withPLT bool, imports int) uint64 {
	// Conservative: sized for the larger (ARM) PLT flavour.
	text := uint64(0)
	for _, f := range o.Funcs() {
		text = align(text, 16)
		text += bodySize(f)
	}
	plt := uint64(0)
	if withPLT {
		plt = uint64(imports+1)*PLTSlotBytes + uint64(imports)*armStubBytes
	}
	data := uint64(gotReserved+imports) * 8
	for _, r := range o.Data() {
		data = align(data, 64)
		data += r.Size
	}
	return align(text, PLTSlotBytes) + plt + mem.PageSize + align(data, mem.PageSize) + mem.PageSize
}

// placeModule assigns all intra-module addresses.
func placeModule(m *Module, o *objfile.Object, withPLT, armPLT bool) {
	pc := m.Base
	for _, f := range o.Funcs() {
		pc = align(pc, 16)
		m.funcAddr[f.Name] = pc
		pc += bodySize(f)
	}
	m.TextEnd = pc
	if withPLT {
		m.PLTBase = align(pc, PLTSlotBytes)
		m.PLTEnd = m.PLTBase + uint64(len(m.imports)+1)*PLTSlotBytes
		if armPLT {
			// ARM lazy-binding stubs live after the main slots, one
			// 12-byte stub per import, still inside the PLT section.
			m.PLTEnd += uint64(len(m.imports)) * armStubBytes
		}
		pc = m.PLTEnd
	}
	// Data segment starts on the next page boundary (text and data
	// never share a page, as real loaders map them with different
	// permissions).
	m.DataBase = align(pc, mem.PageSize) + mem.PageSize
	m.GOTBase = m.DataBase
	m.GOTEnd = m.GOTBase + uint64(gotReserved+len(m.imports))*8
	off := m.GOTEnd
	for _, r := range o.Data() {
		off = align(off, 64)
		m.regionAddr[r.Name] = off
		off += r.Size
	}
	m.DataEnd = off
}

func bodySize(f *objfile.Func) uint64 {
	var n uint64
	for _, in := range f.Body {
		n += uint64(isa.DefaultSize(in.Op))
	}
	return n
}

func align(x, a uint64) uint64 { return (x + a - 1) &^ (a - 1) }

// emitModule materialises one module's instructions, PLT, and GOT.
func (im *Image) emitModule(m *Module, o *objfile.Object) error {
	importSlot := make(map[string]int, len(m.imports))
	for i, sym := range m.imports {
		importSlot[sym] = i
	}

	for _, f := range o.Funcs() {
		// Pre-compute each body instruction's address for branch
		// displacement resolution.
		addrs := make([]uint64, len(f.Body)+1)
		pc := m.funcAddr[f.Name]
		for i, in := range f.Body {
			addrs[i] = pc
			pc += uint64(isa.DefaultSize(in.Op))
		}
		addrs[len(f.Body)] = pc

		for i, t := range f.Body {
			in := &isa.Instr{
				Op:   t.Op,
				Size: isa.DefaultSize(t.Op),
				Bias: t.Bias,
				Span: t.Span,
				Val:  t.Val,
			}
			switch t.Op {
			case isa.Call:
				target, err := im.callTarget(m, o, importSlot, t.Sym)
				if err != nil {
					return fmt.Errorf("linker: %s:%s: %w", o.Name(), f.Name, err)
				}
				in.Target = target
				// Patched mode: a call site that would have gone
				// through the PLT was rewritten in the text.
				if im.opts.Mode == BindPatched && !o.Defines(t.Sym) {
					im.recordPatch(m, addrs[i])
				}
			case isa.Jmp, isa.JmpCond:
				in.Target = addrs[i+t.Rel]
			case isa.Load, isa.Store, isa.CallInd:
				if t.Op == isa.Store && t.GOTSym != "" {
					// Runtime re-binding of a GOT entry.
					if im.opts.Mode == BindStatic {
						return fmt.Errorf("linker: %s:%s: rebind of %q requires a GOT (static link has none)",
							o.Name(), f.Name, t.GOTSym)
					}
					slot, ok := importSlot[t.GOTSym]
					if !ok {
						return fmt.Errorf("linker: %s:%s: rebind of %q, not in import table",
							o.Name(), f.Name, t.GOTSym)
					}
					target, ok := im.symbols[t.Sym]
					if !ok {
						return fmt.Errorf("linker: %s:%s: rebind target %q undefined",
							o.Name(), f.Name, t.Sym)
					}
					in.Mem = m.GOTSlotAddr(slot)
					in.Val = target
					break
				}
				base, ok := m.regionAddr[t.Sym]
				if !ok {
					return fmt.Errorf("linker: %s:%s: unknown region %q", o.Name(), f.Name, t.Sym)
				}
				in.Mem = base + t.Off
			}
			if err := in.Validate(); err != nil {
				return fmt.Errorf("linker: %s:%s[%d]: %w", o.Name(), f.Name, i, err)
			}
			im.addInstr(addrs[i], in)
		}
	}

	if im.opts.Mode != BindStatic {
		im.emitPLT(m)
	}
	return nil
}

// callTarget resolves a call-site symbol to its final encoded target.
// Regular intra-module calls are direct; everything else — externals
// and indirect functions, including local ones (§2.4.1) — goes through
// this module's PLT in the dynamic modes.
func (im *Image) callTarget(m *Module, o *objfile.Object, importSlot map[string]int, sym string) (uint64, error) {
	if _, isIFunc := o.IFuncByName(sym); !isIFunc {
		if addr, ok := m.funcAddr[sym]; ok {
			return addr, nil // intra-module: always direct
		}
	}
	switch im.opts.Mode {
	case BindStatic, BindPatched:
		addr, ok := im.symbols[sym]
		if !ok {
			return 0, fmt.Errorf("undefined symbol %q", sym)
		}
		return addr, nil
	default: // BindLazy, BindNow: through this module's PLT
		slot, ok := importSlot[sym]
		if !ok {
			return 0, fmt.Errorf("symbol %q not in import table", sym)
		}
		if _, defined := im.symbols[sym]; !defined {
			return 0, fmt.Errorf("undefined symbol %q", sym)
		}
		return m.PLTSlotAddr(slot), nil
	}
}

// emitPLT materialises the module's PLT slots and initial GOT
// contents, in the configured trampoline flavour.
func (im *Image) emitPLT(m *Module) {
	if im.opts.PLT == PLTARM {
		im.emitARMPLT(m)
		return
	}
	// PLT0: push module id; invoke the resolver.
	plt0 := m.PLTBase
	im.addInstr(plt0, &isa.Instr{Op: isa.Push, Size: isa.SizePush, Val: uint64(m.ID), PLT: true})
	im.addInstr(plt0+isa.SizePush, &isa.Instr{Op: isa.Resolve, Size: isa.SizeJmpMem, PLT: true})

	for i, sym := range m.imports {
		slot := m.PLTSlotAddr(i)
		got := m.GOTSlotAddr(i)
		// jmp *(got); push reloc; jmp plt0
		im.addInstr(slot, &isa.Instr{Op: isa.JmpMem, Size: isa.SizeJmpMem, Mem: got, PLT: true})
		im.addInstr(slot+isa.SizeJmpMem, &isa.Instr{Op: isa.Push, Size: isa.SizePush, Val: uint64(i), PLT: true})
		im.addInstr(slot+isa.SizeJmpMem+isa.SizePush, &isa.Instr{Op: isa.Jmp, Size: isa.SizeJmp, Target: plt0, PLT: true})
		im.trampolineSym[slot] = sym

		im.writeGOT(got, im.initialGOTWord(m, i, sym))
	}
}

// initialGOTWord returns the load-time value of import slot i's GOT
// entry: the lazy re-entry point into the PLT (x86) or stub (ARM) for
// BindLazy, or the final symbol address otherwise.
func (im *Image) initialGOTWord(m *Module, i int, sym string) uint64 {
	if im.opts.Mode != BindLazy {
		return im.symbols[sym] // BindNow, BindPatched: eager
	}
	return im.lazyGOTWord(m, i)
}

// emitARMPLT materialises ARM-flavoured trampolines (paper Fig. 2b):
// two address-forming adds and an `ldr pc, [got]`, all 4-byte
// instructions.  Lazy binding goes through a per-import stub (push
// reloc; push module; resolve) after the slots.
func (im *Image) emitARMPLT(m *Module) {
	stubBase := m.PLTBase + uint64(len(m.imports)+1)*PLTSlotBytes
	for i, sym := range m.imports {
		slot := m.PLTSlotAddr(i)
		got := m.GOTSlotAddr(i)
		im.addInstr(slot, &isa.Instr{Op: isa.ALU, Size: 4, PLT: true})
		im.addInstr(slot+4, &isa.Instr{Op: isa.ALU, Size: 4, PLT: true})
		im.addInstr(slot+8, &isa.Instr{Op: isa.JmpMem, Size: 4, Mem: got, PLT: true})
		im.trampolineSym[slot] = sym

		stub := stubBase + uint64(i)*armStubBytes
		im.addInstr(stub, &isa.Instr{Op: isa.Push, Size: 4, Val: uint64(i), PLT: true})
		im.addInstr(stub+4, &isa.Instr{Op: isa.Push, Size: 4, Val: uint64(m.ID), PLT: true})
		im.addInstr(stub+8, &isa.Instr{Op: isa.Resolve, Size: 4, PLT: true})

		im.writeGOT(got, im.initialGOTWord(m, i, sym))
	}
}

// recordPatch notes a rewritten call site for §5.5 accounting.
func (im *Image) recordPatch(m *Module, callAddr uint64) {
	im.patch.CallSites++
	page := mem.PageBase(callAddr)
	key := fmt.Sprintf("%s|%d", m.Name, page)
	if !im.patchedPageSeen(key) {
		im.patch.PagesTouched++
		im.patch.PagesByModule[m.Name]++
	}
}

// patchedPageSeen tracks distinct (module, page) pairs.
func (im *Image) patchedPageSeen(key string) bool {
	if im.patchedPages == nil {
		im.patchedPages = make(map[string]bool)
	}
	if im.patchedPages[key] {
		return true
	}
	im.patchedPages[key] = true
	return false
}
