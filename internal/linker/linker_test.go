package linker

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/objfile"
)

// testProgram builds a tiny app + two libraries:
//
//	app:  main calls libc:write and libx:parse; helper is local.
//	libc: write calls its local sys; parse is not here.
//	libx: parse calls libc:write (inter-library call).
func testProgram() (*objfile.Object, []*objfile.Object) {
	app := objfile.New("app")
	app.AddData("heap", 4096)
	app.NewFunc("main").
		ALU(2).
		Call("helper").
		Call("write").
		Call("parse").
		Halt()
	app.NewFunc("helper").ALU(1).Ret()

	libc := objfile.New("libc")
	libc.AddData("iobuf", 1024)
	libc.NewFunc("write").
		Load("iobuf", 0, 16).
		Call("sys").
		Ret()
	libc.NewFunc("sys").ALU(2).Ret()

	libx := objfile.New("libx")
	libx.NewFunc("parse").
		ALU(3).
		Call("write").
		Ret()
	return app, []*objfile.Object{libc, libx}
}

func mustLink(t *testing.T, opts Options) *Image {
	t.Helper()
	app, libs := testProgram()
	im, err := Link(app, libs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestModeString(t *testing.T) {
	for m, want := range map[BindingMode]string{
		BindLazy: "lazy", BindNow: "now", BindStatic: "static", BindPatched: "patched",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
	if !strings.Contains(BindingMode(9).String(), "9") {
		t.Error("unknown mode String")
	}
}

func TestLazyLinkBasics(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy})
	mainAddr, ok := im.Symbol("main")
	if !ok {
		t.Fatal("main not resolved")
	}
	in, ok := im.InstrAt(mainAddr)
	if !ok || in.Op != isa.ALU {
		t.Fatalf("InstrAt(main) = %+v, %v", in, ok)
	}
	if name := im.FuncName(mainAddr); name != "app:main" {
		t.Errorf("FuncName = %q", name)
	}

	app := im.Modules()[0]
	if got := app.Imports(); len(got) != 2 || got[0] != "write" || got[1] != "parse" {
		t.Fatalf("app imports = %v", got)
	}

	// Walk main: alu, alu, call helper (direct), call write (PLT),
	// call parse (PLT).
	pc := mainAddr
	var calls []*isa.Instr
	for i := 0; i < 16; i++ {
		in, ok := im.InstrAt(pc)
		if !ok {
			t.Fatalf("no instruction at %#x", pc)
		}
		if in.Op == isa.Call {
			calls = append(calls, in)
		}
		if in.Op == isa.Halt {
			break
		}
		pc += uint64(in.Size)
	}
	if len(calls) != 3 {
		t.Fatalf("found %d calls in main, want 3", len(calls))
	}
	helperAddr, _ := im.Symbol("helper")
	if calls[0].Target != helperAddr {
		t.Errorf("intra-module call target = %#x, want helper %#x", calls[0].Target, helperAddr)
	}
	if calls[1].Target != app.PLTSlotAddr(0) {
		t.Errorf("external call target = %#x, want PLT slot %#x", calls[1].Target, app.PLTSlotAddr(0))
	}
	if calls[2].Target != app.PLTSlotAddr(1) {
		t.Errorf("external call target = %#x, want PLT slot %#x", calls[2].Target, app.PLTSlotAddr(1))
	}
	if !im.InPLT(app.PLTSlotAddr(0)) || im.InPLT(mainAddr) {
		t.Error("InPLT misclassifies")
	}
	if im.TrampolineSym(app.PLTSlotAddr(0)) != "write" {
		t.Errorf("TrampolineSym = %q", im.TrampolineSym(app.PLTSlotAddr(0)))
	}
}

func TestLazyGOTPointsBackIntoPLT(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy})
	app := im.Modules()[0]
	for i := range app.Imports() {
		got := im.Memory().Read64(app.GOTSlotAddr(i))
		want := app.PLTSlotAddr(i) + isa.SizeJmpMem // the push
		if got != want {
			t.Errorf("GOT[%d] = %#x, want PLT push %#x", i, got, want)
		}
	}
	// PLT slot structure: jmp*m, push, jmp plt0.
	slot := app.PLTSlotAddr(0)
	j, _ := im.InstrAt(slot)
	p, _ := im.InstrAt(slot + isa.SizeJmpMem)
	b, _ := im.InstrAt(slot + isa.SizeJmpMem + isa.SizePush)
	if j == nil || j.Op != isa.JmpMem || j.Mem != app.GOTSlotAddr(0) {
		t.Errorf("slot[0] = %+v", j)
	}
	if p == nil || p.Op != isa.Push || p.Val != 0 {
		t.Errorf("slot[6] = %+v", p)
	}
	if b == nil || b.Op != isa.Jmp || b.Target != app.PLTBase {
		t.Errorf("slot[11] = %+v", b)
	}
	// PLT0: push modID, resolve.
	p0, _ := im.InstrAt(app.PLTBase)
	r0, _ := im.InstrAt(app.PLTBase + isa.SizePush)
	if p0 == nil || p0.Op != isa.Push || p0.Val != 0 {
		t.Errorf("plt0 = %+v", p0)
	}
	if r0 == nil || r0.Op != isa.Resolve {
		t.Errorf("plt0+5 = %+v", r0)
	}
}

func TestEagerGOTHoldsFinalAddresses(t *testing.T) {
	im := mustLink(t, Options{Mode: BindNow})
	app := im.Modules()[0]
	writeAddr, _ := im.Symbol("write")
	if got := im.Memory().Read64(app.GOTSlotAddr(0)); got != writeAddr {
		t.Errorf("eager GOT[0] = %#x, want %#x", got, writeAddr)
	}
}

func TestStaticLinkHasNoPLT(t *testing.T) {
	im := mustLink(t, Options{Mode: BindStatic})
	if im.Trampolines() != 0 {
		t.Errorf("static image has %d trampolines", im.Trampolines())
	}
	for _, m := range im.Modules() {
		if m.PLTBase != 0 {
			t.Errorf("module %s has a PLT in static mode", m.Name)
		}
	}
	// External calls are direct.
	mainAddr, _ := im.Symbol("main")
	writeAddr, _ := im.Symbol("write")
	pc := mainAddr
	foundDirect := false
	for i := 0; i < 16; i++ {
		in, ok := im.InstrAt(pc)
		if !ok {
			break
		}
		if in.Op == isa.Call && in.Target == writeAddr {
			foundDirect = true
		}
		if in.Op == isa.Halt {
			break
		}
		pc += uint64(in.Size)
	}
	if !foundDirect {
		t.Error("static mode did not emit a direct call to write")
	}
}

func TestPatchedMode(t *testing.T) {
	im := mustLink(t, Options{Mode: BindPatched, ASLR: true})
	if im.Options().ASLR {
		t.Error("patched mode must disable ASLR")
	}
	// Calls are direct but the PLT still exists in the image.
	if im.Trampolines() == 0 {
		t.Error("patched image dropped its PLT")
	}
	mainAddr, _ := im.Symbol("main")
	writeAddr, _ := im.Symbol("write")
	pc := mainAddr
	direct := false
	for i := 0; i < 16; i++ {
		in, ok := im.InstrAt(pc)
		if !ok {
			break
		}
		if in.Op == isa.Call && in.Target == writeAddr {
			direct = true
		}
		if in.Op == isa.Halt {
			break
		}
		pc += uint64(in.Size)
	}
	if !direct {
		t.Error("patched mode did not rewrite the call site")
	}
	st := im.Patch()
	// app has 2 external call sites, libc 0 (sys is local), libx 1.
	if st.CallSites != 3 {
		t.Errorf("CallSites = %d, want 3", st.CallSites)
	}
	if st.PagesTouched < 1 || st.PagesTouched > 3 {
		t.Errorf("PagesTouched = %d", st.PagesTouched)
	}
	// Libraries must be within rel32 reach of the executable (§4.3).
	for _, m := range im.Modules()[1:] {
		if m.Base-TextBaseForTest >= 1<<31 {
			t.Errorf("library %s at %#x beyond 2GiB reach", m.Name, m.Base)
		}
	}
}

// TextBaseForTest mirrors mmu.TextBase without importing it here.
const TextBaseForTest = 0x400000

func TestInterLibraryCallUsesCallersPLT(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy})
	libx := im.Modules()[2]
	if len(libx.Imports()) != 1 || libx.Imports()[0] != "write" {
		t.Fatalf("libx imports = %v", libx.Imports())
	}
	parseAddr, _ := im.Symbol("parse")
	pc := parseAddr
	found := false
	for i := 0; i < 8; i++ {
		in, ok := im.InstrAt(pc)
		if !ok {
			break
		}
		if in.Op == isa.Call {
			if in.Target != libx.PLTSlotAddr(0) {
				t.Errorf("inter-library call = %#x, want libx PLT %#x", in.Target, libx.PLTSlotAddr(0))
			}
			found = true
		}
		if in.Op == isa.Ret {
			break
		}
		pc += uint64(in.Size)
	}
	if !found {
		t.Error("no call found in parse")
	}
}

func TestResolve(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy})
	app := im.Modules()[0]
	gotAddr, funcAddr, err := im.Resolve(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeAddr, _ := im.Symbol("write")
	if gotAddr != app.GOTSlotAddr(0) || funcAddr != writeAddr {
		t.Errorf("Resolve = %#x, %#x; want %#x, %#x", gotAddr, funcAddr, app.GOTSlotAddr(0), writeAddr)
	}
	if im.Resolutions() != 1 {
		t.Errorf("Resolutions = %d", im.Resolutions())
	}
	// Error paths.
	if _, _, err := im.Resolve(99, 0); err == nil {
		t.Error("bad module id accepted")
	}
	if _, _, err := im.Resolve(0, 99); err == nil {
		t.Error("bad reloc accepted")
	}
}

func TestUndefinedSymbol(t *testing.T) {
	app := objfile.New("app")
	app.NewFunc("main").Call("missing").Halt()
	for _, mode := range []BindingMode{BindLazy, BindStatic, BindPatched} {
		if _, err := Link(app, nil, Options{Mode: mode}); err == nil {
			t.Errorf("mode %v: undefined symbol accepted", mode)
		} else if !strings.Contains(err.Error(), "missing") {
			t.Errorf("mode %v: error %q does not name the symbol", mode, err)
		}
	}
}

func TestFirstDefinitionWins(t *testing.T) {
	app := objfile.New("app")
	app.NewFunc("main").Call("dup").Halt()
	lib1 := objfile.New("lib1")
	lib1.NewFunc("dup").ALU(1).Ret()
	lib2 := objfile.New("lib2")
	lib2.NewFunc("dup").ALU(2).Ret()
	im, err := Link(app, []*objfile.Object{lib1, lib2}, Options{Mode: BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	dup, _ := im.Symbol("dup")
	if got := im.FuncName(dup); got != "lib1:dup" {
		t.Errorf("dup bound to %q, want lib1:dup", got)
	}
}

func TestBranchDisplacementResolution(t *testing.T) {
	app := objfile.New("app")
	f := app.NewFunc("main")
	f.ALU(1).CondSkip(50, 2).ALU(2).ALU(1).Halt()
	// Body: [alu, jcc(+3), alu, alu, alu, halt]; jcc at idx 1 targets idx 4.
	im, err := Link(app, nil, Options{Mode: BindStatic})
	if err != nil {
		t.Fatal(err)
	}
	mainAddr, _ := im.Symbol("main")
	jccAddr := mainAddr + isa.SizeALU
	jcc, ok := im.InstrAt(jccAddr)
	if !ok || jcc.Op != isa.JmpCond {
		t.Fatalf("no jcc at %#x", jccAddr)
	}
	want := jccAddr + isa.SizeJmpCond + 2*isa.SizeALU
	if jcc.Target != want {
		t.Errorf("jcc target = %#x, want %#x", jcc.Target, want)
	}
}

func TestPtrInitWritten(t *testing.T) {
	app := objfile.New("app")
	app.AddData("vtable", 64)
	app.InitPtr("vtable", 8, "virt")
	app.NewFunc("main").CallPtr("vtable", 8).Halt()
	lib := objfile.New("lib")
	lib.NewFunc("virt").Ret()
	im, err := Link(app, []*objfile.Object{lib}, Options{Mode: BindLazy})
	if err != nil {
		t.Fatal(err)
	}
	virtAddr, _ := im.Symbol("virt")
	mainAddr, _ := im.Symbol("main")
	callInd, _ := im.InstrAt(mainAddr)
	if callInd.Op != isa.CallInd {
		t.Fatalf("main[0] = %v", callInd.Op)
	}
	if got := im.Memory().Read64(callInd.Mem); got != virtAddr {
		t.Errorf("vtable slot = %#x, want %#x", got, virtAddr)
	}
}

func TestLayoutInvariants(t *testing.T) {
	for _, mode := range []BindingMode{BindLazy, BindNow, BindStatic, BindPatched} {
		im := mustLink(t, Options{Mode: mode, Seed: 3})
		type span struct {
			name   string
			lo, hi uint64
		}
		var spans []span
		for _, m := range im.Modules() {
			spans = append(spans, span{m.Name, m.Base, m.DataEnd})
			// Text/PLT and data never share a page.
			textEnd := m.TextEnd
			if m.PLTEnd > textEnd {
				textEnd = m.PLTEnd
			}
			if mem.PageNum(textEnd) >= mem.PageNum(m.DataBase) {
				t.Errorf("%v %s: data page %#x not above text page %#x", mode, m.Name, m.DataBase, textEnd)
			}
			// PLT slots are 16-byte spaced.
			if m.PLTBase%16 != 0 {
				t.Errorf("%v %s: PLT base %#x misaligned", mode, m.Name, m.PLTBase)
			}
		}
		for i := 1; i < len(spans); i++ {
			for j := 0; j < i; j++ {
				a, b := spans[i], spans[j]
				if a.lo < b.hi && b.lo < a.hi {
					t.Errorf("%v: modules %s and %s overlap", mode, a.name, b.name)
				}
			}
		}
		if im.TextBytes() == 0 {
			t.Errorf("%v: TextBytes = 0", mode)
		}
	}
}

func TestASLRChangesLibraryBases(t *testing.T) {
	app, libs := testProgram()
	im1, err := Link(app, libs, Options{Mode: BindLazy, ASLR: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	im2, err := Link(app, libs, Options{Mode: BindLazy, ASLR: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if im1.Modules()[1].Base == im2.Modules()[1].Base {
		t.Error("ASLR did not vary library base across seeds")
	}
	// Same seed: identical layout (determinism).
	im3, err := Link(app, libs, Options{Mode: BindLazy, ASLR: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if im1.Modules()[1].Base != im3.Modules()[1].Base {
		t.Error("same seed produced different layout")
	}
}

func TestModuleOfAndLinkerData(t *testing.T) {
	im := mustLink(t, Options{Mode: BindLazy})
	mainAddr, _ := im.Symbol("main")
	if m := im.ModuleOf(mainAddr); m == nil || m.Name != "app" {
		t.Errorf("ModuleOf(main) = %v", m)
	}
	if m := im.ModuleOf(0x1); m != nil {
		t.Errorf("ModuleOf(0x1) = %v, want nil", m)
	}
	base, size := im.LinkerData()
	if base == 0 || size == 0 {
		t.Error("linker data region missing")
	}
	if m := im.ModuleOf(base); m != nil {
		t.Error("linker data overlaps a module")
	}
	if im.StackTop() == 0 {
		t.Error("no stack")
	}
}

func TestEveryEmittedInstructionValidates(t *testing.T) {
	for _, mode := range []BindingMode{BindLazy, BindNow, BindStatic, BindPatched} {
		im := mustLink(t, Options{Mode: mode})
		for pc, in := range im.instrs {
			if err := in.Validate(); err != nil {
				t.Errorf("%v: instr at %#x invalid: %v", mode, pc, err)
			}
		}
	}
}
