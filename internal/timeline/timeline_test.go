package timeline

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
)

// sample builds a cumulative IntervalSample with every field derived
// from n so diffs are distinguishable per field.
func sample(n uint64) cpu.IntervalSample {
	var s cpu.IntervalSample
	s.Counters.Instructions = 100 * n
	s.Counters.Cycles = 150 * n
	s.Counters.TrampCalls = 2 * n
	s.Counters.TrampSkips = n
	s.Counters.TrampInstrs = 4 * n
	s.Counters.Resolutions = n
	s.Counters.Stores = 5 * n
	s.Counters.ABTBRedirects = 3 * n
	s.Counters.ABTBFlushes = n
	s.Counters.Mispredicts = 6 * n
	s.Counters.L1IMisses = 7 * n
	s.Counters.L1DMisses = 8 * n
	s.Counters.L2Misses = 9 * n
	s.Counters.ITLBMisses = 10 * n
	s.Counters.DTLBMisses = 11 * n
	s.ABTBInserts = 12 * n
	s.BloomLookups = 13 * n
	s.BloomFlushHits = 14 * n
	s.GOTStores = 15 * n
	return s
}

// TestDiffCoversEveryField walks Point by reflection: every field of
// the delta between sample(1) and sample(2) must be non-zero, proving
// diff maps each series and none is forgotten.
func TestDiffCoversEveryField(t *testing.T) {
	p := diff(sample(2), sample(1))
	v := reflect.ValueOf(p)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Uint() == 0 {
			t.Errorf("Point.%s = 0 after diff of fully-populated samples; field not mapped?",
				v.Type().Field(i).Name)
		}
	}
}

// TestCollectorCompaction drives a collector far past its cap and
// checks the bound holds, the interval doubles per compaction, and no
// counts are lost (total deltas conserved).
func TestCollectorCompaction(t *testing.T) {
	co := NewCollector(MinInterval, 8)
	const total = 40 // 5× the cap
	for i := uint64(1); i <= total; i++ {
		co.observe(sample(i))
	}
	s := co.Close()
	if s == nil {
		t.Fatal("Close returned nil series")
	}
	if len(s.Points) > 8 {
		t.Errorf("len(Points) = %d, want <= cap 8", len(s.Points))
	}
	if s.BaseInterval != MinInterval {
		t.Errorf("BaseInterval = %d, want %d", s.BaseInterval, MinInterval)
	}
	if s.Interval <= s.BaseInterval || s.Interval%s.BaseInterval != 0 {
		t.Errorf("Interval = %d, want a 2^k multiple of base %d", s.Interval, s.BaseInterval)
	}
	var instr, stores uint64
	for _, p := range s.Points {
		instr += p.Instructions
		stores += p.Stores
	}
	// Cumulative sample(total) minus origin sample(0)=zero.
	if want := 100 * uint64(total); instr != want {
		t.Errorf("sum of Instructions deltas = %d, want %d (compaction lost counts)", instr, want)
	}
	if want := 5 * uint64(total); stores != want {
		t.Errorf("sum of Stores deltas = %d, want %d", stores, want)
	}
}

// TestCollectorEmpty checks a collector that never saw a sample (and
// whose final flush is empty) closes to nil.
func TestCollectorEmpty(t *testing.T) {
	if s := NewCollector(0, 0).Close(); s != nil {
		t.Errorf("empty collector closed to %+v, want nil", s)
	}
}

// TestCollectorDefaults checks parameter clamping.
func TestCollectorDefaults(t *testing.T) {
	co := NewCollector(0, 0)
	if co.interval != DefaultInterval || co.maxPoints != DefaultMaxPoints {
		t.Errorf("defaults = (%d, %d), want (%d, %d)",
			co.interval, co.maxPoints, DefaultInterval, DefaultMaxPoints)
	}
	co = NewCollector(1, 3)
	if co.interval != MinInterval {
		t.Errorf("interval 1 clamped to %d, want MinInterval %d", co.interval, MinInterval)
	}
	if co.maxPoints != 4 {
		t.Errorf("maxPoints 3 rounded to %d, want 4 (even)", co.maxPoints)
	}
}

// TestMergeRescales merges a fine series with a coarse one: output is
// on the coarse grid and conserves totals.
func TestMergeRescales(t *testing.T) {
	fine := &Series{Interval: 4, BaseInterval: 4, Points: []Point{
		{Instructions: 4, Stores: 1}, {Instructions: 4, Stores: 2},
		{Instructions: 4, Stores: 3}, {Instructions: 4, Stores: 4},
	}}
	coarse := &Series{Interval: 8, BaseInterval: 4, Points: []Point{
		{Instructions: 8, Stores: 10}, {Instructions: 8, Stores: 20},
	}}
	m := Merge([]*Series{fine, nil, coarse})
	if m == nil {
		t.Fatal("Merge returned nil")
	}
	if m.Interval != 8 || m.BaseInterval != 4 {
		t.Errorf("merged grid = (%d, %d), want (8, 4)", m.Interval, m.BaseInterval)
	}
	want := []Point{
		{Instructions: 4 + 4 + 8, Stores: 1 + 2 + 10},
		{Instructions: 4 + 4 + 8, Stores: 3 + 4 + 20},
	}
	if !reflect.DeepEqual(m.Points, want) {
		t.Errorf("merged points = %+v, want %+v", m.Points, want)
	}
	if Merge([]*Series{nil, {}}) != nil {
		t.Error("Merge of nil/empty series != nil")
	}
}

// TestWriteCSVMatchesJSON checks the CSV header covers exactly the
// Point JSON fields (same names, same order) plus the leading index,
// and that a round-trip row count matches.
func TestWriteCSVMatchesJSON(t *testing.T) {
	var names []string
	pt := reflect.TypeOf(Point{})
	for i := 0; i < pt.NumField(); i++ {
		tag := strings.Split(pt.Field(i).Tag.Get("json"), ",")[0]
		names = append(names, tag)
	}
	if want := append([]string{"point"}, names...); !reflect.DeepEqual(csvHeader, want) {
		t.Errorf("csvHeader = %v\nwant        %v", csvHeader, want)
	}

	s := &Series{Interval: 4, BaseInterval: 4, Points: []Point{{Instructions: 4}, {Instructions: 2}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(s.Points) {
		t.Errorf("CSV has %d lines, want header + %d points", len(lines), len(s.Points))
	}
	if err := WriteCSV(&buf, nil); err == nil {
		t.Error("WriteCSV(nil) returned nil error")
	}
}

// TestSeriesJSONRoundTrip checks exact uint64 round-tripping through
// encoding/json, which the store persistence path relies on.
func TestSeriesJSONRoundTrip(t *testing.T) {
	s := &Series{Interval: 1 << 40, BaseInterval: 1 << 16, Points: []Point{
		{Instructions: 1<<63 + 7, Cycles: 1<<53 + 1},
	}}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Series
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, s) {
		t.Errorf("round-trip changed series:\n  in  %+v\n  out %+v", s, got)
	}
}
