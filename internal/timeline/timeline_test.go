package timeline

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/linker"
	"repro/internal/objfile"
)

// sample builds a cumulative IntervalSample with every field derived
// from n so diffs are distinguishable per field.
func sample(n uint64) cpu.IntervalSample {
	var s cpu.IntervalSample
	s.Counters.Instructions = 100 * n
	s.Counters.Cycles = 150 * n
	s.Counters.TrampCalls = 2 * n
	s.Counters.TrampSkips = n
	s.Counters.TrampInstrs = 4 * n
	s.Counters.Resolutions = n
	s.Counters.Stores = 5 * n
	s.Counters.ABTBRedirects = 3 * n
	s.Counters.ABTBFlushes = n
	s.Counters.Mispredicts = 6 * n
	s.Counters.L1IMisses = 7 * n
	s.Counters.L1DMisses = 8 * n
	s.Counters.L2Misses = 9 * n
	s.Counters.ITLBMisses = 10 * n
	s.Counters.DTLBMisses = 11 * n
	s.ABTBInserts = 12 * n
	s.BloomLookups = 13 * n
	s.BloomFlushHits = 14 * n
	s.GOTStores = 15 * n
	s.PageFaults = 16 * n
	return s
}

// TestDiffCoversEveryField walks Point by reflection: every field of
// the delta between sample(1) and sample(2) must be non-zero, proving
// diff maps each series and none is forgotten.
func TestDiffCoversEveryField(t *testing.T) {
	p := diff(sample(2), sample(1))
	v := reflect.ValueOf(p)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Uint() == 0 {
			t.Errorf("Point.%s = 0 after diff of fully-populated samples; field not mapped?",
				v.Type().Field(i).Name)
		}
	}
}

// TestCollectorCompaction drives a collector far past its cap and
// checks the bound holds, the interval doubles per compaction, and no
// counts are lost (total deltas conserved).
func TestCollectorCompaction(t *testing.T) {
	co := NewCollector(MinInterval, 8)
	const total = 40 // 5× the cap
	for i := uint64(1); i <= total; i++ {
		co.observe(sample(i))
	}
	s := co.Close()
	if s == nil {
		t.Fatal("Close returned nil series")
	}
	if len(s.Points) > 8 {
		t.Errorf("len(Points) = %d, want <= cap 8", len(s.Points))
	}
	if s.BaseInterval != MinInterval {
		t.Errorf("BaseInterval = %d, want %d", s.BaseInterval, MinInterval)
	}
	if s.Interval <= s.BaseInterval || s.Interval%s.BaseInterval != 0 {
		t.Errorf("Interval = %d, want a 2^k multiple of base %d", s.Interval, s.BaseInterval)
	}
	var instr, stores uint64
	for _, p := range s.Points {
		instr += p.Instructions
		stores += p.Stores
	}
	// Cumulative sample(total) minus origin sample(0)=zero.
	if want := 100 * uint64(total); instr != want {
		t.Errorf("sum of Instructions deltas = %d, want %d (compaction lost counts)", instr, want)
	}
	if want := 5 * uint64(total); stores != want {
		t.Errorf("sum of Stores deltas = %d, want %d", stores, want)
	}
}

// TestCollectorEmpty checks a collector that never saw a sample (and
// whose final flush is empty) closes to nil.
func TestCollectorEmpty(t *testing.T) {
	if s := NewCollector(0, 0).Close(); s != nil {
		t.Errorf("empty collector closed to %+v, want nil", s)
	}
}

// TestCollectorDefaults checks parameter clamping.
func TestCollectorDefaults(t *testing.T) {
	co := NewCollector(0, 0)
	if co.interval != DefaultInterval || co.maxPoints != DefaultMaxPoints {
		t.Errorf("defaults = (%d, %d), want (%d, %d)",
			co.interval, co.maxPoints, DefaultInterval, DefaultMaxPoints)
	}
	co = NewCollector(1, 3)
	if co.interval != MinInterval {
		t.Errorf("interval 1 clamped to %d, want MinInterval %d", co.interval, MinInterval)
	}
	if co.maxPoints != 4 {
		t.Errorf("maxPoints 3 rounded to %d, want 4 (even)", co.maxPoints)
	}
}

// TestMergeRescales merges a fine series with a coarse one: output is
// on the coarse grid and conserves totals.
func TestMergeRescales(t *testing.T) {
	fine := &Series{Interval: 4, BaseInterval: 4, Points: []Point{
		{Instructions: 4, Stores: 1}, {Instructions: 4, Stores: 2},
		{Instructions: 4, Stores: 3}, {Instructions: 4, Stores: 4},
	}}
	coarse := &Series{Interval: 8, BaseInterval: 4, Points: []Point{
		{Instructions: 8, Stores: 10}, {Instructions: 8, Stores: 20},
	}}
	m, err := Merge([]*Series{fine, nil, coarse})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("Merge returned nil")
	}
	if m.Interval != 8 || m.BaseInterval != 4 {
		t.Errorf("merged grid = (%d, %d), want (8, 4)", m.Interval, m.BaseInterval)
	}
	want := []Point{
		{Instructions: 4 + 4 + 8, Stores: 1 + 2 + 10},
		{Instructions: 4 + 4 + 8, Stores: 3 + 4 + 20},
	}
	if !reflect.DeepEqual(m.Points, want) {
		t.Errorf("merged points = %+v, want %+v", m.Points, want)
	}
	if m, err := Merge([]*Series{nil, {}}); err != nil || m != nil {
		t.Errorf("Merge of nil/empty series = (%v, %v), want (nil, nil)", m, err)
	}
}

// TestMergeIncompatibleIntervals pins the typed error: intervals that
// do not share a common grid (96 is not a multiple of 64) must be
// rejected instead of silently truncating the group ratio — the old
// behaviour folded 96-wide points onto a 64-wide grid one-for-one,
// misaligning every point after the first.
func TestMergeIncompatibleIntervals(t *testing.T) {
	a := &Series{Interval: 64, BaseInterval: 64, Points: []Point{{Instructions: 64}}}
	b := &Series{Interval: 96, BaseInterval: 96, Points: []Point{{Instructions: 96}}}
	if _, err := Merge([]*Series{a, b}); !errors.Is(err, ErrIncompatibleIntervals) {
		t.Fatalf("Merge(64, 96) error = %v, want ErrIncompatibleIntervals", err)
	}
	z := &Series{Interval: 0, Points: []Point{{Instructions: 1}}}
	if _, err := Merge([]*Series{z}); !errors.Is(err, ErrIncompatibleIntervals) {
		t.Fatalf("Merge(interval 0) error = %v, want ErrIncompatibleIntervals", err)
	}
}

// gridImage links a small deterministic two-module program whose main
// retires a few hundred instructions per run, for collector/CPU
// integration tests.
func gridImage(t *testing.T) *linker.Image {
	t.Helper()
	app := objfile.New("app")
	app.AddData("d", 4096)
	lib := objfile.New("lib")
	lib.AddData("ld", 4096)
	f := lib.NewFunc("work")
	f.ALU(12)
	f.Load("ld", 0, 64)
	f.Store("ld", 512, 32, 7)
	f.Ret()
	m := app.NewFunc("main")
	for i := 0; i < 8; i++ {
		m.Call("work")
		m.ALU(6)
		m.Load("d", 64, 32)
	}
	m.Halt()
	im, err := linker.Link(app, []*objfile.Object{lib}, linker.Options{Mode: linker.BindLazy, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// TestCompactionGridDeterminism is the sampler re-arm regression test:
// a collector that compacted mid-run (doubling its interval, possibly
// several times) must emit exactly the series a fresh collector
// sampling at the final interval from the start would.  Before the
// absolute-grid re-arm in cpu.SetSampleInterval, each compaction
// re-armed relative to the current instruction count, carrying the
// boundary-crossing overshoot onto every later boundary — the two
// series' points then disagree.
func TestCompactionGridDeterminism(t *testing.T) {
	run := func(interval uint64, maxPoints int) *Series {
		c := cpu.New(gridImage(t), cpu.EnhancedConfig())
		co := NewCollector(interval, maxPoints)
		co.Attach(c)
		for i := 0; i < 200; i++ {
			if _, err := c.RunSymbol("main", 0); err != nil {
				t.Fatal(err)
			}
		}
		return co.Close()
	}
	compacted := run(MinInterval, 4)
	if compacted == nil || compacted.Interval <= compacted.BaseInterval {
		t.Fatalf("run too short to compact: %+v", compacted)
	}
	fresh := run(compacted.Interval, 1<<20)
	if fresh.Interval != compacted.Interval {
		t.Fatalf("fresh series interval %d, want %d", fresh.Interval, compacted.Interval)
	}
	if !reflect.DeepEqual(compacted.Points, fresh.Points) {
		t.Fatalf("compacted series drifted off the sampling grid:\ncompacted (%d pts): %+v\nfresh     (%d pts): %+v",
			len(compacted.Points), compacted.Points[:min(3, len(compacted.Points))],
			len(fresh.Points), fresh.Points[:min(3, len(fresh.Points))])
	}
	// And the compacted output must merge cleanly with an un-compacted
	// series from the same base grid (intervals base×2^k always share
	// a grid), conserving totals.
	uncompacted := run(MinInterval, 1<<20)
	merged, err := Merge([]*Series{compacted, uncompacted})
	if err != nil {
		t.Fatal(err)
	}
	var one, two uint64
	for _, p := range compacted.Points {
		one += p.Instructions
	}
	for _, p := range merged.Points {
		two += p.Instructions
	}
	if two != 2*one {
		t.Fatalf("merge lost counts: %d, want %d", two, 2*one)
	}
	want := make([]Point, len(compacted.Points))
	for i, p := range compacted.Points {
		p.add(compacted.Points[i]) // the un-compacted run regrouped == compacted
		want[i] = p
	}
	if !reflect.DeepEqual(merged.Points, want) {
		t.Fatal("rescaled un-compacted series misaligned against compacted grid")
	}
}

// TestWriteCSVMatchesJSON checks the CSV header covers exactly the
// Point JSON fields (same names, same order) plus the leading index,
// and that a round-trip row count matches.
func TestWriteCSVMatchesJSON(t *testing.T) {
	var names []string
	pt := reflect.TypeOf(Point{})
	for i := 0; i < pt.NumField(); i++ {
		tag := strings.Split(pt.Field(i).Tag.Get("json"), ",")[0]
		names = append(names, tag)
	}
	if want := append([]string{"point"}, names...); !reflect.DeepEqual(csvHeader, want) {
		t.Errorf("csvHeader = %v\nwant        %v", csvHeader, want)
	}

	s := &Series{Interval: 4, BaseInterval: 4, Points: []Point{{Instructions: 4}, {Instructions: 2}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(s.Points) {
		t.Errorf("CSV has %d lines, want header + %d points", len(lines), len(s.Points))
	}
	if err := WriteCSV(&buf, nil); err == nil {
		t.Error("WriteCSV(nil) returned nil error")
	}
}

// TestSeriesJSONRoundTrip checks exact uint64 round-tripping through
// encoding/json, which the store persistence path relies on.
func TestSeriesJSONRoundTrip(t *testing.T) {
	s := &Series{Interval: 1 << 40, BaseInterval: 1 << 16, Points: []Point{
		{Instructions: 1<<63 + 7, Cycles: 1<<53 + 1},
	}}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Series
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, s) {
		t.Errorf("round-trip changed series:\n  in  %+v\n  out %+v", s, got)
	}
}
