// Package timeline turns the CPU's interval samples into bounded,
// delta-encoded time series: one Point per sampling interval, each
// holding the counter deltas accrued inside that interval.
//
// The series is bounded by compaction.  A Collector accepts samples at
// the CPU's configured interval; when the point count reaches its cap
// it merges adjacent pairs and doubles the interval (telling the CPU
// to widen its sampling grid to match), so an arbitrarily long run
// produces at most MaxPoints points at interval base×2^k.  Compaction
// is a pure function of the sample stream, which is itself a pure
// function of the job spec — the same spec always yields a
// byte-identical series.
package timeline

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cpu"
)

// DefaultInterval is the default sampling granularity in retired
// instructions (64Ki), chosen so typical jobs (tens of millions of
// instructions) produce a few hundred points before any compaction.
const DefaultInterval = 64 << 10

// MinInterval floors the configurable interval: sampling more often
// than every 4Ki instructions costs kernel exits without adding
// phase-level information.
const MinInterval = 4 << 10

// DefaultMaxPoints bounds a series; must be even so compaction merges
// exact pairs.
const DefaultMaxPoints = 512

// Point holds the counter deltas accrued in one sampling interval.
// Instructions is authoritative for the interval's width: interior
// points cover ≈Interval instructions (boundary overshoot is bounded
// by the resolver footprint), the final point covers whatever remained
// of the measurement window.
type Point struct {
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`

	TrampCalls  uint64 `json:"tramp_calls"`
	TrampSkips  uint64 `json:"tramp_skips"`
	TrampInstrs uint64 `json:"tramp_instrs"`

	Resolutions uint64 `json:"resolutions"`
	GOTStores   uint64 `json:"got_stores"`
	PageFaults  uint64 `json:"page_faults"`
	Stores      uint64 `json:"stores"`

	ABTBHits    uint64 `json:"abtb_hits"`
	ABTBInserts uint64 `json:"abtb_inserts"`
	ABTBFlushes uint64 `json:"abtb_flushes"`

	BloomLookups   uint64 `json:"bloom_lookups"`
	BloomFlushHits uint64 `json:"bloom_flush_hits"`

	Mispredicts uint64 `json:"mispredicts"`

	L1IMisses  uint64 `json:"l1i_misses"`
	L1DMisses  uint64 `json:"l1d_misses"`
	L2Misses   uint64 `json:"l2_misses"`
	ITLBMisses uint64 `json:"itlb_misses"`
	DTLBMisses uint64 `json:"dtlb_misses"`
}

// add accumulates o into p (used by compaction and cross-job merges).
func (p *Point) add(o Point) {
	p.Instructions += o.Instructions
	p.Cycles += o.Cycles
	p.TrampCalls += o.TrampCalls
	p.TrampSkips += o.TrampSkips
	p.TrampInstrs += o.TrampInstrs
	p.Resolutions += o.Resolutions
	p.GOTStores += o.GOTStores
	p.PageFaults += o.PageFaults
	p.Stores += o.Stores
	p.ABTBHits += o.ABTBHits
	p.ABTBInserts += o.ABTBInserts
	p.ABTBFlushes += o.ABTBFlushes
	p.BloomLookups += o.BloomLookups
	p.BloomFlushHits += o.BloomFlushHits
	p.Mispredicts += o.Mispredicts
	p.L1IMisses += o.L1IMisses
	p.L1DMisses += o.L1DMisses
	p.L2Misses += o.L2Misses
	p.ITLBMisses += o.ITLBMisses
	p.DTLBMisses += o.DTLBMisses
}

// diff returns the per-interval deltas between two cumulative samples.
func diff(cur, prev cpu.IntervalSample) Point {
	c, p := cur.Counters, prev.Counters
	return Point{
		Instructions:   c.Instructions - p.Instructions,
		Cycles:         c.Cycles - p.Cycles,
		TrampCalls:     c.TrampCalls - p.TrampCalls,
		TrampSkips:     c.TrampSkips - p.TrampSkips,
		TrampInstrs:    c.TrampInstrs - p.TrampInstrs,
		Resolutions:    c.Resolutions - p.Resolutions,
		GOTStores:      cur.GOTStores - prev.GOTStores,
		PageFaults:     cur.PageFaults - prev.PageFaults,
		Stores:         c.Stores - p.Stores,
		ABTBHits:       c.ABTBRedirects - p.ABTBRedirects,
		ABTBInserts:    cur.ABTBInserts - prev.ABTBInserts,
		ABTBFlushes:    c.ABTBFlushes - p.ABTBFlushes,
		BloomLookups:   cur.BloomLookups - prev.BloomLookups,
		BloomFlushHits: cur.BloomFlushHits - prev.BloomFlushHits,
		Mispredicts:    c.Mispredicts - p.Mispredicts,
		L1IMisses:      c.L1IMisses - p.L1IMisses,
		L1DMisses:      c.L1DMisses - p.L1DMisses,
		L2Misses:       c.L2Misses - p.L2Misses,
		ITLBMisses:     c.ITLBMisses - p.ITLBMisses,
		DTLBMisses:     c.DTLBMisses - p.DTLBMisses,
	}
}

// Series is a finished timeline: Points[i] covers instructions
// [i×Interval, (i+1)×Interval) of the measurement window (the final
// point may be partial — its Instructions delta says how much it
// covers).  Interval is the post-compaction width, BaseInterval the
// width the job was sampled at.
type Series struct {
	Interval     uint64  `json:"interval"`
	BaseInterval uint64  `json:"base_interval"`
	Points       []Point `json:"points"`
}

// Collector accumulates interval samples from one CPU into a bounded
// Series.  Not safe for concurrent use; samples arrive synchronously
// from the CPU's Run loop.
type Collector struct {
	maxPoints int
	interval  uint64
	base      uint64
	cp        *cpu.CPU
	last      cpu.IntervalSample
	points    []Point
}

// NewCollector returns a collector sampling every interval
// instructions (floored at MinInterval; 0 means DefaultInterval) and
// holding at most maxPoints points (rounded up to even; ≤0 means
// DefaultMaxPoints).
func NewCollector(interval uint64, maxPoints int) *Collector {
	if interval == 0 {
		interval = DefaultInterval
	}
	if interval < MinInterval {
		interval = MinInterval
	}
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	if maxPoints%2 != 0 {
		maxPoints++
	}
	return &Collector{maxPoints: maxPoints, interval: interval, base: interval}
}

// Attach hooks the collector to cp's sampler and records the current
// cumulative snapshot as the series origin.  Call it at the start of
// the measurement window (immediately after ResetStats).
func (co *Collector) Attach(cp *cpu.CPU) {
	co.cp = cp
	co.last = cp.IntervalSnapshot()
	cp.SetSampler(co.interval, co.observe)
}

// observe receives one cumulative sample and appends its delta,
// compacting when full.
func (co *Collector) observe(s cpu.IntervalSample) {
	co.points = append(co.points, diff(s, co.last))
	co.last = s
	if len(co.points) >= co.maxPoints {
		co.compact()
	}
}

// compact merges adjacent point pairs, doubles the interval, and
// re-arms the CPU to sample on the widened grid.
func (co *Collector) compact() {
	n := len(co.points) / 2
	for i := 0; i < n; i++ {
		p := co.points[2*i]
		p.add(co.points[2*i+1])
		co.points[i] = p
	}
	// A stray odd point (possible only via Close's final flush) is
	// carried through unmerged.
	if len(co.points)%2 != 0 {
		co.points[n] = co.points[len(co.points)-1]
		n++
	}
	co.points = co.points[:n]
	co.interval *= 2
	if co.cp != nil {
		co.cp.SetSampleInterval(co.interval)
	}
}

// Close flushes the final partial interval, detaches the sampler, and
// returns the finished series (nil if nothing retired).
func (co *Collector) Close() *Series {
	if co.cp != nil {
		final := co.cp.IntervalSnapshot()
		if p := diff(final, co.last); p.Instructions != 0 {
			co.points = append(co.points, p)
			co.last = final
			if len(co.points) > co.maxPoints {
				co.compact()
			}
		}
		co.cp.SetSampler(0, nil)
		co.cp = nil
	}
	if len(co.points) == 0 {
		return nil
	}
	return &Series{Interval: co.interval, BaseInterval: co.base, Points: co.points}
}

// ErrIncompatibleIntervals is returned by Merge when the input series
// cannot be rescaled onto one grid: some series' interval does not
// divide the coarsest interval present, so its points cannot be
// grouped into whole coarse slots.  Collector compaction only ever
// doubles intervals, so series sampled at the same base are always
// compatible; mixed bases (or hand-built series) need not be.
var ErrIncompatibleIntervals = fmt.Errorf("timeline: series intervals do not share a common grid")

// Merge element-wise sums series onto a common grid for cross-job
// aggregation (batch per-config timelines).  All inputs are rescaled
// to the coarsest interval present by grouping runs of
// coarsest/interval points; nil entries are skipped.  Returns nil when
// no input has points, and ErrIncompatibleIntervals (wrapped with the
// offending intervals) when an input's interval does not divide the
// coarsest — a truncated group ratio would silently misalign every
// point after the first.
func Merge(series []*Series) (*Series, error) {
	var coarsest, base uint64
	for _, s := range series {
		if s == nil || len(s.Points) == 0 {
			continue
		}
		if s.Interval == 0 {
			return nil, fmt.Errorf("%w: series with zero interval", ErrIncompatibleIntervals)
		}
		if s.Interval > coarsest {
			coarsest = s.Interval
		}
		if base == 0 || s.BaseInterval < base {
			base = s.BaseInterval
		}
	}
	if coarsest == 0 {
		return nil, nil
	}
	out := &Series{Interval: coarsest, BaseInterval: base}
	for _, s := range series {
		if s == nil || len(s.Points) == 0 {
			continue
		}
		if coarsest%s.Interval != 0 {
			return nil, fmt.Errorf("%w: interval %d does not divide coarsest %d", ErrIncompatibleIntervals, s.Interval, coarsest)
		}
		group := int(coarsest / s.Interval)
		for i, p := range s.Points {
			slot := i / group
			for slot >= len(out.Points) {
				out.Points = append(out.Points, Point{})
			}
			out.Points[slot].add(p)
		}
	}
	return out, nil
}

// csvHeader lists the CSV columns in emission order.
var csvHeader = []string{
	"point", "instructions", "cycles",
	"tramp_calls", "tramp_skips", "tramp_instrs",
	"resolutions", "got_stores", "page_faults", "stores",
	"abtb_hits", "abtb_inserts", "abtb_flushes",
	"bloom_lookups", "bloom_flush_hits",
	"mispredicts",
	"l1i_misses", "l1d_misses", "l2_misses", "itlb_misses", "dtlb_misses",
}

// WriteCSV writes the series as CSV: a comment-free header row then
// one row per point, in column order matching the JSON field order.
func WriteCSV(w io.Writer, s *Series) error {
	if s == nil {
		return fmt.Errorf("timeline: nil series")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for i, p := range s.Points {
		row := []string{
			u(uint64(i)), u(p.Instructions), u(p.Cycles),
			u(p.TrampCalls), u(p.TrampSkips), u(p.TrampInstrs),
			u(p.Resolutions), u(p.GOTStores), u(p.PageFaults), u(p.Stores),
			u(p.ABTBHits), u(p.ABTBInserts), u(p.ABTBFlushes),
			u(p.BloomLookups), u(p.BloomFlushHits),
			u(p.Mispredicts),
			u(p.L1IMisses), u(p.L1DMisses), u(p.L2Misses), u(p.ITLBMisses), u(p.DTLBMisses),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
