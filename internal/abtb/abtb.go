// Package abtb implements the paper's contribution: the alternate
// branch target buffer (ABTB) and its guarding Bloom filter (§3).
//
// The ABTB is a small retire-time table mapping the address of a PLT
// trampoline to the address of the library function the trampoline
// jumps to.  When the back end resolves a call whose target hits the
// ABTB, it reports the *mapped* address as the correct target through
// the ordinary branch-feedback path, so the front end learns to fetch
// the library function directly and the trampoline is never fetched or
// executed again.
//
// Correctness rests on two rules:
//
//  1. Population (§3.2): when a retired call is immediately followed
//     by a retired indirect branch, insert (call target → branch
//     target) into the ABTB and the branch's memory-operand address
//     (the GOT slot) into the Bloom filter.
//  2. Invalidation (§3.1): when a retired store — or a coherence
//     invalidation — hits the Bloom filter, clear the whole ABTB and
//     the filter.  Bloom filters have no false negatives, so a stale
//     mapping can never survive a GOT update.
//
// §3.4's alternate implementation drops the Bloom filter and instead
// relies on software executing an explicit invalidate instruction; the
// ExplicitInvalidate configuration models it.
package abtb

import (
	"fmt"
	"math/bits"

	"repro/internal/bloom"
	"repro/internal/setassoc"
)

// EntryBytes is the hardware cost of one ABTB entry: six bytes for the
// call target (trampoline address) and six for the function address,
// as x86-64 uses 48-bit virtual addresses (§5.3).
const EntryBytes = 12

// Config describes the ABTB hardware.
type Config struct {
	Entries int // total entries; the paper's headline design uses 256
	Ways    int

	// BloomBits and BloomK size the GOT-address Bloom filter.
	BloomBits int
	BloomK    int

	// ExplicitInvalidate selects the §3.4 variant: no Bloom filter;
	// stores never flush the ABTB and software must call Invalidate.
	ExplicitInvalidate bool

	// ASIDs, when true, tags entries with an address-space ID so the
	// ABTB survives context switches, like an ASID-tagged TLB (§3.3).
	// When false, SwitchContext flushes the table.
	ASIDs bool

	// PatternWindow is the number of simple (non-branch,
	// non-memory-writing) instructions allowed between the retiring
	// call and the trampoline's indirect branch.  x86-64 trampolines
	// are a single `jmp *(got)`, so 0 suffices; ARM trampolines are
	// two address-forming adds followed by `ldr pc, [got]` (paper
	// Fig. 2b), needing a window of 2.  The retired instructions must
	// be sequential from the call target, so ordinary calls to
	// functions that begin with computation never alias a trampoline.
	PatternWindow int
}

// DefaultConfig is the paper's headline design point: a 256-entry
// ABTB.  Two parameters the paper leaves unspecified are fixed here
// by the working-set analysis in our ablations:
//
//   - The table is fully associative (Ways == Entries).  Figure 5's
//     trace analysis assumes LRU over the whole table; a low-way
//     ABTB indexed by 16-byte-aligned PLT addresses thrashes far
//     below its capacity.  A 256-entry CAM of 12-byte entries is
//     small by BTB standards.
//   - The Bloom filter is 32 Kbit (4 KiB).  Because entries can
//     never be removed from a Bloom filter, it accumulates one GOT
//     address per trampoline *ever* mapped between flushes — about
//     500 for Apache and 1600 for MySQL.  At the 1 Kbit size one
//     might guess from the paper's storage budget, the filter
//     saturates and then every ordinary store flushes the ABTB
//     (ablation A1 quantifies this cliff).
func DefaultConfig() Config {
	return Config{Entries: 256, Ways: 256, BloomBits: 32768, BloomK: 4}
}

// Validate reports an error for an inconsistent configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 {
		return fmt.Errorf("abtb: non-positive geometry %+v", c)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("abtb: entries %d not divisible by ways %d", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("abtb: set count %d not a power of two", sets)
	}
	if !c.ExplicitInvalidate && (c.BloomBits <= 0 || c.BloomK <= 0) {
		return fmt.Errorf("abtb: bloom filter misconfigured: bits=%d k=%d", c.BloomBits, c.BloomK)
	}
	return nil
}

// SizeBytes returns the on-chip storage cost of the configuration,
// the §5.3 budget metric.
func (c Config) SizeBytes() int {
	n := c.Entries * EntryBytes
	if !c.ExplicitInvalidate {
		n += (c.BloomBits + 7) / 8
	}
	return n
}

type mapping struct {
	target uint64 // library function address
}

// ABTB is the alternate BTB with its Bloom filter.
type ABTB struct {
	cfg   Config
	table *setassoc.Table[mapping]
	bloom *bloom.Filter // nil in ExplicitInvalidate mode
	asid  uint64

	// Retire-stage pattern detector: the resolved target of the most
	// recently retired call, the PC the sequential glue has advanced
	// to, and the remaining glue-instruction budget.
	pendingCall      uint64
	pendingCallValid bool
	expectPC         uint64
	glueBudget       int

	redirects   uint64 // resolutions answered from the ABTB
	inserts     uint64
	flushes     uint64
	storeSnoops uint64
	flushStores uint64 // stores whose Bloom hit forced a flush
	switches    uint64
}

// New constructs an ABTB, panicking on invalid configuration.
func New(cfg Config) *ABTB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &ABTB{
		cfg:   cfg,
		table: setassoc.New[mapping](cfg.Entries/cfg.Ways, cfg.Ways),
	}
	if !cfg.ExplicitInvalidate {
		a.bloom = bloom.New(cfg.BloomBits, cfg.BloomK)
	}
	return a
}

// key derives the table key from a trampoline address.  PLT slots are
// 16-byte aligned, so the low four bits carry no entropy; rotating
// them to the top (an injective transform, so distinct addresses never
// produce a false tag match) makes consecutive PLT slots index
// consecutive sets, as a hardware ABTB would index above the slot
// alignment.  With ASID support configured, the ASID is folded into
// the (otherwise unused) top bits so address spaces never alias.
func (a *ABTB) key(tramp uint64) uint64 {
	k := bits.RotateLeft64(tramp, 60)
	if !a.cfg.ASIDs {
		return k
	}
	return k ^ (a.asid << 48) ^ (a.asid * 0x9e3779b97f4a7c15 & 0xffff000000000000)
}

// Lookup consults the ABTB at branch resolution: if the resolved
// target of a retired call is a known trampoline, it returns the
// mapped library function address.  This is the redirect that makes
// the front end skip the trampoline.
func (a *ABTB) Lookup(callTarget uint64) (funcAddr uint64, ok bool) {
	m, ok := a.table.Lookup(a.key(callTarget))
	if ok {
		a.redirects++
		return m.target, true
	}
	return 0, false
}

// OnRetireCall records the resolved target of a retired call
// instruction; if the next retired instructions are (up to
// PatternWindow of sequential glue followed by) an indirect branch,
// the pair populates the ABTB.
func (a *ABTB) OnRetireCall(resolvedTarget uint64) {
	a.pendingCall = resolvedTarget
	a.pendingCallValid = true
	a.expectPC = resolvedTarget
	a.glueBudget = a.cfg.PatternWindow
}

// OnRetireIndirectBranch is called when an indirect branch retires,
// with the branch's own address, its resolved target, and the memory
// address its target was loaded from (the GOT slot; 0 if the branch
// had no memory operand, e.g. a return).  If the preceding retired
// instructions were a call followed by sequential trampoline glue
// ending at this branch, the mapping is inserted: the call's target
// (the trampoline entry) maps to this branch's target.
func (a *ABTB) OnRetireIndirectBranch(branchPC, branchTarget, memAddr uint64) {
	defer func() { a.pendingCallValid = false }()
	if !a.pendingCallValid || a.expectPC != branchPC || memAddr == 0 {
		return
	}
	a.table.Insert(a.key(a.pendingCall), mapping{target: branchTarget})
	a.inserts++
	if a.bloom != nil {
		a.bloom.Add(memAddr)
	}
}

// OnRetireOther must be called when any non-call, non-indirect-branch
// instruction retires, with its PC and encoded size.  Within the
// configured pattern window, sequential simple instructions (ARM's
// address-forming adds) keep the pattern alive; anything else breaks
// it.
func (a *ABTB) OnRetireOther(pc uint64, size uint8) {
	if !a.pendingCallValid {
		return
	}
	if a.glueBudget > 0 && pc == a.expectPC {
		a.glueBudget--
		a.expectPC += uint64(size)
		return
	}
	a.pendingCallValid = false
}

// BreakPattern unconditionally cancels a pending call→indirect-branch
// pattern.  The CPU calls it for retired instructions that can never
// be trampoline glue: memory writes, direct branches, returns.
func (a *ABTB) BreakPattern() {
	a.pendingCallValid = false
}

// PatternPending reports whether a retired call is awaiting its
// indirect branch.  The compiled-trace replay loop consults it before
// a superblock of simple instructions: when no pattern is pending,
// none of the block's OnRetireOther/BreakPattern calls can have any
// effect (nothing inside a superblock retires a call), so the whole
// per-instruction hook walk is skipped.
func (a *ABTB) PatternPending() bool { return a.pendingCallValid }

// SnoopStore is called with the address of every retired store (and
// every incoming coherence invalidation).  In the Bloom-filtered
// design a hit clears the entire ABTB; in the §3.4 variant stores are
// ignored.  It reports whether a flush occurred.
func (a *ABTB) SnoopStore(addr uint64) bool {
	if a.bloom == nil {
		return false
	}
	a.storeSnoops++
	if !a.bloom.Test(addr) {
		return false
	}
	a.flushStores++
	a.flushAll()
	return true
}

// Invalidate is the §3.4 architecturally visible instruction: software
// (the dynamic linker) executes it after updating a GOT entry.
func (a *ABTB) Invalidate() { a.flushAll() }

// SwitchContext informs the ABTB of a context switch to the given
// address-space ID.  Without ASID support the table is flushed, like
// an untagged TLB (§3.3).
func (a *ABTB) SwitchContext(asid uint64) {
	a.switches++
	if a.cfg.ASIDs {
		a.asid = asid
		return
	}
	a.asid = asid
	a.flushAll()
}

func (a *ABTB) flushAll() {
	a.table.Clear()
	if a.bloom != nil {
		a.bloom.Clear()
	}
	a.flushes++
}

// Len returns the number of valid mappings.
func (a *ABTB) Len() int { return a.table.Len() }

// Config returns the hardware configuration.
func (a *ABTB) Config() Config { return a.cfg }

// Redirects returns the number of lookups answered from the table —
// each one a skipped trampoline.
func (a *ABTB) Redirects() uint64 { return a.redirects }

// Inserts returns the number of pattern-detected insertions.
func (a *ABTB) Inserts() uint64 { return a.inserts }

// Flushes returns the number of whole-table clears.
func (a *ABTB) Flushes() uint64 { return a.flushes }

// FlushingStores returns the number of stores whose Bloom hit forced a
// flush.  True GOT updates and Bloom false positives both land here;
// the ablation benchmarks separate them by sweeping the filter size.
func (a *ABTB) FlushingStores() uint64 { return a.flushStores }

// StoreSnoops returns the number of stores tested against the filter.
func (a *ABTB) StoreSnoops() uint64 { return a.storeSnoops }

// ContextSwitches returns the number of SwitchContext calls.
func (a *ABTB) ContextSwitches() uint64 { return a.switches }

// ResetStats zeroes counters, preserving table contents.
func (a *ABTB) ResetStats() {
	a.redirects, a.inserts, a.flushes = 0, 0, 0
	a.storeSnoops, a.flushStores, a.switches = 0, 0, 0
	a.table.ResetStats()
}
