package abtb

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func small() *ABTB {
	return New(Config{Entries: 16, Ways: 4, BloomBits: 256, BloomK: 3})
}

// populate runs the retire-time pattern for one trampoline: a call to
// tramp retires, then the trampoline's indirect branch (at tramp,
// loading from got) retires with target fn.
func populate(a *ABTB, tramp, fn, got uint64) {
	a.OnRetireCall(tramp)
	a.OnRetireIndirectBranch(tramp, fn, got)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	bad := []Config{
		{Entries: 0, Ways: 1, BloomBits: 8, BloomK: 1},
		{Entries: 16, Ways: 3, BloomBits: 8, BloomK: 1},
		{Entries: 24, Ways: 2, BloomBits: 8, BloomK: 1},
		{Entries: 16, Ways: 4}, // bloom required unless explicit-invalidate
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	ok := Config{Entries: 16, Ways: 4, ExplicitInvalidate: true}
	if err := ok.Validate(); err != nil {
		t.Errorf("explicit-invalidate config rejected: %v", err)
	}
}

func TestSizeBytes(t *testing.T) {
	// The paper's headline claim: 256 entries is under 1.5KB (§5.3),
	// 16 entries is 192 bytes.
	if got := (Config{Entries: 256, Ways: 4, ExplicitInvalidate: true}).SizeBytes(); got != 3072-0 && got != 256*EntryBytes {
		t.Errorf("256-entry table = %d bytes", got)
	}
	if got := 256 * EntryBytes; got != 3072 {
		// 12 bytes * 256 = 3072; the paper says "totaling less than
		// 1.5KB" counting 6-byte fields packed as 48-bit pairs; our
		// EntryBytes matches their 12-byte arithmetic.
		t.Errorf("entry arithmetic drifted: %d", got)
	}
	if got := (Config{Entries: 16, Ways: 4, ExplicitInvalidate: true}).SizeBytes(); got != 192 {
		t.Errorf("16-entry table = %d bytes, want 192 (paper §5.3)", got)
	}
	with := Config{Entries: 16, Ways: 4, BloomBits: 1024, BloomK: 4}
	if got := with.SizeBytes(); got != 192+128 {
		t.Errorf("with bloom = %d bytes, want 320", got)
	}
}

func TestPopulateAndRedirect(t *testing.T) {
	a := small()
	const tramp, fn, got = 0x401020, 0x7f0000001000, 0x601018
	if _, ok := a.Lookup(tramp); ok {
		t.Fatal("empty ABTB redirected")
	}
	populate(a, tramp, fn, got)
	target, ok := a.Lookup(tramp)
	if !ok || target != fn {
		t.Fatalf("Lookup = %#x, %v; want %#x", target, ok, fn)
	}
	if a.Inserts() != 1 || a.Redirects() != 1 {
		t.Errorf("inserts/redirects = %d/%d", a.Inserts(), a.Redirects())
	}
}

func TestPatternRequiresAdjacency(t *testing.T) {
	a := small()
	// call retires, then an unrelated instruction, then the branch:
	// no insertion.
	a.OnRetireCall(0x401020)
	a.BreakPattern()
	a.OnRetireIndirectBranch(0x401020, 0x7f0000001000, 0x601018)
	if a.Len() != 0 {
		t.Error("broken pattern inserted")
	}
	// A non-sequential simple instruction also breaks it.
	a.OnRetireCall(0x401020)
	a.OnRetireOther(0x999999, 4)
	a.OnRetireIndirectBranch(0x401020, 0x7f0000001000, 0x601018)
	if a.Len() != 0 {
		t.Error("non-adjacent pattern inserted")
	}
	// Two calls in a row: only the second one's target is pending.
	a.OnRetireCall(0x300000)
	a.OnRetireCall(0x401020)
	a.OnRetireIndirectBranch(0x401020, 0x7f0000001000, 0x601018)
	if a.Len() != 1 {
		t.Error("adjacent pattern after double call not inserted")
	}
}

func TestPatternRequiresCallTargetMatch(t *testing.T) {
	a := small()
	// The indirect branch retires at a PC different from the call's
	// resolved target (e.g. a jump into the middle of a function):
	// not a trampoline pattern.
	a.OnRetireCall(0x401020)
	a.OnRetireIndirectBranch(0x999999, 0x7f0000001000, 0x601018)
	if a.Len() != 0 {
		t.Error("mismatched call-target pattern inserted")
	}
}

func TestPatternRequiresMemOperand(t *testing.T) {
	a := small()
	// A call followed by a return (indirect branch with no memory
	// operand in the GOT sense) must not populate.
	a.OnRetireCall(0x401020)
	a.OnRetireIndirectBranch(0x401020, 0x7f0000001000, 0)
	if a.Len() != 0 {
		t.Error("pattern without GOT operand inserted")
	}
}

func TestConsecutivePatterns(t *testing.T) {
	a := small()
	// A second call→branch pair right after the first.
	populate(a, 0x401020, 0x7f0000001000, 0x601018)
	populate(a, 0x401030, 0x7f0000002000, 0x601020)
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}

func TestStoreSnoopFlushes(t *testing.T) {
	a := small()
	const tramp, fn, got = 0x401020, 0x7f0000001000, 0x601018
	populate(a, tramp, fn, got)
	// An unrelated store does not flush (with overwhelming
	// probability in a fresh small filter).
	if a.SnoopStore(0x12345678) {
		t.Log("unrelated store flushed (bloom false positive); tolerated")
	}
	// A store to the GOT slot must flush: no false negatives.
	if !a.SnoopStore(got) {
		t.Fatal("GOT store did not flush the ABTB")
	}
	if _, ok := a.Lookup(tramp); ok {
		t.Fatal("mapping survived GOT store")
	}
	if a.Flushes() == 0 || a.FlushingStores() == 0 {
		t.Error("flush counters not updated")
	}
	// After the flush the bloom is clear: the same store no longer
	// hits.
	if a.SnoopStore(got) {
		t.Error("bloom filter not cleared by flush")
	}
}

// The architectural-safety property from §3.1: after ANY sequence of
// populates and stores, a mapping whose GOT slot was stored to since
// its insertion is never returned by Lookup.
func TestNoStaleRedirectProperty(t *testing.T) {
	f := func(seed uint64, ops []byte) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		a := New(Config{Entries: 8, Ways: 2, BloomBits: 128, BloomK: 3})
		// A small universe of trampolines with their GOT slots.
		const n = 6
		type binding struct{ tramp, got, fn uint64 }
		var bs [n]binding
		for i := range bs {
			bs[i] = binding{
				tramp: 0x401000 + uint64(i)*16,
				got:   0x601000 + uint64(i)*8,
				fn:    0x7f0000000000 + rng.Uint64()%1000*4096,
			}
		}
		current := map[uint64]uint64{} // tramp -> latest fn written via GOT
		for _, op := range ops {
			b := &bs[int(op)%n]
			switch (op / 7) % 2 {
			case 0: // retire a call+trampoline pair with the current fn
				fn := b.fn
				populate(a, b.tramp, fn, b.got)
				current[b.tramp] = fn
			case 1: // linker stores a new target into the GOT slot
				b.fn = 0x7f0000000000 + rng.Uint64()%1000*4096
				a.SnoopStore(b.got)
			}
			// Invariant: any redirect the ABTB gives equals the
			// last value that actually flowed through the pattern
			// for that trampoline, and no redirect may exist for a
			// trampoline whose GOT was stored after its insert.
			for _, bb := range bs {
				if got, ok := a.Lookup(bb.tramp); ok {
					if got != current[bb.tramp] && got != bb.fn {
						// It must match either the last retired
						// pattern value; a store always flushes,
						// so a stale value is impossible.
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExplicitInvalidateMode(t *testing.T) {
	a := New(Config{Entries: 16, Ways: 4, ExplicitInvalidate: true})
	populate(a, 0x401020, 0x7f0000001000, 0x601018)
	// Stores are ignored in this mode.
	if a.SnoopStore(0x601018) {
		t.Error("explicit-invalidate mode flushed on store")
	}
	if _, ok := a.Lookup(0x401020); !ok {
		t.Error("mapping lost without explicit invalidate")
	}
	// Software invalidation clears it.
	a.Invalidate()
	if _, ok := a.Lookup(0x401020); ok {
		t.Error("mapping survived explicit Invalidate")
	}
}

func TestContextSwitchWithoutASIDsFlushes(t *testing.T) {
	a := small()
	populate(a, 0x401020, 0x7f0000001000, 0x601018)
	a.SwitchContext(2)
	if _, ok := a.Lookup(0x401020); ok {
		t.Error("mapping survived untagged context switch")
	}
	if a.ContextSwitches() != 1 {
		t.Errorf("switches = %d", a.ContextSwitches())
	}
}

func TestContextSwitchWithASIDs(t *testing.T) {
	a := New(Config{Entries: 16, Ways: 4, BloomBits: 256, BloomK: 3, ASIDs: true})
	a.SwitchContext(1)
	populate(a, 0x401020, 0x7f0000001000, 0x601018)
	a.SwitchContext(2)
	// Process 2 must not see process 1's mapping for the same VA.
	if _, ok := a.Lookup(0x401020); ok {
		t.Error("ASID-tagged mapping leaked across address spaces")
	}
	populate(a, 0x401020, 0x7f0000009000, 0x601018)
	// Back to process 1: its mapping survived.
	a.SwitchContext(1)
	fn, ok := a.Lookup(0x401020)
	if !ok || fn != 0x7f0000001000 {
		t.Errorf("process 1 mapping after switch back = %#x, %v", fn, ok)
	}
}

func TestCapacityEviction(t *testing.T) {
	a := small() // 16 entries
	for i := uint64(0); i < 64; i++ {
		populate(a, 0x401000+i*16, 0x7f0000000000+i*4096, 0x601000+i*8)
	}
	if a.Len() > 16 {
		t.Errorf("Len = %d exceeds capacity", a.Len())
	}
}

func TestResetStats(t *testing.T) {
	a := New(Config{Entries: 16, Ways: 4, BloomBits: 256, BloomK: 3, ASIDs: true})
	populate(a, 0x401020, 0x7f0000001000, 0x601018)
	a.Lookup(0x401020)
	a.SnoopStore(0x601018) // flushes (bloom hit)
	populate(a, 0x401020, 0x7f0000001000, 0x601018)
	a.SwitchContext(1) // counted, no flush under ASIDs
	a.SwitchContext(0)
	a.ResetStats()
	if a.Redirects() != 0 || a.Inserts() != 0 || a.Flushes() != 0 ||
		a.StoreSnoops() != 0 || a.FlushingStores() != 0 || a.ContextSwitches() != 0 {
		t.Error("ResetStats did not zero every counter")
	}
	// Stats only: the table contents survive a reset.
	if a.Len() != 1 {
		t.Errorf("ResetStats dropped table contents: Len = %d, want 1", a.Len())
	}
	if _, ok := a.Lookup(0x401020); !ok {
		t.Error("mapping lost across ResetStats")
	}
}

// TestFlushEntryPoints is the churn-sweep audit: every path that
// flushes the whole table — a snooped GOT store, the §3.4 explicit
// invalidate instruction, an untagged context switch — must clear the
// table AND the Bloom filter together, and count exactly one flush.  A
// half flush (table cleared, bloom stale) makes every later store a
// false-positive flush; the converse (bloom cleared, table stale)
// revives the stale-redirect bug the Bloom exists to prevent.  The
// non-flushing paths ride along as negative cases.
func TestFlushEntryPoints(t *testing.T) {
	const tramp, fn, got = 0x401020, 0x7f0000001000, 0x601018
	base := Config{Entries: 16, Ways: 4, BloomBits: 256, BloomK: 3}
	asids := base
	asids.ASIDs = true
	explicit := Config{Entries: 16, Ways: 4, ExplicitInvalidate: true}
	cases := []struct {
		name      string
		cfg       Config
		flush     func(*ABTB)
		wantFlush bool
	}{
		{"snooped GOT store", base, func(a *ABTB) { a.SnoopStore(got) }, true},
		{"Invalidate", base, func(a *ABTB) { a.Invalidate() }, true},
		{"Invalidate (explicit mode)", explicit, func(a *ABTB) { a.Invalidate() }, true},
		{"untagged SwitchContext", base, func(a *ABTB) { a.SwitchContext(7) }, true},
		{"tagged SwitchContext", asids, func(a *ABTB) { a.SwitchContext(7); a.SwitchContext(0) }, false},
		{"unrelated store", base, func(a *ABTB) { a.SnoopStore(0xdeadbeef00) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := New(tc.cfg)
			populate(a, tramp, fn, got)
			tc.flush(a)
			if !tc.wantFlush {
				if a.Flushes() != 0 {
					t.Fatalf("flushes = %d, want 0", a.Flushes())
				}
				if _, ok := a.Lookup(tramp); !ok || a.Len() != 1 {
					t.Fatal("non-flushing path dropped the mapping")
				}
				return
			}
			if a.Flushes() != 1 {
				t.Errorf("flushes = %d, want exactly 1", a.Flushes())
			}
			if a.Len() != 0 {
				t.Errorf("Len = %d after flush, want 0", a.Len())
			}
			if _, ok := a.Lookup(tramp); ok {
				t.Error("mapping survived the flush")
			}
			// The Bloom filter must have been cleared with the table:
			// re-snooping the same GOT address before any re-insert
			// cannot hit (no entry is watching it), so it must not
			// flush again.
			if tc.cfg.ExplicitInvalidate {
				return // no bloom in this variant
			}
			if a.SnoopStore(got) {
				t.Error("bloom filter survived the flush: re-snoop of the dead GOT address flushed again")
			}
			// And the flushed table accepts a fresh pattern whose store
			// snoop works end to end.
			populate(a, tramp, fn, got)
			if _, ok := a.Lookup(tramp); !ok {
				t.Error("table did not repopulate after flush")
			}
			if !a.SnoopStore(got) {
				t.Error("re-inserted mapping's GOT store did not flush")
			}
		})
	}
}
