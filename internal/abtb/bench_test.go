package abtb

import "testing"

// BenchmarkLookupRedirect measures the per-call cost of the fully
// associative default table at the paper's 256-entry design point.
func BenchmarkLookupRedirect(b *testing.B) {
	a := New(DefaultConfig())
	for i := uint64(0); i < 200; i++ {
		a.OnRetireCall(0x401000 + i*16)
		a.OnRetireIndirectBranch(0x401000+i*16, 0x7f0000000000+i, 0x601000+i*8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Lookup(0x401000 + uint64(i)%200*16)
	}
}

func BenchmarkSnoopStoreMiss(b *testing.B) {
	a := New(DefaultConfig())
	for i := uint64(0); i < 200; i++ {
		a.OnRetireCall(0x401000 + i*16)
		a.OnRetireIndirectBranch(0x401000+i*16, 0x7f0000000000+i, 0x601000+i*8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SnoopStore(0x7fff00000000 + uint64(i)*8)
	}
}
