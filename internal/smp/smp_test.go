package smp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/workload"
)

// tinyWorkload: a threaded server with one request type and a
// rebindable import.
func tinyWorkload() *workload.Workload {
	app := objfile.New("server")
	app.NewFunc("handle").ALU(4).Call("encode").Call("hash").Halt()
	app.NewFunc("upgrade").RebindImport("encode", "encode_v2").Halt()
	lib := objfile.New("lib")
	lib.AddData("out", 16)
	lib.NewFunc("encode").Store("out", 0, 1, 1).Ret()
	lib.NewFunc("encode_v2").Store("out", 0, 1, 2).Ret()
	lib.NewFunc("hash").ALU(6).Ret()
	return &workload.Workload{
		Name: "tiny", App: app, Libs: []*objfile.Object{lib},
		Classes: []workload.RequestClass{{Name: "R", Entry: "handle", Weight: 1}},
	}
}

func TestClusterBasics(t *testing.T) {
	cl, err := New(tinyWorkload(), core.Enhanced(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Cores()) != 4 {
		t.Fatalf("cores = %d", len(cl.Cores()))
	}
	if err := cl.Warmup("handle", 16); err != nil {
		t.Fatal(err)
	}
	sample, err := cl.Serve("handle", 40)
	if err != nil {
		t.Fatal(err)
	}
	if sample.N() != 40 {
		t.Fatalf("N = %d", sample.N())
	}
	c := cl.Counters()
	if c.TrampCalls != 80 { // 2 library calls x 40 requests
		t.Errorf("TrampCalls = %d, want 80", c.TrampCalls)
	}
	// Warm steady state: every core's ABTB skips everything.
	if c.TrampSkips != c.TrampCalls {
		t.Errorf("skips %d of %d", c.TrampSkips, c.TrampCalls)
	}
	if c.Resolutions != 0 {
		t.Errorf("resolutions after pre-bound warmup = %d", c.Resolutions)
	}
	if _, err := New(tinyWorkload(), core.Base(1), 0); err == nil {
		t.Error("zero-core cluster accepted")
	}
}

// Threads share one GOT: a single lazy resolution serves all cores.
func TestSharedGOTResolvesOnce(t *testing.T) {
	cl, err := New(tinyWorkload(), core.Base(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	// No pre-binding: run requests directly on all cores.
	for i := 0; i < 8; i++ {
		if _, err := cl.Cores()[i%4].RunSymbol("handle", 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.Counters().Resolutions; got != 2 {
		t.Errorf("Resolutions = %d, want 2 (encode and hash, once each, shared GOT)", got)
	}
}

// The §3.1 coherence requirement, end to end: core 0 re-binds the
// shared GOT; every other core's ABTB must be flushed by the
// broadcast invalidation, and their next calls must reach the new
// implementation.
func TestRebindBroadcastsAcrossCores(t *testing.T) {
	w := tinyWorkload()
	cl, err := New(w, core.Enhanced(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Warmup("handle", 16); err != nil {
		t.Fatal(err)
	}
	// All cores warm and skipping.
	for i, c := range cl.Cores() {
		if c.ABTB().Len() == 0 {
			t.Fatalf("core %d ABTB empty after warmup", i)
		}
	}
	outAddr := (cl.Image().Modules()[1].GOTEnd + 63) &^ 63
	if _, err := cl.Cores()[1].RunSymbol("handle", 0); err != nil {
		t.Fatal(err)
	}
	if got := cl.Image().Memory().Read64(outAddr); got != 1 {
		t.Fatalf("pre-rebind out = %d", got)
	}

	// Core 0 re-binds encode.
	if _, err := cl.Cores()[0].RunSymbol("upgrade", 0); err != nil {
		t.Fatal(err)
	}
	for i, c := range cl.Cores() {
		if c.ABTB().Len() != 0 {
			t.Errorf("core %d ABTB not flushed by coherence invalidation", i)
		}
	}
	// Every core now reaches the new implementation.
	for i := 1; i < 4; i++ {
		if _, err := cl.Cores()[i].RunSymbol("handle", 0); err != nil {
			t.Fatal(err)
		}
		if got := cl.Image().Memory().Read64(outAddr); got != 2 {
			t.Fatalf("core %d called stale implementation: out = %d", i, got)
		}
	}
}

// Ordinary private stores (stacks, buffers) must NOT generate
// cross-core ABTB flushes.
func TestPrivateStoresDoNotBroadcast(t *testing.T) {
	cl, err := New(tinyWorkload(), core.Enhanced(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Warmup("handle", 8); err != nil {
		t.Fatal(err)
	}
	before := make([]uint64, 2)
	for i, c := range cl.Cores() {
		before[i] = c.ABTB().Flushes()
	}
	// Serve plenty of requests: lots of stack stores, zero GOT writes.
	if _, err := cl.Serve("handle", 50); err != nil {
		t.Fatal(err)
	}
	for i, c := range cl.Cores() {
		if c.ABTB().Flushes() != before[i] {
			t.Errorf("core %d flushed %d times on private traffic",
				i, c.ABTB().Flushes()-before[i])
		}
	}
}

// Cores share the last-level cache: running the same code on N cores
// must not multiply L2 misses by N (constructive sharing of text and
// shared data).
func TestSharedL2ConstructiveSharing(t *testing.T) {
	w := workload.Memcached(1)
	missesFor := func(n int) uint64 {
		cl, err := New(w, core.Base(1), n)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Warmup("handle_GET", 4*n); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Serve("handle_GET", 60); err != nil {
			t.Fatal(err)
		}
		return cl.Counters().L2Misses
	}
	one := missesFor(1)
	four := missesFor(4)
	if four > one*2 {
		t.Errorf("4-core L2 misses %d vs 1-core %d: no constructive sharing", four, one)
	}
}

// A cluster of enhanced cores beats a cluster of base cores on the
// same workload — the single-core result carries over.
func TestClusterEnhancedFaster(t *testing.T) {
	w := workload.Memcached(1)
	run := func(cfg core.Config) float64 {
		cl, err := New(w, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Warmup("handle_GET", 40); err != nil {
			t.Fatal(err)
		}
		s, err := cl.Serve("handle_GET", 200)
		if err != nil {
			t.Fatal(err)
		}
		return s.Mean()
	}
	base := run(core.Base(1))
	enh := run(core.Enhanced(1))
	if enh >= base {
		t.Errorf("enhanced cluster mean %.2fus >= base %.2fus", enh, base)
	}
}
