// Package smp assembles multi-core clusters running a threaded server
// — the execution model of the paper's Memcached, MySQL and Firefox
// workloads (§5.5: "multithreaded server software shares code pages
// across threads").
//
// A Cluster is N cores executing one linked image: one address space,
// one GOT, one shared last-level cache (the Xeon E5450's 12 MiB L2),
// with private L1s, TLBs, branch predictors and ABTBs per core.
// Because the GOT is shared, a lazy resolution (or a runtime
// re-binding) performed by one core changes the linkage every core
// sees; the paper's §3.1 requires the ABTB to be flushed not only by
// local retired stores but also by "an invalidation for such an
// address received from the coherence subsystem".  The cluster wires
// exactly that: every core's GOT-region stores are broadcast to the
// other cores' ABTB Bloom filters as coherence invalidations.
//
// Requests are served round-robin across cores (an idealised
// accept-queue); execution is interleaved at request granularity,
// which is faithful enough for steady-state counter and latency
// comparisons since the architectural interaction between threads in
// these workloads flows through the GOT and the shared cache only.
package smp

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/linker"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Cluster is a multi-core system over one shared image.
type Cluster struct {
	img   *linker.Image
	l2    *cache.Cache
	cores []*cpu.CPU

	gotRanges [][2]uint64
}

// New builds an n-core cluster running the workload's image under the
// given system configuration.  The configuration's L2 becomes the
// shared last-level cache.
func New(w *workload.Workload, cfg core.Config, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("smp: need at least one core")
	}
	img, err := linker.Link(w.App, w.Libs, cfg.Linking)
	if err != nil {
		return nil, fmt.Errorf("smp: %w", err)
	}
	c := &Cluster{img: img, l2: cache.New(cfg.Hardware.L2, nil)}
	for _, m := range img.Modules() {
		if m.GOTBase != m.GOTEnd {
			c.gotRanges = append(c.gotRanges, [2]uint64{m.GOTBase, m.GOTEnd})
		}
	}
	for i := 0; i < n; i++ {
		hw := cfg.Hardware
		hw.SharedL2 = c.l2
		if hw.ABTB != nil {
			a := *hw.ABTB // private ABTB per core
			hw.ABTB = &a
		}
		c.cores = append(c.cores, cpu.New(img, hw))
	}
	// Coherence: GOT-region stores by one core invalidate the line in
	// every other core, reaching their ABTB Bloom filters.  Private
	// traffic (stacks, heap buffers) stays core-local: in hardware
	// those lines are not present in other cores' caches, so no
	// invalidation is generated for them.
	for i, src := range c.cores {
		i := i
		src.TraceStore = func(addr uint64) {
			if !c.inGOT(addr) {
				return
			}
			for j, dst := range c.cores {
				if j != i {
					dst.CoherenceInvalidate(addr)
				}
			}
		}
	}
	return c, nil
}

func (c *Cluster) inGOT(addr uint64) bool {
	for _, r := range c.gotRanges {
		if addr >= r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

// Cores returns the cluster's cores.
func (c *Cluster) Cores() []*cpu.CPU { return c.cores }

// Image returns the shared image.
func (c *Cluster) Image() *linker.Image { return c.img }

// L2 returns the shared last-level cache.
func (c *Cluster) L2() *cache.Cache { return c.l2 }

// Warmup pre-binds the GOT and serves n requests round-robin, then
// clears measurement state on every core.
func (c *Cluster) Warmup(entry string, n int) error {
	c.img.BindAll()
	for i := 0; i < n; i++ {
		if _, err := c.cores[i%len(c.cores)].RunSymbol(entry, 0); err != nil {
			return fmt.Errorf("smp: warmup %d: %w", i, err)
		}
	}
	for _, core := range c.cores {
		core.ResetStats()
	}
	c.l2.ResetStats()
	return nil
}

// Serve distributes n requests round-robin across cores and returns
// the per-request latencies in microseconds.
func (c *Cluster) Serve(entry string, n int) (*stats.Sample, error) {
	sample := &stats.Sample{}
	for i := 0; i < n; i++ {
		res, err := c.cores[i%len(c.cores)].RunSymbol(entry, 0)
		if err != nil {
			return nil, fmt.Errorf("smp: request %d: %w", i, err)
		}
		sample.Add(core.Micros(res.Cycles))
	}
	return sample, nil
}

// Counters returns the sum of all cores' counters.  Shared-L2
// statistics appear once (the paper aggregates performance counters
// "across all cores that run the processes under study", §4.2).
func (c *Cluster) Counters() cpu.Counters {
	var total cpu.Counters
	for _, core := range c.cores {
		cc := core.Counters()
		total.Instructions += cc.Instructions
		total.Cycles += cc.Cycles
		total.TrampInstrs += cc.TrampInstrs
		total.TrampCalls += cc.TrampCalls
		total.TrampSkips += cc.TrampSkips
		total.Loads += cc.Loads
		total.Stores += cc.Stores
		total.Branches += cc.Branches
		total.Mispredicts += cc.Mispredicts
		total.Resolutions += cc.Resolutions
		total.L1IMisses += cc.L1IMisses
		total.L1DMisses += cc.L1DMisses
		total.ITLBMisses += cc.ITLBMisses
		total.DTLBMisses += cc.DTLBMisses
		total.ABTBRedirects += cc.ABTBRedirects
		total.ABTBFlushes += cc.ABTBFlushes
	}
	total.L2Accesses = c.l2.Accesses()
	total.L2Misses = c.l2.Misses()
	return total
}
