package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/linker"
	"repro/internal/objfile"
)

// ChurnSlot is one library module that rotates through generations at
// runtime.  Every generation must carry the same module name and export
// the same symbol set (bodies differ), so a reload rebinds callers
// rather than breaking them; generation 0 must also appear in
// Workload.Libs so the initial link brings the module up.
type ChurnSlot struct {
	Name string
	Gens []*objfile.Object
}

// ChurnPlan describes a deterministic dlclose/dlopen schedule the
// driver applies to the live image between requests.  Every Every-th
// request (counted across warmup, exact and sampled phases alike) one
// slot — round-robin over Slots — is unloaded and its next generation
// loaded in place.  Demand selects demand-driven loading: reloaded
// module pages map lazily on first touch and each first touch costs a
// page fault.
//
// The schedule is a pure function of request count, so two systems
// driven with the same seed see bit-identical churn and remain
// comparable.  All GOT traffic from the unload/reload goes through
// cpu.LinkerStore, which snoops the ABTB exactly like guest stores.
type ChurnPlan struct {
	Every  int
	Demand bool
	Slots  []ChurnSlot
}

// Churned reports how many unload/reload rotations this driver has
// applied so far.
func (d *Driver) Churned() int { return d.rotations }

// churnTick advances the churn schedule by one request.  On a rotation
// boundary it unloads the due slot, loads its next generation, and — if
// a compiled program is installed — recompiles it against the new image
// generation so compiled execution never runs a stale trace.  Callers
// that want the interpreter A/B instead simply run without a program
// installed (e.g. runner's DisableCompiledTraces).
func (d *Driver) churnTick() error {
	p := d.w.Churn
	if p == nil || p.Every <= 0 || len(p.Slots) == 0 {
		return nil
	}
	d.churnOps++
	if d.churnOps%p.Every != 0 {
		return nil
	}
	if d.slotGen == nil {
		d.slotGen = make([]int, len(p.Slots))
	}
	s := d.rotations % len(p.Slots)
	d.rotations++
	slot := p.Slots[s]
	d.slotGen[s] = (d.slotGen[s] + 1) % len(slot.Gens)

	c := d.sys.CPU()
	img := d.sys.Image()
	if err := img.Unload(slot.Name, c.LinkerStore); err != nil {
		return fmt.Errorf("churn: unload %s: %w", slot.Name, err)
	}
	opts := linker.LoadOptions{Demand: p.Demand, Write: c.LinkerStore}
	if _, err := img.Load(slot.Gens[d.slotGen[s]], opts); err != nil {
		return fmt.Errorf("churn: load %s gen %d: %w", slot.Name, d.slotGen[s], err)
	}
	if prog := c.Program(); prog != nil {
		if err := c.SetProgram(cpu.Compile(img, prog.LineBytes())); err != nil {
			return fmt.Errorf("churn: recompile after %s reload: %w", slot.Name, err)
		}
	}
	return nil
}
