package workload

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/objfile"
	"repro/internal/stats"
)

// generators under test, smallest first for cheap structural checks.
var generators = []struct {
	name string
	gen  func(uint64) *Workload
}{
	{"memcached", Memcached},
	{"apache", Apache},
	{"mysql", MySQL},
	{"firefox", Firefox},
}

func TestGeneratorsProduceValidWorkloads(t *testing.T) {
	for _, g := range generators {
		t.Run(g.name, func(t *testing.T) {
			w := g.gen(1)
			if w.Name != g.name {
				t.Errorf("Name = %q", w.Name)
			}
			if err := w.App.Validate(); err != nil {
				t.Errorf("app invalid: %v", err)
			}
			for _, lib := range w.Libs {
				if err := lib.Validate(); err != nil {
					t.Errorf("lib %s invalid: %v", lib.Name(), err)
				}
			}
			if len(w.Classes) < 2 {
				t.Errorf("only %d request classes", len(w.Classes))
			}
			for _, c := range w.Classes {
				if w.App.Func(c.Entry) == nil {
					t.Errorf("class %s entry %q not defined in app", c.Name, c.Entry)
				}
				if c.Weight <= 0 {
					t.Errorf("class %s weight %v", c.Name, c.Weight)
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range generators {
		a, b := g.gen(3), g.gen(3)
		if len(a.App.Funcs()) != len(b.App.Funcs()) {
			t.Errorf("%s: function counts differ across identical seeds", g.name)
		}
		// Same seed must produce identical instruction streams.
		fa, fb := a.App.Funcs()[0], b.App.Funcs()[0]
		if len(fa.Body) != len(fb.Body) {
			t.Fatalf("%s: first function body lengths differ", g.name)
		}
		for i := range fa.Body {
			if fa.Body[i] != fb.Body[i] {
				t.Fatalf("%s: body diverges at %d", g.name, i)
			}
		}
	}
}

func TestWorkloadClassLookup(t *testing.T) {
	w := Memcached(1)
	c, err := w.Class("GET")
	if err != nil || c.Entry != "handle_GET" {
		t.Errorf("Class(GET) = %+v, %v", c, err)
	}
	if _, err := w.Class("DELETE"); err == nil {
		t.Error("unknown class found")
	}
}

func TestDriverMixRespectsWeights(t *testing.T) {
	w := Memcached(1) // GET:SET = 9:1
	sys, err := w.NewSystem(core.Base(1))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(w, sys, 4)
	if err := d.Warmup(10); err != nil {
		t.Fatal(err)
	}
	samp, err := d.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	gets, sets := samp["GET"].N(), samp["SET"].N()
	if gets+sets != 300 {
		t.Fatalf("total = %d", gets+sets)
	}
	ratio := float64(gets) / float64(sets)
	if ratio < 5 || ratio > 16 {
		t.Errorf("GET:SET ratio = %.1f, want ~9", ratio)
	}
	if d.System() != sys || d.Workload() != w {
		t.Error("driver accessors broken")
	}
}

func TestDriverDeterministicInterleaving(t *testing.T) {
	w := Memcached(1)
	counts := func(seed uint64) (int, int) {
		sys, err := w.NewSystem(core.Base(1))
		if err != nil {
			t.Fatal(err)
		}
		d := NewDriver(w, sys, seed)
		if err := d.Warmup(5); err != nil {
			t.Fatal(err)
		}
		s, err := d.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		return s["GET"].N(), s["SET"].N()
	}
	g1, s1 := counts(7)
	g2, s2 := counts(7)
	if g1 != g2 || s1 != s2 {
		t.Errorf("same driver seed produced different mixes: %d/%d vs %d/%d", g1, s1, g2, s2)
	}
}

func TestTierBurstSchedule(t *testing.T) {
	zipf := tier{maxBurst: 16, zipf: true}
	wantZipf := []int{16, 16, 16, 16, 8, 8, 8, 8, 4, 4, 4, 4, 2, 2, 2, 2, 1, 1}
	for r, want := range wantZipf {
		if got := zipf.burstAt(r); got != want {
			t.Errorf("zipf burstAt(%d) = %d, want %d", r, got, want)
		}
	}
	uniform := tier{maxBurst: 4}
	for r := 0; r < 30; r++ {
		if got := uniform.burstAt(r); got != 4 {
			t.Errorf("uniform burstAt(%d) = %d, want 4", r, got)
		}
	}
	none := tier{}
	if got := none.burstAt(0); got != 1 {
		t.Errorf("zero-burst tier burstAt = %d, want 1", got)
	}
}

func TestEmitTieredCallsStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	o := objfile.New("x")
	f := o.NewFunc("h")
	emitTieredCalls(f, rng, []tier{
		{names: []string{"a", "b"}, pct: 100},         // plain calls
		{names: []string{"c"}, pct: 100, maxBurst: 4}, // burst loop
		{names: []string{"d"}, pct: 40},               // gated
		{names: []string{"e"}, pct: 40, maxBurst: 3},  // gated burst
		{names: []string{"f1", "f2", "f3"}, pct: 2},   // nested cold gates
	}, nil)
	f.Halt()
	if err := o.Validate(); err != nil {
		t.Fatalf("emitted structure invalid: %v", err)
	}
	var calls, conds, loops int
	for _, in := range f.Body {
		switch in.Op {
		case isa.Call:
			calls++
		case isa.JmpCond:
			if in.Rel < 0 {
				loops++
			} else {
				conds++
			}
		}
	}
	if calls != 8 {
		t.Errorf("call sites = %d, want 8", calls)
	}
	if loops != 2 { // one per burst
		t.Errorf("burst loops = %d, want 2", loops)
	}
	if conds < 4 { // gates for d, e, and the cold block
		t.Errorf("gates = %d, want >= 4", conds)
	}
}

func TestEmitBodyRespectsRegion(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	o := objfile.New("x")
	o.AddData("r", 1024)
	f := o.NewFunc("g")
	emitBody(f, rng, bodySpec{region: "r", regionLen: 1024, alu: 30, loads: 8,
		span: 4, stores: 3, condEvery: 5, condBias: 80})
	f.Ret()
	if err := o.Validate(); err != nil {
		t.Fatalf("emitBody produced invalid code: %v", err)
	}
	// Span larger than the region is clamped rather than invalid.
	f2 := o.NewFunc("g2")
	emitBody(f2, rng, bodySpec{region: "r", regionLen: 1024, alu: 4, loads: 2,
		span: 100000, stores: 1})
	f2.Ret()
	if err := o.Validate(); err != nil {
		t.Fatalf("oversized span not clamped: %v", err)
	}
}

func TestEmitBodyWithLoop(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	o := objfile.New("x")
	o.AddData("r", 4096)
	f := o.NewFunc("g")
	emitBody(f, rng, bodySpec{region: "r", regionLen: 4096, alu: 12, loads: 2,
		span: 2, loop: true, loopIters: 70})
	f.Ret()
	if err := o.Validate(); err != nil {
		t.Fatalf("looped body invalid: %v", err)
	}
	found := false
	for _, in := range f.Body {
		if in.Op == isa.JmpCond && in.Rel < 0 {
			found = true
		}
	}
	if !found {
		t.Error("no backward branch emitted for loop")
	}
}

func TestEmitKernelStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	o := objfile.New("x")
	o.AddData("r", 1<<20)
	f := o.NewFunc("k")
	emitKernel(f, rng, "r", 1<<20, 20, 64, 95)
	f.Ret()
	if err := o.Validate(); err != nil {
		t.Fatalf("kernel invalid: %v", err)
	}
	last := f.Body[len(f.Body)-2] // before Ret
	if last.Op != isa.JmpCond || last.Rel >= 0 {
		t.Errorf("kernel does not end in a backward branch: %+v", last)
	}
}

func TestGenLibShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	lib, names := genLib(rng, libParams{
		name: "libx", nFuncs: 10, dataBytes: 8192, bodyALU: [2]int{4, 10},
		bodyLoads: [2]int{1, 3}, loadSpan: 4, stores: 1, condEvery: 5, condBias: 80,
		loopPct: 50, loopIters: 60, crossCalls: 3, crossPct: 50, ifuncs: 2,
	}, []string{"ext_target"})
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(names) != 12 { // 10 functions + 2 ifuncs
		t.Fatalf("names = %d, want 12", len(names))
	}
	if len(lib.IFuncs()) != 2 {
		t.Errorf("ifuncs = %d", len(lib.IFuncs()))
	}
	// Cross targets create externals.
	ext := lib.Externals()
	hasCross := false
	for _, e := range ext {
		if e == "ext_target" {
			hasCross = true
		}
	}
	if !hasCross {
		t.Errorf("no cross-library import emitted: %v", ext)
	}
}

func TestDriverWarmupPreBinds(t *testing.T) {
	w := Memcached(1)
	sys, err := w.NewSystem(core.Base(1))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(w, sys, 1)
	if err := d.Warmup(3); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(20); err != nil {
		t.Fatal(err)
	}
	if got := sys.Counters().Resolutions; got != 0 {
		t.Errorf("measurement window saw %d lazy resolutions; warmup must pre-bind", got)
	}
}

func TestDriverPerturbationProducesOutliers(t *testing.T) {
	w := Memcached(1)
	sys, err := w.NewSystem(core.Enhanced(1))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(w, sys, 4)
	d.PerturbEvery = 40
	if err := d.Warmup(30); err != nil {
		t.Fatal(err)
	}
	samp, err := d.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	get := samp["GET"]
	// Perturbed requests run cold: the max should stand clearly above
	// the median, and trimming the top 2.5% should pull the max down
	// substantially more than it moves the median.
	p50, max := get.Percentile(50), get.Percentile(100)
	if max < p50*1.3 {
		t.Errorf("no visible outliers: p50=%.2f max=%.2f", p50, max)
	}
	trimmed := get.TrimOutliers(97.5)
	if trimmed.Percentile(100) >= max {
		t.Errorf("trimming did not remove the outlier tail")
	}
}

// TestDriverSeedPinned pins the driver-seed offset: runner.execute and
// every experiments harness construct drivers via DriverSeed, and a
// silent change here would alter every request stream and published
// number.  If you change the offset deliberately, regenerate the
// experiments golden file too.
func TestDriverSeedPinned(t *testing.T) {
	if DriverSeedOffset != 17 {
		t.Fatalf("DriverSeedOffset = %d, want 17 (pinned; changing it invalidates golden counters)", DriverSeedOffset)
	}
	if got := DriverSeed(0); got != 17 {
		t.Fatalf("DriverSeed(0) = %d, want 17", got)
	}
	if got := DriverSeed(7); got != 24 {
		t.Fatalf("DriverSeed(7) = %d, want 24", got)
	}
}

// sampledSystem links w under cfg and installs a compiled trace
// program, as the runner's sampled path does.
func sampledSystem(t *testing.T, w *Workload, cfg core.Config) *core.System {
	t.Helper()
	sys, err := w.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CPU().SetProgram(cpu.Compile(sys.Image(), cfg.Hardware.L1I.LineBytes)); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRunSampledEstimatesExact drives the same workload/seed through an
// exact run and a sampled run and checks the sampled per-request
// instruction rate brackets the exact one: the mean must land within a
// few CI widths (the exact run includes the sampled run's skipped
// phases, so agreement is statistical, not exact).
func TestRunSampledEstimatesExact(t *testing.T) {
	w := Memcached(1)
	const total = 400

	exact := NewDriver(w, sampledSystem(t, w, core.Base(1)), 4)
	if err := exact.Warmup(10); err != nil {
		t.Fatal(err)
	}
	before := exact.System().Counters()
	if _, err := exact.Run(total); err != nil {
		t.Fatal(err)
	}
	d := exact.System().Counters().Sub(before)
	exactRate := float64(d.Instructions) / total

	sampled := NewDriver(w, sampledSystem(t, w, core.Base(1)), 4)
	if err := sampled.Warmup(10); err != nil {
		t.Fatal(err)
	}
	run, err := sampled.RunSampled(total, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Windows) != 8 {
		t.Fatalf("got %d windows, want 8", len(run.Windows))
	}
	if run.FastForwarded+run.Warmed+run.Measured != total/8 {
		t.Fatalf("window split %d+%d+%d != %d", run.FastForwarded, run.Warmed, run.Measured, total/8)
	}
	var rates []float64
	for i, win := range run.Windows {
		if win.Requests != run.Measured {
			t.Fatalf("window %d measured %d requests, want %d", i, win.Requests, run.Measured)
		}
		if win.Counters.Instructions == 0 {
			t.Fatalf("window %d measured no instructions", i)
		}
		rates = append(rates, float64(win.Counters.Instructions)/float64(win.Requests))
	}
	mean, ci := stats.MeanCI95(rates)
	if ci <= 0 {
		t.Fatalf("degenerate CI %v over %d windows", ci, len(rates))
	}
	// The request mix is stochastic per window, so allow a generous
	// multiple of the CI; catching gross estimator bugs is the point.
	if diff := math.Abs(mean - exactRate); diff > 4*ci && diff > 0.1*exactRate {
		t.Errorf("sampled instructions/request = %.1f ± %.1f, exact = %.1f (off by %.1f)",
			mean, ci, exactRate, diff)
	}

	// Latency samples pool only measured requests.
	n := 0
	for _, s := range run.Classes {
		n += s.N()
	}
	if want := 8 * run.Measured; n != want {
		t.Errorf("pooled %d latency samples, want %d", n, want)
	}
}

// TestRunSampledDeterministic pins the sampled path's replayability:
// identical drivers produce byte-identical window deltas.
func TestRunSampledDeterministic(t *testing.T) {
	w := Memcached(1)
	one := func() *SampledRun {
		d := NewDriver(w, sampledSystem(t, w, core.Base(1)), 9)
		run, err := d.RunSampled(200, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a, b := one(), one()
	if !reflect.DeepEqual(a.Windows, b.Windows) {
		t.Errorf("sampled windows diverge across identical runs:\n  %+v\n  %+v", a.Windows, b.Windows)
	}
}

// TestRunSampledValidation covers the parameter and precondition
// errors: bad window counts, oversize warmup, and a CPU without a
// compiled program (fast-forward needs one).
func TestRunSampledValidation(t *testing.T) {
	w := Memcached(1)
	sys, err := w.NewSystem(core.Base(1))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(w, sys, 2)
	if _, err := d.RunSampled(100, 0, 2); err == nil {
		t.Error("windows=0 accepted")
	}
	if _, err := d.RunSampled(100, 4, -1); err == nil {
		t.Error("negative warmup accepted")
	}
	if _, err := d.RunSampled(40, 10, 5); err == nil {
		t.Error("warmup wider than window accepted")
	}
	// No compiled program installed: the first fast-forward must fail.
	if _, err := d.RunSampled(400, 4, 2); err == nil {
		t.Error("sampled run without a compiled program succeeded")
	}
}
