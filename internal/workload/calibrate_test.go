package workload

import (
	"testing"

	"repro/internal/core"
)

// calibration holds the paper's published structure for each workload
// (Tables 2 and 3) with the tolerance bands our synthetic generators
// must land in.  PKI bands are wide — the goal is ordering and
// magnitude, not digit-matching a different machine.
type calibration struct {
	name          string
	gen           func(uint64) *Workload
	paperPKI      float64 // Table 2
	pkiLo, pkiHi  float64
	paperDistinct int // Table 3
	distinctLo    int
	distinctHi    int
	warm, measure int
}

var calibrations = []calibration{
	{name: "apache", gen: Apache, paperPKI: 12.23, pkiLo: 8, pkiHi: 17,
		paperDistinct: 501, distinctLo: 380, distinctHi: 620, warm: 60, measure: 150},
	// Firefox's distinct-trampoline count converges slowly: the paper
	// counted over a full Peacekeeper run; our window covers most but
	// not all of the 2000+ cold tail.
	{name: "firefox", gen: Firefox, paperPKI: 0.72, pkiLo: 0.4, pkiHi: 1.2,
		paperDistinct: 2457, distinctLo: 1500, distinctHi: 2600, warm: 20, measure: 150},
	{name: "memcached", gen: Memcached, paperPKI: 1.75, pkiLo: 1.0, pkiHi: 3.2,
		paperDistinct: 33, distinctLo: 28, distinctHi: 40, warm: 60, measure: 200},
	{name: "mysql", gen: MySQL, paperPKI: 5.56, pkiLo: 3.5, pkiHi: 8,
		paperDistinct: 1611, distinctLo: 1050, distinctHi: 1800, warm: 40, measure: 120},
}

// TestCalibration checks that every synthetic workload reproduces the
// paper's library-call structure: trampoline PKI within band, distinct
// trampoline count within band, and the cross-workload ordering of
// both metrics.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs millions of instructions")
	}
	pki := map[string]float64{}
	distinct := map[string]int{}
	for _, cal := range calibrations {
		cal := cal
		t.Run(cal.name, func(t *testing.T) {
			w := cal.gen(1)
			sys, err := w.NewSystem(core.Base(1))
			if err != nil {
				t.Fatal(err)
			}
			d := NewDriver(w, sys, 1)
			if err := d.Warmup(cal.warm); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Run(cal.measure); err != nil {
				t.Fatal(err)
			}
			c := sys.Counters()
			p := core.PKIOf(c)
			n := sys.LifetimeRecorder().Distinct()
			pki[cal.name] = p.TrampInstrs
			distinct[cal.name] = n

			instrPerReq := float64(c.Instructions) / float64(cal.measure)
			t.Logf("%s: trampPKI=%.2f (paper %.2f) distinct=%d (paper %d) instr/req=%.0f "+
				"I$=%.2f ITLB=%.2f D$=%.2f DTLB=%.2f mispred=%.2f PKI; IPCish cycles/instr=%.2f",
				cal.name, p.TrampInstrs, cal.paperPKI, n, cal.paperDistinct, instrPerReq,
				p.L1IMisses, p.ITLBMisses, p.L1DMisses, p.DTLBMisses, p.Mispredicts,
				float64(c.Cycles)/float64(c.Instructions))

			if p.TrampInstrs < cal.pkiLo || p.TrampInstrs > cal.pkiHi {
				t.Errorf("trampoline PKI %.2f outside [%.2f, %.2f] (paper: %.2f)",
					p.TrampInstrs, cal.pkiLo, cal.pkiHi, cal.paperPKI)
			}
			if n < cal.distinctLo || n > cal.distinctHi {
				t.Errorf("distinct trampolines %d outside [%d, %d] (paper: %d)",
					n, cal.distinctLo, cal.distinctHi, cal.paperDistinct)
			}
		})
	}
	if t.Failed() {
		return
	}
	// Cross-workload orderings from Tables 2 and 3.
	if !(pki["apache"] > pki["mysql"] && pki["mysql"] > pki["memcached"] && pki["memcached"] > pki["firefox"]) {
		t.Errorf("PKI ordering wrong: %v", pki)
	}
	if !(distinct["firefox"] > distinct["mysql"] && distinct["mysql"] > distinct["apache"] && distinct["apache"] > distinct["memcached"]) {
		t.Errorf("distinct ordering wrong: %v", distinct)
	}
}
