// JIT runtime: a process that rewrites its own hot GOT bindings at
// runtime, the "re-resolve" face of library churn.  Compile requests
// retarget dispatch symbols between implementation variants (tier-up /
// deopt, the way a JIT flips a function's entry between interpreter
// stub and compiled code); Execute requests call through whatever is
// currently bound.
//
// No modules load or unload here — churn is pure guest-code GOT
// traffic — so this workload isolates the store-snoop path: every
// rebind store must flush a Bloom-hit ABTB whether it executes on the
// detailed, compiled or fast-forward kernel.  It is the pin workload
// for the FastForward snoop fix.

package workload

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/objfile"
)

const (
	jitDispatch = 4 // hot rebindable dispatch symbols
	jitCallsPer = 6 // calls through each dispatch symbol per Execute
)

// JIT generates the GOT-rewriting workload.
func JIT(seed uint64) *Workload {
	rng := rand.New(rand.NewPCG(seed, 0x71bd2c))

	libSpecs := []libParams{
		{name: "libjrt", nFuncs: 40, dataBytes: 8 << 10, bodyALU: [2]int{16, 44},
			bodyLoads: [2]int{1, 4}, loadSpan: 4, stores: 1, condEvery: 10, condBias: 90,
			loopPct: 12, loopIters: 62},
	}
	libs, funcsByLib := genLibraryBundle(rng, libSpecs)
	rtPool := make([]string, len(funcsByLib[0]))
	copy(rtPool, funcsByLib[0])
	rng.Shuffle(len(rtPool), func(i, j int) { rtPool[i], rtPool[j] = rtPool[j], rtPool[i] })

	// libjit exports, per dispatch slot: the dispatch symbol itself
	// (initially bound to a slow interpreter-ish body) and two
	// implementation variants with distinct cost profiles, so a stale
	// indirect-branch target is visible in cycle counts, not just wrong
	// in principle.
	jit := objfile.New("libjit")
	const stateBytes = 16 << 10
	jit.AddData("jstate", stateBytes)
	off := func() uint64 { return (rng.Uint64() % (stateBytes - 64)) &^ 7 }
	for i := 0; i < jitDispatch; i++ {
		d := jit.NewFunc(jitDispatchName(i))
		emitBody(d, rng, bodySpec{region: "jstate", regionLen: stateBytes, alu: 30,
			loads: 5, span: 2, stores: 1, condEvery: 7, condBias: 85})
		d.Ret()
		a := jit.NewFunc(jitImplName(i, "a"))
		a.ALU(4)
		a.Load("jstate", off(), 4)
		emitKernel(a, rng, "jstate", stateBytes, 6, 2, 70)
		a.Ret()
		b := jit.NewFunc(jitImplName(i, "b"))
		emitBody(b, rng, bodySpec{region: "jstate", regionLen: stateBytes, alu: 18,
			loads: 3, span: 4, stores: 1, condEvery: 8, condBias: 88})
		b.Ret()
	}
	libs = append(libs, jit)

	app := buildJITApp(rng, rtPool)

	classes := []RequestClass{
		{Name: "Compile", Entry: "handle_Compile", Weight: 1},
		{Name: "Execute", Entry: "handle_Execute", Weight: 4},
	}
	return &Workload{Name: "jit", App: app, Libs: libs, Classes: classes}
}

func jitDispatchName(i int) string       { return fmt.Sprintf("jit_fn%d", i) }
func jitImplName(i int, v string) string { return fmt.Sprintf("jit_impl%d_%s", i, v) }

// buildJITApp builds the runtime binary.  handle_Compile rebinds every
// dispatch GOT entry twice (tier-up to variant a, then deopt half of
// them to variant b), calling through the slot after each rebind —
// exactly the store-then-indirect-branch sequence the ABTB must snoop.
func buildJITApp(rng *rand.Rand, rtPool []string) *objfile.Object {
	app := objfile.New("jitvm")
	app.AddData("heap", 16<<10)

	pad := func(f *objfile.Func) {
		f.ALU(5 + rng.IntN(6))
		f.Load("heap", uint64(rng.Uint64()%(12<<10))&^7, 4)
	}

	compile := app.NewFunc("handle_Compile")
	emitBody(compile, rng, bodySpec{region: "heap", regionLen: 16 << 10, alu: 50,
		loads: 8, span: 4, stores: 2, condEvery: 9, condBias: 88})
	for i := 0; i < jitDispatch; i++ {
		compile.RebindImport(jitDispatchName(i), jitImplName(i, "a"))
		pad(compile)
		compile.Call(jitDispatchName(i))
		if i%2 == 1 {
			compile.RebindImport(jitDispatchName(i), jitImplName(i, "b"))
			compile.Call(jitDispatchName(i))
		}
	}
	emitTieredCalls(compile, rng, []tier{
		{names: rtPool[:10], pct: 100, maxBurst: 4},
	}, pad)
	compile.Halt()

	execute := app.NewFunc("handle_Execute")
	emitBody(execute, rng, bodySpec{region: "heap", regionLen: 16 << 10, alu: 24,
		loads: 4, span: 4, stores: 1, condEvery: 9, condBias: 88})
	for i := 0; i < jitDispatch; i++ {
		for k := 0; k < jitCallsPer; k++ {
			pad(execute)
			execute.Call(jitDispatchName(i))
		}
	}
	emitTieredCalls(execute, rng, []tier{
		{names: rtPool[10:22], pct: 100, maxBurst: 4, zipf: true},
		{names: rtPool[22:34], pct: 15},
	}, pad)
	emitKernel(execute, rng, "heap", 16<<10, 14, 8, 76)
	execute.Halt()

	return app
}
