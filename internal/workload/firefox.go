// Firefox running the Peacekeeper browser benchmark (§4.4).
//
// Calibration targets from the paper: 2457 distinct trampolines
// (Table 3 — the widest library surface of all workloads) exercised
// *infrequently* (Table 2: only 0.72 trampoline instructions PKI,
// "execution is dominated by small computation kernels"), a shallow
// rank/frequency curve (Figure 4), the lowest cache/TLB pressure of
// the four workloads (Table 4), and Peacekeeper category scores that
// improve by ~1-3% (Table 5).

package workload

import (
	"math/rand/v2"

	"repro/internal/objfile"
)

// firefoxClasses mirror Table 5's Peacekeeper categories.
var firefoxClasses = []string{"Rendering", "Canvas", "Data", "DOM", "TextParsing"}

// Firefox generates the Firefox/Peacekeeper workload.
func Firefox(seed uint64) *Workload {
	rng := rand.New(rand.NewPCG(seed, 0xf1ef0c5))

	libSpecs := []libParams{
		{name: "libglib", nFuncs: 220, ifuncs: 8, dataBytes: 256 << 10, bodyALU: [2]int{12, 30},
			bodyLoads: [2]int{1, 4}, loadSpan: 24, stores: 1, condEvery: 7, condBias: 84,
			loopPct: 5, loopIters: 55, crossCalls: 80, crossPct: 45},
		{name: "libgtk", nFuncs: 260, dataBytes: 256 << 10, bodyALU: [2]int{12, 32},
			bodyLoads: [2]int{1, 4}, loadSpan: 24, stores: 1, condEvery: 7, condBias: 84,
			loopPct: 5, loopIters: 55, crossCalls: 110, crossPct: 45},
		{name: "libcairo", nFuncs: 180, dataBytes: 512 << 10, bodyALU: [2]int{16, 40},
			bodyLoads: [2]int{2, 5}, loadSpan: 48, stores: 1, condEvery: 8, condBias: 86,
			loopPct: 20, loopIters: 72, crossCalls: 70, crossPct: 45},
		{name: "libpango", nFuncs: 120, dataBytes: 128 << 10, bodyALU: [2]int{14, 36},
			bodyLoads: [2]int{1, 4}, loadSpan: 24, stores: 1, condEvery: 7, condBias: 85,
			loopPct: 10, loopIters: 65, crossCalls: 50, crossPct: 45},
		{name: "libfreetype", nFuncs: 110, dataBytes: 256 << 10, bodyALU: [2]int{18, 44},
			bodyLoads: [2]int{2, 5}, loadSpan: 32, stores: 1, condEvery: 7, condBias: 84,
			loopPct: 20, loopIters: 70, crossCalls: 30, crossPct: 40},
		{name: "libx11", nFuncs: 160, dataBytes: 128 << 10, bodyALU: [2]int{12, 30},
			bodyLoads: [2]int{1, 3}, loadSpan: 16, stores: 1, condEvery: 8, condBias: 88,
			loopPct: 5, loopIters: 55, crossCalls: 50, crossPct: 45},
		{name: "libnss", nFuncs: 170, dataBytes: 256 << 10, bodyALU: [2]int{18, 44},
			bodyLoads: [2]int{2, 5}, loadSpan: 32, stores: 1, condEvery: 7, condBias: 82,
			loopPct: 12, loopIters: 65, crossCalls: 60, crossPct: 45},
		{name: "libnspr", nFuncs: 120, dataBytes: 128 << 10, bodyALU: [2]int{12, 30},
			bodyLoads: [2]int{1, 4}, loadSpan: 16, stores: 1, condEvery: 8, condBias: 86,
			loopPct: 5, loopIters: 55, crossCalls: 40, crossPct: 45},
		{name: "libsqlite", nFuncs: 150, dataBytes: 1 << 20, bodyALU: [2]int{16, 40},
			bodyLoads: [2]int{2, 6}, loadSpan: 96, stores: 1, condEvery: 6, condBias: 78,
			loopPct: 12, loopIters: 65, crossCalls: 40, crossPct: 45},
		{name: "libstdcppff", nFuncs: 150, dataBytes: 256 << 10, bodyALU: [2]int{12, 32},
			bodyLoads: [2]int{1, 4}, loadSpan: 24, stores: 1, condEvery: 7, condBias: 84,
			loopPct: 5, loopIters: 55, crossCalls: 50, crossPct: 45},
		{name: "libcff", nFuncs: 260, dataBytes: 512 << 10, bodyALU: [2]int{14, 36},
			bodyLoads: [2]int{2, 5}, loadSpan: 32, stores: 1, condEvery: 7, condBias: 84,
			loopPct: 8, loopIters: 60, crossCalls: 0},
	}
	libs, funcsByLib := genLibraryBundle(rng, libSpecs)

	app := objfile.New("firefox")
	app.AddData("dom", 4<<20)
	app.AddData("canvas", 8<<20)
	app.AddData("strings", 2<<20)

	var pool []string
	for _, names := range funcsByLib {
		pool = append(pool, names...)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	const (
		nSharedHot = 8
		nClassHot  = 6
		nClassWarm = 200 // shallow curve: a wide moderately-used middle
		nClassCold = 135
		warmPct    = 6
		coldPct    = 3
	)
	take := func(n int) []string {
		if n > len(pool) {
			panic("workload: firefox pool exhausted")
		}
		out := pool[:n]
		pool = pool[n:]
		return out
	}
	sharedHot := take(nSharedHot)

	// kernel emits a hot computation loop: the "small computation
	// kernels" that dominate browser benchmark execution.  High
	// iteration counts give code reuse (low I-cache pressure) and
	// predictable branches (low misprediction rate).
	kernel := func(f *objfile.Func, region string, regionLen uint64, iters uint8) {
		start := len(f.Body)
		f.ALU(20)
		f.Load(region, uint64(rng.Uint64()%(regionLen-8192))&^7, 16)
		f.ALU(16)
		f.Store(region, uint64(rng.Uint64()%(regionLen-8192))&^7, 16, rng.Uint64())
		f.ALU(8)
		f.LoopBack(iters, len(f.Body)-start)
	}

	regions := map[string]uint64{"dom": 4 << 20, "canvas": 8 << 20, "strings": 2 << 20}
	regionFor := map[string]string{
		"Rendering": "canvas", "Canvas": "canvas", "Data": "strings",
		"DOM": "dom", "TextParsing": "strings",
	}

	for _, class := range firefoxClasses {
		h := app.NewFunc("handle_" + class)
		region := regionFor[class]
		regionLen := regions[region]

		// Shared hot functions are called in bursts with a medium
		// kernel between calls; class-specific hot functions get a
		// long kernel each, keeping trampoline density below 1 PKI.
		medium := func(f *objfile.Func) { kernel(f, region, regionLen, 98) }
		long := func(f *objfile.Func) { kernel(f, region, regionLen, 99) }
		emitTieredCalls(h, rng, []tier{
			{names: sharedHot, pct: 100, maxBurst: 12, zipf: true},
		}, medium)
		emitTieredCalls(h, rng, []tier{
			{names: take(nClassHot), pct: 100},
			{names: take(nClassWarm), pct: warmPct, maxBurst: 6},
			{names: take(nClassCold), pct: coldPct},
		}, long)
		kernel(h, region, regionLen, 99)
		kernel(h, region, regionLen, 98)
		h.Halt()
	}

	classes := make([]RequestClass, len(firefoxClasses))
	for i, name := range firefoxClasses {
		classes[i] = RequestClass{Name: name, Entry: "handle_" + name, Weight: 1}
	}
	return &Workload{Name: "firefox", App: app, Libs: libs, Classes: classes}
}
