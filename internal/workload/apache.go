// Apache web server serving the SPECweb 2009 request mix (§4.4).
//
// Structure calibrated against the paper's measurements of the real
// server: the highest library-call density of the four workloads
// (Table 2: 12.23 trampoline instructions PKI), ~500 distinct
// trampolines (Table 3) spread over many libraries, a steep
// rank/frequency curve (Figure 4: a specific set of library calls per
// request), and the largest instruction-cache footprint (Table 4).

package workload

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/objfile"
)

// apacheClassNames are the SPECweb request types plotted in Figure 6.
var apacheClassNames = []string{"Index", "Search", "Catalog", "Product", "FileCatalog", "File"}

// Apache generates the Apache/SPECweb workload.
func Apache(seed uint64) *Workload {
	rng := rand.New(rand.NewPCG(seed, 0xa9ac4e))

	// The shared-library bundle of a mod_php Apache: sizes loosely
	// proportional to the real libraries' exported-and-used surface.
	// Per-library data stays small (library state is mostly compact;
	// the D-cache traffic of the real server is dominated by request
	// buffers), and bodies are branchy mid-size functions.
	libSpecs := []libParams{
		{name: "libc", nFuncs: 130, ifuncs: 10, dataBytes: 8 << 10, bodyALU: [2]int{18, 48},
			bodyLoads: [2]int{1, 4}, loadSpan: 4, stores: 1, condEvery: 11, condBias: 90,
			loopPct: 10, loopIters: 60, crossCalls: 0},
		{name: "libphp", nFuncs: 110, dataBytes: 12 << 10, bodyALU: [2]int{22, 56},
			bodyLoads: [2]int{1, 5}, loadSpan: 4, stores: 1, condEvery: 10, condBias: 89,
			loopPct: 15, loopIters: 65, crossCalls: 30, crossPct: 30},
		{name: "libssl", nFuncs: 70, dataBytes: 8 << 10, bodyALU: [2]int{26, 64},
			bodyLoads: [2]int{1, 3}, loadSpan: 4, stores: 1, condEvery: 12, condBias: 92,
			loopPct: 20, loopIters: 68, crossCalls: 16, crossPct: 30},
		{name: "libapr", nFuncs: 64, dataBytes: 8 << 10, bodyALU: [2]int{16, 40},
			bodyLoads: [2]int{1, 4}, loadSpan: 4, stores: 1, condEvery: 11, condBias: 90,
			loopPct: 8, loopIters: 60, crossCalls: 18, crossPct: 30},
		{name: "libaprutil", nFuncs: 52, dataBytes: 8 << 10, bodyALU: [2]int{16, 40},
			bodyLoads: [2]int{1, 3}, loadSpan: 4, stores: 0, condEvery: 11, condBias: 90,
			loopPct: 8, loopIters: 60, crossCalls: 14, crossPct: 28},
		{name: "libpcre", nFuncs: 40, dataBytes: 8 << 10, bodyALU: [2]int{24, 56},
			bodyLoads: [2]int{1, 4}, loadSpan: 4, stores: 0, condEvery: 9, condBias: 88,
			loopPct: 25, loopIters: 70, crossCalls: 6, crossPct: 25},
		{name: "libz", nFuncs: 30, dataBytes: 8 << 10, bodyALU: [2]int{28, 64},
			bodyLoads: [2]int{1, 4}, loadSpan: 4, stores: 1, condEvery: 10, condBias: 89,
			loopPct: 30, loopIters: 72, crossCalls: 4, crossPct: 25},
		{name: "libxml", nFuncs: 64, dataBytes: 8 << 10, bodyALU: [2]int{20, 48},
			bodyLoads: [2]int{1, 4}, loadSpan: 4, stores: 1, condEvery: 11, condBias: 90,
			loopPct: 12, loopIters: 62, crossCalls: 16, crossPct: 30},
	}
	libs, funcsByLib := genLibraryBundle(rng, libSpecs)

	app := buildApacheApp(rng, funcsByLib)

	classes := make([]RequestClass, len(apacheClassNames))
	weights := []float64{3, 2, 2, 2, 1, 2} // Index-heavy, as SPECweb is
	for i, name := range apacheClassNames {
		classes[i] = RequestClass{Name: name, Entry: "handle_" + name, Weight: weights[i]}
	}
	return &Workload{Name: "apache", App: app, Libs: libs, Classes: classes}
}

// genLibraryBundle generates each library, wiring cross-library calls
// from earlier libraries into later ones (an acyclic call graph, so
// simulated call depth stays bounded).
func genLibraryBundle(rng *rand.Rand, specs []libParams) (libs []*objfile.Object, funcsByLib [][]string) {
	// Pre-compute every library's function names so earlier libraries
	// can call later ones.
	allNames := make([][]string, len(specs))
	for i, p := range specs {
		names := make([]string, p.nFuncs)
		for j := range names {
			names[j] = fmt.Sprintf("%s_fn%03d", p.name, j)
		}
		allNames[i] = names
	}
	for i, p := range specs {
		var crossTargets []string
		for j := i + 1; j < len(specs); j++ {
			crossTargets = append(crossTargets, allNames[j]...)
		}
		lib, names := genLib(rng, p, crossTargets)
		libs = append(libs, lib)
		funcsByLib = append(funcsByLib, names)
	}
	return libs, funcsByLib
}

// buildApacheApp builds the server binary: per-class request handlers
// over a shared set of helpers and a tiered library-call surface.
func buildApacheApp(rng *rand.Rand, funcsByLib [][]string) *objfile.Object {
	app := objfile.New("httpd")
	app.AddData("req", 16<<10)
	app.AddData("conn", 16<<10)

	// Flatten the library surface and carve it into tiers.
	var pool []string
	for _, names := range funcsByLib {
		pool = append(pool, names...)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	// The paper's Figure 4 shows steep cutoffs for Apache: "a very
	// specific set of library calls was made for every request
	// serviced".  Every request traverses one shared pipeline -- as
	// real SPECweb request types share the httpd+php code path and
	// differ mainly in data -- calling a large fixed set of library
	// functions (the hottest in long bursts, the rest in short ones),
	// plus a small per-class section and a rare tail.  The shared
	// pipeline also concentrates the BTB working set the way real
	// servers do: call sites repeat every request, so only trampoline
	// pressure (which the ABTB removes) produces BTB misses.
	const (
		nSharedHot   = 44  // every request, long bursts
		nSharedFixed = 170 // every request, short bursts
		nClassFixed  = 15  // per class, every request of the class
		nClassWarm   = 9   // per class, occasionally
		nClassCold   = 8   // per class, rare
		warmPct      = 3
		coldPct      = 1
		nSteps       = 110 // shared server step functions (I$ footprint)
	)
	take := func(n int) []string {
		if n > len(pool) {
			panic("workload: apache pool exhausted")
		}
		out := pool[:n]
		pool = pool[n:]
		return out
	}

	// App-internal helpers: direct calls, contributing app text.
	parse := app.NewFunc("parse_request")
	emitBody(parse, rng, bodySpec{region: "req", regionLen: 16 << 10, alu: 60,
		loads: 10, span: 4, stores: 2, condEvery: 8, condBias: 88})
	parse.Ret()
	logf := app.NewFunc("log_access")
	emitBody(logf, rng, bodySpec{region: "conn", regionLen: 16 << 10, alu: 30,
		loads: 4, span: 4, stores: 3, condEvery: 8, condBias: 90})
	logf.Ret()

	// The shared library-call pipeline.
	pipe := app.NewFunc("request_pipeline")
	pad := func(f *objfile.Func) {
		f.ALU(8 + rng.IntN(8))
		f.Load("req", uint64(rng.Uint64()%(12<<10))&^7, 4)
	}
	emitTieredCalls(pipe, rng, []tier{
		{names: take(nSharedHot), pct: 100, maxBurst: 32, zipf: true},
		{names: take(nSharedFixed), pct: 100, maxBurst: 4},
	}, pad)
	pipe.Ret()

	// Shared server steps: header handling, content generation,
	// filters.  Their combined text (~70 KiB) exceeds the L1I, giving
	// Apache the largest instruction-cache footprint of the four
	// workloads (Table 4), as every request walks most of it.
	stepNames := make([]string, nSteps)
	for i := range stepNames {
		stepNames[i] = fmt.Sprintf("httpd_step%03d", i)
		step := app.NewFunc(stepNames[i])
		emitBody(step, rng, bodySpec{region: "conn", regionLen: 16 << 10,
			alu: 110 + rng.IntN(80), loads: 5, span: 4, stores: 1,
			condEvery: 12, condBias: 90})
		step.Ret()
	}

	for ci, class := range apacheClassNames {
		h := app.NewFunc("handle_" + class)
		h.Call("parse_request")
		h.Call("request_pipeline")
		// Request types execute overlapping prefixes of the server
		// steps; longer prefixes make heavier request types.
		for i := 0; i < 60+ci*10; i++ {
			h.Call(stepNames[i])
		}
		emitTieredCalls(h, rng, []tier{
			{names: take(nClassFixed), pct: 100, maxBurst: 4},
			{names: take(nClassWarm), pct: warmPct, maxBurst: 4},
			{names: take(nClassCold), pct: coldPct},
		}, pad)
		// Response assembly kernel over the request buffer.
		emitKernel(h, rng, "req", 16<<10, 18, 8, 75)
		h.Call("log_access")
		h.Halt()
	}
	return app
}
