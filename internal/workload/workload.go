// Package workload generates the four synthetic applications the
// evaluation runs: Apache (SPECweb 2009), Memcached (CloudSuite),
// MySQL (TPC-C), and Firefox (Peacekeeper).
//
// The paper's hardware proposal only interacts with a program through
// its library-call structure: how many distinct PLT trampolines it
// exercises (Table 3), how often (Table 2's trampoline instructions
// per kilo-instruction), with what popularity skew (Figure 4), and
// with what surrounding cache/TLB/branch behaviour (Table 4's base
// columns).  Each generator therefore builds an application + library
// bundle whose *structure* is calibrated to the paper's measurements
// of the real software, while the code itself is synthetic:
//
//   - libraries export functions whose bodies mix ALU work, loads and
//     stores over per-library data, conditional branches, and
//     cross-library calls (which produce inter-library trampolines,
//     §2.2's "one in each PLT" effect);
//   - request handlers call a tiered set of library functions: a hot
//     tier called on every request, warm tiers gated by conditional
//     branches with moderate probability, and cold tiers behind
//     nested gates with small probability — reproducing the steep
//     (Apache, Memcached) and shallow (Firefox) rank/frequency curves
//     of Figure 4;
//   - every dynamic decision is a deterministic function of the
//     instruction address and its execution count, so request
//     sequences replay identically on every hardware configuration.
package workload

import (
	"context"
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/objfile"
	"repro/internal/stats"
)

// RequestClass is one request type of a workload (e.g. a SPECweb
// request kind, a Memcached GET, a TPC-C transaction).
type RequestClass struct {
	Name   string
	Entry  string  // entry symbol in the app object
	Weight float64 // relative frequency in the mixed request stream
}

// Workload is a generated application bundle.
//
// A Workload is immutable after generation: NewSystem only reads the
// objects (see core.NewSystem), and Drivers read Classes without
// writing them.  One generated Workload may therefore back any number
// of concurrent systems and drivers — the sharing contract
// internal/pool relies on to generate each (workload, seed) once.
type Workload struct {
	Name    string
	App     *objfile.Object
	Libs    []*objfile.Object
	Classes []RequestClass

	// Churn, when non-nil, makes drivers periodically unload and
	// reload library modules mid-stream (see ChurnPlan).  The plan and
	// its objects are immutable like the rest of the Workload; all
	// mutable churn state lives in the Driver and the driven system's
	// image.
	Churn *ChurnPlan
}

// NewSystem links the workload under the given system configuration.
func (w *Workload) NewSystem(cfg core.Config) (*core.System, error) {
	return core.NewSystem(w.App, w.Libs, cfg)
}

// Class returns the request class named name, or an error.
func (w *Workload) Class(name string) (RequestClass, error) {
	for _, c := range w.Classes {
		if c.Name == name {
			return c, nil
		}
	}
	return RequestClass{}, fmt.Errorf("workload %s: no request class %q", w.Name, name)
}

// Driver replays a mixed request stream against a system and collects
// per-class latency samples.
type Driver struct {
	w   *Workload
	sys *core.System
	rng *rand.Rand
	cum []float64 // cumulative class weights

	// PerturbEvery, when positive, injects a measurement perturbation
	// every that-many requests: the process is context-switched away
	// and back (flushing TLBs, predictor state and an untagged ABTB),
	// so the next request runs cold and becomes a latency outlier.
	// This models the paper's observation of 5-6 outliers per 10,000
	// requests from "perturbations in the system (e.g., the
	// performance counter interrupts)", which their plots — and our
	// CDF pipeline via stats.TrimOutliers — filter out.  Zero
	// disables perturbation.
	PerturbEvery int

	served int

	// Churn state: requests since driver creation (all phases), slot
	// rotation cursor, and each slot's currently loaded generation.
	churnOps  int
	rotations int
	slotGen   []int
}

// DriverSeedOffset decorrelates the request-interleaving RNG from the
// generation/layout RNG streams that already consumed the raw spec
// seed.  Every measurement harness must apply the same offset — a
// drift between call sites silently changes request streams and thus
// every published number — so the offset lives here, next to the
// driver it seeds, and callers go through DriverSeed.
const DriverSeedOffset = 17

// DriverSeed maps a job/suite seed to the driver's interleaving seed.
// runner.execute and every experiments call site use this helper; see
// TestDriverSeedPinned for the pinned value.
func DriverSeed(seed uint64) uint64 { return seed + DriverSeedOffset }

// NewDriver returns a driver over the workload and system.  The seed
// fixes the class-interleaving order; drivers for systems under
// comparison must use the same seed (derive it with DriverSeed).
func NewDriver(w *Workload, sys *core.System, seed uint64) *Driver {
	cum := make([]float64, len(w.Classes))
	total := 0.0
	for i, c := range w.Classes {
		total += c.Weight
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Driver{w: w, sys: sys, rng: rand.New(rand.NewPCG(seed, 0xd21e7)), cum: cum}
}

// System returns the driven system.
func (d *Driver) System() *core.System { return d.sys }

// Workload returns the driven workload.
func (d *Driver) Workload() *Workload { return d.w }

func (d *Driver) pick() RequestClass {
	x := d.rng.Float64()
	for i, c := range d.cum {
		if x < c {
			return d.w.Classes[i]
		}
	}
	return d.w.Classes[len(d.w.Classes)-1]
}

// Warmup pre-binds every GOT slot (the steady state of a long-running
// server, where lazy resolution finished hours ago), serves n mixed
// requests to warm the caches, TLBs, predictors and ABTB, and then
// clears measurement state.
func (d *Driver) Warmup(n int) error {
	return d.WarmupContext(context.Background(), n)
}

// WarmupContext is Warmup with cancellation: it checks ctx between
// requests, so a cancelled or expired context stops the warmup at a
// request boundary.  The request sequence is identical to Warmup's.
func (d *Driver) WarmupContext(ctx context.Context, n int) error {
	d.sys.Image().BindAll()
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return fmt.Errorf("workload %s: warmup request %d: %w", d.w.Name, i, ctx.Err())
		default:
		}
		if _, err := d.sys.RunOnce(d.pick().Entry); err != nil {
			return fmt.Errorf("workload %s: warmup request %d: %w", d.w.Name, i, err)
		}
		if err := d.churnTick(); err != nil {
			return fmt.Errorf("workload %s: warmup request %d: %w", d.w.Name, i, err)
		}
	}
	d.sys.ResetStats()
	return nil
}

// Run serves n mixed requests, returning per-class latency samples in
// microseconds.
func (d *Driver) Run(n int) (map[string]*stats.Sample, error) {
	return d.RunContext(context.Background(), n)
}

// RunContext is Run with cancellation: it checks ctx between requests,
// so a cancelled or expired context stops the measurement at a request
// boundary.  The request sequence is identical to Run's.
func (d *Driver) RunContext(ctx context.Context, n int) (map[string]*stats.Sample, error) {
	out := make(map[string]*stats.Sample, len(d.w.Classes))
	for _, c := range d.w.Classes {
		out[c.Name] = &stats.Sample{}
	}
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("workload %s: request %d: %w", d.w.Name, i, ctx.Err())
		default:
		}
		c := d.pick()
		d.served++
		if d.PerturbEvery > 0 && d.served%d.PerturbEvery == 0 {
			// The OS takes the core away and gives it back cold.
			d.sys.CPU().ContextSwitch(0xdead)
			d.sys.CPU().ContextSwitch(1)
		}
		res, err := d.sys.RunOnce(c.Entry)
		if err != nil {
			return nil, fmt.Errorf("workload %s: request %d (%s): %w", d.w.Name, i, c.Name, err)
		}
		out[c.Name].Add(core.Micros(res.Cycles))
		if err := d.churnTick(); err != nil {
			return nil, fmt.Errorf("workload %s: request %d (%s): %w", d.w.Name, i, c.Name, err)
		}
	}
	return out, nil
}

// WindowDelta is the measured portion of one sampling window: the
// counter deltas over Requests detailed requests.
type WindowDelta struct {
	Counters cpu.Counters
	Requests int
}

// SampledRun is the result of RunSampledContext: one WindowDelta per
// measurement window plus the pooled per-class latency samples of all
// measured requests.
type SampledRun struct {
	Windows []WindowDelta
	Classes map[string]*stats.Sample

	// Per-window request budget split, recorded for reporting.
	FastForwarded int // architectural-only requests per window
	Warmed        int // detailed, discarded requests per window
	Measured      int // detailed, measured requests per window
}

// RunSampled is RunSampledContext with a background context.
func (d *Driver) RunSampled(total, windows, warmup int) (*SampledRun, error) {
	return d.RunSampledContext(context.Background(), total, windows, warmup)
}

// RunSampledContext serves total mixed requests split into windows
// evenly spaced sampling windows, SMARTS-style: most of each window is
// fast-forwarded with architectural fidelity only (GOT resolutions and
// data stores happen, caches/TLBs/predictors are not touched), then
// warmup detailed requests rebuild microarchitectural state and are
// discarded, and the remaining ~10% of the window is measured in full
// detail.  The request stream — class picks, served count, perturbation
// schedule — is identical to RunContext's, so the measured windows are
// genuine excerpts of the exact run.
//
// Fast-forwarding requires a compiled trace program on the system's CPU
// (cpu.SetProgram); without one the first window fails.
func (d *Driver) RunSampledContext(ctx context.Context, total, windows, warmup int) (*SampledRun, error) {
	if windows < 1 {
		return nil, fmt.Errorf("workload %s: sampled run needs >= 1 window, got %d", d.w.Name, windows)
	}
	if warmup < 0 {
		return nil, fmt.Errorf("workload %s: negative sampled warmup %d", d.w.Name, warmup)
	}
	perWin := total / windows
	if perWin < warmup+1 {
		return nil, fmt.Errorf("workload %s: %d requests over %d windows leaves %d per window, need >= warmup+1 = %d",
			d.w.Name, total, windows, perWin, warmup+1)
	}
	measured := perWin / 10
	if measured < 1 {
		measured = 1
	}
	if measured > perWin-warmup {
		measured = perWin - warmup
	}
	ff := perWin - warmup - measured

	out := &SampledRun{
		Classes:       make(map[string]*stats.Sample, len(d.w.Classes)),
		FastForwarded: ff,
		Warmed:        warmup,
		Measured:      measured,
	}
	for _, c := range d.w.Classes {
		out.Classes[c.Name] = &stats.Sample{}
	}

	// serve advances the request stream by one request.  Bookkeeping
	// (class pick, served count, perturbation) is shared by all three
	// phases so the stream never depends on the window split.
	serve := func(i int, detailed, record bool) error {
		select {
		case <-ctx.Done():
			return fmt.Errorf("workload %s: sampled request %d: %w", d.w.Name, i, ctx.Err())
		default:
		}
		c := d.pick()
		d.served++
		if d.PerturbEvery > 0 && d.served%d.PerturbEvery == 0 {
			d.sys.CPU().ContextSwitch(0xdead)
			d.sys.CPU().ContextSwitch(1)
		}
		if !detailed {
			if err := d.sys.CPU().FastForwardSymbol(c.Entry); err != nil {
				return fmt.Errorf("workload %s: sampled request %d (%s): %w", d.w.Name, i, c.Name, err)
			}
			return d.churnTick()
		}
		res, err := d.sys.RunOnce(c.Entry)
		if err != nil {
			return fmt.Errorf("workload %s: sampled request %d (%s): %w", d.w.Name, i, c.Name, err)
		}
		if record {
			out.Classes[c.Name].Add(core.Micros(res.Cycles))
		}
		return d.churnTick()
	}

	req := 0
	for w := 0; w < windows; w++ {
		for i := 0; i < ff; i++ {
			if err := serve(req, false, false); err != nil {
				return nil, err
			}
			req++
		}
		for i := 0; i < warmup; i++ {
			if err := serve(req, true, false); err != nil {
				return nil, err
			}
			req++
		}
		before := d.sys.Counters()
		for i := 0; i < measured; i++ {
			if err := serve(req, true, true); err != nil {
				return nil, err
			}
			req++
		}
		out.Windows = append(out.Windows, WindowDelta{
			Counters: d.sys.Counters().Sub(before),
			Requests: measured,
		})
	}
	return out, nil
}

// tier is a group of library functions gated at a common execution
// probability.
type tier struct {
	names []string
	pct   int // execution probability per request, percent (1..100)

	// maxBurst makes call frequency bursty: names are called in loops
	// of ~maxBurst consecutive invocations.  Real programs call their
	// hottest library functions (memcpy, strlen, malloc) many times
	// in inner loops; this is what gives Figure 4 its steep head and
	// what makes a 16-entry ABTB skip >75% of calls in Figure 5 —
	// bursts of the same trampoline hit even a tiny LRU table.
	maxBurst int

	// zipf, when true, halves the burst length every four ranks, so
	// the head of the tier dominates Zipf-style; when false every
	// name gets the same burst.
	zipf bool
}

// burstAt returns the expected consecutive-call count for rank r.
func (t tier) burstAt(r int) int {
	b := t.maxBurst
	if t.zipf {
		for i := 0; i < r/4 && b > 1; i++ {
			b /= 2
		}
	}
	if b < 1 {
		b = 1
	}
	return b
}

// emitTieredCalls appends call sites for every tier to the handler
// body.  Hot functions (pct == 100) are called unconditionally with
// pad() invoked before each call to emit the surrounding non-call
// work.  Gated functions cost one conditional per call site when
// skipped; tiers below 5% are wrapped block-wise in an outer gate so
// that a request that exercises none of a cold block pays one branch
// for the whole block.
func emitTieredCalls(f *objfile.Func, rng *rand.Rand, tiers []tier, pad func(*objfile.Func)) {
	for _, t := range tiers {
		switch {
		case t.pct >= 100:
			for r, name := range t.names {
				burst := t.burstAt(r)
				if burst <= 1 {
					if pad != nil {
						pad(f)
					}
					f.Call(name)
					continue
				}
				// A burst loop: pad + call, repeated ~burst times
				// (geometric with the matching mean).
				start := len(f.Body)
				if pad != nil {
					pad(f)
				}
				f.Call(name)
				bias := 100 - 100/burst
				if bias > 97 {
					bias = 97
				}
				f.LoopBack(uint8(bias), len(f.Body)-start)
			}
		case t.pct >= 5:
			for _, name := range t.names {
				if t.maxBurst > 1 {
					// Gated burst: when the gate passes, the
					// function is called ~maxBurst times in a row.
					f.CondSkip(uint8(100-t.pct), 2)
					f.Call(name)
					f.LoopBack(uint8(100-100/t.maxBurst), 1)
				} else {
					f.CondSkip(uint8(100-t.pct), 1)
					f.Call(name)
				}
			}
		default:
			// Nested gating: outer block gate at outerPct, inner
			// per-call gate such that outer*inner == t.pct.
			const blockSize = 8
			outerPct := t.pct * 10
			if outerPct > 50 {
				outerPct = 50
			}
			innerPct := t.pct * 100 / outerPct
			for start := 0; start < len(t.names); start += blockSize {
				end := start + blockSize
				if end > len(t.names) {
					end = len(t.names)
				}
				block := t.names[start:end]
				// Inner block: one gate + one call per name.
				f.CondSkip(uint8(100-outerPct), 2*len(block))
				for _, name := range block {
					f.CondSkip(uint8(100-innerPct), 1)
					f.Call(name)
				}
			}
		}
	}
	_ = rng
}

// libParams shapes one generated library.
type libParams struct {
	name       string
	nFuncs     int
	dataBytes  uint64 // per-library data region
	bodyALU    [2]int // [min,max) ALU instructions per function body
	bodyLoads  [2]int // [min,max) loads per body
	loadSpan   uint64 // slots each load sweeps
	stores     int    // stores per body
	condEvery  int    // emit a conditional roughly every N body instrs (0 = none)
	condBias   uint8  // taken probability of body conditionals
	loopPct    int    // percent of functions containing a hot loop
	loopIters  uint8  // LoopBack continue bias (e.g. 75 => ~4 iterations)
	crossCalls int    // number of functions that call into a later library
	crossPct   uint8  // execution probability of each cross call
	ifuncs     int    // GNU indirect functions exported (§2.4.1)
}

// genLib generates one library object.  Cross-library calls target
// functions in crossTargets (functions of previously generated or
// later-to-be-generated libraries — the caller guarantees they will
// exist), forming the inter-library trampolines of §2.2.
func genLib(rng *rand.Rand, p libParams, crossTargets []string) (*objfile.Object, []string) {
	o := objfile.New(p.name)
	o.AddData("data", p.dataBytes)
	names := make([]string, p.nFuncs)
	for i := range names {
		names[i] = fmt.Sprintf("%s_fn%03d", p.name, i)
	}
	for i, name := range names {
		f := o.NewFunc(name)
		alu := p.bodyALU[0]
		if p.bodyALU[1] > p.bodyALU[0] {
			alu += rng.IntN(p.bodyALU[1] - p.bodyALU[0])
		}
		loads := p.bodyLoads[0]
		if p.bodyLoads[1] > p.bodyLoads[0] {
			loads += rng.IntN(p.bodyLoads[1] - p.bodyLoads[0])
		}
		hasLoop := p.loopPct > 0 && rng.IntN(100) < p.loopPct
		emitBody(f, rng, bodySpec{
			region:    "data",
			regionLen: p.dataBytes,
			alu:       alu,
			loads:     loads,
			span:      p.loadSpan,
			stores:    p.stores,
			condEvery: p.condEvery,
			condBias:  p.condBias,
			loop:      hasLoop,
			loopIters: p.loopIters,
		})
		if i < p.crossCalls && len(crossTargets) > 0 {
			target := crossTargets[rng.IntN(len(crossTargets))]
			if p.crossPct >= 100 {
				f.Call(target)
			} else {
				f.CondSkip(100-p.crossPct, 1)
				f.Call(target)
			}
		}
		f.Ret()
	}
	// Indirect functions: hardware-selected wrappers over existing
	// implementations, as glibc exports its string routines (§2.4.1).
	// Callers reach them through the PLT like any dynamic symbol, so
	// they appear in the returned name list alongside plain functions.
	for i := 0; i < p.ifuncs && p.nFuncs >= 2; i++ {
		name := fmt.Sprintf("%s_ifn%02d", p.name, i)
		o.DeclareIFunc(name, names[rng.IntN(p.nFuncs)], names[rng.IntN(p.nFuncs)])
		names = append(names, name)
	}
	return o, names
}

// emitKernel appends a hot computation loop: roughly alu+2
// instructions per iteration with one load sweeping span slots, and an
// expected iteration count of 1/(1-bias/100).  Kernels dilute
// library-call density (low trampoline PKI) with highly reusable code
// (low I-cache pressure) and predictable backward branches.
func emitKernel(f *objfile.Func, rng *rand.Rand, region string, regionLen uint64, alu int, span uint64, bias uint8) {
	start := len(f.Body)
	half := alu / 2
	f.ALU(half)
	off := uint64(0)
	if regionLen > span*8 {
		off = (rng.Uint64() % (regionLen - span*8)) &^ 7
	}
	f.Load(region, off, span)
	f.ALU(alu - half)
	f.LoopBack(bias, len(f.Body)-start)
}

// bodySpec shapes one function body.
type bodySpec struct {
	region    string
	regionLen uint64
	alu       int
	loads     int
	span      uint64
	stores    int
	condEvery int
	condBias  uint8
	loop      bool
	loopIters uint8
}

// emitBody writes a function body: interleaved ALU and memory work
// with conditional branches, optionally wrapped in a hot loop.
func emitBody(f *objfile.Func, rng *rand.Rand, s bodySpec) {
	span := s.span
	if span == 0 {
		span = 1
	}
	if span*8 > s.regionLen {
		span = s.regionLen / 8
		if span == 0 {
			span = 1
		}
	}
	maxOff := uint64(0)
	if s.regionLen > span*8 {
		maxOff = s.regionLen - span*8
	}
	randOff := func() uint64 {
		if maxOff == 0 {
			return 0
		}
		return (rng.Uint64() % maxOff) &^ 7
	}

	work := func() int {
		emitted := 0
		loads := s.loads
		alu := s.alu
		sinceCond := 0
		for alu > 0 || loads > 0 {
			if alu > 0 {
				chunk := 3
				if chunk > alu {
					chunk = alu
				}
				f.ALU(chunk)
				alu -= chunk
				emitted += chunk
				sinceCond += chunk
			}
			if loads > 0 {
				f.Load(s.region, randOff(), span)
				loads--
				emitted++
				sinceCond++
			}
			if s.condEvery > 0 && sinceCond >= s.condEvery && (alu > 1 || loads > 1) {
				// Branch over a small slice of upcoming work.
				f.CondSkip(s.condBias, 1)
				f.ALU(1)
				alu-- // the skippable instruction comes out of the budget
				if alu < 0 {
					alu = 0
				}
				emitted += 2
				sinceCond = 0
			}
		}
		return emitted
	}

	if s.loop {
		n := work()
		if n > 0 {
			f.LoopBack(s.loopIters, n)
		}
	} else {
		work()
	}
	for i := 0; i < s.stores; i++ {
		f.Store(s.region, randOff(), span, rng.Uint64())
	}
}
