// Plugin server: a long-lived host process that periodically dlcloses
// and re-dlopens a rotating set of plugin modules while serving
// requests (§2.3's dynamic loading, exercised as steady-state churn
// rather than startup).
//
// Every plugin slot cycles through several generations that share a
// module name and exported API but differ in body content, so each
// rotation tombstones the host's GOT bindings into the departing text,
// reuses the module's address range for the successor, and re-resolves
// bindings on the next call.  Reloads are demand-driven: plugin pages
// map lazily on first touch, charging page faults to the requests that
// first walk the new code.

package workload

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/objfile"
)

const (
	pluginSlots      = 2  // rotating plugin modules
	pluginGens       = 3  // generations per slot
	pluginAPIFuncs   = 6  // exported API functions per plugin
	pluginHelpers    = 3  // intra-plugin helper functions
	pluginCross      = 3  // API functions that call back into core libs
	pluginChurnEvery = 12 // requests between rotations
)

// PluginServer generates the plugin-churn workload.
func PluginServer(seed uint64) *Workload {
	rng := rand.New(rand.NewPCG(seed, 0x9146d7))

	// Stable host-side libraries; these never churn.
	libSpecs := []libParams{
		{name: "libcore", nFuncs: 48, dataBytes: 8 << 10, bodyALU: [2]int{16, 40},
			bodyLoads: [2]int{1, 4}, loadSpan: 4, stores: 1, condEvery: 10, condBias: 90,
			loopPct: 10, loopIters: 60, crossCalls: 10, crossPct: 30},
		{name: "libutil", nFuncs: 32, dataBytes: 8 << 10, bodyALU: [2]int{18, 44},
			bodyLoads: [2]int{1, 3}, loadSpan: 4, stores: 1, condEvery: 11, condBias: 90,
			loopPct: 12, loopIters: 62},
	}
	libs, funcsByLib := genLibraryBundle(rng, libSpecs)
	var corePool []string
	for _, names := range funcsByLib {
		corePool = append(corePool, names...)
	}

	// Each slot's generations are generated up front so the request
	// stream and the churn schedule are both pure functions of the seed.
	slots := make([]ChurnSlot, pluginSlots)
	for s := range slots {
		gens := make([]*objfile.Object, pluginGens)
		for g := range gens {
			gens[g] = genPlugin(rng, s, corePool)
		}
		slots[s] = ChurnSlot{Name: pluginModuleName(s), Gens: gens}
	}

	app := buildPluginApp(rng, corePool)

	// Generation 0 of every slot is part of the initial link.
	for s := range slots {
		libs = append(libs, slots[s].Gens[0])
	}

	classes := []RequestClass{
		{Name: "Serve", Entry: "handle_Serve", Weight: 5},
		{Name: "Admin", Entry: "handle_Admin", Weight: 1},
	}
	return &Workload{
		Name:    "plugin-server",
		App:     app,
		Libs:    libs,
		Classes: classes,
		Churn:   &ChurnPlan{Every: pluginChurnEvery, Demand: true, Slots: slots},
	}
}

func pluginModuleName(slot int) string { return fmt.Sprintf("plugin%d", slot) }

func pluginAPIName(slot, j int) string {
	return fmt.Sprintf("%s_api%02d", pluginModuleName(slot), j)
}

// genPlugin generates one generation of one plugin slot.  Instruction
// and import counts are identical across generations — only operands,
// branch biases and call targets drawn from rng differ — so every
// generation fits the slot's reserved span and reloads reuse the
// original address range (the interesting case for stale-cache bugs).
func genPlugin(rng *rand.Rand, slot int, coreFuncs []string) *objfile.Object {
	name := pluginModuleName(slot)
	o := objfile.New(name)
	const stateBytes = 16 << 10
	o.AddData("pstate", stateBytes)

	// Exactly pluginCross distinct core imports per generation.
	imports := make([]string, len(coreFuncs))
	copy(imports, coreFuncs)
	rng.Shuffle(len(imports), func(i, j int) { imports[i], imports[j] = imports[j], imports[i] })
	imports = imports[:pluginCross]

	helpers := make([]string, pluginHelpers)
	for i := range helpers {
		helpers[i] = fmt.Sprintf("%s_int%02d", name, i)
		h := o.NewFunc(helpers[i])
		emitKernel(h, rng, "pstate", stateBytes, 10, 4, uint8(68+rng.IntN(10)))
		h.Ret()
	}
	off := func() uint64 { return (rng.Uint64() % (stateBytes - 64)) &^ 7 }
	for j := 0; j < pluginAPIFuncs; j++ {
		f := o.NewFunc(pluginAPIName(slot, j))
		f.ALU(6)
		f.Load("pstate", off(), 4)
		f.CondSkip(uint8(70+rng.IntN(25)), 1)
		f.ALU(1)
		f.Call(helpers[j%pluginHelpers])
		if j < pluginCross {
			f.Call(imports[j])
		}
		f.ALU(4)
		f.Store("pstate", off(), 4, rng.Uint64())
		f.Ret()
	}
	return o
}

// buildPluginApp builds the host binary: request handlers that mix
// stable core-library calls with calls through every plugin API.
func buildPluginApp(rng *rand.Rand, corePool []string) *objfile.Object {
	app := objfile.New("plugsrv")
	app.AddData("req", 16<<10)

	pool := make([]string, len(corePool))
	copy(pool, corePool)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	dispatch := app.NewFunc("dispatch_request")
	emitBody(dispatch, rng, bodySpec{region: "req", regionLen: 16 << 10, alu: 40,
		loads: 6, span: 4, stores: 2, condEvery: 9, condBias: 88})
	dispatch.Ret()

	pad := func(f *objfile.Func) {
		f.ALU(6 + rng.IntN(6))
		f.Load("req", uint64(rng.Uint64()%(12<<10))&^7, 4)
	}

	serve := app.NewFunc("handle_Serve")
	serve.Call("dispatch_request")
	emitTieredCalls(serve, rng, []tier{
		{names: pool[:16], pct: 100, maxBurst: 8, zipf: true},
		{names: pool[16:36], pct: 100, maxBurst: 2},
	}, pad)
	// The request walks both plugins' full API surface, so every
	// rotation is repaid with re-resolutions (and, demand-loaded, page
	// faults) on the very next Serve request.
	for s := 0; s < pluginSlots; s++ {
		for j := 0; j < pluginAPIFuncs; j++ {
			pad(serve)
			serve.Call(pluginAPIName(s, j))
		}
	}
	emitKernel(serve, rng, "req", 16<<10, 16, 8, 75)
	serve.Halt()

	admin := app.NewFunc("handle_Admin")
	admin.Call("dispatch_request")
	emitTieredCalls(admin, rng, []tier{
		{names: pool[36:60], pct: 100, maxBurst: 4},
		{names: pool[60:76], pct: 20, maxBurst: 2},
	}, pad)
	// Admin probes one API per plugin (health checks).
	for s := 0; s < pluginSlots; s++ {
		admin.Call(pluginAPIName(s, 0))
	}
	emitKernel(admin, rng, "req", 16<<10, 20, 4, 72)
	admin.Halt()

	return app
}
