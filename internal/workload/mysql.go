// MySQL serving TPC-C New Order and Payment transactions via
// OLTP-Bench (§4.4).
//
// Calibration targets from the paper: 1611 distinct trampolines
// (Table 3 — the largest import surface of the server workloads),
// 5.56 trampoline instructions PKI (Table 2), the highest branch
// misprediction rate of the four workloads (Table 4: 14.44 PKI), and
// response-time percentiles that improve by ~1% under the enhanced
// system (Table 6 / Figure 8).

package workload

import (
	"math/rand/v2"

	"repro/internal/objfile"
)

// MySQL generates the MySQL/TPC-C workload with New Order and Payment
// transaction classes.
func MySQL(seed uint64) *Workload {
	rng := rand.New(rand.NewPCG(seed, 0x301a9d))

	libSpecs := []libParams{
		{name: "libpthread", nFuncs: 90, dataBytes: 8 << 10, bodyALU: [2]int{12, 30},
			bodyLoads: [2]int{1, 4}, loadSpan: 6, stores: 1, condEvery: 7, condBias: 78,
			loopPct: 5, loopIters: 55, crossCalls: 40, crossPct: 60},
		{name: "libcrypto", nFuncs: 260, dataBytes: 16 << 10, bodyALU: [2]int{22, 52},
			bodyLoads: [2]int{2, 5}, loadSpan: 8, stores: 1, condEvery: 6, condBias: 74,
			loopPct: 18, loopIters: 68, crossCalls: 90, crossPct: 55},
		{name: "libssl", nFuncs: 130, dataBytes: 12 << 10, bodyALU: [2]int{18, 44},
			bodyLoads: [2]int{2, 5}, loadSpan: 8, stores: 1, condEvery: 6, condBias: 75,
			loopPct: 10, loopIters: 60, crossCalls: 70, crossPct: 55},
		{name: "libstdcpp", nFuncs: 220, dataBytes: 16 << 10, bodyALU: [2]int{14, 38},
			bodyLoads: [2]int{2, 6}, loadSpan: 8, stores: 1, condEvery: 6, condBias: 72,
			loopPct: 8, loopIters: 60, crossCalls: 110, crossPct: 50},
		{name: "libz", nFuncs: 50, dataBytes: 12 << 10, bodyALU: [2]int{24, 56},
			bodyLoads: [2]int{2, 6}, loadSpan: 8, stores: 1, condEvery: 7, condBias: 78,
			loopPct: 25, loopIters: 70, crossCalls: 20, crossPct: 50},
		{name: "libaio", nFuncs: 30, dataBytes: 8 << 10, bodyALU: [2]int{12, 28},
			bodyLoads: [2]int{1, 3}, loadSpan: 4, stores: 1, condEvery: 8, condBias: 82,
			loopPct: 0, crossCalls: 12, crossPct: 60},
		{name: "libc", nFuncs: 320, ifuncs: 12, dataBytes: 16 << 10, bodyALU: [2]int{14, 40},
			bodyLoads: [2]int{2, 5}, loadSpan: 8, stores: 1, condEvery: 6, condBias: 74,
			loopPct: 10, loopIters: 62, crossCalls: 0},
	}
	libs, funcsByLib := genLibraryBundle(rng, libSpecs)

	app := objfile.New("mysqld")
	app.AddData("bufferpool", 24<<20)
	app.AddData("logbuf", 256<<10)
	app.AddData("session", 64<<10)

	var pool []string
	for _, names := range funcsByLib {
		pool = append(pool, names...)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	const (
		nSharedHot = 64
		nClassHot  = 26
		nClassWarm = 260
		nClassCold = 180
		warmPct    = 4
		coldPct    = 3
	)
	take := func(n int) []string {
		if n > len(pool) {
			panic("workload: mysql pool exhausted")
		}
		out := pool[:n]
		pool = pool[n:]
		return out
	}
	sharedHot := take(nSharedHot)

	// SQL parse and B-tree walk helpers: branch-heavy app code (the
	// paper's highest misprediction rate) over the buffer pool.
	parse := app.NewFunc("parse_sql")
	emitBody(parse, rng, bodySpec{region: "session", regionLen: 64 << 10, alu: 160,
		loads: 20, span: 8, stores: 2, condEvery: 5, condBias: 70})
	parse.Ret()
	btree := app.NewFunc("btree_walk")
	emitBody(btree, rng, bodySpec{region: "bufferpool", regionLen: 24 << 20, alu: 40,
		loads: 6, span: 2048, stores: 0, condEvery: 5, condBias: 70})
	// Leaf scan: sweeps a 512 KiB buffer-pool window, missing the L1D
	// most iterations (the paper's 8.5 PKI D-cache rate).
	emitKernel(btree, rng, "bufferpool", 24<<20, 50, 32768, 96)
	btree.Ret()
	row := app.NewFunc("process_row")
	emitKernel(row, rng, "session", 64<<10, 60, 8, 98)
	row.Ret()
	wal := app.NewFunc("log_write")
	emitBody(wal, rng, bodySpec{region: "logbuf", regionLen: 256 << 10, alu: 30,
		loads: 4, span: 32, stores: 6, condEvery: 8, condBias: 85})
	wal.Ret()

	for _, class := range []struct {
		name    string
		queries int // b-tree probes per transaction (New Order reads more)
	}{
		{name: "NewOrder", queries: 10},
		{name: "Payment", queries: 4},
	} {
		h := app.NewFunc("handle_" + class.name)
		h.Call("parse_sql")
		for q := 0; q < class.queries; q++ {
			h.Call("btree_walk")
			h.Call("process_row")
		}

		pad := func(f *objfile.Func) {
			f.ALU(3 + rng.IntN(4))
			f.Load("session", uint64(rng.Uint64()%(48<<10))&^7, 8)
			f.CondSkip(55, 1)
			f.ALU(2)
		}
		emitTieredCalls(h, rng, []tier{
			{names: sharedHot, pct: 100, maxBurst: 12, zipf: true},
			{names: take(nClassHot), pct: 100, maxBurst: 4, zipf: true},
			{names: take(nClassWarm), pct: warmPct, maxBurst: 3},
			{names: take(nClassCold), pct: coldPct},
		}, pad)

		// Commit path: log serialisation kernel.
		emitKernel(h, rng, "logbuf", 256<<10, 50, 32, 98)
		h.Call("log_write")
		h.Halt()
	}

	return &Workload{
		Name: "mysql",
		App:  app,
		Libs: libs,
		Classes: []RequestClass{
			// TPC-C mix: New Order 45%, Payment 43% of transactions;
			// the paper presents only these two.
			{Name: "NewOrder", Entry: "handle_NewOrder", Weight: 45},
			{Name: "Payment", Entry: "handle_Payment", Weight: 43},
		},
	}
}
