// Memcached serving the CloudSuite data-caching mix (§4.4).
//
// Calibration targets from the paper: only 33 distinct trampolines
// (Table 3 — "owing to the limited functionality of the server"),
// 1.75 trampoline instructions PKI (Table 2), the highest D-cache
// pressure of the four workloads (Table 4: 12.25 L1D misses PKI, the
// value store dominates), and an instruction footprint small enough
// that skipping trampolines eliminates essentially all I-TLB misses
// (0.03 PKI base → 0 enhanced).

package workload

import (
	"math/rand/v2"

	"repro/internal/objfile"
)

// Memcached generates the Memcached/CloudSuite workload with GET and
// SET request classes (Figure 7 plots their latency histograms).
func Memcached(seed uint64) *Workload {
	rng := rand.New(rand.NewPCG(seed, 0x3e3cac4ed))

	libSpecs := []libParams{
		// libevent: the event loop; half its functions call into libc.
		{name: "libevent", nFuncs: 14, dataBytes: 16 << 10, bodyALU: [2]int{20, 44},
			bodyLoads: [2]int{2, 5}, loadSpan: 6, stores: 1, condEvery: 9, condBias: 88,
			loopPct: 10, loopIters: 60, crossCalls: 7, crossPct: 100},
		// libc: allocation, string and socket helpers.
		{name: "libc", nFuncs: 26, ifuncs: 3, dataBytes: 32 << 10, bodyALU: [2]int{24, 56},
			bodyLoads: [2]int{3, 7}, loadSpan: 8, stores: 2, condEvery: 10, condBias: 90,
			loopPct: 20, loopIters: 68, crossCalls: 0},
	}
	libs, funcsByLib := genLibraryBundle(rng, libSpecs)

	app := objfile.New("memcached")
	// The slab-allocated value store: each value-copy site sweeps a
	// 512 KiB slab window, far beyond the L1D, so value traffic
	// misses continuously (the paper's 12 PKI D-cache signature)
	// while staying within a bounded page set (D-TLB pressure stays
	// moderate, as measured).
	app.AddData("store", 4<<20)
	app.AddData("hashtable", 512<<10)
	app.AddData("conn", 16<<10)

	var pool []string
	for _, names := range funcsByLib {
		pool = append(pool, names...)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	// 26 app-visible imports; with ~7 libevent→libc cross trampolines
	// the distinct count lands at the paper's 33.
	hot := pool[:15]
	warm := pool[15:26]

	// Shared request steps, app-internal (direct calls).
	hash := app.NewFunc("hash_key")
	hash.ALU(18)
	hash.Load("conn", 0, 8)
	hash.ALU(12)
	hash.LoopBack(80, 31) // ~5 passes over the key
	hash.Ret()

	bucket := app.NewFunc("bucket_walk")
	emitBody(bucket, rng, bodySpec{region: "hashtable", regionLen: 512 << 10, alu: 24,
		loads: 6, span: 8192, stores: 0, condEvery: 6, condBias: 78})
	bucket.Ret()

	for _, class := range []struct {
		name       string
		stores     int
		valueIters uint8 // value-copy loop continue bias
	}{
		{name: "GET", stores: 1, valueIters: 99}, // ~100-iteration copy loop
		{name: "SET", stores: 8, valueIters: 99},
	} {
		h := app.NewFunc("handle_" + class.name)
		h.Call("hash_key")
		h.Call("bucket_walk")

		pad := func(f *objfile.Func) {
			f.ALU(4 + rng.IntN(5))
			f.Load("conn", uint64(rng.Uint64()%(12<<10))&^7, 4)
		}
		emitTieredCalls(h, rng, []tier{
			{names: hot, pct: 100, maxBurst: 12, zipf: true},
			{names: warm, pct: 30, maxBurst: 2},
		}, pad)

		// The value copy: a long loop sweeping a slab window.  Each
		// iteration's load lands on a random line of a 512 KiB window
		// and misses the L1D almost every time.
		emitKernel(h, rng, "store", 4<<20, 60, 65536, class.valueIters)
		emitKernel(h, rng, "store", 4<<20, 60, 65536, 99)
		// Protocol work: compute-heavy, cache-resident.
		emitKernel(h, rng, "conn", 16<<10, 60, 8, 99)
		emitKernel(h, rng, "conn", 16<<10, 60, 4, 99)
		emitKernel(h, rng, "hashtable", 512<<10, 60, 8, 99)
		emitKernel(h, rng, "conn", 16<<10, 60, 4, 98)

		for i := 0; i < class.stores; i++ {
			h.Store("store", uint64(rng.Uint64()%(3<<20))&^7, 8192, rng.Uint64())
			h.ALU(10)
		}
		// Response serialisation.
		emitBody(h, rng, bodySpec{region: "conn", regionLen: 16 << 10, alu: 50,
			loads: 6, span: 8, stores: 2, condEvery: 8, condBias: 88})
		h.Halt()
	}

	return &Workload{
		Name: "memcached",
		App:  app,
		Libs: libs,
		Classes: []RequestClass{
			{Name: "GET", Entry: "handle_GET", Weight: 9}, // CloudSuite is GET-heavy
			{Name: "SET", Entry: "handle_SET", Weight: 1},
		},
	}
}
