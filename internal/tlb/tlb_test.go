package tlb

import (
	"testing"

	"repro/internal/mem"
)

func small() *TLB {
	return New(Config{Name: "t", Entries: 8, Ways: 2, MissPenalty: 30})
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok", Config{Entries: 8, Ways: 2}, false},
		{"zero entries", Config{Ways: 2}, true},
		{"zero ways", Config{Entries: 8}, true},
		{"npot sets", Config{Entries: 12, Ways: 2}, true},
		{"indivisible", Config{Entries: 9, Ways: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMissThenHit(t *testing.T) {
	tb := small()
	if pen := tb.Access(0x400123); pen != 30 {
		t.Errorf("cold access penalty = %d, want 30", pen)
	}
	if pen := tb.Access(0x400fff); pen != 0 {
		t.Errorf("same-page access penalty = %d, want 0", pen)
	}
	if pen := tb.Access(0x401000); pen != 30 {
		t.Errorf("next-page access penalty = %d, want 30", pen)
	}
	if tb.Misses() != 2 || tb.Accesses() != 3 {
		t.Errorf("misses/accesses = %d/%d, want 2/3", tb.Misses(), tb.Accesses())
	}
}

func TestAccessRange(t *testing.T) {
	tb := small()
	// 16 bytes ending on a page boundary straddle two pages.
	pen := tb.AccessRange(mem.PageSize-8, 16)
	if pen != 60 {
		t.Errorf("straddling penalty = %d, want 60", pen)
	}
	if pen := tb.AccessRange(0, 0); pen != 0 {
		t.Errorf("zero-size re-access penalty = %d, want 0", pen)
	}
}

func TestFlush(t *testing.T) {
	tb := small()
	tb.Access(0x400000)
	tb.Flush()
	if pen := tb.Access(0x400000); pen != 30 {
		t.Error("entry survived Flush")
	}
}

func TestCapacityConflicts(t *testing.T) {
	tb := small() // 4 sets x 2 ways
	// 3 pages mapping to the same set (vpn stride = set count = 4).
	pages := []uint64{0, 4, 8}
	for _, p := range pages {
		tb.Access(p << mem.PageShift)
	}
	// Page 0 was LRU and must have been evicted.
	if pen := tb.Access(0); pen == 0 {
		t.Error("conflicting page still resident")
	}
}

func TestDefaults(t *testing.T) {
	i, d := DefaultITLB(), DefaultDTLB()
	if err := i.Config().Validate(); err != nil {
		t.Error(err)
	}
	if err := d.Config().Validate(); err != nil {
		t.Error(err)
	}
	if i.Config().Entries >= d.Config().Entries {
		t.Error("expected D-TLB larger than I-TLB")
	}
	i.Access(0x1000)
	i.ResetStats()
	if i.Accesses() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}
