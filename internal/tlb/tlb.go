// Package tlb models translation lookaside buffers.
//
// TLBs cache virtual-page translations; the simulator only needs their
// hit/miss behaviour (and the page-walk penalty on a miss), because
// the paper measures I-TLB and D-TLB misses per kilo-instruction.
// PLT trampolines pressure the I-TLB (sparse PLT pages) and the GOT
// loads pressure the D-TLB (sparse GOT pages); skipping trampolines
// removes both.
package tlb

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/setassoc"
)

// Config describes a TLB.
type Config struct {
	Name        string
	Entries     int
	Ways        int
	MissPenalty int // page-walk cost in cycles
}

// Validate reports an error for an inconsistent configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 {
		return fmt.Errorf("tlb %q: non-positive geometry", c.Name)
	}
	sets := c.Entries / c.Ways
	if sets*c.Ways != c.Entries || sets&(sets-1) != 0 {
		return fmt.Errorf("tlb %q: %d entries / %d ways is not a power-of-two set count", c.Name, c.Entries, c.Ways)
	}
	return nil
}

// TLB is a set-associative translation cache keyed by virtual page
// number.
type TLB struct {
	cfg Config
	t   *setassoc.Table[struct{}]
}

// New constructs a TLB, panicking on invalid configuration.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TLB{cfg: cfg, t: setassoc.New[struct{}](cfg.Entries/cfg.Ways, cfg.Ways)}
}

// Access translates the page containing addr, returning the penalty in
// cycles (0 on a hit, the page-walk cost on a miss) and filling the
// TLB.
func (t *TLB) Access(addr uint64) int {
	return t.access(mem.PageNum(addr))
}

// access is Access with the page number already computed, so the range
// fast path does not compute it twice.
func (t *TLB) access(vpn uint64) int {
	if _, hit := t.t.Lookup(vpn); hit {
		return 0
	}
	t.t.Insert(vpn, struct{}{})
	return t.cfg.MissPenalty
}

// AccessRange translates every page overlapped by [addr, addr+size).
// Almost all accesses fit one page, so that case skips the loop.
func (t *TLB) AccessRange(addr, size uint64) int {
	if size == 0 {
		size = 1
	}
	first, last := mem.PageNum(addr), mem.PageNum(addr+size-1)
	if first == last {
		return t.access(first)
	}
	pen := 0
	for vpn := first; vpn <= last; vpn++ {
		pen += t.access(vpn)
	}
	return pen
}

// AccessRepeatPage performs n consecutive translations of the page
// with virtual page number vpn and returns the summed penalty.  The
// first translation is an ordinary access (it may walk and fill); the
// remaining n-1 are guaranteed hits and are applied in bulk, with
// counter and LRU effects bit-identical to n sequential accesses.
// Hits cost zero cycles, so the sum is just the first translation's
// outcome.  The compiled-trace replay loop uses it for runs of
// straight-line fetches within one page.
func (t *TLB) AccessRepeatPage(vpn uint64, n int) int {
	if n <= 0 {
		return 0
	}
	pen := t.access(vpn)
	if n > 1 {
		t.t.BumpHits(vpn, n-1)
	}
	return pen
}

// Flush invalidates all entries (context switch without ASIDs).
func (t *TLB) Flush() { t.t.Clear() }

// Accesses returns the number of translations requested.
func (t *TLB) Accesses() uint64 { return t.t.Lookups() }

// Misses returns the number of translations that walked the page
// table.
func (t *TLB) Misses() uint64 { return t.t.Misses() }

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// ResetStats zeroes counters, preserving contents.
func (t *TLB) ResetStats() { t.t.ResetStats() }

// Defaults approximating the Xeon E5450: 128-entry 4-way I-TLB,
// 256-entry 4-way D-TLB, with a page walk costing tens of cycles.
func DefaultITLB() *TLB {
	return New(Config{Name: "ITLB", Entries: 128, Ways: 4, MissPenalty: 30})
}

func DefaultDTLB() *TLB {
	return New(Config{Name: "DTLB", Entries: 256, Ways: 4, MissPenalty: 30})
}
