// Package mem implements the sparse byte-addressable memory backing a
// simulated process.
//
// Memory is allocated lazily in 4 KiB pages, so images mapped at
// x86-64-style high addresses (libraries near 0x7f..., executables at
// 0x400000) cost only what they touch.  The GOT, stack, and workload
// data buffers all live here; instruction *bytes* are not stored (the
// CPU fetches decoded instructions from the image by address), but
// instruction addresses and sizes drive the I-cache and I-TLB models.
package mem

import "encoding/binary"

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// memoSize is the size (a power of two) of the direct-mapped page memo
// in front of the page map.
const memoSize = 64

type memoEntry struct {
	pn   uint64
	page *[PageSize]byte // nil marks an empty memo slot
}

// memoIdx spreads page numbers across the memo.  Hot data pages
// (stack, GOT, workload buffers) sit at aligned bases whose low bits
// can collide, so a golden-ratio multiply decorrelates them.
func memoIdx(pn uint64) uint64 {
	return (pn * 0x9e3779b97f4a7c15) >> (64 - 6) // log2(memoSize) == 6
}

// Memory is a sparse, lazily allocated byte memory.  The zero value is
// ready to use; reads from unallocated pages return zero.
//
// Memory is not safe for concurrent use: even reads update the
// page memo.  Every simulated System already drives its Memory
// from a single goroutine.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// Direct-mapped page memo: simulated data traffic alternates
	// between a handful of hot pages (stack, GOT, resolver tables,
	// workload buffers), so a small memo absorbs nearly every access
	// without a map probe.  Pages are never deallocated, so memo
	// entries cannot go stale.
	memo [memoSize]memoEntry
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr >> PageShift
	e := &m.memo[memoIdx(pn)]
	if e.pn == pn && e.page != nil {
		return e.page
	}
	if m.pages == nil {
		if !alloc {
			return nil
		}
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		*e = memoEntry{pn: pn, page: p}
	}
	return p
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(PageSize-1)]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint64, v byte) {
	m.page(addr, true)[addr&(PageSize-1)] = v
}

// Read64 returns the little-endian 64-bit value at addr.  The common
// aligned, single-page case is fast; cross-page reads fall back to a
// byte loop.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & (PageSize - 1)
	if off <= PageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off : off+8])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit value at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & (PageSize - 1)
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:off+8], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// PagesAllocated returns the number of distinct pages touched by
// writes.
func (m *Memory) PagesAllocated() int { return len(m.pages) }

// PageBase returns the base address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ uint64(PageSize-1) }

// PageNum returns the virtual page number of addr.
func PageNum(addr uint64) uint64 { return addr >> PageShift }
