// Package mem implements the sparse byte-addressable memory backing a
// simulated process.
//
// Memory is allocated lazily in 4 KiB pages, so images mapped at
// x86-64-style high addresses (libraries near 0x7f..., executables at
// 0x400000) cost only what they touch.  The GOT, stack, and workload
// data buffers all live here; instruction *bytes* are not stored (the
// CPU fetches decoded instructions from the image by address), but
// instruction addresses and sizes drive the I-cache and I-TLB models.
package mem

import "encoding/binary"

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// memoSize is the size (a power of two) of the direct-mapped page memo
// in front of the page map.
const memoSize = 64

type memoEntry struct {
	pn   uint64
	page *[PageSize]byte // nil marks an empty memo slot

	// owned marks a page this Memory may write in place.  Pages served
	// from a shared base layer (see Fork) are memoised read-only: a
	// write to them must miss the memo and copy the page first.
	owned bool
}

// memoIdx spreads page numbers across the memo.  Hot data pages
// (stack, GOT, workload buffers) sit at aligned bases whose low bits
// can collide, so a golden-ratio multiply decorrelates them.
func memoIdx(pn uint64) uint64 {
	return (pn * 0x9e3779b97f4a7c15) >> (64 - 6) // log2(memoSize) == 6
}

// Memory is a sparse, lazily allocated byte memory.  The zero value is
// ready to use; reads from unallocated pages return zero.
//
// Memory is not safe for concurrent use: even reads update the
// page memo.  Every simulated System already drives its Memory
// from a single goroutine.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// base is the copy-on-write layer behind pages: a frozen page set
	// shared with the Memory this one was forked from (and with its
	// sibling forks).  Reads fall through to it; the first write to a
	// base page copies it into pages.  nil for an unforked Memory.
	// Nothing ever writes a base page in place, so concurrent forks
	// may read the shared layer from different goroutines.
	base map[uint64]*[PageSize]byte

	// Direct-mapped page memo: simulated data traffic alternates
	// between a handful of hot pages (stack, GOT, resolver tables,
	// workload buffers), so a small memo absorbs nearly every access
	// without a map probe.  Pages are never deallocated, so memo
	// entries cannot go stale; a COW copy re-enters the memo as owned
	// via the write path that created it.
	memo [memoSize]memoEntry
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

// Fork returns a copy-on-write clone: the child sees the parent's
// current contents, and writes on either side stay private to that
// side.  Forking freezes the parent's written pages into a shared
// read-only base layer (shared with all forks of the same parent), so
// a fork costs one map merge — no page is copied until someone writes
// it.
//
// Fork itself is not safe to call concurrently with other operations
// on m; callers (e.g. internal/pool) must serialise forks of a shared
// parent.  The returned child is independent of m for all subsequent
// operations.
func (m *Memory) Fork() *Memory {
	if len(m.pages) > 0 {
		merged := make(map[uint64]*[PageSize]byte, len(m.base)+len(m.pages))
		for pn, p := range m.base {
			merged[pn] = p
		}
		for pn, p := range m.pages {
			merged[pn] = p
		}
		m.base = merged
		m.pages = make(map[uint64]*[PageSize]byte)
		// Owned memo entries point at pages that just became shared;
		// drop them so writes re-probe and copy.
		m.memo = [memoSize]memoEntry{}
	}
	return &Memory{base: m.base}
}

// PagesShared returns the number of pages in the copy-on-write base
// layer (0 for an unforked Memory).
func (m *Memory) PagesShared() int { return len(m.base) }

// FootprintBytes returns the bytes resident for this Memory alone:
// its privately written pages plus, when it has no parent, nothing
// else — shared base pages are excluded, since forks share one copy.
// For a frozen pool master (whose writes all moved into the base at
// first fork), use PagesShared to size the shared layer instead.
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.pages)) * PageSize
}

func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr >> PageShift
	e := &m.memo[memoIdx(pn)]
	if e.pn == pn && e.page != nil && (e.owned || !alloc) {
		return e.page
	}
	if m.pages == nil {
		if !alloc && m.base == nil {
			return nil
		}
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	p, owned := m.pages[pn], true
	if p == nil {
		switch bp := m.base[pn]; {
		case alloc && bp != nil:
			// First write to a shared page: copy it out of the base.
			p = new([PageSize]byte)
			*p = *bp
			m.pages[pn] = p
		case alloc:
			p = new([PageSize]byte)
			m.pages[pn] = p
		default:
			p, owned = bp, false // read-through; may be nil
		}
	}
	if p != nil {
		*e = memoEntry{pn: pn, page: p, owned: owned}
	}
	return p
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(PageSize-1)]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint64, v byte) {
	m.page(addr, true)[addr&(PageSize-1)] = v
}

// Read64 returns the little-endian 64-bit value at addr.  The common
// aligned, single-page case is fast; cross-page reads fall back to a
// byte loop.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & (PageSize - 1)
	if off <= PageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off : off+8])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write64 stores a little-endian 64-bit value at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & (PageSize - 1)
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:off+8], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// PagesAllocated returns the number of distinct pages touched by
// writes.
func (m *Memory) PagesAllocated() int { return len(m.pages) }

// PageBase returns the base address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ uint64(PageSize-1) }

// PageNum returns the virtual page number of addr.
func PageNum(addr uint64) uint64 { return addr >> PageShift }
