package mem

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestReadWrite64(t *testing.T) {
	m := New()
	m.Write64(0x1000, 0xdeadbeefcafebabe)
	if got := m.Read64(0x1000); got != 0xdeadbeefcafebabe {
		t.Fatalf("Read64 = %#x", got)
	}
}

func TestUnallocatedReadsZero(t *testing.T) {
	m := New()
	if m.Read64(0x7fff12345678) != 0 {
		t.Error("unallocated Read64 != 0")
	}
	if m.Read8(0x42) != 0 {
		t.Error("unallocated Read8 != 0")
	}
	if m.PagesAllocated() != 0 {
		t.Error("reads should not allocate pages")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if m.Read64(0x1000) != 0 {
		t.Error("zero-value read != 0")
	}
	m.Write64(0x1000, 7)
	if m.Read64(0x1000) != 7 {
		t.Error("zero-value write/read failed")
	}
}

func TestCrossPage64(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // straddles the first page boundary
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page Read64 = %#x", got)
	}
	if m.PagesAllocated() != 2 {
		t.Errorf("PagesAllocated = %d, want 2", m.PagesAllocated())
	}
}

func TestByteOrder(t *testing.T) {
	m := New()
	m.Write64(0, 0x0102030405060708)
	if m.Read8(0) != 0x08 {
		t.Errorf("little-endian low byte = %#x, want 0x08", m.Read8(0))
	}
	if m.Read8(7) != 0x01 {
		t.Errorf("little-endian high byte = %#x, want 0x01", m.Read8(7))
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr, v uint64) bool {
		addr %= 1 << 40
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseAllocation(t *testing.T) {
	m := New()
	m.Write8(0x400000, 1)
	m.Write8(0x7f0000000000, 1)
	if got := m.PagesAllocated(); got != 2 {
		t.Errorf("PagesAllocated = %d, want 2", got)
	}
}

func TestPageHelpers(t *testing.T) {
	if PageBase(0x1234) != 0x1000 {
		t.Errorf("PageBase(0x1234) = %#x", PageBase(0x1234))
	}
	if PageNum(0x1234) != 1 {
		t.Errorf("PageNum(0x1234) = %d", PageNum(0x1234))
	}
	if PageBase(0x1000) != 0x1000 {
		t.Errorf("PageBase at boundary = %#x", PageBase(0x1000))
	}
}

// TestForkSeesParentContents: a fork reads everything the parent had
// written before the fork, without copying any page.
func TestForkSeesParentContents(t *testing.T) {
	m := New()
	m.Write64(0x1000, 111)
	m.Write64(0x7f0000002000, 222)
	f := m.Fork()
	if f.Read64(0x1000) != 111 || f.Read64(0x7f0000002000) != 222 {
		t.Fatalf("fork does not see parent contents: %d %d",
			f.Read64(0x1000), f.Read64(0x7f0000002000))
	}
	if f.PagesAllocated() != 0 {
		t.Errorf("fork copied %d pages on read; want 0 (COW)", f.PagesAllocated())
	}
	if f.PagesShared() != 2 {
		t.Errorf("PagesShared = %d, want 2", f.PagesShared())
	}
}

// TestForkWriteIsolation: writes in a fork never reach the parent or a
// sibling fork, and vice versa — including writes to pages both sides
// had already read through the shared base (the memo-staleness trap).
func TestForkWriteIsolation(t *testing.T) {
	m := New()
	m.Write64(0x1000, 1)
	a := m.Fork()
	b := m.Fork()

	// Warm every memo with a read of the shared page first.
	_ = m.Read64(0x1000)
	_ = a.Read64(0x1000)
	_ = b.Read64(0x1000)

	a.Write64(0x1000, 2)
	if m.Read64(0x1000) != 1 || b.Read64(0x1000) != 1 {
		t.Fatalf("fork write leaked: parent=%d sibling=%d", m.Read64(0x1000), b.Read64(0x1000))
	}
	m.Write64(0x1000, 3) // parent write after fork stays private too
	if a.Read64(0x1000) != 2 || b.Read64(0x1000) != 1 {
		t.Fatalf("parent write leaked: a=%d b=%d", a.Read64(0x1000), b.Read64(0x1000))
	}
	if a.PagesAllocated() != 1 {
		t.Errorf("fork a owns %d pages, want 1 (one COW copy)", a.PagesAllocated())
	}
}

// TestForkOfFork: grandchild sees both generations' pre-fork writes
// and still isolates its own.
func TestForkOfFork(t *testing.T) {
	m := New()
	m.Write64(0x1000, 1)
	child := m.Fork()
	child.Write64(0x2000, 2)
	grand := child.Fork()
	if grand.Read64(0x1000) != 1 || grand.Read64(0x2000) != 2 {
		t.Fatalf("grandchild misses inherited state: %d %d",
			grand.Read64(0x1000), grand.Read64(0x2000))
	}
	grand.Write64(0x2000, 9)
	if child.Read64(0x2000) != 2 {
		t.Fatalf("grandchild write leaked to child: %d", child.Read64(0x2000))
	}
}

// TestForkFreshPages: pages never present in the base allocate
// privately in each side.
func TestForkFreshPages(t *testing.T) {
	m := New()
	f := m.Fork()
	f.Write64(0x5000, 5)
	if m.Read64(0x5000) != 0 {
		t.Fatalf("fresh fork page visible in parent: %d", m.Read64(0x5000))
	}
	if m.PagesAllocated() != 0 {
		t.Errorf("parent allocated %d pages, want 0", m.PagesAllocated())
	}
}

// TestForkConcurrentReads: sibling forks may read (and COW-write)
// concurrently; the shared base layer is never written in place.
// Run with -race to make this meaningful.
func TestForkConcurrentReads(t *testing.T) {
	m := New()
	for i := uint64(0); i < 64; i++ {
		m.Write64(0x1000+i*8, i)
	}
	parent := m.Fork()
	_ = parent
	const forks = 8
	done := make(chan error, forks)
	for g := 0; g < forks; g++ {
		f := m.Fork()
		go func(f *Memory, g uint64) {
			for i := uint64(0); i < 64; i++ {
				if got := f.Read64(0x1000 + i*8); got != i {
					done <- fmt.Errorf("fork %d read %d at slot %d", g, got, i)
					return
				}
				f.Write64(0x1000+i*8, g*1000+i)
			}
			for i := uint64(0); i < 64; i++ {
				if got := f.Read64(0x1000 + i*8); got != g*1000+i {
					done <- fmt.Errorf("fork %d lost its write at slot %d: %d", g, i, got)
					return
				}
			}
			done <- nil
		}(f, uint64(g))
	}
	for g := 0; g < forks; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestForkZeroValue: forking a zero-value Memory works.
func TestForkZeroValue(t *testing.T) {
	var m Memory
	f := m.Fork()
	if f.Read64(0x1000) != 0 {
		t.Error("zero-value fork read != 0")
	}
	f.Write64(0x1000, 7)
	if f.Read64(0x1000) != 7 {
		t.Error("zero-value fork write/read failed")
	}
}
