package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWrite64(t *testing.T) {
	m := New()
	m.Write64(0x1000, 0xdeadbeefcafebabe)
	if got := m.Read64(0x1000); got != 0xdeadbeefcafebabe {
		t.Fatalf("Read64 = %#x", got)
	}
}

func TestUnallocatedReadsZero(t *testing.T) {
	m := New()
	if m.Read64(0x7fff12345678) != 0 {
		t.Error("unallocated Read64 != 0")
	}
	if m.Read8(0x42) != 0 {
		t.Error("unallocated Read8 != 0")
	}
	if m.PagesAllocated() != 0 {
		t.Error("reads should not allocate pages")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if m.Read64(0x1000) != 0 {
		t.Error("zero-value read != 0")
	}
	m.Write64(0x1000, 7)
	if m.Read64(0x1000) != 7 {
		t.Error("zero-value write/read failed")
	}
}

func TestCrossPage64(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // straddles the first page boundary
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page Read64 = %#x", got)
	}
	if m.PagesAllocated() != 2 {
		t.Errorf("PagesAllocated = %d, want 2", m.PagesAllocated())
	}
}

func TestByteOrder(t *testing.T) {
	m := New()
	m.Write64(0, 0x0102030405060708)
	if m.Read8(0) != 0x08 {
		t.Errorf("little-endian low byte = %#x, want 0x08", m.Read8(0))
	}
	if m.Read8(7) != 0x01 {
		t.Errorf("little-endian high byte = %#x, want 0x01", m.Read8(7))
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr, v uint64) bool {
		addr %= 1 << 40
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseAllocation(t *testing.T) {
	m := New()
	m.Write8(0x400000, 1)
	m.Write8(0x7f0000000000, 1)
	if got := m.PagesAllocated(); got != 2 {
		t.Errorf("PagesAllocated = %d, want 2", got)
	}
}

func TestPageHelpers(t *testing.T) {
	if PageBase(0x1234) != 0x1000 {
		t.Errorf("PageBase(0x1234) = %#x", PageBase(0x1234))
	}
	if PageNum(0x1234) != 1 {
		t.Errorf("PageNum(0x1234) = %d", PageNum(0x1234))
	}
	if PageBase(0x1000) != 0x1000 {
		t.Errorf("PageBase at boundary = %#x", PageBase(0x1000))
	}
}
