package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSummaryBasic(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("zero summary not zero: %+v", s)
	}
	for _, x := range []float64{3, 1, 4, 1, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
	if got, want := s.Sum(), 14.0; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if got, want := s.Mean(), 2.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
}

func TestSummaryVariance(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got, want := s.Variance(), 4.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := s.StdDev(), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestSummaryVarianceSingleton(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Variance() != 0 {
		t.Errorf("Variance of singleton = %v, want 0", s.Variance())
	}
}

func TestSamplePercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {90, 90.1},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSampleEmptyPercentile(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 {
		t.Error("empty sample percentile should be 0")
	}
	if s.CDF(10) != nil {
		t.Error("empty sample CDF should be nil")
	}
	if s.Mean() != 0 {
		t.Error("empty sample mean should be 0")
	}
}

func TestSamplePercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotone(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		s.Add(rng.NormFloat64()*10 + 100)
	}
	cdf := s.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("CDF length = %d, want 50", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value {
			t.Errorf("CDF values not monotone at %d: %v < %v", i, cdf[i].Value, cdf[i-1].Value)
		}
		if cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Errorf("CDF fractions not strictly increasing at %d", i)
		}
	}
	last := cdf[len(cdf)-1]
	if last.Fraction != 1 {
		t.Errorf("final CDF fraction = %v, want 1", last.Fraction)
	}
}

func TestCDFMorePointsThanSamples(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 3})
	cdf := s.CDF(10)
	if len(cdf) != 3 {
		t.Fatalf("CDF length = %d, want clamped to 3", len(cdf))
	}
}

func TestTrimOutliers(t *testing.T) {
	var s Sample
	for i := 0; i < 9999; i++ {
		s.Add(100)
	}
	s.Add(1e9) // one gross outlier
	trimmed := s.TrimOutliers(99.9)
	if trimmed.N() != 9999 {
		t.Errorf("trimmed N = %d, want 9999", trimmed.N())
	}
	if trimmed.Percentile(100) != 100 {
		t.Errorf("outlier survived trim: max = %v", trimmed.Percentile(100))
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bucket %d count = %d, want 1", i, c)
		}
	}
	if h.Under != 0 || h.Over != 0 {
		t.Errorf("Under/Over = %d/%d, want 0/0", h.Under, h.Over)
	}
	if h.Total() != 10 {
		t.Errorf("Total = %d, want 10", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-1)
	h.Add(10) // hi is exclusive
	h.Add(11)
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
}

func TestHistogramPeakAndFraction(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 70; i++ {
		h.Add(45) // bucket 4
	}
	for i := 0; i < 30; i++ {
		h.Add(85) // bucket 8
	}
	if got := h.PeakBucket(); got != 4 {
		t.Errorf("PeakBucket = %d, want 4", got)
	}
	if got, want := h.Fraction(4), 0.7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Fraction(4) = %v, want %v", got, want)
	}
	if got, want := h.BucketCenter(4), 45.0; got != want {
		t.Errorf("BucketCenter(4) = %v, want %v", got, want)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, tt := range []struct {
		name   string
		lo, hi float64
		n      int
	}{
		{"inverted range", 10, 0, 5},
		{"empty range", 5, 5, 5},
		{"zero buckets", 0, 10, 0},
	} {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewHistogram(tt.lo, tt.hi, tt.n)
		})
	}
}

func TestHistogramFractionSumsToOne(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewPCG(seed, 0))
		h := NewHistogram(0, 1, 7)
		for i := 0; i < int(n); i++ {
			h.Add(rng.Float64())
		}
		sum := 0.0
		for i := range h.Counts {
			sum += h.Fraction(i)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerKilo(t *testing.T) {
	if got := PerKilo(5, 1000); got != 5 {
		t.Errorf("PerKilo(5,1000) = %v, want 5", got)
	}
	if got := PerKilo(1, 0); got != 0 {
		t.Errorf("PerKilo with zero base = %v, want 0", got)
	}
	if got := PerKilo(1223, 100000); math.Abs(got-12.23) > 1e-12 {
		t.Errorf("PerKilo(1223,100000) = %v, want 12.23", got)
	}
}

func TestPercentDelta(t *testing.T) {
	if got := PercentDelta(100, 96); math.Abs(got-4) > 1e-12 {
		t.Errorf("PercentDelta(100,96) = %v, want 4", got)
	}
	if got := PercentDelta(0, 5); got != 0 {
		t.Errorf("PercentDelta with zero base = %v, want 0", got)
	}
	if got := PercentDelta(100, 104); math.Abs(got+4) > 1e-12 {
		t.Errorf("PercentDelta(100,104) = %v, want -4", got)
	}
}

func TestSampleValuesSorted(t *testing.T) {
	var s Sample
	s.AddAll([]float64{3, 1, 2})
	vs := s.Values()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Errorf("Values = %v", vs)
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestHistogramMeanAndErrorPaths(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(2)
	h.Add(4)
	if got := h.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	// Fraction with only out-of-range observations.
	h2 := NewHistogram(0, 1, 2)
	h2.Add(5)
	if h2.Fraction(0) != 0 {
		t.Error("Fraction with no in-range samples should be 0")
	}
}

func TestCDFZeroPoints(t *testing.T) {
	var s Sample
	s.Add(1)
	if s.CDF(0) != nil {
		t.Error("CDF(0) should be nil")
	}
}

// TestMeanCI95KnownValues checks the estimator against hand-computed
// values: mean of {1,2,3,4,5} is 3, sample stddev is sqrt(2.5), and
// the df=4 critical value is 2.776, so the half-width is
// 2.776*sqrt(2.5/5).
func TestMeanCI95KnownValues(t *testing.T) {
	mean, ci := MeanCI95([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Errorf("mean = %v, want 3", mean)
	}
	want := 2.776 * math.Sqrt(2.5/5)
	if math.Abs(ci-want) > 1e-9 {
		t.Errorf("ci95 = %v, want %v", ci, want)
	}
}

// TestMeanCI95Degenerate pins the edge cases: empty input, a single
// observation (no variance estimate), and identical observations
// (zero-width interval).
func TestMeanCI95Degenerate(t *testing.T) {
	if m, ci := MeanCI95(nil); m != 0 || ci != 0 {
		t.Errorf("empty = (%v, %v), want (0, 0)", m, ci)
	}
	if m, ci := MeanCI95([]float64{7}); m != 7 || ci != 0 {
		t.Errorf("singleton = (%v, %v), want (7, 0)", m, ci)
	}
	if m, ci := MeanCI95([]float64{4, 4, 4, 4}); m != 4 || ci != 0 {
		t.Errorf("constant = (%v, %v), want (4, 0)", m, ci)
	}
}

// TestMeanCI95Coverage: over many synthetic experiments drawing n
// normal samples, the 95% interval must contain the true mean roughly
// 95% of the time — the property the sampled-simulation error bars
// rely on.
func TestMeanCI95Coverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	const trials = 4000
	hits := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 8)
		for j := range xs {
			xs[j] = 10 + 3*rng.NormFloat64()
		}
		mean, ci := MeanCI95(xs)
		if math.Abs(mean-10) <= ci {
			hits++
		}
	}
	cov := float64(hits) / trials
	if cov < 0.93 || cov > 0.97 {
		t.Errorf("coverage = %.3f, want ~0.95", cov)
	}
}

// TestTCritical95 pins table boundaries and the normal tail.
func TestTCritical95(t *testing.T) {
	cases := map[int]float64{0: 0, 1: 12.706, 4: 2.776, 30: 2.042, 31: 1.96, 1000: 1.96}
	for df, want := range cases {
		if got := TCritical95(df); got != want {
			t.Errorf("TCritical95(%d) = %v, want %v", df, got, want)
		}
	}
}
