// Package stats provides the measurement primitives used by the
// reproduction harness: streaming summaries, fixed-bucket histograms,
// empirical CDFs and percentile tables.
//
// The paper reports three kinds of artefacts built from per-request
// latencies: cumulative distribution functions (Apache, MySQL),
// histograms of the dominant peak (Memcached), and percentile tables
// (MySQL).  This package implements all three over plain float64
// samples so that every workload driver can share them.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming moments of a series of observations.
// The zero value is ready to use.
type Summary struct {
	n        int
	sum      float64
	sumSq    float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the population variance, or 0 for fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 { // guard against floating-point cancellation
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Sample is a growable collection of observations supporting exact
// order statistics.  The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll records every observation in xs.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.  It returns 0 for an empty
// sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// TrimOutliers returns a copy of the sample with observations above the
// given percentile removed.  The paper omits 5-6 outliers per 10,000
// Apache requests caused by measurement perturbation; the workload
// drivers use this to mirror that filtering.
func (s *Sample) TrimOutliers(pctl float64) *Sample {
	cut := s.Percentile(pctl)
	out := &Sample{}
	for _, x := range s.xs {
		if x <= cut {
			out.Add(x)
		}
	}
	return out
}

// Values returns the observations in ascending order.  The returned
// slice is owned by the sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

// CDFPoint is one point of an empirical cumulative distribution:
// Fraction of observations were <= Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of the sample evaluated at up to
// points evenly spaced ranks.  It returns nil for an empty sample.
func (s *Sample) CDF(points int) []CDFPoint {
	if len(s.xs) == 0 || points <= 0 {
		return nil
	}
	s.sort()
	if points > len(s.xs) {
		points = len(s.xs)
	}
	out := make([]CDFPoint, points)
	for i := 0; i < points; i++ {
		// Rank of the sample this point represents, from the first
		// to the last observation inclusive.
		rank := (i + 1) * len(s.xs) / points
		if rank < 1 {
			rank = 1
		}
		out[i] = CDFPoint{
			Value:    s.xs[rank-1],
			Fraction: float64(rank) / float64(len(s.xs)),
		}
	}
	return out
}

// Histogram counts observations in equal-width buckets over
// [Lo, Hi).  Observations outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int
	Over    int
	total   int
	samples Summary
}

// NewHistogram returns a histogram with the given number of
// equal-width buckets covering [lo, hi).  It panics if hi <= lo or
// buckets < 1, which would indicate a programming error in the caller.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram range [%v, %v)", lo, hi))
	}
	if buckets < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.samples.Add(x)
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // guard against floating-point edge
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations recorded, including
// out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Mean returns the mean of all recorded observations.
func (h *Histogram) Mean() float64 { return h.samples.Mean() }

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of in-range observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	in := h.total - h.Under - h.Over
	if in == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(in)
}

// PeakBucket returns the index of the most populated bucket.
func (h *Histogram) PeakBucket() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
		_ = c
	}
	return best
}

// tTable95 holds two-sided 95% Student-t critical values by degrees of
// freedom (index = df, 1-based; index 0 unused).  Sampled simulation
// works with a handful to a few dozen measurement windows, squarely
// where the t correction over the normal 1.96 matters; past df=30 the
// table is within 2% of the normal value and we use 1.96.
var tTable95 = [...]float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom (1.96 for df > 30, 0 for df < 1).
func TCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= 30 {
		return tTable95[df]
	}
	return 1.96
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval, computed with the sample (n-1) variance and the
// Student-t critical value for n-1 degrees of freedom: t·s/√n.  This
// is the estimator sampled simulation reports per counter — windows
// are treated as independent draws from the steady-state phase mix.
// The half-width is 0 for fewer than two observations (no variance
// estimate exists).
func MeanCI95(xs []float64) (mean, ci95 float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	s2 := sq / float64(n-1)
	ci95 = TCritical95(n-1) * math.Sqrt(s2/float64(n))
	return mean, ci95
}

// PerKilo expresses count per thousand units of base, the "per kilo
// instruction" (PKI) normalisation used throughout the paper's tables.
func PerKilo(count, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(count) / float64(base) * 1000
}

// PercentDelta returns the relative improvement of enhanced over base
// in percent; positive means enhanced is smaller (better, for
// latencies and miss counts).
func PercentDelta(base, enhanced float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - enhanced) / base * 100
}
