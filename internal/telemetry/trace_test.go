package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.Start("job1")
	if trace.ID() != "job1" {
		t.Fatalf("id = %q", trace.ID())
	}
	root := trace.Root()
	q := root.Child("queued")
	q.End()
	a := root.Child("attempt")
	a.SetAttr("n", "1")
	g := a.Child("generate")
	g.End()
	m := a.Child("measure")
	m.End()
	a.End()
	root.End()

	snap := trace.Snapshot()
	if snap.ID != "job1" || snap.Root.Name != "job" {
		t.Errorf("snapshot = %+v", snap)
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(snap.Root.Children))
	}
	att := snap.Root.Children[1]
	if att.Name != "attempt" || att.Attrs["n"] != "1" {
		t.Errorf("attempt span = %+v", att)
	}
	if len(att.Children) != 2 || att.Children[0].Name != "generate" {
		t.Errorf("attempt children = %+v", att.Children)
	}
	if att.InProgress || att.DurMS < 0 {
		t.Errorf("ended span: in_progress=%v dur=%v", att.InProgress, att.DurMS)
	}
	if got := trace.Phases(); len(got) != 2 || got[0] != "queued" || got[1] != "attempt" {
		t.Errorf("phases = %v", got)
	}

	// The snapshot marshals to JSON cleanly.
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("marshal: %v", err)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.Start("a")
	tr.Start("b")
	tr.Start("c") // evicts a
	if tr.Len() != 2 {
		t.Errorf("len = %d, want 2", tr.Len())
	}
	if _, ok := tr.Get("a"); ok {
		t.Error("oldest trace not evicted")
	}
	if _, ok := tr.Get("c"); !ok {
		t.Error("newest trace missing")
	}
	traces := tr.Traces()
	if len(traces) != 2 || traces[0].ID() != "b" || traces[1].ID() != "c" {
		t.Errorf("traces = %v", []string{traces[0].ID(), traces[1].ID()})
	}
	// Re-starting an existing ID returns the same trace, no eviction.
	if tr.Start("c") != traces[1] {
		t.Error("Start of existing id created a new trace")
	}
}

// TestNilTracerIsNoOp: the disabled path must be callable end to end
// with zero conditionals in instrumented code.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("x")
	if trace != nil {
		t.Fatal("nil tracer returned a trace")
	}
	sp := trace.Root().Child("phase")
	sp.SetAttr("k", "v")
	sp.End()
	if trace.Snapshot().ID != "" || trace.Phases() != nil || trace.ID() != "" {
		t.Error("nil trace snapshot not empty")
	}
	if _, ok := tr.Get("x"); ok {
		t.Error("nil tracer Get returned ok")
	}
	if tr.Len() != 0 || tr.Traces() != nil {
		t.Error("nil tracer not empty")
	}
}

func TestInProgressSnapshot(t *testing.T) {
	tr := NewTracer(1)
	trace := tr.Start("live")
	sp := trace.Root().Child("running")
	time.Sleep(2 * time.Millisecond)
	snap := trace.Snapshot()
	if !snap.Root.InProgress || !snap.Root.Children[0].InProgress {
		t.Error("open spans not marked in_progress")
	}
	if snap.Root.Children[0].DurMS <= 0 {
		t.Error("open span has no duration-so-far")
	}
	sp.End()
	end1 := trace.Snapshot().Root.Children[0].DurMS
	time.Sleep(2 * time.Millisecond)
	if end2 := trace.Snapshot().Root.Children[0].DurMS; end2 != end1 {
		t.Error("ended span duration still growing")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			trace := tr.Start(string(rune('a' + n)))
			for j := 0; j < 50; j++ {
				sp := trace.Root().Child("phase")
				sp.SetAttr("j", "x")
				sp.End()
				trace.Snapshot()
			}
			trace.Root().End()
		}(i)
	}
	wg.Wait()
	if tr.Len() != 8 {
		t.Errorf("len = %d, want 8", tr.Len())
	}
}
