package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Tracer keeps a bounded ring of recent traces, keyed by ID (the
// runner uses the content-derived job ID, so a trace is addressable by
// the same ID clients already poll jobs with).  When the ring is full
// the oldest trace is evicted.  A nil *Tracer is a valid disabled
// tracer: Start returns a nil *Trace, whose spans are all no-ops, so
// instrumented code needs no conditionals.
type Tracer struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*Trace
	ring []string // creation order, for eviction
}

// DefaultTraceCapacity is the ring size used when a capacity of 0 is
// requested.
const DefaultTraceCapacity = 512

// NewTracer returns a tracer retaining up to capacity recent traces
// (0 means DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		cap:  capacity,
		byID: make(map[string]*Trace, capacity),
	}
}

// Start returns the trace with the given ID, creating it (and
// evicting the oldest trace if the ring is full) on first use.  On a
// nil tracer it returns nil.
func (t *Tracer) Start(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr, ok := t.byID[id]; ok {
		return tr
	}
	for len(t.ring) >= t.cap {
		delete(t.byID, t.ring[0])
		t.ring = t.ring[1:]
	}
	tr := &Trace{id: id}
	tr.root = &Span{tr: tr, name: "job", start: time.Now()}
	t.byID[id] = tr
	t.ring = append(t.ring, id)
	return tr
}

// Get returns the trace with the given ID, if still retained.
func (t *Tracer) Get(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byID[id]
	return tr, ok
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.ring))
	for _, id := range t.ring {
		out = append(out, t.byID[id])
	}
	return out
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// spanMu guards every trace's span tree.  One global mutex is enough:
// spans are touched a handful of times per job, never per simulated
// instruction, so contention is negligible against multi-hundred-ms
// simulations.
var spanMu sync.Mutex

// Trace is one job's span tree, rooted at the "job" span.
type Trace struct {
	id   string
	root *Span
}

// ID returns the trace's identifier.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the trace's root span ("job"), nil on a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Span is one named phase of a trace: a start/end interval with
// string attributes and child phases.  All methods are safe for
// concurrent use and no-ops on nil receivers, so disabled tracing
// costs nothing but the nil checks.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	end   time.Time
	attrs [][2]string
	kids  []*Span
}

// Child starts a new child phase and returns it.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	spanMu.Lock()
	s.kids = append(s.kids, c)
	spanMu.Unlock()
	return c
}

// SetAttr records a key/value attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	spanMu.Lock()
	s.attrs = append(s.attrs, [2]string{key, value})
	spanMu.Unlock()
}

// End marks the phase finished.  Ending twice keeps the first end.
func (s *Span) End() {
	if s == nil {
		return
	}
	spanMu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	spanMu.Unlock()
}

// SpanJSON is the wire form of one span, a node of the trace tree.
type SpanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurMS      float64           `json:"dur_ms"`
	InProgress bool              `json:"in_progress,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// TraceJSON is the wire form of a whole trace.
type TraceJSON struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	DurMS float64   `json:"dur_ms"`
	Root  SpanJSON  `json:"root"`
}

// Snapshot renders the trace as its wire form.  In-progress spans
// report duration-so-far with in_progress set.
func (t *Trace) Snapshot() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	now := time.Now()
	spanMu.Lock()
	root := t.root.snapshotLocked(now)
	spanMu.Unlock()
	return TraceJSON{ID: t.id, Start: root.Start, DurMS: root.DurMS, Root: root}
}

func (s *Span) snapshotLocked(now time.Time) SpanJSON {
	out := SpanJSON{Name: s.name, Start: s.start}
	end := s.end
	if end.IsZero() {
		end = now
		out.InProgress = true
	}
	out.DurMS = float64(end.Sub(s.start)) / 1e6
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, kv := range s.attrs {
			out.Attrs[kv[0]] = kv[1]
		}
	}
	for _, c := range s.kids {
		out.Children = append(out.Children, c.snapshotLocked(now))
	}
	return out
}

// Phases returns the names of the root's direct children in start
// order — the job's phase breakdown, for tests and quick inspection.
func (t *Trace) Phases() []string {
	if t == nil {
		return nil
	}
	spanMu.Lock()
	defer spanMu.Unlock()
	kids := t.root.kids
	idx := make([]int, len(kids))
	for i := range kids {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return kids[idx[a]].start.Before(kids[idx[b]].start) })
	out := make([]string, len(kids))
	for i, j := range idx {
		out[i] = kids[j].name
	}
	return out
}
