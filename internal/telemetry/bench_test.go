package telemetry

import (
	"testing"
)

// The telemetry hot path must be cheap enough to leave armed in
// production: these micro-benches feed BENCH_obs.json (make obs-bench).

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_total", "bench", "workload", "config")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("apache", "enhanced").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ms", "bench", ExponentialBuckets(0.5, 2, 20))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkSpanLifecycle(b *testing.B) {
	tr := NewTracer(16)
	trace := tr.Start("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := trace.Root().Child("phase")
		sp.End()
	}
}

// BenchmarkSpanDisabled measures the nil-tracer path instrumented
// code pays when tracing is off: nil checks only.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	trace := tr.Start("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := trace.Root().Child("phase")
		sp.SetAttr("k", "v")
		sp.End()
	}
}
