// Package telemetry is the reproduction's dependency-free
// observability kernel: a metrics registry (atomic counters, gauges,
// fixed-bucket histograms with quantile estimation) plus a lightweight
// span/trace facility (per-job trace IDs, named phases, ring-buffered
// recent traces — see trace.go).
//
// The paper's whole argument is counter-driven — events per library
// call, ABTB hit and flush rates — and the service layer needs the
// same discipline: every hot-path subsystem (runner pool, result
// cache, retry/shed admission control, fault injection, the simulated
// ABTB/Bloom hardware itself) registers its counters here, and
// cmd/dlsimd exposes the registry in Prometheus text exposition
// format at GET /metrics (see expose.go) and recent job traces at
// GET /v1/traces/{id}.
//
// Design rules:
//
//   - Hot-path instruments are lock-free: Counter.Inc is one atomic
//     add, Histogram.Observe is a binary search plus three atomic
//     adds.  The registry mutex is only taken at registration and
//     exposition time, never per observation.
//   - Registration is idempotent: asking for an already-registered
//     name with the same kind returns the existing instrument, so
//     independent subsystems can share one registry without
//     coordinating init order.  Re-registering a name as a different
//     kind panics (a programming error, like a duplicate flag).
//   - Label cardinality is bounded by construction: label values come
//     from closed sets (workload names, config kinds, route patterns,
//     injection-point names) — never from request payloads or job IDs.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.  All methods are
// safe for concurrent use; Inc and Add are single atomic operations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer level (queue depth, armed points,
// pool width).  All methods are single atomic operations.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric kinds, for registration-conflict checks and exposition TYPE
// lines.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one named metric: its metadata plus every labelled child.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string  // label names; empty for unlabelled metrics
	bounds []float64 // histogram bucket upper bounds

	fn func() float64 // non-nil for function gauges (uptime etc.)

	mu       sync.Mutex
	children map[string]any // label-value key -> *Counter/*Gauge/*Histogram
}

// child returns (creating if needed) the instrument for one
// label-value combination.
func (f *family) child(key string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.bounds)
	}
	f.children[key] = m
	return m
}

// labelKey encodes label values into a child-map key.  Values are
// joined with an unlikely separator; exposition re-splits them.
const labelSep = "\x1f"

func labelKey(values []string) string { return strings.Join(values, labelSep) }

// Registry holds a process's (or a Runner's) metric families.  The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the named family, creating it on first use and
// panicking on a kind or label-arity conflict.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s/%d labels (was %s/%d)",
				name, k, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		fn:       fn,
		children: make(map[string]any),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter returns the named unlabelled counter, registering it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).child("").(*Counter)
}

// Gauge returns the named unlabelled gauge, registering it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).child("").(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time (e.g. uptime).  Re-registering the same name keeps
// the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, fn)
}

// Histogram returns the named unlabelled histogram over the given
// ascending bucket upper bounds (an implicit +Inf bucket is appended),
// registering it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, bounds, nil).child("").(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the named labelled counter family, registering
// it on first use.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// With returns the counter for one label-value combination.  values
// must match the family's label names positionally.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(labelKey(values)).(*Counter)
}

// HistogramVec is a histogram family with labels.  All children share
// one bucket layout; exposition emits per-child cumulative bucket
// series with the extra `le` label appended after the family's own.
type HistogramVec struct{ f *family }

// HistogramVec returns the named labelled histogram family over the
// given ascending bucket upper bounds, registering it on first use.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, bounds, nil)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(labelKey(values)).(*Histogram)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the named labelled gauge family, registering it on
// first use.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	return v.f.child(labelKey(values)).(*Gauge)
}

// sortedFamilies snapshots the families in registration order and
// each family's children in sorted label order, for deterministic
// exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// sortedChildren returns the family's child keys in lexical order.
func (f *family) sortedChildren() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
