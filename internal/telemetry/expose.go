package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text
// exposition format produced by WritePrometheus.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, then one sample line per child — cumulative `_bucket{le=}`
// lines plus `_sum`/`_count` for histograms.  Output is deterministic:
// families appear in registration order, children in sorted label
// order, so the format can be golden-tested.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		for _, key := range f.sortedChildren() {
			f.mu.Lock()
			m := f.children[key]
			f.mu.Unlock()
			lbls := labelString(f.labels, key)
			var err error
			switch v := m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, lbls, v.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, lbls, v.Value())
			case *Histogram:
				err = writeHistogram(w, f.name, f.labels, key, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram emits the cumulative bucket series plus sum/count.
func writeHistogram(w io.Writer, name string, labels []string, key string, h *Histogram) error {
	counts := h.BucketCounts()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, labelString(append(append([]string(nil), labels...), "le"), joinKey(key, le)), cum); err != nil {
			return err
		}
	}
	lbls := labelString(labels, key)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, lbls, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, lbls, h.Count())
	return err
}

// joinKey appends one more label value to an encoded key.
func joinKey(key, value string) string {
	if key == "" {
		return value
	}
	return key + labelSep + value
}

// labelString renders {k="v",...} for the given label names and
// encoded value key, or "" for an unlabelled metric.
func labelString(labels []string, key string) string {
	if len(labels) == 0 {
		return ""
	}
	values := strings.Split(key, labelSep)
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
