package telemetry

import (
	"strconv"
	"strings"
	"testing"
)

// TestExpositionGolden locks the exposition format byte for byte on a
// small registry: HELP/TYPE lines, counter/gauge samples, labelled
// children in sorted order, cumulative histogram buckets with
// sum/count, and label escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dlsim_jobs_completed_total", "Jobs completed.").Add(3)
	r.Gauge("dlsim_queue_depth", "Jobs waiting.").Set(2)
	v := r.CounterVec("dlsim_sim_abtb_redirects_total", "ABTB redirects.", "workload", "config")
	v.With("mysql", "enhanced").Add(9)
	v.With("apache", "enhanced").Add(7)
	h := r.Histogram("dlsim_job_wall_ms", "Job wall clock.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	r.GaugeFunc("dlsim_up", "Always one.", func() float64 { return 1 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dlsim_jobs_completed_total Jobs completed.
# TYPE dlsim_jobs_completed_total counter
dlsim_jobs_completed_total 3
# HELP dlsim_queue_depth Jobs waiting.
# TYPE dlsim_queue_depth gauge
dlsim_queue_depth 2
# HELP dlsim_sim_abtb_redirects_total ABTB redirects.
# TYPE dlsim_sim_abtb_redirects_total counter
dlsim_sim_abtb_redirects_total{workload="apache",config="enhanced"} 7
dlsim_sim_abtb_redirects_total{workload="mysql",config="enhanced"} 9
# HELP dlsim_job_wall_ms Job wall clock.
# TYPE dlsim_job_wall_ms histogram
dlsim_job_wall_ms_bucket{le="1"} 1
dlsim_job_wall_ms_bucket{le="10"} 2
dlsim_job_wall_ms_bucket{le="+Inf"} 3
dlsim_job_wall_ms_sum 55.5
dlsim_job_wall_ms_count 3
# HELP dlsim_up Always one.
# TYPE dlsim_up gauge
dlsim_up 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramVecExposition locks the labelled-histogram format: each
// child emits its own cumulative bucket series with `le` appended
// after the family's labels, plus per-child sum/count, children in
// sorted label order.
func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("dlsim_cluster_peer_latency_ms", "Per-peer forward latency.", []float64{1, 10}, "peer")
	v.With("b").Observe(0.5)
	v.With("b").Observe(5)
	v.With("a").Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dlsim_cluster_peer_latency_ms Per-peer forward latency.
# TYPE dlsim_cluster_peer_latency_ms histogram
dlsim_cluster_peer_latency_ms_bucket{peer="a",le="1"} 0
dlsim_cluster_peer_latency_ms_bucket{peer="a",le="10"} 0
dlsim_cluster_peer_latency_ms_bucket{peer="a",le="+Inf"} 1
dlsim_cluster_peer_latency_ms_sum{peer="a"} 50
dlsim_cluster_peer_latency_ms_count{peer="a"} 1
dlsim_cluster_peer_latency_ms_bucket{peer="b",le="1"} 1
dlsim_cluster_peer_latency_ms_bucket{peer="b",le="10"} 2
dlsim_cluster_peer_latency_ms_bucket{peer="b",le="+Inf"} 2
dlsim_cluster_peer_latency_ms_sum{peer="b"} 5.5
dlsim_cluster_peer_latency_ms_count{peer="b"} 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Same name and labels re-registers onto the same family; the
	// children are shared.
	if got := r.HistogramVec("dlsim_cluster_peer_latency_ms", "", []float64{1, 10}, "peer").With("b").Count(); got != 2 {
		t.Errorf("re-registered child count = %d, want 2", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "x", "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

// TestExpositionParses re-parses every sample line: metric names are
// well-formed, values are numbers, histogram bucket series are
// cumulative (non-decreasing) and end at +Inf == count.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", "latency", ExponentialBuckets(0.5, 2, 6))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	r.Counter("a_total", "a").Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	var lastBucket, count float64
	lastBucket = -1
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("sample line %q has no value", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample %q: value %q not a number: %v", name, val, err)
		}
		switch {
		case strings.HasPrefix(name, "lat_ms_bucket"):
			if f < lastBucket {
				t.Errorf("bucket series not cumulative at %q", line)
			}
			lastBucket = f
		case name == "lat_ms_count":
			count = f
		}
	}
	if lastBucket != count {
		t.Errorf("+Inf bucket %v != count %v", lastBucket, count)
	}
	if count != 100 {
		t.Errorf("count = %v, want 100", count)
	}
}
