package telemetry

import (
	"sort"
	"sync"
	"time"
)

// History is a fixed-size ring of periodic registry snapshots: every
// interval it records the value of each counter, gauge and function
// gauge (and each histogram's _count and _sum), keyed by the series'
// Prometheus exposition name (`name` or `name{label="v",...}`).  It
// turns point-in-time /metrics scrapes into queryable short-horizon
// time series — GET /v1/metrics/history serves it — without any
// external storage.
//
// Memory is bounded by construction: capacity snapshots, each a map
// of series→value, where the series set is itself bounded by the
// registry's label-cardinality rules.
type History struct {
	reg      *Registry
	interval time.Duration

	mu      sync.Mutex
	times   []int64              // unix seconds, ring-ordered
	samples []map[string]float64 // parallel to times
	head    int                  // next write position
	n       int                  // filled entries

	stop chan struct{}
	done chan struct{}
}

// DefaultHistoryInterval is the snapshot period applied when
// NewHistory is given a zero interval.
const DefaultHistoryInterval = 5 * time.Second

// DefaultHistoryCapacity is the ring size applied when NewHistory is
// given a non-positive capacity: one hour at the default interval.
const DefaultHistoryCapacity = 720

// NewHistory returns a history ring over reg.  It does not snapshot
// until Start is called (or Record, for callers driving it manually).
func NewHistory(reg *Registry, capacity int, interval time.Duration) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	return &History{
		reg:      reg,
		interval: interval,
		times:    make([]int64, capacity),
		samples:  make([]map[string]float64, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the snapshot period.
func (h *History) Interval() time.Duration { return h.interval }

// Start launches the periodic snapshot goroutine.  Call Close to stop
// it; Start must be called at most once.
func (h *History) Start() {
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				h.Record(now)
			case <-h.stop:
				return
			}
		}
	}()
}

// Close stops the snapshot goroutine and waits for it to exit.  Safe
// only after Start.
func (h *History) Close() {
	close(h.stop)
	<-h.done
}

// Record takes one snapshot of the registry at the given time.  It is
// what the Start goroutine calls each tick; tests call it directly to
// drive the ring deterministically.
func (h *History) Record(now time.Time) {
	snap := snapshotValues(h.reg)
	h.mu.Lock()
	h.times[h.head] = now.Unix()
	h.samples[h.head] = snap
	h.head = (h.head + 1) % len(h.times)
	if h.n < len(h.times) {
		h.n++
	}
	h.mu.Unlock()
}

// snapshotValues flattens the registry into series name → value.
// Histograms contribute their _count and _sum series (enough for rate
// and mean-over-window queries); bucket vectors are deliberately not
// retained — the ring would multiply their cardinality by its depth.
func snapshotValues(reg *Registry) map[string]float64 {
	out := make(map[string]float64, 64)
	for _, f := range reg.sortedFamilies() {
		if f.fn != nil {
			out[f.name] = f.fn()
			continue
		}
		for _, key := range f.sortedChildren() {
			f.mu.Lock()
			m := f.children[key]
			f.mu.Unlock()
			lbls := labelString(f.labels, key)
			switch v := m.(type) {
			case *Counter:
				out[f.name+lbls] = float64(v.Value())
			case *Gauge:
				out[f.name+lbls] = float64(v.Value())
			case *Histogram:
				out[f.name+"_count"+lbls] = float64(v.Count())
				out[f.name+"_sum"+lbls] = v.Sum()
			}
		}
	}
	return out
}

// HistoryPoint is one (time, value) observation of a series.
type HistoryPoint struct {
	T int64   `json:"t"` // unix seconds
	V float64 `json:"v"`
}

// Names returns every series name present in the most recent
// snapshot, sorted.  Empty until the first Record.
func (h *History) Names() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return nil
	}
	last := (h.head - 1 + len(h.times)) % len(h.times)
	names := make([]string, 0, len(h.samples[last]))
	for name := range h.samples[last] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Query returns the series' points at or after since, oldest first.
// Snapshots that predate the series' registration simply lack it and
// are skipped, so a freshly registered metric has a short history
// rather than a zero-filled one.
func (h *History) Query(name string, since time.Time) []HistoryPoint {
	cut := since.Unix()
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistoryPoint, 0, h.n)
	start := (h.head - h.n + len(h.times)) % len(h.times)
	for i := 0; i < h.n; i++ {
		idx := (start + i) % len(h.times)
		if h.times[idx] < cut {
			continue
		}
		if v, ok := h.samples[idx][name]; ok {
			out = append(out, HistoryPoint{T: h.times[idx], V: v})
		}
	}
	return out
}

// Len returns the number of snapshots currently held.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}
