package telemetry

import (
	"reflect"
	"testing"
	"time"
)

// TestHistorySnapshot checks the flattening rules: plain counters and
// gauges by name, labelled children by exposition name, histograms as
// _count/_sum, function gauges live.
func TestHistorySnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "")
	c.Add(3)
	g := reg.Gauge("queue_depth", "")
	g.Set(7)
	reg.CounterVec("forwards_total", "", "peer").With("b").Add(2)
	h := reg.Histogram("latency_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(2.5)
	fn := 41.0
	reg.GaugeFunc("goroutines", "", func() float64 { fn++; return fn })

	hist := NewHistory(reg, 4, time.Second)
	hist.Record(time.Unix(100, 0))

	names := hist.Names()
	want := []string{
		"forwards_total{peer=\"b\"}", "goroutines", "jobs_total",
		"latency_seconds_count", "latency_seconds_sum", "queue_depth",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Names() = %v\nwant       %v", names, want)
	}
	get := func(name string) float64 {
		t.Helper()
		pts := hist.Query(name, time.Unix(0, 0))
		if len(pts) != 1 {
			t.Fatalf("Query(%q) = %v, want one point", name, pts)
		}
		if pts[0].T != 100 {
			t.Fatalf("Query(%q) T = %d, want 100", name, pts[0].T)
		}
		return pts[0].V
	}
	if v := get("jobs_total"); v != 3 {
		t.Errorf("jobs_total = %v, want 3", v)
	}
	if v := get(`forwards_total{peer="b"}`); v != 2 {
		t.Errorf("labelled counter = %v, want 2", v)
	}
	if v := get("latency_seconds_count"); v != 2 {
		t.Errorf("histogram count = %v, want 2", v)
	}
	if v := get("latency_seconds_sum"); v != 3 {
		t.Errorf("histogram sum = %v, want 3", v)
	}
	if v := get("goroutines"); v != 42 {
		t.Errorf("gauge func = %v, want 42 (evaluated at Record)", v)
	}
}

// TestHistoryRingWraps checks capacity bounds and since-filtering.
func TestHistoryRingWraps(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("x", "")
	hist := NewHistory(reg, 3, time.Second)
	for i := 0; i < 5; i++ {
		g.Set(int64(i))
		hist.Record(time.Unix(int64(100+i), 0))
	}
	if hist.Len() != 3 {
		t.Errorf("Len() = %d, want capacity 3", hist.Len())
	}
	pts := hist.Query("x", time.Unix(0, 0))
	if len(pts) != 3 {
		t.Fatalf("Query returned %d points, want 3", len(pts))
	}
	// Oldest first, and only the 3 newest survive the wrap.
	for i, p := range pts {
		if p.T != int64(102+i) || p.V != float64(2+i) {
			t.Errorf("point %d = %+v, want T=%d V=%d", i, p, 102+i, 2+i)
		}
	}
	if got := hist.Query("x", time.Unix(104, 0)); len(got) != 1 || got[0].V != 4 {
		t.Errorf("since-filtered query = %v, want just the final point", got)
	}
	if got := hist.Query("absent", time.Unix(0, 0)); len(got) != 0 {
		t.Errorf("query for unknown series = %v, want empty", got)
	}
}

// TestHistoryStartClose exercises the ticker goroutine lifecycle with
// a tiny interval; mostly a leak/deadlock check under -race.
func TestHistoryStartClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("y", "").Add(1)
	hist := NewHistory(reg, 8, time.Millisecond)
	hist.Start()
	deadline := time.Now().Add(2 * time.Second)
	for hist.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	hist.Close()
	if hist.Len() == 0 {
		t.Error("ticker never recorded a snapshot")
	}
	if hist.Interval() != time.Millisecond {
		t.Errorf("Interval() = %v, want 1ms", hist.Interval())
	}
}

// TestHistoryDefaults checks the zero-value clamps.
func TestHistoryDefaults(t *testing.T) {
	h := NewHistory(NewRegistry(), 0, 0)
	if len(h.times) != DefaultHistoryCapacity {
		t.Errorf("capacity = %d, want %d", len(h.times), DefaultHistoryCapacity)
	}
	if h.interval != DefaultHistoryInterval {
		t.Errorf("interval = %v, want %v", h.interval, DefaultHistoryInterval)
	}
}
