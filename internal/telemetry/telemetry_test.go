package telemetry

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
}

// TestRegistrationIdempotent: re-requesting a name returns the same
// instrument (shared registries must not fork counters).
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("increments not shared")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("sim_total", "per workload", "workload", "config")
	v.With("apache", "base").Add(2)
	v.With("apache", "enhanced").Inc()
	if got := v.With("apache", "base").Value(); got != 2 {
		t.Errorf("labelled counter = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("apache")
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	h := r.Histogram("h_ms", "h", ExponentialBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

// TestHistogramQuantileMatchesExact is the satellite acceptance test:
// histogram quantile estimates agree with internal/stats' exact
// percentiles on the same samples, within the straddling bucket's
// width.
func TestHistogramQuantileMatchesExact(t *testing.T) {
	bounds := ExponentialBuckets(0.5, 2, 20)
	h := newHistogram(bounds)
	exact := &stats.Sample{}

	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 10000; i++ {
		// Log-uniform latencies spanning ~0.1ms..10s, like job walls.
		v := 0.1 * math.Pow(10, 5*rng.Float64())
		h.Observe(v)
		exact.Add(v)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, p := range []float64{50, 95, 99} {
		est := h.Quantile(p)
		ex := exact.Percentile(p)
		// The straddling bucket's width bounds the estimation error.
		i := 0
		for i < len(bounds) && bounds[i] < ex {
			i++
		}
		lo, hi := 0.0, bounds[len(bounds)-1]
		if i < len(bounds) {
			hi = bounds[i]
		}
		if i > 0 {
			lo = bounds[i-1]
		}
		if est < lo || est > hi {
			t.Errorf("p%.0f: estimate %.3f outside exact value %.3f's bucket [%.3f, %.3f]", p, est, ex, lo, hi)
		}
	}
	// Mean is exact (sum/count), not bucketed.
	if got, want := h.Mean(), exact.Mean(); !approxEq(got, want, 1e-9) {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Quantiles are monotone in p.
	if h.Quantile(99) < h.Quantile(95) || h.Quantile(95) < h.Quantile(50) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram(ExponentialBuckets(1, 2, 4)) // 1 2 4 8
	if h.Quantile(50) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(50); got != 8 {
		t.Errorf("overflow-only quantile = %v, want last bound 8", got)
	}
	h.Observe(0.5)
	if got := h.Quantile(0); got <= 0 || got > 1 {
		t.Errorf("p0 = %v, want within first bucket (0,1]", got)
	}
	if got := h.BucketCounts(); got[0] != 1 || got[4] != 1 {
		t.Errorf("bucket counts = %v", got)
	}
	if h.Sum() != 100.5 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func approxEq(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps*maxf(1, maxf(absf(a), absf(b)))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absf(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
