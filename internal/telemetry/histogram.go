package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets by upper bound
// (cumulative "le" semantics at exposition, like Prometheus) and keeps
// a running sum, so mean and approximate quantiles are available
// without retaining samples.  Observe is lock-free: a binary search
// plus three atomic adds.
//
// Quantiles are estimated by linear interpolation inside the bucket
// that straddles the requested rank, so the error is bounded by that
// bucket's width (see TestHistogramQuantileMatchesExact, which checks
// the estimate against internal/stats on identical samples).
type Histogram struct {
	bounds []float64       // ascending upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound >= v ("le" is inclusive).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Mean returns the exact mean of all observations (sum/count), or 0
// for an empty histogram.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of per-bucket (non-cumulative)
// counts; the last entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the p-th percentile (0 <= p <= 100) by linear
// interpolation within the straddling bucket.  The first bucket
// interpolates from 0 (or from its own upper bound when bounds go
// negative — all our series are non-negative); observations in the
// +Inf bucket report the last finite bound.  Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(p float64) float64 {
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(total)
	if rank < 1 {
		rank = 1 // the first observation carries every quantile below it
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i == len(h.bounds) { // +Inf bucket: no finite upper edge
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if hi < lo { // negative-bound edge; not used by our series
				lo = hi
			}
			return lo + (hi-lo)*((rank-cum)/float64(c))
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns n upper bounds starting at start and
// multiplying by factor: {start, start·factor, ...}.  It panics on a
// non-positive start, a factor <= 1, or n < 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds starting at start with the
// given width: {start, start+width, ...}.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: LinearBuckets wants width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// atomicFloat is a float64 accumulated with CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
