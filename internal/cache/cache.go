// Package cache models set-associative, LRU-replaced caches and
// multi-level hierarchies.
//
// The simulator instantiates a Xeon-E5450-like hierarchy (the paper's
// testbed, §4.1): split 32 KiB L1I / 32 KiB L1D, and a large unified
// last-level cache.  Only hit/miss behaviour is modelled — no data is
// stored — because the paper's results are miss-counter deltas and the
// cycle penalties derived from them.
package cache

import (
	"fmt"

	"repro/internal/setassoc"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	// HitLatency and MissPenalty are in cycles; MissPenalty is the
	// *additional* cost beyond the next level's access.
	HitLatency  int
	MissPenalty int
}

// Validate reports an error for an inconsistent configuration.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %q: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Ways
	if sets*c.Ways != lines || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: %d lines / %d ways is not a power-of-two set count", c.Name, lines, c.Ways)
	}
	return nil
}

// Cache is one cache level.
type Cache struct {
	cfg       Config
	lineShift uint
	tags      *setassoc.Table[struct{}]
	next      *Cache // next level, nil for last level
}

// New constructs a cache from cfg, optionally backed by a next level.
// It panics on invalid configuration.
func New(cfg Config, next *Cache) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		tags:      setassoc.New[struct{}](sets, cfg.Ways),
		next:      next,
	}
}

// Line returns the line index (address divided by line size).
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.lineShift }

// Access performs a cache access for the byte at addr and returns the
// total latency in cycles, filling this level (and recursively the
// ones below) on a miss.
func (c *Cache) Access(addr uint64) int {
	return c.access(c.Line(addr), addr)
}

// access is Access with the line number already computed, so the range
// fast path does not compute it twice.
func (c *Cache) access(line, addr uint64) int {
	if _, hit := c.tags.Lookup(line); hit {
		return c.cfg.HitLatency
	}
	lat := c.cfg.HitLatency + c.cfg.MissPenalty
	if c.next != nil {
		lat += c.next.Access(addr)
	}
	c.tags.Insert(line, struct{}{})
	return lat
}

// AccessRange touches every line overlapped by [addr, addr+size) and
// returns the summed latency.  Instruction fetch uses it for
// instructions that straddle a line boundary; almost all accesses fit
// one line, so that case skips the loop entirely.
func (c *Cache) AccessRange(addr, size uint64) int {
	if size == 0 {
		size = 1
	}
	first, last := c.Line(addr), c.Line(addr+size-1)
	if first == last {
		return c.access(first, addr)
	}
	lat := 0
	for line := first; line <= last; line++ {
		lat += c.access(line, line<<c.lineShift)
	}
	return lat
}

// AccessRepeat performs n consecutive accesses for the byte at addr,
// all falling in one line, and returns the summed latency.  The first
// access is an ordinary Access (it may miss and fill); the remaining
// n-1 are guaranteed hits — nothing can evict the line in between —
// so they are applied in bulk via the tag table's BumpHits, with
// counter and LRU effects bit-identical to n sequential Access calls.
// The compiled-trace replay loop uses it for runs of straight-line
// instruction fetches sharing a line.
func (c *Cache) AccessRepeat(addr uint64, n int) int {
	if n <= 0 {
		return 0
	}
	line := c.Line(addr)
	lat := c.access(line, addr)
	if n > 1 {
		c.tags.BumpHits(line, n-1)
		lat += (n - 1) * c.cfg.HitLatency
	}
	return lat
}

// Contains reports whether addr's line is resident, without updating
// LRU or counters.
func (c *Cache) Contains(addr uint64) bool {
	_, ok := c.tags.Peek(c.Line(addr))
	return ok
}

// Accesses returns the number of lookups performed at this level.
func (c *Cache) Accesses() uint64 { return c.tags.Lookups() }

// Misses returns the number of lookups that missed at this level.
func (c *Cache) Misses() uint64 { return c.tags.Misses() }

// MissRate returns misses/accesses, or 0 if never accessed.
func (c *Cache) MissRate() float64 {
	if c.tags.Lookups() == 0 {
		return 0
	}
	return float64(c.tags.Misses()) / float64(c.tags.Lookups())
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Next returns the next cache level, or nil.
func (c *Cache) Next() *Cache { return c.next }

// Flush invalidates all lines at this level only.
func (c *Cache) Flush() { c.tags.Clear() }

// ResetStats zeroes counters at this level and below, preserving
// contents; used to end warmup.
func (c *Cache) ResetStats() {
	c.tags.ResetStats()
	if c.next != nil {
		c.next.ResetStats()
	}
}

// Default configurations approximating the paper's Xeon E5450
// (Harpertown): 32K/8-way L1s, 12 MiB/24-way L2 (it had no L3; the
// shared 12 MiB was the last level).  Latencies are round numbers in
// the right regime for a 3 GHz part.
func DefaultL1I(next *Cache) *Cache {
	return New(Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8,
		HitLatency: 0, MissPenalty: 8}, next)
}

func DefaultL1D(next *Cache) *Cache {
	return New(Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8,
		HitLatency: 0, MissPenalty: 8}, next)
}

func DefaultL2() *Cache {
	return New(Config{Name: "L2", SizeBytes: 12 << 20, LineBytes: 64, Ways: 24,
		HitLatency: 4, MissPenalty: 180}, nil)
}
