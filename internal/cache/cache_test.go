package cache

import (
	"testing"
	"testing/quick"
)

func smallCache(next *Cache) *Cache {
	// 4 sets x 2 ways x 64B lines = 512B
	return New(Config{Name: "t", SizeBytes: 512, LineBytes: 64, Ways: 2,
		HitLatency: 1, MissPenalty: 10}, next)
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok", Config{Name: "c", SizeBytes: 512, LineBytes: 64, Ways: 2}, false},
		{"zero size", Config{LineBytes: 64, Ways: 1}, true},
		{"npot line", Config{SizeBytes: 512, LineBytes: 48, Ways: 2}, true},
		{"size not multiple", Config{SizeBytes: 100, LineBytes: 64, Ways: 1}, true},
		{"npot sets", Config{SizeBytes: 64 * 6, LineBytes: 64, Ways: 2}, true},
		{"fully assoc ok", Config{SizeBytes: 512, LineBytes: 64, Ways: 8}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(nil)
	if lat := c.Access(0x1000); lat != 11 {
		t.Errorf("cold access latency = %d, want 11", lat)
	}
	if lat := c.Access(0x1000); lat != 1 {
		t.Errorf("warm access latency = %d, want 1", lat)
	}
	// Same line, different byte: still a hit.
	if lat := c.Access(0x103f); lat != 1 {
		t.Errorf("same-line access latency = %d, want 1", lat)
	}
	// Next line: miss.
	if lat := c.Access(0x1040); lat != 11 {
		t.Errorf("next-line access latency = %d, want 11", lat)
	}
	if c.Misses() != 2 || c.Accesses() != 4 {
		t.Errorf("misses/accesses = %d/%d, want 2/4", c.Misses(), c.Accesses())
	}
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

func TestHierarchy(t *testing.T) {
	l2 := New(Config{Name: "L2", SizeBytes: 4096, LineBytes: 64, Ways: 4,
		HitLatency: 5, MissPenalty: 100}, nil)
	l1 := smallCache(l2)
	// Cold: L1 miss (1+10) + L2 miss (5+100) = 116.
	if lat := l1.Access(0); lat != 116 {
		t.Errorf("cold = %d, want 116", lat)
	}
	// L1 hit: 1.
	if lat := l1.Access(0); lat != 1 {
		t.Errorf("L1 hit = %d, want 1", lat)
	}
	// Evict line 0 from L1 by filling its set (set = line % 4; lines
	// 4 and 8 map to set 0 of the 4-set L1).
	l1.Access(4 << 6)
	l1.Access(8 << 6)
	// Line 0 now misses in L1 but hits in L2: 1+10+5 = 16.
	if lat := l1.Access(0); lat != 16 {
		t.Errorf("L1 miss, L2 hit = %d, want 16", lat)
	}
}

func TestAccessRangeStraddle(t *testing.T) {
	c := smallCache(nil)
	// A 6-byte instruction at 0x3e straddles lines 0 and 1.
	lat := c.AccessRange(0x3e, 6)
	if lat != 22 {
		t.Errorf("straddling cold fetch = %d, want 22 (two misses)", lat)
	}
	if !c.Contains(0x00) || !c.Contains(0x40) {
		t.Error("both straddled lines should be resident")
	}
	// Zero size counts as one byte.
	if lat := c.AccessRange(0x80, 0); lat != 11 {
		t.Errorf("zero-size access = %d, want 11", lat)
	}
}

func TestContainsDoesNotFill(t *testing.T) {
	c := smallCache(nil)
	if c.Contains(0x1000) {
		t.Error("empty cache contains line")
	}
	if c.Accesses() != 0 {
		t.Error("Contains bumped access counter")
	}
}

func TestFlushAndResetStats(t *testing.T) {
	l2 := New(Config{Name: "L2", SizeBytes: 4096, LineBytes: 64, Ways: 4,
		HitLatency: 5, MissPenalty: 100}, nil)
	l1 := smallCache(l2)
	l1.Access(0)
	l1.Flush()
	if l1.Contains(0) {
		t.Error("line survived Flush")
	}
	if !l2.Contains(0) {
		t.Error("L1 flush should not clear L2")
	}
	l1.ResetStats()
	if l1.Accesses() != 0 || l2.Accesses() != 0 {
		t.Error("ResetStats did not propagate")
	}
	if !l2.Contains(0) {
		t.Error("ResetStats dropped contents")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := smallCache(nil) // 4 sets, 2 ways
	// Three lines in set 0: 0, 4, 8 (line numbers).
	c.Access(0 << 6)
	c.Access(4 << 6)
	c.Access(0 << 6) // refresh 0; LRU is now 4
	c.Access(8 << 6) // evicts 4
	if !c.Contains(0 << 6) {
		t.Error("MRU line evicted")
	}
	if c.Contains(4 << 6) {
		t.Error("LRU line survived")
	}
}

func TestWorkingSetFitsNoMisses(t *testing.T) {
	// Property: a working set that fits entirely in the cache has no
	// misses after the first pass.
	f := func(seed uint64) bool {
		c := New(Config{Name: "c", SizeBytes: 8192, LineBytes: 64, Ways: 8,
			HitLatency: 1, MissPenalty: 10}, nil)
		lines := c.Config().SizeBytes / c.Config().LineBytes
		for i := 0; i < lines; i++ {
			c.Access(uint64(i) << 6)
		}
		c.ResetStats()
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < lines; i++ {
				c.Access(uint64(i) << 6)
			}
		}
		return c.Misses() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestDefaultHierarchyGeometry(t *testing.T) {
	l2 := DefaultL2()
	l1i := DefaultL1I(l2)
	l1d := DefaultL1D(l2)
	for _, c := range []*Cache{l2, l1i, l1d} {
		if err := c.Config().Validate(); err != nil {
			t.Errorf("%s: %v", c.Config().Name, err)
		}
	}
	if l1i.Next() != l2 || l1d.Next() != l2 {
		t.Error("L1s not backed by L2")
	}
	if l2.Config().SizeBytes != 12<<20 {
		t.Errorf("L2 size = %d, want 12MiB (Xeon E5450)", l2.Config().SizeBytes)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 100, LineBytes: 64, Ways: 1}, nil)
}
