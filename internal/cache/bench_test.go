package cache

import "testing"

func BenchmarkAccessHit(b *testing.B) {
	c := DefaultL1D(DefaultL2())
	c.Access(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0)
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	c := DefaultL1D(DefaultL2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) << 6)
	}
}
