#!/usr/bin/env bash
# Regenerates BENCH_obs.json: the telemetry layer's overhead, measured
# two ways.
#
#  1. Micro: the per-operation cost of each instrument on the hot path
#     (counter inc, labelled counter, histogram observe, full span
#     lifecycle, and the disabled-tracer no-op) from
#     internal/telemetry's benchmarks.
#  2. Macro: full artefact-suite wall-clock with the telemetry layer
#     on (production default: metrics + tracing) vs with tracing
#     disabled, from internal/experiments.  The relative delta is the
#     end-to-end overhead figure the ≤5% acceptance bound applies to.
#  3. Kernel timeline sampling: simulation-kernel throughput with the
#     interval sampler detached vs attached at the production default
#     (64Ki instructions), from internal/cpu.  Disabled sampling must
#     cost ≤1% and zero allocations (TestTimelineOffNoAllocs pins the
#     alloc half); enabled sampling must cost ≤5%.
#
# Usage: scripts/obs_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_obs.json}"
micro=$(go test -run '^$' -bench 'BenchmarkCounterInc|BenchmarkCounterVecWith|BenchmarkHistogramObserve|BenchmarkSpanLifecycle|BenchmarkSpanDisabled' -benchmem ./internal/telemetry/)
macro=$(go test -run '^$' -bench 'BenchmarkSuiteParallel(NoTrace)?$' -benchtime 1x ./internal/experiments/)
kernel=$(go test -run '^$' -bench 'BenchmarkRunTimeline(Off|On)$' -benchmem ./internal/cpu/)
echo "$micro"
echo "$macro"
echo "$kernel"

# pick <bench output> <benchmark name> <column index after name>:
# benchmark lines look like "BenchmarkFoo-8  N  12.3 ns/op  0 B/op ...".
pick() {
  echo "$1" | awk -v name="$2" -v col="$3" '$1 ~ "^"name"(-[0-9]+)?$" { print $(2+col); exit }'
}

counter_ns=$(pick "$micro" BenchmarkCounterInc 1)
countervec_ns=$(pick "$micro" BenchmarkCounterVecWith 1)
hist_ns=$(pick "$micro" BenchmarkHistogramObserve 1)
span_ns=$(pick "$micro" BenchmarkSpanLifecycle 1)
span_off_ns=$(pick "$micro" BenchmarkSpanDisabled 1)
suite_on_ns=$(pick "$macro" BenchmarkSuiteParallel 1)
suite_notrace_ns=$(pick "$macro" BenchmarkSuiteParallelNoTrace 1)

overhead_pct=$(awk -v on="$suite_on_ns" -v off="$suite_notrace_ns" \
  'BEGIN { printf "%.2f", (on - off) / off * 100 }')

tl_off_ns=$(pick "$kernel" BenchmarkRunTimelineOff 1)
tl_on_ns=$(pick "$kernel" BenchmarkRunTimelineOn 1)
tl_off_allocs=$(pick "$kernel" BenchmarkRunTimelineOff 5)
tl_overhead_pct=$(awk -v on="$tl_on_ns" -v off="$tl_off_ns" \
  'BEGIN { printf "%.2f", (on - off) / off * 100 }')
if [ "$tl_off_allocs" != "0" ]; then
  echo "FAIL: timeline-off kernel path allocates ($tl_off_allocs allocs/op, want 0)" >&2
  exit 1
fi

host_cpu=$(awk -F': *' '/model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || echo unknown)
host_n=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)

cat > "$out" <<EOF
{
  "benchmark": "Telemetry overhead: instrument micro-benchmarks (internal/telemetry) + full-suite wall-clock with tracing on vs off (internal/experiments)",
  "description": "Cost of the observability layer added for /metrics and /v1/traces: every job attempt records ~4 histogram observations, ~10 counter/gauge updates and a ~7-span trace tree. Micro rows bound the per-operation instrument cost; the macro rows compare the artefact suite's wall clock with the production default (metrics + tracing) against tracing disabled. Determinism is separately enforced: TestSuiteParallelMatchesSequential diffs instrumented output bit-for-bit.",
  "command": "make obs-bench",
  "host": {
    "cpu": "$host_cpu",
    "cpus": $host_n,
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)"
  },
  "results": {
    "counter_inc_ns_per_op": $counter_ns,
    "counter_vec_with_ns_per_op": $countervec_ns,
    "histogram_observe_ns_per_op": $hist_ns,
    "span_lifecycle_ns_per_op": $span_ns,
    "span_disabled_ns_per_op": $span_off_ns,
    "suite_parallel_telemetry_ns_per_op": $suite_on_ns,
    "suite_parallel_notrace_ns_per_op": $suite_notrace_ns,
    "tracing_overhead_pct": $overhead_pct,
    "kernel_timeline_off_ns_per_op": $tl_off_ns,
    "kernel_timeline_on_ns_per_op": $tl_on_ns,
    "kernel_timeline_off_allocs_per_op": $tl_off_allocs,
    "timeline_sampling_overhead_pct": $tl_overhead_pct
  },
  "notes": "Instrument costs are nanoseconds against simulations that run hundreds of milliseconds: a job attempt's full telemetry footprint (counters + histograms + span tree) is on the order of a few microseconds, i.e. ~1e-5 relative. The suite-level tracing delta (tracing_overhead_pct) is within run-to-run noise on this host class; the acceptance bound is <= 5%. Timeline interval sampling shares the kernel's existing per-step budget comparison (limit = min(budget, next boundary)), so the disabled path is bit-for-bit the pre-sampling loop: the off/on kernel rows bound it at <= 1% / <= 5% with zero allocations when off (also pinned by TestTimelineOffNoAllocs)."
}
EOF
echo "wrote $out (tracing overhead ${overhead_pct}%, timeline sampling overhead ${tl_overhead_pct}%)"
