#!/usr/bin/env bash
# Regenerates BENCH_store.json: restart (warm-start) throughput of a
# repeated-spec sweep served from the disk-backed result store vs
# computed from scratch (BenchmarkSweep{Cold,Warm}Store in
# internal/runner).
#
# Both sides live in the same test binary built from the current
# tree.  Each iteration opens a fresh Store and a fresh Runner: cold
# starts from an empty directory, so every job simulates and persists
# (the first process generation); warm reopens a directory populated
# once before the timer, so each iteration pays segment replay plus
# one disk read per job and simulates nothing (the restarted
# generation).  The two are interleaved run by run to share machine
# conditions.
#
# Bit-identity of restored results is enforced separately:
# runner.TestStoreWarmStart and the dlsimd-level
# TestHTTPRestartWarmStart compare live and restored counters field
# by field.
#
# Usage: scripts/store_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_store.json}"
runs="${SB_RUNS:-5}"
benchtime="${SB_BENCHTIME:-3x}"

# One trap covers both temp files: the output capture used to be
# cleaned only by an explicit rm at the end, leaking it whenever a
# benchmark run or the awk extraction failed mid-script.
bench_bin="" bench_out=""
trap 'rm -f "$bench_bin" "$bench_out"' EXIT
bench_bin=$(mktemp /tmp/store_bench.XXXXXX)
go test -c -o "$bench_bin" ./internal/runner/

# best <file> <benchmark> -> "<min ns/op> <jobs/op>"
best() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    if (min == "" || $3 < min) { min = $3; for (i = 4; i < NF; i++) if ($(i+1) == "jobs/op") jobs = $i }
  } END { print min, jobs }' "$1"
}

bench_out=$(mktemp /tmp/store_bench_out.XXXXXX)
: > "$bench_out"
for i in $(seq "$runs"); do
  echo "run $i/$runs (cold)..." >&2
  "$bench_bin" -test.run '^$' -test.bench 'BenchmarkSweepColdStore$' \
    -test.benchtime "$benchtime" >> "$bench_out"
  echo "run $i/$runs (warm)..." >&2
  "$bench_bin" -test.run '^$' -test.bench 'BenchmarkSweepWarmStore$' \
    -test.benchtime "$benchtime" >> "$bench_out"
done

read -r cold_ns jobs <<<"$(best "$bench_out" BenchmarkSweepColdStore)"
read -r warm_ns _ <<<"$(best "$bench_out" BenchmarkSweepWarmStore)"

jps() { awk -v ns="$1" -v jobs="$2" 'BEGIN { printf "%.2f", jobs / ns * 1e9 }'; }
ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

speedup=$(ratio "$cold_ns" "$warm_ns")

host_cpu=$(awk -F': *' '/model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || echo unknown)
host_n=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)

cat > "$out" <<EOF
{
  "benchmark": "Result-store warm-start throughput: BenchmarkSweep{Cold,Warm}Store (internal/runner), interleaved, best of $runs x $benchtime per side",
  "description": "End-to-end wall time of a 12-job repeated-spec sweep through a fresh Runner and a freshly opened Store per iteration. Cold starts from an empty store directory, so every job simulates and writes through to disk (the first process generation); warm reopens a directory populated once before the timer, so each iteration pays segment replay plus one record read per job and simulates nothing (the restarted generation). Restored results are proven bit-identical to live ones by runner.TestStoreWarmStart and dlsimd's TestHTTPRestartWarmStart.",
  "command": "make store-bench",
  "host": {
    "cpu": "$host_cpu",
    "cpus": $host_n,
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)"
  },
  "baseline": "measured live (same binary, empty vs pre-populated store directory, interleaved)",
  "results": {
    "jobs_per_sweep": $jobs,
    "cold_ns_per_sweep": $cold_ns,
    "warm_ns_per_sweep": $warm_ns,
    "cold_jobs_per_sec": $(jps "$cold_ns" "$jobs"),
    "warm_jobs_per_sec": $(jps "$warm_ns" "$jobs"),
    "warm_speedup": $speedup
  },
  "notes": "The warm side measures replay + deserialization, so the ratio grows with the sweep's compute cost and shrinks as the store accumulates unrelated records (longer replay). ns/op moves with host load (shared vCPU); both sides are interleaved so they share conditions."
}
EOF
echo "wrote $out (warm ${speedup}x)"
