#!/usr/bin/env bash
# Regenerates BENCH_pool.json: end-to-end job throughput of a
# repeated-spec sweep with the artifact pool on vs off
# (BenchmarkSweep{Pooled,Unpooled} in internal/runner).
#
# Both sides live in the same test binary built from the current tree,
# so the A/B comparison is a pure runtime toggle (Options.DisablePool)
# and the two are interleaved run by run to share machine conditions.
# Each benchmark iteration builds a fresh Runner (fresh pool), so the
# measured win is within-sweep artifact reuse — one generate + one
# link + copy-on-write forks instead of per-job setup — not a warm
# cache carried across iterations.
#
# Bit-identity of pooled results is enforced separately:
# runner.TestPooledBitIdenticalToUnpooled and
# experiments.TestGoldenCounters (which runs through a pooled runner).
#
# Usage: scripts/pool_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pool.json}"
runs="${PB_RUNS:-5}"
benchtime="${PB_BENCHTIME:-3x}"

# One trap covers both temp files: the output capture used to be
# cleaned only by an explicit rm at the end, leaking it whenever a
# benchmark run or the awk extraction failed mid-script.
bench_bin="" bench_out=""
trap 'rm -f "$bench_bin" "$bench_out"' EXIT
bench_bin=$(mktemp /tmp/pool_bench.XXXXXX)
go test -c -o "$bench_bin" ./internal/runner/

# best <file> <benchmark> -> "<min ns/op> <jobs/op>"
best() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    if (min == "" || $3 < min) { min = $3; for (i = 4; i < NF; i++) if ($(i+1) == "jobs/op") jobs = $i }
  } END { print min, jobs }' "$1"
}

bench_out=$(mktemp /tmp/pool_bench_out.XXXXXX)
: > "$bench_out"
for i in $(seq "$runs"); do
  echo "run $i/$runs (pooled)..." >&2
  "$bench_bin" -test.run '^$' -test.bench 'BenchmarkSweepPooled$' \
    -test.benchtime "$benchtime" >> "$bench_out"
  echo "run $i/$runs (unpooled)..." >&2
  "$bench_bin" -test.run '^$' -test.bench 'BenchmarkSweepUnpooled$' \
    -test.benchtime "$benchtime" >> "$bench_out"
done

read -r pooled_ns jobs <<<"$(best "$bench_out" BenchmarkSweepPooled)"
read -r unpooled_ns _ <<<"$(best "$bench_out" BenchmarkSweepUnpooled)"

jps() { awk -v ns="$1" -v jobs="$2" 'BEGIN { printf "%.2f", jobs / ns * 1e9 }'; }
ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

speedup=$(ratio "$unpooled_ns" "$pooled_ns")

host_cpu=$(awk -F': *' '/model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || echo unknown)
host_n=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)

cat > "$out" <<EOF
{
  "benchmark": "Artifact-pool sweep throughput: BenchmarkSweep{Pooled,Unpooled} (internal/runner), interleaved, best of $runs x $benchtime per side",
  "description": "End-to-end wall time of a 12-job repeated-spec sweep (mysql, base+enhanced configs sharing link options, one seed, a warmup ladder over the minimum measured budget) run through a fresh Runner per iteration. Pooled, the sweep generates the workload once, links one master image, and serves every job a copy-on-write fork; unpooled (Options.DisablePool), every job regenerates and relinks from scratch. Forked images are proven bit-identical to fresh links by runner.TestPooledBitIdenticalToUnpooled and by experiments.TestGoldenCounters running through a pooled runner.",
  "command": "make pool-bench",
  "host": {
    "cpu": "$host_cpu",
    "cpus": $host_n,
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)"
  },
  "baseline": "measured live (same binary, DisablePool toggle, interleaved)",
  "results": {
    "jobs_per_sweep": $jobs,
    "pooled_ns_per_sweep": $pooled_ns,
    "unpooled_ns_per_sweep": $unpooled_ns,
    "pooled_jobs_per_sec": $(jps "$pooled_ns" "$jobs"),
    "unpooled_jobs_per_sec": $(jps "$unpooled_ns" "$jobs"),
    "pooled_speedup": $speedup
  },
  "notes": "Acceptance target is >= 1.5x job throughput on a repeated-spec sweep with bit-identical counters. The ratio depends on the workload's setup:simulate cost split — mysql at the minimum measured budget is setup-heavy, the shape batch sweeps take in practice; long-measure jobs amortise setup and converge toward 1x by construction. ns/op moves with host load (shared vCPU); both sides are interleaved so they share conditions."
}
EOF
echo "wrote $out (pooled ${speedup}x)"
