#!/usr/bin/env bash
# CI entry point: tier-1 checks, the race-detector pass over the
# concurrent subsystems, and the fault-injection robustness pass.
# Equivalent to `make check race faults`.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./...
go build ./...
go test ./...
go test -race -timeout 20m ./internal/runner/... ./cmd/dlsimd/...
go test -race -timeout 20m -run 'TestSuiteParallelMatchesSequential|TestSuiteConcurrentUse' ./internal/experiments/
make faults
