#!/usr/bin/env bash
# CI entry point: tier-1 checks, the race-detector pass over the
# concurrent subsystems, and the fault-injection robustness pass.
# Equivalent to `make check race faults`.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./...
go build ./...
go test ./...
go test -race -timeout 20m ./internal/pool/... ./internal/runner/... ./internal/cluster/... ./cmd/dlsimd/...
go test -race -timeout 20m -run 'TestSuiteParallelMatchesSequential|TestSuiteConcurrentUse|TestGoldenCounters' ./internal/experiments/
make faults

# Advisory: kernel throughput vs the recorded pre-optimisation
# baseline.  Benchmarks on a loaded shared host are noisy, so a
# shortfall here warns instead of failing the build; re-run
# `make kernel-bench` on a quiet machine before trusting a regression.
if KB_RUNS=2 scripts/kernel_bench.sh /tmp/BENCH_kernel_ci.json; then
	grep -E '"(base|enhanced)_speedup"' /tmp/BENCH_kernel_ci.json || true
else
	echo "WARNING: kernel benchmark failed (advisory only)" >&2
fi

# Advisory: artifact-pool sweep throughput, pooled vs unpooled.  Same
# caveat as above — noisy on a loaded host, so warn instead of fail;
# re-run `make pool-bench` on a quiet machine before trusting a
# regression.
if PB_RUNS=2 scripts/pool_bench.sh /tmp/BENCH_pool_ci.json; then
	grep '"pooled_speedup"' /tmp/BENCH_pool_ci.json || true
else
	echo "WARNING: pool benchmark failed (advisory only)" >&2
fi

# Advisory: result-store warm-start throughput, pre-populated store
# vs cold compute.  Same caveat — warn instead of fail; re-run
# `make store-bench` on a quiet machine before trusting a regression.
if SB_RUNS=2 scripts/store_bench.sh /tmp/BENCH_store_ci.json; then
	grep '"warm_speedup"' /tmp/BENCH_store_ci.json || true
else
	echo "WARNING: store benchmark failed (advisory only)" >&2
fi

# Advisory: cluster forwarding tax and failover latency, one node vs
# three loopback nodes.  Same caveat — warn instead of fail; re-run
# `make cluster-bench` on a quiet machine before trusting a
# regression.  The chaos determinism proof already ran above (the
# race pass over cmd/dlsimd includes the chaos suite).
if CB_RUNS=1 CB_BENCHTIME=1x CB_FO_BENCHTIME=100x scripts/cluster_bench.sh /tmp/BENCH_cluster_ci.json; then
	grep -E '"(three_node_overhead|failover_p99_us)"' /tmp/BENCH_cluster_ci.json || true
else
	echo "WARNING: cluster benchmark failed (advisory only)" >&2
fi

# Advisory: compiled-trace speedup and sampled-estimator accuracy.
# The accuracy metrics are deterministic (the script itself fails on
# golden divergence or a CI violation); only the throughput ratio is
# host-dependent, so warn instead of fail and re-run
# `make sample-bench` on a quiet machine before trusting a
# regression.
if SK_RUNS=2 scripts/sample_bench.sh /tmp/BENCH_sample_ci.json; then
	grep -E '"(compiled_speedup|rel_err_pct)"' /tmp/BENCH_sample_ci.json || true
else
	echo "WARNING: sample benchmark failed (advisory only)" >&2
fi

# Advisory: library-churn ABTB pressure vs the no-churn baseline.
# The metrics are counter-derived and deterministic (the script gates
# churn-flushes > baseline itself); advisory here only so a bench
# harness hiccup cannot fail CI.  Re-run `make churn-bench` to
# regenerate BENCH_churn.json.
if CHB_RUNS=1 scripts/churn_bench.sh /tmp/BENCH_churn_ci.json; then
	grep '"flushes_per_1k_instrs"' /tmp/BENCH_churn_ci.json || true
else
	echo "WARNING: churn benchmark failed (advisory only)" >&2
fi
