#!/usr/bin/env bash
# Writes BENCH_churn.json: the library-churn workloads' ABTB pressure
# against a no-churn baseline.
#
# BenchmarkChurn{PluginServer,JIT,Baseline} (internal/runner) each run
# one exact Enhanced job and report two counter-derived metrics:
#
#   abtb_hit_rate   trampoline calls skipped via an ABTB redirect
#   flushes_per_1k  whole-table ABTB flushes per 1k retired instrs
#
# Counters are bit-exact (fixed seed, deterministic churn schedule),
# so every figure here is host-invariant; only ns/op moves with load.
# The acceptance gate is structural: the churn rows must flush
# strictly more often than the stable-library baseline (rotations and
# GOT rewrites are the flush source), and still redirect the large
# majority of trampoline calls between storms.
#
# Usage: scripts/churn_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_churn.json}"
runs="${CHB_RUNS:-1}"

bin="" bench_out=""
trap 'rm -f "$bin" "$bench_out"' EXIT

bin=$(mktemp /tmp/churn_bench_bin.XXXXXX)
go test -c -o "$bin" ./internal/runner/

bench_out=$(mktemp /tmp/churn_bench_out.XXXXXX)
: > "$bench_out"
for i in $(seq "$runs"); do
  echo "run $i/$runs (churn vs baseline)..." >&2
  "$bin" -test.run '^$' -test.bench 'BenchmarkChurn(PluginServer|JIT|Baseline)$' \
    -test.benchtime 1x >> "$bench_out"
done

# metric <benchmark> <unit> -> the value reported with that unit
# (deterministic metrics: any run's value)
metric() {
  awk -v name="$1" -v unit="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    for (i = 4; i < NF; i++) if ($(i+1) == unit) { print $i; exit }
  }' "$bench_out"
}

plugin_hit=$(metric BenchmarkChurnPluginServer abtb_hit_rate)
plugin_flush=$(metric BenchmarkChurnPluginServer flushes_per_1k)
jit_hit=$(metric BenchmarkChurnJIT abtb_hit_rate)
jit_flush=$(metric BenchmarkChurnJIT flushes_per_1k)
base_hit=$(metric BenchmarkChurnBaseline abtb_hit_rate)
base_flush=$(metric BenchmarkChurnBaseline flushes_per_1k)

for v in "$plugin_hit" "$plugin_flush" "$jit_hit" "$jit_flush" "$base_hit" "$base_flush"; do
  if [ -z "$v" ]; then
    echo "FAIL: benchmark output missing a metric" >&2
    exit 1
  fi
done
if ! awk -v p="$plugin_flush" -v j="$jit_flush" -v b="$base_flush" \
    'BEGIN { exit !(p > b && j > b) }'; then
  echo "FAIL: churn flush rates (plugin-server $plugin_flush, jit $jit_flush per 1k) not above baseline $base_flush" >&2
  exit 1
fi
if ! awk -v p="$plugin_hit" -v j="$jit_hit" 'BEGIN { exit !(p > 0.5 && j > 0.5) }'; then
  echo "FAIL: churn ABTB hit rate collapsed (plugin-server $plugin_hit, jit $jit_hit)" >&2
  exit 1
fi

jq -n \
  --argjson plugin_hit "$plugin_hit" \
  --argjson plugin_flush "$plugin_flush" \
  --argjson jit_hit "$jit_hit" \
  --argjson jit_flush "$jit_flush" \
  --argjson base_hit "$base_hit" \
  --argjson base_flush "$base_flush" \
  '{
    benchmark: "BenchmarkChurn{PluginServer,JIT,Baseline} (internal/runner): exact Enhanced jobs, seed=3, 30 warm + 160 measured requests",
    command: "make churn-bench",
    description: "ABTB pressure under library churn: plugin-server rotates two plugin modules through unload/demand-reload every 12 requests; jit rewrites its dispatch GOT slots from guest code; the baseline (memcached) runs the same budget with a stable library set. Counter-derived metrics are bit-exact and host-invariant.",
    results: {
      plugin_server: { abtb_hit_rate: $plugin_hit, flushes_per_1k_instrs: $plugin_flush },
      jit:           { abtb_hit_rate: $jit_hit,    flushes_per_1k_instrs: $jit_flush },
      baseline:      { abtb_hit_rate: $base_hit,   flushes_per_1k_instrs: $base_flush }
    },
    notes: "Gate: both churn rows must flush strictly more per 1k instructions than the baseline, with hit rates above 0.5 (the table refills between storms). Bit-identity across kernel paths for the same workloads is gated by experiments.TestGoldenCounters and runner.TestChurnWorkloadsBitIdentical."
  }' > "$out"

echo "wrote $out (plugin-server ${plugin_flush}/1k flushes @ hit ${plugin_hit}, jit ${jit_flush}/1k @ ${jit_hit}, baseline ${base_flush}/1k)"
